file(REMOVE_RECURSE
  "CMakeFiles/binary_patch.dir/binary_patch.cpp.o"
  "CMakeFiles/binary_patch.dir/binary_patch.cpp.o.d"
  "binary_patch"
  "binary_patch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_patch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
