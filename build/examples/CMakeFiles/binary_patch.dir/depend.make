# Empty dependencies file for binary_patch.
# This may be replaced when dependencies are built.
