# Empty dependencies file for callback_fusion.
# This may be replaced when dependencies are built.
