file(REMOVE_RECURSE
  "CMakeFiles/callback_fusion.dir/callback_fusion.cpp.o"
  "CMakeFiles/callback_fusion.dir/callback_fusion.cpp.o.d"
  "callback_fusion"
  "callback_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/callback_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
