# Empty dependencies file for ir_explorer.
# This may be replaced when dependencies are built.
