file(REMOVE_RECURSE
  "CMakeFiles/ir_explorer.dir/ir_explorer.cpp.o"
  "CMakeFiles/ir_explorer.dir/ir_explorer.cpp.o.d"
  "ir_explorer"
  "ir_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
