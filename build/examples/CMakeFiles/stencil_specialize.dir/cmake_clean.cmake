file(REMOVE_RECURSE
  "CMakeFiles/stencil_specialize.dir/stencil_specialize.cpp.o"
  "CMakeFiles/stencil_specialize.dir/stencil_specialize.cpp.o.d"
  "stencil_specialize"
  "stencil_specialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_specialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
