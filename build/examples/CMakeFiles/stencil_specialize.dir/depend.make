# Empty dependencies file for stencil_specialize.
# This may be replaced when dependencies are built.
