file(REMOVE_RECURSE
  "CMakeFiles/blur_filter.dir/blur_filter.cpp.o"
  "CMakeFiles/blur_filter.dir/blur_filter.cpp.o.d"
  "blur_filter"
  "blur_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blur_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
