# Empty dependencies file for blur_filter.
# This may be replaced when dependencies are built.
