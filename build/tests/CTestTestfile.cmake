# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/decoder_test[1]_include.cmake")
include("/root/repo/build/tests/encoder_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/alu_eval_test[1]_include.cmake")
include("/root/repo/build/tests/dbrew_test[1]_include.cmake")
include("/root/repo/build/tests/lifter_test[1]_include.cmake")
include("/root/repo/build/tests/stencil_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sse_ext_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/elf_test[1]_include.cmake")
include("/root/repo/build/tests/lift_ext_test[1]_include.cmake")
include("/root/repo/build/tests/objdump_diff_test[1]_include.cmake")
include("/root/repo/build/tests/spmv_test[1]_include.cmake")
include("/root/repo/build/tests/o0_test[1]_include.cmake")
