file(REMOVE_RECURSE
  "CMakeFiles/o0_test.dir/o0_test.cpp.o"
  "CMakeFiles/o0_test.dir/o0_test.cpp.o.d"
  "o0_test"
  "o0_test.pdb"
  "o0_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o0_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
