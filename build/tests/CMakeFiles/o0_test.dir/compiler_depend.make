# Empty compiler generated dependencies file for o0_test.
# This may be replaced when dependencies are built.
