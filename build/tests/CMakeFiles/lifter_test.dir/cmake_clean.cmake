file(REMOVE_RECURSE
  "CMakeFiles/lifter_test.dir/lifter_test.cpp.o"
  "CMakeFiles/lifter_test.dir/lifter_test.cpp.o.d"
  "lifter_test"
  "lifter_test.pdb"
  "lifter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
