
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/decoder_test.cpp" "tests/CMakeFiles/decoder_test.dir/decoder_test.cpp.o" "gcc" "tests/CMakeFiles/decoder_test.dir/decoder_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lift/CMakeFiles/dbll_lift.dir/DependInfo.cmake"
  "/root/repo/build/src/dbrew/CMakeFiles/dbll_dbrew.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/dbll_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/dbll_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dbll_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
