# Empty dependencies file for dbrew_test.
# This may be replaced when dependencies are built.
