file(REMOVE_RECURSE
  "CMakeFiles/dbrew_test.dir/dbrew_test.cpp.o"
  "CMakeFiles/dbrew_test.dir/dbrew_test.cpp.o.d"
  "dbrew_test"
  "dbrew_test.pdb"
  "dbrew_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbrew_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
