file(REMOVE_RECURSE
  "CMakeFiles/dbll_test_corpus_o0.dir/corpus_o0.cpp.o"
  "CMakeFiles/dbll_test_corpus_o0.dir/corpus_o0.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbll_test_corpus_o0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
