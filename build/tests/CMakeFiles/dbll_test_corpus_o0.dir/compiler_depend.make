# Empty compiler generated dependencies file for dbll_test_corpus_o0.
# This may be replaced when dependencies are built.
