tests/CMakeFiles/dbll_test_corpus_o0.dir/corpus_o0.cpp.o: \
 /root/repo/tests/corpus_o0.cpp /usr/include/stdc-predef.h \
 /root/repo/tests/corpus_o0.h
