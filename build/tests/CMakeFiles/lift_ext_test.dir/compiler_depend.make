# Empty compiler generated dependencies file for lift_ext_test.
# This may be replaced when dependencies are built.
