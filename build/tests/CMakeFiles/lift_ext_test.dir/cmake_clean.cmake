file(REMOVE_RECURSE
  "CMakeFiles/lift_ext_test.dir/lift_ext_test.cpp.o"
  "CMakeFiles/lift_ext_test.dir/lift_ext_test.cpp.o.d"
  "lift_ext_test"
  "lift_ext_test.pdb"
  "lift_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lift_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
