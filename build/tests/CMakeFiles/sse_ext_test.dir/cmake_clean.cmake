file(REMOVE_RECURSE
  "CMakeFiles/sse_ext_test.dir/sse_ext_test.cpp.o"
  "CMakeFiles/sse_ext_test.dir/sse_ext_test.cpp.o.d"
  "sse_ext_test"
  "sse_ext_test.pdb"
  "sse_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sse_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
