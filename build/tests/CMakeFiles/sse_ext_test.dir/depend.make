# Empty dependencies file for sse_ext_test.
# This may be replaced when dependencies are built.
