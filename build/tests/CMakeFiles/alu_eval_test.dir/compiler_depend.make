# Empty compiler generated dependencies file for alu_eval_test.
# This may be replaced when dependencies are built.
