file(REMOVE_RECURSE
  "CMakeFiles/alu_eval_test.dir/alu_eval_test.cpp.o"
  "CMakeFiles/alu_eval_test.dir/alu_eval_test.cpp.o.d"
  "alu_eval_test"
  "alu_eval_test.pdb"
  "alu_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alu_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
