# Empty dependencies file for dbll_test_corpus.
# This may be replaced when dependencies are built.
