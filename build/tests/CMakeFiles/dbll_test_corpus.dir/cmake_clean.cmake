file(REMOVE_RECURSE
  "CMakeFiles/dbll_test_corpus.dir/corpus.cpp.o"
  "CMakeFiles/dbll_test_corpus.dir/corpus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbll_test_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
