# Empty dependencies file for dbll-objlift.
# This may be replaced when dependencies are built.
