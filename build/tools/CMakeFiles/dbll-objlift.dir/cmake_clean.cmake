file(REMOVE_RECURSE
  "CMakeFiles/dbll-objlift.dir/objlift.cpp.o"
  "CMakeFiles/dbll-objlift.dir/objlift.cpp.o.d"
  "dbll-objlift"
  "dbll-objlift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbll-objlift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
