# Empty dependencies file for dbll_spmv.
# This may be replaced when dependencies are built.
