file(REMOVE_RECURSE
  "CMakeFiles/dbll_spmv.dir/kernels.cpp.o"
  "CMakeFiles/dbll_spmv.dir/kernels.cpp.o.d"
  "CMakeFiles/dbll_spmv.dir/spmv.cpp.o"
  "CMakeFiles/dbll_spmv.dir/spmv.cpp.o.d"
  "libdbll_spmv.a"
  "libdbll_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbll_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
