file(REMOVE_RECURSE
  "libdbll_spmv.a"
)
