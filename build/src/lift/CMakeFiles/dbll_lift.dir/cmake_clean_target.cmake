file(REMOVE_RECURSE
  "libdbll_lift.a"
)
