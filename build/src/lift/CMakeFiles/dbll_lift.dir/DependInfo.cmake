
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lift/function_lifter.cpp" "src/lift/CMakeFiles/dbll_lift.dir/function_lifter.cpp.o" "gcc" "src/lift/CMakeFiles/dbll_lift.dir/function_lifter.cpp.o.d"
  "/root/repo/src/lift/jit.cpp" "src/lift/CMakeFiles/dbll_lift.dir/jit.cpp.o" "gcc" "src/lift/CMakeFiles/dbll_lift.dir/jit.cpp.o.d"
  "/root/repo/src/lift/lifter.cpp" "src/lift/CMakeFiles/dbll_lift.dir/lifter.cpp.o" "gcc" "src/lift/CMakeFiles/dbll_lift.dir/lifter.cpp.o.d"
  "/root/repo/src/lift/pipeline.cpp" "src/lift/CMakeFiles/dbll_lift.dir/pipeline.cpp.o" "gcc" "src/lift/CMakeFiles/dbll_lift.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/x86/CMakeFiles/dbll_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dbll_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
