# Empty compiler generated dependencies file for dbll_lift.
# This may be replaced when dependencies are built.
