file(REMOVE_RECURSE
  "CMakeFiles/dbll_lift.dir/function_lifter.cpp.o"
  "CMakeFiles/dbll_lift.dir/function_lifter.cpp.o.d"
  "CMakeFiles/dbll_lift.dir/jit.cpp.o"
  "CMakeFiles/dbll_lift.dir/jit.cpp.o.d"
  "CMakeFiles/dbll_lift.dir/lifter.cpp.o"
  "CMakeFiles/dbll_lift.dir/lifter.cpp.o.d"
  "CMakeFiles/dbll_lift.dir/pipeline.cpp.o"
  "CMakeFiles/dbll_lift.dir/pipeline.cpp.o.d"
  "libdbll_lift.a"
  "libdbll_lift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbll_lift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
