
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x86/cfg.cpp" "src/x86/CMakeFiles/dbll_x86.dir/cfg.cpp.o" "gcc" "src/x86/CMakeFiles/dbll_x86.dir/cfg.cpp.o.d"
  "/root/repo/src/x86/decoder.cpp" "src/x86/CMakeFiles/dbll_x86.dir/decoder.cpp.o" "gcc" "src/x86/CMakeFiles/dbll_x86.dir/decoder.cpp.o.d"
  "/root/repo/src/x86/encoder.cpp" "src/x86/CMakeFiles/dbll_x86.dir/encoder.cpp.o" "gcc" "src/x86/CMakeFiles/dbll_x86.dir/encoder.cpp.o.d"
  "/root/repo/src/x86/insn.cpp" "src/x86/CMakeFiles/dbll_x86.dir/insn.cpp.o" "gcc" "src/x86/CMakeFiles/dbll_x86.dir/insn.cpp.o.d"
  "/root/repo/src/x86/printer.cpp" "src/x86/CMakeFiles/dbll_x86.dir/printer.cpp.o" "gcc" "src/x86/CMakeFiles/dbll_x86.dir/printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dbll_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
