file(REMOVE_RECURSE
  "CMakeFiles/dbll_x86.dir/cfg.cpp.o"
  "CMakeFiles/dbll_x86.dir/cfg.cpp.o.d"
  "CMakeFiles/dbll_x86.dir/decoder.cpp.o"
  "CMakeFiles/dbll_x86.dir/decoder.cpp.o.d"
  "CMakeFiles/dbll_x86.dir/encoder.cpp.o"
  "CMakeFiles/dbll_x86.dir/encoder.cpp.o.d"
  "CMakeFiles/dbll_x86.dir/insn.cpp.o"
  "CMakeFiles/dbll_x86.dir/insn.cpp.o.d"
  "CMakeFiles/dbll_x86.dir/printer.cpp.o"
  "CMakeFiles/dbll_x86.dir/printer.cpp.o.d"
  "libdbll_x86.a"
  "libdbll_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbll_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
