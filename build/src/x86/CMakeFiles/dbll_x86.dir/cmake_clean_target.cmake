file(REMOVE_RECURSE
  "libdbll_x86.a"
)
