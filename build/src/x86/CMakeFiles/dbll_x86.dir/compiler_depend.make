# Empty compiler generated dependencies file for dbll_x86.
# This may be replaced when dependencies are built.
