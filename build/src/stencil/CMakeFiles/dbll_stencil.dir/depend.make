# Empty dependencies file for dbll_stencil.
# This may be replaced when dependencies are built.
