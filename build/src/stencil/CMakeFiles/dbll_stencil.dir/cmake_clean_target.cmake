file(REMOVE_RECURSE
  "libdbll_stencil.a"
)
