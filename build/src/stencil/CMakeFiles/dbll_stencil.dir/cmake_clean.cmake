file(REMOVE_RECURSE
  "CMakeFiles/dbll_stencil.dir/kernels.cpp.o"
  "CMakeFiles/dbll_stencil.dir/kernels.cpp.o.d"
  "CMakeFiles/dbll_stencil.dir/stencil.cpp.o"
  "CMakeFiles/dbll_stencil.dir/stencil.cpp.o.d"
  "libdbll_stencil.a"
  "libdbll_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbll_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
