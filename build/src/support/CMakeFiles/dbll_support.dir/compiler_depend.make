# Empty compiler generated dependencies file for dbll_support.
# This may be replaced when dependencies are built.
