file(REMOVE_RECURSE
  "CMakeFiles/dbll_support.dir/code_buffer.cpp.o"
  "CMakeFiles/dbll_support.dir/code_buffer.cpp.o.d"
  "CMakeFiles/dbll_support.dir/error.cpp.o"
  "CMakeFiles/dbll_support.dir/error.cpp.o.d"
  "CMakeFiles/dbll_support.dir/hexdump.cpp.o"
  "CMakeFiles/dbll_support.dir/hexdump.cpp.o.d"
  "libdbll_support.a"
  "libdbll_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbll_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
