file(REMOVE_RECURSE
  "libdbll_support.a"
)
