file(REMOVE_RECURSE
  "CMakeFiles/dbll_elf.dir/elf_reader.cpp.o"
  "CMakeFiles/dbll_elf.dir/elf_reader.cpp.o.d"
  "libdbll_elf.a"
  "libdbll_elf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbll_elf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
