file(REMOVE_RECURSE
  "libdbll_elf.a"
)
