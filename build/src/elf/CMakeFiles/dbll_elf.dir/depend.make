# Empty dependencies file for dbll_elf.
# This may be replaced when dependencies are built.
