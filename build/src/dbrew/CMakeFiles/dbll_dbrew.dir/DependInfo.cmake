
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbrew/alu_eval.cpp" "src/dbrew/CMakeFiles/dbll_dbrew.dir/alu_eval.cpp.o" "gcc" "src/dbrew/CMakeFiles/dbll_dbrew.dir/alu_eval.cpp.o.d"
  "/root/repo/src/dbrew/capi.cpp" "src/dbrew/CMakeFiles/dbll_dbrew.dir/capi.cpp.o" "gcc" "src/dbrew/CMakeFiles/dbll_dbrew.dir/capi.cpp.o.d"
  "/root/repo/src/dbrew/emitter.cpp" "src/dbrew/CMakeFiles/dbll_dbrew.dir/emitter.cpp.o" "gcc" "src/dbrew/CMakeFiles/dbll_dbrew.dir/emitter.cpp.o.d"
  "/root/repo/src/dbrew/emulator.cpp" "src/dbrew/CMakeFiles/dbll_dbrew.dir/emulator.cpp.o" "gcc" "src/dbrew/CMakeFiles/dbll_dbrew.dir/emulator.cpp.o.d"
  "/root/repo/src/dbrew/rewriter.cpp" "src/dbrew/CMakeFiles/dbll_dbrew.dir/rewriter.cpp.o" "gcc" "src/dbrew/CMakeFiles/dbll_dbrew.dir/rewriter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/x86/CMakeFiles/dbll_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dbll_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
