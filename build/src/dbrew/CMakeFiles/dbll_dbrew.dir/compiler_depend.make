# Empty compiler generated dependencies file for dbll_dbrew.
# This may be replaced when dependencies are built.
