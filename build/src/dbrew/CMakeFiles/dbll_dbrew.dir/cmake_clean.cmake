file(REMOVE_RECURSE
  "CMakeFiles/dbll_dbrew.dir/alu_eval.cpp.o"
  "CMakeFiles/dbll_dbrew.dir/alu_eval.cpp.o.d"
  "CMakeFiles/dbll_dbrew.dir/capi.cpp.o"
  "CMakeFiles/dbll_dbrew.dir/capi.cpp.o.d"
  "CMakeFiles/dbll_dbrew.dir/emitter.cpp.o"
  "CMakeFiles/dbll_dbrew.dir/emitter.cpp.o.d"
  "CMakeFiles/dbll_dbrew.dir/emulator.cpp.o"
  "CMakeFiles/dbll_dbrew.dir/emulator.cpp.o.d"
  "CMakeFiles/dbll_dbrew.dir/rewriter.cpp.o"
  "CMakeFiles/dbll_dbrew.dir/rewriter.cpp.o.d"
  "libdbll_dbrew.a"
  "libdbll_dbrew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbll_dbrew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
