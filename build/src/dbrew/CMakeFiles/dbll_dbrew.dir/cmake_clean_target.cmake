file(REMOVE_RECURSE
  "libdbll_dbrew.a"
)
