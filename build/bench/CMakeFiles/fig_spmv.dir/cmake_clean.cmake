file(REMOVE_RECURSE
  "CMakeFiles/fig_spmv.dir/fig_spmv.cpp.o"
  "CMakeFiles/fig_spmv.dir/fig_spmv.cpp.o.d"
  "fig_spmv"
  "fig_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
