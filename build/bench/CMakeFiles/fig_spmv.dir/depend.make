# Empty dependencies file for fig_spmv.
# This may be replaced when dependencies are built.
