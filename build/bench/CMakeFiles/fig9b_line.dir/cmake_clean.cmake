file(REMOVE_RECURSE
  "CMakeFiles/fig9b_line.dir/fig9b_line.cpp.o"
  "CMakeFiles/fig9b_line.dir/fig9b_line.cpp.o.d"
  "fig9b_line"
  "fig9b_line.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_line.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
