# Empty dependencies file for fig9b_line.
# This may be replaced when dependencies are built.
