# Empty compiler generated dependencies file for fig_linegen.
# This may be replaced when dependencies are built.
