file(REMOVE_RECURSE
  "CMakeFiles/fig_linegen.dir/fig_linegen.cpp.o"
  "CMakeFiles/fig_linegen.dir/fig_linegen.cpp.o.d"
  "fig_linegen"
  "fig_linegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_linegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
