file(REMOVE_RECURSE
  "CMakeFiles/fig6_flagcache.dir/fig6_flagcache.cpp.o"
  "CMakeFiles/fig6_flagcache.dir/fig6_flagcache.cpp.o.d"
  "fig6_flagcache"
  "fig6_flagcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_flagcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
