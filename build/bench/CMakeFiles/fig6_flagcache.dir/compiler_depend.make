# Empty compiler generated dependencies file for fig6_flagcache.
# This may be replaced when dependencies are built.
