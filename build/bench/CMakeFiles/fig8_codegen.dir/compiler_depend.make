# Empty compiler generated dependencies file for fig8_codegen.
# This may be replaced when dependencies are built.
