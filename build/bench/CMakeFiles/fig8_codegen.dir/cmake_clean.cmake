file(REMOVE_RECURSE
  "CMakeFiles/fig8_codegen.dir/fig8_codegen.cpp.o"
  "CMakeFiles/fig8_codegen.dir/fig8_codegen.cpp.o.d"
  "fig8_codegen"
  "fig8_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
