# Empty compiler generated dependencies file for fig9a_element.
# This may be replaced when dependencies are built.
