file(REMOVE_RECURSE
  "CMakeFiles/fig9a_element.dir/fig9a_element.cpp.o"
  "CMakeFiles/fig9a_element.dir/fig9a_element.cpp.o.d"
  "fig9a_element"
  "fig9a_element.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_element.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
