file(REMOVE_RECURSE
  "CMakeFiles/fig_vectorize.dir/fig_vectorize.cpp.o"
  "CMakeFiles/fig_vectorize.dir/fig_vectorize.cpp.o.d"
  "fig_vectorize"
  "fig_vectorize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_vectorize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
