# Empty dependencies file for fig_vectorize.
# This may be replaced when dependencies are built.
