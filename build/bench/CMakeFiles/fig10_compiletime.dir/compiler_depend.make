# Empty compiler generated dependencies file for fig10_compiletime.
# This may be replaced when dependencies are built.
