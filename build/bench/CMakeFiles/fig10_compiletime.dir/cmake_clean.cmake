file(REMOVE_RECURSE
  "CMakeFiles/fig10_compiletime.dir/fig10_compiletime.cpp.o"
  "CMakeFiles/fig10_compiletime.dir/fig10_compiletime.cpp.o.d"
  "fig10_compiletime"
  "fig10_compiletime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_compiletime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
