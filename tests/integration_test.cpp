// dbll tests -- end-to-end integration: every rewriting mode of the paper's
// evaluation (Native / LLVM / LLVM-fix / DBrew / DBrew+LLVM) applied to
// every kernel variant must compute bit-identical Jacobi iterations.
#include <gtest/gtest.h>

#include <cstdint>

#include "dbll/dbrew/rewriter.h"
#include "dbll/lift/lifter.h"
#include "dbll/stencil/stencil.h"

namespace dbll {
namespace {

using stencil::ElementKernel;
using stencil::FlatStencil;
using stencil::FourPointFlat;
using stencil::FourPointSorted;
using stencil::JacobiGrid;
using stencil::LineKernel;
using stencil::SortedStencil;

constexpr int kIters = 3;

lift::Signature KernelSig() {
  return lift::Signature{{lift::ArgKind::kInt, lift::ArgKind::kInt,
                          lift::ArgKind::kInt, lift::ArgKind::kInt},
                         lift::RetKind::kVoid};
}

lift::Jit& SharedJit() {
  static lift::Jit jit;
  return jit;
}

double Reference() {
  static const double value = [] {
    JacobiGrid grid;
    grid.RunElement(reinterpret_cast<ElementKernel>(&stencil::stencil_apply_direct),
                    nullptr, kIters);
    return grid.Checksum();
  }();
  return value;
}

double RunKernel(std::uint64_t entry, const void* st, bool line) {
  JacobiGrid grid;
  if (line) {
    grid.RunLine(reinterpret_cast<LineKernel>(entry), st, kIters);
  } else {
    grid.RunElement(reinterpret_cast<ElementKernel>(entry), st, kIters);
  }
  return grid.Checksum();
}

struct KernelCase {
  const char* name;
  void* fn;
  const void* stencil;
  std::size_t stencil_size;
  bool line;
  bool dbrew_input;  // suitable input for DBrew (element or outlined line)
};

const KernelCase kKernels[] = {
    {"elem_direct", reinterpret_cast<void*>(&stencil::stencil_apply_direct),
     nullptr, 0, false, true},
    {"elem_flat", reinterpret_cast<void*>(&stencil::stencil_apply_flat),
     &FourPointFlat(), sizeof(FlatStencil), false, true},
    {"elem_sorted", reinterpret_cast<void*>(&stencil::stencil_apply_sorted),
     &FourPointSorted(), sizeof(SortedStencil), false, true},
    {"line_direct", reinterpret_cast<void*>(&stencil::stencil_line_direct),
     nullptr, 0, true, false},
    {"line_flat", reinterpret_cast<void*>(&stencil::stencil_line_flat),
     &FourPointFlat(), sizeof(FlatStencil), true, false},
    {"line_sorted", reinterpret_cast<void*>(&stencil::stencil_line_sorted),
     &FourPointSorted(), sizeof(SortedStencil), true, false},
    {"line_direct_outl",
     reinterpret_cast<void*>(&stencil::stencil_line_direct_outlined), nullptr,
     0, true, true},
    {"line_flat_outl",
     reinterpret_cast<void*>(&stencil::stencil_line_flat_outlined),
     &FourPointFlat(), sizeof(FlatStencil), true, true},
    {"line_sorted_outl",
     reinterpret_cast<void*>(&stencil::stencil_line_sorted_outlined),
     &FourPointSorted(), sizeof(SortedStencil), true, true},
};

class ModeMatrixTest : public testing::TestWithParam<KernelCase> {};

TEST_P(ModeMatrixTest, LlvmIdentityTransform) {
  const KernelCase& k = GetParam();
  lift::Lifter lifter;
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(k.fn), KernelSig());
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  auto compiled = lifted->Compile(SharedJit());
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  EXPECT_EQ(RunKernel(*compiled, k.stencil, k.line), Reference()) << k.name;
}

TEST_P(ModeMatrixTest, LlvmWithParameterFixation) {
  const KernelCase& k = GetParam();
  if (k.stencil == nullptr) GTEST_SKIP() << "direct kernel has no parameter";
  lift::Lifter lifter;
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(k.fn), KernelSig());
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  ASSERT_TRUE(
      lifted->SpecializeParamToConstMem(0, k.stencil, k.stencil_size).ok());
  auto compiled = lifted->Compile(SharedJit());
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  // The fixed variant ignores its first argument.
  EXPECT_EQ(RunKernel(*compiled, nullptr, k.line), Reference()) << k.name;
}

TEST_P(ModeMatrixTest, DbrewSpecialization) {
  const KernelCase& k = GetParam();
  if (!k.dbrew_input) GTEST_SKIP() << "not a DBrew input variant";
  dbrew::Rewriter rewriter(reinterpret_cast<std::uint64_t>(k.fn));
  if (k.stencil != nullptr) {
    rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(k.stencil));
    rewriter.SetMemRange(
        k.stencil, static_cast<const char*>(k.stencil) + k.stencil_size);
  }
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
  EXPECT_EQ(RunKernel(*rewritten, k.stencil, k.line), Reference()) << k.name;
}

TEST_P(ModeMatrixTest, DbrewPlusLlvm) {
  const KernelCase& k = GetParam();
  if (!k.dbrew_input) GTEST_SKIP() << "not a DBrew input variant";
  dbrew::Rewriter rewriter(reinterpret_cast<std::uint64_t>(k.fn));
  if (k.stencil != nullptr) {
    rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(k.stencil));
    rewriter.SetMemRange(
        k.stencil, static_cast<const char*>(k.stencil) + k.stencil_size);
  }
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();

  lift::Lifter lifter;
  auto lifted = lifter.Lift(*rewritten, KernelSig());
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  auto compiled = lifted->Compile(SharedJit());
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  EXPECT_EQ(RunKernel(*compiled, k.stencil, k.line), Reference()) << k.name;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, ModeMatrixTest,
                         testing::ValuesIn(kKernels),
                         [](const testing::TestParamInfo<KernelCase>& info) {
                           return info.param.name;
                         });

// --- Eight-point stencil cross-check -----------------------------------------

TEST(IntegrationTest, EightPointStencilAllModes) {
  JacobiGrid reference;
  reference.RunElement(
      reinterpret_cast<ElementKernel>(&stencil::stencil_apply_flat),
      &stencil::EightPointFlat(), kIters);
  const double want = reference.Checksum();

  // DBrew on the flat 8-point stencil.
  dbrew::Rewriter rewriter(
      reinterpret_cast<std::uint64_t>(&stencil::stencil_apply_flat));
  rewriter.SetParam(
      0, reinterpret_cast<std::uint64_t>(&stencil::EightPointFlat()));
  rewriter.SetMemRange(&stencil::EightPointFlat(),
                       &stencil::EightPointFlat() + 1);
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
  {
    JacobiGrid grid;
    grid.RunElement(reinterpret_cast<ElementKernel>(*rewritten),
                    &stencil::EightPointFlat(), kIters);
    EXPECT_EQ(grid.Checksum(), want);
  }

  // LLVM-fix on the sorted 8-point stencil.
  lift::Lifter lifter;
  auto lifted = lifter.Lift(
      reinterpret_cast<std::uint64_t>(&stencil::stencil_apply_sorted),
      KernelSig());
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  ASSERT_TRUE(lifted
                  ->SpecializeParamToConstMem(0, &stencil::EightPointSorted(),
                                              sizeof(SortedStencil))
                  .ok());
  auto compiled = lifted->Compile(SharedJit());
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  {
    JacobiGrid grid;
    grid.RunElement(reinterpret_cast<ElementKernel>(*compiled), nullptr,
                    kIters);
    EXPECT_NEAR(grid.Checksum(), want, 1e-9);
  }
}

// --- Chained rewrites ----------------------------------------------------------

TEST(IntegrationTest, LiftingDbrewOutputOfDbrewOutput) {
  // DBrew output is itself valid input: rewrite the rewritten code.
  dbrew::Rewriter first(
      reinterpret_cast<std::uint64_t>(&stencil::stencil_apply_flat));
  first.SetParam(0, reinterpret_cast<std::uint64_t>(&FourPointFlat()));
  first.SetMemRange(&FourPointFlat(), &FourPointFlat() + 1);
  auto once = first.Rewrite();
  ASSERT_TRUE(once.has_value()) << once.error().Format();

  dbrew::Rewriter second(*once);
  auto twice = second.Rewrite();
  ASSERT_TRUE(twice.has_value()) << twice.error().Format();
  EXPECT_EQ(RunKernel(*twice, nullptr, false), Reference());
}

}  // namespace
}  // namespace dbll
