// dbll tests -- the persistent compiled-object cache (object_store.h):
// round-trip persistence, warm-start service integration (zero lift work on
// a disk hit), and the hostile-state contract -- truncated entries, bad
// checksums, toolchain-version mismatches, racing writers, tiny eviction
// caps, and injected I/O faults must all degrade to a miss, never to a crash
// and never to a wrong kernel.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "corpus.h"
#include "dbll/lift/lifter.h"
#include "dbll/runtime/compile_service.h"
#include "dbll/runtime/object_store.h"
#include "dbll/runtime/shm_ring.h"
#include "dbll/support/cpu_features.h"
#include "dbll/support/fault.h"
#include "dbll/support/file_io.h"

namespace dbll::runtime {
namespace {

using IntFn2 = long (*)(long, long);

/// Fresh scratch cache directory per test, removed on teardown.
class ObjectStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/dbll_objstore_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    fault::DisarmAll();
    (void)ObjectStore::Purge(dir_);
    ::rmdir(dir_.c_str());
  }

  ObjectStore MakeStore(std::uint64_t max_bytes = 0,
                        std::uint64_t max_entries = 0) {
    return ObjectStore(ObjectStore::Options{dir_, max_bytes, max_entries});
  }

  static ObjectEntry FakeEntry(std::uint64_t fingerprint,
                               std::size_t payload = 64,
                               std::uint32_t isa_level = 0) {
    ObjectEntry entry;
    entry.fingerprint = fingerprint;
    entry.wrapper_name = "wrapper";
    entry.membase_symbol = "membase";
    entry.membase_value = 0x1000;
    entry.isa_level = isa_level;
    entry.object.assign(payload, static_cast<std::uint8_t>(fingerprint));
    return entry;
  }

  std::string EntryPath(std::uint64_t fingerprint) const {
    return dir_ + "/" + ObjectStore::EntryFileName(fingerprint);
  }

  std::string dir_;
};

TEST_F(ObjectStoreTest, StoreThenLoadRoundTrips) {
  ObjectStore store = MakeStore();
  ASSERT_TRUE(store.init_status().ok());
  const ObjectEntry entry = FakeEntry(0x1111);
  store.Store(entry);

  ObjectEntry loaded;
  EXPECT_TRUE(store.Load(0x1111, &loaded));
  EXPECT_EQ(loaded.fingerprint, entry.fingerprint);
  EXPECT_EQ(loaded.wrapper_name, entry.wrapper_name);
  EXPECT_EQ(loaded.membase_symbol, entry.membase_symbol);
  EXPECT_EQ(loaded.membase_value, entry.membase_value);
  EXPECT_EQ(loaded.object, entry.object);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().stores, 1u);

  EXPECT_FALSE(store.Load(0x2222, &loaded));  // plain miss
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST_F(ObjectStoreTest, TruncatedEntryMissesAndIsDeleted) {
  ObjectStore store = MakeStore();
  store.Store(FakeEntry(0x3333));
  auto bytes = support::ReadFileBytes(EntryPath(0x3333));
  ASSERT_TRUE(bytes.has_value());
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, bytes->size() / 2,
                          bytes->size() - 1}) {
    ASSERT_TRUE(support::WriteFileAtomic(EntryPath(0x3333), bytes->data(), cut)
                    .ok());
    ObjectEntry loaded;
    EXPECT_FALSE(store.Load(0x3333, &loaded)) << "cut at " << cut;
    // The invalid file was dropped so it cannot waste another read.
    EXPECT_FALSE(support::FileSize(EntryPath(0x3333)).has_value());
  }
  EXPECT_EQ(store.stats().corrupt_dropped, 4u);
}

TEST_F(ObjectStoreTest, BadChecksumMissesAndIsDeleted) {
  ObjectStore store = MakeStore();
  store.Store(FakeEntry(0x4444));
  auto bytes = support::ReadFileBytes(EntryPath(0x4444));
  ASSERT_TRUE(bytes.has_value());
  bytes->back() ^= 0xff;  // flip one payload byte; header stays intact
  ASSERT_TRUE(support::WriteFileAtomic(EntryPath(0x4444), bytes->data(),
                                       bytes->size())
                  .ok());
  ObjectEntry loaded;
  EXPECT_FALSE(store.Load(0x4444, &loaded));
  EXPECT_EQ(store.stats().corrupt_dropped, 1u);
  EXPECT_FALSE(support::FileSize(EntryPath(0x4444)).has_value());
}

TEST_F(ObjectStoreTest, WrongLlvmVersionMissesAndIsDeleted) {
  // A structurally valid entry stamped by a different toolchain: under
  // fingerprint keying it is unreachable garbage, so the loader deletes it.
  ASSERT_TRUE(ObjectStore::WriteEntry(dir_, FakeEntry(0x5555), "0.0.0-other",
                                      lift::JitTargetCpu())
                  .ok());
  ObjectStore store = MakeStore();
  ObjectEntry loaded;
  EXPECT_FALSE(store.Load(0x5555, &loaded));
  EXPECT_EQ(store.stats().corrupt_dropped, 1u);
  EXPECT_FALSE(support::FileSize(EntryPath(0x5555)).has_value());

  // Same for a matching version but a different target CPU.
  ASSERT_TRUE(ObjectStore::WriteEntry(dir_, FakeEntry(0x6666),
                                      lift::LlvmVersionString(), "skylake-avx512")
                  .ok());
  EXPECT_FALSE(store.Load(0x6666, &loaded));
  EXPECT_EQ(store.stats().corrupt_dropped, 2u);
}

TEST_F(ObjectStoreTest, ScanReportsValidityPerEntry) {
  ObjectStore store = MakeStore();
  store.Store(FakeEntry(0x7777));
  ASSERT_TRUE(ObjectStore::WriteEntry(dir_, FakeEntry(0x8888), "0.0.0-other",
                                      lift::JitTargetCpu())
                  .ok());
  const char garbage[] = "not an entry";
  ASSERT_TRUE(support::WriteFileAtomic(EntryPath(0x9999), garbage,
                                       sizeof(garbage))
                  .ok());

  auto scan = ObjectStore::Scan(dir_);
  ASSERT_TRUE(scan.has_value());
  ASSERT_EQ(scan->size(), 3u);
  int valid = 0;
  for (const ObjectScanEntry& e : *scan) valid += e.valid ? 1 : 0;
  // Scan validates structure only (it has no toolchain to compare against),
  // so the version-mismatched entry still parses; the garbage one must not.
  EXPECT_EQ(valid, 2);

  auto purged = ObjectStore::Purge(dir_);
  ASSERT_TRUE(purged.has_value());
  EXPECT_EQ(*purged, 3u);
  auto rescan = ObjectStore::Scan(dir_);
  ASSERT_TRUE(rescan.has_value());
  EXPECT_TRUE(rescan->empty());
}

TEST_F(ObjectStoreTest, ConcurrentWritersNeverProduceATornEntry) {
  // Two threads hammer the same directory (including the same fingerprints);
  // atomic publication means every file a scan ever sees is complete.
  const int kPerThread = 40;
  std::thread a([&] {
    ObjectStore store = MakeStore();
    for (int i = 0; i < kPerThread; ++i) {
      store.Store(FakeEntry(static_cast<std::uint64_t>(i % 8), 2048));
    }
  });
  std::thread b([&] {
    ObjectStore store = MakeStore();
    for (int i = 0; i < kPerThread; ++i) {
      store.Store(FakeEntry(static_cast<std::uint64_t>(i % 8), 2048));
    }
  });
  a.join();
  b.join();

  auto scan = ObjectStore::Scan(dir_);
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->size(), 8u);
  for (const ObjectScanEntry& e : *scan) {
    EXPECT_TRUE(e.valid) << e.file << ": " << e.detail;
  }
  ObjectStore reader = MakeStore();
  for (std::uint64_t fp = 0; fp < 8; ++fp) {
    ObjectEntry loaded;
    EXPECT_TRUE(reader.Load(fp, &loaded));
    EXPECT_EQ(loaded.object.size(), 2048u);
  }
}

TEST_F(ObjectStoreTest, EvictionHoldsTheEntryCap) {
  ObjectStore store = MakeStore(/*max_bytes=*/0, /*max_entries=*/1);
  store.Store(FakeEntry(0xaaaa));
  store.Store(FakeEntry(0xbbbb));
  EXPECT_GE(store.stats().evictions, 1u);
  auto scan = ObjectStore::Scan(dir_);
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->size(), 1u);
  // The surviving entry is the most recently stored one.
  ObjectEntry loaded;
  EXPECT_TRUE(store.Load(0xbbbb, &loaded));
}

TEST_F(ObjectStoreTest, ByteCapEvictsOldEntries) {
  // Each entry is ~2KiB; a 3KiB cap keeps exactly the newest one.
  ObjectStore store = MakeStore(/*max_bytes=*/3 << 10, /*max_entries=*/0);
  store.Store(FakeEntry(0x1, 2048));
  store.Store(FakeEntry(0x2, 2048));
  auto scan = ObjectStore::Scan(dir_);
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->size(), 1u);
  EXPECT_GE(store.stats().evictions, 1u);
}

TEST_F(ObjectStoreTest, LoadFaultDegradesWithoutDroppingTheEntry) {
  ObjectStore store = MakeStore();
  store.Store(FakeEntry(0xcccc));
  // An armed `objcache.load` behaves as an I/O error: a miss that *keeps*
  // the (perfectly good) file, unlike corruption.
  ASSERT_TRUE(fault::ArmFromString("objcache.load:kIo"));
  ObjectEntry loaded;
  EXPECT_FALSE(store.Load(0xcccc, &loaded));
  EXPECT_EQ(store.stats().errors, 1u);
  EXPECT_TRUE(support::FileSize(EntryPath(0xcccc)).has_value());

  fault::DisarmAll();
  EXPECT_TRUE(store.Load(0xcccc, &loaded));
}

// --- export/import bundles (the fleet-shipping path) ------------------------

TEST_F(ObjectStoreTest, ExportImportRoundTripsByteIdentical) {
  ObjectStore store = MakeStore();
  store.Store(FakeEntry(0x1010, 512));
  store.Store(FakeEntry(0x2020, 2048));
  auto first = support::ReadFileBytes(EntryPath(0x1010));
  auto second = support::ReadFileBytes(EntryPath(0x2020));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());

  const std::string bundle = dir_ + "/export.dbbundle";
  auto exported = ObjectStore::ExportBundle(dir_, bundle);
  ASSERT_TRUE(exported.has_value()) << exported.error().Format();
  EXPECT_EQ(*exported, 2u);

  char tmpl[] = "/tmp/dbll_objstore_import_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string other = tmpl;
  auto imported = ObjectStore::ImportBundle(bundle, other);
  ASSERT_TRUE(imported.has_value()) << imported.error().Format();
  EXPECT_EQ(*imported, 2u);

  // The issue's contract is byte equivalence, not just semantic equality:
  // the imported files are exactly what ExportBundle read.
  auto first_copy = support::ReadFileBytes(
      other + "/" + ObjectStore::EntryFileName(0x1010));
  auto second_copy = support::ReadFileBytes(
      other + "/" + ObjectStore::EntryFileName(0x2020));
  ASSERT_TRUE(first_copy.has_value());
  ASSERT_TRUE(second_copy.has_value());
  EXPECT_EQ(*first_copy, *first);
  EXPECT_EQ(*second_copy, *second);

  (void)ObjectStore::Purge(other);
  ::rmdir(other.c_str());
}

TEST_F(ObjectStoreTest, CorruptOrTruncatedBundleImportsNothing) {
  ObjectStore store = MakeStore();
  store.Store(FakeEntry(0x3030));
  const std::string bundle = dir_ + "/export.dbbundle";
  ASSERT_TRUE(ObjectStore::ExportBundle(dir_, bundle).has_value());
  auto bytes = support::ReadFileBytes(bundle);
  ASSERT_TRUE(bytes.has_value());

  char tmpl[] = "/tmp/dbll_objstore_import_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string other = tmpl;

  // One flipped byte in the middle (caught by the trailing FNV) and a
  // truncated tail (caught by the length checks): both must import nothing
  // -- a bundle is all-or-nothing.
  auto flipped = *bytes;
  flipped[flipped.size() / 2] ^= 0xff;
  ASSERT_TRUE(support::WriteFileAtomic(bundle, flipped.data(), flipped.size())
                  .ok());
  EXPECT_FALSE(ObjectStore::ImportBundle(bundle, other).has_value());

  ASSERT_TRUE(support::WriteFileAtomic(bundle, bytes->data(),
                                       bytes->size() - 1)
                  .ok());
  EXPECT_FALSE(ObjectStore::ImportBundle(bundle, other).has_value());

  auto scan = ObjectStore::Scan(other);
  ASSERT_TRUE(scan.has_value());
  EXPECT_TRUE(scan->empty());
  (void)ObjectStore::Purge(other);
  ::rmdir(other.c_str());
}

TEST_F(ObjectStoreTest, PurgeRemovesTheRingButKeepsBundles) {
  ObjectStore::Options options;
  options.dir = dir_;
  options.shm = true;
  ObjectStore store(options);
  store.Store(FakeEntry(0x4040));
  const std::string ring = dir_ + "/" + ShmRing::RingFileName();
  const std::string bundle = dir_ + "/export.dbbundle";
  ASSERT_TRUE(ObjectStore::ExportBundle(dir_, bundle).has_value());
  ASSERT_TRUE(support::FileSize(ring).has_value());

  auto purged = ObjectStore::Purge(dir_);
  ASSERT_TRUE(purged.has_value());
  EXPECT_EQ(*purged, 1u);  // entry files only; the ring is "meta", not entry
  EXPECT_FALSE(support::FileSize(ring).has_value());
  // Bundles are deployment artifacts, not cache state: purge leaves them.
  EXPECT_TRUE(support::FileSize(bundle).has_value());
  ::unlink(bundle.c_str());
}

// --- ISA multi-versioning: the mixed-fleet contract -------------------------

/// Scoped DBLL_JIT_ISA override, restored on exit so later tests (and other
/// suites in this binary) see the real host level again.
class ScopedIsaMask {
 public:
  explicit ScopedIsaMask(const char* level) {
    if (const char* old = std::getenv("DBLL_JIT_ISA")) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv("DBLL_JIT_ISA", level, 1);
  }
  ~ScopedIsaMask() {
    if (had_old_) {
      ::setenv("DBLL_JIT_ISA", old_.c_str(), 1);
    } else {
      ::unsetenv("DBLL_JIT_ISA");
    }
  }

 private:
  std::string old_;
  bool had_old_ = false;
};

TEST_F(ObjectStoreTest, HigherIsaEntryIsACleanMissOnMaskedHost) {
  // A capable fleet peer published an avx2 variant into the shared
  // directory. A host masked down to baseline must refuse it -- installing
  // it would fault -- but as a *clean* miss: the file stays for the peers,
  // and nothing is counted as corruption.
  ObjectStore store = MakeStore();
  store.Store(FakeEntry(0x5151, 64, /*isa_level=*/1));

  {
    ScopedIsaMask mask("baseline");
    ObjectEntry loaded;
    EXPECT_FALSE(store.Load(0x5151, &loaded));
    EXPECT_EQ(store.stats().isa_refused, 1u);
    EXPECT_EQ(store.stats().corrupt_dropped, 0u);
    EXPECT_TRUE(support::FileSize(EntryPath(0x5151)).has_value());
  }

  // Unmasked, the same entry loads on any host that really has avx2.
  if (support::EffectiveIsaLevel() >= support::IsaLevel::kAvx2) {
    ObjectEntry loaded;
    EXPECT_TRUE(store.Load(0x5151, &loaded));
    EXPECT_EQ(loaded.isa_level, 1u);
  }
}

TEST_F(ObjectStoreTest, ShmRingRefusesHigherIsaEntriesToo) {
  // Store() writes through to the shm hot-entry ring, so a masked process
  // sharing the box must get the same refusal on the shared-memory rung --
  // it cannot vouch for code it cannot run.
  ObjectStore::Options options;
  options.dir = dir_;
  options.shm = true;
  ObjectStore store(options);
  store.Store(FakeEntry(0x6161, 64, /*isa_level=*/1));

  ScopedIsaMask mask("baseline");
  ObjectEntry loaded;
  EXPECT_FALSE(store.Load(0x6161, &loaded));
  EXPECT_GE(store.stats().isa_refused, 1u);
  // Refused at the ring or on disk -- either way the file survives.
  EXPECT_TRUE(support::FileSize(EntryPath(0x6161)).has_value());
}

TEST_F(ObjectStoreTest, ImplausibleIsaLevelIsCorruption) {
  // A level outside the ladder can only come from a hostile or corrupted
  // file: no host could validate it, so it is dropped, not kept.
  ASSERT_TRUE(ObjectStore::WriteEntry(dir_,
                                      FakeEntry(0x7171, 64, /*isa_level=*/9),
                                      lift::LlvmVersionString(),
                                      lift::JitTargetCpuFor(0))
                  .ok());
  ObjectStore store = MakeStore();
  ObjectEntry loaded;
  EXPECT_FALSE(store.Load(0x7171, &loaded));
  EXPECT_EQ(store.stats().isa_refused, 0u);
  EXPECT_EQ(store.stats().corrupt_dropped, 1u);
  EXPECT_FALSE(support::FileSize(EntryPath(0x7171)).has_value());
}

TEST_F(ObjectStoreTest, PersistFingerprintSeparatesIsaLevels) {
  // Coexisting variants of one request must hash to distinct files, and the
  // mapping must be deterministic -- that is what lets one shared cache
  // directory serve a mixed fleet without aliasing.
  CompileRequest request(reinterpret_cast<std::uint64_t>(&c_arith_mix),
                         lift::Signature::Ints(2));
  const SpecKey key(request);
  const std::uint64_t base = PersistFingerprint(key, request.address, 0);
  const std::uint64_t avx2 = PersistFingerprint(key, request.address, 1);
  const std::uint64_t avx512 = PersistFingerprint(key, request.address, 2);
  EXPECT_NE(base, avx2);
  EXPECT_NE(avx2, avx512);
  EXPECT_NE(base, avx512);
  EXPECT_EQ(avx2, PersistFingerprint(key, request.address, 1));
}

TEST_F(ObjectStoreTest, ImportSkipsEntriesAboveTheHostLevel) {
  // A mixed-fleet bundle carries a baseline and an avx2 variant. Importing
  // on a baseline-masked host installs only what that host can run and
  // reports the rest as skipped (not an error, not silent).
  ObjectStore store = MakeStore();
  store.Store(FakeEntry(0x8181, 64, /*isa_level=*/0));
  store.Store(FakeEntry(0x9191, 64, /*isa_level=*/1));
  const std::string bundle = dir_ + "/mixed.dbbundle";
  auto exported = ObjectStore::ExportBundle(dir_, bundle);
  ASSERT_TRUE(exported.has_value()) << exported.error().Format();
  EXPECT_EQ(*exported, 2u);

  char tmpl[] = "/tmp/dbll_objstore_import_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string other = tmpl;
  {
    ScopedIsaMask mask("baseline");
    std::uint64_t skipped_isa = 0;
    auto imported = ObjectStore::ImportBundle(bundle, other, &skipped_isa);
    ASSERT_TRUE(imported.has_value()) << imported.error().Format();
    EXPECT_EQ(*imported, 1u);
    EXPECT_EQ(skipped_isa, 1u);
    EXPECT_TRUE(support::FileSize(
                    other + "/" + ObjectStore::EntryFileName(0x8181))
                    .has_value());
    EXPECT_FALSE(support::FileSize(
                     other + "/" + ObjectStore::EntryFileName(0x9191))
                     .has_value());
  }
  // Unmasked on a capable host the same bundle imports completely.
  if (support::EffectiveIsaLevel() >= support::IsaLevel::kAvx2) {
    std::uint64_t skipped_isa = 0;
    auto imported = ObjectStore::ImportBundle(bundle, other, &skipped_isa);
    ASSERT_TRUE(imported.has_value());
    EXPECT_EQ(*imported, 2u);
    EXPECT_EQ(skipped_isa, 0u);
  }
  (void)ObjectStore::Purge(other);
  ::rmdir(other.c_str());
  ::unlink(bundle.c_str());
}

// --- service integration: the warm-start path ------------------------------

CompileRequest ArithRequest() {
  CompileRequest request(reinterpret_cast<std::uint64_t>(&c_arith_mix),
                         lift::Signature::Ints(2));
  request.FixParam(1, 7);
  return request;
}

CompileService::Options PersistOptions(const std::string& dir) {
  CompileService::Options options;
  options.persist_dir = dir;
  // These tests pin down the *disk* store's contract (corruption, faults,
  // eviction degrade to a recompile); the shm hot-entry ring in front of it
  // would legitimately serve some of those loads from shared memory and is
  // covered by its own suite (shm_ring_test.cpp).
  options.shm = false;
  return options;
}

TEST_F(ObjectStoreTest, WarmServiceStartDoesZeroLiftWork) {
  const long expected = c_arith_mix(5, 7);
  {
    CompileService cold(PersistOptions(dir_));
    ASSERT_TRUE(cold.persist_enabled());
    auto entry = cold.CompileSync(ArithRequest());
    ASSERT_TRUE(entry.has_value()) << entry.error().Format();
    EXPECT_EQ(reinterpret_cast<IntFn2>(*entry)(5, 0), expected);
    cold.WaitIdle();  // settle the worker's disk write-back
    const CacheStats stats = cold.stats();
    EXPECT_EQ(stats.compiles, 1u);
    EXPECT_EQ(stats.disk_stores, 1u);
  }
  {
    // A fresh service over the populated directory: the same request must be
    // served from disk with zero compiles and zero lift/opt/JIT wall time.
    CompileService warm(PersistOptions(dir_));
    auto entry = warm.CompileSync(ArithRequest());
    ASSERT_TRUE(entry.has_value()) << entry.error().Format();
    EXPECT_EQ(reinterpret_cast<IntFn2>(*entry)(5, 0), expected);
    const CacheStats stats = warm.stats();
    EXPECT_EQ(stats.disk_hits, 1u);
    EXPECT_EQ(stats.compiles, 0u);
    EXPECT_EQ(stats.stage_total.total_ns(), 0u);
    // The disk hit is also an in-memory miss (documented invariant)...
    EXPECT_EQ(stats.misses, 1u);
    // ...and the entry it installed serves later requests as plain hits.
    auto again = warm.CompileSync(ArithRequest());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *entry);
    EXPECT_EQ(warm.stats().hits, 1u);
  }
}

TEST_F(ObjectStoreTest, CorruptEntryFallsBackToACorrectCompile) {
  {
    CompileService cold(PersistOptions(dir_));
    auto entry = cold.CompileSync(ArithRequest());
    ASSERT_TRUE(entry.has_value());
    cold.WaitIdle();
  }
  // Corrupt every stored entry's payload; the warm service must silently
  // recompile and still produce a correct kernel.
  auto scan = ObjectStore::Scan(dir_);
  ASSERT_TRUE(scan.has_value());
  ASSERT_FALSE(scan->empty());
  for (const ObjectScanEntry& e : *scan) {
    auto bytes = support::ReadFileBytes(dir_ + "/" + e.file);
    ASSERT_TRUE(bytes.has_value());
    bytes->back() ^= 0xff;
    ASSERT_TRUE(support::WriteFileAtomic(dir_ + "/" + e.file, bytes->data(),
                                         bytes->size())
                    .ok());
  }
  CompileService warm(PersistOptions(dir_));
  auto entry = warm.CompileSync(ArithRequest());
  ASSERT_TRUE(entry.has_value()) << entry.error().Format();
  EXPECT_EQ(reinterpret_cast<IntFn2>(*entry)(5, 0), c_arith_mix(5, 7));
  const CacheStats stats = warm.stats();
  EXPECT_EQ(stats.disk_hits, 0u);
  EXPECT_EQ(stats.compiles, 1u);
}

TEST_F(ObjectStoreTest, LoadFaultInServiceDegradesToCompile) {
  {
    CompileService cold(PersistOptions(dir_));
    ASSERT_TRUE(cold.CompileSync(ArithRequest()).has_value());
    cold.WaitIdle();
  }
  ASSERT_TRUE(fault::ArmFromString("objcache.load:kIo"));
  CompileService warm(PersistOptions(dir_));
  auto entry = warm.CompileSync(ArithRequest());
  ASSERT_TRUE(entry.has_value()) << entry.error().Format();
  EXPECT_EQ(reinterpret_cast<IntFn2>(*entry)(5, 0), c_arith_mix(5, 7));
  EXPECT_EQ(warm.stats().disk_hits, 0u);
  EXPECT_EQ(warm.stats().compiles, 1u);
  fault::DisarmAll();
  // The entry survived the fault (I/O error, not corruption): a third
  // service start is warm again.
  CompileService retry(PersistOptions(dir_));
  ASSERT_TRUE(retry.CompileSync(ArithRequest()).has_value());
  EXPECT_EQ(retry.stats().disk_hits, 1u);
}

TEST_F(ObjectStoreTest, SetPersistDirRejectsUnusablePath) {
  CompileService service;
  EXPECT_FALSE(service.persist_enabled());
  // A path under a regular file can never become a directory.
  const std::string file = dir_ + "/plain_file";
  ASSERT_TRUE(support::WriteFileAtomic(file, "x", 1).ok());
  const Status status = service.set_persist_dir(file + "/sub");
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(service.persist_enabled());
  EXPECT_FALSE(service.last_error().ok());

  // A usable directory attaches and starts serving.
  ASSERT_TRUE(service.set_persist_dir(dir_).ok());
  EXPECT_TRUE(service.persist_enabled());
  ASSERT_TRUE(service.CompileSync(ArithRequest()).has_value());
  service.WaitIdle();
  EXPECT_EQ(service.persist_stats().stores, 1u);
  (void)support::RemoveFile(file);  // let TearDown's rmdir succeed
}

TEST_F(ObjectStoreTest, PersistFingerprintSeparatesSpecializations) {
  CompileRequest a(reinterpret_cast<std::uint64_t>(&c_arith_mix),
                   lift::Signature::Ints(2));
  a.FixParam(1, 7);
  CompileRequest b(reinterpret_cast<std::uint64_t>(&c_arith_mix),
                   lift::Signature::Ints(2));
  b.FixParam(1, 8);
  EXPECT_NE(PersistFingerprint(SpecKey(a), a.address),
            PersistFingerprint(SpecKey(b), b.address));
  EXPECT_EQ(PersistFingerprint(SpecKey(a), a.address),
            PersistFingerprint(SpecKey(a), a.address));
}

}  // namespace
}  // namespace dbll::runtime
