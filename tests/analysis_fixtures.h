// dbll tests -- fixtures for the static-analysis suite (analysis_test.cpp).
//
// Compiled in a separate TU (analysis_fixtures.cpp) with the controlled
// corpus flags so the generated code stays within the decoder's supported
// subset -- except for the deliberate violation: af_indirect_call calls
// through a volatile function pointer, which -O2 must leave as an indirect
// call. The auditor flags it kFatal (kIndirectCall) while the DBrew tier
// handles it fine (the pointer is in live memory at rewrite time), which is
// exactly the audit-gate scenario the CompileService tests exercise.
#pragma once

extern "C" {

typedef long (*AfFn)(long);

/// Plain liftable helper; also the value of af_indirect_target.
long af_double(long x);

/// Volatile so the compiler cannot devirtualize the call in af_indirect_call.
extern volatile AfFn af_indirect_target;

/// Calls through af_indirect_target: statically not lift-eligible.
long af_indirect_call(long x);

/// Directly calls af_indirect_call: the fatal sits one call level down, so
/// the transitive audit must annotate the diagnostic with the callee chain.
long af_calls_bad(long x);

}  // extern "C"
