// dbll tests -- unoptimized (-O0) input code: rbp frames, stack locals,
// argument spills. Exercises leave, rbp-based addressing, and dense stack
// traffic in both the rewriter and the lifter.
#include <gtest/gtest.h>

#include <random>

#include "corpus_o0.h"
#include "dbll/dbrew/rewriter.h"
#include "dbll/lift/lifter.h"

namespace dbll {
namespace {

lift::Jit& SharedJit() {
  static lift::Jit jit;
  return jit;
}

using Fn2 = long (*)(long, long);

struct Case {
  const char* name;
  Fn2 fn;
};

const Case kCases[] = {
    {"locals", o0_locals},
    {"branchy", o0_branchy},
    {"loop", [](long a, long b) { return o0_loop((a & 63) + (b & 0)); }},
    {"calls", [](long a, long) { return o0_calls(a & 0xffff); }},
};

class O0Test : public testing::TestWithParam<Case> {};

TEST_P(O0Test, DbrewIdentity) {
  const Case& c = GetParam();
  dbrew::Rewriter rewriter(reinterpret_cast<std::uint64_t>(c.fn));
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << c.name << ": "
                                     << rewritten.error().Format();
  auto fn = reinterpret_cast<Fn2>(*rewritten);
  std::mt19937_64 rng(1);
  for (int i = 0; i < 60; ++i) {
    const long a = static_cast<long>(rng());
    const long b = static_cast<long>(rng());
    EXPECT_EQ(fn(a, b), c.fn(a, b)) << c.name;
  }
}

TEST_P(O0Test, DbrewParamFixation) {
  const Case& c = GetParam();
  dbrew::Rewriter rewriter(reinterpret_cast<std::uint64_t>(c.fn));
  rewriter.SetParam(0, 23);
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << c.name << ": "
                                     << rewritten.error().Format();
  auto fn = reinterpret_cast<Fn2>(*rewritten);
  std::mt19937_64 rng(2);
  for (int i = 0; i < 40; ++i) {
    const long b = static_cast<long>(rng());
    EXPECT_EQ(fn(0xdead, b), c.fn(23, b)) << c.name;
  }
}

TEST_P(O0Test, LiftedMatchesNative) {
  const Case& c = GetParam();
  lift::Lifter lifter;
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(c.fn),
                            lift::Signature::Ints(2));
  ASSERT_TRUE(lifted.has_value()) << c.name << ": "
                                  << lifted.error().Format();
  auto compiled = lifted->Compile(SharedJit());
  ASSERT_TRUE(compiled.has_value()) << c.name << ": "
                                    << compiled.error().Format();
  auto fn = reinterpret_cast<Fn2>(*compiled);
  std::mt19937_64 rng(3);
  for (int i = 0; i < 60; ++i) {
    const long a = static_cast<long>(rng());
    const long b = static_cast<long>(rng());
    EXPECT_EQ(fn(a, b), c.fn(a, b)) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, O0Test, testing::ValuesIn(kCases),
                         [](const testing::TestParamInfo<Case>& info) {
                           return info.param.name;
                         });

TEST(O0Test, FloatFunction) {
  lift::Lifter lifter;
  lift::Signature sig;
  sig.args = {lift::ArgKind::kF64, lift::ArgKind::kF64};
  sig.ret = lift::RetKind::kF64;
  auto lifted =
      lifter.Lift(reinterpret_cast<std::uint64_t>(&o0_float), sig);
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  auto compiled = lifted->Compile(SharedJit());
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  auto fn = reinterpret_cast<double (*)(double, double)>(*compiled);
  EXPECT_EQ(fn(3.0, 4.0), o0_float(3.0, 4.0));
  EXPECT_EQ(fn(-1.5, 0.25), o0_float(-1.5, 0.25));
}

TEST(O0Test, ArrayFunction) {
  long data[16];
  for (int i = 0; i < 16; ++i) data[i] = (i * 37) % 101 - 50;
  dbrew::Rewriter rewriter(reinterpret_cast<std::uint64_t>(&o0_array));
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
  auto fn = reinterpret_cast<long (*)(const long*, long)>(*rewritten);
  EXPECT_EQ(fn(data, 16), o0_array(data, 16));
  EXPECT_EQ(fn(data, 1), o0_array(data, 1));

  // Stack-heavy -O0 loop also folds when everything is known.
  dbrew::Rewriter fixed(reinterpret_cast<std::uint64_t>(&o0_array));
  fixed.SetParam(0, reinterpret_cast<std::uint64_t>(data));
  fixed.SetParam(1, 16);
  fixed.SetMemRange(data, data + 16);
  auto spec = fixed.Rewrite();
  ASSERT_TRUE(spec.has_value()) << spec.error().Format();
  auto sfn = reinterpret_cast<long (*)(const long*, long)>(*spec);
  EXPECT_EQ(sfn(nullptr, 0), o0_array(data, 16));
  EXPECT_GT(fixed.stats().folded_instrs, 10u);
}

}  // namespace
}  // namespace dbll
