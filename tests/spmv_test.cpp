// dbll tests -- SpMV case study: CSR construction, kernel numerics, and
// pattern specialization through DBrew and the lifter.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "dbll/dbrew/rewriter.h"
#include "dbll/lift/lifter.h"
#include "dbll/spmv/spmv.h"
#include "dbll/x86/cfg.h"

namespace dbll::spmv {
namespace {

std::vector<double> RandomVector(long n, std::uint64_t seed) {
  std::vector<double> x(static_cast<std::size_t>(n));
  std::mt19937_64 rng(seed);
  for (auto& v : x) v = static_cast<double>(rng() % 1000) * 0.001 - 0.5;
  return x;
}

TEST(CsrBuilderTest, BandedPattern) {
  CsrBuilder builder = CsrBuilder::Banded(8, {-1, 0, 1});
  CsrMatrix m = builder.Finish();
  EXPECT_EQ(m.rows, 8);
  // Interior rows have 3 entries, the two boundary rows 2.
  EXPECT_EQ(m.row_start[8], 3 * 8 - 2);
  EXPECT_EQ(m.col_idx[0], 0);
  EXPECT_EQ(m.col_idx[1], 1);
}

TEST(CsrBuilderTest, EmptyRowsAreHandled) {
  CsrBuilder builder(4, 4);
  builder.Add(0, 1, 2.0);
  builder.Add(3, 2, 5.0);  // rows 1 and 2 stay empty
  CsrMatrix m = builder.Finish();
  EXPECT_EQ(m.row_start[1], 1);
  EXPECT_EQ(m.row_start[2], 1);
  EXPECT_EQ(m.row_start[3], 1);
  EXPECT_EQ(m.row_start[4], 2);
}

TEST(SpmvKernelTest, MatchesReference) {
  CsrBuilder builder = CsrBuilder::Random(64, 6, 99);
  CsrMatrix m = builder.Finish();
  const std::vector<double> x = RandomVector(64, 1);
  std::vector<double> y_ref(64), y_row(64), y_full(64);
  SpmvReference(m, x.data(), y_ref.data());
  for (long r = 0; r < m.rows; ++r) {
    spmv_row(&m, x.data(), y_row.data(), r);
  }
  spmv_full(&m, x.data(), y_full.data(), m.rows);
  EXPECT_EQ(y_row, y_ref);
  EXPECT_EQ(y_full, y_ref);
}

TEST(SpmvSpecializeTest, DbrewUnrollsRow) {
  // The matrix (pattern AND values) is fixed: a single row kernel
  // specialized for row 3 must fold all index loads and the loop.
  static CsrBuilder builder = CsrBuilder::Banded(16, {-1, 0, 1});
  static const CsrMatrix m = builder.Finish();

  dbrew::Rewriter rewriter(reinterpret_cast<std::uint64_t>(&spmv_row));
  rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(&m));
  rewriter.SetParam(3, 3);  // row fixed
  rewriter.SetMemRange(&m, &m + 1);
  rewriter.SetMemRange(m.row_start, m.row_start + m.rows + 1);
  rewriter.SetMemRange(m.col_idx, m.col_idx + m.row_start[m.rows]);
  rewriter.SetMemRange(m.values, m.values + m.row_start[m.rows]);
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();

  // Fully unrolled: no conditional branches left.
  auto cfg = x86::BuildCfg(*rewritten);
  ASSERT_TRUE(cfg.has_value());
  for (const auto& [address, block] : cfg->blocks) {
    for (const auto& instr : block.instrs) {
      EXPECT_NE(instr.mnemonic, x86::Mnemonic::kJcc);
    }
  }

  const std::vector<double> x = RandomVector(16, 7);
  std::vector<double> y_ref(16, 0.0), y_got(16, 0.0);
  spmv_row(&m, x.data(), y_ref.data(), 3);
  reinterpret_cast<void (*)(const CsrMatrix*, const double*, double*, long)>(
      *rewritten)(nullptr, x.data(), y_got.data(), 999);
  EXPECT_EQ(y_got[3], y_ref[3]);
}

TEST(SpmvSpecializeTest, PatternOnlySpecializationKeepsValueLoads) {
  // Only the *pattern* is fixed; the values array may change between calls
  // (e.g. during matrix assembly). Value loads must stay live.
  static CsrBuilder builder = CsrBuilder::Banded(16, {0, 2});
  static CsrMatrix m = builder.Finish();

  dbrew::Rewriter rewriter(reinterpret_cast<std::uint64_t>(&spmv_row));
  rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(&m));
  rewriter.SetParam(3, 5);
  rewriter.SetMemRange(&m, &m + 1);
  rewriter.SetMemRange(m.row_start, m.row_start + m.rows + 1);
  rewriter.SetMemRange(m.col_idx, m.col_idx + m.row_start[m.rows]);
  // NOT fixing m.values.
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();

  const std::vector<double> x = RandomVector(16, 13);
  std::vector<double> y_ref(16, 0.0), y_got(16, 0.0);
  auto fn =
      reinterpret_cast<void (*)(const CsrMatrix*, const double*, double*,
                                long)>(*rewritten);
  spmv_row(&m, x.data(), y_ref.data(), 5);
  fn(nullptr, x.data(), y_got.data(), 0);
  EXPECT_EQ(y_got[5], y_ref[5]);

  // Mutate a value the row uses; the specialized kernel must see the change.
  const_cast<double*>(m.values)[m.row_start[5]] += 1.5;
  spmv_row(&m, x.data(), y_ref.data(), 5);
  fn(nullptr, x.data(), y_got.data(), 0);
  EXPECT_EQ(y_got[5], y_ref[5]);
  const_cast<double*>(m.values)[m.row_start[5]] -= 1.5;
}

TEST(SpmvSpecializeTest, LifterFixesFullProduct) {
  static CsrBuilder builder = CsrBuilder::Random(32, 4, 5);
  static const CsrMatrix m = builder.Finish();

  static lift::Jit jit;
  // Pinned to the baseline ISA level: the EXPECT_EQ below asserts *bit*
  // equality against the natively-built reference, which only holds where
  // the backend has no FMA -- on an AVX2+ target the default fast-math
  // flags let mul+add contract to vfmadd (single rounding). Per-level
  // numerics are covered by bench/fig_vectorize's tolerance checksums.
  lift::LiftConfig baseline_config;
  baseline_config.isa_level = 0;
  lift::Lifter lifter(baseline_config);
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(&spmv_full),
                            lift::Signature::Ints(4, lift::RetKind::kVoid));
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  auto compiled = lifted->Compile(jit);
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();

  const std::vector<double> x = RandomVector(32, 21);
  std::vector<double> y_ref(32), y_got(32);
  SpmvReference(m, x.data(), y_ref.data());
  reinterpret_cast<void (*)(const CsrMatrix*, const double*, double*, long)>(
      *compiled)(&m, x.data(), y_got.data(), m.rows);
  EXPECT_EQ(y_got, y_ref);
}

TEST(SpmvSpecializeTest, DbrewPlusLlvmOnFullProduct) {
  static CsrBuilder builder = CsrBuilder::Banded(24, {-2, 0, 2});
  static const CsrMatrix m = builder.Finish();

  dbrew::Rewriter rewriter(reinterpret_cast<std::uint64_t>(&spmv_full));
  rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(&m));
  rewriter.SetParam(3, m.rows);  // row count fixed -> outer loop unrolls
  rewriter.SetMemRange(&m, &m + 1);
  rewriter.SetMemRange(m.row_start, m.row_start + m.rows + 1);
  rewriter.SetMemRange(m.col_idx, m.col_idx + m.row_start[m.rows]);
  rewriter.SetMemRange(m.values, m.values + m.row_start[m.rows]);
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();

  static lift::Jit jit;
  // Baseline-pinned for the same bit-equality reason as LifterFixesFullProduct.
  lift::LiftConfig baseline_config;
  baseline_config.isa_level = 0;
  lift::Lifter lifter(baseline_config);
  auto lifted = lifter.Lift(*rewritten,
                            lift::Signature::Ints(4, lift::RetKind::kVoid));
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  auto compiled = lifted->Compile(jit);
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();

  const std::vector<double> x = RandomVector(24, 3);
  std::vector<double> y_ref(24), y_dbrew(24), y_llvm(24);
  SpmvReference(m, x.data(), y_ref.data());
  using Fn = void (*)(const CsrMatrix*, const double*, double*, long);
  reinterpret_cast<Fn>(*rewritten)(nullptr, x.data(), y_dbrew.data(), 0);
  reinterpret_cast<Fn>(*compiled)(nullptr, x.data(), y_llvm.data(), 0);
  EXPECT_EQ(y_dbrew, y_ref);
  EXPECT_EQ(y_llvm, y_ref);
}

}  // namespace
}  // namespace dbll::spmv
