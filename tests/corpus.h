// dbll tests -- corpus of compiled functions used by the DBrew and lifter
// equivalence tests. Definitions live in corpus.cpp, which is compiled with
// the controlled kernel flags so the machine code stays within the supported
// instruction subset.
#pragma once

#include <cstdint>

extern "C" {

// Integer arithmetic and bit manipulation.
long c_add3(long a, long b, long c);
long c_arith_mix(long a, long b);
long c_imul_chain(long a, long b);
long c_shifts(long a, long b);
long c_shift_const(long a);
long c_bits(long a, long b);
long c_neg_not(long a);
long c_abs(long a);
long c_min_signed(long a, long b);
long c_max_unsigned(unsigned long a, unsigned long b);
long c_cmp_chain(long a, long b);
long c_div_mod(long a, long b);
long c_udiv_mod(unsigned long a, unsigned long b);
long c_mul_wide(long a, long b);
int c_narrow32(int a, int b);
int c_u8_ops(unsigned char a, unsigned char b);
int c_i16_ops(short a, short b);
long c_sext_zext(int a, unsigned int b);
long c_select(long a, long b);
long c_setcc_sum(long a, long b);

// Control flow.
long c_branch_tree(long a);
long c_loop_sum(long n);
long c_loop_fib(long n);
long c_gcd(long a, long b);
long c_collatz_steps(long n);
long c_nested_loops(long n, long m);
long c_early_return(long a, long b);
long c_short_circuit(long a, long b);
long c_loop_to_entry(long n);
long c_switch_dispatch(long a, long b);

// Memory.
long c_array_sum(const long* data, long count);
long c_array_index(const long* data, long index);
double c_array_sum_f64(const double* data, long count);
long c_strlen_like(const char* text);
void c_store_fields(long* out, long a, long b);
long c_stack_spill(long a, long b, long c, long d, long e, long f);
long c_struct_walk(const void* s);

// Floating point.
double c_poly(double x);
double c_fp_mix(double a, double b);
double c_fp_sqrt(double a);
double c_fp_minmax(double a, double b);
double c_int_to_fp(long a, long b);
long c_fp_to_int(double a);
float c_float_ops(float a, float b);
double c_float_to_double(float a);
double c_fp_branch(double a, double b);
double c_dot3(const double* a, const double* b);

// Calls.
long c_call_helper(long a, long b);
long c_call_chain(long a);
long c_factorial(long n);

// The struct used by c_struct_walk.
struct CorpusNode {
  long value;
  long weight;
};

}  // extern "C"

namespace dbll_tests {

/// Number of (int -> int) corpus entries for parameterized sweeps.
struct IntFn {
  const char* name;
  long (*fn)(long, long);
};

/// Two-argument integer corpus table (defined in corpus.cpp).
extern const IntFn kIntCorpus[];
extern const int kIntCorpusSize;

struct FpFn {
  const char* name;
  double (*fn)(double, double);
};
extern const FpFn kFpCorpus[];
extern const int kFpCorpusSize;

}  // namespace dbll_tests

// --- Vector corpus (SSE2 intrinsics / inline asm; defined in corpus.cpp) ---
extern "C" {
long v_paddd_sum(const void* a, const void* b);
long v_cmp_mask(const void* a, const void* b);
long v_minmax_bytes(const void* a, const void* b);
long v_shift_mix(const void* a, long count);
long v_mul_lanes(const void* a, const void* b);
long v_unpack_digest(const void* a, const void* b);
long v_avg_bytes(const void* a, const void* b);
long v_memchr_like(const void* data, long byte);
long v_shld(long a, long b);
long v_shrd(long a, long b);
long v_bittest(long a, long b);
double v_cmpsd_select(double a, double b);
long v_movmskpd(double a, double b);

// Callback-fusion fixtures (generic routine + callbacks, see dbrew_test).
typedef long (*CbFn)(long, const long*);
struct CbConfig {
  CbFn fn;
  const long* params;
};
long cb_affine(long x, const long* p);
long cb_poly(long x, const long* p);
long cb_apply(const CbConfig* config, long count);
}

namespace dbll_tests {

/// (const void*, const void*) -> long vector corpus for equivalence sweeps.
struct VecFn {
  const char* name;
  long (*fn)(const void*, const void*);
};
extern const VecFn kVecCorpus[];
extern const int kVecCorpusSize;

}  // namespace dbll_tests
