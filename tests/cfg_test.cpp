// dbll tests -- CFG discovery: block formation, splitting, loops, errors.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "dbll/x86/cfg.h"

namespace dbll::x86 {
namespace {

Expected<Cfg> Build(const std::vector<std::uint8_t>& code,
                    std::uint64_t base = 0x1000) {
  return BuildCfgFromBuffer(code, base, base);
}

TEST(CfgTest, StraightLine) {
  // mov rax, rdi; add rax, rsi; ret
  auto cfg = Build({0x48, 0x89, 0xf8, 0x48, 0x01, 0xf0, 0xc3});
  ASSERT_TRUE(cfg.has_value()) << cfg.error().Format();
  EXPECT_EQ(cfg->blocks.size(), 1u);
  EXPECT_EQ(cfg->instr_count, 3u);
  EXPECT_TRUE(cfg->entry_block().EndsWithRet());
  EXPECT_EQ(cfg->entry_block().fall_through, 0u);
  EXPECT_EQ(cfg->entry_block().branch_target, 0u);
}

TEST(CfgTest, ConditionalBranchMakesThreeBlocks) {
  // 1000: test rdi, rdi
  // 1003: je 1008
  // 1005: mov eax, 1   (fall through)
  // 100a: ret           -- note je target 1008 is inside?? use layout:
  // Layout carefully:
  //   0: 48 85 ff          test rdi,rdi
  //   3: 74 06             je +6 -> 0xb
  //   5: b8 01 00 00 00    mov eax,1
  //   a: c3                ret
  //   b: 31 c0             xor eax,eax
  //   d: c3                ret
  auto cfg = Build({0x48, 0x85, 0xff, 0x74, 0x06, 0xb8, 0x01, 0x00, 0x00,
                    0x00, 0xc3, 0x31, 0xc0, 0xc3});
  ASSERT_TRUE(cfg.has_value()) << cfg.error().Format();
  EXPECT_EQ(cfg->blocks.size(), 3u);
  const BasicBlock& entry = cfg->entry_block();
  EXPECT_EQ(entry.branch_target, 0x100bu);
  EXPECT_EQ(entry.fall_through, 0x1005u);
  EXPECT_TRUE(cfg->blocks.at(0x1005).EndsWithRet());
  EXPECT_TRUE(cfg->blocks.at(0x100b).EndsWithRet());
}

TEST(CfgTest, LoopBackEdge) {
  //   0: 31 c0         xor eax,eax
  //   2: 48 ff c8      dec rax... use: add rax? layout:
  //   2: 48 01 f8      add rax,rdi
  //   5: 48 ff cf      dec rdi
  //   8: 75 f8         jne 0x2
  //   a: c3            ret
  auto cfg = Build({0x31, 0xc0, 0x48, 0x01, 0xf8, 0x48, 0xff, 0xcf, 0x75,
                    0xf8, 0xc3});
  ASSERT_TRUE(cfg.has_value()) << cfg.error().Format();
  // Blocks: [0..2) entry, [2..a) loop body, [a..] exit.
  EXPECT_EQ(cfg->blocks.size(), 3u);
  const BasicBlock& body = cfg->blocks.at(0x1002);
  EXPECT_EQ(body.branch_target, 0x1002u);  // self loop
  EXPECT_EQ(body.fall_through, 0x100au);
}

TEST(CfgTest, JumpIntoBlockSplitsIt) {
  //   0: b8 01 00 00 00   mov eax,1
  //   5: ff c0            inc eax
  //   7: 83 f8 0a         cmp eax,10
  //   a: 7c f9            jl 0x5     <- jumps into the middle of the
  //                                     linear run, so [0,5) and [5,..) split
  //   c: c3               ret
  auto cfg = Build({0xb8, 0x01, 0x00, 0x00, 0x00, 0xff, 0xc0, 0x83, 0xf8,
                    0x0a, 0x7c, 0xf9, 0xc3});
  ASSERT_TRUE(cfg.has_value()) << cfg.error().Format();
  EXPECT_EQ(cfg->blocks.size(), 3u);
  ASSERT_TRUE(cfg->blocks.count(0x1005));
  const BasicBlock& entry = cfg->entry_block();
  EXPECT_EQ(entry.instrs.size(), 1u);  // only the mov
  EXPECT_EQ(entry.fall_through, 0x1005u);
}

TEST(CfgTest, EveryInstructionInExactlyOneBlock) {
  auto cfg = Build({0xb8, 0x01, 0x00, 0x00, 0x00, 0xff, 0xc0, 0x83, 0xf8,
                    0x0a, 0x7c, 0xf9, 0xc3});
  ASSERT_TRUE(cfg.has_value());
  std::size_t total = 0;
  std::set<std::uint64_t> seen;
  for (const auto& [address, block] : cfg->blocks) {
    for (const Instr& instr : block.instrs) {
      EXPECT_TRUE(seen.insert(instr.address).second)
          << "duplicate instruction at " << instr.address;
      ++total;
    }
  }
  EXPECT_EQ(total, cfg->instr_count);
}

TEST(CfgTest, UnconditionalJumpForward) {
  //   0: eb 02    jmp +2 -> 4
  //   2: 31 c0    xor eax,eax   (dead)
  //   4: c3       ret
  auto cfg = Build({0xeb, 0x02, 0x31, 0xc0, 0xc3});
  ASSERT_TRUE(cfg.has_value());
  // The dead block is never decoded.
  EXPECT_EQ(cfg->blocks.size(), 2u);
  EXPECT_EQ(cfg->entry_block().branch_target, 0x1004u);
  EXPECT_EQ(cfg->entry_block().fall_through, 0u);
}

TEST(CfgTest, CallTargetsRecorded) {
  //   0: e8 06 00 00 00   call +6 -> 0xb
  //   5: e8 06 00 00 00   call +6 -> 0x10
  //   a: c3               ret
  auto cfg = Build({0xe8, 0x06, 0x00, 0x00, 0x00, 0xe8, 0x06, 0x00, 0x00,
                    0x00, 0xc3});
  ASSERT_TRUE(cfg.has_value());
  ASSERT_EQ(cfg->call_targets.size(), 2u);
  EXPECT_EQ(cfg->call_targets[0], 0x100bu);
  EXPECT_EQ(cfg->call_targets[1], 0x1010u);
  // Calls do not terminate blocks.
  EXPECT_EQ(cfg->blocks.size(), 1u);
}

TEST(CfgTest, IndirectJumpRejected) {
  // jmp rax
  auto cfg = Build({0xff, 0xe0});
  ASSERT_FALSE(cfg.has_value());
  EXPECT_EQ(cfg.error().kind(), ErrorKind::kUnsupported);
}

TEST(CfgTest, JumpOutsideBufferRejected) {
  // jmp +0x100 with only a few bytes of buffer
  auto cfg = Build({0xe9, 0x00, 0x01, 0x00, 0x00});
  ASSERT_FALSE(cfg.has_value());
  EXPECT_EQ(cfg.error().kind(), ErrorKind::kUnsupported);
}

TEST(CfgTest, JumpIntoInstructionMiddleRejected) {
  //   0: b8 01 00 00 00  mov eax, imm32
  //   5: eb fa           jmp -6 -> 0x1 (inside the mov)
  auto cfg = Build({0xb8, 0x01, 0x00, 0x00, 0x00, 0xeb, 0xfa});
  ASSERT_FALSE(cfg.has_value());
}

TEST(CfgTest, InstructionLimitEnforced) {
  std::vector<std::uint8_t> code(64, 0x90);
  code.push_back(0xc3);
  CfgOptions options;
  options.max_instructions = 10;
  auto cfg = BuildCfgFromBuffer(code, 0x1000, 0x1000, options);
  ASSERT_FALSE(cfg.has_value());
  EXPECT_EQ(cfg.error().kind(), ErrorKind::kResourceLimit);
}

TEST(CfgTest, PredecessorsRecordedOnSplit) {
  // Same layout as JumpIntoBlockSplitsIt: the jl splits the linear run at
  // 0x1005. The split must leave the entry block as a *fall-through*
  // predecessor of the loop head -- the regression was dropping exactly this
  // edge, which under-approximates liveness at the loop head.
  auto cfg = Build({0xb8, 0x01, 0x00, 0x00, 0x00, 0xff, 0xc0, 0x83, 0xf8,
                    0x0a, 0x7c, 0xf9, 0xc3});
  ASSERT_TRUE(cfg.has_value()) << cfg.error().Format();
  const BasicBlock& head = cfg->blocks.at(0x1005);
  // Predecessors: the entry block (fall-through after the split) and the
  // loop body itself (back edge of the jl).
  std::set<std::uint64_t> preds(head.predecessors.begin(),
                                head.predecessors.end());
  EXPECT_EQ(preds, (std::set<std::uint64_t>{0x1000u, 0x1005u}));
  // The exit block is reached only by falling through the jl.
  const BasicBlock& exit = cfg->blocks.at(0x100c);
  ASSERT_EQ(exit.predecessors.size(), 1u);
  EXPECT_EQ(exit.predecessors[0], 0x1005u);
  // The entry block has no predecessor.
  EXPECT_TRUE(cfg->entry_block().predecessors.empty());
}

TEST(CfgTest, PredecessorsOnLoopBackEdge) {
  // Layout of LoopBackEdge: entry [0,2), body [2,a) with a jne back edge,
  // exit [a,..). The body has two predecessors (entry fall-through + its own
  // back edge); each predecessor appears exactly once.
  auto cfg = Build({0x31, 0xc0, 0x48, 0x01, 0xf8, 0x48, 0xff, 0xcf, 0x75,
                    0xf8, 0xc3});
  ASSERT_TRUE(cfg.has_value()) << cfg.error().Format();
  const BasicBlock& body = cfg->blocks.at(0x1002);
  std::set<std::uint64_t> preds(body.predecessors.begin(),
                                body.predecessors.end());
  EXPECT_EQ(preds, (std::set<std::uint64_t>{0x1000u, 0x1002u}));
  EXPECT_EQ(body.predecessors.size(), 2u);  // no duplicate edges
  const BasicBlock& exit = cfg->blocks.at(0x100a);
  ASSERT_EQ(exit.predecessors.size(), 1u);
  EXPECT_EQ(exit.predecessors[0], 0x1002u);
}

// Local helper the live-decode test points at.
__attribute__((noinline, used)) static long LiveProbe(long a, long b) {
  return a + b;
}

TEST(CfgTest, LiveFunctionDecodes) {
  // Decode this test binary's own (tiny, branch-free) function.
  auto cfg = BuildCfg(reinterpret_cast<std::uint64_t>(&LiveProbe));
  ASSERT_TRUE(cfg.has_value()) << cfg.error().Format();
  EXPECT_GE(cfg->instr_count, 1u);
}

}  // namespace
}  // namespace dbll::x86
