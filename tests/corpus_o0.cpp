// dbll tests -- unoptimized corpus: compiled at -O0 these functions use
// rbp-based frames, keep every local on the stack, and spill arguments --
// stressing the virtual stack (lifter) and the stack map (DBrew) far more
// than the -O2 corpus.
#include "corpus_o0.h"

#define NOINLINE __attribute__((noinline))

extern "C" {

NOINLINE long o0_locals(long a, long b) {
  long x = a + 1;
  long y = b - 2;
  long z = x * y;
  long w = z + x - y;
  return w * 3 + z;
}

NOINLINE long o0_branchy(long a, long b) {
  long result = 0;
  if (a > b) {
    result = a - b;
  } else if (a < b) {
    result = b - a;
  } else {
    result = a + b;
  }
  if (result > 100) {
    result = result / 2;
  }
  return result;
}

NOINLINE long o0_loop(long n) {
  long sum = 0;
  for (long i = 0; i < n; i++) {
    long square = i * i;
    sum += square;
  }
  return sum;
}

NOINLINE double o0_float(double a, double b) {
  double t1 = a * 2.0;
  double t2 = b + 0.5;
  double t3 = t1 / t2;
  return t3 - a + b;
}

NOINLINE long o0_array(const long* data, long n) {
  long best = data[0];
  for (long i = 1; i < n; i++) {
    long v = data[i];
    if (v > best) {
      best = v;
    }
  }
  return best;
}

static NOINLINE long o0_helper(long x) {
  long doubled = x * 2;
  return doubled + 1;
}

NOINLINE long o0_calls(long a) {
  long first = o0_helper(a);
  long second = o0_helper(first);
  return first + second;
}

}  // extern "C"
