// dbll tests -- support primitives: Error/Expected/Status, CodeBuffer,
// hex formatting.
#include <gtest/gtest.h>

#include <cstring>

#include "dbll/support/code_buffer.h"
#include "dbll/support/error.h"
#include "dbll/support/hexdump.h"

namespace dbll {
namespace {

TEST(ErrorTest, DefaultIsOk) {
  Error error;
  EXPECT_TRUE(error.ok());
  EXPECT_EQ(error.kind(), ErrorKind::kNone);
}

TEST(ErrorTest, FormatIncludesKindMessageAddress) {
  Error error(ErrorKind::kDecode, "bad byte", 0x1234);
  const std::string text = error.Format();
  EXPECT_NE(text.find("decode"), std::string::npos);
  EXPECT_NE(text.find("bad byte"), std::string::npos);
  EXPECT_NE(text.find("0x1234"), std::string::npos);
}

TEST(ErrorTest, AllKindsHaveNames) {
  for (int k = 0; k <= static_cast<int>(ErrorKind::kInternal); ++k) {
    EXPECT_NE(ToString(static_cast<ErrorKind>(k)), "unknown");
  }
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value_or(7), 42);
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> e(Error(ErrorKind::kEncode, "nope"));
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error().kind(), ErrorKind::kEncode);
  EXPECT_EQ(e.value_or(7), 7);
}

TEST(ExpectedTest, MoveOnlyPayload) {
  Expected<std::unique_ptr<int>> e(std::make_unique<int>(5));
  ASSERT_TRUE(e.has_value());
  std::unique_ptr<int> taken = std::move(e).value();
  EXPECT_EQ(*taken, 5);
}

TEST(StatusTest, OkAndError) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  Status bad = Error(ErrorKind::kLift, "x");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().kind(), ErrorKind::kLift);
}

Expected<int> TryHelper(bool fail) {
  Expected<int> source = fail ? Expected<int>(Error(ErrorKind::kJit, "inner"))
                              : Expected<int>(10);
  DBLL_TRY(int value, std::move(source));
  DBLL_TRY(int doubled, Expected<int>(value * 2));
  return doubled;
}

TEST(TryMacroTest, PropagatesAndUnwraps) {
  auto good = TryHelper(false);
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(*good, 20);
  auto bad = TryHelper(true);
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().kind(), ErrorKind::kJit);
}

// --- CodeBuffer --------------------------------------------------------------

TEST(CodeBufferTest, AllocateRoundsToPage) {
  auto buffer = CodeBuffer::Allocate(100);
  ASSERT_TRUE(buffer.has_value());
  EXPECT_GE(buffer->capacity(), 100u);
  EXPECT_EQ(buffer->capacity() % 4096, 0u);
  EXPECT_EQ(buffer->used(), 0u);
}

TEST(CodeBufferTest, ZeroSizeFails) {
  auto buffer = CodeBuffer::Allocate(0);
  EXPECT_FALSE(buffer.has_value());
}

TEST(CodeBufferTest, AppendAdvances) {
  auto buffer = CodeBuffer::Allocate(4096);
  ASSERT_TRUE(buffer.has_value());
  const std::uint8_t code[] = {0x90, 0x90, 0xc3};
  auto dest = buffer->Append(code);
  ASSERT_TRUE(dest.has_value());
  EXPECT_EQ(buffer->used(), 3u);
  EXPECT_EQ(std::memcmp(*dest, code, 3), 0);
}

TEST(CodeBufferTest, ExhaustionReportsResourceLimit) {
  auto buffer = CodeBuffer::Allocate(4096);
  ASSERT_TRUE(buffer.has_value());
  auto big = buffer->Reserve(buffer->capacity() + 1);
  ASSERT_FALSE(big.has_value());
  EXPECT_EQ(big.error().kind(), ErrorKind::kResourceLimit);
}

TEST(CodeBufferTest, SealedBufferExecutes) {
  auto buffer = CodeBuffer::Allocate(4096);
  ASSERT_TRUE(buffer.has_value());
  // mov eax, 42; ret
  const std::uint8_t code[] = {0xb8, 0x2a, 0x00, 0x00, 0x00, 0xc3};
  ASSERT_TRUE(buffer->Append(code).has_value());
  ASSERT_TRUE(buffer->Seal().ok());
  auto fn = buffer->EntryAs<int (*)()>();
  EXPECT_EQ(fn(), 42);
}

TEST(CodeBufferTest, SealedBufferRejectsWrites) {
  auto buffer = CodeBuffer::Allocate(4096);
  ASSERT_TRUE(buffer.has_value());
  const std::uint8_t code[] = {0xc3};
  ASSERT_TRUE(buffer->Append(code).has_value());
  ASSERT_TRUE(buffer->Seal().ok());
  EXPECT_FALSE(buffer->Append(code).has_value());
  ASSERT_TRUE(buffer->Unseal().ok());
  EXPECT_TRUE(buffer->Append(code).has_value());
}

TEST(CodeBufferTest, ResetRewinds) {
  auto buffer = CodeBuffer::Allocate(4096);
  ASSERT_TRUE(buffer.has_value());
  const std::uint8_t code[] = {1, 2, 3, 4};
  ASSERT_TRUE(buffer->Append(code).has_value());
  buffer->Reset(2);
  EXPECT_EQ(buffer->used(), 2u);
  buffer->Reset();
  EXPECT_EQ(buffer->used(), 0u);
}

TEST(CodeBufferTest, MoveTransfersOwnership) {
  auto buffer = CodeBuffer::Allocate(4096);
  ASSERT_TRUE(buffer.has_value());
  const std::uint8_t code[] = {0xc3};
  ASSERT_TRUE(buffer->Append(code).has_value());
  CodeBuffer moved = std::move(*buffer);
  EXPECT_EQ(moved.used(), 1u);
  EXPECT_EQ(buffer->data(), nullptr);  // NOLINT(bugprone-use-after-move)
}

TEST(CodeBufferTest, AllocateNearIsWithinRel32) {
  const std::uint64_t hint = reinterpret_cast<std::uint64_t>(&ToString);
  auto buffer = CodeBuffer::AllocateNear(hint, 4096);
  ASSERT_TRUE(buffer.has_value());
  const std::int64_t distance =
      static_cast<std::int64_t>(reinterpret_cast<std::uint64_t>(buffer->data())) -
      static_cast<std::int64_t>(hint);
  // AllocateNear may fall back to an arbitrary placement, but on a machine
  // with normal address-space pressure the probe succeeds.
  EXPECT_LT(distance, INT32_MAX);
  EXPECT_GT(distance, INT32_MIN);
}

// --- Hexdump -----------------------------------------------------------------

TEST(HexTest, HexBytes) {
  const std::uint8_t bytes[] = {0x48, 0x89, 0xf8};
  EXPECT_EQ(HexBytes(bytes), "48 89 f8");
  EXPECT_EQ(HexBytes({}), "");
}

TEST(HexTest, HexValue) {
  EXPECT_EQ(HexValue(0), "0x0");
  EXPECT_EQ(HexValue(0xdeadbeef), "0xdeadbeef");
}

TEST(HexTest, HexDumpLines) {
  std::uint8_t bytes[20];
  for (int i = 0; i < 20; ++i) bytes[i] = static_cast<std::uint8_t>(i);
  const std::string dump = HexDump(bytes, 0x1000);
  EXPECT_NE(dump.find("0000000000001000"), std::string::npos);
  EXPECT_NE(dump.find("0000000000001010"), std::string::npos);
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 2);
}

}  // namespace
}  // namespace dbll
