// dbll tests -- lifter extensions beyond the paper's prototype: volatile
// memory mode, loop vectorization hints, and the explicit element-to-line
// kernel transformation (paper Sec. VIII future work).
#include <gtest/gtest.h>

#include <cstdint>

#include "dbll/lift/lifter.h"
#include "dbll/stencil/stencil.h"

namespace dbll::lift {
namespace {

using stencil::FlatStencil;
using stencil::FourPointFlat;
using stencil::JacobiGrid;
using stencil::kMatrixSize;
using stencil::LineKernel;

Jit& SharedJit() {
  static Jit jit;
  return jit;
}

Signature KernelSig() { return Signature::Ints(4, RetKind::kVoid); }

double LineChecksum(std::uint64_t entry, const void* st, int iters) {
  JacobiGrid grid;
  grid.RunLine(reinterpret_cast<LineKernel>(entry), st, iters);
  return grid.Checksum();
}

double Reference(int iters) {
  JacobiGrid grid;
  grid.RunLine(reinterpret_cast<LineKernel>(&stencil::stencil_line_direct),
               nullptr, iters);
  return grid.Checksum();
}

// --- Volatile memory mode ------------------------------------------------

TEST(VolatileMemoryTest, LoadsAndStoresAreVolatile) {
  LiftConfig config;
  config.volatile_memory = true;
  Lifter lifter(config);
  auto lifted = lifter.Lift(
      reinterpret_cast<std::uint64_t>(&stencil::stencil_apply_direct),
      KernelSig(), "volatile_probe");
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  const std::string ir = lifted->GetIr();
  EXPECT_NE(ir.find("load volatile"), std::string::npos);
  EXPECT_NE(ir.find("store volatile"), std::string::npos);
}

TEST(VolatileMemoryTest, StillComputesCorrectly) {
  LiftConfig config;
  config.volatile_memory = true;
  Lifter lifter(config);
  auto lifted = lifter.Lift(
      reinterpret_cast<std::uint64_t>(&stencil::stencil_line_direct),
      KernelSig());
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  auto compiled = lifted->Compile(SharedJit());
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  EXPECT_EQ(LineChecksum(*compiled, nullptr, 3), Reference(3));
}

TEST(VolatileMemoryTest, VolatileAccessesSurviveOptimization) {
  // A dead store normally folds away; as volatile it must survive -O3.
  LiftConfig config;
  config.volatile_memory = true;
  Lifter lifter(config);
  auto lifted = lifter.Lift(
      reinterpret_cast<std::uint64_t>(&stencil::stencil_apply_direct),
      KernelSig(), "volatile_opt");
  ASSERT_TRUE(lifted.has_value());
  auto ir = lifted->OptimizeAndGetIr();
  ASSERT_TRUE(ir.has_value());
  EXPECT_NE(ir->find("volatile"), std::string::npos);
}

// --- Vectorize hint --------------------------------------------------------

TEST(VectorizeHintTest, MetadataAttachedToBackEdges) {
  LiftConfig config;
  config.vectorize_hint = true;
  Lifter lifter(config);
  auto lifted = lifter.Lift(
      reinterpret_cast<std::uint64_t>(&stencil::stencil_line_direct),
      KernelSig(), "hint_probe");
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  const std::string ir = lifted->GetIr();
  EXPECT_NE(ir.find("llvm.loop.vectorize.enable"), std::string::npos);
}

TEST(VectorizeHintTest, HintedKernelStaysCorrect) {
  LiftConfig config;
  config.vectorize_hint = true;
  Lifter lifter(config);
  auto lifted = lifter.Lift(
      reinterpret_cast<std::uint64_t>(&stencil::stencil_line_flat),
      KernelSig());
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  auto compiled = lifted->Compile(SharedJit());
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  EXPECT_EQ(LineChecksum(*compiled, &FourPointFlat(), 3), Reference(3));
}

// --- Element-to-line transformation ------------------------------------------

TEST(LineGenTest, GeneratedLineMatchesNativeLine) {
  Lifter lifter;
  auto lifted = lifter.LiftElementAsLine(
      reinterpret_cast<std::uint64_t>(&stencil::stencil_apply_direct),
      kMatrixSize, 1, kMatrixSize - 1);
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  auto compiled = lifted->Compile(SharedJit());
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  EXPECT_EQ(LineChecksum(*compiled, nullptr, 4), Reference(4));
}

TEST(LineGenTest, GeneratedLineFromGenericElement) {
  Lifter lifter;
  auto lifted = lifter.LiftElementAsLine(
      reinterpret_cast<std::uint64_t>(&stencil::stencil_apply_flat),
      kMatrixSize, 1, kMatrixSize - 1);
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  auto compiled = lifted->Compile(SharedJit());
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  EXPECT_EQ(LineChecksum(*compiled, &FourPointFlat(), 4), Reference(4));
}

TEST(LineGenTest, SpecializationComposesWithLineGeneration) {
  Lifter lifter;
  auto lifted = lifter.LiftElementAsLine(
      reinterpret_cast<std::uint64_t>(&stencil::stencil_apply_flat),
      kMatrixSize, 1, kMatrixSize - 1);
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  ASSERT_TRUE(lifted
                  ->SpecializeParamToConstMem(0, &FourPointFlat(),
                                              sizeof(FlatStencil))
                  .ok());
  auto compiled = lifted->Compile(SharedJit());
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  // The specialized line kernel ignores its descriptor argument.
  EXPECT_EQ(LineChecksum(*compiled, nullptr, 4), Reference(4));
}

TEST(LineGenTest, LoopCarriesVectorizeMetadata) {
  Lifter lifter;
  auto lifted = lifter.LiftElementAsLine(
      reinterpret_cast<std::uint64_t>(&stencil::stencil_apply_direct),
      kMatrixSize, 1, kMatrixSize - 1, "meta_probe");
  ASSERT_TRUE(lifted.has_value());
  const std::string ir = lifted->GetIr();
  EXPECT_NE(ir.find("llvm.loop.vectorize.enable"), std::string::npos);
  EXPECT_NE(ir.find("line_loop"), std::string::npos);
}

TEST(LineGenTest, PartialColumnRange) {
  // Only columns [100, 200): everything else must stay untouched.
  Lifter lifter;
  auto lifted = lifter.LiftElementAsLine(
      reinterpret_cast<std::uint64_t>(&stencil::stencil_apply_direct),
      kMatrixSize, 100, 200);
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  auto compiled = lifted->Compile(SharedJit());
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();

  std::vector<double> m1(kMatrixSize * kMatrixSize, 1.0);
  std::vector<double> m2(kMatrixSize * kMatrixSize, -7.0);
  reinterpret_cast<LineKernel>(*compiled)(nullptr, m1.data(), m2.data(), 5);
  EXPECT_EQ(m2[5 * kMatrixSize + 99], -7.0);
  EXPECT_EQ(m2[5 * kMatrixSize + 100], 1.0);
  EXPECT_EQ(m2[5 * kMatrixSize + 199], 1.0);
  EXPECT_EQ(m2[5 * kMatrixSize + 200], -7.0);
}

TEST(LineGenTest, WrongSignatureShapeIsCaughtAtConfigTime) {
  // LiftElementAsLine always builds the correct signature internally; this
  // guards the internal entry point against regressions.
  Lifter lifter;
  auto lifted = lifter.LiftElementAsLine(
      reinterpret_cast<std::uint64_t>(&stencil::stencil_apply_direct),
      kMatrixSize, 1, 2);
  EXPECT_TRUE(lifted.has_value());
}

}  // namespace
}  // namespace dbll::lift

// --- Concurrency: independent Lifters on separate threads -------------------

#include <thread>

namespace dbll::lift {
namespace {

TEST(ConcurrencyTest, ParallelLiftAndCompile) {
  // Each thread uses its own Lifter and Jit (one LLVMContext per module, one
  // LLJIT per thread); results must all be correct.
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<double> results(kThreads, 0.0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &results] {
      Jit jit;
      Lifter lifter;
      auto lifted = lifter.Lift(
          reinterpret_cast<std::uint64_t>(&stencil::stencil_apply_direct),
          Signature::Ints(4, RetKind::kVoid));
      if (!lifted.has_value()) return;
      auto compiled = lifted->Compile(jit);
      if (!compiled.has_value()) return;
      stencil::JacobiGrid grid;
      grid.RunElement(
          reinterpret_cast<stencil::ElementKernel>(*compiled), nullptr, 2);
      results[static_cast<std::size_t>(t)] = grid.Checksum();
    });
  }
  for (auto& thread : threads) thread.join();

  stencil::JacobiGrid reference;
  reference.RunElement(
      reinterpret_cast<stencil::ElementKernel>(&stencil::stencil_apply_direct),
      nullptr, 2);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(results[static_cast<std::size_t>(t)], reference.Checksum())
        << "thread " << t;
  }
}

}  // namespace
}  // namespace dbll::lift
