// dbll tests -- decoder robustness fuzz smoke: a million pseudo-random byte
// sequences (fixed seed, so failures reproduce) through Decoder::DecodeOne.
// The decoder sits on the untrusted boundary of the whole pipeline -- every
// rewrite and every lift starts by decoding bytes it does not control -- so
// the contract under garbage is strict: never crash, never read past the
// span, and either return a plausible instruction or a kDecode error whose
// address identifies the offending sequence.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <random>

#include "dbll/x86/decoder.h"

namespace dbll::x86 {
namespace {

constexpr std::size_t kMaxInsnLen = 15;  // architectural x86 maximum

TEST(DecoderFuzzTest, MillionRandomSequencesNeverCrash) {
  // Fixed seed: a failing sequence reproduces by iteration number.
  std::mt19937_64 rng(0xdb11);
  std::array<std::uint8_t, kMaxInsnLen> buffer;
  std::uint64_t decoded = 0;
  std::uint64_t rejected = 0;

  for (std::uint64_t i = 0; i < 1'000'000; ++i) {
    // Fill 15 bytes from the PRNG (8+8 with overlap at the tail).
    std::uint64_t word = rng();
    for (std::size_t b = 0; b < 8; ++b) {
      buffer[b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
    word = rng();
    for (std::size_t b = 0; b < 7; ++b) {
      buffer[8 + b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
    // Vary the available length too: truncation paths are half the bugs.
    const std::size_t size = 1 + static_cast<std::size_t>(i % kMaxInsnLen);
    const std::uint64_t address = 0x400000 + i * 16;

    auto result = Decoder::DecodeOne({buffer.data(), size}, address);
    if (result.has_value()) {
      ++decoded;
      ASSERT_GT(result->length, 0u) << "iteration " << i;
      ASSERT_LE(result->length, size) << "iteration " << i;
      ASSERT_EQ(result->address, address) << "iteration " << i;
    } else {
      ++rejected;
      ASSERT_EQ(result.error().kind(), ErrorKind::kDecode)
          << "iteration " << i << ": " << result.error().Format();
      // The error must carry an address inside the decoded sequence.
      ASSERT_GE(result.error().address(), address) << "iteration " << i;
      ASSERT_LE(result.error().address(), address + size) << "iteration " << i;
    }
  }

  // Sanity on the corpus itself: random bytes must exercise both outcomes
  // heavily, otherwise the fuzz is testing nothing.
  EXPECT_GT(decoded, 10'000u);
  EXPECT_GT(rejected, 10'000u);
}

}  // namespace
}  // namespace dbll::x86
