// dbll tests -- ELF reader: parsing, symbol lookup, image building, and
// lifting a function extracted from a file (without executing the file).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dbll/elf/elf_reader.h"
#include "dbll/lift/lifter.h"
#include "dbll/x86/cfg.h"

extern "C" __attribute__((noinline, used)) long dbll_elf_fixture_fn(long a,
                                                                    long b) {
  long acc = a * 3 + b;
  for (int i = 0; i < 4; i++) acc = acc * 2 + i;
  return acc;
}

namespace dbll::elf {
namespace {

// --- Synthetic relocatable ELF builder (hermetic fixture) --------------------

/// Builds a minimal ET_REL ELF64 with one .text section containing `code`
/// and one global function symbol `name` at offset 0.
std::vector<std::uint8_t> BuildRelocatable(const std::vector<std::uint8_t>& code,
                                           const std::string& name) {
  std::vector<std::uint8_t> out;
  auto put = [&](const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out.insert(out.end(), p, p + size);
  };
  auto put16 = [&](std::uint16_t v) { put(&v, 2); };
  auto put32 = [&](std::uint32_t v) { put(&v, 4); };
  auto put64 = [&](std::uint64_t v) { put(&v, 8); };

  // Layout: ehdr | .text | .strtab | .symtab | .shstrtab | shdrs
  const std::size_t ehdr_size = 64;
  const std::size_t text_off = ehdr_size;
  const std::string strtab = std::string("\0", 1) + name + std::string("\0", 1);
  const std::size_t strtab_off = text_off + code.size();
  const std::size_t sym_size = 24;
  const std::size_t symtab_off = (strtab_off + strtab.size() + 7) & ~7ull;
  const std::size_t symtab_size = 2 * sym_size;  // null + function
  const std::string shstrtab =
      std::string("\0.text\0.strtab\0.symtab\0.shstrtab\0", 33);
  const std::size_t shstrtab_off = symtab_off + symtab_size;
  const std::size_t shoff = (shstrtab_off + shstrtab.size() + 7) & ~7ull;

  // --- ehdr
  const std::uint8_t ident[16] = {0x7f, 'E', 'L', 'F', 2, 1, 1, 0,
                                  0,    0,   0,   0,   0, 0, 0, 0};
  put(ident, 16);
  put16(1);    // ET_REL
  put16(62);   // EM_X86_64
  put32(1);    // version
  put64(0);    // entry
  put64(0);    // phoff
  put64(shoff);
  put32(0);    // flags
  put16(64);   // ehsize
  put16(0);    // phentsize
  put16(0);    // phnum
  put16(64);   // shentsize
  put16(5);    // shnum
  put16(4);    // shstrndx

  // --- section bodies
  put(code.data(), code.size());
  put(strtab.data(), strtab.size());
  while (out.size() < symtab_off) out.push_back(0);
  // null symbol
  for (int i = 0; i < 24; ++i) out.push_back(0);
  // function symbol: name offset 1, STB_GLOBAL|STT_FUNC, section 1, value 0
  put32(1);
  out.push_back(0x12);  // GLOBAL FUNC
  out.push_back(0);
  put16(1);
  put64(0);
  put64(code.size());
  put(shstrtab.data(), shstrtab.size());
  while (out.size() < shoff) out.push_back(0);

  // --- section headers: null, .text, .strtab, .symtab, .shstrtab
  auto shdr = [&](std::uint32_t name_off, std::uint32_t type,
                  std::uint64_t flags, std::uint64_t offset,
                  std::uint64_t size, std::uint32_t link,
                  std::uint64_t entsize) {
    put32(name_off);
    put32(type);
    put64(flags);
    put64(0);  // addr
    put64(offset);
    put64(size);
    put32(link);
    put32(0);  // info
    put64(8);  // align
    put64(entsize);
  };
  shdr(0, 0, 0, 0, 0, 0, 0);                                   // null
  shdr(1, 1, 0x6, text_off, code.size(), 0, 0);                // .text AX
  shdr(7, 3, 0, strtab_off, strtab.size(), 0, 0);              // .strtab
  shdr(15, 2, 0, symtab_off, symtab_size, 2, sym_size);        // .symtab
  shdr(23, 3, 0, shstrtab_off, shstrtab.size(), 0, 0);         // .shstrtab
  return out;
}

TEST(ElfTest, ParsesOwnExecutable) {
  auto file = ElfFile::Open("/proc/self/exe");
  ASSERT_TRUE(file.has_value()) << file.error().Format();
  EXPECT_FALSE(file->is_relocatable());
  EXPECT_GT(file->sections().size(), 4u);
  EXPECT_GT(file->symbols().size(), 10u);
}

TEST(ElfTest, FindsFixtureFunction) {
  auto file = ElfFile::Open("/proc/self/exe");
  ASSERT_TRUE(file.has_value());
  auto symbol = file->FindFunction("dbll_elf_fixture_fn");
  ASSERT_TRUE(symbol.has_value()) << symbol.error().Format();
  EXPECT_TRUE(symbol->is_function);
  EXPECT_GT(symbol->size, 4u);
}

TEST(ElfTest, ImageBytesMatchLiveFunction) {
  auto file = ElfFile::Open("/proc/self/exe");
  ASSERT_TRUE(file.has_value());
  auto symbol = file->FindFunction("dbll_elf_fixture_fn");
  ASSERT_TRUE(symbol.has_value());
  auto vaddr = file->SymbolVirtualAddress(*symbol);
  ASSERT_TRUE(vaddr.has_value());
  auto image = file->LoadImage();
  ASSERT_TRUE(image.has_value()) << image.error().Format();

  const std::uint8_t* from_file = image->Translate(*vaddr);
  ASSERT_NE(from_file, nullptr);
  const auto* live =
      reinterpret_cast<const std::uint8_t*>(&dbll_elf_fixture_fn);
  EXPECT_EQ(std::memcmp(from_file, live, symbol->size), 0)
      << "file image differs from the loaded code";
}

TEST(ElfTest, LiftsFunctionFromFileImage) {
  auto file = ElfFile::Open("/proc/self/exe");
  ASSERT_TRUE(file.has_value());
  auto symbol = file->FindFunction("dbll_elf_fixture_fn");
  ASSERT_TRUE(symbol.has_value());
  auto vaddr = file->SymbolVirtualAddress(*symbol);
  auto image = file->LoadImage();
  ASSERT_TRUE(vaddr.has_value());
  ASSERT_TRUE(image.has_value());

  static lift::Jit jit;
  lift::Lifter lifter;
  auto lifted =
      lifter.Lift(image->HostAddress(*vaddr), lift::Signature::Ints(2));
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  auto compiled = lifted->Compile(jit);
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  auto fn = reinterpret_cast<long (*)(long, long)>(*compiled);
  for (long a : {0L, 1L, -5L, 1000L}) {
    for (long b : {0L, 7L, -3L}) {
      EXPECT_EQ(fn(a, b), dbll_elf_fixture_fn(a, b)) << a << " " << b;
    }
  }
}

TEST(ElfTest, SyntheticRelocatableRoundTrip) {
  // lea rax, [rdi + rsi]; add rax, 7; ret
  const std::vector<std::uint8_t> code = {0x48, 0x8d, 0x04, 0x37,
                                          0x48, 0x83, 0xc0, 0x07, 0xc3};
  auto file = ElfFile::Parse(BuildRelocatable(code, "tiny_add"));
  ASSERT_TRUE(file.has_value()) << file.error().Format();
  EXPECT_TRUE(file->is_relocatable());

  auto symbol = file->FindFunction("tiny_add");
  ASSERT_TRUE(symbol.has_value()) << symbol.error().Format();
  auto vaddr = file->SymbolVirtualAddress(*symbol);
  ASSERT_TRUE(vaddr.has_value());
  auto image = file->LoadImage();
  ASSERT_TRUE(image.has_value()) << image.error().Format();
  const std::uint8_t* bytes = image->Translate(*vaddr);
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(std::memcmp(bytes, code.data(), code.size()), 0);

  // Decode the extracted function.
  auto cfg = x86::BuildCfg(image->HostAddress(*vaddr));
  ASSERT_TRUE(cfg.has_value()) << cfg.error().Format();
  EXPECT_EQ(cfg->instr_count, 3u);
}

/// Builds an ET_REL file with two functions and one PLT32 relocation:
///   callee: ret                      (offset 0)
///   caller: call <callee>; ret       (offset 8)
std::vector<std::uint8_t> BuildRelocatableWithCall() {
  // Code: [c3 + 7 pad] [e8 00 00 00 00 c3]
  std::vector<std::uint8_t> code = {0xc3, 0x90, 0x90, 0x90, 0x90, 0x90,
                                    0x90, 0x90, 0xe8, 0x00, 0x00, 0x00,
                                    0x00, 0xc3};
  std::vector<std::uint8_t> out;
  auto put = [&](const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out.insert(out.end(), p, p + size);
  };
  auto put16 = [&](std::uint16_t v) { put(&v, 2); };
  auto put32 = [&](std::uint32_t v) { put(&v, 4); };
  auto put64 = [&](std::uint64_t v) { put(&v, 8); };

  const std::string strtab =
      std::string("\0", 1) + "callee" + std::string("\0", 1) + "caller" +
      std::string("\0", 1);
  const std::size_t text_off = 64;
  const std::size_t strtab_off = text_off + code.size();
  const std::size_t symtab_off = (strtab_off + strtab.size() + 7) & ~7ull;
  const std::size_t symtab_size = 3 * 24;  // null + callee + caller
  const std::size_t rela_off = symtab_off + symtab_size;
  const std::size_t rela_size = 24;
  const std::string shstrtab = std::string(
      "\0.text\0.strtab\0.symtab\0.rela.text\0.shstrtab\0", 44);
  const std::size_t shstrtab_off = rela_off + rela_size;
  const std::size_t shoff = (shstrtab_off + shstrtab.size() + 7) & ~7ull;

  const std::uint8_t ident[16] = {0x7f, 'E', 'L', 'F', 2, 1, 1, 0,
                                  0,    0,   0,   0,   0, 0, 0, 0};
  put(ident, 16);
  put16(1);
  put16(62);
  put32(1);
  put64(0);
  put64(0);
  put64(shoff);
  put32(0);
  put16(64);
  put16(0);
  put16(0);
  put16(64);
  put16(6);
  put16(5);

  put(code.data(), code.size());
  put(strtab.data(), strtab.size());
  while (out.size() < symtab_off) out.push_back(0);
  // null symbol
  for (int i = 0; i < 24; ++i) out.push_back(0);
  // callee: name 1, GLOBAL FUNC, sec 1, value 0, size 1
  put32(1);
  out.push_back(0x12);
  out.push_back(0);
  put16(1);
  put64(0);
  put64(1);
  // caller: name 8, GLOBAL FUNC, sec 1, value 8, size 6
  put32(8);
  out.push_back(0x12);
  out.push_back(0);
  put16(1);
  put64(8);
  put64(6);
  // rela: patch rel32 at offset 9 (inside the call), PLT32 sym 1, addend -4
  put64(9);
  put64((static_cast<std::uint64_t>(1) << 32) | 4);
  const std::int64_t addend = -4;
  put(&addend, 8);
  put(shstrtab.data(), shstrtab.size());
  while (out.size() < shoff) out.push_back(0);

  auto shdr = [&](std::uint32_t name_off, std::uint32_t type,
                  std::uint64_t flags, std::uint64_t offset,
                  std::uint64_t size, std::uint32_t link, std::uint32_t info,
                  std::uint64_t entsize) {
    put32(name_off);
    put32(type);
    put64(flags);
    put64(0);
    put64(offset);
    put64(size);
    put32(link);
    put32(info);
    put64(8);
    put64(entsize);
  };
  shdr(0, 0, 0, 0, 0, 0, 0, 0);                                  // null
  shdr(1, 1, 0x6, text_off, code.size(), 0, 0, 0);               // .text
  shdr(7, 3, 0, strtab_off, strtab.size(), 0, 0, 0);             // .strtab
  shdr(15, 2, 0, symtab_off, symtab_size, 2, 1, 24);             // .symtab
  shdr(23, 4, 0, rela_off, rela_size, 3, 1, 24);                 // .rela.text
  shdr(34, 3, 0, shstrtab_off, shstrtab.size(), 0, 0, 0);        // .shstrtab
  return out;
}

TEST(ElfTest, RelocationsResolveIntraFileCalls) {
  auto file = ElfFile::Parse(BuildRelocatableWithCall());
  ASSERT_TRUE(file.has_value()) << file.error().Format();
  auto caller = file->FindFunction("caller");
  auto callee = file->FindFunction("callee");
  ASSERT_TRUE(caller.has_value());
  ASSERT_TRUE(callee.has_value());
  auto caller_va = file->SymbolVirtualAddress(*caller);
  auto callee_va = file->SymbolVirtualAddress(*callee);
  auto image = file->LoadImage();
  ASSERT_TRUE(image.has_value()) << image.error().Format();

  // The call's rel32 must have been patched to reach the callee.
  auto cfg = x86::BuildCfg(image->HostAddress(*caller_va));
  ASSERT_TRUE(cfg.has_value()) << cfg.error().Format();
  ASSERT_EQ(cfg->call_targets.size(), 1u);
  EXPECT_EQ(cfg->call_targets[0], image->HostAddress(*callee_va));
}

TEST(ElfTest, RejectsGarbage) {
  std::vector<std::uint8_t> garbage(200, 0xab);
  auto file = ElfFile::Parse(garbage);
  EXPECT_FALSE(file.has_value());
}

TEST(ElfTest, RejectsTruncated) {
  auto good = BuildRelocatable({0xc3}, "f");
  good.resize(80);
  auto file = ElfFile::Parse(good);
  EXPECT_FALSE(file.has_value());
}

TEST(ElfTest, RejectsWrongMachine) {
  auto good = BuildRelocatable({0xc3}, "f");
  good[18] = 40;  // EM_ARM
  auto file = ElfFile::Parse(good);
  ASSERT_FALSE(file.has_value());
  EXPECT_EQ(file.error().kind(), ErrorKind::kUnsupported);
}

TEST(ElfTest, MissingSymbolReported) {
  auto file = ElfFile::Parse(BuildRelocatable({0xc3}, "present"));
  ASSERT_TRUE(file.has_value());
  auto missing = file->FindFunction("absent");
  EXPECT_FALSE(missing.has_value());
}

}  // namespace
}  // namespace dbll::elf
