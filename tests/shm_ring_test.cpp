// dbll tests -- the shared-memory hot-entry ring (shm_ring.h): seqlock
// round-trips, cross-instance sharing (two mappings of one file stand in for
// two processes), racing attach, crashed-writer and crashed-initializer
// recovery, format-version refusal, toolchain-fingerprint reinitialization,
// LRU eviction under a full ring, torn/corrupt slot rejection, injected
// `objcache.shm` faults, the poisoned-fingerprint quarantine veto (a
// quarantined fp must never leave the ring, the disk, or a bundle), and the
// ObjectStore/CompileService integration (a
// shm hit must never touch disk; a disk hit must repopulate the ring). The
// ring serves opaque validated bytes, so most tests use arbitrary payloads;
// only the service-level tests need real compiled objects.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus.h"
#include "dbll/lift/lifter.h"
#include "dbll/runtime/compile_service.h"
#include "dbll/runtime/containment.h"
#include "dbll/runtime/object_store.h"
#include "dbll/runtime/shm_ring.h"
#include "dbll/support/fault.h"
#include "dbll/support/file_io.h"

namespace dbll::runtime {
namespace {

using IntFn2 = long (*)(long, long);

// Header field offsets inside hotring.dbshm (fixed by kShmFormatVersion = 1;
// see the Header struct in src/runtime/shm_ring.cpp). The corruption tests
// poke these bytes directly, playing the role of a crashed or newer process.
constexpr off_t kFormatVersionOffset = 8;
constexpr off_t kInitStateOffset = 32;
constexpr std::uint32_t kStateInitializing = 1;

/// Fresh scratch cache directory per test, removed on teardown.
class ShmRingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/dbll_shmring_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    fault::DisarmAll();
    (void)ObjectStore::Purge(dir_);
    ::rmdir(dir_.c_str());
  }

  ShmRing::Options RingOptions(std::uint32_t slots = 4,
                               std::uint64_t slot_bytes = 4096) const {
    ShmRing::Options options;
    options.dir = dir_;
    options.slots = slots;
    options.slot_bytes = slot_bytes;
    return options;
  }

  std::string RingPath() const {
    return dir_ + "/" + ShmRing::RingFileName();
  }

  /// Overwrites raw bytes inside the published ring file (no instance may be
  /// attached -- this simulates another process's state, not a live write).
  void PokeRingFile(off_t offset, const void* data, std::size_t size) {
    const int fd = ::open(RingPath().c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::pwrite(fd, data, size, offset), static_cast<ssize_t>(size));
    ::close(fd);
  }

  static std::vector<std::uint8_t> Payload(std::uint8_t seed,
                                           std::size_t size = 256) {
    std::vector<std::uint8_t> bytes(size);
    for (std::size_t i = 0; i < size; ++i) {
      bytes[i] = static_cast<std::uint8_t>(seed + i);
    }
    return bytes;
  }

  std::string dir_;
};

TEST_F(ShmRingTest, InsertThenLookupRoundTrips) {
  ShmRing ring(RingOptions(), /*toolchain_fp=*/1);
  ASSERT_TRUE(ring.attached()) << ring.init_status().error().Format();
  const std::vector<std::uint8_t> payload = Payload(0x11);
  EXPECT_TRUE(ring.Insert(0xaaaa, payload.data(), payload.size()));

  std::vector<std::uint8_t> out;
  EXPECT_TRUE(ring.Lookup(0xaaaa, &out));
  EXPECT_EQ(out, payload);
  EXPECT_FALSE(ring.Lookup(0xbbbb, &out));  // plain miss

  const ShmRingStats stats = ring.stats();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  const ShmRingOccupancy occ = ring.occupancy();
  EXPECT_EQ(occ.used_slots, 1u);
  EXPECT_EQ(occ.payload_bytes, payload.size());
  EXPECT_EQ(occ.fleet_inserts, 1u);
  EXPECT_EQ(occ.fleet_hits, 1u);
}

TEST_F(ShmRingTest, ReinsertSameFingerprintReusesTheSlot) {
  ShmRing ring(RingOptions(), 1);
  ASSERT_TRUE(ring.attached());
  const std::vector<std::uint8_t> v1 = Payload(0x01, 128);
  const std::vector<std::uint8_t> v2 = Payload(0x02, 512);
  EXPECT_TRUE(ring.Insert(0xcccc, v1.data(), v1.size()));
  EXPECT_TRUE(ring.Insert(0xcccc, v2.data(), v2.size()));
  EXPECT_EQ(ring.occupancy().used_slots, 1u);  // updated in place, no copy

  std::vector<std::uint8_t> out;
  ASSERT_TRUE(ring.Lookup(0xcccc, &out));
  EXPECT_EQ(out, v2);
  EXPECT_EQ(ring.stats().evictions, 0u);  // same-key update is not an eviction
}

TEST_F(ShmRingTest, SecondAttachSharesEntriesAndAdoptsFileGeometry) {
  // Two instances over one directory are two mappings of the same file --
  // exactly what two processes see. The writer's geometry wins; the second
  // attacher's differing request is ignored, not an error.
  ShmRing writer(RingOptions(/*slots=*/4), 1);
  ASSERT_TRUE(writer.attached());
  const std::vector<std::uint8_t> payload = Payload(0x33);
  ASSERT_TRUE(writer.Insert(0xdddd, payload.data(), payload.size()));

  ShmRing reader(RingOptions(/*slots=*/32, /*slot_bytes=*/8192), 1);
  ASSERT_TRUE(reader.attached());
  EXPECT_EQ(reader.slot_count(), 4u);
  EXPECT_EQ(reader.slot_bytes(), 4096u);
  EXPECT_EQ(reader.stats().reinit, 0u);  // adopted, nothing wiped

  std::vector<std::uint8_t> out;
  EXPECT_TRUE(reader.Lookup(0xdddd, &out));
  EXPECT_EQ(out, payload);
}

TEST_F(ShmRingTest, RacingAttachersAllAgreeOnOneRing) {
  // N constructors race on a directory with no ring file. The flock'd attach
  // protocol lets exactly one initialize; everyone else adopts. Afterwards a
  // payload inserted through any instance is visible through every other.
  constexpr int kAttachers = 4;
  std::vector<std::unique_ptr<ShmRing>> rings(kAttachers);
  std::vector<std::thread> threads;
  for (int i = 0; i < kAttachers; ++i) {
    threads.emplace_back([&, i] {
      rings[i] = std::make_unique<ShmRing>(RingOptions(), 1);
    });
  }
  for (std::thread& t : threads) t.join();

  std::uint64_t reinits = 0;
  for (const auto& ring : rings) {
    ASSERT_TRUE(ring->attached());
    EXPECT_EQ(ring->slot_count(), 4u);
    reinits += ring->stats().reinit;
  }
  EXPECT_EQ(reinits, 0u);  // a fresh file is initialized, never re-initialized

  const std::vector<std::uint8_t> payload = Payload(0x44);
  ASSERT_TRUE(rings[0]->Insert(0xeeee, payload.data(), payload.size()));
  for (const auto& ring : rings) {
    std::vector<std::uint8_t> out;
    EXPECT_TRUE(ring->Lookup(0xeeee, &out));
    EXPECT_EQ(out, payload);
  }
}

TEST_F(ShmRingTest, CrashedWriterSlotMissesAndIsReclaimed) {
  ShmRing ring(RingOptions(), 1);
  ASSERT_TRUE(ring.attached());
  const std::vector<std::uint8_t> payload = Payload(0x55);
  ASSERT_TRUE(ring.Insert(0xf00d, payload.data(), payload.size()));
  const int slot = ring.TestFindSlot(0xf00d);
  ASSERT_GE(slot, 0);

  // A writer that died mid-copy leaves the sequence word odd. Readers must
  // treat the slot as garbage...
  ring.TestSetSlotSeq(static_cast<std::uint32_t>(slot), 3);
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(ring.Lookup(0xf00d, &out));

  // ...and the next writer (who, holding the flock, *proves* the old writer
  // is dead) reclaims it in preference to evicting a live slot.
  const std::vector<std::uint8_t> fresh = Payload(0x66);
  EXPECT_TRUE(ring.Insert(0xbeef, fresh.data(), fresh.size()));
  EXPECT_EQ(ring.stats().stale_reclaimed, 1u);
  EXPECT_EQ(ring.stats().evictions, 0u);
  EXPECT_EQ(ring.TestFindSlot(0xf00d), -1);
  EXPECT_TRUE(ring.Lookup(0xbeef, &out));
  EXPECT_EQ(out, fresh);
}

TEST_F(ShmRingTest, CorruptPayloadFailsTheChecksumAndMisses) {
  ShmRing ring(RingOptions(), 1);
  ASSERT_TRUE(ring.attached());
  const std::vector<std::uint8_t> payload = Payload(0x77);
  ASSERT_TRUE(ring.Insert(0xabad, payload.data(), payload.size()));
  const int slot = ring.TestFindSlot(0xabad);
  ASSERT_GE(slot, 0);

  const std::uint64_t errors_before = ring.stats().errors;
  ring.TestCorruptSlotPayload(static_cast<std::uint32_t>(slot));
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(ring.Lookup(0xabad, &out));
  EXPECT_GT(ring.stats().errors, errors_before);
}

TEST_F(ShmRingTest, FullRingEvictsTheLeastRecentlyUsedSlot) {
  ShmRing ring(RingOptions(/*slots=*/2), 1);
  ASSERT_TRUE(ring.attached());
  const std::vector<std::uint8_t> payload = Payload(0x88);
  ASSERT_TRUE(ring.Insert(0x1, payload.data(), payload.size()));
  ASSERT_TRUE(ring.Insert(0x2, payload.data(), payload.size()));

  // A hit refreshes recency, so after touching 0x1 the LRU victim is 0x2.
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(ring.Lookup(0x1, &out));
  ASSERT_TRUE(ring.Insert(0x3, payload.data(), payload.size()));

  EXPECT_EQ(ring.stats().evictions, 1u);
  EXPECT_EQ(ring.TestFindSlot(0x2), -1);
  EXPECT_GE(ring.TestFindSlot(0x1), 0);
  EXPECT_GE(ring.TestFindSlot(0x3), 0);
  EXPECT_EQ(ring.occupancy().used_slots, 2u);
  EXPECT_EQ(ring.occupancy().fleet_evictions, 1u);
}

TEST_F(ShmRingTest, OversizedPayloadIsSkippedNotAnError) {
  ShmRing ring(RingOptions(/*slots=*/2, /*slot_bytes=*/4096), 1);
  ASSERT_TRUE(ring.attached());
  const std::vector<std::uint8_t> huge = Payload(0x99, 4097);
  EXPECT_FALSE(ring.Insert(0x1234, huge.data(), huge.size()));
  const ShmRingStats stats = ring.stats();
  EXPECT_EQ(stats.too_big, 1u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(ring.occupancy().used_slots, 0u);
}

TEST_F(ShmRingTest, OutOfBoundsGeometryIsRefusedAtConstruction) {
  ShmRing zero_slots(RingOptions(/*slots=*/0), 1);
  EXPECT_FALSE(zero_slots.attached());
  EXPECT_EQ(zero_slots.init_status().error().kind(), ErrorKind::kBadConfig);

  ShmRing tiny_slot(RingOptions(/*slots=*/2, /*slot_bytes=*/16), 1);
  EXPECT_FALSE(tiny_slot.attached());

  // Detached instances degrade, never crash.
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(zero_slots.Lookup(0x1, &out));
  EXPECT_FALSE(zero_slots.Insert(0x1, out.data(), 0));
}

TEST_F(ShmRingTest, NewerFormatVersionIsRefusedAndLeftIntact) {
  {
    ShmRing ring(RingOptions(), 1);
    ASSERT_TRUE(ring.attached());
    const std::vector<std::uint8_t> payload = Payload(0xaa);
    ASSERT_TRUE(ring.Insert(0x42, payload.data(), payload.size()));
  }
  // A ring published by a (hypothetical) newer release: refuse, degrade to
  // disk-only, and leave the file alone -- the newer processes own it.
  const std::uint32_t future_version = 99;
  PokeRingFile(kFormatVersionOffset, &future_version, sizeof(future_version));

  ShmRing ring(RingOptions(), 1);
  EXPECT_FALSE(ring.attached());
  EXPECT_EQ(ring.init_status().error().kind(), ErrorKind::kUnsupported);
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(ring.Lookup(0x42, &out));

  auto inspected = ShmRing::Inspect(dir_);
  EXPECT_FALSE(inspected.has_value());

  // The file still says version 99: nothing reinitialized it.
  auto bytes = support::ReadFileBytes(RingPath());
  ASSERT_TRUE(bytes.has_value());
  std::uint32_t on_disk = 0;
  std::memcpy(&on_disk, bytes->data() + kFormatVersionOffset, sizeof(on_disk));
  EXPECT_EQ(on_disk, future_version);
}

TEST_F(ShmRingTest, DifferentToolchainFingerprintReinitializes) {
  {
    ShmRing ring(RingOptions(), /*toolchain_fp=*/1);
    ASSERT_TRUE(ring.attached());
    const std::vector<std::uint8_t> payload = Payload(0xbb);
    ASSERT_TRUE(ring.Insert(0x77, payload.data(), payload.size()));
  }
  // A process built against a different LLVM/CPU must never consume those
  // objects; it wipes the ring rather than adopting it (the disk store's
  // invalidation rule, applied to shared memory).
  ShmRing ring(RingOptions(), /*toolchain_fp=*/2);
  ASSERT_TRUE(ring.attached());
  EXPECT_EQ(ring.stats().reinit, 1u);
  EXPECT_EQ(ring.TestFindSlot(0x77), -1);
  EXPECT_EQ(ring.occupancy().toolchain_fp, 2u);
  EXPECT_EQ(ring.occupancy().used_slots, 0u);
}

TEST_F(ShmRingTest, CrashedInitializerIsRecoveredByTheNextAttacher) {
  {
    ShmRing ring(RingOptions(), 1);
    ASSERT_TRUE(ring.attached());
    const std::vector<std::uint8_t> payload = Payload(0xcc);
    ASSERT_TRUE(ring.Insert(0x99, payload.data(), payload.size()));
  }
  // A file stuck in kInitializing is an initializer that died before the
  // ready release-store; its contents are untrustworthy by definition.
  PokeRingFile(kInitStateOffset, &kStateInitializing,
               sizeof(kStateInitializing));

  ShmRing ring(RingOptions(), 1);
  ASSERT_TRUE(ring.attached()) << ring.init_status().error().Format();
  EXPECT_EQ(ring.stats().reinit, 1u);
  EXPECT_EQ(ring.TestFindSlot(0x99), -1);  // wiped, not trusted
  const std::vector<std::uint8_t> payload = Payload(0xdd);
  EXPECT_TRUE(ring.Insert(0x100, payload.data(), payload.size()));
}

TEST_F(ShmRingTest, ArmedShmFaultDegradesLookupAndInsert) {
  ShmRing ring(RingOptions(), 1);
  ASSERT_TRUE(ring.attached());
  const std::vector<std::uint8_t> payload = Payload(0xee);
  ASSERT_TRUE(ring.Insert(0x55, payload.data(), payload.size()));

  ASSERT_TRUE(fault::ArmFromString("objcache.shm:kIo"));
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(ring.Lookup(0x55, &out));
  EXPECT_FALSE(ring.Insert(0x56, payload.data(), payload.size()));
  EXPECT_GE(ring.stats().errors, 2u);

  fault::DisarmAll();
  EXPECT_TRUE(ring.Lookup(0x55, &out));  // the slot itself was never harmed
  EXPECT_EQ(out, payload);
}

// --- ObjectStore integration ------------------------------------------------

ObjectEntry FakeEntry(std::uint64_t fingerprint, std::size_t payload = 64) {
  ObjectEntry entry;
  entry.fingerprint = fingerprint;
  entry.wrapper_name = "wrapper";
  entry.object.assign(payload, static_cast<std::uint8_t>(fingerprint));
  return entry;
}

TEST_F(ShmRingTest, StoreShmHitNeverTouchesDisk) {
  ObjectStore::Options options;
  options.dir = dir_;
  options.shm = true;
  {
    ObjectStore writer(options);
    ASSERT_TRUE(writer.init_status().ok());
    writer.Store(FakeEntry(0x1111));  // write-through: disk + ring
    EXPECT_EQ(writer.stats().shm_inserts, 1u);
  }
  // With the disk load path fault-armed, a second store (a second process)
  // can only succeed via shared memory -- proving the shm hit does no file
  // I/O at all.
  ASSERT_TRUE(fault::ArmFromString("objcache.load:kIo"));
  ObjectStore reader(options);
  ObjectEntry loaded;
  EXPECT_TRUE(reader.Load(0x1111, &loaded));
  EXPECT_EQ(loaded.object, FakeEntry(0x1111).object);
  const ObjectStoreStats stats = reader.stats();
  EXPECT_EQ(stats.shm_hits, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.errors, 0u);  // the disk fault site was never reached
}

TEST_F(ShmRingTest, StoreDiskHitRepopulatesTheRing) {
  {
    ObjectStore::Options disk_only;
    disk_only.dir = dir_;
    ObjectStore writer(disk_only);
    writer.Store(FakeEntry(0x2222));
  }
  ObjectStore::Options options;
  options.dir = dir_;
  options.shm = true;
  ObjectStore store(options);
  ObjectEntry loaded;
  EXPECT_TRUE(store.Load(0x2222, &loaded));  // ring cold: disk, written back
  ObjectStoreStats stats = store.stats();
  EXPECT_EQ(stats.shm_misses, 1u);
  EXPECT_EQ(stats.shm_inserts, 1u);
  EXPECT_TRUE(store.Load(0x2222, &loaded));  // now served from the ring
  stats = store.stats();
  EXPECT_EQ(stats.shm_hits, 1u);
  EXPECT_EQ(stats.shm_entries, 1u);
  EXPECT_EQ(stats.shm_attached, 1u);
}

TEST_F(ShmRingTest, RingRejectsEntryWhoseBytesFailFullValidation) {
  // Belt and braces: even when the slot checksum passes, the consumer
  // re-runs the full DBLLOBJ1 validation. Publish bytes that are a valid
  // *slot* but not a valid *entry* and make sure the store treats the probe
  // as a miss instead of trusting shared memory.
  ObjectStore::Options options;
  options.dir = dir_;
  options.shm = true;
  ObjectStore store(options);
  ASSERT_TRUE(store.init_status().ok());
  ASSERT_NE(store.shm_ring(), nullptr);
  const std::vector<std::uint8_t> garbage = Payload(0x12, 128);
  ASSERT_TRUE(store.shm_ring()->Insert(0x3333, garbage.data(), garbage.size()));

  ObjectEntry loaded;
  EXPECT_FALSE(store.Load(0x3333, &loaded));
  // The ring reported a (checksum-clean) hit, but the store refused it and
  // counted a degraded error; the overall Load is a miss, not a hit.
  const ObjectStoreStats stats = store.stats();
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST_F(ShmRingTest, QuarantinedFingerprintNeverLeavesRingOrDisk) {
  // Hostile scenario: a legacy/compromised peer published a poisoned object
  // into *both* layers -- a valid entry file on disk and a checksum-clean
  // ring slot -- before this process learned of the quarantine. The lookup
  // ladder must consult the quarantine before serving either layer.
  constexpr std::uint64_t kPoisoned = 0xdeadf00d;
  const ObjectEntry poisoned = FakeEntry(kPoisoned);
  {
    ObjectStore::Options peer_options;
    peer_options.dir = dir_;
    peer_options.shm = true;
    ObjectStore peer(peer_options);
    ASSERT_TRUE(peer.init_status().ok());
    peer.Store(poisoned);  // write-through: disk + ring, no quarantine yet
    ASSERT_EQ(peer.stats().shm_inserts, 1u);
  }
  // The quarantine record arrives via the sidecar (another process's Add),
  // not through this store's QuarantineFingerprint -- so the entry file and
  // the ring slot both still exist and would validate cleanly.
  ASSERT_TRUE(Quarantine(dir_).Add(kPoisoned, "test poison").ok());
  ASSERT_TRUE(
      support::FileSize(dir_ + "/" + ObjectStore::EntryFileName(kPoisoned))
          .has_value());

  ObjectStore::Options options;
  options.dir = dir_;
  options.shm = true;
  ObjectStore store(options);
  ASSERT_TRUE(store.init_status().ok());
  ObjectEntry loaded;
  EXPECT_FALSE(store.Load(kPoisoned, &loaded));  // rung 0: the veto
  ObjectStoreStats stats = store.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.shm_hits, 0u);
  EXPECT_GE(stats.quarantine_blocked, 1u);
  EXPECT_EQ(stats.quarantine_entries, 1u);

  // The ring alone (below the store) refuses the fingerprint in both
  // directions, and a re-store of the poisoned object is swallowed.
  ASSERT_NE(store.shm_ring(), nullptr);
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(store.shm_ring()->Lookup(kPoisoned, &out));
  EXPECT_FALSE(store.shm_ring()->Insert(kPoisoned, poisoned.object.data(),
                                        poisoned.object.size()));
  EXPECT_GE(store.shm_ring()->stats().quarantine_blocked, 2u);
  store.Store(poisoned);
  EXPECT_EQ(store.stats().stores, 0u);

  // Bundle import skips quarantined fingerprints too: shipping a warm cache
  // must not resurrect a poisoned object on the receiving box.
  const std::string bundle = dir_ + "/poison.dbbundle";
  auto exported = ObjectStore::ExportBundle(dir_, bundle);
  ASSERT_TRUE(exported.has_value()) << exported.error().Format();
  char import_tmpl[] = "/tmp/dbll_shmring_import_XXXXXX";
  ASSERT_NE(::mkdtemp(import_tmpl), nullptr);
  const std::string import_dir = import_tmpl;
  ASSERT_TRUE(Quarantine(import_dir).Add(kPoisoned, "test poison").ok());
  auto imported = ObjectStore::ImportBundle(bundle, import_dir);
  ASSERT_TRUE(imported.has_value()) << imported.error().Format();
  EXPECT_EQ(*imported, 0u);
  EXPECT_FALSE(support::FileSize(import_dir + "/" +
                                 ObjectStore::EntryFileName(kPoisoned))
                   .has_value());
  (void)ObjectStore::Purge(import_dir);
  ::rmdir(import_tmpl);
}

// --- CompileService integration (two services, one box) ---------------------

CompileRequest ArithRequest() {
  CompileRequest request(reinterpret_cast<std::uint64_t>(&c_arith_mix),
                         lift::Signature::Ints(2));
  request.FixParam(1, 7);
  return request;
}

TEST_F(ShmRingTest, SecondServiceIsServedFromSharedMemory) {
  CompileService::Options options;
  options.persist_dir = dir_;  // Options::shm defaults to true at this layer
  const long expected = c_arith_mix(5, 7);
  {
    CompileService first(options);
    ASSERT_TRUE(first.persist_enabled());
    auto entry = first.CompileSync(ArithRequest());
    ASSERT_TRUE(entry.has_value()) << entry.error().Format();
    EXPECT_EQ(reinterpret_cast<IntFn2>(*entry)(5, 0), expected);
    first.WaitIdle();  // settle the worker's write-back (disk + ring)
    const CacheStats stats = first.stats();
    EXPECT_EQ(stats.disk_stores, 1u);
    EXPECT_EQ(stats.shm_inserts, 1u);
  }
  // The second service (same address space, so the persist fingerprint
  // agrees) must be served from the ring: zero compiles, zero lift time,
  // and the hit is accounted as both a persist hit and a shm hit.
  CompileService second(options);
  auto entry = second.CompileSync(ArithRequest());
  ASSERT_TRUE(entry.has_value()) << entry.error().Format();
  EXPECT_EQ(reinterpret_cast<IntFn2>(*entry)(5, 0), expected);
  const CacheStats stats = second.stats();
  EXPECT_EQ(stats.compiles, 0u);
  EXPECT_EQ(stats.stage_total.total_ns(), 0u);
  EXPECT_EQ(stats.disk_hits, 1u);
  EXPECT_EQ(stats.shm_hits, 1u);
}

}  // namespace
}  // namespace dbll::runtime
