// dbll tests -- x86-64 decoder, printer, and encoder round-trip.
//
// The vector table (decoder_vectors.inc) was produced by assembling each
// instruction with GNU as and dumping the bytes with objdump, so the decoder
// is checked against an independent implementation.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "dbll/x86/decoder.h"
#include "dbll/x86/encoder.h"
#include "dbll/x86/printer.h"

namespace dbll::x86 {
namespace {

struct Vector {
  const char* bytes;
  const char* text;
};

constexpr Vector kVectors[] = {
#include "decoder_vectors.inc"
};

std::vector<std::uint8_t> ParseHex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  std::istringstream in(hex);
  std::string token;
  while (in >> token) {
    out.push_back(static_cast<std::uint8_t>(std::stoul(token, nullptr, 16)));
  }
  return out;
}

std::string FirstWord(const std::string& text) {
  const std::size_t space = text.find(' ');
  return space == std::string::npos ? text : text.substr(0, space);
}

class DecoderVectorTest : public testing::TestWithParam<Vector> {};

TEST_P(DecoderVectorTest, DecodesLengthAndMnemonic) {
  const Vector& vec = GetParam();
  const std::vector<std::uint8_t> bytes = ParseHex(vec.bytes);
  ASSERT_FALSE(bytes.empty()) << vec.text;

  auto instr = Decoder::DecodeOne(bytes, 0x1000);
  ASSERT_TRUE(instr.has_value())
      << vec.text << ": " << instr.error().Format();
  EXPECT_EQ(instr->length, bytes.size()) << vec.text;

  const std::string printed = PrintInstr(*instr);
  EXPECT_EQ(FirstWord(printed), FirstWord(vec.text))
      << "bytes: " << vec.bytes << " decoded as: " << printed;
}

TEST_P(DecoderVectorTest, EncoderRoundTrip) {
  const Vector& vec = GetParam();
  const std::vector<std::uint8_t> bytes = ParseHex(vec.bytes);
  auto instr = Decoder::DecodeOne(bytes, 0x1000);
  ASSERT_TRUE(instr.has_value()) << vec.text;

  std::uint8_t buffer[Encoder::kMaxLength];
  auto length = Encoder::Encode(*instr, buffer, 0x1000);
  ASSERT_TRUE(length.has_value())
      << vec.text << ": " << length.error().Format();

  auto again = Decoder::DecodeOne({buffer, *length}, 0x1000);
  ASSERT_TRUE(again.has_value())
      << vec.text << ": re-decode failed: " << again.error().Format();
  EXPECT_EQ(PrintInstr(*again), PrintInstr(*instr))
      << "original bytes: " << vec.bytes;
}

INSTANTIATE_TEST_SUITE_P(AssembledVectors, DecoderVectorTest,
                         testing::ValuesIn(kVectors),
                         [](const testing::TestParamInfo<Vector>& info) {
                           std::string name = info.param.text;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return std::to_string(info.index) + "_" + name;
                         });

// --- Specific field-level expectations -------------------------------------

TEST(DecoderTest, MemOperandFields) {
  // mov rax, [rbx+rcx*4-0x20]
  const std::uint8_t bytes[] = {0x48, 0x8b, 0x44, 0x8b, 0xe0};
  auto instr = Decoder::DecodeOne(bytes, 0);
  ASSERT_TRUE(instr.has_value());
  ASSERT_EQ(instr->op_count, 2);
  EXPECT_TRUE(instr->ops[0].is_reg());
  EXPECT_EQ(instr->ops[0].reg, kRax);
  ASSERT_TRUE(instr->ops[1].is_mem());
  EXPECT_EQ(instr->ops[1].mem.base, kRbx);
  EXPECT_EQ(instr->ops[1].mem.index, kRcx);
  EXPECT_EQ(instr->ops[1].mem.scale, 4);
  EXPECT_EQ(instr->ops[1].mem.disp, -0x20);
  EXPECT_EQ(instr->ops[1].size, 8);
}

TEST(DecoderTest, RipRelativeTargetResolved) {
  // mov rax, [rip+0x100] at address 0x4000, length 7 -> target 0x4107.
  const std::uint8_t bytes[] = {0x48, 0x8b, 0x05, 0x00, 0x01, 0x00, 0x00};
  auto instr = Decoder::DecodeOne(bytes, 0x4000);
  ASSERT_TRUE(instr.has_value());
  EXPECT_EQ(instr->target, 0x4107u);
  EXPECT_EQ(instr->ops[1].mem.base, kRip);
}

TEST(DecoderTest, BranchTargetsResolved) {
  // je +0x10 (rel8) at 0x2000: target = 0x2000 + 2 + 0x10.
  const std::uint8_t je[] = {0x74, 0x10};
  auto instr = Decoder::DecodeOne(je, 0x2000);
  ASSERT_TRUE(instr.has_value());
  EXPECT_EQ(instr->mnemonic, Mnemonic::kJcc);
  EXPECT_EQ(instr->cond, Cond::kE);
  EXPECT_EQ(instr->target, 0x2012u);

  // backwards rel8
  const std::uint8_t jne[] = {0x75, 0xee};
  auto back = Decoder::DecodeOne(jne, 0x2000);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->target, 0x2000u + 2 - 0x12);
}

TEST(DecoderTest, Imm64IsPreserved) {
  // movabs rax, 0x123456789abcdef0
  const std::uint8_t bytes[] = {0x48, 0xb8, 0xf0, 0xde, 0xbc, 0x9a,
                                0x78, 0x56, 0x34, 0x12};
  auto instr = Decoder::DecodeOne(bytes, 0);
  ASSERT_TRUE(instr.has_value());
  EXPECT_EQ(instr->ops[1].imm, 0x123456789abcdef0LL);
}

TEST(DecoderTest, Imm8SignExtended) {
  // add rax, -1 (83 /0 imm8)
  const std::uint8_t bytes[] = {0x48, 0x83, 0xc0, 0xff};
  auto instr = Decoder::DecodeOne(bytes, 0);
  ASSERT_TRUE(instr.has_value());
  EXPECT_EQ(instr->ops[1].imm, -1);
}

TEST(DecoderTest, SegmentOverride) {
  // mov rax, fs:[0x28]
  const std::uint8_t bytes[] = {0x64, 0x48, 0x8b, 0x04, 0x25,
                                0x28, 0x00, 0x00, 0x00};
  auto instr = Decoder::DecodeOne(bytes, 0);
  ASSERT_TRUE(instr.has_value());
  EXPECT_EQ(instr->ops[1].mem.segment, Segment::kFs);
  EXPECT_EQ(instr->ops[1].mem.disp, 0x28);
}

TEST(DecoderTest, HighByteRegisters) {
  // mov ah, bh
  const std::uint8_t bytes[] = {0x88, 0xfc};
  auto instr = Decoder::DecodeOne(bytes, 0);
  ASSERT_TRUE(instr.has_value());
  EXPECT_TRUE(instr->ops[0].high8);
  EXPECT_TRUE(instr->ops[1].high8);
  EXPECT_EQ(PrintInstr(*instr), "mov ah, bh");
}

TEST(DecoderTest, RexByteRegisters) {
  // mov sil, dil -- needs REX, low bytes of rsi/rdi, not dh/bh.
  const std::uint8_t bytes[] = {0x40, 0x88, 0xfe};
  auto instr = Decoder::DecodeOne(bytes, 0);
  ASSERT_TRUE(instr.has_value());
  EXPECT_FALSE(instr->ops[0].high8);
  EXPECT_EQ(PrintInstr(*instr), "mov sil, dil");
}

TEST(DecoderTest, TruncatedInstructionFails) {
  const std::uint8_t bytes[] = {0x48, 0x8b};
  auto instr = Decoder::DecodeOne(bytes, 0);
  ASSERT_FALSE(instr.has_value());
  EXPECT_EQ(instr.error().kind(), ErrorKind::kDecode);
}

TEST(DecoderTest, LockPrefixRejected) {
  const std::uint8_t bytes[] = {0xf0, 0x48, 0x01, 0x18};
  auto instr = Decoder::DecodeOne(bytes, 0);
  ASSERT_FALSE(instr.has_value());
}

TEST(DecoderTest, UnknownOpcodeRejected) {
  const std::uint8_t bytes[] = {0x0f, 0x0d, 0x00};  // prefetch (grp): nop'd
  auto instr = Decoder::DecodeOne(bytes, 0);
  // 0F 0D is a hint-nop group on AMD; we do not support it.
  EXPECT_FALSE(instr.has_value());
}

TEST(DecoderTest, EmptyInputFails) {
  auto instr = Decoder::DecodeOne({}, 0);
  EXPECT_FALSE(instr.has_value());
}

// --- Printer ----------------------------------------------------------------

TEST(PrinterTest, RegisterNames) {
  EXPECT_EQ(PrintReg(kRax, 8), "rax");
  EXPECT_EQ(PrintReg(kRax, 4), "eax");
  EXPECT_EQ(PrintReg(kRax, 2), "ax");
  EXPECT_EQ(PrintReg(kRax, 1), "al");
  EXPECT_EQ(PrintReg(kRax, 1, true), "ah");
  EXPECT_EQ(PrintReg(kRsp, 1), "spl");
  EXPECT_EQ(PrintReg(kR10, 4), "r10d");
  EXPECT_EQ(PrintReg(Xmm(9), 16), "xmm9");
}

TEST(PrinterTest, MemoryOperands) {
  MemOperand mem;
  mem.base = kRbp;
  mem.disp = -12;
  EXPECT_EQ(PrintOperand(Operand::MemOp(mem, 4)),
            "dword ptr [rbp - 0xc]");
  mem.base = kRsi;
  mem.index = kRax;
  mem.scale = 8;
  mem.disp = 0;
  EXPECT_EQ(PrintOperand(Operand::MemOp(mem, 8)),
            "qword ptr [rsi + 8*rax]");
}

TEST(PrinterTest, Immediates) {
  EXPECT_EQ(PrintOperand(Operand::ImmOp(0x2a, 4)), "0x2a");
  EXPECT_EQ(PrintOperand(Operand::ImmOp(-1, 4)), "-0x1");
}

}  // namespace
}  // namespace dbll::x86
