// Tests for the ISA ladder (include/dbll/support/cpu_features.h): synthetic
// cpuid/xgetbv decode vectors, the XCR0 OS-enable gating, level collapse,
// the DBLL_JIT_ISA / DBLL_JIT_FEATURES environment overrides, and the
// config-fingerprint separation the multi-versioned cache relies on.
#include "dbll/support/cpu_features.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "dbll/lift/lifter.h"

namespace dbll::support {
namespace {

// cpuid bit positions, duplicated from the implementation on purpose: a
// transposed bit in cpu_features.cpp must fail here, not be mirrored.
constexpr std::uint32_t kEcxSse3 = 1u << 0;
constexpr std::uint32_t kEcxSsse3 = 1u << 9;
constexpr std::uint32_t kEcxFma = 1u << 12;
constexpr std::uint32_t kEcxSse41 = 1u << 19;
constexpr std::uint32_t kEcxSse42 = 1u << 20;
constexpr std::uint32_t kEcxPopcnt = 1u << 23;
constexpr std::uint32_t kEcxOsxsave = 1u << 27;
constexpr std::uint32_t kEcxAvx = 1u << 28;
constexpr std::uint32_t kEbxBmi1 = 1u << 3;
constexpr std::uint32_t kEbxAvx2 = 1u << 5;
constexpr std::uint32_t kEbxBmi2 = 1u << 8;
constexpr std::uint32_t kEbxAvx512f = 1u << 16;
constexpr std::uint32_t kEbxAvx512vl = 1u << 31;
constexpr std::uint32_t kExtLzcnt = 1u << 5;

/// A fully-featured x86-64-v3 snapshot with YMM state OS-enabled.
CpuidSnapshot V3Snapshot() {
  CpuidSnapshot s;
  s.leaf1_ecx = kEcxSse3 | kEcxSsse3 | kEcxFma | kEcxSse41 | kEcxSse42 |
                kEcxPopcnt | kEcxOsxsave | kEcxAvx;
  s.leaf7_ebx = kEbxBmi1 | kEbxAvx2 | kEbxBmi2;
  s.ext1_ecx = kExtLzcnt;
  s.xcr0 = 0x7;  // x87 | SSE | YMM
  return s;
}

/// V3 plus AVX-512F/VL with full ZMM state enabled.
CpuidSnapshot V4Snapshot() {
  CpuidSnapshot s = V3Snapshot();
  s.leaf7_ebx |= kEbxAvx512f | kEbxAvx512vl;
  s.xcr0 = 0xE7;  // + opmask | ZMM_Hi256 | Hi16_ZMM
  return s;
}

/// Scoped environment override that restores the previous value on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(CpuFeaturesTest, EmptySnapshotDecodesToNothing) {
  const CpuFeatures f = DecodeCpuFeatures(CpuidSnapshot{});
  EXPECT_FALSE(f.sse3);
  EXPECT_FALSE(f.sse42);
  EXPECT_FALSE(f.avx);
  EXPECT_FALSE(f.avx2);
  EXPECT_FALSE(f.fma);
  EXPECT_FALSE(f.avx512f);
  EXPECT_FALSE(f.lzcnt);
  EXPECT_EQ(LevelFromFeatures(f), IsaLevel::kBaseline);
}

TEST(CpuFeaturesTest, V3SnapshotDecodesToAvx2Level) {
  const CpuFeatures f = DecodeCpuFeatures(V3Snapshot());
  EXPECT_TRUE(f.sse3);
  EXPECT_TRUE(f.ssse3);
  EXPECT_TRUE(f.sse41);
  EXPECT_TRUE(f.sse42);
  EXPECT_TRUE(f.avx);
  EXPECT_TRUE(f.avx2);
  EXPECT_TRUE(f.fma);
  EXPECT_TRUE(f.bmi1);
  EXPECT_TRUE(f.bmi2);
  EXPECT_TRUE(f.popcnt);
  EXPECT_TRUE(f.lzcnt);
  EXPECT_FALSE(f.avx512f);
  EXPECT_EQ(LevelFromFeatures(f), IsaLevel::kAvx2);
}

TEST(CpuFeaturesTest, V4SnapshotDecodesToAvx512Level) {
  const CpuFeatures f = DecodeCpuFeatures(V4Snapshot());
  EXPECT_TRUE(f.avx512f);
  EXPECT_TRUE(f.avx512vl);
  EXPECT_EQ(LevelFromFeatures(f), IsaLevel::kAvx512);
}

TEST(CpuFeaturesTest, AvxRequiresOsxsave) {
  // The CPU advertises AVX but the OS never enabled XSAVE: executing a VEX
  // instruction would fault, so the decode must not report AVX.
  CpuidSnapshot s = V3Snapshot();
  s.leaf1_ecx &= ~kEcxOsxsave;
  const CpuFeatures f = DecodeCpuFeatures(s);
  EXPECT_FALSE(f.avx);
  EXPECT_FALSE(f.avx2);
  EXPECT_FALSE(f.fma);
  EXPECT_EQ(LevelFromFeatures(f), IsaLevel::kBaseline);
  // Non-AVX features survive.
  EXPECT_TRUE(f.sse42);
  EXPECT_TRUE(f.popcnt);
}

TEST(CpuFeaturesTest, AvxRequiresYmmStateInXcr0) {
  // OSXSAVE is on but XCR0 only enables x87+SSE: the kernel does not
  // context-switch YMM state.
  CpuidSnapshot s = V3Snapshot();
  s.xcr0 = 0x3;
  const CpuFeatures f = DecodeCpuFeatures(s);
  EXPECT_FALSE(f.avx);
  EXPECT_FALSE(f.avx2);
  EXPECT_EQ(LevelFromFeatures(f), IsaLevel::kBaseline);
}

TEST(CpuFeaturesTest, Avx512RequiresZmmStateInXcr0) {
  // AVX-512 cpuid bits with only YMM state enabled: AVX2 is usable,
  // AVX-512 is not (ZMM/opmask state would be lost on context switch).
  CpuidSnapshot s = V4Snapshot();
  s.xcr0 = 0x7;
  const CpuFeatures f = DecodeCpuFeatures(s);
  EXPECT_TRUE(f.avx2);
  EXPECT_FALSE(f.avx512f);
  EXPECT_FALSE(f.avx512vl);
  EXPECT_EQ(LevelFromFeatures(f), IsaLevel::kAvx2);
}

TEST(CpuFeaturesTest, Avx512vlRequiresAvx512f) {
  CpuidSnapshot s = V4Snapshot();
  s.leaf7_ebx &= ~kEbxAvx512f;
  const CpuFeatures f = DecodeCpuFeatures(s);
  EXPECT_FALSE(f.avx512f);
  EXPECT_FALSE(f.avx512vl);
  EXPECT_EQ(LevelFromFeatures(f), IsaLevel::kAvx2);
}

TEST(CpuFeaturesTest, FmaRequiresAvx) {
  CpuidSnapshot s;
  s.leaf1_ecx = kEcxFma;  // FMA bit without AVX/OSXSAVE
  EXPECT_FALSE(DecodeCpuFeatures(s).fma);
}

TEST(CpuFeaturesTest, MissingAnyV3FeatureDropsToBaseline) {
  // The ladder is deliberately coarse: losing any single v3 member (here
  // BMI2) drops the whole level to baseline.
  CpuidSnapshot s = V3Snapshot();
  s.leaf7_ebx &= ~kEbxBmi2;
  EXPECT_EQ(LevelFromFeatures(DecodeCpuFeatures(s)), IsaLevel::kBaseline);
}

TEST(CpuFeaturesTest, LadderIsMonotone) {
  EXPECT_LT(static_cast<int>(IsaLevel::kBaseline),
            static_cast<int>(IsaLevel::kAvx2));
  EXPECT_LT(static_cast<int>(IsaLevel::kAvx2),
            static_cast<int>(IsaLevel::kAvx512));
  EXPECT_EQ(kMaxIsaLevel, static_cast<int>(IsaLevel::kAvx512));
}

TEST(CpuFeaturesTest, ParseAndNameRoundTrip) {
  for (int i = 0; i <= kMaxIsaLevel; ++i) {
    const IsaLevel level = static_cast<IsaLevel>(i);
    IsaLevel parsed;
    ASSERT_TRUE(ParseIsaLevel(IsaLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
    ASSERT_TRUE(ParseIsaLevel(std::to_string(i), &parsed));
    EXPECT_EQ(parsed, level);
  }
  IsaLevel out = IsaLevel::kAvx2;
  EXPECT_FALSE(ParseIsaLevel("", &out));
  EXPECT_FALSE(ParseIsaLevel("AVX2", &out));
  EXPECT_FALSE(ParseIsaLevel("3", &out));
  EXPECT_FALSE(ParseIsaLevel("native", &out));
  EXPECT_EQ(out, IsaLevel::kAvx2);  // untouched on failure
}

TEST(CpuFeaturesTest, EffectiveLevelNeverExceedsHost) {
  ScopedEnv env("DBLL_JIT_ISA", nullptr);
  EXPECT_EQ(EffectiveIsaLevel(), HostIsaLevel());
  // Forcing *up* must not work: avx512 requested, host-capped result.
  ScopedEnv force("DBLL_JIT_ISA", "avx512");
  EXPECT_LE(static_cast<int>(EffectiveIsaLevel()),
            static_cast<int>(HostIsaLevel()));
}

TEST(CpuFeaturesTest, JitIsaEnvMasksDown) {
  ScopedEnv env("DBLL_JIT_ISA", "baseline");
  EXPECT_EQ(EffectiveIsaLevel(), IsaLevel::kBaseline);
  // Re-read per call: flipping the variable takes effect immediately.
  ::setenv("DBLL_JIT_ISA", "avx2", 1);
  const IsaLevel expected =
      HostIsaLevel() < IsaLevel::kAvx2 ? HostIsaLevel() : IsaLevel::kAvx2;
  EXPECT_EQ(EffectiveIsaLevel(), expected);
}

TEST(CpuFeaturesTest, UnparseableJitIsaEnvIsIgnored) {
  ScopedEnv env("DBLL_JIT_ISA", "turbo-mode");
  EXPECT_EQ(EffectiveIsaLevel(), HostIsaLevel());
}

TEST(CpuFeaturesTest, ResolveIsaLevelClampsIntoLadder) {
  ScopedEnv env("DBLL_JIT_ISA", nullptr);
  const IsaLevel effective = EffectiveIsaLevel();
  EXPECT_EQ(ResolveIsaLevel(-1), effective);        // auto
  EXPECT_EQ(ResolveIsaLevel(99), effective);        // clamped down
  EXPECT_EQ(ResolveIsaLevel(0), IsaLevel::kBaseline);  // explicit is kept
}

TEST(CpuFeaturesTest, ResolveRespectsEnvMask) {
  ScopedEnv env("DBLL_JIT_ISA", "baseline");
  EXPECT_EQ(ResolveIsaLevel(-1), IsaLevel::kBaseline);
  EXPECT_EQ(ResolveIsaLevel(kMaxIsaLevel), IsaLevel::kBaseline);
}

TEST(CpuFeaturesTest, FeatureStringsPerLevel) {
  ScopedEnv env("DBLL_JIT_FEATURES", nullptr);
  EXPECT_EQ(IsaFeatureString(IsaLevel::kBaseline), "");
  const std::string avx2 = IsaFeatureString(IsaLevel::kAvx2);
  EXPECT_NE(avx2.find("+avx2"), std::string::npos);
  EXPECT_NE(avx2.find("+fma"), std::string::npos);
  EXPECT_EQ(avx2.find("avx512"), std::string::npos);
  const std::string avx512 = IsaFeatureString(IsaLevel::kAvx512);
  EXPECT_NE(avx512.find("+avx512f"), std::string::npos);
  EXPECT_NE(avx512.find("+avx512vl"), std::string::npos);
}

TEST(CpuFeaturesTest, JitFeaturesEnvAppendsToEveryLevel) {
  ScopedEnv env("DBLL_JIT_FEATURES", "+prfchw");
  // Baseline has no level features: the extras stand alone, no leading comma.
  EXPECT_EQ(IsaFeatureString(IsaLevel::kBaseline), "+prfchw");
  const std::string avx2 = IsaFeatureString(IsaLevel::kAvx2);
  EXPECT_NE(avx2.find(",+prfchw"), std::string::npos);
}

TEST(CpuFeaturesTest, LiftConfigFingerprintSeparatesLevels) {
  // The multi-versioned cache hangs off this property: two configs that
  // differ only in isa_level (or vector_width) must never alias.
  lift::LiftConfig a;
  a.isa_level = 0;
  lift::LiftConfig b = a;
  b.isa_level = 1;
  lift::LiftConfig c = a;
  c.isa_level = 2;
  EXPECT_NE(lift::Fingerprint(a), lift::Fingerprint(b));
  EXPECT_NE(lift::Fingerprint(b), lift::Fingerprint(c));
  EXPECT_NE(lift::Fingerprint(a), lift::Fingerprint(c));
  lift::LiftConfig w = a;
  w.vector_width = 4;
  EXPECT_NE(lift::Fingerprint(a), lift::Fingerprint(w));
}

}  // namespace
}  // namespace dbll::support
