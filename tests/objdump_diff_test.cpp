// dbll tests -- differential decoder validation against GNU objdump.
//
// For every corpus function, objdump disassembles this test binary and the
// dbll decoder decodes the same live bytes; instruction start offsets,
// lengths, and mnemonics must agree. Skips gracefully when objdump is not
// installed.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "corpus.h"
#include "dbll/x86/cfg.h"
#include "dbll/x86/decoder.h"
#include "dbll/x86/printer.h"

namespace dbll::x86 {
namespace {

bool ObjdumpAvailable() {
  static const bool available = [] {
    return std::system("objdump --version > /dev/null 2>&1") == 0;
  }();
  return available;
}

struct ObjdumpInsn {
  std::uint64_t offset;  // from function start
  std::size_t length;
  std::string mnemonic;
};

/// Path of this test binary. /proc/self/exe must be resolved here: passing
/// it to objdump verbatim would make objdump disassemble *itself*.
std::string SelfPath() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = 0;
  return buf;
}

/// Parses `objdump -d --disassemble=<symbol> <this-binary>`.
std::vector<ObjdumpInsn> Objdump(const std::string& symbol) {
  std::vector<ObjdumpInsn> out;
  const std::string cmd = "objdump -d -M att --disassemble=" + symbol + " '" +
                          SelfPath() + "' 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return out;
  char line[512];
  std::uint64_t base = 0;
  bool in_function = false;
  while (fgets(line, sizeof(line), pipe) != nullptr) {
    std::string text(line);
    // Function header: "0000000000001234 <symbol>:"
    const std::string needle = "<" + symbol + ">:";
    if (text.find(needle) != std::string::npos) {
      base = std::stoull(text, nullptr, 16);
      in_function = true;
      continue;
    }
    if (!in_function) continue;
    // Instruction lines look like "  1234:\t48 89 f8  \tmov ..."
    const std::size_t colon = text.find(':');
    if (colon == std::string::npos || text.find('\t') == std::string::npos) {
      if (text == "\n") break;  // end of function listing
      continue;
    }
    std::uint64_t address = 0;
    try {
      address = std::stoull(text.substr(0, colon), nullptr, 16);
    } catch (...) {
      continue;
    }
    const std::size_t bytes_begin = text.find('\t', colon);
    const std::size_t bytes_end = text.find('\t', bytes_begin + 1);
    if (bytes_begin == std::string::npos) continue;
    // Count hex byte pairs.
    std::istringstream bytes(
        text.substr(bytes_begin + 1, bytes_end == std::string::npos
                                         ? std::string::npos
                                         : bytes_end - bytes_begin - 1));
    std::size_t count = 0;
    std::string token;
    while (bytes >> token) {
      if (token.size() == 2 && isxdigit(static_cast<unsigned char>(token[0])) &&
          isxdigit(static_cast<unsigned char>(token[1]))) {
        ++count;
      }
    }
    if (count == 0) continue;
    std::string mnemonic;
    if (bytes_end != std::string::npos) {
      std::istringstream rest(text.substr(bytes_end + 1));
      rest >> mnemonic;
    }
    // Continuation lines (long instructions) have no mnemonic: merge.
    if (mnemonic.empty() && !out.empty()) {
      out.back().length += count;
      continue;
    }
    out.push_back(ObjdumpInsn{address - base, count, mnemonic});
  }
  pclose(pipe);
  return out;
}

/// Normalizes an AT&T mnemonic from objdump for comparison against ours:
/// strips width suffixes (addq -> add) where our Intel name has none.
bool MnemonicsAgree(const std::string& objdump_name, std::string ours) {
  if (objdump_name == ours) return true;
  // Our conditional families print e.g. "jne"/"setg"/"cmovl", same as
  // objdump. Suffixed AT&T forms: try stripping one trailing width letter.
  const std::string suffixes = "bwlq";
  if (!objdump_name.empty() &&
      suffixes.find(objdump_name.back()) != std::string::npos &&
      objdump_name.substr(0, objdump_name.size() - 1) == ours) {
    return true;
  }
  // movabs vs mov, movslq vs movsxd, cltq/cdqe etc.
  static const std::map<std::string, std::string> aliases = {
      {"movabs", "mov"},   {"movslq", "movsxd"}, {"movsbq", "movsx"},
      {"movsbl", "movsx"}, {"movswl", "movsx"},  {"movswq", "movsx"},
      {"movzbl", "movzx"}, {"movzwl", "movzx"},  {"movzbq", "movzx"},
      {"movzwq", "movzx"}, {"cltq", "cdqe"},     {"cqto", "cqo"},
      {"cltd", "cdq"},     {"nopw", "nop"},      {"nopl", "nop"},
      {"endbr64", "endbr64"}};
  auto it = aliases.find(objdump_name);
  if (it != aliases.end() && it->second == ours) return true;
  // Padding idioms: objdump renders 66 90 as "xchg %ax,%ax" and prints the
  // cs-prefixed multi-byte nop as "cs nopw"; we canonicalize all of them to
  // nop (the lengths already matched above).
  if (ours == "nop" &&
      (objdump_name == "xchg" || objdump_name == "cs" ||
       objdump_name.rfind("nop", 0) == 0)) {
    return true;
  }
  return false;
}

struct NamedFn {
  const char* name;
  std::uint64_t address;
};

class ObjdumpDiffTest : public testing::TestWithParam<NamedFn> {};

TEST_P(ObjdumpDiffTest, DecoderAgreesWithObjdump) {
  if (!ObjdumpAvailable()) GTEST_SKIP() << "objdump not installed";
  const NamedFn& fn = GetParam();
  const std::vector<ObjdumpInsn> reference = Objdump(fn.name);
  ASSERT_FALSE(reference.empty())
      << "objdump produced no instructions for " << fn.name;

  // Decode the same bytes with the dbll decoder, linearly (objdump order).
  std::uint64_t offset = 0;
  std::size_t matched = 0;
  for (const ObjdumpInsn& ref : reference) {
    ASSERT_EQ(offset, ref.offset)
        << fn.name << ": lost sync before " << ref.mnemonic;
    auto instr = Decoder::DecodeAt(fn.address + offset);
    ASSERT_TRUE(instr.has_value())
        << fn.name << " +0x" << std::hex << offset << " (" << ref.mnemonic
        << "): " << instr.error().Format();
    EXPECT_EQ(instr->length, ref.length)
        << fn.name << " +0x" << std::hex << offset << " " << ref.mnemonic
        << " decoded as " << PrintInstr(*instr);
    const std::string ours =
        PrintInstr(*instr).substr(0, PrintInstr(*instr).find(' '));
    EXPECT_TRUE(MnemonicsAgree(ref.mnemonic, ours))
        << fn.name << ": objdump says '" << ref.mnemonic << "', dbll says '"
        << ours << "'";
    offset += ref.length;
    ++matched;
  }
  EXPECT_EQ(matched, reference.size());
}

// Exercise a representative slice of the corpus: integer, FP, vector,
// control flow, memory.
INSTANTIATE_TEST_SUITE_P(
    Corpus, ObjdumpDiffTest,
    testing::Values(
        NamedFn{"c_arith_mix", reinterpret_cast<std::uint64_t>(&c_arith_mix)},
        NamedFn{"c_shifts", reinterpret_cast<std::uint64_t>(&c_shifts)},
        NamedFn{"c_cmp_chain", reinterpret_cast<std::uint64_t>(&c_cmp_chain)},
        NamedFn{"c_div_mod", reinterpret_cast<std::uint64_t>(&c_div_mod)},
        NamedFn{"c_loop_fib", reinterpret_cast<std::uint64_t>(&c_loop_fib)},
        NamedFn{"c_gcd", reinterpret_cast<std::uint64_t>(&c_gcd)},
        NamedFn{"c_array_sum", reinterpret_cast<std::uint64_t>(&c_array_sum)},
        NamedFn{"c_stack_spill",
                reinterpret_cast<std::uint64_t>(&c_stack_spill)},
        NamedFn{"c_poly", reinterpret_cast<std::uint64_t>(&c_poly)},
        NamedFn{"c_fp_mix", reinterpret_cast<std::uint64_t>(&c_fp_mix)},
        NamedFn{"c_dot3", reinterpret_cast<std::uint64_t>(&c_dot3)},
        NamedFn{"c_u8_ops", reinterpret_cast<std::uint64_t>(&c_u8_ops)},
        NamedFn{"v_paddd_sum", reinterpret_cast<std::uint64_t>(&v_paddd_sum)},
        NamedFn{"v_cmp_mask", reinterpret_cast<std::uint64_t>(&v_cmp_mask)},
        NamedFn{"v_shift_mix", reinterpret_cast<std::uint64_t>(&v_shift_mix)},
        NamedFn{"v_mul_lanes", reinterpret_cast<std::uint64_t>(&v_mul_lanes)},
        NamedFn{"v_memchr_like",
                reinterpret_cast<std::uint64_t>(&v_memchr_like)},
        NamedFn{"cb_apply", reinterpret_cast<std::uint64_t>(&cb_apply)}),
    [](const testing::TestParamInfo<NamedFn>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace dbll::x86
