// dbll tests -- the runtime specialization cache + async compile service:
// hit/miss semantics, key separation (params, const-mem contents,
// LiftConfig), the generic->specialized atomic handoff, single-compile
// coalescing under concurrency, LRU eviction, and failure fallback.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "corpus.h"
#include "dbll/dbrew/capi.h"
#include "dbll/obs/obs.h"
#include "dbll/runtime/compile_service.h"

namespace dbll::runtime {
namespace {

using IntFn2 = long (*)(long, long);

CompileRequest ArithRequest(lift::LiftConfig config = {}) {
  return CompileRequest(reinterpret_cast<std::uint64_t>(&c_arith_mix),
                        lift::Signature::Ints(2), std::move(config));
}

TEST(SpecKeyTest, IdenticalRequestsShareAKey) {
  CompileRequest a = ArithRequest();
  a.FixParam(0, 42);
  CompileRequest b = ArithRequest();
  b.FixParam(0, 42);
  EXPECT_TRUE(SpecKey(a) == SpecKey(b));
}

TEST(SpecKeyTest, DistinctParamValuesDistinctKeys) {
  CompileRequest a = ArithRequest();
  a.FixParam(0, 42);
  CompileRequest b = ArithRequest();
  b.FixParam(0, 43);
  EXPECT_FALSE(SpecKey(a) == SpecKey(b));

  // Same value on a different parameter index is also distinct.
  CompileRequest c = ArithRequest();
  c.FixParam(1, 42);
  EXPECT_FALSE(SpecKey(a) == SpecKey(c));
}

TEST(SpecKeyTest, ConfigFingerprintSeparatesKeys) {
  lift::LiftConfig flags_off;
  flags_off.flag_cache = false;
  EXPECT_FALSE(SpecKey(ArithRequest()) == SpecKey(ArithRequest(flags_off)));

  lift::LiftConfig o0;
  o0.opt_level = 0;
  EXPECT_FALSE(SpecKey(ArithRequest()) == SpecKey(ArithRequest(o0)));
  EXPECT_NE(lift::Fingerprint(lift::LiftConfig{}), lift::Fingerprint(o0));
}

TEST(SpecKeyTest, ConstMemContentsSeparateKeys) {
  const long region_a[4] = {1, 2, 3, 4};
  const long region_b[4] = {1, 2, 3, 5};
  CompileRequest a = ArithRequest();
  a.FixConstMem(0, region_a, sizeof(region_a));
  CompileRequest b = ArithRequest();
  b.FixConstMem(0, region_b, sizeof(region_b));
  CompileRequest a2 = ArithRequest();
  a2.FixConstMem(0, region_a, sizeof(region_a));
  EXPECT_FALSE(SpecKey(a) == SpecKey(b));
  EXPECT_TRUE(SpecKey(a) == SpecKey(a2));
}

TEST(CompileServiceTest, HitMissSemantics) {
  CompileService service;
  const CompileRequest request = ArithRequest();

  auto first = service.CompileSync(request);
  ASSERT_TRUE(first.has_value()) << first.error().Format();
  auto second = service.CompileSync(request);
  ASSERT_TRUE(second.has_value()) << second.error().Format();
  EXPECT_EQ(*first, *second);

  const CacheStats stats = service.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(service.size(), 1u);
  EXPECT_GT(stats.stage_total.total_ns(), 0u);

  auto fn = reinterpret_cast<IntFn2>(*first);
  for (long a = -3; a <= 3; ++a) {
    EXPECT_EQ(fn(a, 17), c_arith_mix(a, 17));
  }
}

TEST(CompileServiceTest, DistinctSpecializationsCompileSeparately) {
  CompileService service;
  CompileRequest fixed5 = ArithRequest();
  fixed5.FixParam(0, 5);
  CompileRequest fixed9 = ArithRequest();
  fixed9.FixParam(0, 9);

  auto entry5 = service.CompileSync(fixed5);
  auto entry9 = service.CompileSync(fixed9);
  ASSERT_TRUE(entry5.has_value()) << entry5.error().Format();
  ASSERT_TRUE(entry9.has_value()) << entry9.error().Format();
  EXPECT_NE(*entry5, *entry9);
  EXPECT_EQ(service.stats().misses, 2u);
  EXPECT_EQ(service.stats().compiles, 2u);

  // The fixed parameter wins over whatever the caller passes.
  auto fn5 = reinterpret_cast<IntFn2>(*entry5);
  auto fn9 = reinterpret_cast<IntFn2>(*entry9);
  EXPECT_EQ(fn5(1234, 7), c_arith_mix(5, 7));
  EXPECT_EQ(fn9(1234, 7), c_arith_mix(9, 7));
}

TEST(CompileServiceTest, DistinctLiftConfigsCompileSeparately) {
  CompileService service;
  lift::LiftConfig o0;
  o0.opt_level = 0;
  auto opt = service.CompileSync(ArithRequest());
  auto unopt = service.CompileSync(ArithRequest(o0));
  ASSERT_TRUE(opt.has_value()) << opt.error().Format();
  ASSERT_TRUE(unopt.has_value()) << unopt.error().Format();
  EXPECT_NE(*opt, *unopt);
  EXPECT_EQ(service.stats().misses, 2u);

  auto fn = reinterpret_cast<IntFn2>(*unopt);
  EXPECT_EQ(fn(21, 4), c_arith_mix(21, 4));
}

TEST(CompileServiceTest, ConstMemSpecializationFoldsContents) {
  CompileService service;
  const long data_a[4] = {10, 20, 30, 40};
  const long data_b[4] = {1, 1, 1, 1};

  CompileRequest sum_a(reinterpret_cast<std::uint64_t>(&c_array_sum),
                       lift::Signature::Ints(2));
  sum_a.FixConstMem(0, data_a, sizeof(data_a)).FixParam(1, 4);
  CompileRequest sum_b(reinterpret_cast<std::uint64_t>(&c_array_sum),
                       lift::Signature::Ints(2));
  sum_b.FixConstMem(0, data_b, sizeof(data_b)).FixParam(1, 4);

  auto entry_a = service.CompileSync(sum_a);
  auto entry_b = service.CompileSync(sum_b);
  ASSERT_TRUE(entry_a.has_value()) << entry_a.error().Format();
  ASSERT_TRUE(entry_b.has_value()) << entry_b.error().Format();
  EXPECT_EQ(service.stats().compiles, 2u);

  auto fn_a = reinterpret_cast<IntFn2>(*entry_a);
  auto fn_b = reinterpret_cast<IntFn2>(*entry_b);
  EXPECT_EQ(fn_a(0, 0), 100);  // 10+20+30+40, args ignored
  EXPECT_EQ(fn_b(0, 0), 4);
}

TEST(CompileServiceTest, AsyncRequestServesGenericUntilInstalled) {
  CompileService service;
  const CompileRequest request = ArithRequest();
  FunctionHandle handle = service.Request(request);
  ASSERT_TRUE(handle.valid());

  // Whatever the compile state, the target is callable right now: it is the
  // original function until the specialized entry is swapped in.
  const std::uint64_t immediate = handle.target();
  if (!handle.specialized()) {
    EXPECT_EQ(immediate, request.address);
  }
  auto early = reinterpret_cast<IntFn2>(immediate);
  EXPECT_EQ(early(3, 4), c_arith_mix(3, 4));

  const std::uint64_t installed = handle.wait();
  EXPECT_EQ(handle.state(), FunctionHandle::State::kSpecialized);
  EXPECT_NE(installed, request.address);
  EXPECT_EQ(installed, handle.target());
  auto fn = reinterpret_cast<IntFn2>(installed);
  EXPECT_EQ(fn(3, 4), c_arith_mix(3, 4));
  EXPECT_GT(handle.times().total_ns(), 0u);
}

TEST(CompileServiceTest, ConcurrentRequestersCompileExactlyOnce) {
  CompileService service({/*workers=*/2, /*capacity=*/256});
  CompileRequest request = ArithRequest();
  request.FixParam(0, 77);

  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::uint64_t entries[kThreads] = {};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      FunctionHandle handle = service.Request(request);
      entries[t] = handle.wait();
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true);
  for (auto& t : pool) t.join();

  const CacheStats stats = service.stats();
  EXPECT_EQ(stats.compiles, 1u) << "N concurrent requests must coalesce";
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, static_cast<std::uint64_t>(kThreads - 1));
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(entries[t], entries[0]);
  }
  auto fn = reinterpret_cast<IntFn2>(entries[0]);
  EXPECT_EQ(fn(0, 6), c_arith_mix(77, 6));
}

TEST(CompileServiceTest, ShardCountersSumToServiceTotals) {
  // The sharded table mirrors per-shard activity into the obs registry
  // (cache.shard_NN.hits / .entries); the shard view must add up to the
  // service's own counters. Registry counters are process-cumulative, so
  // measure the delta across this test's work.
  obs::Registry& registry = obs::Registry::Default();
  const auto shard_hit_values = [&registry] {
    std::vector<std::uint64_t> values(16);
    for (int s = 0; s < 16; ++s) {
      char name[32];
      std::snprintf(name, sizeof(name), "cache.shard_%02d.hits", s);
      values[static_cast<std::size_t>(s)] = registry.Value(name);
    }
    return values;
  };
  const std::vector<std::uint64_t> hits_before = shard_hit_values();

  CompileService service({/*workers=*/2, /*capacity=*/256});
  constexpr std::uint64_t kKeys = 24;  // spread over several shards
  for (std::uint64_t v = 0; v < kKeys; ++v) {
    CompileRequest request = ArithRequest();
    request.FixParam(0, v);
    ASSERT_TRUE(service.CompileSync(request).has_value());
  }
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t v = 0; v < kKeys; ++v) {
      CompileRequest request = ArithRequest();
      request.FixParam(0, v);
      (void)service.Request(request);
    }
  }

  const CacheStats stats = service.stats();
  EXPECT_EQ(stats.misses, kKeys);
  EXPECT_EQ(stats.hits, 3 * kKeys);
  const std::vector<std::uint64_t> hits_after = shard_hit_values();
  std::uint64_t delta_sum = 0;
  int shards_hit = 0;
  for (std::size_t s = 0; s < hits_after.size(); ++s) {
    const std::uint64_t delta = hits_after[s] - hits_before[s];
    delta_sum += delta;
    shards_hit += delta > 0 ? 1 : 0;
  }
  EXPECT_EQ(delta_sum, stats.hits);
  // 24 distinct keys cannot all hash to one bucket: the work must visibly
  // spread over multiple shard mutexes.
  EXPECT_GE(shards_hit, 2);
}

TEST(CompileServiceTest, LruEvictionBoundsTheTable) {
  CompileService service({/*workers=*/1, /*capacity=*/2});
  for (std::uint64_t v = 0; v < 3; ++v) {
    CompileRequest request = ArithRequest();
    request.FixParam(0, v);
    auto entry = service.CompileSync(request);
    ASSERT_TRUE(entry.has_value()) << entry.error().Format();
  }
  EXPECT_LE(service.size(), 2u);
  EXPECT_GE(service.stats().evictions, 1u);

  // The evicted (least recently used) specialization recompiles on re-request.
  CompileRequest oldest = ArithRequest();
  oldest.FixParam(0, 0);
  ASSERT_TRUE(service.CompileSync(oldest).has_value());
  EXPECT_EQ(service.stats().compiles, 4u);
}

TEST(CompileServiceTest, FailedCompileFallsBackToGeneric) {
  // Data bytes are not a liftable function; the lift stage fails and the
  // handle keeps serving the original address.
  alignas(16) static const std::uint8_t garbage[16] = {0x06, 0x06, 0x06};
  CompileService service;
  CompileRequest request(reinterpret_cast<std::uint64_t>(garbage),
                         lift::Signature::Ints(2));
  FunctionHandle handle = service.Request(request);
  const std::uint64_t target = handle.wait();
  EXPECT_EQ(handle.state(), FunctionHandle::State::kFailed);
  EXPECT_EQ(target, request.address);
  EXPECT_FALSE(handle.error().ok());
  EXPECT_EQ(service.stats().failures, 1u);

  auto sync = service.CompileSync(request);
  EXPECT_FALSE(sync.has_value());
}

TEST(CompileServiceTest, ClearCountsEvictionsAndForcesRecompiles) {
  CompileService service;
  ASSERT_TRUE(service.CompileSync(ArithRequest()).has_value());
  EXPECT_EQ(service.size(), 1u);
  service.Clear();
  EXPECT_EQ(service.size(), 0u);
  EXPECT_EQ(service.stats().evictions, 1u);
  ASSERT_TRUE(service.CompileSync(ArithRequest()).has_value());
  EXPECT_EQ(service.stats().compiles, 2u);
}

// --- C API ------------------------------------------------------------------

TEST(CacheCApiTest, RoundTrip) {
  dbll_cache* cache = dbll_cache_new(1, 16);
  dbll_cache_req* req = dbll_cache_request(
      cache, reinterpret_cast<void*>(&c_arith_mix), 2, /*returns_value=*/1);
  dbll_cache_req_setpar(req, 1, 33);  // 1-based, like dbrew_setpar

  auto immediate = reinterpret_cast<IntFn2>(dbll_cache_call_target(req));
  EXPECT_EQ(immediate(33, 2), c_arith_mix(33, 2));  // generic or specialized

  auto fn = reinterpret_cast<IntFn2>(dbll_cache_wait(req));
  EXPECT_EQ(dbll_cache_ready(req), 1);
  EXPECT_STREQ(dbll_cache_req_error(req), "");
  EXPECT_EQ(fn(0, 2), c_arith_mix(33, 2));

  // A second identical request is a hit.
  dbll_cache_req* again = dbll_cache_request(
      cache, reinterpret_cast<void*>(&c_arith_mix), 2, 1);
  dbll_cache_req_setpar(again, 1, 33);
  EXPECT_EQ(dbll_cache_wait(again), reinterpret_cast<void*>(fn));
  EXPECT_EQ(dbll_cache_stat_misses(cache), 1u);
  EXPECT_EQ(dbll_cache_stat_hits(cache), 1u);
  EXPECT_EQ(dbll_cache_stat_compiles(cache), 1u);
  EXPECT_GT(dbll_cache_stat_compile_ns(cache), 0u);

  dbll_cache_req_free(req);
  dbll_cache_req_free(again);
  dbll_cache_free(cache);
}

TEST(CacheCApiTest, DeprecatedGettersMatchTheStatsSnapshot) {
  // The old per-counter getters are documented as thin wrappers over
  // dbll_cache_get_stats; after real activity every pair must agree.
  dbll_cache* cache = dbll_cache_new(1, 16);
  dbll_cache_req* req = dbll_cache_request(
      cache, reinterpret_cast<void*>(&c_arith_mix), 2, /*returns_value=*/1);
  dbll_cache_req_setpar(req, 1, 21);
  ASSERT_NE(dbll_cache_wait(req), nullptr);
  dbll_cache_req* again = dbll_cache_request(
      cache, reinterpret_cast<void*>(&c_arith_mix), 2, 1);
  dbll_cache_req_setpar(again, 1, 21);
  ASSERT_NE(dbll_cache_wait(again), nullptr);
  dbll_cache_wait_idle(cache);

  dbll_cache_stats_v1 stats;
  stats.struct_size = sizeof(stats);
  ASSERT_EQ(dbll_cache_get_stats(cache, &stats), 0);
  EXPECT_EQ(dbll_cache_stat_hits(cache), stats.hits + stats.coalesced);
  EXPECT_EQ(dbll_cache_stat_misses(cache), stats.misses);
  EXPECT_EQ(dbll_cache_stat_compiles(cache), stats.compiles);
  EXPECT_EQ(dbll_cache_stat_evictions(cache), stats.evictions);
  EXPECT_EQ(dbll_cache_stat_baseline_installs(cache), stats.baseline_installs);
  EXPECT_EQ(dbll_cache_stat_interim_installs(cache), stats.interim_installs);
  EXPECT_EQ(dbll_cache_stat_promotions(cache), stats.promotions);
  EXPECT_EQ(dbll_cache_stat_deopts(cache), stats.deopts);
  EXPECT_EQ(dbll_cache_stat_tier0a_ns(cache), stats.tier0a_ns);
  EXPECT_EQ(dbll_cache_stat_compile_ns(cache), stats.compile_ns);
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GT(stats.compile_ns, 0u);

  dbll_cache_req_free(req);
  dbll_cache_req_free(again);
  dbll_cache_free(cache);
}

TEST(CacheCApiTest, GetStatsHonorsTheCallerStructSize) {
  dbll_cache* cache = dbll_cache_new(1, 16);

  // Too small to even carry struct_size: rejected.
  dbll_cache_stats_v1 bogus;
  bogus.struct_size = 4;
  EXPECT_EQ(dbll_cache_get_stats(cache, &bogus), -1);
  EXPECT_EQ(dbll_cache_get_stats(cache, nullptr), -1);

  // An "older caller" whose struct ends after `misses`: only the prefix is
  // written; the bytes past the caller's declared size stay untouched.
  struct OldStats {
    uint64_t struct_size;
    uint64_t hits, coalesced, misses;
    uint64_t canary;
  } old_stats;
  old_stats.canary = 0xfeedfacefeedfaceULL;
  old_stats.struct_size = offsetof(OldStats, canary);
  ASSERT_EQ(dbll_cache_get_stats(
                cache, reinterpret_cast<dbll_cache_stats_v1*>(&old_stats)),
            0);
  EXPECT_EQ(old_stats.canary, 0xfeedfacefeedfaceULL);
  EXPECT_EQ(old_stats.hits, 0u);

  // A "newer caller" declaring more than the library knows: the unknown tail
  // is zeroed so it reads as "not supported here", never as garbage.
  struct BigStats {
    dbll_cache_stats_v1 v1;
    uint64_t future_field;
  } big;
  std::memset(&big, 0xab, sizeof(big));
  big.v1.struct_size = sizeof(big);
  ASSERT_EQ(dbll_cache_get_stats(cache, &big.v1), 0);
  EXPECT_EQ(big.future_field, 0u);

  dbll_cache_free(cache);
}

TEST(CacheCApiTest, ConfigureAppliesMaskedFieldsAndRejectsConstructionOnly) {
  dbll_cache_options_v1 opts;
  std::memset(&opts, 0, sizeof(opts));
  opts.struct_size = sizeof(opts);
  opts.apply_mask = DBLL_CACHE_APPLY_WORKERS | DBLL_CACHE_APPLY_CAPACITY |
                    DBLL_CACHE_APPLY_DEADLINE;
  opts.workers = 1;
  opts.capacity = 8;
  opts.deadline_ms = 1234;
  dbll_cache* cache = dbll_cache_new_v1(&opts);
  ASSERT_NE(cache, nullptr);

  // Workers/capacity are construction-only: configure() must refuse the
  // whole call (nothing partially applied), not silently drop the bits.
  EXPECT_EQ(dbll_cache_configure(cache, &opts), -1);

  // Reconfiguring runtime knobs succeeds...
  std::memset(&opts, 0, sizeof(opts));
  opts.struct_size = sizeof(opts);
  opts.apply_mask = DBLL_CACHE_APPLY_DEADLINE | DBLL_CACHE_APPLY_TIERING;
  opts.deadline_ms = 500;
  opts.tiering_enabled = 1;
  opts.tiering_hot_threshold = 3;
  EXPECT_EQ(dbll_cache_configure(cache, &opts), 0);

  // ...an unmasked field is never read (a garbage pointer proves it)...
  std::memset(&opts, 0, sizeof(opts));
  opts.struct_size = sizeof(opts);
  opts.apply_mask = DBLL_CACHE_APPLY_DEADLINE;
  opts.deadline_ms = 250;
  opts.persist_dir = reinterpret_cast<const char*>(0x1);  // would crash if read
  EXPECT_EQ(dbll_cache_configure(cache, &opts), 0);

  // ...and basic argument errors are rejected.
  EXPECT_EQ(dbll_cache_configure(cache, nullptr), -1);
  EXPECT_EQ(dbll_cache_configure(nullptr, &opts), -1);
  opts.struct_size = 4;  // cannot even hold the mask
  EXPECT_EQ(dbll_cache_configure(cache, &opts), -1);

  // An empty persist dir is rejected with a visible cause (the documented
  // contract of the old setter, preserved by the consolidated path).
  std::memset(&opts, 0, sizeof(opts));
  opts.struct_size = sizeof(opts);
  opts.apply_mask = DBLL_CACHE_APPLY_PERSIST;
  opts.persist_dir = "";
  EXPECT_EQ(dbll_cache_configure(cache, &opts), -1);
  EXPECT_STRNE(dbll_cache_last_error(cache), "");

  dbll_cache_free(cache);
}

TEST(CacheCApiTest, NewV1NullOptionsMatchesDefaults) {
  dbll_cache* cache = dbll_cache_new_v1(nullptr);
  ASSERT_NE(cache, nullptr);
  dbll_cache_req* req = dbll_cache_request(
      cache, reinterpret_cast<void*>(&c_arith_mix), 2, /*returns_value=*/1);
  dbll_cache_req_setpar(req, 1, 9);
  auto fn = reinterpret_cast<IntFn2>(dbll_cache_wait(req));
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn(0, 4), c_arith_mix(9, 4));
  dbll_cache_req_free(req);
  dbll_cache_free(cache);
}

}  // namespace
}  // namespace dbll::runtime
