// dbll tests -- encoder: synthesized-operand sweeps and re-encode checks.
//
// The decoder vector table covers decode->encode round trips; these tests
// sweep synthesized instructions (registers x widths x addressing forms)
// through encode->decode to pin the ModRM/SIB/REX logic.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "dbll/x86/decoder.h"
#include "dbll/x86/encoder.h"
#include "dbll/x86/printer.h"

namespace dbll::x86 {
namespace {

Expected<Instr> RoundTrip(const Instr& instr, std::uint64_t address = 0x1000) {
  std::uint8_t buffer[Encoder::kMaxLength];
  DBLL_TRY(std::size_t length, Encoder::Encode(instr, buffer, address));
  return Decoder::DecodeOne({buffer, length}, address);
}

Instr MakeBinary(Mnemonic m, Operand dst, Operand src) {
  Instr instr;
  instr.mnemonic = m;
  instr.op_count = 2;
  instr.ops[0] = dst;
  instr.ops[1] = src;
  return instr;
}

// --- Register-register ALU sweep over all 16x16 registers -------------------

class RegRegSweep
    : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RegRegSweep, EncodesAndDecodesBack) {
  const auto [dst_index, src_index, size_sel] = GetParam();
  const std::uint8_t sizes[] = {1, 2, 4, 8};
  const std::uint8_t size = sizes[size_sel];
  const Instr instr = MakeBinary(
      Mnemonic::kAdd,
      Operand::RegOp(Gp(static_cast<std::uint8_t>(dst_index)), size),
      Operand::RegOp(Gp(static_cast<std::uint8_t>(src_index)), size));
  auto back = RoundTrip(instr);
  ASSERT_TRUE(back.has_value()) << back.error().Format();
  EXPECT_EQ(PrintInstr(*back), PrintInstr(instr));
}

INSTANTIATE_TEST_SUITE_P(AllRegisters, RegRegSweep,
                         testing::Combine(testing::Range(0, 16),
                                          testing::Range(0, 16),
                                          testing::Range(0, 4)));

// --- Memory addressing form sweep -------------------------------------------

struct MemForm {
  const char* name;
  MemOperand mem;
};

const MemForm kMemForms[] = {
    {"base", {kRbx, kNoReg, 1, 0, Segment::kNone}},
    {"base_disp8", {kRbx, kNoReg, 1, 0x10, Segment::kNone}},
    {"base_disp32", {kRbx, kNoReg, 1, 0x12345, Segment::kNone}},
    {"base_negdisp", {kRbx, kNoReg, 1, -0x20, Segment::kNone}},
    {"rsp_base", {kRsp, kNoReg, 1, 8, Segment::kNone}},
    {"rbp_base", {kRbp, kNoReg, 1, 0, Segment::kNone}},
    {"r12_base", {kR12, kNoReg, 1, 0, Segment::kNone}},
    {"r13_base", {kR13, kNoReg, 1, 0, Segment::kNone}},
    {"base_index", {kRbx, kRcx, 1, 0, Segment::kNone}},
    {"base_index2", {kRbx, kRcx, 2, 0, Segment::kNone}},
    {"base_index4_disp", {kRsi, kRax, 4, -8, Segment::kNone}},
    {"base_index8", {kRdi, kRdx, 8, 0x40, Segment::kNone}},
    {"index_only", {kNoReg, kRcx, 8, 0x10, Segment::kNone}},
    {"abs32", {kNoReg, kNoReg, 1, 0x1234, Segment::kNone}},
    {"r8_index", {kRax, kR8, 4, 4, Segment::kNone}},
    {"r15_base_r14_index", {kR15, kR14, 2, -4, Segment::kNone}},
    {"fs_abs", {kNoReg, kNoReg, 1, 0x28, Segment::kFs}},
    {"gs_base", {kRbx, kNoReg, 1, 0, Segment::kGs}},
};

class MemFormSweep : public testing::TestWithParam<MemForm> {};

TEST_P(MemFormSweep, LoadRoundTrips) {
  const Instr instr =
      MakeBinary(Mnemonic::kMov, Operand::RegOp(kRax, 8),
                 Operand::MemOp(GetParam().mem, 8));
  auto back = RoundTrip(instr);
  ASSERT_TRUE(back.has_value()) << back.error().Format();
  EXPECT_EQ(PrintInstr(*back), PrintInstr(instr));
}

TEST_P(MemFormSweep, StoreRoundTrips) {
  const Instr instr =
      MakeBinary(Mnemonic::kMov, Operand::MemOp(GetParam().mem, 4),
                 Operand::RegOp(kRdx, 4));
  auto back = RoundTrip(instr);
  ASSERT_TRUE(back.has_value()) << back.error().Format();
  EXPECT_EQ(PrintInstr(*back), PrintInstr(instr));
}

TEST_P(MemFormSweep, SseLoadRoundTrips) {
  const Instr instr =
      MakeBinary(Mnemonic::kMovsdX, Operand::RegOp(Xmm(3), 16),
                 Operand::MemOp(GetParam().mem, 8));
  auto back = RoundTrip(instr);
  ASSERT_TRUE(back.has_value()) << back.error().Format();
  EXPECT_EQ(PrintInstr(*back), PrintInstr(instr));
}

INSTANTIATE_TEST_SUITE_P(Forms, MemFormSweep, testing::ValuesIn(kMemForms),
                         [](const testing::TestParamInfo<MemForm>& info) {
                           return info.param.name;
                         });

// --- Immediate width selection ----------------------------------------------

TEST(EncoderTest, ChoosesImm8WhenPossible) {
  const Instr instr = MakeBinary(Mnemonic::kAdd, Operand::RegOp(kRax, 8),
                                 Operand::ImmOp(5, 1));
  std::uint8_t buffer[Encoder::kMaxLength];
  auto length = Encoder::Encode(instr, buffer, 0);
  ASSERT_TRUE(length.has_value());
  EXPECT_EQ(*length, 4u);  // REX 83 /0 imm8
  EXPECT_EQ(buffer[1], 0x83);
}

TEST(EncoderTest, ChoosesImm32WhenNeeded) {
  const Instr instr = MakeBinary(Mnemonic::kAdd, Operand::RegOp(kRax, 8),
                                 Operand::ImmOp(0x1234, 4));
  std::uint8_t buffer[Encoder::kMaxLength];
  auto length = Encoder::Encode(instr, buffer, 0);
  ASSERT_TRUE(length.has_value());
  EXPECT_EQ(buffer[1], 0x81);
}

TEST(EncoderTest, MovAbs64) {
  const Instr instr = MakeBinary(Mnemonic::kMov, Operand::RegOp(kR9, 8),
                                 Operand::ImmOp(0x1122334455667788LL, 8));
  auto back = RoundTrip(instr);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ops[1].imm, 0x1122334455667788LL);
  EXPECT_EQ(back->ops[0].reg, kR9);
}

TEST(EncoderTest, Mov64SignExtendedImm32) {
  const Instr instr = MakeBinary(Mnemonic::kMov, Operand::RegOp(kRax, 8),
                                 Operand::ImmOp(-2, 8));
  std::uint8_t buffer[Encoder::kMaxLength];
  auto length = Encoder::Encode(instr, buffer, 0);
  ASSERT_TRUE(length.has_value());
  EXPECT_EQ(*length, 7u);  // REX C7 /0 imm32, not the 10-byte movabs
  auto back = Decoder::DecodeOne({buffer, *length}, 0);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ops[1].imm, -2);
}

TEST(EncoderTest, StoreImm64DoesNotFit) {
  MemOperand mem;
  mem.base = kRax;
  const Instr instr = MakeBinary(Mnemonic::kMov, Operand::MemOp(mem, 8),
                                 Operand::ImmOp(0x1122334455667788LL, 8));
  std::uint8_t buffer[Encoder::kMaxLength];
  auto length = Encoder::Encode(instr, buffer, 0);
  EXPECT_FALSE(length.has_value());
}

// --- Branches ---------------------------------------------------------------

TEST(EncoderTest, JmpRel32Patched) {
  Instr instr;
  instr.mnemonic = Mnemonic::kJmp;
  instr.target = 0x2000;
  std::uint8_t buffer[Encoder::kMaxLength];
  auto length = Encoder::Encode(instr, buffer, 0x1000);
  ASSERT_TRUE(length.has_value());
  auto back = Decoder::DecodeOne({buffer, *length}, 0x1000);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->target, 0x2000u);
}

TEST(EncoderTest, JccAllConditions) {
  for (int cc = 0; cc < 16; ++cc) {
    Instr instr;
    instr.mnemonic = Mnemonic::kJcc;
    instr.cond = static_cast<Cond>(cc);
    instr.target = 0x1234;
    std::uint8_t buffer[Encoder::kMaxLength];
    auto length = Encoder::Encode(instr, buffer, 0x1000);
    ASSERT_TRUE(length.has_value()) << cc;
    auto back = Decoder::DecodeOne({buffer, *length}, 0x1000);
    ASSERT_TRUE(back.has_value()) << cc;
    EXPECT_EQ(back->cond, instr.cond);
    EXPECT_EQ(back->target, 0x1234u);
  }
}

TEST(EncoderTest, RipRelativePatched) {
  // movsd xmm0, [rip -> 0x5000] encoded at 0x1000.
  Instr instr;
  instr.mnemonic = Mnemonic::kMovsdX;
  instr.op_count = 2;
  instr.ops[0] = Operand::RegOp(Xmm(0), 16);
  MemOperand mem;
  mem.base = kRip;
  instr.ops[1] = Operand::MemOp(mem, 8);
  instr.target = 0x5000;
  std::uint8_t buffer[Encoder::kMaxLength];
  auto length = Encoder::Encode(instr, buffer, 0x1000);
  ASSERT_TRUE(length.has_value());
  auto back = Decoder::DecodeOne({buffer, *length}, 0x1000);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->target, 0x5000u);
}

TEST(EncoderTest, RipOutOfRangeFails) {
  Instr instr;
  instr.mnemonic = Mnemonic::kMovsdX;
  instr.op_count = 2;
  instr.ops[0] = Operand::RegOp(Xmm(0), 16);
  MemOperand mem;
  mem.base = kRip;
  instr.ops[1] = Operand::MemOp(mem, 8);
  instr.target = 0x7fff00000000ull;
  std::uint8_t buffer[Encoder::kMaxLength];
  auto length = Encoder::Encode(instr, buffer, 0x1000);
  EXPECT_FALSE(length.has_value());
}

// --- Error paths ------------------------------------------------------------

TEST(EncoderTest, HighByteWithRexFails) {
  // mov ah, r9b is unencodable: ah forbids REX, r9b requires it.
  const Instr instr =
      MakeBinary(Mnemonic::kMov, Operand::RegOp(kRax, 1, /*high8=*/true),
                 Operand::RegOp(Gp(9), 1));
  std::uint8_t buffer[Encoder::kMaxLength];
  auto length = Encoder::Encode(instr, buffer, 0);
  EXPECT_FALSE(length.has_value());
}

TEST(EncoderTest, BufferTooSmall) {
  const Instr instr = MakeBinary(Mnemonic::kAdd, Operand::RegOp(kRax, 8),
                                 Operand::RegOp(kRbx, 8));
  std::uint8_t buffer[2];
  auto length = Encoder::Encode(instr, {buffer, 2}, 0);
  EXPECT_FALSE(length.has_value());
  EXPECT_EQ(length.error().kind(), ErrorKind::kResourceLimit);
}

TEST(EncoderTest, RspIndexRejected) {
  MemOperand mem;
  mem.base = kRax;
  mem.index = kRsp;
  const Instr instr = MakeBinary(Mnemonic::kMov, Operand::RegOp(kRax, 8),
                                 Operand::MemOp(mem, 8));
  std::uint8_t buffer[Encoder::kMaxLength];
  auto length = Encoder::Encode(instr, buffer, 0);
  EXPECT_FALSE(length.has_value());
}

}  // namespace
}  // namespace dbll::x86
