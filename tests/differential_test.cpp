// dbll tests -- differential fuzzing: random straight-line instruction
// sequences are synthesized with the encoder, executed natively, and then
// compared against (a) the lifted + O3 + JIT version and (b) the DBrew
// rewrite (identity and with a fixed first parameter).
//
// The generator only emits instructions whose architectural results are
// fully defined for the given inputs (no divides, conditional operations
// only while the flags are defined), over the caller-saved register set,
// plus loads/stores into a private scratch buffer.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "dbll/dbrew/rewriter.h"
#include "dbll/lift/lifter.h"
#include "dbll/support/code_buffer.h"
#include "dbll/x86/cfg.h"
#include "dbll/x86/encoder.h"
#include "dbll/x86/printer.h"

namespace dbll {
namespace {

using x86::Cond;
using x86::Instr;
using x86::MemOperand;
using x86::Mnemonic;
using x86::Operand;
using x86::Reg;

/// Scratch memory the generated code may read and write ([r11 + 0..184]).
alignas(16) thread_local std::uint8_t g_scratch[256];

constexpr Reg kGpMenu[] = {x86::kRax, x86::kRcx, x86::kRdx,
                           x86::kRsi, x86::kRdi, x86::kR8,
                           x86::kR9,  x86::kR10};

class Generator {
 public:
  explicit Generator(std::uint64_t seed) : rng_(seed) {}

  /// Builds a random function body; returns the instruction list (without
  /// the final ret).
  std::vector<Instr> Build(int length) {
    std::vector<Instr> out;
    // r11 = scratch base (the only absolute constant in the stream).
    Instr lead;
    lead.mnemonic = Mnemonic::kMov;
    lead.op_count = 2;
    lead.ops[0] = Operand::RegOp(x86::kR11, 8);
    lead.ops[1] = Operand::ImmOp(
        static_cast<std::int64_t>(reinterpret_cast<std::uint64_t>(g_scratch)),
        8);
    out.push_back(lead);
    // Deterministically initialize every register in the menu from the four
    // arguments so the generated code never reads native garbage (which the
    // lifted version would model as undef).
    const Reg args[] = {x86::kRdi, x86::kRsi, x86::kRdx, x86::kRcx};
    const Reg inits[] = {x86::kRax, x86::kR8, x86::kR9, x86::kR10};
    for (int i = 0; i < 4; ++i) {
      Instr init;
      init.mnemonic = Mnemonic::kMov;
      init.op_count = 2;
      init.ops[0] = Operand::RegOp(inits[i], 8);
      init.ops[1] = Operand::RegOp(args[i], 8);
      out.push_back(init);
    }
    for (std::uint8_t i = 0; i < 8; ++i) {
      Instr init;
      init.mnemonic = Mnemonic::kMovq;
      init.op_count = 2;
      init.ops[0] = Operand::RegOp(x86::Xmm(i), 16);
      init.ops[1] = Operand::RegOp(args[i % 4], 8);
      out.push_back(init);
    }
    for (int i = 0; i < length; ++i) {
      out.push_back(Next());
    }
    return out;
  }

 private:
  Reg Gp() { return kGpMenu[rng_() % (sizeof(kGpMenu) / sizeof(Reg))]; }
  Reg Xmm() { return x86::Xmm(static_cast<std::uint8_t>(rng_() % 8)); }
  std::uint8_t GpSize() {
    const std::uint8_t sizes[] = {1, 2, 4, 8};
    return sizes[rng_() % 4];
  }
  Operand ScratchMem(std::uint8_t size) {
    MemOperand mem;
    mem.base = x86::kR11;
    mem.disp = static_cast<std::int32_t>((rng_() % 20) * 8);
    return Operand::MemOp(mem, size);
  }

  Instr Binary(Mnemonic m, Operand dst, Operand src) {
    Instr instr;
    instr.mnemonic = m;
    instr.op_count = 2;
    instr.ops[0] = dst;
    instr.ops[1] = src;
    return instr;
  }

  Instr Next() {
    for (;;) {
      switch (rng_() % 23) {
        case 0: case 1: case 2: {  // ALU reg, reg
          const Mnemonic ops[] = {Mnemonic::kAdd, Mnemonic::kSub,
                                  Mnemonic::kAnd, Mnemonic::kOr,
                                  Mnemonic::kXor};
          const std::uint8_t size = GpSize();
          flags_defined_ = true;
          return Binary(ops[rng_() % 5], Operand::RegOp(Gp(), size),
                        Operand::RegOp(Gp(), size));
        }
        case 3: {  // ALU reg, imm
          const Mnemonic ops[] = {Mnemonic::kAdd, Mnemonic::kSub,
                                  Mnemonic::kAnd, Mnemonic::kXor,
                                  Mnemonic::kCmp};
          const std::uint8_t size = GpSize();
          flags_defined_ = true;
          return Binary(
              ops[rng_() % 5], Operand::RegOp(Gp(), size),
              Operand::ImmOp(static_cast<std::int32_t>(rng_()), size == 1 ? 1 : 4));
        }
        case 4: {  // mov forms
          const std::uint8_t size = GpSize();
          switch (rng_() % 3) {
            case 0:
              return Binary(Mnemonic::kMov, Operand::RegOp(Gp(), size),
                            Operand::RegOp(Gp(), size));
            case 1:
              return Binary(Mnemonic::kMov, Operand::RegOp(Gp(), size),
                            ScratchMem(size));
            default:
              return Binary(Mnemonic::kMov, ScratchMem(size),
                            Operand::RegOp(Gp(), size));
          }
        }
        case 5: {  // movzx/movsx
          const std::uint8_t narrow = rng_() % 2 ? 1 : 2;
          return Binary(rng_() % 2 ? Mnemonic::kMovzx : Mnemonic::kMovsx,
                        Operand::RegOp(Gp(), rng_() % 2 ? 4 : 8),
                        Operand::RegOp(Gp(), narrow));
        }
        case 6: {  // shift by immediate (incl. counts beyond narrow widths)
          const Mnemonic ops[] = {Mnemonic::kShl, Mnemonic::kShr,
                                  Mnemonic::kSar, Mnemonic::kRol,
                                  Mnemonic::kRor};
          const Mnemonic m = ops[rng_() % 5];
          const std::uint8_t size = GpSize();
          flags_defined_ = false;  // OF modeled as undef
          // x86 masks the count to 5 bits before the width check, so 8/16
          // bit shifts by up to 31 are architecturally defined.
          const int max_count =
              (m == Mnemonic::kRol || m == Mnemonic::kRor)
                  ? size * 8 - 1
                  : (size == 8 ? 63 : 31);
          return Binary(m, Operand::RegOp(Gp(), size),
                        Operand::ImmOp(1 + static_cast<int>(rng_() % max_count), 1));
        }
        case 21: {  // shift by cl (variable count, zero included)
          const Mnemonic ops[] = {Mnemonic::kShl, Mnemonic::kShr,
                                  Mnemonic::kSar};
          const std::uint8_t size = GpSize();
          flags_defined_ = false;
          return Binary(ops[rng_() % 3], Operand::RegOp(Gp(), size),
                        Operand::RegOp(x86::kRcx, 1));
        }
        case 7: {  // unary
          const Mnemonic ops[] = {Mnemonic::kNot, Mnemonic::kNeg,
                                  Mnemonic::kInc, Mnemonic::kDec,
                                  Mnemonic::kBswap};
          const Mnemonic m = ops[rng_() % 5];
          Instr instr;
          instr.mnemonic = m;
          instr.op_count = 1;
          instr.ops[0] = Operand::RegOp(
              Gp(), m == Mnemonic::kBswap ? (rng_() % 2 ? 4 : 8) : GpSize());
          if (m == Mnemonic::kNeg) flags_defined_ = true;
          if (m == Mnemonic::kInc || m == Mnemonic::kDec ||
              m == Mnemonic::kBswap) {
            // inc/dec leave CF stale; bswap leaves flags alone -- safe
            // either way, flag-definedness unchanged.
          }
          return instr;
        }
        case 8: {  // imul
          const std::uint8_t size = rng_() % 2 ? 4 : 8;
          flags_defined_ = false;  // ZF/SF undefined after imul
          if (rng_() % 2) {
            return Binary(Mnemonic::kImul, Operand::RegOp(Gp(), size),
                          Operand::RegOp(Gp(), size));
          }
          Instr instr;
          instr.mnemonic = Mnemonic::kImul;
          instr.op_count = 3;
          instr.ops[0] = Operand::RegOp(Gp(), size);
          instr.ops[1] = Operand::RegOp(Gp(), size);
          instr.ops[2] = Operand::ImmOp(static_cast<std::int8_t>(rng_()), 1);
          return instr;
        }
        case 9: {  // cmovcc / setcc, only on defined flags
          if (!flags_defined_) continue;
          const Cond cond = static_cast<Cond>(rng_() % 16);
          if (cond == Cond::kP || cond == Cond::kNp) continue;  // PF: skip
          if (rng_() % 2) {
            Instr instr = Binary(Mnemonic::kCmovcc,
                                 Operand::RegOp(Gp(), rng_() % 2 ? 4 : 8),
                                 Operand::RegOp(Gp(), 0));
            instr.ops[1].size = instr.ops[0].size;
            instr.cond = cond;
            return instr;
          }
          Instr instr;
          instr.mnemonic = Mnemonic::kSetcc;
          instr.cond = cond;
          instr.op_count = 1;
          instr.ops[0] = Operand::RegOp(Gp(), 1);
          return instr;
        }
        case 10: {  // test/cmp reg, reg
          const std::uint8_t size = GpSize();
          flags_defined_ = true;
          return Binary(rng_() % 2 ? Mnemonic::kTest : Mnemonic::kCmp,
                        Operand::RegOp(Gp(), size),
                        Operand::RegOp(Gp(), size));
        }
        case 11: {  // SSE scalar double arithmetic
          const Mnemonic ops[] = {Mnemonic::kAddsd, Mnemonic::kSubsd,
                                  Mnemonic::kMulsd, Mnemonic::kMinsd,
                                  Mnemonic::kMaxsd};
          return Binary(ops[rng_() % 5], Operand::RegOp(Xmm(), 16),
                        Operand::RegOp(Xmm(), 16));
        }
        case 12: {  // SSE bitwise / packed int
          const Mnemonic ops[] = {Mnemonic::kPxor,  Mnemonic::kPand,
                                  Mnemonic::kPor,   Mnemonic::kPaddb,
                                  Mnemonic::kPaddw, Mnemonic::kPaddd,
                                  Mnemonic::kPaddq, Mnemonic::kPsubd,
                                  Mnemonic::kPsubq, Mnemonic::kPminub,
                                  Mnemonic::kPmaxub, Mnemonic::kPavgb,
                                  Mnemonic::kPmullw, Mnemonic::kPmuludq,
                                  Mnemonic::kPcmpeqb, Mnemonic::kPcmpeqd,
                                  Mnemonic::kPcmpgtw, Mnemonic::kPminsw};
          return Binary(ops[rng_() % 18], Operand::RegOp(Xmm(), 16),
                        Operand::RegOp(Xmm(), 16));
        }
        case 13: {  // SSE shuffles
          switch (rng_() % 4) {
            case 0: {
              Instr instr = Binary(Mnemonic::kPshufd,
                                   Operand::RegOp(Xmm(), 16),
                                   Operand::RegOp(Xmm(), 16));
              instr.op_count = 3;
              instr.ops[2] = Operand::ImmOp(static_cast<int>(rng_() % 256), 1);
              return instr;
            }
            case 1:
              return Binary(Mnemonic::kUnpcklpd, Operand::RegOp(Xmm(), 16),
                            Operand::RegOp(Xmm(), 16));
            case 2:
              return Binary(Mnemonic::kPunpcklbw, Operand::RegOp(Xmm(), 16),
                            Operand::RegOp(Xmm(), 16));
            default:
              return Binary(Mnemonic::kPunpckhdq, Operand::RegOp(Xmm(), 16),
                            Operand::RegOp(Xmm(), 16));
          }
        }
        case 14: {  // SSE vector shift by immediate
          const Mnemonic ops[] = {Mnemonic::kPsllw, Mnemonic::kPslld,
                                  Mnemonic::kPsllq, Mnemonic::kPsrlw,
                                  Mnemonic::kPsrld, Mnemonic::kPsrlq,
                                  Mnemonic::kPsraw, Mnemonic::kPsrad,
                                  Mnemonic::kPslldq, Mnemonic::kPsrldq};
          return Binary(ops[rng_() % 10], Operand::RegOp(Xmm(), 16),
                        Operand::ImmOp(static_cast<int>(rng_() % 70), 1));
        }
        case 15: {  // SSE loads/stores
          switch (rng_() % 4) {
            case 0:
              return Binary(Mnemonic::kMovsdX, Operand::RegOp(Xmm(), 16),
                            ScratchMem(8));
            case 1:
              return Binary(Mnemonic::kMovsdX, ScratchMem(8),
                            Operand::RegOp(Xmm(), 16));
            case 2: {
              MemOperand mem;
              mem.base = x86::kR11;
              mem.disp = static_cast<std::int32_t>((rng_() % 10) * 16);
              return Binary(Mnemonic::kMovdqu, Operand::RegOp(Xmm(), 16),
                            Operand::MemOp(mem, 16));
            }
            default: {
              MemOperand mem;
              mem.base = x86::kR11;
              mem.disp = static_cast<std::int32_t>((rng_() % 10) * 16);
              return Binary(Mnemonic::kMovdqu, Operand::MemOp(mem, 16),
                            Operand::RegOp(Xmm(), 16));
            }
          }
        }
        case 16: {  // GP <-> XMM transfers
          if (rng_() % 2) {
            return Binary(Mnemonic::kMovq, Operand::RegOp(Xmm(), 16),
                          Operand::RegOp(Gp(), 8));
          }
          return Binary(Mnemonic::kMovq, Operand::RegOp(Gp(), 8),
                        Operand::RegOp(Xmm(), 16));
        }
        case 17: {  // cvtsi2sd (always defined)
          return Binary(Mnemonic::kCvtsi2sd, Operand::RegOp(Xmm(), 16),
                        Operand::RegOp(Gp(), 8));
        }
        case 18: {  // pmovmskb / movmskpd
          flags_defined_ = flags_defined_;  // unchanged
          return Binary(rng_() % 2 ? Mnemonic::kPmovmskb
                                   : Mnemonic::kMovmskpd,
                        Operand::RegOp(Gp(), 4), Operand::RegOp(Xmm(), 16));
        }
        case 19: {  // lea with base+index*scale+disp
          Instr instr;
          instr.mnemonic = Mnemonic::kLea;
          instr.op_count = 2;
          instr.ops[0] = Operand::RegOp(Gp(), 8);
          MemOperand mem;
          mem.base = Gp();
          mem.index = Gp();
          if (mem.index == x86::kRsp) continue;
          const std::uint8_t scales[] = {1, 2, 4, 8};
          mem.scale = scales[rng_() % 4];
          mem.disp = static_cast<std::int32_t>(rng_() % 4096) - 2048;
          instr.ops[1] = Operand::MemOp(mem, 0);
          return instr;
        }
        case 20: {  // xchg reg, reg
          const std::uint8_t size = rng_() % 2 ? 4 : 8;
          return Binary(Mnemonic::kXchg, Operand::RegOp(Gp(), size),
                        Operand::RegOp(Gp(), size));
        }
        default: {  // shld/shrd by immediate
          const std::uint8_t size = rng_() % 2 ? 4 : 8;
          Instr instr = Binary(rng_() % 2 ? Mnemonic::kShld : Mnemonic::kShrd,
                               Operand::RegOp(Gp(), size),
                               Operand::RegOp(Gp(), size));
          instr.op_count = 3;
          instr.ops[2] =
              Operand::ImmOp(1 + static_cast<int>(rng_() % (size * 8 - 1)), 1);
          flags_defined_ = false;
          return instr;
        }
      }
    }
  }

  std::mt19937_64 rng_;
  bool flags_defined_ = false;
};

struct RunResult {
  long rax;
  double xmm0;
};

using GeneratedFn = long (*)(long, long, long, long);

RunResult Execute(std::uint64_t entry, std::uint64_t scratch_seed) {
  std::mt19937_64 rng(scratch_seed);
  for (auto& byte : g_scratch) byte = static_cast<std::uint8_t>(rng());
  RunResult result;
  // The generated code takes four integer args (rdi, rsi, rdx, rcx).
  result.rax = reinterpret_cast<GeneratedFn>(entry)(
      static_cast<long>(rng()), static_cast<long>(rng()),
      static_cast<long>(rng()), static_cast<long>(rng()));
  // Digest the scratch buffer into the comparison as well.
  long digest = 0;
  for (std::size_t i = 0; i < sizeof(g_scratch); i += 8) {
    long word;
    std::memcpy(&word, g_scratch + i, 8);
    digest = digest * 1099511628211ull + word;
  }
  result.xmm0 = static_cast<double>(digest);
  return result;
}

class DifferentialTest : public testing::TestWithParam<int> {};

TEST_P(DifferentialTest, LiftAndRewriteMatchNative) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Generator generator(seed * 7919 + 17);
  const std::vector<Instr> body = generator.Build(24);

  // Encode into an executable buffer, appending `ret`.
  auto buffer = CodeBuffer::Allocate(4096);
  ASSERT_TRUE(buffer.has_value());
  std::uint64_t at = reinterpret_cast<std::uint64_t>(buffer->data());
  std::string listing;
  for (const Instr& instr : body) {
    auto dest = buffer->Reserve(x86::Encoder::kMaxLength);
    ASSERT_TRUE(dest.has_value());
    auto len = x86::Encoder::Encode(instr, {*dest, x86::Encoder::kMaxLength}, at);
    ASSERT_TRUE(len.has_value())
        << x86::PrintInstr(instr) << ": " << len.error().Format();
    buffer->Reset(buffer->used() - (x86::Encoder::kMaxLength - *len));
    listing += "  " + x86::PrintInstr(instr) + "\n";
    at += *len;
  }
  {
    const std::uint8_t ret = 0xc3;
    ASSERT_TRUE(buffer->Append({&ret, 1}).has_value());
  }
  ASSERT_TRUE(buffer->Seal().ok());
  const std::uint64_t native_entry =
      reinterpret_cast<std::uint64_t>(buffer->data());

  const RunResult native = Execute(native_entry, seed);
  const RunResult native2 = Execute(native_entry, seed);
  ASSERT_EQ(native.rax, native2.rax) << "generated code is nondeterministic";

  // Lift + O3 + JIT.
  {
    static lift::Jit jit;
    // Bit-exact differential comparison: fast-math legally permits FP
    // divergence, so it must be off here.
    lift::LiftConfig config;
    config.fast_math = false;
    lift::Lifter lifter(config);
    auto lifted = lifter.Lift(native_entry, lift::Signature::Ints(4));
    ASSERT_TRUE(lifted.has_value())
        << "seed " << seed << "\n" << listing << lifted.error().Format();
    auto compiled = lifted->Compile(jit);
    ASSERT_TRUE(compiled.has_value())
        << "seed " << seed << "\n" << listing << compiled.error().Format();
    const RunResult got = Execute(*compiled, seed);
    EXPECT_EQ(got.rax, native.rax) << "seed " << seed << "\n" << listing;
    EXPECT_EQ(got.xmm0, native.xmm0)
        << "scratch memory diverged, seed " << seed << "\n" << listing;
  }

  // DBrew identity rewrite.
  {
    dbrew::Rewriter rewriter(native_entry);
    auto rewritten = rewriter.Rewrite();
    ASSERT_TRUE(rewritten.has_value())
        << "seed " << seed << "\n" << listing << rewritten.error().Format();
    const RunResult got = Execute(*rewritten, seed);
    EXPECT_EQ(got.rax, native.rax) << "seed " << seed << "\n" << listing;
    EXPECT_EQ(got.xmm0, native.xmm0)
        << "scratch memory diverged, seed " << seed << "\n" << listing;
  }

  // DBrew with the first parameter fixed: must equal native(fixed, ...).
  {
    dbrew::Rewriter rewriter(native_entry);
    rewriter.SetParam(0, 123456789);
    auto rewritten = rewriter.Rewrite();
    ASSERT_TRUE(rewritten.has_value())
        << "seed " << seed << "\n" << listing << rewritten.error().Format();
    // Reference: patch rdi at call time.
    std::mt19937_64 rng(seed);
    for (auto& byte : g_scratch) byte = static_cast<std::uint8_t>(rng());
    long a = static_cast<long>(rng());
    long b = static_cast<long>(rng());
    long c = static_cast<long>(rng());
    long d = static_cast<long>(rng());
    (void)a;
    const long want =
        reinterpret_cast<GeneratedFn>(native_entry)(123456789, b, c, d);
    std::mt19937_64 rng2(seed);
    for (auto& byte : g_scratch) byte = static_cast<std::uint8_t>(rng2());
    (void)rng2();  // a
    const long got = reinterpret_cast<GeneratedFn>(*rewritten)(
        0xdeadbeef, b, c, d);
    EXPECT_EQ(got, want) << "seed " << seed << "\n" << listing;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, testing::Range(0, 60));

}  // namespace
}  // namespace dbll

// --- Branchy differential fuzzing --------------------------------------------
//
// Structured conditional blocks stress the CFG builder, the lifter's Φ
// construction, and DBrew's state merging: [cmp; jcc over body; body]
// nests, with every register defined on all paths.

namespace dbll {
namespace {

class BranchyProgram {
 public:
  explicit BranchyProgram(std::uint64_t seed) : rng_(seed) {}

  /// Encodes a branchy function into the buffer; returns its entry.
  Expected<std::uint64_t> EncodeInto(CodeBuffer& buffer, std::string* listing) {
    // Init section (same as the straight-line fuzzer).
    Generator init_gen(rng_());
    std::vector<Instr> init = init_gen.Build(0);
    for (const Instr& instr : init) {
      DBLL_TRY_STATUS(Emit(buffer, instr, listing));
    }
    DBLL_TRY_STATUS(EmitBlock(buffer, /*depth=*/0, listing));
    // Epilogue: ret.
    const std::uint8_t ret = 0xc3;
    DBLL_TRY(std::uint8_t * dest, buffer.Append({&ret, 1}));
    (void)dest;
    *listing += "  ret\n";
    return reinterpret_cast<std::uint64_t>(buffer.data());
  }

 private:
  Status Emit(CodeBuffer& buffer, const Instr& instr, std::string* listing) {
    const std::uint64_t at =
        reinterpret_cast<std::uint64_t>(buffer.data()) + buffer.used();
    DBLL_TRY(std::uint8_t * dest, buffer.Reserve(x86::Encoder::kMaxLength));
    DBLL_TRY(std::size_t length,
             x86::Encoder::Encode(instr, {dest, x86::Encoder::kMaxLength}, at));
    buffer.Reset(buffer.used() - (x86::Encoder::kMaxLength - length));
    *listing += "  " + x86::PrintInstr(instr) + "\n";
    return Status::Ok();
  }

  /// Emits: cmp rA, rB; jcc L; <straight-line body>; L: <tail ops> and
  /// recursively one nested level.
  Status EmitBlock(CodeBuffer& buffer, int depth, std::string* listing) {
    const Reg regs[] = {x86::kRax, x86::kRcx, x86::kRdx, x86::kRsi,
                        x86::kRdi, x86::kR8,  x86::kR9,  x86::kR10};
    auto reg = [&] { return regs[rng_() % 8]; };

    // Flag-setting compare.
    Instr cmp;
    cmp.mnemonic = Mnemonic::kCmp;
    cmp.op_count = 2;
    cmp.ops[0] = Operand::RegOp(reg(), 8);
    cmp.ops[1] = Operand::RegOp(reg(), 8);
    DBLL_TRY_STATUS(Emit(buffer, cmp, listing));

    // Forward jcc with a placeholder target, patched after the body.
    const Cond cond = static_cast<Cond>(rng_() % 10 < 8
                                            ? (rng_() % 8 + 4) & 0xf
                                            : rng_() % 16);
    const std::uint64_t jcc_at =
        reinterpret_cast<std::uint64_t>(buffer.data()) + buffer.used();
    DBLL_TRY(std::uint8_t * jcc_bytes, buffer.Reserve(6));
    jcc_bytes[0] = 0x0f;
    jcc_bytes[1] = static_cast<std::uint8_t>(
        0x80 | static_cast<std::uint8_t>(cond));
    std::memset(jcc_bytes + 2, 0, 4);
    *listing += "  j" + std::string(x86::CondName(cond)) + " <forward>\n";

    // Body: a few straight-line ops (registers only; all already defined).
    Generator body_gen(rng_());
    // Build() emits the r11/init lead again -- harmless (idempotent), and it
    // keeps every register defined on the taken path as well.
    std::vector<Instr> body = body_gen.Build(static_cast<int>(rng_() % 6 + 2));
    for (const Instr& instr : body) {
      DBLL_TRY_STATUS(Emit(buffer, instr, listing));
    }
    if (depth < 1 && rng_() % 2 == 0) {
      DBLL_TRY_STATUS(EmitBlock(buffer, depth + 1, listing));
    }

    // Patch the jcc to land here (join point).
    const std::uint64_t here =
        reinterpret_cast<std::uint64_t>(buffer.data()) + buffer.used();
    const std::int32_t rel = static_cast<std::int32_t>(
        static_cast<std::int64_t>(here) -
        static_cast<std::int64_t>(jcc_at + 6));
    std::memcpy(reinterpret_cast<void*>(jcc_at + 2), &rel, 4);
    *listing += "<join>\n";

    // Tail ops after the join: exercise the Φ-merged state.
    Generator tail_gen(rng_());
    std::vector<Instr> tail = tail_gen.Build(static_cast<int>(rng_() % 4 + 1));
    for (const Instr& instr : tail) {
      DBLL_TRY_STATUS(Emit(buffer, instr, listing));
    }
    return Status::Ok();
  }

  std::mt19937_64 rng_;
};

class BranchyDifferentialTest : public testing::TestWithParam<int> {};

TEST_P(BranchyDifferentialTest, LiftAndRewriteMatchNative) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  auto buffer = CodeBuffer::Allocate(16384);
  ASSERT_TRUE(buffer.has_value());
  std::string listing;
  BranchyProgram program(seed * 31337 + 5);
  auto entry = program.EncodeInto(*buffer, &listing);
  ASSERT_TRUE(entry.has_value()) << entry.error().Format();
  ASSERT_TRUE(buffer->Seal().ok());

  const RunResult native = Execute(*entry, seed);

  {
    static lift::Jit jit;
    lift::LiftConfig config;
    config.fast_math = false;
    lift::Lifter lifter(config);
    auto lifted = lifter.Lift(*entry, lift::Signature::Ints(4));
    ASSERT_TRUE(lifted.has_value())
        << "seed " << seed << "\n" << listing << lifted.error().Format();
    auto compiled = lifted->Compile(jit);
    ASSERT_TRUE(compiled.has_value())
        << "seed " << seed << "\n" << listing << compiled.error().Format();
    const RunResult got = Execute(*compiled, seed);
    EXPECT_EQ(got.rax, native.rax) << "seed " << seed << "\n" << listing;
    EXPECT_EQ(got.xmm0, native.xmm0) << "seed " << seed << "\n" << listing;
  }
  {
    dbrew::Rewriter rewriter(*entry);
    auto rewritten = rewriter.Rewrite();
    ASSERT_TRUE(rewritten.has_value())
        << "seed " << seed << "\n" << listing << rewritten.error().Format();
    const RunResult got = Execute(*rewritten, seed);
    EXPECT_EQ(got.rax, native.rax) << "seed " << seed << "\n" << listing;
    EXPECT_EQ(got.xmm0, native.xmm0) << "seed " << seed << "\n" << listing;
  }
  {
    // Fixing an argument exercises specialization through the branches.
    dbrew::Rewriter rewriter(*entry);
    rewriter.SetParam(1, 777);
    auto rewritten = rewriter.Rewrite();
    ASSERT_TRUE(rewritten.has_value())
        << "seed " << seed << "\n" << listing << rewritten.error().Format();
    std::mt19937_64 rng(seed);
    for (auto& byte : g_scratch) byte = static_cast<std::uint8_t>(rng());
    long a = static_cast<long>(rng());
    (void)rng();  // b replaced by the fixed value
    long c = static_cast<long>(rng());
    long d = static_cast<long>(rng());
    const long want =
        reinterpret_cast<GeneratedFn>(*entry)(a, 777, c, d);
    std::mt19937_64 rng2(seed);
    for (auto& byte : g_scratch) byte = static_cast<std::uint8_t>(rng2());
    const long got = reinterpret_cast<GeneratedFn>(*rewritten)(
        a, 0xbadbeef, c, d);
    EXPECT_EQ(got, want) << "seed " << seed << "\n" << listing;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BranchyDifferentialTest,
                         testing::Range(100, 160));

}  // namespace
}  // namespace dbll

// --- Nested-pointer stencil specialization -----------------------------------
//
// The paper's documented IR-level limitation: "nested pointers will not be
// marked as constant" -- a FixConstMem snapshot of PtrSortedStencil used to
// leave the `groups` load opaque. The pointer-link proofs (value-range
// analysis, docs/static_analysis.md) chase the indirection, so Tier 0 now
// specializes through it. Differential check plus a mutation probe that the
// constants were truly baked.

#include <cmath>

#include "dbll/runtime/compile_service.h"
#include "dbll/stencil/stencil.h"

namespace dbll {
namespace {

TEST(PtrStencilSpecializationTest, Tier0BakesNestedPointerConstants) {
  // Mutable copies of the 4-point stencil: baking is proven by mutating them
  // after the compile and observing unchanged kernel output.
  stencil::SortedGroup groups[1] = {stencil::FourPointSortedPtr().groups[0]};
  stencil::PtrSortedStencil desc{1, groups};

  runtime::CompileService service;
  runtime::CompileRequest request(
      reinterpret_cast<std::uint64_t>(&stencil::stencil_apply_sorted_ptr),
      lift::Signature::Ints(4, lift::RetKind::kVoid));
  request.FixConstMem(0, &desc, sizeof(desc));
  request.AddConstRange(groups, sizeof(groups));
  runtime::FunctionHandle handle = service.Request(request);
  handle.wait();
  ASSERT_EQ(handle.tier(), runtime::Tier::kLlvm) << handle.error().Format();
  auto specialized = handle.as<stencil::ElementKernel>();

  // The element kernels hard-code the kMatrixSize row stride, so the grids
  // must use the default size.
  stencil::JacobiGrid reference;
  stencil::JacobiGrid specialized_grid;
  reference.RunElement(reinterpret_cast<stencil::ElementKernel>(
                           &stencil::stencil_apply_sorted_ptr),
                       &desc, 2);
  specialized_grid.RunElement(specialized, &desc, 2);
  ASSERT_TRUE(std::isfinite(reference.Checksum()));
  EXPECT_EQ(specialized_grid.MaxDifference(reference), 0.0);
  EXPECT_EQ(specialized_grid.Checksum(), reference.Checksum());

  // Wreck the live descriptor and group array: the specialized kernel must
  // keep computing with the snapshotted constants. If the nested pointer had
  // not been chased, the baked descriptor would still reference the live
  // group array and the zeroed factor would change the result.
  groups[0].factor = 0.0;
  groups[0].point_count = 0;
  desc.group_count = 0;
  desc.groups = nullptr;
  stencil::JacobiGrid after_mutation;
  after_mutation.RunElement(specialized, &desc, 2);
  EXPECT_EQ(after_mutation.MaxDifference(reference), 0.0);
}

}  // namespace
}  // namespace dbll
