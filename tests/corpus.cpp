// dbll tests -- corpus definitions. Compiled with the controlled kernel
// flags (see CMakeLists.txt) so the code is decodable and liftable.
#include "corpus.h"

#define NOINLINE __attribute__((noinline))

extern "C" {

NOINLINE long c_add3(long a, long b, long c) { return a + b + c; }

NOINLINE long c_arith_mix(long a, long b) {
  return (a + b) * 3 - (a - b) * 5 + (a ^ b);
}

NOINLINE long c_imul_chain(long a, long b) {
  return a * b * 7 + a * 100 + b * -3;
}

NOINLINE long c_shifts(long a, long b) {
  return (a << (b & 63)) ^ (a >> (b & 31)) ^
         static_cast<long>(static_cast<unsigned long>(a) >> ((b + 1) & 63));
}

NOINLINE long c_shift_const(long a) {
  return (a << 5) + (a >> 3) - static_cast<long>(
             static_cast<unsigned long>(a) >> 17);
}

NOINLINE long c_bits(long a, long b) {
  return (a & b) | (a ^ ~b) | (a & ~b);
}

NOINLINE long c_neg_not(long a) { return -a + ~a; }

NOINLINE long c_abs(long a) { return a < 0 ? -a : a; }

NOINLINE long c_min_signed(long a, long b) { return a < b ? a : b; }

NOINLINE long c_max_unsigned(unsigned long a, unsigned long b) {
  return static_cast<long>(a > b ? a : b);
}

NOINLINE long c_cmp_chain(long a, long b) {
  long r = 0;
  if (a == b) r += 1;
  if (a != b) r += 2;
  if (a < b) r += 4;
  if (a <= b) r += 8;
  if (a > b) r += 16;
  if (a >= b) r += 32;
  if (static_cast<unsigned long>(a) < static_cast<unsigned long>(b)) r += 64;
  if (static_cast<unsigned long>(a) >= static_cast<unsigned long>(b)) r += 128;
  return r;
}

NOINLINE long c_div_mod(long a, long b) {
  if (b == 0 || (a == INT64_MIN && b == -1)) return 0;
  return a / b + a % b;
}

NOINLINE long c_udiv_mod(unsigned long a, unsigned long b) {
  if (b == 0) return 0;
  return static_cast<long>(a / b + a % b);
}

NOINLINE long c_mul_wide(long a, long b) {
  return static_cast<long>((static_cast<__int128>(a) * b) >> 64);
}

NOINLINE int c_narrow32(int a, int b) { return a * b + (a >> 2) - (b << 1); }

NOINLINE int c_u8_ops(unsigned char a, unsigned char b) {
  unsigned char c = static_cast<unsigned char>(a + b);
  unsigned char d = static_cast<unsigned char>(a * 3);
  return c ^ d;
}

NOINLINE int c_i16_ops(short a, short b) {
  short c = static_cast<short>(a - b);
  return c * 2 + (a & b);
}

NOINLINE long c_sext_zext(int a, unsigned int b) {
  return static_cast<long>(a) + static_cast<long>(b);
}

NOINLINE long c_select(long a, long b) { return a > 0 ? b : -b; }

NOINLINE long c_setcc_sum(long a, long b) {
  return (a < b) + (a == b) * 2 + (a > b) * 4;
}

NOINLINE long c_branch_tree(long a) {
  if (a < -100) return 1;
  if (a < 0) return 2;
  if (a == 0) return 3;
  if (a < 100) return 4;
  return 5;
}

NOINLINE long c_loop_sum(long n) {
  long s = 0;
  for (long i = 0; i < n; i++) s += i;
  return s;
}

NOINLINE long c_loop_fib(long n) {
  long a = 0;
  long b = 1;
  for (long i = 0; i < n; i++) {
    long t = a + b;
    a = b;
    b = t;
  }
  return a;
}

// Dense switch: GCC emits a PIC jump table (lea tbl(%rip); movslq; add; jmp
// *%rax), the shape the value-range analysis resolves into real CFG edges
// (docs/static_analysis.md). The `& 7` mask is what bounds the index.
NOINLINE long c_switch_dispatch(long a, long b) {
  switch (a & 7) {
    case 0: return b + 1;
    case 1: return b * 3;
    case 2: return b - a;
    case 3: return b ^ a;
    case 4: return b << 2;
    case 5: return b & 0x5555;
    case 6: return -b;
    default: return a + b;
  }
}

NOINLINE long c_gcd(long a, long b) {
  while (b != 0) {
    long t = a % b;
    a = b;
    b = t;
  }
  return a;
}

NOINLINE long c_collatz_steps(long n) {
  long steps = 0;
  while (n > 1 && steps < 1000) {
    n = (n % 2 == 0) ? n / 2 : 3 * n + 1;
    steps++;
  }
  return steps;
}

NOINLINE long c_nested_loops(long n, long m) {
  long s = 0;
  for (long i = 0; i < n; i++) {
    for (long j = 0; j < m; j++) {
      s += i * j + 1;
    }
  }
  return s;
}

NOINLINE long c_early_return(long a, long b) {
  if (a == 0) return b;
  if (b == 0) return a;
  return a * b;
}

NOINLINE long c_short_circuit(long a, long b) {
  if (a > 0 && b > 0) return 1;
  if (a < 0 || b < 0) return -1;
  return 0;
}

NOINLINE long c_loop_to_entry(long n) {
  // With -O2 the loop test lands at (or next to) the function entry.
  long s = 1;
  do {
    s = s * 3 + 1;
    n--;
  } while (n > 0);
  return s;
}

NOINLINE long c_array_sum(const long* data, long count) {
  long s = 0;
  for (long i = 0; i < count; i++) s += data[i];
  return s;
}

NOINLINE long c_array_index(const long* data, long index) {
  return data[index * 2] + data[index + 3];
}

NOINLINE double c_array_sum_f64(const double* data, long count) {
  double s = 0.0;
  for (long i = 0; i < count; i++) s += data[i];
  return s;
}

NOINLINE long c_strlen_like(const char* text) {
  long n = 0;
  while (text[n] != 0) n++;
  return n;
}

NOINLINE void c_store_fields(long* out, long a, long b) {
  out[0] = a + b;
  out[1] = a - b;
  out[2] = a * b;
}

NOINLINE long c_stack_spill(long a, long b, long c, long d, long e, long f) {
  long t1 = a * b;
  long t2 = c * d;
  long t3 = e * f;
  long t4 = a + c + e;
  long t5 = b + d + f;
  long t6 = t1 ^ t2;
  long t7 = t3 ^ t4;
  return t1 + t2 + t3 + t4 + t5 + t6 + t7 + (t1 * t5) + (t2 * t4) +
         (t3 * t7) + (t6 * t7);
}

NOINLINE long c_struct_walk(const void* s) {
  const CorpusNode* nodes = static_cast<const CorpusNode*>(s);
  long total = 0;
  for (int i = 0; i < 4; i++) {
    total += nodes[i].value * nodes[i].weight;
  }
  return total;
}

NOINLINE double c_poly(double x) {
  return ((2.0 * x + 3.0) * x - 5.0) * x + 7.0;
}

NOINLINE double c_fp_mix(double a, double b) {
  return a * b + a / (b * b + 1.0) - (a - b);
}

NOINLINE double c_fp_sqrt(double a) { return __builtin_sqrt(a * a + 1.0); }

NOINLINE double c_fp_minmax(double a, double b) {
  double lo = a < b ? a : b;
  double hi = a > b ? a : b;
  return hi - lo;
}

NOINLINE double c_int_to_fp(long a, long b) {
  return static_cast<double>(a) / (static_cast<double>(b) + 0.5);
}

NOINLINE long c_fp_to_int(double a) {
  return static_cast<long>(a * 3.5);
}

NOINLINE float c_float_ops(float a, float b) {
  return a * b - a / (b + 1.0f);
}

NOINLINE double c_float_to_double(float a) {
  return static_cast<double>(a) * 2.0;
}

NOINLINE double c_fp_branch(double a, double b) {
  if (a < b) return b - a;
  if (a > b * 2.0) return a * 0.5;
  return a + b;
}

NOINLINE double c_dot3(const double* a, const double* b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

NOINLINE static long helper_scale(long a) { return a * 17 + 1; }
NOINLINE static long helper_combine(long a, long b) { return a * 31 + b; }

NOINLINE long c_call_helper(long a, long b) {
  return helper_scale(a) + helper_scale(b);
}

NOINLINE long c_call_chain(long a) {
  return helper_combine(helper_scale(a), helper_scale(a + 1));
}

NOINLINE long c_factorial(long n) {
  if (n <= 1) return 1;
  return n * c_factorial(n - 1);
}

}  // extern "C"

namespace dbll_tests {

const IntFn kIntCorpus[] = {
    {"add3_partial", [](long a, long b) { return c_add3(a, b, 7); }},
    {"arith_mix", c_arith_mix},
    {"imul_chain", c_imul_chain},
    {"shifts", c_shifts},
    {"bits", c_bits},
    {"min_signed", c_min_signed},
    {"cmp_chain", c_cmp_chain},
    {"div_mod", c_div_mod},
    {"mul_wide", c_mul_wide},
    {"select", c_select},
    {"setcc_sum", c_setcc_sum},
    {"early_return", c_early_return},
    {"short_circuit", c_short_circuit},
    {"gcd", c_gcd},
    {"nested_loops",
     [](long a, long b) { return c_nested_loops(a & 15, b & 15); }},
};
const int kIntCorpusSize = static_cast<int>(sizeof(kIntCorpus) / sizeof(kIntCorpus[0]));

const FpFn kFpCorpus[] = {
    {"fp_mix", c_fp_mix},
    {"fp_minmax", c_fp_minmax},
    {"fp_branch", c_fp_branch},
    {"poly_partial", [](double a, double) { return c_poly(a); }},
};
const int kFpCorpusSize = static_cast<int>(sizeof(kFpCorpus) / sizeof(kFpCorpus[0]));

}  // namespace dbll_tests

// --- Vector corpus -----------------------------------------------------------

#include <emmintrin.h>

extern "C" {

NOINLINE long v_paddd_sum(const void* a, const void* b) {
  __m128i va = _mm_loadu_si128(static_cast<const __m128i*>(a));
  __m128i vb = _mm_loadu_si128(static_cast<const __m128i*>(b));
  __m128i sum = _mm_add_epi32(va, vb);
  sum = _mm_add_epi32(sum, _mm_srli_si128(sum, 8));
  sum = _mm_add_epi32(sum, _mm_srli_si128(sum, 4));
  return _mm_cvtsi128_si32(sum);
}

NOINLINE long v_cmp_mask(const void* a, const void* b) {
  __m128i va = _mm_loadu_si128(static_cast<const __m128i*>(a));
  __m128i vb = _mm_loadu_si128(static_cast<const __m128i*>(b));
  const int eq = _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb));
  const int gt = _mm_movemask_epi8(_mm_cmpgt_epi16(va, vb));
  return (static_cast<long>(eq) << 16) | gt;
}

NOINLINE long v_minmax_bytes(const void* a, const void* b) {
  __m128i va = _mm_loadu_si128(static_cast<const __m128i*>(a));
  __m128i vb = _mm_loadu_si128(static_cast<const __m128i*>(b));
  __m128i mn = _mm_min_epu8(va, vb);
  __m128i mx = _mm_max_epu8(va, vb);
  __m128i mw = _mm_max_epi16(_mm_min_epi16(va, vb), mn);
  return _mm_movemask_epi8(_mm_cmpeq_epi8(mn, mx)) +
         _mm_cvtsi128_si32(mw);
}

NOINLINE long v_shift_mix(const void* a, long count) {
  __m128i va = _mm_loadu_si128(static_cast<const __m128i*>(a));
  __m128i imm = _mm_xor_si128(_mm_slli_epi32(va, 5), _mm_srli_epi64(va, 9));
  imm = _mm_xor_si128(imm, _mm_srai_epi16(va, 3));
  __m128i cnt = _mm_cvtsi32_si128(static_cast<int>(count & 31));
  imm = _mm_xor_si128(imm, _mm_sll_epi32(va, cnt));
  imm = _mm_xor_si128(imm, _mm_srl_epi16(va, cnt));
  imm = _mm_xor_si128(imm, _mm_slli_si128(va, 3));
  long lo;
  _mm_storel_epi64(reinterpret_cast<__m128i*>(&lo), imm);
  return lo;
}

NOINLINE long v_mul_lanes(const void* a, const void* b) {
  __m128i va = _mm_loadu_si128(static_cast<const __m128i*>(a));
  __m128i vb = _mm_loadu_si128(static_cast<const __m128i*>(b));
  __m128i w = _mm_mullo_epi16(va, vb);
  __m128i q = _mm_mul_epu32(va, vb);
  __m128i mix = _mm_xor_si128(w, q);
  long lo;
  _mm_storel_epi64(reinterpret_cast<__m128i*>(&lo), mix);
  return lo;
}

NOINLINE long v_unpack_digest(const void* a, const void* b) {
  __m128i va = _mm_loadu_si128(static_cast<const __m128i*>(a));
  __m128i vb = _mm_loadu_si128(static_cast<const __m128i*>(b));
  __m128i lo8 = _mm_unpacklo_epi8(va, vb);
  __m128i hi16 = _mm_unpackhi_epi16(va, vb);
  __m128i d32 = _mm_unpacklo_epi32(lo8, hi16);
  d32 = _mm_add_epi64(d32, _mm_unpackhi_epi64(va, vb));
  long lo;
  _mm_storel_epi64(reinterpret_cast<__m128i*>(&lo), d32);
  return lo;
}

NOINLINE long v_avg_bytes(const void* a, const void* b) {
  __m128i va = _mm_loadu_si128(static_cast<const __m128i*>(a));
  __m128i vb = _mm_loadu_si128(static_cast<const __m128i*>(b));
  __m128i avg = _mm_avg_epu8(va, vb);
  avg = _mm_add_epi16(avg, _mm_avg_epu16(va, vb));
  long lo;
  _mm_storel_epi64(reinterpret_cast<__m128i*>(&lo), avg);
  return lo;
}

NOINLINE long v_memchr_like(const void* data, long byte) {
  // Classic vectorized byte scan: pcmpeqb + pmovmskb + tzcnt.
  const __m128i needle = _mm_set1_epi8(static_cast<char>(byte));
  const char* p = static_cast<const char*>(data);
  for (long off = 0; off < 256; off += 16) {
    __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + off));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, needle));
    if (mask != 0) {
      return off + __builtin_ctz(static_cast<unsigned>(mask));
    }
  }
  return -1;
}

NOINLINE long v_shld(long a, long b) {
  unsigned long lo = static_cast<unsigned long>(a);
  asm("shldq $13, %1, %0" : "+r"(lo) : "r"(b) : "cc");
  unsigned long cl = static_cast<unsigned long>(b) & 63;
  asm("movq %1, %%rcx\n\tshldq %%cl, %1, %0"
      : "+r"(lo)
      : "r"(cl)
      : "rcx", "cc");
  return static_cast<long>(lo);
}

NOINLINE long v_shrd(long a, long b) {
  unsigned long lo = static_cast<unsigned long>(a);
  asm("shrdq $7, %1, %0" : "+r"(lo) : "r"(b) : "cc");
  return static_cast<long>(lo);
}

NOINLINE long v_bittest(long a, long b) {
  unsigned long v = static_cast<unsigned long>(a);
  unsigned char c1, c2, c3;
  asm("btsq %2, %0\n\tsetc %1" : "+r"(v), "=q"(c1) : "r"(b & 63) : "cc");
  asm("btrq $5, %0\n\tsetc %1" : "+r"(v), "=q"(c2) : : "cc");
  asm("btcq %2, %0\n\tsetc %1" : "+r"(v), "=q"(c3) : "r"((b >> 6) & 63) : "cc");
  return static_cast<long>(v) + c1 + 2 * c2 + 4 * c3;
}

NOINLINE double v_cmpsd_select(double a, double b) {
  __m128d va = _mm_set_sd(a);
  __m128d vb = _mm_set_sd(b);
  __m128d mask = _mm_cmplt_sd(va, vb);           // cmpsd imm=1
  __m128d sel = _mm_or_pd(_mm_and_pd(mask, vb),  // max via mask
                          _mm_andnot_pd(mask, va));
  return _mm_cvtsd_f64(sel);
}

NOINLINE long v_movmskpd(double a, double b) {
  __m128d v = _mm_set_pd(a, b);
  return _mm_movemask_pd(v);
}

NOINLINE long cb_affine(long x, const long* p) { return x * p[0] + p[1]; }

NOINLINE long cb_poly(long x, const long* p) {
  return (x + p[0]) * (x + p[1]);
}

NOINLINE long cb_apply(const CbConfig* config, long count) {
  long acc = 0;
  for (long i = 0; i < count; i++) {
    acc += config->fn(i, config->params);
  }
  return acc;
}

}  // extern "C"

namespace dbll_tests {

const VecFn kVecCorpus[] = {
    {"paddd_sum", v_paddd_sum},
    {"cmp_mask", v_cmp_mask},
    {"minmax_bytes", v_minmax_bytes},
    {"mul_lanes", v_mul_lanes},
    {"unpack_digest", v_unpack_digest},
    {"avg_bytes", v_avg_bytes},
};
const int kVecCorpusSize =
    static_cast<int>(sizeof(kVecCorpus) / sizeof(kVecCorpus[0]));

}  // namespace dbll_tests
