// dbll tests -- SSE2 extension pack: lift-and-execute and rewrite-and-execute
// equivalence for vector integer instructions (pcmp/pmin/pmax/pavg/pmul,
// vector shifts, unpacks, movmsk, cmpsd) plus shld/shrd and bts/btr/btc.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>

#include "corpus.h"
#include "dbll/dbrew/rewriter.h"
#include "dbll/lift/lifter.h"

namespace dbll {
namespace {

lift::Jit& SharedJit() {
  static lift::Jit jit;
  return jit;
}

void FillRandom(std::uint8_t* data, std::size_t size, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::uint8_t>(rng());
  }
}

// --- Vector corpus equivalence: lifted and rewritten code vs native ---------

class VecEquivalenceTest : public testing::TestWithParam<dbll_tests::VecFn> {};

TEST_P(VecEquivalenceTest, LiftedMatchesNative) {
  const auto& entry = GetParam();
  lift::Lifter lifter;
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(entry.fn),
                            lift::Signature::Ints(2));
  ASSERT_TRUE(lifted.has_value())
      << entry.name << ": " << lifted.error().Format();
  auto compiled = lifted->Compile(SharedJit());
  ASSERT_TRUE(compiled.has_value())
      << entry.name << ": " << compiled.error().Format();
  auto fn = reinterpret_cast<long (*)(const void*, const void*)>(*compiled);

  alignas(16) std::uint8_t a[16];
  alignas(16) std::uint8_t b[16];
  for (int round = 0; round < 64; ++round) {
    FillRandom(a, sizeof(a), 1000 + round);
    FillRandom(b, sizeof(b), 2000 + round);
    EXPECT_EQ(fn(a, b), entry.fn(a, b)) << entry.name << " round " << round;
  }
  // Edge patterns: all-zero, all-ones, sign bits.
  std::memset(a, 0, sizeof(a));
  std::memset(b, 0xff, sizeof(b));
  EXPECT_EQ(fn(a, b), entry.fn(a, b)) << entry.name << " zeros/ones";
  std::memset(a, 0x80, sizeof(a));
  EXPECT_EQ(fn(a, b), entry.fn(a, b)) << entry.name << " sign bits";
}

TEST_P(VecEquivalenceTest, RewrittenMatchesNative) {
  const auto& entry = GetParam();
  dbrew::Rewriter rewriter(reinterpret_cast<std::uint64_t>(entry.fn));
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value())
      << entry.name << ": " << rewritten.error().Format();
  auto fn = reinterpret_cast<long (*)(const void*, const void*)>(*rewritten);

  alignas(16) std::uint8_t a[16];
  alignas(16) std::uint8_t b[16];
  for (int round = 0; round < 32; ++round) {
    FillRandom(a, sizeof(a), 3000 + round);
    FillRandom(b, sizeof(b), 4000 + round);
    EXPECT_EQ(fn(a, b), entry.fn(a, b)) << entry.name << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, VecEquivalenceTest,
    testing::ValuesIn(dbll_tests::kVecCorpus,
                      dbll_tests::kVecCorpus + dbll_tests::kVecCorpusSize),
    [](const testing::TestParamInfo<dbll_tests::VecFn>& info) {
      return info.param.name;
    });

// --- Targeted instructions ----------------------------------------------------

template <typename Fn>
Fn LiftAs(Fn native, lift::Signature sig) {
  lift::Lifter lifter;
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(native), sig);
  if (!lifted.has_value()) {
    ADD_FAILURE() << lifted.error().Format();
    return nullptr;
  }
  auto compiled = lifted->Compile(SharedJit());
  if (!compiled.has_value()) {
    ADD_FAILURE() << compiled.error().Format();
    return nullptr;
  }
  return reinterpret_cast<Fn>(*compiled);
}

TEST(SseExtTest, VectorShifts) {
  auto fn = LiftAs(&v_shift_mix, lift::Signature::Ints(2));
  ASSERT_NE(fn, nullptr);
  alignas(16) std::uint8_t a[16];
  for (long count : {0L, 1L, 5L, 15L, 16L, 31L, 32L, 63L, 64L, 1000L}) {
    FillRandom(a, sizeof(a), 7 + static_cast<std::uint64_t>(count));
    EXPECT_EQ(fn(a, count), v_shift_mix(a, count)) << "count=" << count;
  }
}

TEST(SseExtTest, MemchrLike) {
  auto fn = LiftAs(&v_memchr_like, lift::Signature::Ints(2));
  ASSERT_NE(fn, nullptr);
  std::uint8_t data[256];
  FillRandom(data, sizeof(data), 99);
  for (long needle : {data[0], data[100], data[255]}) {
    EXPECT_EQ(fn(data, needle), v_memchr_like(data, needle));
  }
  std::memset(data, 0x41, sizeof(data));
  EXPECT_EQ(fn(data, 0x42), -1);
  EXPECT_EQ(fn(data, 0x41), 0);
  data[200] = 0x42;
  EXPECT_EQ(fn(data, 0x42), 200);
}

TEST(SseExtTest, ShldShrd) {
  auto shld = LiftAs(&v_shld, lift::Signature::Ints(2));
  auto shrd = LiftAs(&v_shrd, lift::Signature::Ints(2));
  ASSERT_NE(shld, nullptr);
  ASSERT_NE(shrd, nullptr);
  std::mt19937_64 rng(31);
  for (int i = 0; i < 200; ++i) {
    const long a = static_cast<long>(rng());
    const long b = static_cast<long>(rng());
    EXPECT_EQ(shld(a, b), v_shld(a, b)) << a << " " << b;
    EXPECT_EQ(shrd(a, b), v_shrd(a, b)) << a << " " << b;
  }
}

TEST(SseExtTest, BitTestAndModify) {
  auto fn = LiftAs(&v_bittest, lift::Signature::Ints(2));
  ASSERT_NE(fn, nullptr);
  std::mt19937_64 rng(37);
  for (int i = 0; i < 200; ++i) {
    const long a = static_cast<long>(rng());
    const long b = static_cast<long>(rng());
    EXPECT_EQ(fn(a, b), v_bittest(a, b)) << a << " " << b;
  }
}

TEST(SseExtTest, CmpsdSelect) {
  lift::Signature sig;
  sig.args = {lift::ArgKind::kF64, lift::ArgKind::kF64};
  sig.ret = lift::RetKind::kF64;
  auto fn = LiftAs(&v_cmpsd_select, sig);
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn(1.0, 2.0), 2.0);
  EXPECT_EQ(fn(5.0, -1.0), 5.0);
  EXPECT_EQ(fn(3.5, 3.5), 3.5);
  std::mt19937_64 rng(41);
  std::uniform_real_distribution<double> dist(-1e9, 1e9);
  for (int i = 0; i < 100; ++i) {
    const double a = dist(rng);
    const double b = dist(rng);
    EXPECT_EQ(fn(a, b), v_cmpsd_select(a, b));
  }
}

TEST(SseExtTest, Movmskpd) {
  lift::Signature sig;
  sig.args = {lift::ArgKind::kF64, lift::ArgKind::kF64};
  sig.ret = lift::RetKind::kInt;
  auto fn = LiftAs(&v_movmskpd, sig);
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn(1.0, 1.0), v_movmskpd(1.0, 1.0));
  EXPECT_EQ(fn(-1.0, 1.0), v_movmskpd(-1.0, 1.0));
  EXPECT_EQ(fn(1.0, -1.0), v_movmskpd(1.0, -1.0));
  EXPECT_EQ(fn(-0.0, -3.0), v_movmskpd(-0.0, -3.0));
}

// --- DBrew on the bit/shift asm corpus ----------------------------------------

TEST(SseExtTest, DbrewRewritesShldAndBittest) {
  for (auto native : {&v_shld, &v_shrd, &v_bittest}) {
    dbrew::Rewriter rewriter(reinterpret_cast<std::uint64_t>(native));
    auto rewritten = rewriter.Rewrite();
    ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
    auto fn = reinterpret_cast<long (*)(long, long)>(*rewritten);
    std::mt19937_64 rng(53);
    for (int i = 0; i < 50; ++i) {
      const long a = static_cast<long>(rng());
      const long b = static_cast<long>(rng());
      EXPECT_EQ(fn(a, b), native(a, b));
    }
  }
}

TEST(SseExtTest, DbrewFoldsVectorOpsWithKnownInput) {
  // With both buffers in fixed memory, the whole digest folds to a constant.
  static std::uint8_t a[16];
  static std::uint8_t b[16];
  FillRandom(a, sizeof(a), 77);
  FillRandom(b, sizeof(b), 78);
  dbrew::Rewriter rewriter(reinterpret_cast<std::uint64_t>(&v_paddd_sum));
  rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(a));
  rewriter.SetParam(1, reinterpret_cast<std::uint64_t>(b));
  rewriter.SetMemRange(a, a + 16);
  rewriter.SetMemRange(b, b + 16);
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
  auto fn = reinterpret_cast<long (*)(const void*, const void*)>(*rewritten);
  EXPECT_EQ(fn(nullptr, nullptr), v_paddd_sum(a, b));
  // The vector additions and shifts should have folded away.
  EXPECT_GT(rewriter.stats().folded_instrs, 4u);
}

}  // namespace
}  // namespace dbll
