// dbll tests -- the static-analysis framework (src/analysis): dataflow
// solver convergence, instruction effect summaries, flag/register liveness,
// the lift-eligibility auditor, the CompileService audit gate, DBrew
// dead-store pruning, and differential equivalence of flag-liveness-pruned
// lifts against unpruned ones.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "analysis_fixtures.h"
#include "corpus.h"
#include "dbll/analysis/audit.h"
#include "dbll/analysis/dataflow.h"
#include "dbll/analysis/liveness.h"
#include "dbll/analysis/ranges.h"
#include "dbll/dbrew/capi.h"
#include "dbll/dbrew/rewriter.h"
#include "dbll/lift/lifter.h"
#include "dbll/obs/obs.h"
#include "dbll/runtime/compile_service.h"
#include "dbll/stencil/stencil.h"
#include "dbll/support/code_buffer.h"
#include "dbll/x86/decoder.h"
#include "dbrew/emitter.h"  // internal: emitter-level prune unit tests

namespace dbll::analysis {
namespace {

std::uint64_t Addr(const void* p) {
  return reinterpret_cast<std::uint64_t>(p);
}

// --- LocSet ------------------------------------------------------------------

TEST(LocSetTest, ClassesAreDisjoint) {
  EXPECT_FALSE(LocSet::AllGp().Intersects(LocSet::AllVec()));
  EXPECT_FALSE(LocSet::AllGp().Intersects(LocSet::AllFlags()));
  EXPECT_FALSE(LocSet::AllVec().Intersects(LocSet::AllFlags()));
  EXPECT_EQ((LocSet::AllGp() | LocSet::AllVec() | LocSet::AllFlags()),
            LocSet::All());
  EXPECT_EQ(LocSet::All().count(), LocSet::kLocCount);
}

TEST(LocSetTest, FlagMaskRoundTrips) {
  for (std::uint8_t mask = 0; mask <= x86::kFlagAll; ++mask) {
    EXPECT_EQ(LocSet::FromFlagMask(mask).FlagMask(), mask);
  }
  // The per-flag constructor and the mask view agree on the bit order.
  EXPECT_EQ(LocSet::FlagLoc(x86::Flag::kZf).FlagMask(), x86::kFlagZ);
  EXPECT_EQ(LocSet::FlagLoc(x86::Flag::kAf).FlagMask(), x86::kFlagA);
}

TEST(LocSetTest, SetAlgebra) {
  const LocSet a = LocSet::Gp(0) | LocSet::Gp(1) | LocSet::Vec(3);
  const LocSet b = LocSet::Gp(1) | LocSet::FlagLoc(x86::Flag::kCf);
  EXPECT_EQ((a & b), LocSet::Gp(1));
  EXPECT_EQ((a - b), (LocSet::Gp(0) | LocSet::Vec(3)));
  EXPECT_TRUE(a.ContainsAll(LocSet::Gp(0)));
  EXPECT_FALSE(a.ContainsAll(b));
  EXPECT_NE(a.ToString().find("xmm3"), std::string::npos);
}

// --- Worklist solver ---------------------------------------------------------

// Diamond: 0 -> {1, 2} -> 3. Backward liveness-style problem.
TEST(SolverTest, DiamondReachesFixpoint) {
  Graph graph;
  graph.succs = {{1, 2}, {3}, {3}, {}};
  graph.preds = {{}, {0}, {0}, {1, 2}};
  // Block 3 reads rax (gen); block 1 overwrites rax (kill); block 2 is
  // pass-through. So rax must be live into blocks 0, 2, 3 but not 1.
  std::vector<Transfer> transfer(4);
  transfer[3].gen = LocSet::Gp(0);
  transfer[1].kill = LocSet::Gp(0);
  const DataflowResult result =
      Solve(Direction::kBackward, graph, transfer, LocSet());
  EXPECT_TRUE(result.in[0].TestGp(0));
  EXPECT_FALSE(result.in[1].TestGp(0));
  EXPECT_TRUE(result.in[2].TestGp(0));
  EXPECT_TRUE(result.in[3].TestGp(0));
  EXPECT_TRUE(result.out[1].TestGp(0));  // live after the kill again
  // An acyclic 4-block graph converges in a handful of pops.
  EXPECT_LE(result.iterations, 8);
}

// Loop: 0 -> 1 <-> 1 -> 2 (self loop on 1).
TEST(SolverTest, LoopConverges) {
  Graph graph;
  graph.succs = {{1}, {1, 2}, {}};
  graph.preds = {{}, {0, 1}, {1}};
  // The loop body reads rdi before overwriting it, and the exit reads rax.
  std::vector<Transfer> transfer(3);
  transfer[1].gen = LocSet::Gp(7);  // rdi
  transfer[1].kill = LocSet::Gp(7);
  transfer[2].gen = LocSet::Gp(0);  // rax
  const DataflowResult result =
      Solve(Direction::kBackward, graph, transfer, LocSet());
  // rdi is live around the back edge; rax is live everywhere before exit.
  EXPECT_TRUE(result.in[1].TestGp(7));
  EXPECT_TRUE(result.out[1].TestGp(7));  // via the back edge
  EXPECT_TRUE(result.in[0].TestGp(7));
  EXPECT_TRUE(result.in[0].TestGp(0));
  // Fixpoint: re-solving changes nothing, and iterations stay bounded by a
  // small multiple of the block count.
  EXPECT_LE(result.iterations, 3 * 4);
}

TEST(SolverTest, ForwardDirectionUsesEntryBoundary) {
  // Forward reaching-style: boundary seeds the entry block.
  Graph graph;
  graph.succs = {{1}, {}};
  graph.preds = {{}, {0}};
  std::vector<Transfer> transfer(2);
  transfer[0].kill = LocSet::Gp(0);
  const DataflowResult result = Solve(Direction::kForward, graph, transfer,
                                      LocSet::Gp(0) | LocSet::Gp(1));
  EXPECT_TRUE(result.in[0].TestGp(0));
  EXPECT_FALSE(result.out[0].TestGp(0));  // killed in block 0
  EXPECT_TRUE(result.out[0].TestGp(1));   // flows through
  EXPECT_FALSE(result.in[1].TestGp(0));
}

// --- Instruction effects -----------------------------------------------------

x86::Instr DecodeBytes(const std::vector<std::uint8_t>& bytes) {
  auto instr = x86::Decoder::DecodeOne(bytes, 0x1000);
  EXPECT_TRUE(instr.has_value()) << instr.error().Format();
  return *instr;
}

TEST(EffectsTest, AddReadsBothKillsDestAndFlags) {
  // add rax, rsi
  const InstrEffects e = EffectsOf(DecodeBytes({0x48, 0x01, 0xf0}));
  EXPECT_TRUE(e.known);
  EXPECT_FALSE(e.writes_memory);
  EXPECT_TRUE(e.uses.TestGp(0));   // rax (read-modify-write)
  EXPECT_TRUE(e.uses.TestGp(6));   // rsi
  EXPECT_TRUE(e.kills.TestGp(0));
  EXPECT_EQ((e.kills & LocSet::AllFlags()), LocSet::AllFlags());
  EXPECT_FALSE(e.uses.Intersects(LocSet::AllFlags()));
}

TEST(EffectsTest, MovDoesNotTouchFlags) {
  // mov rax, rdi
  const InstrEffects e = EffectsOf(DecodeBytes({0x48, 0x89, 0xf8}));
  EXPECT_TRUE(e.kills.TestGp(0));
  EXPECT_TRUE(e.uses.TestGp(7));
  EXPECT_FALSE(e.defs.Intersects(LocSet::AllFlags()));
}

TEST(EffectsTest, JccReadsItsConditionFlags) {
  // je +0
  const InstrEffects e = EffectsOf(DecodeBytes({0x74, 0x00}));
  EXPECT_TRUE(e.uses.TestFlag(x86::Flag::kZf));
  EXPECT_TRUE(e.defs.empty());
}

TEST(EffectsTest, VariableShiftNeverKillsFlags) {
  // shl rax, cl: with cl == 0 the flags survive untouched, so a sound
  // summary must not report them killed (it may report them defined).
  const InstrEffects e = EffectsOf(DecodeBytes({0x48, 0xd3, 0xe0}));
  EXPECT_TRUE(e.uses.TestGp(1));  // rcx
  EXPECT_TRUE(e.uses.TestGp(0));
  EXPECT_FALSE(e.kills.Intersects(LocSet::AllFlags()));
}

TEST(EffectsTest, StoreWritesMemory) {
  // mov [rdi], rax
  const InstrEffects e = EffectsOf(DecodeBytes({0x48, 0x89, 0x07}));
  EXPECT_TRUE(e.writes_memory);
  EXPECT_TRUE(e.uses.TestGp(7));
  EXPECT_TRUE(e.uses.TestGp(0));
}

// --- Flag liveness over real CFGs -------------------------------------------

Liveness LivenessOf(const std::vector<std::uint8_t>& code) {
  auto cfg = x86::BuildCfgFromBuffer(code, 0x1000, 0x1000);
  EXPECT_TRUE(cfg.has_value()) << cfg.error().Format();
  return ComputeLiveness(*cfg);
}

TEST(LivenessTest, CmpFeedingJccKeepsItsFlagLive) {
  //   1000: 48 39 f7   cmp rdi, rsi
  //   1003: 74 02      je 1007
  //   1005: 31 c0      xor eax, eax
  //   1007: c3         ret
  const Liveness live = LivenessOf({0x48, 0x39, 0xf7, 0x74, 0x02, 0x31, 0xc0,
                                    0xc3});
  EXPECT_TRUE(live.LiveFlagsAfter(0x1000) & x86::kFlagZ);
  // After the je nothing reads any flag.
  EXPECT_EQ(live.LiveFlagsAfter(0x1003), 0);
  EXPECT_EQ(live.LiveFlagsAfter(0x1005), 0);
}

TEST(LivenessTest, ArithmeticFlagsDeadWithoutConsumer) {
  //   1000: 48 01 f0   add rax, rsi
  //   1003: 48 01 f8   add rax, rdi
  //   1006: c3         ret
  const Liveness live = LivenessOf({0x48, 0x01, 0xf0, 0x48, 0x01, 0xf8, 0xc3});
  // The second add kills every flag before anything could read the first
  // add's definitions; ret reads no flags.
  EXPECT_EQ(live.LiveFlagsAfter(0x1000), 0);
  EXPECT_EQ(live.LiveFlagsAfter(0x1003), 0);
  // But rax is live throughout (the ret reads the return register).
  EXPECT_TRUE(live.AfterInstr(0x1003).TestGp(0));
}

TEST(LivenessTest, LoopCarriesFlagsAroundBackEdge) {
  //   1000: 31 c0      xor eax, eax
  //   1002: 48 01 f8   add rax, rdi
  //   1005: 48 ff cf   dec rdi
  //   1008: 75 f8      jne 1002
  //   100a: c3         ret
  const Liveness live =
      LivenessOf({0x31, 0xc0, 0x48, 0x01, 0xf8, 0x48, 0xff, 0xcf, 0x75, 0xf8,
                  0xc3});
  // The dec feeds the jne: ZF live after the dec.
  EXPECT_TRUE(live.LiveFlagsAfter(0x1005) & x86::kFlagZ);
  // The add's flags are clobbered by the dec before any read -- dead even
  // inside the loop.
  EXPECT_EQ(live.LiveFlagsAfter(0x1002), 0);
  // Block-entry view: the loop head needs no flag from its predecessors.
  EXPECT_EQ(live.LiveFlagsIn(0x1002), 0);
}

TEST(LivenessTest, UnknownAddressIsConservative) {
  const Liveness live = LivenessOf({0xc3});
  EXPECT_EQ(live.AfterInstr(0xdead), LocSet::All());
  EXPECT_EQ(live.LiveFlagsIn(0xdead), x86::kFlagAll);
}

// --- Value-range lattice -----------------------------------------------------

TEST(RangeLatticeTest, JoinCombinesIntervalsAndKnownBits) {
  EXPECT_EQ(Join(ValueRange::Constant(4), ValueRange::Constant(4)),
            ValueRange::Constant(4));
  EXPECT_EQ(Join(ValueRange::Bounded(1, 3), ValueRange::Bounded(5, 9)),
            ValueRange::Bounded(1, 9));
  EXPECT_TRUE(Join(ValueRange::Top(), ValueRange::Constant(4)).IsTop());
  // 4 and 6 agree on every bit except bit 1: the join keeps that knowledge,
  // so the interval [4,6] does not admit 5 (bit 0 is known zero).
  const ValueRange j = Join(ValueRange::Constant(4), ValueRange::Constant(6));
  EXPECT_EQ(j.lo, 4u);
  EXPECT_EQ(j.hi, 6u);
  EXPECT_TRUE(j.Contains(4));
  EXPECT_FALSE(j.Contains(5));
  EXPECT_TRUE(j.Contains(6));
}

TEST(RangeLatticeTest, WidenPushesMovingBoundsToExtremes) {
  // A still-growing upper bound goes straight to the top of the interval.
  EXPECT_TRUE(
      Widen(ValueRange::Bounded(0, 10), ValueRange::Bounded(0, 11)).IsTop());
  EXPECT_EQ(Widen(ValueRange::Bounded(5, 10), ValueRange::Bounded(3, 10)),
            ValueRange::Bounded(0, 10));
  // A stable state is a fixpoint of widening.
  EXPECT_EQ(Widen(ValueRange::Bounded(5, 10), ValueRange::Bounded(5, 10)),
            ValueRange::Bounded(5, 10));
}

TEST(RangeLatticeTest, MeetIntersectsAndSurvivesContradiction) {
  EXPECT_EQ(Meet(ValueRange::Bounded(0, 100), ValueRange::Bounded(50, 200)),
            ValueRange::Bounded(50, 100));
  EXPECT_EQ(Meet(ValueRange::Top(), ValueRange::Constant(7)),
            ValueRange::Constant(7));
  // Contradictory constraints (infeasible edge): keep the sound base operand.
  EXPECT_EQ(Meet(ValueRange::Bounded(0, 10), ValueRange::Bounded(20, 30)),
            ValueRange::Bounded(0, 10));
}

TEST(RangeLatticeTest, TransferVectors) {
  EXPECT_EQ(RangeAdd(ValueRange::Constant(5), ValueRange::Constant(7)),
            ValueRange::Constant(12));
  EXPECT_EQ(RangeAdd(ValueRange::Bounded(0, 10), ValueRange::Constant(100)),
            ValueRange::Bounded(100, 110));
  // A possibly-wrapping addition degrades the interval to top.
  EXPECT_TRUE(
      RangeAdd(ValueRange::Bounded(~0ull - 1, ~0ull), ValueRange::Constant(2))
          .IsTop());
  EXPECT_EQ(RangeSub(ValueRange::Bounded(10, 20), ValueRange::Bounded(1, 5)),
            ValueRange::Bounded(5, 19));
  EXPECT_EQ(RangeXor(ValueRange::Constant(0xf0), ValueRange::Constant(0x0f)),
            ValueRange::Constant(0xff));
  EXPECT_EQ(RangeMul(ValueRange::Bounded(0, 3), ValueRange::Constant(8)),
            ValueRange::Bounded(0, 24));
  EXPECT_EQ(RangeShr(ValueRange::Constant(0x100), ValueRange::Constant(4)),
            ValueRange::Constant(0x10));
}

TEST(RangeLatticeTest, AndOrShlTrackKnownBits) {
  // and with a constant mask bounds the interval and proves the high bits.
  const ValueRange masked = RangeAnd(ValueRange::Top(), ValueRange::Constant(7));
  EXPECT_EQ(masked.lo, 0u);
  EXPECT_EQ(masked.hi, 7u);
  EXPECT_EQ(masked.IntervalSize(), 8u);
  EXPECT_FALSE(masked.Contains(8));

  // or with a constant proves the set bit and gives a floor.
  const ValueRange ored = RangeOr(ValueRange::Bounded(0, 4),
                                  ValueRange::Constant(8));
  EXPECT_TRUE(ored.Contains(8));
  EXPECT_TRUE(ored.Contains(12));
  EXPECT_FALSE(ored.Contains(4));

  // shl scales the interval and proves the shifted-in zeros.
  const ValueRange shifted = RangeShl(ValueRange::Bounded(0, 3),
                                      ValueRange::Constant(3));
  EXPECT_EQ(shifted.lo, 0u);
  EXPECT_EQ(shifted.hi, 24u);
  EXPECT_TRUE(shifted.Contains(8));
  EXPECT_FALSE(shifted.Contains(9));  // low three bits are known zero
}

TEST(RangeLatticeTest, ShiftCountsMaskLikeHardware) {
  // 64-bit operands take the count modulo 64: shr rax, 65 shifts by 1.
  EXPECT_EQ(RangeShr(ValueRange::Constant(0x100), ValueRange::Constant(65)),
            ValueRange::Constant(0x80));
  // Narrower operands mask with 31: shr eax, 33 shifts by 1 (the decoder
  // only clamps immediates to 0x3f), it does not clear the register.
  EXPECT_EQ(RangeShr(ValueRange::Constant(0x100), ValueRange::Constant(33), 4),
            ValueRange::Constant(0x80));
  EXPECT_EQ(RangeShl(ValueRange::Constant(1), ValueRange::Constant(33), 4),
            ValueRange::Constant(2));
  // Count 32 on a 32-bit operand masks to 0: a no-op, not a clear.
  EXPECT_EQ(RangeShr(ValueRange::Bounded(4, 8), ValueRange::Constant(32), 4),
            ValueRange::Bounded(4, 8));
}

TEST(RangeLatticeTest, TruncateToWidthModelsNarrowWrites) {
  EXPECT_EQ(TruncateToWidth(ValueRange::Bounded(0, 10), 4),
            ValueRange::Bounded(0, 10));
  // An overflowing interval collapses to the width, but the surviving known
  // low bits still pin the value.
  const ValueRange t = TruncateToWidth(ValueRange::Constant(0x1ff), 1);
  EXPECT_EQ(t.lo, 0u);
  EXPECT_EQ(t.hi, 0xffu);
  EXPECT_TRUE(t.Contains(0xff));
  EXPECT_FALSE(t.Contains(0xfe));
}

TEST(RangeLatticeTest, RefineByConditionEdges) {
  EXPECT_EQ(RefineByCondition(ValueRange::Top(), x86::Cond::kE, 42),
            ValueRange::Constant(42));
  EXPECT_EQ(RefineByCondition(ValueRange::Top(), x86::Cond::kB, 16),
            ValueRange::Bounded(0, 15));
  EXPECT_EQ(RefineByCondition(ValueRange::Bounded(0, 100), x86::Cond::kA, 50),
            ValueRange::Bounded(51, 100));
  EXPECT_EQ(RefineByCondition(ValueRange::Bounded(5, 10), x86::Cond::kNe, 5),
            ValueRange::Bounded(6, 10));
  // Signed < cannot refine a register whose sign is unknown.
  EXPECT_TRUE(
      RefineByCondition(ValueRange::Top(), x86::Cond::kL, 10).IsTop());
  // Signed >= 0 pins the value into the non-negative half.
  const ValueRange ge = RefineByCondition(ValueRange::Top(), x86::Cond::kGe, 0);
  EXPECT_EQ(ge.lo, 0u);
  EXPECT_EQ(ge.hi, (1ull << 63) - 1);
  // An infeasible refinement keeps the sound base range.
  EXPECT_EQ(RefineByCondition(ValueRange::Bounded(0, 5), x86::Cond::kAe, 10),
            ValueRange::Bounded(0, 5));
}

// --- Value-range dataflow over CFGs ------------------------------------------

FunctionRanges RangesOf(const std::vector<std::uint8_t>& code,
                        const RangeOptions& options = {}) {
  auto cfg = x86::BuildCfgFromBuffer(code, 0x1000, 0x1000);
  EXPECT_TRUE(cfg.has_value()) << cfg.error().Format();
  return ComputeRanges(*cfg, options);
}

TEST(RangeAnalysisTest, AndBoundsRegister) {
  //   1000: 83 e7 07   and edi, 7
  //   1003: c3         ret
  const FunctionRanges ranges = RangesOf({0x83, 0xe7, 0x07, 0xc3});
  EXPECT_TRUE(ranges.converged());
  EXPECT_GT(ranges.steps(), 0u);
  const ValueRange& rdi = ranges.BeforeReg(0x1003, 7);
  EXPECT_EQ(rdi.lo, 0u);
  EXPECT_EQ(rdi.hi, 7u);
  EXPECT_FALSE(rdi.Contains(8));
  // Entry state: nothing is known about rdi before the and executes.
  EXPECT_TRUE(ranges.BeforeReg(0x1000, 7).IsTop());
}

TEST(RangeAnalysisTest, ComparisonRefinesBothEdges) {
  //   1000: 48 83 ff 0a   cmp rdi, 10
  //   1004: 72 03         jb  1009
  //   1006: 48 31 ff      xor rdi, rdi
  //   1009: c3            ret
  const FunctionRanges ranges = RangesOf(
      {0x48, 0x83, 0xff, 0x0a, 0x72, 0x03, 0x48, 0x31, 0xff, 0xc3});
  EXPECT_TRUE(ranges.converged());
  // Fall-through edge (jb not taken): rdi >= 10.
  EXPECT_EQ(ranges.BeforeReg(0x1006, 7).lo, 10u);
  // Join point: Constant(0) from the xor path joined with [0,9] from the
  // taken edge.
  EXPECT_EQ(ranges.BeforeReg(0x1009, 7).lo, 0u);
  EXPECT_EQ(ranges.BeforeReg(0x1009, 7).hi, 9u);
}

TEST(RangeAnalysisTest, NarrowShiftMasksCountInDecodedCode) {
  //   1000: b8 00 01 00 00   mov eax, 0x100
  //   1005: c1 e8 21         shr eax, 33   (hardware shifts by 33 & 31 == 1)
  //   1008: c3               ret
  const FunctionRanges ranges =
      RangesOf({0xb8, 0x00, 0x01, 0x00, 0x00, 0xc1, 0xe8, 0x21, 0xc3});
  EXPECT_TRUE(ranges.converged());
  EXPECT_EQ(ranges.BeforeReg(0x1008, 0), ValueRange::Constant(0x80));
}

TEST(RangeAnalysisTest, RefinementSkipsClobberedCompareOperand) {
  // The cmp constrained the *old* rax; the mov replaces it with rbx (top)
  // before the jcc, so neither edge may refine the new value.
  //   1000: 48 83 f8 05   cmp rax, 5
  //   1004: 48 89 d8      mov rax, rbx
  //   1007: 72 04         jb  100d
  //   1009: 48 31 c0      xor rax, rax
  //   100c: c3            ret
  //   100d: c3            ret
  const FunctionRanges ranges =
      RangesOf({0x48, 0x83, 0xf8, 0x05, 0x48, 0x89, 0xd8, 0x72, 0x04, 0x48,
                0x31, 0xc0, 0xc3, 0xc3});
  EXPECT_TRUE(ranges.converged());
  EXPECT_TRUE(ranges.BeforeReg(0x100d, 0).IsTop());  // taken edge: no [0,4]
  EXPECT_TRUE(ranges.BeforeReg(0x1009, 0).IsTop());  // fall-through either
}

TEST(RangeAnalysisTest, RefinementSkipsClobberedComparand) {
  // rcx is rewritten to a constant between the cmp and the jcc: the compare
  // did not test rax against 99, so the edge must not refine rax with it.
  //   1000: 48 39 c8               cmp rax, rcx
  //   1003: 48 c7 c1 63 00 00 00   mov rcx, 99
  //   100a: 72 04                  jb  1010
  //   100c: 48 31 c0               xor rax, rax
  //   100f: c3                     ret
  //   1010: c3                     ret
  const FunctionRanges ranges =
      RangesOf({0x48, 0x39, 0xc8, 0x48, 0xc7, 0xc1, 0x63, 0x00, 0x00, 0x00,
                0x72, 0x04, 0x48, 0x31, 0xc0, 0xc3, 0xc3});
  EXPECT_TRUE(ranges.converged());
  EXPECT_TRUE(ranges.BeforeReg(0x1010, 0).IsTop());
  // The clobbering mov itself still propagates normally.
  EXPECT_EQ(ranges.BeforeReg(0x1010, 1), ValueRange::Constant(99));
}

TEST(RangeAnalysisTest, ExhaustedBudgetDegradesToTop) {
  RangeOptions options;
  options.budget = 1;
  const FunctionRanges ranges = RangesOf({0x83, 0xe7, 0x07, 0xc3}, options);
  EXPECT_FALSE(ranges.converged());
  EXPECT_TRUE(ranges.BeforeReg(0x1003, 7).IsTop());
}

TEST(RangeAnalysisTest, EntrySeedsPropagate) {
  // Seeding rdi (the specializer's fixed-argument hook) flows through.
  RangeOptions options;
  options.entry_values.emplace_back(7, ValueRange::Constant(12));
  const FunctionRanges ranges = RangesOf({0x83, 0xe7, 0x07, 0xc3}, options);
  const ValueRange& rdi = ranges.BeforeReg(0x1003, 7);
  EXPECT_EQ(rdi, ValueRange::Constant(12 & 7));
}

// --- Jump-table resolution ---------------------------------------------------

// Dispatch targets for the writable-table negative test; filled from the
// encoded buffer before the analysis runs. File-scope (.bss, writable) so
// the table address encodes into a movabs immediate without lifetime
// concerns.
alignas(8) std::uint64_t g_jump_table[4];

// Assembles the absolute-table switch used by the jump-table tests
// (the second dispatch form):
//   and edi, 3
//   movabs rcx, table_addr
//   mov rax, [rcx + rdi*8]
//   jmp rax
// t_k: mov eax, <11*(k+1)> ; ret        (k = 0..3, 6 bytes each)
// Reports the indirect-jmp site and the four case-label addresses, both
// relative to `entry`.
std::vector<std::uint8_t> AssembleSwitch(std::uint64_t entry,
                                         std::uint64_t table_addr,
                                         std::uint64_t* jmp_site,
                                         std::uint64_t targets[4]) {
  std::vector<std::uint8_t> code = {0x83, 0xe7, 0x03};           // and edi,3
  code.push_back(0x48);                                          // movabs rcx
  code.push_back(0xb9);
  for (int i = 0; i < 8; ++i) {
    code.push_back(static_cast<std::uint8_t>(table_addr >> (8 * i)));
  }
  code.insert(code.end(), {0x48, 0x8b, 0x04, 0xf9});             // mov rax,[rcx+rdi*8]
  code.insert(code.end(), {0xff, 0xe0});                         // jmp rax
  *jmp_site = entry + code.size() - 2;
  for (int k = 0; k < 4; ++k) {
    targets[k] = entry + code.size();
    const std::uint32_t value = 11u * static_cast<std::uint32_t>(k + 1);
    code.push_back(0xb8);                                        // mov eax, imm32
    for (int i = 0; i < 4; ++i) {
      code.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
    code.push_back(0xc3);                                        // ret
  }
  return code;
}

TEST(JumpTableTest, ResolvesHandAssembledAbsoluteTable) {
  // The table lives inside the sealed (read+exec) buffer, 8-aligned past the
  // code, so it satisfies the resolver's read-only-mapping requirement
  // exactly like a compiler-emitted .rodata table does.
  auto buffer = CodeBuffer::Allocate(4096);
  ASSERT_TRUE(buffer.has_value());
  const std::uint64_t entry = reinterpret_cast<std::uint64_t>(buffer->data());
  constexpr std::uint64_t kTableOffset = 48;
  const std::uint64_t table_addr = entry + kTableOffset;
  std::uint64_t jmp_site = 0;
  std::uint64_t targets[4] = {};
  std::vector<std::uint8_t> code =
      AssembleSwitch(entry, table_addr, &jmp_site, targets);
  ASSERT_LE(code.size(), kTableOffset);
  code.resize(kTableOffset, 0xcc);  // int3 padding, never reached
  for (int k = 0; k < 4; ++k) {
    for (int i = 0; i < 8; ++i) {
      code.push_back(static_cast<std::uint8_t>(targets[k] >> (8 * i)));
    }
  }
  ASSERT_TRUE(buffer->Append(code).has_value());
  ASSERT_TRUE(buffer->Seal().ok());

  auto resolved = BuildRangeResolvedCfg(entry);
  ASSERT_TRUE(resolved.has_value()) << resolved.error().Format();
  EXPECT_FALSE(resolved->unresolved_indirect);
  ASSERT_EQ(resolved->tables.size(), 1u);
  const JumpTable& table = resolved->tables[0];
  EXPECT_EQ(table.site, jmp_site);
  EXPECT_EQ(table.entry_size, 8);
  EXPECT_FALSE(table.relative);
  EXPECT_EQ(table.table_base, table_addr);
  ASSERT_EQ(table.targets.size(), 4u);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(table.targets[static_cast<std::size_t>(k)], targets[k]);
  }
  // The resolved CFG carries the targets as real edges on the dispatch block.
  const x86::BasicBlock& dispatch = resolved->cfg.entry_block();
  EXPECT_TRUE(dispatch.HasIndirectJump());
  EXPECT_EQ(dispatch.indirect_targets.size(), 4u);

  // End to end: the default-config lifter resolves the same table and the
  // JITed switch agrees with the native code on every index class.
  static lift::Jit jit;
  lift::Lifter lifter;
  auto lifted = lifter.Lift(entry, lift::Signature::Ints(1));
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  auto compiled = lifted->Compile(jit);
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  auto native = reinterpret_cast<long (*)(long)>(entry);
  auto jitted = reinterpret_cast<long (*)(long)>(*compiled);
  for (long a = -9; a <= 9; ++a) {
    EXPECT_EQ(jitted(a), native(a)) << "a=" << a;
  }
}

TEST(JumpTableTest, WritableTableRequiresDeclaredConstRegion) {
  // Same dispatch shape, but the table lives in writable .bss: its bytes
  // could change between analysis and execution, so the resolver must refuse
  // it -- the lifted switch would otherwise bake a stale, exhaustive target
  // set -- unless the caller declares the region constant (the DBrew
  // SetMemRange contract).
  auto buffer = CodeBuffer::Allocate(4096);
  ASSERT_TRUE(buffer.has_value());
  const std::uint64_t entry = reinterpret_cast<std::uint64_t>(buffer->data());
  const std::uint64_t table_addr =
      reinterpret_cast<std::uint64_t>(&g_jump_table[0]);
  std::uint64_t jmp_site = 0;
  std::uint64_t targets[4] = {};
  const std::vector<std::uint8_t> code =
      AssembleSwitch(entry, table_addr, &jmp_site, targets);
  for (int k = 0; k < 4; ++k) g_jump_table[k] = targets[k];
  ASSERT_TRUE(buffer->Append(code).has_value());
  ASSERT_TRUE(buffer->Seal().ok());

  auto unresolved = BuildRangeResolvedCfg(entry);
  ASSERT_TRUE(unresolved.has_value()) << unresolved.error().Format();
  EXPECT_TRUE(unresolved->unresolved_indirect);
  EXPECT_TRUE(unresolved->tables.empty());

  RangeOptions options;
  options.const_regions.push_back(
      ConstRegion{table_addr, sizeof(g_jump_table)});
  auto resolved = BuildRangeResolvedCfg(entry, {}, options);
  ASSERT_TRUE(resolved.has_value()) << resolved.error().Format();
  EXPECT_FALSE(resolved->unresolved_indirect);
  ASSERT_EQ(resolved->tables.size(), 1u);
  EXPECT_EQ(resolved->tables[0].site, jmp_site);
  EXPECT_EQ(resolved->tables[0].targets.size(), 4u);
}

// --- Pointer links between fixed regions -------------------------------------

TEST(FindPointerLinksTest, FindsCrossRegionSlots) {
  alignas(8) std::uint8_t inner[24] = {1, 2, 3};
  alignas(8) std::uint8_t outer[16] = {};
  const std::uint64_t target = reinterpret_cast<std::uint64_t>(inner) + 8;
  std::memcpy(outer + 8, &target, 8);

  const FixedRegion regions[] = {
      {reinterpret_cast<std::uint64_t>(outer), outer},
      {reinterpret_cast<std::uint64_t>(inner), inner},
  };
  const std::vector<PointerLink> links = FindPointerLinks(regions);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].src_region, 0);
  EXPECT_EQ(links[0].src_offset, 8u);
  EXPECT_EQ(links[0].dst_region, 1);
  EXPECT_EQ(links[0].dst_offset, 8u);

  // Without the pointer slot there is nothing to chase.
  std::memset(outer, 0, sizeof(outer));
  EXPECT_TRUE(FindPointerLinks(regions).empty());
}

// --- Auditor -----------------------------------------------------------------

TEST(AuditTest, CorpusIsLiftEligible) {
  for (int i = 0; i < dbll_tests::kIntCorpusSize; ++i) {
    const AuditReport report = AuditFunction(Addr(
        reinterpret_cast<const void*>(dbll_tests::kIntCorpus[i].fn)));
    EXPECT_TRUE(report.lift_eligible()) << dbll_tests::kIntCorpus[i].name;
  }
  for (int i = 0; i < dbll_tests::kFpCorpusSize; ++i) {
    const AuditReport report = AuditFunction(Addr(
        reinterpret_cast<const void*>(dbll_tests::kFpCorpus[i].fn)));
    EXPECT_TRUE(report.lift_eligible()) << dbll_tests::kFpCorpus[i].name;
  }
}

TEST(AuditTest, IndirectCallIsFatal) {
  const AuditReport report =
      AuditFunction(Addr(reinterpret_cast<const void*>(&af_indirect_call)));
  EXPECT_FALSE(report.lift_eligible());
  ASSERT_NE(report.first_fatal(), nullptr);
  EXPECT_EQ(report.first_fatal()->kind, DiagKind::kIndirectCall);
  EXPECT_EQ(report.worst(), Severity::kFatal);
}

TEST(AuditTest, IndirectJumpBufferIsFatal) {
  // jmp rax
  const std::vector<std::uint8_t> code = {0xff, 0xe0};
  const AuditReport report = AuditBuffer(code, 0x1000, 0x1000);
  EXPECT_FALSE(report.lift_eligible());
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_EQ(report.diagnostics[0].kind, DiagKind::kIndirectJump);
}

TEST(AuditTest, SwitchDispatchResolvesJumpTable) {
  // Default options run the value-range analysis: the compiler-generated
  // jump table of c_switch_dispatch resolves, so the function is eligible
  // and the dispatch site is reported informationally.
  const AuditReport report =
      AuditFunction(Addr(reinterpret_cast<const void*>(&c_switch_dispatch)));
  EXPECT_TRUE(report.lift_eligible());
  bool resolved = false;
  for (const Diagnostic& diag : report.diagnostics) {
    if (diag.kind == DiagKind::kIndirectJump &&
        diag.severity == Severity::kInfo) {
      resolved = true;
      EXPECT_NE(diag.message.find("jump table"), std::string::npos);
    }
  }
  EXPECT_TRUE(resolved);
}

TEST(AuditTest, SwitchDispatchFatalWithoutRanges) {
  AuditOptions options;
  options.value_ranges = false;
  const AuditReport report = AuditFunction(
      Addr(reinterpret_cast<const void*>(&c_switch_dispatch)), options);
  EXPECT_FALSE(report.lift_eligible());
  ASSERT_NE(report.first_fatal(), nullptr);
  EXPECT_EQ(report.first_fatal()->kind, DiagKind::kIndirectJump);
}

TEST(AuditTest, TransitiveFatalNamesDeepestCallee) {
  const AuditReport report =
      AuditFunction(Addr(reinterpret_cast<const void*>(&af_calls_bad)));
  EXPECT_FALSE(report.lift_eligible());
  ASSERT_NE(report.first_fatal(), nullptr);
  EXPECT_EQ(report.first_fatal()->kind, DiagKind::kIndirectCall);
  // The diagnostic names the offending callee and its depth in the chain.
  EXPECT_NE(report.first_fatal()->message.find("in callee"), std::string::npos);
  EXPECT_NE(report.first_fatal()->message.find("call depth 1"),
            std::string::npos);
}

TEST(AuditTest, ResourceLimitSurfacesAsFatal) {
  std::vector<std::uint8_t> code(64, 0x90);
  code.push_back(0xc3);
  AuditOptions options;
  options.cfg.max_instructions = 10;
  const AuditReport report = AuditBuffer(code, 0x1000, 0x1000, options);
  EXPECT_FALSE(report.lift_eligible());
  ASSERT_NE(report.first_fatal(), nullptr);
  EXPECT_EQ(report.first_fatal()->kind, DiagKind::kResourceLimit);
}

TEST(AuditTest, CountersAdvance) {
  auto& registry = obs::Registry::Default();
  const std::uint64_t audits = registry.Value("analysis.audits");
  const std::uint64_t fatal = registry.Value("analysis.fatal");
  (void)AuditFunction(Addr(reinterpret_cast<const void*>(&af_indirect_call)));
  EXPECT_EQ(registry.Value("analysis.audits"), audits + 1);
  EXPECT_EQ(registry.Value("analysis.fatal"), fatal + 1);
}

// --- CompileService audit gate ----------------------------------------------

using IntFn1 = long (*)(long);

TEST(AuditGateTest, FatalAuditRoutesToTier1WithoutLlvm) {
  auto& registry = obs::Registry::Default();
  const std::uint64_t fatal_before = registry.Value("analysis.fatal");
  const std::uint64_t lift_ns_before = registry.Value("cache.lift_ns");
  const std::uint64_t compiles_before = registry.Value("cache.compiles");
  const std::uint64_t lifts_before =
      registry.GetHistogram("lift.wall_ns").count();

  runtime::CompileService service;  // audit defaults to on
  runtime::CompileRequest request(Addr(reinterpret_cast<const void*>(
                                      &af_indirect_call)),
                                  lift::Signature::Ints(1));
  runtime::FunctionHandle handle = service.Request(request);
  handle.wait();

  // Served by the DBrew tier, root cause kUnsupported from the audit.
  EXPECT_EQ(handle.tier(), runtime::Tier::kDbrew);
  EXPECT_EQ(handle.error().kind(), ErrorKind::kUnsupported);
  auto fn = handle.as<IntFn1>();
  EXPECT_EQ(fn(5), af_indirect_call(5));
  EXPECT_EQ(fn(-3), af_indirect_call(-3));

  // The audit fired; Tier 0 never ran: the lifter was never invoked (no
  // lift.wall_ns sample) and no compile time/count was booked.
  EXPECT_GT(registry.Value("analysis.fatal"), fatal_before);
  EXPECT_EQ(registry.GetHistogram("lift.wall_ns").count(), lifts_before);
  EXPECT_EQ(registry.Value("cache.lift_ns"), lift_ns_before);
  EXPECT_EQ(registry.Value("cache.compiles"), compiles_before);
}

TEST(AuditGateTest, FatalAuditSeedsNegativeCache) {
  auto& registry = obs::Registry::Default();
  runtime::CompileService service;
  runtime::CompileRequest request(Addr(reinterpret_cast<const void*>(
                                      &af_indirect_call)),
                                  lift::Signature::Ints(1));
  service.Request(request).wait();

  // Clear() drops the table but keeps the negative cache: a re-request
  // goes straight to Tier 1 off the negative entry -- not a second audit.
  service.Clear();
  const std::uint64_t audits_before = registry.Value("analysis.audits");
  const std::uint64_t negative_before =
      registry.Value("fallback.negative_hit");
  runtime::FunctionHandle handle = service.Request(request);
  handle.wait();
  EXPECT_EQ(handle.tier(), runtime::Tier::kDbrew);
  EXPECT_EQ(registry.Value("analysis.audits"), audits_before);
  EXPECT_EQ(registry.Value("fallback.negative_hit"), negative_before + 1);
}

TEST(AuditGateTest, AuditOffRunsTier0AndFails) {
  runtime::CompileService::Options options;
  options.audit = false;
  runtime::CompileService service(options);
  runtime::CompileRequest request(Addr(reinterpret_cast<const void*>(
                                      &af_indirect_call)),
                                  lift::Signature::Ints(1));
  runtime::FunctionHandle handle = service.Request(request);
  handle.wait();
  // Same serving tier, but the root cause now comes from the lifter itself
  // (it ran and rejected the indirect call).
  EXPECT_EQ(handle.tier(), runtime::Tier::kDbrew);
  ASSERT_FALSE(handle.error_chain().empty());
  auto fn = handle.as<IntFn1>();
  EXPECT_EQ(fn(9), af_indirect_call(9));
}

TEST(AuditGateTest, EligibleFunctionStillReachesTier0) {
  runtime::CompileService service;
  runtime::CompileRequest request(Addr(reinterpret_cast<const void*>(
                                      &c_arith_mix)),
                                  lift::Signature::Ints(2));
  runtime::FunctionHandle handle = service.Request(request);
  handle.wait();
  EXPECT_EQ(handle.tier(), runtime::Tier::kLlvm);
  auto fn = handle.as<long (*)(long, long)>();
  EXPECT_EQ(fn(3, 4), c_arith_mix(3, 4));
}

// --- Flag-liveness pruning in the lifter -------------------------------------

lift::Jit& SharedJit() {
  static lift::Jit jit;
  return jit;
}

TEST(FlagPruneTest, ReducesIrOnIntCorpus) {
  // Aggregate over the corpus: pruning must never add instructions, and
  // must remove some overall (nearly every function defines flags nothing
  // reads).
  std::size_t with = 0;
  std::size_t without = 0;
  for (int i = 0; i < dbll_tests::kIntCorpusSize; ++i) {
    const std::uint64_t address = Addr(
        reinterpret_cast<const void*>(dbll_tests::kIntCorpus[i].fn));
    lift::LiftConfig on;
    on.flag_liveness = true;
    lift::LiftConfig off;
    off.flag_liveness = false;
    lift::Lifter lifter_on(on);
    lift::Lifter lifter_off(off);
    auto lifted_on = lifter_on.Lift(address, lift::Signature::Ints(2));
    auto lifted_off = lifter_off.Lift(address, lift::Signature::Ints(2));
    ASSERT_TRUE(lifted_on.has_value()) << dbll_tests::kIntCorpus[i].name;
    ASSERT_TRUE(lifted_off.has_value()) << dbll_tests::kIntCorpus[i].name;
    const std::size_t n_on = lifted_on->IrInstructionCount();
    const std::size_t n_off = lifted_off->IrInstructionCount();
    EXPECT_LE(n_on, n_off) << dbll_tests::kIntCorpus[i].name;
    with += n_on;
    without += n_off;
  }
  EXPECT_LT(with, without);
}

TEST(FlagPruneTest, DifferentialEquivalenceIntCorpus) {
  std::mt19937_64 rng(42);
  for (int i = 0; i < dbll_tests::kIntCorpusSize; ++i) {
    const auto& entry = dbll_tests::kIntCorpus[i];
    lift::LiftConfig pruned;
    pruned.flag_liveness = true;
    lift::LiftConfig unpruned;
    unpruned.flag_liveness = false;
    lift::Lifter lifter_p(pruned);
    lift::Lifter lifter_u(unpruned);
    auto fp = lifter_p.Lift(Addr(reinterpret_cast<const void*>(entry.fn)),
                            lift::Signature::Ints(2));
    auto fu = lifter_u.Lift(Addr(reinterpret_cast<const void*>(entry.fn)),
                            lift::Signature::Ints(2));
    ASSERT_TRUE(fp.has_value()) << entry.name;
    ASSERT_TRUE(fu.has_value()) << entry.name;
    auto cp = fp->Compile(SharedJit());
    auto cu = fu->Compile(SharedJit());
    ASSERT_TRUE(cp.has_value()) << entry.name;
    ASSERT_TRUE(cu.has_value()) << entry.name;
    auto fn_p = reinterpret_cast<long (*)(long, long)>(*cp);
    auto fn_u = reinterpret_cast<long (*)(long, long)>(*cu);
    const long interesting[] = {0, 1, -1, 2, 63, -128, INT32_MAX, INT32_MIN};
    for (long a : interesting) {
      for (long b : interesting) {
        EXPECT_EQ(fn_p(a, b), entry.fn(a, b)) << entry.name;
        EXPECT_EQ(fn_p(a, b), fn_u(a, b)) << entry.name;
      }
    }
    for (int trial = 0; trial < 25; ++trial) {
      const long a = static_cast<long>(rng());
      const long b = static_cast<long>(rng());
      EXPECT_EQ(fn_p(a, b), entry.fn(a, b)) << entry.name;
    }
  }
}

TEST(FlagPruneTest, DifferentialEquivalenceStencilLine) {
  // The Jacobi line kernel from the paper's case study: prune must reduce
  // the pre-O3 IR and keep the numerics bit-identical.
  const std::uint64_t address =
      Addr(reinterpret_cast<const void*>(&stencil::stencil_line_flat));
  const lift::Signature sig =
      lift::Signature::Ints(4, lift::RetKind::kVoid);
  lift::LiftConfig pruned;
  pruned.flag_liveness = true;
  lift::LiftConfig unpruned;
  unpruned.flag_liveness = false;
  lift::Lifter lifter_p(pruned);
  lift::Lifter lifter_u(unpruned);
  auto fp = lifter_p.Lift(address, sig);
  auto fu = lifter_u.Lift(address, sig);
  ASSERT_TRUE(fp.has_value()) << fp.error().Format();
  ASSERT_TRUE(fu.has_value()) << fu.error().Format();
  EXPECT_LT(fp->IrInstructionCount(), fu->IrInstructionCount());

  auto cp = fp->Compile(SharedJit());
  auto cu = fu->Compile(SharedJit());
  ASSERT_TRUE(cp.has_value());
  ASSERT_TRUE(cu.has_value());
  using LineFn = void (*)(const stencil::FlatStencil*, const double*,
                          double*, long);
  auto fn_p = reinterpret_cast<LineFn>(*cp);
  auto fn_u = reinterpret_cast<LineFn>(*cu);

  const long n = stencil::kMatrixSize;
  std::vector<double> m1(static_cast<std::size_t>(n * n));
  for (std::size_t i = 0; i < m1.size(); ++i) {
    m1[i] = std::sin(static_cast<double>(i) * 0.01);
  }
  std::vector<double> out_p(m1.size(), 0.0);
  std::vector<double> out_u(m1.size(), 0.0);
  std::vector<double> out_ref(m1.size(), 0.0);
  for (long row = 1; row < 4; ++row) {
    fn_p(&stencil::FourPointFlat(), m1.data(), out_p.data(), row);
    fn_u(&stencil::FourPointFlat(), m1.data(), out_u.data(), row);
    stencil::stencil_line_flat(&stencil::FourPointFlat(), m1.data(),
                               out_ref.data(), row);
  }
  EXPECT_EQ(out_p, out_ref);
  EXPECT_EQ(out_p, out_u);
}

// --- Range-resolved lifting --------------------------------------------------

TEST(RangeLiftTest, SwitchDispatchTier0Equivalence) {
  // c_switch_dispatch is deliberately NOT in kIntCorpus (the DBrew identity
  // sweeps cannot rewrite its indirect jmp), so its Tier-0 equivalence is
  // checked here: the default-config lifter must resolve the compiler's
  // jump table and the JITed switch must agree with the native code.
  lift::Lifter lifter;
  auto lifted = lifter.Lift(Addr(reinterpret_cast<const void*>(
                                &c_switch_dispatch)),
                            lift::Signature::Ints(2));
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();
  auto compiled = lifted->Compile(SharedJit());
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  auto fn = reinterpret_cast<long (*)(long, long)>(*compiled);
  const long bs[] = {0, 1, -1, 17, -12345, INT32_MAX, INT32_MIN};
  for (long a = -16; a <= 16; ++a) {  // covers every case label twice
    for (long b : bs) {
      EXPECT_EQ(fn(a, b), c_switch_dispatch(a, b)) << "a=" << a << " b=" << b;
    }
  }
}

TEST(RangeLiftTest, RangesOffRejectsSwitchDispatch) {
  lift::LiftConfig config;
  config.value_ranges = false;
  lift::Lifter lifter(config);
  auto lifted = lifter.Lift(Addr(reinterpret_cast<const void*>(
                                &c_switch_dispatch)),
                            lift::Signature::Ints(2));
  ASSERT_FALSE(lifted.has_value());
  // The error keeps the "indirect jump" phrasing the negative cache keys on.
  EXPECT_NE(lifted.error().Format().find("indirect jump"), std::string::npos);
}

// --- DBrew dead-store pruning ------------------------------------------------

TEST(DbrewPruneTest, DeletesOverwrittenConstantStore) {
  // Hand-built emitted block:
  //   mov rax, 1     <- dead: overwritten before any read
  //   add rax, rax   <- dead flags, dead rax: overwritten by the mov below
  //   mov rax, 2     <- live: the ret reads rax
  //   ret
  dbrew::CodeEmitter emitter;
  const int block = emitter.NewBlock();
  auto decode = [](std::initializer_list<std::uint8_t> bytes) {
    auto instr = x86::Decoder::DecodeOne(
        std::vector<std::uint8_t>(bytes), 0x1000);
    EXPECT_TRUE(instr.has_value());
    return *instr;
  };
  emitter.Append(block, decode({0x48, 0xc7, 0xc0, 0x01, 0x00, 0x00, 0x00}));
  emitter.Append(block, decode({0x48, 0x01, 0xc0}));
  emitter.Append(block, decode({0x48, 0xc7, 0xc0, 0x02, 0x00, 0x00, 0x00}));
  emitter.Append(block, decode({0xc3}));
  const std::size_t pruned = dbrew::PruneDeadStores(emitter);
  EXPECT_EQ(pruned, 2u);
  EXPECT_EQ(emitter.TotalEntries(), 2u);
}

TEST(DbrewPruneTest, KeepsStoresAndLiveDefs) {
  //   mov [rdi], rax  <- memory write: never pruned
  //   mov rax, 2      <- live via ret
  //   ret
  dbrew::CodeEmitter emitter;
  const int block = emitter.NewBlock();
  auto decode = [](std::initializer_list<std::uint8_t> bytes) {
    auto instr = x86::Decoder::DecodeOne(
        std::vector<std::uint8_t>(bytes), 0x1000);
    EXPECT_TRUE(instr.has_value());
    return *instr;
  };
  emitter.Append(block, decode({0x48, 0x89, 0x07}));
  emitter.Append(block, decode({0x48, 0xc7, 0xc0, 0x02, 0x00, 0x00, 0x00}));
  emitter.Append(block, decode({0xc3}));
  EXPECT_EQ(dbrew::PruneDeadStores(emitter), 0u);
  EXPECT_EQ(emitter.TotalEntries(), 3u);
}

TEST(DbrewPruneTest, RewriterDifferentialWithAndWithoutPrune) {
  for (int i = 0; i < dbll_tests::kIntCorpusSize; ++i) {
    const auto& entry = dbll_tests::kIntCorpus[i];
    dbrew::Rewriter on(entry.fn);
    on.SetParam(0, 7);
    dbrew::Rewriter off(entry.fn);
    off.SetParam(0, 7);
    off.config().prune_dead_stores = false;
    auto r_on = on.Rewrite();
    auto r_off = off.Rewrite();
    if (!r_on.has_value() || !r_off.has_value()) {
      // Not every corpus function is a DBrew input; but prune must never
      // change *whether* a rewrite succeeds.
      EXPECT_EQ(r_on.has_value(), r_off.has_value()) << entry.name;
      continue;
    }
    auto fn_on = reinterpret_cast<long (*)(long, long)>(*r_on);
    auto fn_off = reinterpret_cast<long (*)(long, long)>(*r_off);
    for (long b : {0L, 1L, -1L, 1000L, -77L}) {
      EXPECT_EQ(fn_on(7, b), entry.fn(7, b)) << entry.name;
      EXPECT_EQ(fn_on(7, b), fn_off(7, b)) << entry.name;
    }
    EXPECT_LE(on.stats().emitted_instrs, off.stats().emitted_instrs)
        << entry.name;
  }
}

// --- C API -------------------------------------------------------------------

TEST(CApiTest, AnalyzeFunctionReportsSeverity) {
  int worst = -1;
  const int count = dbll_analyze_function(
      reinterpret_cast<void*>(&af_indirect_call), &worst);
  EXPECT_GE(count, 1);
  EXPECT_EQ(worst, DBLL_ANALYZE_FATAL);
  EXPECT_NE(dbll_analyze_last_error()[0], '\0');

  worst = -1;
  const int clean = dbll_analyze_function(
      reinterpret_cast<void*>(&c_arith_mix), &worst);
  EXPECT_GE(clean, 0);
  EXPECT_LT(worst, DBLL_ANALYZE_FATAL);
  EXPECT_EQ(dbll_analyze_last_error()[0], '\0');
}

TEST(CApiTest, AnalyzeFunctionRangesFlag) {
  // Default flags: the jump table of c_switch_dispatch resolves.
  int worst = -1;
  EXPECT_GE(dbll_analyze_function_ex(
                reinterpret_cast<void*>(&c_switch_dispatch), 0, &worst),
            1);
  EXPECT_LT(worst, DBLL_ANALYZE_FATAL);
  // DBLL_ANALYZE_NO_RANGES restores the pre-ranges verdict: fatal.
  worst = -1;
  EXPECT_GE(dbll_analyze_function_ex(
                reinterpret_cast<void*>(&c_switch_dispatch),
                DBLL_ANALYZE_NO_RANGES, &worst),
            1);
  EXPECT_EQ(worst, DBLL_ANALYZE_FATAL);
  EXPECT_NE(dbll_analyze_last_error()[0], '\0');
}

TEST(CApiTest, AnalyzeFunctionNullIsAnError) {
  int worst = 99;
  EXPECT_EQ(dbll_analyze_function(nullptr, &worst), -1);
  EXPECT_EQ(worst, DBLL_ANALYZE_INFO);
  EXPECT_NE(dbll_analyze_last_error()[0], '\0');
  // The out-param is optional.
  EXPECT_EQ(dbll_analyze_function(nullptr, nullptr), -1);
}

}  // namespace
}  // namespace dbll::analysis
