// dbll tests -- the static-analysis framework (src/analysis): dataflow
// solver convergence, instruction effect summaries, flag/register liveness,
// the lift-eligibility auditor, the CompileService audit gate, DBrew
// dead-store pruning, and differential equivalence of flag-liveness-pruned
// lifts against unpruned ones.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "analysis_fixtures.h"
#include "corpus.h"
#include "dbll/analysis/audit.h"
#include "dbll/analysis/dataflow.h"
#include "dbll/analysis/liveness.h"
#include "dbll/dbrew/capi.h"
#include "dbll/dbrew/rewriter.h"
#include "dbll/lift/lifter.h"
#include "dbll/obs/obs.h"
#include "dbll/runtime/compile_service.h"
#include "dbll/stencil/stencil.h"
#include "dbll/x86/decoder.h"
#include "dbrew/emitter.h"  // internal: emitter-level prune unit tests

namespace dbll::analysis {
namespace {

std::uint64_t Addr(const void* p) {
  return reinterpret_cast<std::uint64_t>(p);
}

// --- LocSet ------------------------------------------------------------------

TEST(LocSetTest, ClassesAreDisjoint) {
  EXPECT_FALSE(LocSet::AllGp().Intersects(LocSet::AllVec()));
  EXPECT_FALSE(LocSet::AllGp().Intersects(LocSet::AllFlags()));
  EXPECT_FALSE(LocSet::AllVec().Intersects(LocSet::AllFlags()));
  EXPECT_EQ((LocSet::AllGp() | LocSet::AllVec() | LocSet::AllFlags()),
            LocSet::All());
  EXPECT_EQ(LocSet::All().count(), LocSet::kLocCount);
}

TEST(LocSetTest, FlagMaskRoundTrips) {
  for (std::uint8_t mask = 0; mask <= x86::kFlagAll; ++mask) {
    EXPECT_EQ(LocSet::FromFlagMask(mask).FlagMask(), mask);
  }
  // The per-flag constructor and the mask view agree on the bit order.
  EXPECT_EQ(LocSet::FlagLoc(x86::Flag::kZf).FlagMask(), x86::kFlagZ);
  EXPECT_EQ(LocSet::FlagLoc(x86::Flag::kAf).FlagMask(), x86::kFlagA);
}

TEST(LocSetTest, SetAlgebra) {
  const LocSet a = LocSet::Gp(0) | LocSet::Gp(1) | LocSet::Vec(3);
  const LocSet b = LocSet::Gp(1) | LocSet::FlagLoc(x86::Flag::kCf);
  EXPECT_EQ((a & b), LocSet::Gp(1));
  EXPECT_EQ((a - b), (LocSet::Gp(0) | LocSet::Vec(3)));
  EXPECT_TRUE(a.ContainsAll(LocSet::Gp(0)));
  EXPECT_FALSE(a.ContainsAll(b));
  EXPECT_NE(a.ToString().find("xmm3"), std::string::npos);
}

// --- Worklist solver ---------------------------------------------------------

// Diamond: 0 -> {1, 2} -> 3. Backward liveness-style problem.
TEST(SolverTest, DiamondReachesFixpoint) {
  Graph graph;
  graph.succs = {{1, 2}, {3}, {3}, {}};
  graph.preds = {{}, {0}, {0}, {1, 2}};
  // Block 3 reads rax (gen); block 1 overwrites rax (kill); block 2 is
  // pass-through. So rax must be live into blocks 0, 2, 3 but not 1.
  std::vector<Transfer> transfer(4);
  transfer[3].gen = LocSet::Gp(0);
  transfer[1].kill = LocSet::Gp(0);
  const DataflowResult result =
      Solve(Direction::kBackward, graph, transfer, LocSet());
  EXPECT_TRUE(result.in[0].TestGp(0));
  EXPECT_FALSE(result.in[1].TestGp(0));
  EXPECT_TRUE(result.in[2].TestGp(0));
  EXPECT_TRUE(result.in[3].TestGp(0));
  EXPECT_TRUE(result.out[1].TestGp(0));  // live after the kill again
  // An acyclic 4-block graph converges in a handful of pops.
  EXPECT_LE(result.iterations, 8);
}

// Loop: 0 -> 1 <-> 1 -> 2 (self loop on 1).
TEST(SolverTest, LoopConverges) {
  Graph graph;
  graph.succs = {{1}, {1, 2}, {}};
  graph.preds = {{}, {0, 1}, {1}};
  // The loop body reads rdi before overwriting it, and the exit reads rax.
  std::vector<Transfer> transfer(3);
  transfer[1].gen = LocSet::Gp(7);  // rdi
  transfer[1].kill = LocSet::Gp(7);
  transfer[2].gen = LocSet::Gp(0);  // rax
  const DataflowResult result =
      Solve(Direction::kBackward, graph, transfer, LocSet());
  // rdi is live around the back edge; rax is live everywhere before exit.
  EXPECT_TRUE(result.in[1].TestGp(7));
  EXPECT_TRUE(result.out[1].TestGp(7));  // via the back edge
  EXPECT_TRUE(result.in[0].TestGp(7));
  EXPECT_TRUE(result.in[0].TestGp(0));
  // Fixpoint: re-solving changes nothing, and iterations stay bounded by a
  // small multiple of the block count.
  EXPECT_LE(result.iterations, 3 * 4);
}

TEST(SolverTest, ForwardDirectionUsesEntryBoundary) {
  // Forward reaching-style: boundary seeds the entry block.
  Graph graph;
  graph.succs = {{1}, {}};
  graph.preds = {{}, {0}};
  std::vector<Transfer> transfer(2);
  transfer[0].kill = LocSet::Gp(0);
  const DataflowResult result = Solve(Direction::kForward, graph, transfer,
                                      LocSet::Gp(0) | LocSet::Gp(1));
  EXPECT_TRUE(result.in[0].TestGp(0));
  EXPECT_FALSE(result.out[0].TestGp(0));  // killed in block 0
  EXPECT_TRUE(result.out[0].TestGp(1));   // flows through
  EXPECT_FALSE(result.in[1].TestGp(0));
}

// --- Instruction effects -----------------------------------------------------

x86::Instr DecodeBytes(const std::vector<std::uint8_t>& bytes) {
  auto instr = x86::Decoder::DecodeOne(bytes, 0x1000);
  EXPECT_TRUE(instr.has_value()) << instr.error().Format();
  return *instr;
}

TEST(EffectsTest, AddReadsBothKillsDestAndFlags) {
  // add rax, rsi
  const InstrEffects e = EffectsOf(DecodeBytes({0x48, 0x01, 0xf0}));
  EXPECT_TRUE(e.known);
  EXPECT_FALSE(e.writes_memory);
  EXPECT_TRUE(e.uses.TestGp(0));   // rax (read-modify-write)
  EXPECT_TRUE(e.uses.TestGp(6));   // rsi
  EXPECT_TRUE(e.kills.TestGp(0));
  EXPECT_EQ((e.kills & LocSet::AllFlags()), LocSet::AllFlags());
  EXPECT_FALSE(e.uses.Intersects(LocSet::AllFlags()));
}

TEST(EffectsTest, MovDoesNotTouchFlags) {
  // mov rax, rdi
  const InstrEffects e = EffectsOf(DecodeBytes({0x48, 0x89, 0xf8}));
  EXPECT_TRUE(e.kills.TestGp(0));
  EXPECT_TRUE(e.uses.TestGp(7));
  EXPECT_FALSE(e.defs.Intersects(LocSet::AllFlags()));
}

TEST(EffectsTest, JccReadsItsConditionFlags) {
  // je +0
  const InstrEffects e = EffectsOf(DecodeBytes({0x74, 0x00}));
  EXPECT_TRUE(e.uses.TestFlag(x86::Flag::kZf));
  EXPECT_TRUE(e.defs.empty());
}

TEST(EffectsTest, VariableShiftNeverKillsFlags) {
  // shl rax, cl: with cl == 0 the flags survive untouched, so a sound
  // summary must not report them killed (it may report them defined).
  const InstrEffects e = EffectsOf(DecodeBytes({0x48, 0xd3, 0xe0}));
  EXPECT_TRUE(e.uses.TestGp(1));  // rcx
  EXPECT_TRUE(e.uses.TestGp(0));
  EXPECT_FALSE(e.kills.Intersects(LocSet::AllFlags()));
}

TEST(EffectsTest, StoreWritesMemory) {
  // mov [rdi], rax
  const InstrEffects e = EffectsOf(DecodeBytes({0x48, 0x89, 0x07}));
  EXPECT_TRUE(e.writes_memory);
  EXPECT_TRUE(e.uses.TestGp(7));
  EXPECT_TRUE(e.uses.TestGp(0));
}

// --- Flag liveness over real CFGs -------------------------------------------

Liveness LivenessOf(const std::vector<std::uint8_t>& code) {
  auto cfg = x86::BuildCfgFromBuffer(code, 0x1000, 0x1000);
  EXPECT_TRUE(cfg.has_value()) << cfg.error().Format();
  return ComputeLiveness(*cfg);
}

TEST(LivenessTest, CmpFeedingJccKeepsItsFlagLive) {
  //   1000: 48 39 f7   cmp rdi, rsi
  //   1003: 74 02      je 1007
  //   1005: 31 c0      xor eax, eax
  //   1007: c3         ret
  const Liveness live = LivenessOf({0x48, 0x39, 0xf7, 0x74, 0x02, 0x31, 0xc0,
                                    0xc3});
  EXPECT_TRUE(live.LiveFlagsAfter(0x1000) & x86::kFlagZ);
  // After the je nothing reads any flag.
  EXPECT_EQ(live.LiveFlagsAfter(0x1003), 0);
  EXPECT_EQ(live.LiveFlagsAfter(0x1005), 0);
}

TEST(LivenessTest, ArithmeticFlagsDeadWithoutConsumer) {
  //   1000: 48 01 f0   add rax, rsi
  //   1003: 48 01 f8   add rax, rdi
  //   1006: c3         ret
  const Liveness live = LivenessOf({0x48, 0x01, 0xf0, 0x48, 0x01, 0xf8, 0xc3});
  // The second add kills every flag before anything could read the first
  // add's definitions; ret reads no flags.
  EXPECT_EQ(live.LiveFlagsAfter(0x1000), 0);
  EXPECT_EQ(live.LiveFlagsAfter(0x1003), 0);
  // But rax is live throughout (the ret reads the return register).
  EXPECT_TRUE(live.AfterInstr(0x1003).TestGp(0));
}

TEST(LivenessTest, LoopCarriesFlagsAroundBackEdge) {
  //   1000: 31 c0      xor eax, eax
  //   1002: 48 01 f8   add rax, rdi
  //   1005: 48 ff cf   dec rdi
  //   1008: 75 f8      jne 1002
  //   100a: c3         ret
  const Liveness live =
      LivenessOf({0x31, 0xc0, 0x48, 0x01, 0xf8, 0x48, 0xff, 0xcf, 0x75, 0xf8,
                  0xc3});
  // The dec feeds the jne: ZF live after the dec.
  EXPECT_TRUE(live.LiveFlagsAfter(0x1005) & x86::kFlagZ);
  // The add's flags are clobbered by the dec before any read -- dead even
  // inside the loop.
  EXPECT_EQ(live.LiveFlagsAfter(0x1002), 0);
  // Block-entry view: the loop head needs no flag from its predecessors.
  EXPECT_EQ(live.LiveFlagsIn(0x1002), 0);
}

TEST(LivenessTest, UnknownAddressIsConservative) {
  const Liveness live = LivenessOf({0xc3});
  EXPECT_EQ(live.AfterInstr(0xdead), LocSet::All());
  EXPECT_EQ(live.LiveFlagsIn(0xdead), x86::kFlagAll);
}

// --- Auditor -----------------------------------------------------------------

TEST(AuditTest, CorpusIsLiftEligible) {
  for (int i = 0; i < dbll_tests::kIntCorpusSize; ++i) {
    const AuditReport report = AuditFunction(Addr(
        reinterpret_cast<const void*>(dbll_tests::kIntCorpus[i].fn)));
    EXPECT_TRUE(report.lift_eligible()) << dbll_tests::kIntCorpus[i].name;
  }
  for (int i = 0; i < dbll_tests::kFpCorpusSize; ++i) {
    const AuditReport report = AuditFunction(Addr(
        reinterpret_cast<const void*>(dbll_tests::kFpCorpus[i].fn)));
    EXPECT_TRUE(report.lift_eligible()) << dbll_tests::kFpCorpus[i].name;
  }
}

TEST(AuditTest, IndirectCallIsFatal) {
  const AuditReport report =
      AuditFunction(Addr(reinterpret_cast<const void*>(&af_indirect_call)));
  EXPECT_FALSE(report.lift_eligible());
  ASSERT_NE(report.first_fatal(), nullptr);
  EXPECT_EQ(report.first_fatal()->kind, DiagKind::kIndirectCall);
  EXPECT_EQ(report.worst(), Severity::kFatal);
}

TEST(AuditTest, IndirectJumpBufferIsFatal) {
  // jmp rax
  const std::vector<std::uint8_t> code = {0xff, 0xe0};
  const AuditReport report = AuditBuffer(code, 0x1000, 0x1000);
  EXPECT_FALSE(report.lift_eligible());
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_EQ(report.diagnostics[0].kind, DiagKind::kIndirectJump);
}

TEST(AuditTest, ResourceLimitSurfacesAsFatal) {
  std::vector<std::uint8_t> code(64, 0x90);
  code.push_back(0xc3);
  AuditOptions options;
  options.cfg.max_instructions = 10;
  const AuditReport report = AuditBuffer(code, 0x1000, 0x1000, options);
  EXPECT_FALSE(report.lift_eligible());
  ASSERT_NE(report.first_fatal(), nullptr);
  EXPECT_EQ(report.first_fatal()->kind, DiagKind::kResourceLimit);
}

TEST(AuditTest, CountersAdvance) {
  auto& registry = obs::Registry::Default();
  const std::uint64_t audits = registry.Value("analysis.audits");
  const std::uint64_t fatal = registry.Value("analysis.fatal");
  (void)AuditFunction(Addr(reinterpret_cast<const void*>(&af_indirect_call)));
  EXPECT_EQ(registry.Value("analysis.audits"), audits + 1);
  EXPECT_EQ(registry.Value("analysis.fatal"), fatal + 1);
}

// --- CompileService audit gate ----------------------------------------------

using IntFn1 = long (*)(long);

TEST(AuditGateTest, FatalAuditRoutesToTier1WithoutLlvm) {
  auto& registry = obs::Registry::Default();
  const std::uint64_t fatal_before = registry.Value("analysis.fatal");
  const std::uint64_t lift_ns_before = registry.Value("cache.lift_ns");
  const std::uint64_t compiles_before = registry.Value("cache.compiles");
  const std::uint64_t lifts_before =
      registry.GetHistogram("lift.wall_ns").count();

  runtime::CompileService service;  // audit defaults to on
  runtime::CompileRequest request(Addr(reinterpret_cast<const void*>(
                                      &af_indirect_call)),
                                  lift::Signature::Ints(1));
  runtime::FunctionHandle handle = service.Request(request);
  handle.wait();

  // Served by the DBrew tier, root cause kUnsupported from the audit.
  EXPECT_EQ(handle.tier(), runtime::Tier::kDbrew);
  EXPECT_EQ(handle.error().kind(), ErrorKind::kUnsupported);
  auto fn = handle.as<IntFn1>();
  EXPECT_EQ(fn(5), af_indirect_call(5));
  EXPECT_EQ(fn(-3), af_indirect_call(-3));

  // The audit fired; Tier 0 never ran: the lifter was never invoked (no
  // lift.wall_ns sample) and no compile time/count was booked.
  EXPECT_GT(registry.Value("analysis.fatal"), fatal_before);
  EXPECT_EQ(registry.GetHistogram("lift.wall_ns").count(), lifts_before);
  EXPECT_EQ(registry.Value("cache.lift_ns"), lift_ns_before);
  EXPECT_EQ(registry.Value("cache.compiles"), compiles_before);
}

TEST(AuditGateTest, FatalAuditSeedsNegativeCache) {
  auto& registry = obs::Registry::Default();
  runtime::CompileService service;
  runtime::CompileRequest request(Addr(reinterpret_cast<const void*>(
                                      &af_indirect_call)),
                                  lift::Signature::Ints(1));
  service.Request(request).wait();

  // Clear() drops the table but keeps the negative cache: a re-request
  // goes straight to Tier 1 off the negative entry -- not a second audit.
  service.Clear();
  const std::uint64_t audits_before = registry.Value("analysis.audits");
  const std::uint64_t negative_before =
      registry.Value("fallback.negative_hit");
  runtime::FunctionHandle handle = service.Request(request);
  handle.wait();
  EXPECT_EQ(handle.tier(), runtime::Tier::kDbrew);
  EXPECT_EQ(registry.Value("analysis.audits"), audits_before);
  EXPECT_EQ(registry.Value("fallback.negative_hit"), negative_before + 1);
}

TEST(AuditGateTest, AuditOffRunsTier0AndFails) {
  runtime::CompileService::Options options;
  options.audit = false;
  runtime::CompileService service(options);
  runtime::CompileRequest request(Addr(reinterpret_cast<const void*>(
                                      &af_indirect_call)),
                                  lift::Signature::Ints(1));
  runtime::FunctionHandle handle = service.Request(request);
  handle.wait();
  // Same serving tier, but the root cause now comes from the lifter itself
  // (it ran and rejected the indirect call).
  EXPECT_EQ(handle.tier(), runtime::Tier::kDbrew);
  ASSERT_FALSE(handle.error_chain().empty());
  auto fn = handle.as<IntFn1>();
  EXPECT_EQ(fn(9), af_indirect_call(9));
}

TEST(AuditGateTest, EligibleFunctionStillReachesTier0) {
  runtime::CompileService service;
  runtime::CompileRequest request(Addr(reinterpret_cast<const void*>(
                                      &c_arith_mix)),
                                  lift::Signature::Ints(2));
  runtime::FunctionHandle handle = service.Request(request);
  handle.wait();
  EXPECT_EQ(handle.tier(), runtime::Tier::kLlvm);
  auto fn = handle.as<long (*)(long, long)>();
  EXPECT_EQ(fn(3, 4), c_arith_mix(3, 4));
}

// --- Flag-liveness pruning in the lifter -------------------------------------

lift::Jit& SharedJit() {
  static lift::Jit jit;
  return jit;
}

TEST(FlagPruneTest, ReducesIrOnIntCorpus) {
  // Aggregate over the corpus: pruning must never add instructions, and
  // must remove some overall (nearly every function defines flags nothing
  // reads).
  std::size_t with = 0;
  std::size_t without = 0;
  for (int i = 0; i < dbll_tests::kIntCorpusSize; ++i) {
    const std::uint64_t address = Addr(
        reinterpret_cast<const void*>(dbll_tests::kIntCorpus[i].fn));
    lift::LiftConfig on;
    on.flag_liveness = true;
    lift::LiftConfig off;
    off.flag_liveness = false;
    lift::Lifter lifter_on(on);
    lift::Lifter lifter_off(off);
    auto lifted_on = lifter_on.Lift(address, lift::Signature::Ints(2));
    auto lifted_off = lifter_off.Lift(address, lift::Signature::Ints(2));
    ASSERT_TRUE(lifted_on.has_value()) << dbll_tests::kIntCorpus[i].name;
    ASSERT_TRUE(lifted_off.has_value()) << dbll_tests::kIntCorpus[i].name;
    const std::size_t n_on = lifted_on->IrInstructionCount();
    const std::size_t n_off = lifted_off->IrInstructionCount();
    EXPECT_LE(n_on, n_off) << dbll_tests::kIntCorpus[i].name;
    with += n_on;
    without += n_off;
  }
  EXPECT_LT(with, without);
}

TEST(FlagPruneTest, DifferentialEquivalenceIntCorpus) {
  std::mt19937_64 rng(42);
  for (int i = 0; i < dbll_tests::kIntCorpusSize; ++i) {
    const auto& entry = dbll_tests::kIntCorpus[i];
    lift::LiftConfig pruned;
    pruned.flag_liveness = true;
    lift::LiftConfig unpruned;
    unpruned.flag_liveness = false;
    lift::Lifter lifter_p(pruned);
    lift::Lifter lifter_u(unpruned);
    auto fp = lifter_p.Lift(Addr(reinterpret_cast<const void*>(entry.fn)),
                            lift::Signature::Ints(2));
    auto fu = lifter_u.Lift(Addr(reinterpret_cast<const void*>(entry.fn)),
                            lift::Signature::Ints(2));
    ASSERT_TRUE(fp.has_value()) << entry.name;
    ASSERT_TRUE(fu.has_value()) << entry.name;
    auto cp = fp->Compile(SharedJit());
    auto cu = fu->Compile(SharedJit());
    ASSERT_TRUE(cp.has_value()) << entry.name;
    ASSERT_TRUE(cu.has_value()) << entry.name;
    auto fn_p = reinterpret_cast<long (*)(long, long)>(*cp);
    auto fn_u = reinterpret_cast<long (*)(long, long)>(*cu);
    const long interesting[] = {0, 1, -1, 2, 63, -128, INT32_MAX, INT32_MIN};
    for (long a : interesting) {
      for (long b : interesting) {
        EXPECT_EQ(fn_p(a, b), entry.fn(a, b)) << entry.name;
        EXPECT_EQ(fn_p(a, b), fn_u(a, b)) << entry.name;
      }
    }
    for (int trial = 0; trial < 25; ++trial) {
      const long a = static_cast<long>(rng());
      const long b = static_cast<long>(rng());
      EXPECT_EQ(fn_p(a, b), entry.fn(a, b)) << entry.name;
    }
  }
}

TEST(FlagPruneTest, DifferentialEquivalenceStencilLine) {
  // The Jacobi line kernel from the paper's case study: prune must reduce
  // the pre-O3 IR and keep the numerics bit-identical.
  const std::uint64_t address =
      Addr(reinterpret_cast<const void*>(&stencil::stencil_line_flat));
  const lift::Signature sig =
      lift::Signature::Ints(4, lift::RetKind::kVoid);
  lift::LiftConfig pruned;
  pruned.flag_liveness = true;
  lift::LiftConfig unpruned;
  unpruned.flag_liveness = false;
  lift::Lifter lifter_p(pruned);
  lift::Lifter lifter_u(unpruned);
  auto fp = lifter_p.Lift(address, sig);
  auto fu = lifter_u.Lift(address, sig);
  ASSERT_TRUE(fp.has_value()) << fp.error().Format();
  ASSERT_TRUE(fu.has_value()) << fu.error().Format();
  EXPECT_LT(fp->IrInstructionCount(), fu->IrInstructionCount());

  auto cp = fp->Compile(SharedJit());
  auto cu = fu->Compile(SharedJit());
  ASSERT_TRUE(cp.has_value());
  ASSERT_TRUE(cu.has_value());
  using LineFn = void (*)(const stencil::FlatStencil*, const double*,
                          double*, long);
  auto fn_p = reinterpret_cast<LineFn>(*cp);
  auto fn_u = reinterpret_cast<LineFn>(*cu);

  const long n = stencil::kMatrixSize;
  std::vector<double> m1(static_cast<std::size_t>(n * n));
  for (std::size_t i = 0; i < m1.size(); ++i) {
    m1[i] = std::sin(static_cast<double>(i) * 0.01);
  }
  std::vector<double> out_p(m1.size(), 0.0);
  std::vector<double> out_u(m1.size(), 0.0);
  std::vector<double> out_ref(m1.size(), 0.0);
  for (long row = 1; row < 4; ++row) {
    fn_p(&stencil::FourPointFlat(), m1.data(), out_p.data(), row);
    fn_u(&stencil::FourPointFlat(), m1.data(), out_u.data(), row);
    stencil::stencil_line_flat(&stencil::FourPointFlat(), m1.data(),
                               out_ref.data(), row);
  }
  EXPECT_EQ(out_p, out_ref);
  EXPECT_EQ(out_p, out_u);
}

// --- DBrew dead-store pruning ------------------------------------------------

TEST(DbrewPruneTest, DeletesOverwrittenConstantStore) {
  // Hand-built emitted block:
  //   mov rax, 1     <- dead: overwritten before any read
  //   add rax, rax   <- dead flags, dead rax: overwritten by the mov below
  //   mov rax, 2     <- live: the ret reads rax
  //   ret
  dbrew::CodeEmitter emitter;
  const int block = emitter.NewBlock();
  auto decode = [](std::initializer_list<std::uint8_t> bytes) {
    auto instr = x86::Decoder::DecodeOne(
        std::vector<std::uint8_t>(bytes), 0x1000);
    EXPECT_TRUE(instr.has_value());
    return *instr;
  };
  emitter.Append(block, decode({0x48, 0xc7, 0xc0, 0x01, 0x00, 0x00, 0x00}));
  emitter.Append(block, decode({0x48, 0x01, 0xc0}));
  emitter.Append(block, decode({0x48, 0xc7, 0xc0, 0x02, 0x00, 0x00, 0x00}));
  emitter.Append(block, decode({0xc3}));
  const std::size_t pruned = dbrew::PruneDeadStores(emitter);
  EXPECT_EQ(pruned, 2u);
  EXPECT_EQ(emitter.TotalEntries(), 2u);
}

TEST(DbrewPruneTest, KeepsStoresAndLiveDefs) {
  //   mov [rdi], rax  <- memory write: never pruned
  //   mov rax, 2      <- live via ret
  //   ret
  dbrew::CodeEmitter emitter;
  const int block = emitter.NewBlock();
  auto decode = [](std::initializer_list<std::uint8_t> bytes) {
    auto instr = x86::Decoder::DecodeOne(
        std::vector<std::uint8_t>(bytes), 0x1000);
    EXPECT_TRUE(instr.has_value());
    return *instr;
  };
  emitter.Append(block, decode({0x48, 0x89, 0x07}));
  emitter.Append(block, decode({0x48, 0xc7, 0xc0, 0x02, 0x00, 0x00, 0x00}));
  emitter.Append(block, decode({0xc3}));
  EXPECT_EQ(dbrew::PruneDeadStores(emitter), 0u);
  EXPECT_EQ(emitter.TotalEntries(), 3u);
}

TEST(DbrewPruneTest, RewriterDifferentialWithAndWithoutPrune) {
  for (int i = 0; i < dbll_tests::kIntCorpusSize; ++i) {
    const auto& entry = dbll_tests::kIntCorpus[i];
    dbrew::Rewriter on(entry.fn);
    on.SetParam(0, 7);
    dbrew::Rewriter off(entry.fn);
    off.SetParam(0, 7);
    off.config().prune_dead_stores = false;
    auto r_on = on.Rewrite();
    auto r_off = off.Rewrite();
    if (!r_on.has_value() || !r_off.has_value()) {
      // Not every corpus function is a DBrew input; but prune must never
      // change *whether* a rewrite succeeds.
      EXPECT_EQ(r_on.has_value(), r_off.has_value()) << entry.name;
      continue;
    }
    auto fn_on = reinterpret_cast<long (*)(long, long)>(*r_on);
    auto fn_off = reinterpret_cast<long (*)(long, long)>(*r_off);
    for (long b : {0L, 1L, -1L, 1000L, -77L}) {
      EXPECT_EQ(fn_on(7, b), entry.fn(7, b)) << entry.name;
      EXPECT_EQ(fn_on(7, b), fn_off(7, b)) << entry.name;
    }
    EXPECT_LE(on.stats().emitted_instrs, off.stats().emitted_instrs)
        << entry.name;
  }
}

// --- C API -------------------------------------------------------------------

TEST(CApiTest, AnalyzeFunctionReportsSeverity) {
  int worst = -1;
  const int count = dbll_analyze_function(
      reinterpret_cast<void*>(&af_indirect_call), &worst);
  EXPECT_GE(count, 1);
  EXPECT_EQ(worst, DBLL_ANALYZE_FATAL);
  EXPECT_NE(dbll_analyze_last_error()[0], '\0');

  worst = -1;
  const int clean = dbll_analyze_function(
      reinterpret_cast<void*>(&c_arith_mix), &worst);
  EXPECT_GE(clean, 0);
  EXPECT_LT(worst, DBLL_ANALYZE_FATAL);
  EXPECT_EQ(dbll_analyze_last_error()[0], '\0');
}

TEST(CApiTest, AnalyzeFunctionNullIsAnError) {
  int worst = 99;
  EXPECT_EQ(dbll_analyze_function(nullptr, &worst), -1);
  EXPECT_EQ(worst, DBLL_ANALYZE_INFO);
  EXPECT_NE(dbll_analyze_last_error()[0], '\0');
  // The out-param is optional.
  EXPECT_EQ(dbll_analyze_function(nullptr, nullptr), -1);
}

}  // namespace
}  // namespace dbll::analysis
