// dbll tests -- stencil case study: kernel numerics, grid behaviour, and
// cross-kernel consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "dbll/stencil/stencil.h"

namespace dbll::stencil {
namespace {

TEST(StencilDefsTest, FourPointIsNormalized) {
  const FlatStencil& flat = FourPointFlat();
  ASSERT_EQ(flat.point_count, 4);
  double sum = 0.0;
  for (int i = 0; i < flat.point_count; ++i) sum += flat.points[i].factor;
  EXPECT_DOUBLE_EQ(sum, 1.0);

  const SortedStencil& sorted = FourPointSorted();
  ASSERT_EQ(sorted.group_count, 1);
  EXPECT_EQ(sorted.groups[0].point_count, 4);
  EXPECT_DOUBLE_EQ(sorted.groups[0].factor, 0.25);
}

TEST(StencilDefsTest, EightPointIsNormalized) {
  const FlatStencil& flat = EightPointFlat();
  double sum = 0.0;
  for (int i = 0; i < flat.point_count; ++i) sum += flat.points[i].factor;
  EXPECT_NEAR(sum, 1.0, 1e-12);

  const SortedStencil& sorted = EightPointSorted();
  double sorted_sum = 0.0;
  for (int g = 0; g < sorted.group_count; ++g) {
    sorted_sum += sorted.groups[g].factor * sorted.groups[g].point_count;
  }
  EXPECT_NEAR(sorted_sum, 1.0, 1e-12);
}

TEST(KernelTest, FlatMatchesDirectOnSingleElement) {
  std::vector<double> m1(kMatrixSize * kMatrixSize);
  std::vector<double> m2a(m1.size(), 0.0);
  std::vector<double> m2b(m1.size(), 0.0);
  for (std::size_t i = 0; i < m1.size(); ++i) {
    m1[i] = std::sin(static_cast<double>(i));
  }
  const long index = 3 * kMatrixSize + 17;
  stencil_apply_direct(nullptr, m1.data(), m2a.data(), index);
  stencil_apply_flat(&FourPointFlat(), m1.data(), m2b.data(), index);
  EXPECT_DOUBLE_EQ(m2a[index], m2b[index]);
}

TEST(KernelTest, SortedMatchesDirectOnSingleElement) {
  std::vector<double> m1(kMatrixSize * kMatrixSize);
  std::vector<double> m2a(m1.size(), 0.0);
  std::vector<double> m2b(m1.size(), 0.0);
  for (std::size_t i = 0; i < m1.size(); ++i) {
    m1[i] = static_cast<double>((i * 2654435761u) % 1000) / 1000.0;
  }
  const long index = 100 * kMatrixSize + 200;
  stencil_apply_direct(nullptr, m1.data(), m2a.data(), index);
  stencil_apply_sorted(&FourPointSorted(), m1.data(), m2b.data(), index);
  EXPECT_DOUBLE_EQ(m2a[index], m2b[index]);
}

TEST(KernelTest, FlatAndSortedEightPointAgree) {
  std::vector<double> m1(kMatrixSize * kMatrixSize);
  std::vector<double> m2a(m1.size(), 0.0);
  std::vector<double> m2b(m1.size(), 0.0);
  for (std::size_t i = 0; i < m1.size(); ++i) {
    m1[i] = static_cast<double>(i % 97) * 0.125;
  }
  const long index = 7 * kMatrixSize + 9;
  stencil_apply_flat(&EightPointFlat(), m1.data(), m2a.data(), index);
  stencil_apply_sorted(&EightPointSorted(), m1.data(), m2b.data(), index);
  EXPECT_NEAR(m2a[index], m2b[index], 1e-12);
}

TEST(KernelTest, LineKernelsMatchElementSweep) {
  std::vector<double> m1(kMatrixSize * kMatrixSize);
  for (std::size_t i = 0; i < m1.size(); ++i) {
    m1[i] = static_cast<double>(i % 13) - 6.0;
  }
  const long row = 42;

  std::vector<double> by_element(m1.size(), 0.0);
  for (long x = 1; x < kMatrixSize - 1; ++x) {
    stencil_apply_flat(&FourPointFlat(), m1.data(), by_element.data(),
                       row * kMatrixSize + x);
  }

  std::vector<double> by_line(m1.size(), 0.0);
  stencil_line_flat(&FourPointFlat(), m1.data(), by_line.data(), row);
  std::vector<double> by_outlined(m1.size(), 0.0);
  stencil_line_flat_outlined(&FourPointFlat(), m1.data(), by_outlined.data(),
                             row);
  std::vector<double> by_direct(m1.size(), 0.0);
  stencil_line_direct(nullptr, m1.data(), by_direct.data(), row);

  for (long x = 1; x < kMatrixSize - 1; ++x) {
    const long i = row * kMatrixSize + x;
    EXPECT_DOUBLE_EQ(by_line[i], by_element[i]) << "x=" << x;
    EXPECT_DOUBLE_EQ(by_outlined[i], by_element[i]) << "x=" << x;
    EXPECT_DOUBLE_EQ(by_direct[i], by_element[i]) << "x=" << x;
  }
}

// --- JacobiGrid ----------------------------------------------------------------

TEST(JacobiGridTest, ResetSetsBoundary) {
  JacobiGrid grid;
  EXPECT_EQ(grid.size(), kMatrixSize);
  // Peak of the heat source at the middle of the top edge.
  EXPECT_NEAR(grid.front()[kMatrixSize / 2], 1.0, 2.0 / kMatrixSize);
  EXPECT_DOUBLE_EQ(grid.front()[0], 0.0);
  // Interior is zero.
  EXPECT_DOUBLE_EQ(grid.front()[kMatrixSize + 5], 0.0);
}

TEST(JacobiGridTest, IterationConvergesMonotonically) {
  JacobiGrid grid;
  grid.RunElement(reinterpret_cast<ElementKernel>(&stencil_apply_direct),
                  nullptr, 1);
  const double after1 = grid.Checksum();
  grid.RunElement(reinterpret_cast<ElementKernel>(&stencil_apply_direct),
                  nullptr, 9);
  const double after10 = grid.Checksum();
  EXPECT_GT(after1, 0.0);
  EXPECT_GT(after10, after1) << "heat must spread into the interior";
}

TEST(JacobiGridTest, ElementAndLineDriversAgree) {
  JacobiGrid by_element;
  by_element.RunElement(reinterpret_cast<ElementKernel>(&stencil_apply_flat),
                        &FourPointFlat(), 5);
  JacobiGrid by_line;
  by_line.RunLine(reinterpret_cast<LineKernel>(&stencil_line_flat),
                  &FourPointFlat(), 5);
  EXPECT_EQ(by_element.MaxDifference(by_line), 0.0);
}

TEST(JacobiGridTest, AllNativeKernelsAgreeAfterIterations) {
  const int iters = 4;
  JacobiGrid reference;
  reference.RunElement(reinterpret_cast<ElementKernel>(&stencil_apply_direct),
                       nullptr, iters);
  const double want = reference.Checksum();

  struct Case {
    const char* name;
    bool line;
    void* kernel;
    const void* stencil;
  };
  const Case cases[] = {
      {"elem_flat", false, reinterpret_cast<void*>(&stencil_apply_flat),
       &FourPointFlat()},
      {"elem_sorted", false, reinterpret_cast<void*>(&stencil_apply_sorted),
       &FourPointSorted()},
      {"line_flat", true, reinterpret_cast<void*>(&stencil_line_flat),
       &FourPointFlat()},
      {"line_sorted", true, reinterpret_cast<void*>(&stencil_line_sorted),
       &FourPointSorted()},
      {"line_direct", true, reinterpret_cast<void*>(&stencil_line_direct),
       nullptr},
      {"line_flat_outlined", true,
       reinterpret_cast<void*>(&stencil_line_flat_outlined), &FourPointFlat()},
      {"line_sorted_outlined", true,
       reinterpret_cast<void*>(&stencil_line_sorted_outlined),
       &FourPointSorted()},
      {"line_direct_outlined", true,
       reinterpret_cast<void*>(&stencil_line_direct_outlined), nullptr},
  };
  for (const Case& c : cases) {
    JacobiGrid grid;
    if (c.line) {
      grid.RunLine(reinterpret_cast<LineKernel>(c.kernel), c.stencil, iters);
    } else {
      grid.RunElement(reinterpret_cast<ElementKernel>(c.kernel), c.stencil,
                      iters);
    }
    EXPECT_EQ(grid.Checksum(), want) << c.name;
  }
}

TEST(JacobiGridTest, ChecksumIsDeterministic) {
  JacobiGrid a;
  JacobiGrid b;
  a.RunElement(reinterpret_cast<ElementKernel>(&stencil_apply_direct), nullptr,
               3);
  b.RunElement(reinterpret_cast<ElementKernel>(&stencil_apply_direct), nullptr,
               3);
  EXPECT_EQ(a.Checksum(), b.Checksum());
  EXPECT_EQ(a.MaxDifference(b), 0.0);
}

TEST(JacobiGridTest, SmallGridBoundary) {
  // The built-in kernels hard-code the 649 row stride, so a small grid can
  // only be checked structurally (boundary values, zero interior).
  JacobiGrid grid(9);
  EXPECT_EQ(grid.size(), 9);
  EXPECT_NEAR(grid.front()[4], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(grid.front()[9 + 4], 0.0);
  EXPECT_GT(grid.Checksum(), 0.0);
}

}  // namespace
}  // namespace dbll::stencil
