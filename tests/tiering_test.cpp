// dbll tests -- profile-guided tiered recompilation (runtime/tiering.h):
// guard-stub routing, the baseline -> promote -> optimized state machine,
// deoptimization back to the generic entry with re-profiling, the
// no-double-enqueue promotion latch under racing callers, promotion failure
// keeping the baseline, counter survival across Clear(), and the
// dbll_cache_set_tiering / dbll_handle_calls C API.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "corpus.h"
#include "dbll/dbrew/capi.h"
#include "dbll/obs/obs.h"
#include "dbll/runtime/compile_service.h"
#include "dbll/runtime/tiering.h"
#include "dbll/support/fault.h"

namespace dbll::runtime {
namespace {

using IntFn2 = long (*)(long, long);
using IntFn6 = long (*)(long, long, long, long, long, long);

CompileRequest ArithRequest(lift::LiftConfig config = {}) {
  return CompileRequest(reinterpret_cast<std::uint64_t>(&c_arith_mix),
                        lift::Signature::Ints(2), std::move(config));
}

std::uint64_t ObsValue(const char* name) {
  return obs::Registry::Default().Value(name);
}

/// Aggressive policy so tests promote within a few thousand target() fetches.
TieringOptions FastTiering() {
  TieringOptions tiering;
  tiering.enabled = true;
  tiering.hot_threshold = 64;
  tiering.sample_period = 8;
  return tiering;
}

CompileService::Options TieredOptions(const TieringOptions& tiering) {
  CompileService::Options options;
  options.tiering = tiering;
  return options;
}

/// Fetches target() until the handle serves `want` (draining the compile
/// queue periodically so an enqueued promotion can land) or gives up.
bool SpinToTier(CompileService& service, const FunctionHandle& handle,
                Tier want, int spins = 100000) {
  for (int i = 0; i < spins; ++i) {
    (void)handle.target();
    if (handle.tier() == want) return true;
    if ((i & 1023) == 1023) service.WaitIdle();
  }
  service.WaitIdle();
  return handle.tier() == want;
}

class TieringTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::DisarmAll(); }
  void TearDown() override { fault::DisarmAll(); }
};

/// Stand-in entries for the guard-stub unit tests: the stub only jumps, so
/// any SysV function works as a target.
long SpecTarget2(long a, long b) { return 1000000 + a * 100 + b; }
long GenTarget2(long a, long b) { return 2000000 + a * 100 + b; }
long SpecTarget6(long a, long b, long c, long d, long e, long f) {
  return 10 * (a + b + c + d + e) + f;
}
long GenTarget6(long a, long b, long c, long d, long e, long f) {
  return 20 * (a + b + c + d + e) + f;
}

TEST(GuardStubTest, MatchRoutesToSpecializedMismatchCountsAndFallsBack) {
  std::atomic<std::uint64_t> hits{0};
  auto stub = BuildGuardStub({GuardCheck{0, 5}},
                             reinterpret_cast<std::uint64_t>(&SpecTarget2),
                             reinterpret_cast<std::uint64_t>(&GenTarget2),
                             &hits);
  ASSERT_TRUE(stub.has_value()) << stub.error().Format();
  EXPECT_EQ(stub->guards, 1u);
  auto fn = reinterpret_cast<IntFn2>(stub->entry);

  // Match: specialized target sees the original arguments.
  EXPECT_EQ(fn(5, 7), SpecTarget2(5, 7));
  EXPECT_EQ(hits.load(), 0u);

  // Mismatch: generic target, counted, arguments still intact.
  EXPECT_EQ(fn(6, 7), GenTarget2(6, 7));
  EXPECT_EQ(hits.load(), 1u);
  EXPECT_EQ(fn(-1, 3), GenTarget2(-1, 3));
  EXPECT_EQ(hits.load(), 2u);
}

TEST(GuardStubTest, ChecksEveryRegisterIncludingR8R9) {
  // One check per GP argument register exercises both REX encodings
  // (rdi/rsi/rdx/rcx and r8/r9).
  std::atomic<std::uint64_t> hits{0};
  std::vector<GuardCheck> checks;
  for (int i = 0; i < 6; ++i) {
    checks.push_back(GuardCheck{i, static_cast<std::uint64_t>(10 + i)});
  }
  auto stub = BuildGuardStub(checks,
                             reinterpret_cast<std::uint64_t>(&SpecTarget6),
                             reinterpret_cast<std::uint64_t>(&GenTarget6),
                             &hits);
  ASSERT_TRUE(stub.has_value()) << stub.error().Format();
  auto fn = reinterpret_cast<IntFn6>(stub->entry);

  EXPECT_EQ(fn(10, 11, 12, 13, 14, 15), SpecTarget6(10, 11, 12, 13, 14, 15));
  EXPECT_EQ(hits.load(), 0u);
  // Only the last register (r9) wrong: the final check must still catch it.
  EXPECT_EQ(fn(10, 11, 12, 13, 14, 99), GenTarget6(10, 11, 12, 13, 14, 99));
  EXPECT_EQ(hits.load(), 1u);
}

TEST(GuardStubTest, GuardableChecksSkipsConstMemAndStackParams) {
  CompileRequest request(0x1000, lift::Signature::Ints(8));
  request.FixParam(1, 42);
  request.FixParam(7, 9);  // 7th int arg is stack-passed: not guardable
  const std::uint8_t blob[4] = {1, 2, 3, 4};
  request.FixConstMem(0, blob, sizeof blob);  // const-mem: not guardable

  const std::vector<GuardCheck> checks = GuardableChecks(request);
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_EQ(checks[0].gp_index, 1);
  EXPECT_EQ(checks[0].value, 42u);
}

TEST(TieringOptionsTest, ClampNormalizesEveryField) {
  TieringOptions tiering;
  tiering.baseline_opt_level = 7;
  tiering.hot_threshold = 0;
  tiering.sample_period = 9;
  tiering.ewma_alpha = 2.0;
  tiering.min_rate_hz = -1.0;
  tiering.Clamp();
  EXPECT_EQ(tiering.baseline_opt_level, 1);
  EXPECT_EQ(tiering.hot_threshold, 1u);
  EXPECT_EQ(tiering.sample_period, 16u);  // next power of two
  EXPECT_DOUBLE_EQ(tiering.ewma_alpha, 0.3);
  EXPECT_DOUBLE_EQ(tiering.min_rate_hz, 0.0);
}

TEST(TieringOptionsTest, ApplyEnvReadsOverrides) {
  ::setenv("DBLL_TIER", "1", 1);
  ::setenv("DBLL_TIER_THRESHOLD", "123", 1);
  ::setenv("DBLL_TIER_SAMPLE", "32", 1);
  ::setenv("DBLL_TIER_INTERIM", "0", 1);
  TieringOptions tiering;
  tiering.ApplyEnv();
  ::unsetenv("DBLL_TIER");
  ::unsetenv("DBLL_TIER_THRESHOLD");
  ::unsetenv("DBLL_TIER_SAMPLE");
  ::unsetenv("DBLL_TIER_INTERIM");
  EXPECT_TRUE(tiering.enabled);
  EXPECT_EQ(tiering.hot_threshold, 123u);
  EXPECT_EQ(tiering.sample_period, 32u);
  EXPECT_FALSE(tiering.interim);
}

TEST_F(TieringTest, BaselineInstallsThenAutoPromotesToO3) {
  const std::uint64_t crossings_before =
      ObsValue("tiering.threshold_crossings");
  CompileService service(TieredOptions(FastTiering()));
  CompileRequest request = ArithRequest();
  request.FixParam(0, 5);
  FunctionHandle handle = service.Request(request);
  handle.wait();

  // Phase 1: the fast Tier-0a baseline serves, with its cost in the
  // dedicated bucket.
  EXPECT_EQ(handle.state(), FunctionHandle::State::kSpecialized);
  ASSERT_EQ(handle.tier(), Tier::kBaseline);
  EXPECT_GT(handle.times().tier0a_ns, 0u);
  auto fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(5, 7), c_arith_mix(5, 7));

  // Phase 2: calls alone -- no explicit specialize -- promote it to full O3.
  EXPECT_TRUE(SpinToTier(service, handle, Tier::kLlvm));
  EXPECT_EQ(handle.state(), FunctionHandle::State::kSpecialized);
  EXPECT_GE(handle.calls(), FastTiering().hot_threshold);
  EXPECT_GT(ObsValue("tiering.threshold_crossings"), crossings_before);

  const CacheStats stats = service.stats();
  EXPECT_EQ(stats.baseline_installs, 1u);
  EXPECT_EQ(stats.tier0a_compiles, 1u);
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(stats.deopts, 0u);
  EXPECT_GT(stats.stage_total.tier0a_ns, 0u);

  // The promoted code is the same specialization, now at O3.
  fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(5, 7), c_arith_mix(5, 7));
}

TEST_F(TieringTest, RacingThresholdCrossersEnqueueExactlyOnePromotion) {
  TieringOptions tiering = FastTiering();
  tiering.hot_threshold = 512;
  CompileService service(TieredOptions(tiering));
  CompileRequest request = ArithRequest();
  request.FixParam(0, 5);
  FunctionHandle handle = service.Request(request);
  handle.wait();
  ASSERT_EQ(handle.tier(), Tier::kBaseline);

  // Two threads hammer the counter across the threshold simultaneously; the
  // CAS latch must admit exactly one O3 job no matter how the samples race.
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&handle] {
      for (int i = 0; i < 20000; ++i) (void)handle.target();
    });
  }
  for (std::thread& t : threads) t.join();
  service.WaitIdle();

  const CacheStats stats = service.stats();
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(stats.compiles, 1u);  // exactly one full O3 run
  EXPECT_EQ(handle.tier(), Tier::kLlvm);
}

TEST_F(TieringTest, GuardMismatchDeoptimizesToGenericWithCorrectResults) {
  const std::uint64_t deopt_before = ObsValue("cache.deopt");
  TieringOptions tiering = FastTiering();
  tiering.hot_threshold = 1u << 30;  // stay on the baseline; deopt from there
  CompileService service(TieredOptions(tiering));
  CompileRequest request = ArithRequest();
  request.FixParam(0, 5);
  FunctionHandle handle = service.Request(request);
  handle.wait();
  ASSERT_EQ(handle.tier(), Tier::kBaseline);

  // A call with the wrong fixed value can never reach specialized code: the
  // guard routes it to the generic entry, so the result is the true one.
  auto fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(6, 7), c_arith_mix(6, 7));
  EXPECT_EQ(fn(5, 7), c_arith_mix(5, 7));  // matching calls still specialized

  // The next profile samples see the guard miss and commit the demotion.
  for (int i = 0; i < 64 && handle.tier() != Tier::kGeneric; ++i) {
    (void)handle.target();
  }
  EXPECT_EQ(handle.tier(), Tier::kGeneric);
  EXPECT_EQ(handle.deopts(), 1u);
  EXPECT_EQ(service.stats().deopts, 1u);
  EXPECT_EQ(ObsValue("cache.deopt"), deopt_before + 1);

  // Post-deopt the generic entry serves everything, still correct.
  fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(9, 9), c_arith_mix(9, 9));
  EXPECT_EQ(fn(5, 7), c_arith_mix(5, 7));
}

TEST_F(TieringTest, DeoptThenRepromoteReusesTheOptimizedEntry) {
  CompileService service(TieredOptions(FastTiering()));
  CompileRequest request = ArithRequest();
  request.FixParam(0, 5);
  FunctionHandle handle = service.Request(request);
  handle.wait();
  ASSERT_EQ(handle.tier(), Tier::kBaseline);
  ASSERT_TRUE(SpinToTier(service, handle, Tier::kLlvm));
  ASSERT_EQ(service.stats().compiles, 1u);

  // Deopt from the optimized tier.
  auto fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(6, 7), c_arith_mix(6, 7));
  for (int i = 0; i < 64 && handle.tier() != Tier::kGeneric; ++i) {
    (void)handle.target();
  }
  ASSERT_EQ(handle.tier(), Tier::kGeneric);
  EXPECT_EQ(handle.deopts(), 1u);

  // Re-profiling proves the workload hot again: re-promotion swaps the saved
  // optimized entry back in with no second LLVM run.
  EXPECT_TRUE(SpinToTier(service, handle, Tier::kLlvm));
  const CacheStats stats = service.stats();
  EXPECT_EQ(stats.compiles, 1u);  // recompile-free
  EXPECT_EQ(stats.promotions, 2u);
  fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(5, 7), c_arith_mix(5, 7));
}

TEST_F(TieringTest, ExhaustedDeoptBudgetPinsTheGenericEntry) {
  TieringOptions tiering = FastTiering();
  tiering.hot_threshold = 32;
  tiering.max_deopts = 0;  // the first deopt already exhausts the budget
  CompileService service(TieredOptions(tiering));
  CompileRequest request = ArithRequest();
  request.FixParam(0, 5);
  FunctionHandle handle = service.Request(request);
  handle.wait();
  ASSERT_EQ(handle.tier(), Tier::kBaseline);

  auto fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(6, 7), c_arith_mix(6, 7));
  for (int i = 0; i < 64 && handle.tier() != Tier::kGeneric; ++i) {
    (void)handle.target();
  }
  ASSERT_EQ(handle.tier(), Tier::kGeneric);

  // Pinned: no amount of further traffic may promote (or thrash) again.
  for (int i = 0; i < 5000; ++i) (void)handle.target();
  service.WaitIdle();
  EXPECT_EQ(handle.tier(), Tier::kGeneric);
  EXPECT_EQ(service.stats().promotions, 0u);
}

TEST_F(TieringTest, FailedPromotionKeepsTheBaselineServing) {
  CompileService service(TieredOptions(FastTiering()));
  CompileRequest request = ArithRequest();
  request.FixParam(0, 5);
  FunctionHandle handle = service.Request(request);
  handle.wait();
  ASSERT_EQ(handle.tier(), Tier::kBaseline);
  service.WaitIdle();

  // Arm after the baseline landed: only the promotion's O3 run faults.
  fault::Arm("jit.compile", {ErrorKind::kJit});
  for (int i = 0; i < 10000; ++i) (void)handle.target();
  service.WaitIdle();
  fault::DisarmAll();

  // A working slower entry beats thrashing: the baseline keeps serving and
  // the failure is recorded on the handle and the service.
  EXPECT_EQ(handle.state(), FunctionHandle::State::kSpecialized);
  EXPECT_EQ(handle.tier(), Tier::kBaseline);
  const CacheStats stats = service.stats();
  EXPECT_EQ(stats.promotions, 0u);
  EXPECT_GE(stats.promote_failures, 1u);
  EXPECT_FALSE(handle.error_chain().empty());
  EXPECT_EQ(service.last_error().kind(), ErrorKind::kJit);
  auto fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(5, 7), c_arith_mix(5, 7));
}

TEST_F(TieringTest, CallCountersSurviveClear) {
  TieringOptions tiering = FastTiering();
  tiering.hot_threshold = 1u << 30;  // pure counting, no promotion
  CompileService service(TieredOptions(tiering));
  CompileRequest request = ArithRequest();
  request.FixParam(0, 5);
  FunctionHandle handle = service.Request(request);
  handle.wait();
  ASSERT_EQ(handle.tier(), Tier::kBaseline);

  for (int i = 0; i < 1000; ++i) (void)handle.target();
  const std::uint64_t before = handle.calls();
  EXPECT_GE(before, 1000u);

  // Clear() drops the memo table; the profile lives on the handle's slot, so
  // the hotness signal -- part of the handle's identity -- persists.
  service.Clear();
  EXPECT_GE(handle.calls(), before);
  for (int i = 0; i < 100; ++i) (void)handle.target();
  EXPECT_GE(handle.calls(), before + 100);

  // And the installed baseline keeps serving.
  EXPECT_EQ(handle.tier(), Tier::kBaseline);
  auto fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(5, 7), c_arith_mix(5, 7));
}

TEST_F(TieringTest, InterimSeedRefinesToLlvmBaselineInPlace) {
  TieringOptions tiering = FastTiering();
  tiering.hot_threshold = 1u << 30;  // no promotion: isolate the refine path
  CompileService service(TieredOptions(tiering));
  CompileRequest request = ArithRequest();
  request.FixParam(0, 5);
  FunctionHandle handle = service.Request(request);
  handle.wait();

  // wait() returns on the first Tier-0a install (usually the DBrew seed,
  // possibly already the LLVM body on a slow caller); either way the tier
  // and the results are the baseline contract.
  EXPECT_EQ(handle.state(), FunctionHandle::State::kSpecialized);
  EXPECT_EQ(handle.tier(), Tier::kBaseline);
  auto fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(5, 7), c_arith_mix(5, 7));

  // After the queue drains the LLVM body has replaced the seed in place:
  // same tier, both stage buckets accounted, exactly one install of each.
  service.WaitIdle();
  EXPECT_EQ(handle.tier(), Tier::kBaseline);
  EXPECT_EQ(fn(5, 7), c_arith_mix(5, 7));
  const CacheStats stats = service.stats();
  EXPECT_EQ(stats.interim_installs, 1u);
  EXPECT_EQ(stats.baseline_installs, 1u);
  EXPECT_EQ(stats.tier0a_compiles, 1u);
  EXPECT_GT(stats.stage_total.tier0a_ns, 0u);
  EXPECT_GT(handle.times().tier0a_ns, 0u);
}

TEST_F(TieringTest, LlvmBaselineFailureKeepsInterimServingAndPromotes) {
  // Every LLVM compile faults; the DBrew seed does not go through the JIT,
  // so the interim must install, survive the baseline failure, and still
  // feed the promotion ladder once the fault clears.
  fault::Arm("jit.compile", {ErrorKind::kJit});
  CompileService service(TieredOptions(FastTiering()));
  CompileRequest request = ArithRequest();
  request.FixParam(0, 5);
  FunctionHandle handle = service.Request(request);
  handle.wait();
  ASSERT_EQ(handle.tier(), Tier::kBaseline);
  auto fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(5, 7), c_arith_mix(5, 7));

  service.WaitIdle();  // the LLVM baseline attempt has failed by now
  EXPECT_EQ(handle.tier(), Tier::kBaseline);  // seed keeps serving
  EXPECT_EQ(fn(5, 7), c_arith_mix(5, 7));
  const CacheStats stats = service.stats();
  EXPECT_EQ(stats.interim_installs, 1u);
  EXPECT_EQ(stats.tier0a_compiles, 1u);
  EXPECT_GE(stats.tier0_failures, 1u);
  EXPECT_FALSE(handle.error_chain().empty());
  EXPECT_EQ(service.last_error().kind(), ErrorKind::kJit);

  // The ladder stayed open: once compiles work again, hotness still earns
  // the full O3 promotion straight from the seed.
  fault::DisarmAll();
  EXPECT_TRUE(SpinToTier(service, handle, Tier::kLlvm));
  fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(5, 7), c_arith_mix(5, 7));
}

TEST_F(TieringTest, InterimDisabledBlocksUntilLlvmBaseline) {
  TieringOptions tiering = FastTiering();
  tiering.interim = false;
  tiering.hot_threshold = 1u << 30;
  CompileService service(TieredOptions(tiering));
  CompileRequest request = ArithRequest();
  request.FixParam(0, 5);
  FunctionHandle handle = service.Request(request);
  handle.wait();

  // Pre-interim behaviour: the first install is the LLVM baseline itself.
  EXPECT_EQ(handle.tier(), Tier::kBaseline);
  service.WaitIdle();  // install counters land after Finish() wakes wait()
  const CacheStats stats = service.stats();
  EXPECT_EQ(stats.interim_installs, 0u);
  EXPECT_EQ(stats.baseline_installs, 1u);
  EXPECT_EQ(stats.tier0a_compiles, 1u);
  auto fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(5, 7), c_arith_mix(5, 7));
}

TEST_F(TieringTest, UntieredServiceKeepsClassicBehaviour) {
  CompileService service;  // tiering off by default
  CompileRequest request = ArithRequest();
  request.FixParam(0, 5);
  FunctionHandle handle = service.Request(request);
  handle.wait();
  EXPECT_EQ(handle.tier(), Tier::kLlvm);  // straight to O3, no baseline
  EXPECT_EQ(handle.calls(), 0u);          // no counter on untiered handles
  EXPECT_EQ(service.stats().baseline_installs, 0u);
}

TEST_F(TieringTest, CApiTieredRequestPromotesAndExposesCounters) {
  dbll_cache* cache = dbll_cache_new(2, 64);
  dbll_cache_set_tiering(cache, 1, 32);
  dbll_cache_req* req =
      dbll_cache_request(cache, reinterpret_cast<void*>(&c_arith_mix), 2, 1);
  dbll_cache_req_setpar(req, 1, 5);  // 1-based

  dbll_cache_wait(req);
  EXPECT_EQ(dbll_handle_tier(req), 3);  // Tier-0a baseline
  auto fn = reinterpret_cast<IntFn2>(dbll_cache_call_target(req));
  EXPECT_EQ(fn(5, 7), c_arith_mix(5, 7));

  for (int i = 0; i < 20000; ++i) (void)dbll_cache_call_target(req);
  dbll_cache_wait_idle(cache);
  EXPECT_EQ(dbll_handle_tier(req), 0);  // promoted to full O3
  EXPECT_GE(dbll_handle_calls(req), 32u);
  EXPECT_EQ(dbll_handle_deopts(req), 0u);
  EXPECT_EQ(dbll_cache_stat_baseline_installs(cache), 1u);
  EXPECT_EQ(dbll_cache_stat_promotions(cache), 1u);
  EXPECT_EQ(dbll_cache_stat_deopts(cache), 0u);
  EXPECT_GT(dbll_cache_stat_tier0a_ns(cache), 0u);

  dbll_cache_req_free(req);
  dbll_cache_free(cache);
}

}  // namespace
}  // namespace dbll::runtime
