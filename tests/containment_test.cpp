// dbll tests -- crash containment (containment.h + support/crashguard.h):
// signal-guarded frames around deliberately-faulting hand-assembled entries,
// probation execution (catch -> Tier-2 answer -> demotion), the per-key
// circuit breaker's open/half-open/close cycle, poisoned-fingerprint
// quarantine persistence across a CompileService restart, and an 8-thread
// fault storm through one guard. The real-signal tests raise genuine
// SIGSEGV/SIGILL inside guarded windows; scripts/check.sh re-runs this
// binary under ASan with handle_segv=0 so the crash guard (not the
// sanitizer) owns the guarded signals. Service-level tests use the
// synthetic `exec.probation` fault site, which exercises the identical
// demote/quarantine/breaker plumbing without raising a signal.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "corpus.h"
#include "dbll/runtime/compile_service.h"
#include "dbll/runtime/containment.h"
#include "dbll/runtime/object_store.h"
#include "dbll/support/code_buffer.h"
#include "dbll/support/crashguard.h"
#include "dbll/support/fault.h"

namespace dbll::runtime {
namespace {

using IntFn2 = long (*)(long, long);

/// The Tier-2 stand-in a poisoned probation must serve the caller from.
extern "C" long contain_fallback(long a, long b) { return a * 100 + b; }

/// Hand-assembles a tiny entry from raw bytes and leaks the buffer (tests
/// only; the entries must stay callable for the process lifetime because
/// guards park no ownership of them).
std::uint64_t AssembleEntry(std::initializer_list<std::uint8_t> bytes) {
  auto* buffer = new CodeBuffer();
  auto allocated = CodeBuffer::Allocate(bytes.size());
  EXPECT_TRUE(allocated.has_value());
  *buffer = std::move(allocated.value());
  auto base = buffer->Append(std::vector<std::uint8_t>(bytes));
  EXPECT_TRUE(base.has_value());
  EXPECT_TRUE(buffer->Seal().ok());
  return reinterpret_cast<std::uint64_t>(*base);
}

/// lea rax, [rdi+rsi]; ret -- a well-behaved 2-arg entry.
std::uint64_t AddEntry() {
  return AssembleEntry({0x48, 0x8D, 0x04, 0x37, 0xC3});
}

/// ud2 -- faults with SIGILL at its own first byte.
std::uint64_t Ud2Entry() { return AssembleEntry({0x0F, 0x0B}); }

/// mov qword [0], 42; ret -- faults with SIGSEGV on the null write.
std::uint64_t NullWriteEntry() {
  return AssembleEntry({0x48, 0xC7, 0x04, 0x25, 0x00, 0x00, 0x00, 0x00, 0x2A,
                        0x00, 0x00, 0x00, 0xC3});
}

class ContainmentTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::DisarmAll(); }
  void TearDown() override { fault::DisarmAll(); }
};

// --- GuardFrame: the signal-recovery primitive ------------------------------

TEST_F(ContainmentTest, GuardFrameCatchesSigillFromHandAssembledEntry) {
  ASSERT_TRUE(support::InstallCrashGuard());
  ASSERT_TRUE(support::CrashGuardInstalled());
  const std::uint64_t before = support::CrashGuardRecoveredFaults();
  const std::uint64_t entry = Ud2Entry();

  bool caught = false;
  support::GuardFrame frame;
  if (sigsetjmp(frame.jump_buffer(), 1) == 0) {
    frame.Arm();
    reinterpret_cast<void (*)()>(entry)();
    frame.Disarm();
  } else {
    caught = true;
  }
  ASSERT_TRUE(caught) << "ud2 returned?";
  EXPECT_EQ(frame.fault().signo, SIGILL);
  EXPECT_EQ(frame.fault().fault_pc, entry);  // the ud2 itself
  EXPECT_EQ(support::CrashGuardRecoveredFaults(), before + 1);
}

TEST_F(ContainmentTest, GuardFrameCatchesSegvAndInnerFrameWins) {
  ASSERT_TRUE(support::InstallCrashGuard());
  const std::uint64_t entry = NullWriteEntry();

  // Nested frames: the fault must land in the innermost *armed* frame; the
  // outer frame stays live and usable afterwards.
  int outer_hits = 0, inner_hits = 0;
  support::GuardFrame outer;
  if (sigsetjmp(outer.jump_buffer(), 1) == 0) {
    outer.Arm();
    support::GuardFrame inner;
    if (sigsetjmp(inner.jump_buffer(), 1) == 0) {
      inner.Arm();
      reinterpret_cast<void (*)()>(entry)();
      inner.Disarm();
    } else {
      ++inner_hits;
      EXPECT_EQ(inner.fault().signo, SIGSEGV);
      EXPECT_EQ(inner.fault().fault_addr, 0u);  // the null write
    }
    outer.Disarm();
  } else {
    ++outer_hits;
  }
  EXPECT_EQ(inner_hits, 1);
  EXPECT_EQ(outer_hits, 0);
}

TEST_F(ContainmentTest, GuardSignalNamesAreStable) {
  EXPECT_STREQ(support::GuardSignalName(SIGSEGV), "SIGSEGV");
  EXPECT_STREQ(support::GuardSignalName(SIGILL), "SIGILL");
  EXPECT_STREQ(support::GuardSignalName(SIGBUS), "SIGBUS");
  EXPECT_STREQ(support::GuardSignalName(SIGFPE), "SIGFPE");
}

// --- ProbationGuard ---------------------------------------------------------

TEST_F(ContainmentTest, CleanProbationFiresOnCleanExactlyOnceThenKeepsServing) {
  std::atomic<int> clean_fired{0};
  std::atomic<int> fault_fired{0};
  ProbationGuard::Hooks hooks;
  hooks.on_clean = [&] { clean_fired.fetch_add(1); };
  hooks.on_fault = [&](const support::FaultInfo&) { fault_fired.fetch_add(1); };
  auto guard = ProbationGuard::Create(AddEntry(), /*fallback_entry=*/
                                      reinterpret_cast<std::uint64_t>(
                                          &contain_fallback),
                                      /*probation_calls=*/3, std::move(hooks));
  ASSERT_TRUE(guard.has_value()) << guard.error().Format();

  auto fn = reinterpret_cast<IntFn2>((*guard)->stub_entry());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fn(40, 2), 42);  // guarded while probing, raw after
  }
  EXPECT_EQ(clean_fired.load(), 1);
  EXPECT_EQ(fault_fired.load(), 0);
  EXPECT_TRUE((*guard)->completed());
  EXPECT_FALSE((*guard)->poisoned());
  EXPECT_GE((*guard)->clean_calls(), 3u);
}

TEST_F(ContainmentTest, FaultingEntryIsCaughtAndServedFromTier2) {
  std::atomic<int> fault_fired{0};
  support::FaultInfo seen;
  ProbationGuard::Hooks hooks;
  hooks.on_fault = [&](const support::FaultInfo& info) {
    fault_fired.fetch_add(1);
    seen = info;
  };
  const std::uint64_t entry = Ud2Entry();
  auto guard = ProbationGuard::Create(
      entry, reinterpret_cast<std::uint64_t>(&contain_fallback), 8,
      std::move(hooks));
  ASSERT_TRUE(guard.has_value()) << guard.error().Format();

  // First call: the SIGILL is caught inside the guarded window and the
  // caller is served the Tier-2 answer. Later calls skip the dead entry.
  auto fn = reinterpret_cast<IntFn2>((*guard)->stub_entry());
  EXPECT_EQ(fn(4, 2), contain_fallback(4, 2));
  EXPECT_EQ(fault_fired.load(), 1);
  EXPECT_TRUE((*guard)->poisoned());
  EXPECT_EQ(seen.signo, SIGILL);
  EXPECT_EQ(seen.fault_pc, entry);
  EXPECT_EQ(fn(7, 9), contain_fallback(7, 9));
  EXPECT_EQ(fault_fired.load(), 1);  // recovery ran exactly once
}

TEST_F(ContainmentTest, SegvEntryIsCaughtToo) {
  ProbationGuard::Hooks hooks;
  auto guard = ProbationGuard::Create(
      NullWriteEntry(), reinterpret_cast<std::uint64_t>(&contain_fallback), 1,
      std::move(hooks));
  ASSERT_TRUE(guard.has_value());
  auto fn = reinterpret_cast<IntFn2>((*guard)->stub_entry());
  EXPECT_EQ(fn(1, 2), contain_fallback(1, 2));
  EXPECT_TRUE((*guard)->poisoned());
  EXPECT_EQ((*guard)->fault_info().signo, SIGSEGV);
}

TEST_F(ContainmentTest, SyntheticProbationFaultNeedsNoSignal) {
  std::atomic<int> fault_fired{0};
  ProbationGuard::Hooks hooks;
  hooks.on_fault = [&](const support::FaultInfo& info) {
    fault_fired.fetch_add(1);
    EXPECT_EQ(info.signo, 0);  // marks the injected (synthetic) fault
  };
  auto guard = ProbationGuard::Create(
      AddEntry(), reinterpret_cast<std::uint64_t>(&contain_fallback), 8,
      std::move(hooks));
  ASSERT_TRUE(guard.has_value());
  fault::Arm("exec.probation", {ErrorKind::kInternal});
  auto fn = reinterpret_cast<IntFn2>((*guard)->stub_entry());
  EXPECT_EQ(fn(4, 2), contain_fallback(4, 2));  // entry never ran
  EXPECT_EQ(fault_fired.load(), 1);
  EXPECT_TRUE((*guard)->poisoned());
}

TEST_F(ContainmentTest, EightThreadFaultStormRecoversExactlyOnce) {
  // 8 threads hammer one guard whose entry always faults. Every caller on
  // every thread must get the Tier-2 answer; the recovery hook must run
  // exactly once; nothing may crash. (check.sh re-runs this under ASan.)
  std::atomic<int> fault_fired{0};
  ProbationGuard::Hooks hooks;
  hooks.on_fault = [&](const support::FaultInfo&) { fault_fired.fetch_add(1); };
  auto guard = ProbationGuard::Create(
      Ud2Entry(), reinterpret_cast<std::uint64_t>(&contain_fallback),
      /*probation_calls=*/1000000, std::move(hooks));
  ASSERT_TRUE(guard.has_value());
  auto fn = reinterpret_cast<IntFn2>((*guard)->stub_entry());

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 200;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        const long a = t * 1000 + i;
        if (fn(a, 7) != contain_fallback(a, 7)) wrong.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(fault_fired.load(), 1);
  EXPECT_TRUE((*guard)->poisoned());
}

// --- BreakerBoard -----------------------------------------------------------

constexpr std::uint64_t kMs = 1'000'000ull;  // ns per ms, for fake clocks

TEST_F(ContainmentTest, BreakerOpensHalfOpensAndCloses) {
  BreakerBoard board(/*threshold=*/2, /*cooldown_ms=*/10, /*capacity=*/16);
  const std::string key = "spec-key";

  // Closed: unknown keys and sub-threshold faults allow compiles.
  EXPECT_EQ(board.Check(key, 0), BreakerBoard::Decision::kAllow);
  board.OnFault(key, 1 * kMs);
  EXPECT_EQ(board.StateOf(key, 1 * kMs), BreakerState::kClosed);
  EXPECT_EQ(board.Check(key, 1 * kMs), BreakerBoard::Decision::kAllow);

  // Threshold fault: open. Inside the cooldown everything is denied.
  board.OnFault(key, 2 * kMs);
  EXPECT_EQ(board.StateOf(key, 2 * kMs), BreakerState::kOpen);
  EXPECT_EQ(board.Check(key, 3 * kMs), BreakerBoard::Decision::kDeny);
  EXPECT_EQ(board.Check(key, 11 * kMs), BreakerBoard::Decision::kDeny);

  // Cooldown elapsed: exactly one half-open probe; concurrent requests are
  // still denied while the probe is in flight.
  EXPECT_EQ(board.Check(key, 12 * kMs), BreakerBoard::Decision::kProbe);
  EXPECT_EQ(board.StateOf(key, 12 * kMs), BreakerState::kHalfOpen);
  EXPECT_EQ(board.Check(key, 12 * kMs), BreakerBoard::Decision::kDeny);

  // Clean probation: closed again, fault count reset.
  board.OnSuccess(key);
  EXPECT_EQ(board.StateOf(key, 13 * kMs), BreakerState::kClosed);
  EXPECT_EQ(board.Check(key, 13 * kMs), BreakerBoard::Decision::kAllow);
  board.OnFault(key, 14 * kMs);  // one fault < threshold after the reset
  EXPECT_EQ(board.Check(key, 14 * kMs), BreakerBoard::Decision::kAllow);

  const BreakerBoard::Stats stats = board.stats();
  EXPECT_EQ(stats.opens, 1u);
  EXPECT_EQ(stats.closes, 1u);
  EXPECT_EQ(stats.probes, 1u);
  EXPECT_EQ(stats.denials, 3u);
  EXPECT_EQ(stats.tracked, 1u);
}

TEST_F(ContainmentTest, FailedProbeReopensImmediately) {
  BreakerBoard board(1, 10, 16);
  const std::string key = "k";
  board.OnFault(key, 0);
  EXPECT_EQ(board.Check(key, 11 * kMs), BreakerBoard::Decision::kProbe);
  board.OnFault(key, 12 * kMs);  // the probe crashed too
  EXPECT_EQ(board.StateOf(key, 12 * kMs), BreakerState::kOpen);
  // The re-open restarts the cooldown from the probe fault.
  EXPECT_EQ(board.Check(key, 13 * kMs), BreakerBoard::Decision::kDeny);
  EXPECT_EQ(board.Check(key, 23 * kMs), BreakerBoard::Decision::kProbe);
  EXPECT_EQ(board.stats().opens, 2u);
}

TEST_F(ContainmentTest, BreakerCapacityEvictsOldestTrackedKey) {
  BreakerBoard board(1, 10, /*capacity=*/16);  // 16 is the clamped minimum
  for (int i = 0; i < 20; ++i) {
    board.OnFault("key-" + std::to_string(i), 0);
  }
  EXPECT_EQ(board.stats().tracked, 16u);
  // The oldest keys were dropped: their breakers read closed again.
  EXPECT_EQ(board.StateOf("key-0", 0), BreakerState::kClosed);
  EXPECT_EQ(board.StateOf("key-19", 0), BreakerState::kOpen);
}

// --- Quarantine -------------------------------------------------------------

class QuarantineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DisarmAll();
    char tmpl[] = "/tmp/dbll_containment_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    fault::DisarmAll();
    (void)ObjectStore::Purge(dir_);
    (void)Quarantine::Clear(dir_);
    ::rmdir(dir_.c_str());
  }

  std::string dir_;
};

TEST_F(QuarantineTest, AddPersistsAcrossInstancesAndIsIdempotent) {
  {
    Quarantine q(dir_);
    EXPECT_FALSE(q.Contains(0x1111));
    ASSERT_TRUE(q.Add(0x1111, "bad apple").ok());
    ASSERT_TRUE(q.Add(0x1111, "bad apple").ok());  // idempotent
    ASSERT_TRUE(q.Add(0x2222, "worse apple").ok());
    EXPECT_TRUE(q.Contains(0x1111));
    EXPECT_EQ(q.size(), 2u);
  }
  Quarantine reloaded(dir_);  // a peer restart picks the sidecar up
  EXPECT_TRUE(reloaded.Contains(0x1111));
  EXPECT_TRUE(reloaded.Contains(0x2222));
  EXPECT_EQ(reloaded.size(), 2u);
  const std::vector<Quarantine::Record> records = reloaded.List();
  ASSERT_EQ(records.size(), 2u);

  auto read = Quarantine::ReadDir(dir_);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->size(), 2u);
  auto cleared = Quarantine::Clear(dir_);
  ASSERT_TRUE(cleared.has_value());
  EXPECT_EQ(*cleared, 2u);
  EXPECT_FALSE(Quarantine(dir_).Contains(0x1111));
}

TEST_F(QuarantineTest, RefreshMergesPeerRecords) {
  Quarantine mine(dir_);
  ASSERT_TRUE(mine.Add(0xaaaa, "local").ok());
  Quarantine peer(dir_);  // another process over the same directory
  ASSERT_TRUE(peer.Add(0xbbbb, "remote").ok());
  EXPECT_FALSE(mine.Contains(0xbbbb));  // not yet seen
  ASSERT_TRUE(mine.Refresh().ok());
  EXPECT_TRUE(mine.Contains(0xbbbb));
  EXPECT_TRUE(mine.Contains(0xaaaa));  // merge, not replace
}

TEST_F(QuarantineTest, InjectedSidecarFaultKeepsInProcessProtection) {
  Quarantine q(dir_);
  fault::Arm("objcache.quarantine", {ErrorKind::kIo});
  const Status added = q.Add(0x3333, "doomed write");
  EXPECT_FALSE(added.ok());        // the I/O failure is reported...
  EXPECT_TRUE(q.Contains(0x3333));  // ...but this process stays protected
  fault::DisarmAll();
  EXPECT_FALSE(Quarantine(dir_).Contains(0x3333));  // sidecar never written
}

// --- CompileService integration ---------------------------------------------

CompileRequest ArithRequest() {
  CompileRequest request(reinterpret_cast<std::uint64_t>(&c_arith_mix),
                         lift::Signature::Ints(2));
  request.FixParam(0, 5);
  return request;
}

TEST_F(QuarantineTest, ServiceProbationFaultDemotesAndServesTier2) {
  CompileService::Options options;
  options.containment.enabled = true;
  CompileService service(options);

  fault::Arm("exec.probation", {ErrorKind::kInternal});
  FunctionHandle handle = service.Request(ArithRequest());
  handle.wait();
  ASSERT_EQ(handle.tier(), Tier::kLlvm);  // compiled fine; probation pending

  // First call through the armed stub takes the synthetic fault: the caller
  // is served by the generic (Tier-2) entry, which reads both *real*
  // arguments, and the slot demotes.
  auto fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(5, 7), c_arith_mix(5, 7));
  EXPECT_EQ(handle.tier(), Tier::kGeneric);
  EXPECT_EQ(handle.error().kind(), ErrorKind::kInternal);

  const CacheStats stats = service.stats();
  EXPECT_EQ(stats.probation_installs, 1u);
  EXPECT_EQ(stats.probation_faults, 1u);
  EXPECT_EQ(stats.probation_clean, 0u);
}

TEST_F(QuarantineTest, ServiceCleanProbationRebindsToRawEntry) {
  CompileService::Options options;
  options.containment.enabled = true;
  options.containment.probation_calls = 4;
  CompileService service(options);

  FunctionHandle handle = service.Request(ArithRequest());
  const std::uint64_t stub = handle.wait();
  ASSERT_EQ(handle.tier(), Tier::kLlvm);
  auto fn = handle.as<IntFn2>();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(fn(100, 7), c_arith_mix(5, 7));  // param 0 burned in
  }
  // After N clean calls the slot re-bound to the raw entry: the published
  // target changed and the guard reports completion.
  EXPECT_NE(handle.target(), stub);
  EXPECT_EQ(handle.tier(), Tier::kLlvm);
  EXPECT_EQ(reinterpret_cast<IntFn2>(handle.target())(100, 7),
            c_arith_mix(5, 7));
  const CacheStats stats = service.stats();
  EXPECT_EQ(stats.probation_clean, 1u);
  EXPECT_EQ(stats.probation_faults, 0u);
}

TEST_F(QuarantineTest, QuarantinePersistsAcrossServiceRestart) {
  CompileService::Options options;
  options.containment.enabled = true;
  options.persist_dir = dir_;
  const long expected = c_arith_mix(5, 7);
  {
    CompileService first(options);
    ASSERT_TRUE(first.persist_enabled());
    fault::Arm("exec.probation", {ErrorKind::kInternal});
    FunctionHandle handle = first.Request(ArithRequest());
    handle.wait();
    first.WaitIdle();  // settle the write-back before poisoning it
    auto fn = handle.as<IntFn2>();
    EXPECT_EQ(fn(5, 7), expected);  // fault caught, Tier-2 answer
    const CacheStats stats = first.stats();
    EXPECT_EQ(stats.probation_faults, 1u);
    EXPECT_EQ(stats.quarantined, 1u);
    fault::DisarmAll();
  }
  ASSERT_GE(Quarantine(dir_).size(), 1u);

  // Same process, so the persist fingerprint is identical: the restarted
  // service must refuse the poisoned object (no disk hit, no re-store) and
  // recompile instead -- this time surviving its (unfaulted) probation.
  CompileService second(options);
  FunctionHandle handle = second.Request(ArithRequest());
  handle.wait();
  EXPECT_EQ(handle.tier(), Tier::kLlvm);
  EXPECT_EQ(handle.as<IntFn2>()(100, 7), expected);
  second.WaitIdle();
  const CacheStats stats = second.stats();
  EXPECT_EQ(stats.disk_hits, 0u);
  EXPECT_EQ(stats.compiles, 1u);
  const ObjectStoreStats persist = second.persist_stats();
  EXPECT_EQ(persist.hits, 0u);
  EXPECT_EQ(persist.stores, 0u);  // the poisoned fingerprint stays banned
  EXPECT_GE(persist.quarantine_blocked, 1u);
  EXPECT_GE(persist.quarantine_entries, 1u);
}

TEST_F(QuarantineTest, ManualQuarantineBansAFingerprint) {
  CompileService::Options options;
  options.persist_dir = dir_;
  CompileService service(options);
  ASSERT_TRUE(service.persist_enabled());
  const Status missing = service.QuarantineObject(0, "no fingerprint");
  EXPECT_FALSE(missing.ok());
  ASSERT_TRUE(service.QuarantineObject(0x9999, "operator ban").ok());
  EXPECT_TRUE(Quarantine(dir_).Contains(0x9999));
  EXPECT_EQ(service.stats().quarantined, 1u);
}

}  // namespace
}  // namespace dbll::runtime
