// dbll tests -- rewrite-time ALU evaluation, checked against the host CPU.
//
// Property tests: for each supported operation, run the *actual hardware
// instruction* via inline assembly, capture the result and the flags, and
// compare with EvalInt/EvalVec. This validates the DBrew folding semantics
// against the architecture itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "../src/dbrew/alu_eval.h"

namespace dbll::dbrew {
namespace {

using x86::Flag;
using x86::Mnemonic;

struct HwResult {
  std::uint64_t value;
  std::uint64_t rflags;
};

constexpr std::uint64_t kCfBit = 1u << 0;
constexpr std::uint64_t kPfBit = 1u << 2;
constexpr std::uint64_t kAfBit = 1u << 4;
constexpr std::uint64_t kZfBit = 1u << 6;
constexpr std::uint64_t kSfBit = 1u << 7;
constexpr std::uint64_t kOfBit = 1u << 11;

#define HW_BINOP(name, insn)                                        \
  HwResult name(std::uint64_t a, std::uint64_t b) {                 \
    std::uint64_t flags;                                            \
    asm volatile(insn " %2, %0\n\tpushfq\n\tpopq %1"                \
                 : "+r"(a), "=r"(flags)                             \
                 : "r"(b)                                           \
                 : "cc");                                           \
    return {a, flags};                                              \
  }

HW_BINOP(HwAdd64, "addq")
HW_BINOP(HwSub64, "subq")
HW_BINOP(HwAnd64, "andq")
HW_BINOP(HwOr64, "orq")
HW_BINOP(HwXor64, "xorq")

HwResult HwAdd32(std::uint64_t a, std::uint64_t b) {
  std::uint32_t lo = static_cast<std::uint32_t>(a);
  std::uint64_t flags;
  asm volatile("addl %2, %0\n\tpushfq\n\tpopq %1"
               : "+r"(lo), "=r"(flags)
               : "r"(static_cast<std::uint32_t>(b))
               : "cc");
  return {lo, flags};
}

HwResult HwSub8(std::uint64_t a, std::uint64_t b) {
  std::uint8_t lo = static_cast<std::uint8_t>(a);
  std::uint64_t flags;
  asm volatile("subb %2, %0\n\tpushfq\n\tpopq %1"
               : "+q"(lo), "=r"(flags)
               : "q"(static_cast<std::uint8_t>(b))
               : "cc");
  return {lo, flags};
}

void ExpectFlagsMatch(const IntResult& eval, const HwResult& hw,
                      const char* what, std::uint64_t a, std::uint64_t b) {
  auto check = [&](Flag flag, std::uint64_t bit, const char* flag_name) {
    const MetaFlag& mf = eval.flags[static_cast<int>(flag)];
    if (!mf.known) return;  // undefined by the evaluator: anything goes
    EXPECT_EQ(mf.value, (hw.rflags & bit) != 0)
        << what << " flag " << flag_name << " a=" << a << " b=" << b;
  };
  check(Flag::kZf, kZfBit, "ZF");
  check(Flag::kSf, kSfBit, "SF");
  check(Flag::kCf, kCfBit, "CF");
  check(Flag::kOf, kOfBit, "OF");
  check(Flag::kPf, kPfBit, "PF");
  check(Flag::kAf, kAfBit, "AF");
}

struct HwCase {
  const char* name;
  Mnemonic mnemonic;
  HwResult (*hw)(std::uint64_t, std::uint64_t);
  std::uint8_t size;
};

class HwCompareTest : public testing::TestWithParam<HwCase> {};

TEST_P(HwCompareTest, MatchesHardwareOnRandomInputs) {
  const HwCase& c = GetParam();
  std::mt19937_64 rng(12345);
  // Include adversarial values plus random ones.
  std::vector<std::uint64_t> interesting = {
      0, 1, 2, 0x7f, 0x80, 0xff, 0x100, 0x7fff, 0x8000,
      0x7fffffff, 0x80000000, 0xffffffff, 0x100000000ull,
      0x7fffffffffffffffull, 0x8000000000000000ull, 0xffffffffffffffffull};
  for (int i = 0; i < 200; ++i) interesting.push_back(rng());

  for (std::uint64_t a : interesting) {
    for (std::uint64_t b : {interesting[1], interesting[5], interesting[12],
                            rng(), rng()}) {
      auto eval = EvalInt(c.mnemonic, a, b, c.size);
      ASSERT_TRUE(eval.has_value());
      const HwResult hw = c.hw(a, b);
      EXPECT_EQ(eval->value, MaskToSize(hw.value, c.size))
          << c.name << " a=" << a << " b=" << b;
      ExpectFlagsMatch(*eval, hw, c.name, a, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, HwCompareTest,
    testing::Values(HwCase{"add64", Mnemonic::kAdd, HwAdd64, 8},
                    HwCase{"sub64", Mnemonic::kSub, HwSub64, 8},
                    HwCase{"and64", Mnemonic::kAnd, HwAnd64, 8},
                    HwCase{"or64", Mnemonic::kOr, HwOr64, 8},
                    HwCase{"xor64", Mnemonic::kXor, HwXor64, 8},
                    HwCase{"add32", Mnemonic::kAdd, HwAdd32, 4},
                    HwCase{"sub8", Mnemonic::kSub, HwSub8, 1}),
    [](const testing::TestParamInfo<HwCase>& info) {
      return info.param.name;
    });

// --- Shifts against hardware -------------------------------------------------

TEST(AluEvalTest, ShiftsMatchHardware) {
  std::mt19937_64 rng(99);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t count = rng() % 64;
    if (count == 0) continue;  // zero-count flag semantics differ
    std::uint64_t hw_value = a;
    std::uint64_t flags = 0;
    asm volatile(
        "movq %2, %%rcx\n\tshlq %%cl, %0\n\tpushfq\n\tpopq %1"
        : "+r"(hw_value), "=r"(flags)
        : "r"(count)
        : "rcx", "cc");
    auto eval = EvalInt(Mnemonic::kShl, a, count, 8);
    ASSERT_TRUE(eval.has_value());
    EXPECT_EQ(eval->value, hw_value) << "a=" << a << " count=" << count;
    EXPECT_EQ(eval->flags[static_cast<int>(Flag::kCf)].value,
              (flags & kCfBit) != 0)
        << "a=" << a << " count=" << count;
  }
}

TEST(AluEvalTest, SarIsArithmetic) {
  auto r = EvalInt(Mnemonic::kSar, 0xffffffffffffff00ull, 4, 8);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 0xfffffffffffffff0ull);
  auto r32 = EvalInt(Mnemonic::kSar, 0x80000000ull, 1, 4);
  ASSERT_TRUE(r32.has_value());
  EXPECT_EQ(r32->value, 0xc0000000ull);
}

TEST(AluEvalTest, ZeroCountShiftKeepsFlags) {
  auto r = EvalInt(Mnemonic::kShl, 42, 0, 8);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->writes_flags);
  EXPECT_EQ(r->value, 42u);
}

// --- inc/dec/neg -------------------------------------------------------------

TEST(AluEvalTest, IncLeavesCarryUnknown) {
  auto r = EvalInt(Mnemonic::kInc, 0xffffffffffffffffull, 0, 8);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 0u);
  EXPECT_TRUE(r->flags[static_cast<int>(Flag::kZf)].known);
  EXPECT_TRUE(r->flags[static_cast<int>(Flag::kZf)].value);
  // CF must be reported unknown so the caller preserves the previous value.
  EXPECT_FALSE(r->flags[static_cast<int>(Flag::kCf)].known);
}

TEST(AluEvalTest, NegCarry) {
  auto zero = EvalInt(Mnemonic::kNeg, 0, 0, 8);
  ASSERT_TRUE(zero.has_value());
  EXPECT_FALSE(zero->flags[static_cast<int>(Flag::kCf)].value);
  auto nonzero = EvalInt(Mnemonic::kNeg, 5, 0, 8);
  ASSERT_TRUE(nonzero.has_value());
  EXPECT_TRUE(nonzero->flags[static_cast<int>(Flag::kCf)].value);
  EXPECT_EQ(nonzero->value, static_cast<std::uint64_t>(-5));
}

// --- imul overflow -----------------------------------------------------------

TEST(AluEvalTest, ImulOverflowFlag) {
  auto fits = EvalInt(Mnemonic::kImul, 1000, 1000, 8);
  ASSERT_TRUE(fits.has_value());
  EXPECT_FALSE(fits->flags[static_cast<int>(Flag::kOf)].value);
  auto overflows = EvalInt(Mnemonic::kImul, INT64_MAX, 2, 8);
  ASSERT_TRUE(overflows.has_value());
  EXPECT_TRUE(overflows->flags[static_cast<int>(Flag::kOf)].value);
}

// --- Condition evaluation ------------------------------------------------

TEST(AluEvalTest, CondAfterCmpMatchesComparison) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t a = static_cast<std::int64_t>(rng());
    const std::int64_t b = static_cast<std::int64_t>(rng());
    auto cmp = EvalInt(Mnemonic::kCmp, static_cast<std::uint64_t>(a),
                       static_cast<std::uint64_t>(b), 8);
    ASSERT_TRUE(cmp.has_value());
    auto expect = [&](x86::Cond cond, bool want) {
      auto got = EvalCond(cond, cmp->flags);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, want) << "a=" << a << " b=" << b << " cond="
                            << x86::CondName(cond);
    };
    expect(x86::Cond::kE, a == b);
    expect(x86::Cond::kNe, a != b);
    expect(x86::Cond::kL, a < b);
    expect(x86::Cond::kLe, a <= b);
    expect(x86::Cond::kG, a > b);
    expect(x86::Cond::kGe, a >= b);
    expect(x86::Cond::kB, static_cast<std::uint64_t>(a) <
                              static_cast<std::uint64_t>(b));
    expect(x86::Cond::kAe, static_cast<std::uint64_t>(a) >=
                               static_cast<std::uint64_t>(b));
    expect(x86::Cond::kBe, static_cast<std::uint64_t>(a) <=
                               static_cast<std::uint64_t>(b));
    expect(x86::Cond::kA, static_cast<std::uint64_t>(a) >
                              static_cast<std::uint64_t>(b));
  }
}

TEST(AluEvalTest, CondWithUnknownFlagIsNullopt) {
  MetaFlag flags[x86::kFlagCount] = {};
  flags[static_cast<int>(Flag::kZf)] = {true, true};
  EXPECT_TRUE(EvalCond(x86::Cond::kE, flags).has_value());
  EXPECT_FALSE(EvalCond(x86::Cond::kL, flags).has_value());  // needs SF/OF
  EXPECT_FALSE(EvalCond(x86::Cond::kB, flags).has_value());  // needs CF
}

// --- Vector evaluation ---------------------------------------------------

double BitsToD(std::uint64_t bits) {
  double d;
  __builtin_memcpy(&d, &bits, 8);
  return d;
}
std::uint64_t DToBits(double d) {
  std::uint64_t bits;
  __builtin_memcpy(&bits, &d, 8);
  return bits;
}

TEST(VecEvalTest, ScalarDoubleOps) {
  const Vec128 a{DToBits(3.5), DToBits(99.0)};
  const Vec128 b{DToBits(1.25), DToBits(-1.0)};
  auto add = EvalVec(Mnemonic::kAddsd, a, b, 16);
  ASSERT_TRUE(add.has_value());
  EXPECT_EQ(BitsToD(add->value.lo), 4.75);
  EXPECT_EQ(add->value.hi, a.hi) << "upper half must be preserved";
  auto mul = EvalVec(Mnemonic::kMulsd, a, b, 16);
  EXPECT_EQ(BitsToD(mul->value.lo), 4.375);
  auto div = EvalVec(Mnemonic::kDivsd, a, b, 16);
  EXPECT_EQ(BitsToD(div->value.lo), 2.8);
}

TEST(VecEvalTest, MovsdFromMemoryZeroesUpper) {
  const Vec128 dst{DToBits(1.0), DToBits(2.0)};
  const Vec128 src{DToBits(7.0), 0};
  auto mem = EvalVec(Mnemonic::kMovsdX, dst, src, /*src_size=*/8);
  ASSERT_TRUE(mem.has_value());
  EXPECT_EQ(BitsToD(mem->value.lo), 7.0);
  EXPECT_EQ(mem->value.hi, 0u);
  auto reg = EvalVec(Mnemonic::kMovsdX, dst, src, /*src_size=*/16);
  EXPECT_EQ(reg->value.hi, dst.hi) << "register form preserves upper";
}

TEST(VecEvalTest, PackedDouble) {
  const Vec128 a{DToBits(1.0), DToBits(2.0)};
  const Vec128 b{DToBits(10.0), DToBits(20.0)};
  auto add = EvalVec(Mnemonic::kAddpd, a, b, 16);
  EXPECT_EQ(BitsToD(add->value.lo), 11.0);
  EXPECT_EQ(BitsToD(add->value.hi), 22.0);
}

TEST(VecEvalTest, Bitwise) {
  const Vec128 a{0xff00ff00ff00ff00ull, 0x0123456789abcdefull};
  const Vec128 b{0x0ff00ff00ff00ff0ull, 0xffffffffffffffffull};
  auto x = EvalVec(Mnemonic::kPxor, a, b, 16);
  EXPECT_EQ(x->value.lo, a.lo ^ b.lo);
  EXPECT_EQ(x->value.hi, a.hi ^ b.hi);
  auto andn = EvalVec(Mnemonic::kPandn, a, b, 16);
  EXPECT_EQ(andn->value.lo, ~a.lo & b.lo);
}

TEST(VecEvalTest, UnpckAndShuffle) {
  const Vec128 a{1, 2};
  const Vec128 b{3, 4};
  auto lo = EvalVec(Mnemonic::kUnpcklpd, a, b, 16);
  EXPECT_EQ(lo->value.lo, 1u);
  EXPECT_EQ(lo->value.hi, 3u);
  auto hi = EvalVec(Mnemonic::kUnpckhpd, a, b, 16);
  EXPECT_EQ(hi->value.lo, 2u);
  EXPECT_EQ(hi->value.hi, 4u);
  auto shuf = EvalVec(Mnemonic::kShufpd, a, b, 16, 0b01);
  EXPECT_EQ(shuf->value.lo, 2u);
  EXPECT_EQ(shuf->value.hi, 3u);
}

TEST(VecEvalTest, UcomisdFlags) {
  const Vec128 a{DToBits(1.0), 0};
  const Vec128 b{DToBits(2.0), 0};
  auto less = EvalVec(Mnemonic::kUcomisd, a, b, 8);
  ASSERT_TRUE(less.has_value());
  EXPECT_TRUE(less->writes_flags);
  EXPECT_TRUE(less->flags[static_cast<int>(Flag::kCf)].value);
  EXPECT_FALSE(less->flags[static_cast<int>(Flag::kZf)].value);
  auto equal = EvalVec(Mnemonic::kUcomisd, a, a, 8);
  EXPECT_TRUE(equal->flags[static_cast<int>(Flag::kZf)].value);
  EXPECT_FALSE(equal->flags[static_cast<int>(Flag::kCf)].value);

  const Vec128 nan{DToBits(__builtin_nan("")), 0};
  auto unordered = EvalVec(Mnemonic::kUcomisd, a, nan, 8);
  EXPECT_TRUE(unordered->flags[static_cast<int>(Flag::kPf)].value);
  EXPECT_TRUE(unordered->flags[static_cast<int>(Flag::kZf)].value);
  EXPECT_TRUE(unordered->flags[static_cast<int>(Flag::kCf)].value);
}

TEST(VecEvalTest, PaddLanes) {
  const Vec128 a{0x00ff00ff00ff00ffull, 1};
  const Vec128 b{0x0001000100010001ull, 2};
  auto w = EvalVec(Mnemonic::kPaddw, a, b, 16);
  EXPECT_EQ(w->value.lo, 0x0100010001000100ull) << "no carry across lanes";
  EXPECT_EQ(w->value.hi, 3u);
  auto bsum = EvalVec(Mnemonic::kPaddb, Vec128{0xff, 0}, Vec128{0x01, 0}, 16);
  EXPECT_EQ(bsum->value.lo & 0xffff, 0x00u) << "byte lane wraps";
}

TEST(VecEvalTest, UnsupportedReturnsNullopt) {
  EXPECT_FALSE(EvalVec(Mnemonic::kCvtdq2pd, {}, {}, 8).has_value());
  EXPECT_FALSE(EvalInt(Mnemonic::kMovzx, 0, 0, 8).has_value());
}

// --- MaskToSize / SignExtend ----------------------------------------------

TEST(AluEvalTest, MaskAndExtend) {
  EXPECT_EQ(MaskToSize(0x1234567890abcdefull, 4), 0x90abcdefull);
  EXPECT_EQ(MaskToSize(0x1234567890abcdefull, 1), 0xefull);
  EXPECT_EQ(MaskToSize(0x1234567890abcdefull, 8), 0x1234567890abcdefull);
  EXPECT_EQ(SignExtend(0x80, 1), -128);
  EXPECT_EQ(SignExtend(0x7f, 1), 127);
  EXPECT_EQ(SignExtend(0xffffffff, 4), -1);
  EXPECT_EQ(SignExtend(0x80000000, 4), INT32_MIN);
}

}  // namespace
}  // namespace dbll::dbrew

// --- New SSE2 ops validated against the hardware --------------------------

#include <emmintrin.h>

namespace dbll::dbrew {
namespace {

Vec128 FromM128i(__m128i v) {
  Vec128 out;
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&out), v);
  return out;
}
__m128i ToM128i(Vec128 v) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(&v));
}

struct HwVecCase {
  const char* name;
  x86::Mnemonic mnemonic;
  __m128i (*hw)(__m128i, __m128i);
};

class HwVecCompareTest : public testing::TestWithParam<HwVecCase> {};

TEST_P(HwVecCompareTest, MatchesHardware) {
  const HwVecCase& c = GetParam();
  std::mt19937_64 rng(2024);
  for (int round = 0; round < 200; ++round) {
    const Vec128 a{rng(), rng()};
    const Vec128 b{rng(), rng()};
    auto eval = EvalVec(c.mnemonic, a, b, 16);
    ASSERT_TRUE(eval.has_value()) << c.name;
    const Vec128 hw = FromM128i(c.hw(ToM128i(a), ToM128i(b)));
    EXPECT_EQ(eval->value.lo, hw.lo) << c.name << " round " << round;
    EXPECT_EQ(eval->value.hi, hw.hi) << c.name << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, HwVecCompareTest,
    testing::Values(
        HwVecCase{"pcmpeqb", x86::Mnemonic::kPcmpeqb,
                  [](__m128i a, __m128i b) { return _mm_cmpeq_epi8(a, b); }},
        HwVecCase{"pcmpeqw", x86::Mnemonic::kPcmpeqw,
                  [](__m128i a, __m128i b) { return _mm_cmpeq_epi16(a, b); }},
        HwVecCase{"pcmpeqd", x86::Mnemonic::kPcmpeqd,
                  [](__m128i a, __m128i b) { return _mm_cmpeq_epi32(a, b); }},
        HwVecCase{"pcmpgtb", x86::Mnemonic::kPcmpgtb,
                  [](__m128i a, __m128i b) { return _mm_cmpgt_epi8(a, b); }},
        HwVecCase{"pcmpgtw", x86::Mnemonic::kPcmpgtw,
                  [](__m128i a, __m128i b) { return _mm_cmpgt_epi16(a, b); }},
        HwVecCase{"pcmpgtd", x86::Mnemonic::kPcmpgtd,
                  [](__m128i a, __m128i b) { return _mm_cmpgt_epi32(a, b); }},
        HwVecCase{"pmullw", x86::Mnemonic::kPmullw,
                  [](__m128i a, __m128i b) { return _mm_mullo_epi16(a, b); }},
        HwVecCase{"pmuludq", x86::Mnemonic::kPmuludq,
                  [](__m128i a, __m128i b) { return _mm_mul_epu32(a, b); }},
        HwVecCase{"pminub", x86::Mnemonic::kPminub,
                  [](__m128i a, __m128i b) { return _mm_min_epu8(a, b); }},
        HwVecCase{"pmaxub", x86::Mnemonic::kPmaxub,
                  [](__m128i a, __m128i b) { return _mm_max_epu8(a, b); }},
        HwVecCase{"pminsw", x86::Mnemonic::kPminsw,
                  [](__m128i a, __m128i b) { return _mm_min_epi16(a, b); }},
        HwVecCase{"pmaxsw", x86::Mnemonic::kPmaxsw,
                  [](__m128i a, __m128i b) { return _mm_max_epi16(a, b); }},
        HwVecCase{"pavgb", x86::Mnemonic::kPavgb,
                  [](__m128i a, __m128i b) { return _mm_avg_epu8(a, b); }},
        HwVecCase{"pavgw", x86::Mnemonic::kPavgw,
                  [](__m128i a, __m128i b) { return _mm_avg_epu16(a, b); }},
        HwVecCase{"punpcklbw", x86::Mnemonic::kPunpcklbw,
                  [](__m128i a, __m128i b) { return _mm_unpacklo_epi8(a, b); }},
        HwVecCase{"punpckhwd", x86::Mnemonic::kPunpckhwd,
                  [](__m128i a, __m128i b) { return _mm_unpackhi_epi16(a, b); }},
        HwVecCase{"punpckldq", x86::Mnemonic::kPunpckldq,
                  [](__m128i a, __m128i b) { return _mm_unpacklo_epi32(a, b); }},
        HwVecCase{"paddb", x86::Mnemonic::kPaddb,
                  [](__m128i a, __m128i b) { return _mm_add_epi8(a, b); }},
        HwVecCase{"psubw", x86::Mnemonic::kPsubw,
                  [](__m128i a, __m128i b) { return _mm_sub_epi16(a, b); }}),
    [](const testing::TestParamInfo<HwVecCase>& info) {
      return info.param.name;
    });

TEST(HwVecShiftTest, ShiftsMatchHardware) {
  std::mt19937_64 rng(31337);
  for (int round = 0; round < 100; ++round) {
    const Vec128 a{rng(), rng()};
    for (std::uint64_t count : {0ull, 1ull, 7ull, 15ull, 16ull, 31ull, 32ull,
                                63ull, 64ull, 200ull}) {
      const Vec128 cnt{count, 0};
      auto check = [&](x86::Mnemonic m, __m128i hw) {
        auto eval = EvalVec(m, a, cnt, 16);
        ASSERT_TRUE(eval.has_value());
        const Vec128 want = FromM128i(hw);
        EXPECT_EQ(eval->value.lo, want.lo)
            << x86::MnemonicName(m) << " count=" << count;
        EXPECT_EQ(eval->value.hi, want.hi)
            << x86::MnemonicName(m) << " count=" << count;
      };
      const __m128i va = ToM128i(a);
      const __m128i vc = ToM128i(cnt);
      check(x86::Mnemonic::kPsllw, _mm_sll_epi16(va, vc));
      check(x86::Mnemonic::kPslld, _mm_sll_epi32(va, vc));
      check(x86::Mnemonic::kPsllq, _mm_sll_epi64(va, vc));
      check(x86::Mnemonic::kPsrlw, _mm_srl_epi16(va, vc));
      check(x86::Mnemonic::kPsrld, _mm_srl_epi32(va, vc));
      check(x86::Mnemonic::kPsrlq, _mm_srl_epi64(va, vc));
      check(x86::Mnemonic::kPsraw, _mm_sra_epi16(va, vc));
      check(x86::Mnemonic::kPsrad, _mm_sra_epi32(va, vc));
    }
  }
}

TEST(HwVecShiftTest, ByteShiftsMatchHardware) {
  std::mt19937_64 rng(4242);
  const Vec128 a{rng(), rng()};
  auto expect = [&](x86::Mnemonic m, std::uint64_t count, __m128i hw) {
    auto eval = EvalVec(m, a, Vec128{count, 0}, 16);
    ASSERT_TRUE(eval.has_value());
    const Vec128 want = FromM128i(hw);
    EXPECT_EQ(eval->value.lo, want.lo) << x86::MnemonicName(m) << count;
    EXPECT_EQ(eval->value.hi, want.hi) << x86::MnemonicName(m) << count;
  };
  const __m128i va = ToM128i(a);
  expect(x86::Mnemonic::kPslldq, 0, _mm_slli_si128(va, 0));
  expect(x86::Mnemonic::kPslldq, 5, _mm_slli_si128(va, 5));
  expect(x86::Mnemonic::kPslldq, 15, _mm_slli_si128(va, 15));
  expect(x86::Mnemonic::kPsrldq, 3, _mm_srli_si128(va, 3));
  expect(x86::Mnemonic::kPsrldq, 8, _mm_srli_si128(va, 8));
  expect(x86::Mnemonic::kPsrldq, 16, _mm_srli_si128(va, 16));
}

}  // namespace
}  // namespace dbll::dbrew

// --- Partial condition resolution (mixed known/runtime flags) --------------

namespace dbll::dbrew {
namespace {

TEST(ResolveCondTest, SingleFlagResidual) {
  MetaFlag flags[x86::kFlagCount] = {};  // everything runtime
  auto r = ResolveCond(x86::Cond::kE, flags);
  EXPECT_EQ(r.kind, CondResolution::Kind::kCond);
  EXPECT_EQ(r.cond, x86::Cond::kE);
}

TEST(ResolveCondTest, AboveWithKnownZeroFlag) {
  MetaFlag flags[x86::kFlagCount] = {};
  flags[static_cast<int>(x86::Flag::kZf)] = {true, false};
  // a == !CF && !ZF; with ZF=0 it reduces to !CF == ae.
  auto r = ResolveCond(x86::Cond::kA, flags);
  EXPECT_EQ(r.kind, CondResolution::Kind::kCond);
  EXPECT_EQ(r.cond, x86::Cond::kAe);
  // With ZF=1, a is decided false and be is decided true.
  flags[static_cast<int>(x86::Flag::kZf)] = {true, true};
  EXPECT_EQ(ResolveCond(x86::Cond::kA, flags).kind,
            CondResolution::Kind::kFalse);
  EXPECT_EQ(ResolveCond(x86::Cond::kBe, flags).kind,
            CondResolution::Kind::kTrue);
}

TEST(ResolveCondTest, SignedWithKnownSignFlag) {
  MetaFlag flags[x86::kFlagCount] = {};
  flags[static_cast<int>(x86::Flag::kSf)] = {true, false};
  // l == SF^OF; with SF=0 it reduces to OF.
  auto r = ResolveCond(x86::Cond::kL, flags);
  EXPECT_EQ(r.kind, CondResolution::Kind::kCond);
  EXPECT_EQ(r.cond, x86::Cond::kO);
  auto ge = ResolveCond(x86::Cond::kGe, flags);
  EXPECT_EQ(ge.cond, x86::Cond::kNo);
  flags[static_cast<int>(x86::Flag::kSf)] = {true, true};
  EXPECT_EQ(ResolveCond(x86::Cond::kL, flags).cond, x86::Cond::kNo);
  EXPECT_EQ(ResolveCond(x86::Cond::kGe, flags).cond, x86::Cond::kO);
}

TEST(ResolveCondTest, LessEqualReductions) {
  MetaFlag flags[x86::kFlagCount] = {};
  flags[static_cast<int>(x86::Flag::kZf)] = {true, true};
  EXPECT_EQ(ResolveCond(x86::Cond::kLe, flags).kind,
            CondResolution::Kind::kTrue);
  EXPECT_EQ(ResolveCond(x86::Cond::kG, flags).kind,
            CondResolution::Kind::kFalse);
  // ZF=0: le reduces to l; with SF also known it reduces further.
  flags[static_cast<int>(x86::Flag::kZf)] = {true, false};
  flags[static_cast<int>(x86::Flag::kSf)] = {true, true};
  auto le = ResolveCond(x86::Cond::kLe, flags);
  EXPECT_EQ(le.kind, CondResolution::Kind::kCond);
  EXPECT_EQ(le.cond, x86::Cond::kNo);
  // SF and OF known, ZF runtime: g reduces to ne / decided false.
  MetaFlag mixed[x86::kFlagCount] = {};
  mixed[static_cast<int>(x86::Flag::kSf)] = {true, false};
  mixed[static_cast<int>(x86::Flag::kOf)] = {true, false};
  auto g = ResolveCond(x86::Cond::kG, mixed);
  EXPECT_EQ(g.kind, CondResolution::Kind::kCond);
  EXPECT_EQ(g.cond, x86::Cond::kNe);
  mixed[static_cast<int>(x86::Flag::kOf)] = {true, true};
  EXPECT_EQ(ResolveCond(x86::Cond::kG, mixed).kind,
            CondResolution::Kind::kFalse);
}

TEST(ResolveCondTest, UnresolvableMix) {
  // le with ZF runtime and only SF known cannot be one condition code.
  MetaFlag flags[x86::kFlagCount] = {};
  flags[static_cast<int>(x86::Flag::kSf)] = {true, false};
  EXPECT_EQ(ResolveCond(x86::Cond::kLe, flags).kind,
            CondResolution::Kind::kUnresolved);
}

TEST(ResolveCondTest, ResidualAgreesWithTruthTable) {
  // Exhaustive: for every cond and every partial assignment of
  // {ZF, SF, CF, OF, PF}, the resolution must agree with brute force over
  // the runtime flags.
  for (int cc = 0; cc < 16; ++cc) {
    const auto cond = static_cast<x86::Cond>(cc);
    for (int known_mask = 0; known_mask < 32; ++known_mask) {
      for (int known_vals = 0; known_vals < 32; ++known_vals) {
        if ((known_vals & ~known_mask) != 0) continue;
        MetaFlag flags[x86::kFlagCount] = {};
        const x86::Flag order[5] = {x86::Flag::kZf, x86::Flag::kSf,
                                    x86::Flag::kCf, x86::Flag::kOf,
                                    x86::Flag::kPf};
        for (int b = 0; b < 5; ++b) {
          if (known_mask & (1 << b)) {
            flags[static_cast<int>(order[b])] = {true,
                                                 (known_vals >> b & 1) != 0};
          }
        }
        const CondResolution res = ResolveCond(cond, flags);
        if (res.kind == CondResolution::Kind::kUnresolved) continue;
        // Brute force every runtime completion.
        for (int rt = 0; rt < 32; ++rt) {
          MetaFlag full[x86::kFlagCount] = {};
          for (int b = 0; b < 5; ++b) {
            const bool value = (known_mask & (1 << b))
                                   ? (known_vals >> b & 1) != 0
                                   : (rt >> b & 1) != 0;
            full[static_cast<int>(order[b])] = {true, value};
          }
          const bool want = *EvalCond(cond, full);
          bool got = false;
          switch (res.kind) {
            case CondResolution::Kind::kTrue: got = true; break;
            case CondResolution::Kind::kFalse: got = false; break;
            case CondResolution::Kind::kCond:
              got = *EvalCond(res.cond, full);
              break;
            default: break;
          }
          ASSERT_EQ(got, want)
              << "cond=" << x86::CondName(cond) << " known_mask=" << known_mask
              << " known_vals=" << known_vals << " rt=" << rt;
        }
      }
    }
  }
}

}  // namespace
}  // namespace dbll::dbrew
