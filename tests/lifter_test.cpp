// dbll tests -- the x86-64 -> LLVM-IR lifter: lift-and-execute equivalence,
// IR shape properties (flag cache, facets, GEP), IR-level specialization,
// and error paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "corpus.h"
#include "dbll/lift/lifter.h"

namespace dbll::lift {
namespace {

Signature IntSig2() { return Signature::Ints(2); }

Jit& SharedJit() {
  static Jit jit;
  return jit;
}

Expected<std::uint64_t> LiftAndCompile(std::uint64_t address,
                                       const Signature& sig,
                                       LiftConfig config = {}) {
  Lifter lifter(config);
  DBLL_TRY(LiftedFunction lifted, lifter.Lift(address, sig));
  return lifted.Compile(SharedJit());
}

// --- Equivalence over the integer corpus -------------------------------------

class LiftEquivalenceTest
    : public testing::TestWithParam<dbll_tests::IntFn> {};

TEST_P(LiftEquivalenceTest, MatchesNative) {
  const auto& entry = GetParam();
  auto compiled =
      LiftAndCompile(reinterpret_cast<std::uint64_t>(entry.fn), IntSig2());
  ASSERT_TRUE(compiled.has_value())
      << entry.name << ": " << compiled.error().Format();
  auto fn = reinterpret_cast<long (*)(long, long)>(*compiled);

  std::mt19937_64 rng(7);
  const long interesting[] = {0, 1, -1, 2, -2, 63, 64, 255, -128,
                              INT32_MAX, INT32_MIN, 1L << 40};
  for (long a : interesting) {
    for (long b : interesting) {
      EXPECT_EQ(fn(a, b), entry.fn(a, b))
          << entry.name << "(" << a << ", " << b << ")";
    }
  }
  for (int i = 0; i < 100; ++i) {
    const long a = static_cast<long>(rng());
    const long b = static_cast<long>(rng());
    EXPECT_EQ(fn(a, b), entry.fn(a, b))
        << entry.name << "(" << a << ", " << b << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, LiftEquivalenceTest,
    testing::ValuesIn(dbll_tests::kIntCorpus,
                      dbll_tests::kIntCorpus + dbll_tests::kIntCorpusSize),
    [](const testing::TestParamInfo<dbll_tests::IntFn>& info) {
      return info.param.name;
    });

/// Equivalence must also hold with every optimization knob turned off.
class LiftAblationTest : public testing::TestWithParam<dbll_tests::IntFn> {};

TEST_P(LiftAblationTest, MatchesNativeWithoutCaches) {
  const auto& entry = GetParam();
  LiftConfig config;
  config.flag_cache = false;
  config.facet_cache = false;
  config.use_gep = false;
  config.fast_math = false;
  auto compiled = LiftAndCompile(reinterpret_cast<std::uint64_t>(entry.fn),
                                 IntSig2(), config);
  ASSERT_TRUE(compiled.has_value())
      << entry.name << ": " << compiled.error().Format();
  auto fn = reinterpret_cast<long (*)(long, long)>(*compiled);
  std::mt19937_64 rng(11);
  for (int i = 0; i < 60; ++i) {
    const long a = static_cast<long>(rng());
    const long b = static_cast<long>(rng());
    EXPECT_EQ(fn(a, b), entry.fn(a, b)) << entry.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, LiftAblationTest,
    testing::ValuesIn(dbll_tests::kIntCorpus,
                      dbll_tests::kIntCorpus + dbll_tests::kIntCorpusSize),
    [](const testing::TestParamInfo<dbll_tests::IntFn>& info) {
      return info.param.name;
    });

// --- Loops, memory, narrow types ----------------------------------------------

TEST(LifterTest, LoopsWork) {
  auto compiled = LiftAndCompile(
      reinterpret_cast<std::uint64_t>(&c_loop_fib), Signature::Ints(1));
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  auto fn = reinterpret_cast<long (*)(long)>(*compiled);
  for (long n : {0L, 1L, 2L, 20L, 50L}) {
    EXPECT_EQ(fn(n), c_loop_fib(n));
  }
}

TEST(LifterTest, LoopBackToEntryWorks) {
  auto compiled = LiftAndCompile(
      reinterpret_cast<std::uint64_t>(&c_loop_to_entry), Signature::Ints(1));
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  auto fn = reinterpret_cast<long (*)(long)>(*compiled);
  for (long n : {1L, 2L, 5L, 17L}) {
    EXPECT_EQ(fn(n), c_loop_to_entry(n));
  }
}

TEST(LifterTest, MemoryReadsAndWrites) {
  auto sum = LiftAndCompile(reinterpret_cast<std::uint64_t>(&c_array_sum),
                            Signature::Ints(2));
  ASSERT_TRUE(sum.has_value()) << sum.error().Format();
  long data[16];
  for (int i = 0; i < 16; ++i) data[i] = i * i - 5;
  auto sum_fn = reinterpret_cast<long (*)(const long*, long)>(*sum);
  EXPECT_EQ(sum_fn(data, 16), c_array_sum(data, 16));
  EXPECT_EQ(sum_fn(data, 0), 0);

  auto store = LiftAndCompile(reinterpret_cast<std::uint64_t>(&c_store_fields),
                              Signature{{ArgKind::kInt, ArgKind::kInt,
                                         ArgKind::kInt}, RetKind::kVoid});
  ASSERT_TRUE(store.has_value()) << store.error().Format();
  long out[3] = {};
  reinterpret_cast<void (*)(long*, long, long)>(*store)(out, 6, 4);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 24);
}

TEST(LifterTest, ByteAndWordOperations) {
  auto u8 = LiftAndCompile(reinterpret_cast<std::uint64_t>(&c_u8_ops),
                           Signature::Ints(2));
  ASSERT_TRUE(u8.has_value()) << u8.error().Format();
  auto u8_fn = reinterpret_cast<int (*)(int, int)>(*u8);
  for (int a = 0; a < 256; a += 17) {
    for (int b = 0; b < 256; b += 31) {
      EXPECT_EQ(u8_fn(a, b),
                c_u8_ops(static_cast<unsigned char>(a),
                         static_cast<unsigned char>(b)));
    }
  }

  auto i16 = LiftAndCompile(reinterpret_cast<std::uint64_t>(&c_i16_ops),
                            Signature::Ints(2));
  ASSERT_TRUE(i16.has_value()) << i16.error().Format();
  auto i16_fn = reinterpret_cast<int (*)(int, int)>(*i16);
  for (int a : {-32768, -100, 0, 100, 32767}) {
    for (int b : {-32768, -7, 0, 9, 32767}) {
      EXPECT_EQ(i16_fn(a, b),
                c_i16_ops(static_cast<short>(a), static_cast<short>(b)));
    }
  }
}

TEST(LifterTest, StrlenLike) {
  auto compiled = LiftAndCompile(
      reinterpret_cast<std::uint64_t>(&c_strlen_like), Signature::Ints(1));
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  auto fn = reinterpret_cast<long (*)(const char*)>(*compiled);
  EXPECT_EQ(fn(""), 0);
  EXPECT_EQ(fn("a"), 1);
  EXPECT_EQ(fn("hello world"), 11);
}

TEST(LifterTest, StackSpills) {
  auto compiled = LiftAndCompile(
      reinterpret_cast<std::uint64_t>(&c_stack_spill), Signature::Ints(6));
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  auto fn =
      reinterpret_cast<long (*)(long, long, long, long, long, long)>(*compiled);
  EXPECT_EQ(fn(1, 2, 3, 4, 5, 6), c_stack_spill(1, 2, 3, 4, 5, 6));
  EXPECT_EQ(fn(-9, 8, -7, 6, -5, 4), c_stack_spill(-9, 8, -7, 6, -5, 4));
}

// --- Floating point -----------------------------------------------------------

class LiftFpTest : public testing::TestWithParam<dbll_tests::FpFn> {};

TEST_P(LiftFpTest, MatchesNative) {
  const auto& entry = GetParam();
  LiftConfig config;
  config.fast_math = false;  // bit-exact comparison
  Signature sig;
  sig.args = {ArgKind::kF64, ArgKind::kF64};
  sig.ret = RetKind::kF64;
  auto compiled = LiftAndCompile(reinterpret_cast<std::uint64_t>(entry.fn),
                                 sig, config);
  ASSERT_TRUE(compiled.has_value())
      << entry.name << ": " << compiled.error().Format();
  auto fn = reinterpret_cast<double (*)(double, double)>(*compiled);
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> dist(-1e6, 1e6);
  for (int i = 0; i < 100; ++i) {
    const double a = dist(rng);
    const double b = dist(rng);
    EXPECT_EQ(fn(a, b), entry.fn(a, b))
        << entry.name << "(" << a << ", " << b << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, LiftFpTest,
    testing::ValuesIn(dbll_tests::kFpCorpus,
                      dbll_tests::kFpCorpus + dbll_tests::kFpCorpusSize),
    [](const testing::TestParamInfo<dbll_tests::FpFn>& info) {
      return info.param.name;
    });

TEST(LifterTest, FpConversions) {
  LiftConfig config;
  config.fast_math = false;
  {
    Signature sig = Signature::Ints(2, RetKind::kF64);
    auto compiled = LiftAndCompile(
        reinterpret_cast<std::uint64_t>(&c_int_to_fp), sig, config);
    ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
    auto fn = reinterpret_cast<double (*)(long, long)>(*compiled);
    EXPECT_EQ(fn(7, 2), c_int_to_fp(7, 2));
    EXPECT_EQ(fn(-100, 3), c_int_to_fp(-100, 3));
  }
  {
    Signature sig;
    sig.args = {ArgKind::kF64};
    sig.ret = RetKind::kInt;
    auto compiled = LiftAndCompile(
        reinterpret_cast<std::uint64_t>(&c_fp_to_int), sig, config);
    ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
    auto fn = reinterpret_cast<long (*)(double)>(*compiled);
    EXPECT_EQ(fn(10.3), c_fp_to_int(10.3));
    EXPECT_EQ(fn(-99.9), c_fp_to_int(-99.9));
  }
  {
    Signature sig;
    sig.args = {ArgKind::kF64};
    sig.ret = RetKind::kF64;
    auto compiled = LiftAndCompile(
        reinterpret_cast<std::uint64_t>(&c_fp_sqrt), sig, config);
    ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
    auto fn = reinterpret_cast<double (*)(double)>(*compiled);
    EXPECT_EQ(fn(3.0), c_fp_sqrt(3.0));
  }
}

TEST(LifterTest, DotProduct) {
  LiftConfig config;
  config.fast_math = false;
  Signature sig = Signature::Ints(2, RetKind::kF64);
  auto compiled = LiftAndCompile(reinterpret_cast<std::uint64_t>(&c_dot3),
                                 sig, config);
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  auto fn = reinterpret_cast<double (*)(const double*, const double*)>(*compiled);
  const double a[3] = {1.5, -2.0, 4.0};
  const double b[3] = {2.0, 0.5, -1.0};
  EXPECT_EQ(fn(a, b), c_dot3(a, b));
}

// --- Calls --------------------------------------------------------------------

TEST(LifterTest, DirectCallsAreLifted) {
  auto compiled = LiftAndCompile(
      reinterpret_cast<std::uint64_t>(&c_call_helper), Signature::Ints(2));
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  auto fn = reinterpret_cast<long (*)(long, long)>(*compiled);
  EXPECT_EQ(fn(3, 4), c_call_helper(3, 4));
  EXPECT_EQ(fn(-100, 100), c_call_helper(-100, 100));
}

TEST(LifterTest, RecursionIsLifted) {
  auto compiled = LiftAndCompile(
      reinterpret_cast<std::uint64_t>(&c_factorial), Signature::Ints(1));
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  auto fn = reinterpret_cast<long (*)(long)>(*compiled);
  EXPECT_EQ(fn(0), 1);
  EXPECT_EQ(fn(10), c_factorial(10));
}

TEST(LifterTest, CallsDisabledReportsError) {
  LiftConfig config;
  config.lift_calls = false;
  Lifter lifter(config);
  auto lifted = lifter.Lift(
      reinterpret_cast<std::uint64_t>(&c_call_helper), Signature::Ints(2));
  ASSERT_FALSE(lifted.has_value());
  EXPECT_EQ(lifted.error().kind(), ErrorKind::kUnsupported);
}

// --- IR shape (paper Figs. 5 and 6) -------------------------------------------

TEST(LifterTest, FlagCacheProducesSingleIcmp) {
  Lifter lifter;  // flag cache on by default
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(&c_min_signed),
                            IntSig2(), "shape_fc");
  ASSERT_TRUE(lifted.has_value());
  auto ir = lifted->OptimizeAndGetIr();
  ASSERT_TRUE(ir.has_value());
  // Fig. 6c: one comparison, one select, no xor-based flag reconstruction.
  EXPECT_NE(ir->find("icmp"), std::string::npos);
  EXPECT_NE(ir->find("select"), std::string::npos);
  EXPECT_EQ(ir->find("xor"), std::string::npos) << *ir;
}

TEST(LifterTest, NoFlagCacheLeavesBitwiseReconstruction) {
  LiftConfig config;
  config.flag_cache = false;
  Lifter lifter(config);
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(&c_min_signed),
                            IntSig2(), "shape_nofc");
  ASSERT_TRUE(lifted.has_value());
  auto ir = lifted->OptimizeAndGetIr();
  ASSERT_TRUE(ir.has_value());
  // Fig. 6b: the SF^OF computation survives optimization as xor chains.
  EXPECT_NE(ir->find("xor"), std::string::npos) << *ir;
}

TEST(LifterTest, GepUsedForAddressing) {
  Lifter lifter;
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(&c_array_index),
                            IntSig2(), "shape_gep");
  ASSERT_TRUE(lifted.has_value());
  const std::string ir = lifted->GetIr();
  EXPECT_NE(ir.find("getelementptr"), std::string::npos);
}

TEST(LifterTest, NoGepAblationUsesIntToPtr) {
  LiftConfig config;
  config.use_gep = false;
  Lifter lifter(config);
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(&c_array_index),
                            IntSig2(), "shape_nogep");
  ASSERT_TRUE(lifted.has_value());
  const std::string ir = lifted->GetIr();
  EXPECT_NE(ir.find("inttoptr"), std::string::npos);
}

TEST(LifterTest, PhiNodesAtBlockEntries) {
  Lifter lifter;
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(&c_loop_fib),
                            Signature::Ints(1), "shape_phi");
  ASSERT_TRUE(lifted.has_value());
  const std::string ir = lifted->GetIr();
  EXPECT_NE(ir.find("phi"), std::string::npos);
}

TEST(LifterTest, VirtualStackIsAlloca) {
  Lifter lifter;
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(&c_stack_spill),
                            Signature::Ints(6), "shape_stack");
  ASSERT_TRUE(lifted.has_value());
  const std::string ir = lifted->GetIr();
  EXPECT_NE(ir.find("alloca"), std::string::npos);
}

// --- IR-level specialization (paper Sec. IV) ----------------------------------

TEST(SpecializeTest, ParamFixation) {
  Lifter lifter;
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(&c_min_signed),
                            IntSig2());
  ASSERT_TRUE(lifted.has_value());
  ASSERT_TRUE(lifted->SpecializeParam(0, 42).ok());
  auto compiled = lifted->Compile(SharedJit());
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  auto fn = reinterpret_cast<long (*)(long, long)>(*compiled);
  EXPECT_EQ(fn(0, 100), 42);
  EXPECT_EQ(fn(0, 3), 3);
}

TEST(SpecializeTest, LoopBoundFixationFoldsToConstant) {
  Lifter lifter;
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(&c_loop_sum),
                            Signature::Ints(1));
  ASSERT_TRUE(lifted.has_value());
  ASSERT_TRUE(lifted->SpecializeParam(0, 10).ok());
  auto ir = lifted->OptimizeAndGetIr();
  ASSERT_TRUE(ir.has_value());
  // Full constant propagation: the function returns the literal 45.
  EXPECT_NE(ir->find("ret i64 45"), std::string::npos) << *ir;
}

TEST(SpecializeTest, ConstMemoryFoldsLoads) {
  static const CorpusNode nodes[4] = {{2, 3}, {5, 7}, {11, 13}, {17, 19}};
  Lifter lifter;
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(&c_struct_walk),
                            Signature::Ints(1));
  ASSERT_TRUE(lifted.has_value());
  ASSERT_TRUE(
      lifted->SpecializeParamToConstMem(0, nodes, sizeof(nodes)).ok());
  auto ir = lifted->OptimizeAndGetIr();
  ASSERT_TRUE(ir.has_value());
  const long expected = c_struct_walk(nodes);
  EXPECT_NE(ir->find("ret i64 " + std::to_string(expected)),
            std::string::npos)
      << *ir;
}

TEST(SpecializeTest, BadIndexRejected) {
  Lifter lifter;
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(&c_min_signed),
                            IntSig2());
  ASSERT_TRUE(lifted.has_value());
  EXPECT_FALSE(lifted->SpecializeParam(5, 1).ok());
  EXPECT_FALSE(lifted->SpecializeParam(-1, 1).ok());
}

TEST(SpecializeTest, AfterOptimizationRejected) {
  Lifter lifter;
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(&c_min_signed),
                            IntSig2());
  ASSERT_TRUE(lifted.has_value());
  ASSERT_TRUE(lifted->OptimizeAndGetIr().has_value());
  EXPECT_FALSE(lifted->SpecializeParam(0, 1).ok());
}

// --- Configuration / error paths -----------------------------------------------

TEST(LifterTest, TooManyArgsRejected) {
  Lifter lifter;
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(&c_add3),
                            Signature::Ints(9));
  EXPECT_FALSE(lifted.has_value());
}

TEST(LifterTest, InstructionBudgetEnforced) {
  LiftConfig config;
  config.max_instructions = 2;
  Lifter lifter(config);
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(&c_stack_spill),
                            Signature::Ints(6));
  EXPECT_FALSE(lifted.has_value());
}

TEST(LifterTest, OptLevelZeroStillCorrect) {
  LiftConfig config;
  config.opt_level = 0;
  auto compiled = LiftAndCompile(
      reinterpret_cast<std::uint64_t>(&c_arith_mix), IntSig2(), config);
  ASSERT_TRUE(compiled.has_value()) << compiled.error().Format();
  auto fn = reinterpret_cast<long (*)(long, long)>(*compiled);
  EXPECT_EQ(fn(12, -5), c_arith_mix(12, -5));
}

TEST(LifterTest, PassPresetsRun) {
  for (const char* preset : {"none", "basic", "o1", "o2", "novec"}) {
    LiftConfig config;
    config.pass_preset = preset;
    auto compiled = LiftAndCompile(
        reinterpret_cast<std::uint64_t>(&c_poly),
        Signature{{ArgKind::kF64}, RetKind::kF64}, config);
    ASSERT_TRUE(compiled.has_value())
        << preset << ": " << compiled.error().Format();
    auto fn = reinterpret_cast<double (*)(double)>(*compiled);
    EXPECT_EQ(fn(2.0), c_poly(2.0)) << preset;
  }
}

}  // namespace
}  // namespace dbll::lift
