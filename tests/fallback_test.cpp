// dbll tests -- the tiered fallback pipeline (fallback.h) and the fault
// injection framework (support/fault.h) that makes its paths reachable:
// Tier-0 -> Tier-1 -> Tier-2 degradation, transient retry, negative caching,
// deadline timeouts with straggler discard, queue-overflow admission control,
// the null-handle hardening, and the dbll_fault_* / dbll_handle_tier C API.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "corpus.h"
#include "dbll/dbrew/capi.h"
#include "dbll/obs/obs.h"
#include "dbll/runtime/compile_service.h"
#include "dbll/support/fault.h"

namespace dbll::runtime {
namespace {

using IntFn2 = long (*)(long, long);

CompileRequest ArithRequest(lift::LiftConfig config = {}) {
  return CompileRequest(reinterpret_cast<std::uint64_t>(&c_arith_mix),
                        lift::Signature::Ints(2), std::move(config));
}

std::uint64_t ObsValue(const char* name) {
  return obs::Registry::Default().Value(name);
}

/// Every test disarms on both ends: a leaked armed site would make an
/// unrelated test fail mysteriously.
class FallbackTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::DisarmAll(); }
  void TearDown() override { fault::DisarmAll(); }
};

TEST_F(FallbackTest, LiftFaultDegradesToTier1) {
  const std::uint64_t tier1_before = ObsValue("fallback.tier1_serve");
  fault::Arm("lift.function", {ErrorKind::kLift});

  CompileService service;
  CompileRequest request = ArithRequest();
  request.FixParam(0, 5);
  FunctionHandle handle = service.Request(request);
  handle.wait();

  EXPECT_EQ(handle.state(), FunctionHandle::State::kSpecialized);
  EXPECT_EQ(handle.tier(), Tier::kDbrew);
  ASSERT_EQ(handle.error_chain().size(), 1u);
  EXPECT_EQ(handle.error_chain()[0].kind(), ErrorKind::kLift);
  EXPECT_GT(handle.times().tier1_ns, 0u);

  // The fallback code is a real specialization: parameter 0 is burned in.
  auto fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(100, 7), c_arith_mix(5, 7));

  const CacheStats stats = service.stats();
  EXPECT_EQ(stats.tier0_failures, 1u);
  EXPECT_EQ(stats.tier1_serves, 1u);
  EXPECT_EQ(stats.tier2_serves, 0u);
  EXPECT_EQ(stats.failures, 0u);  // a served handle is not a failure
  EXPECT_EQ(ObsValue("fallback.tier1_serve"), tier1_before + 1);
}

TEST_F(FallbackTest, RewriteFaultExhaustsTiersToTier2) {
  fault::Arm("lift.function", {ErrorKind::kLift});
  fault::Arm("rewrite.function", {ErrorKind::kEncode});

  CompileService service;
  CompileRequest request = ArithRequest();
  request.FixParam(0, 5);
  FunctionHandle handle = service.Request(request);
  const std::uint64_t target = handle.wait();

  EXPECT_EQ(handle.state(), FunctionHandle::State::kFailed);
  EXPECT_EQ(handle.tier(), Tier::kGeneric);
  EXPECT_EQ(target, request.address);  // pinned to the generic entry
  ASSERT_EQ(handle.error_chain().size(), 2u);
  EXPECT_EQ(handle.error_chain()[0].kind(), ErrorKind::kLift);
  EXPECT_EQ(handle.error_chain()[1].kind(), ErrorKind::kEncode);
  EXPECT_EQ(handle.error().kind(), ErrorKind::kLift);  // root cause first

  const CacheStats stats = service.stats();
  EXPECT_EQ(stats.tier2_serves, 1u);
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(service.last_error().kind(), ErrorKind::kLift);
}

TEST_F(FallbackTest, TransientFailureRetriesThenSucceeds) {
  // max_fires = 1: the first Tier-0 attempt fails with the transient kind,
  // the in-worker retry passes the (now exhausted) site cleanly.
  fault::Spec spec;
  spec.kind = ErrorKind::kResourceLimit;
  spec.max_fires = 1;
  fault::Arm("lift.function", spec);

  CompileService service;
  CompileRequest request = ArithRequest();
  request.FixParam(0, 5);
  FunctionHandle handle = service.Request(request);
  handle.wait();

  EXPECT_EQ(handle.state(), FunctionHandle::State::kSpecialized);
  EXPECT_EQ(handle.tier(), Tier::kLlvm);  // Tier 0 after all, via the retry
  ASSERT_EQ(handle.error_chain().size(), 1u);
  EXPECT_EQ(handle.error_chain()[0].kind(), ErrorKind::kResourceLimit);
  EXPECT_EQ(fault::FireCount("lift.function"), 1u);

  auto fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(100, 7), c_arith_mix(5, 7));

  const CacheStats stats = service.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.compiles, 2u);  // both Tier-0 attempts count
  EXPECT_EQ(stats.tier0_failures, 1u);
  EXPECT_EQ(stats.tier1_serves, 0u);
}

TEST_F(FallbackTest, DeterministicFailureIsNegativeCached) {
  fault::Arm("lift.function", {ErrorKind::kLift});

  CompileService service;
  CompileRequest request = ArithRequest();
  request.FixParam(0, 5);
  FunctionHandle first = service.Request(request);
  first.wait();
  EXPECT_EQ(first.tier(), Tier::kDbrew);
  EXPECT_EQ(service.stats().compiles, 1u);

  // Forget the table entry AND remove the fault: if the second request
  // re-ran Tier 0 it would now succeed -- serving Tier 1 again proves the
  // negative cache skipped LLVM entirely.
  service.Clear();
  fault::DisarmAll();

  FunctionHandle second = service.Request(request);
  second.wait();
  EXPECT_EQ(second.state(), FunctionHandle::State::kSpecialized);
  EXPECT_EQ(second.tier(), Tier::kDbrew);
  ASSERT_EQ(second.error_chain().size(), 1u);
  EXPECT_EQ(second.error_chain()[0].kind(), ErrorKind::kLift);

  const CacheStats stats = service.stats();
  EXPECT_EQ(stats.negative_hits, 1u);
  EXPECT_EQ(stats.compiles, 1u);  // LLVM ran exactly once, for the first try
  EXPECT_EQ(stats.tier1_serves, 2u);
}

TEST_F(FallbackTest, DeadlineTimeoutDegradesAndDiscardsStraggler) {
  // kNone + delay: the JIT stage stalls 400ms and then *succeeds* -- the
  // classic straggler. The 60ms deadline must degrade to Tier 1 long before,
  // and the late Tier-0 result must not clobber the installed fallback.
  fault::Spec stall;
  stall.kind = ErrorKind::kNone;
  stall.delay_ms = 400;
  fault::Arm("jit.compile", stall);

  CompileService service;
  CompileRequest request = ArithRequest();
  request.FixParam(0, 5);
  request.deadline_ms = 60;
  const auto start = std::chrono::steady_clock::now();
  FunctionHandle handle = service.Request(request);
  handle.wait();
  const auto waited = std::chrono::steady_clock::now() - start;

  EXPECT_EQ(handle.state(), FunctionHandle::State::kSpecialized);
  EXPECT_EQ(handle.tier(), Tier::kDbrew);
  ASSERT_GE(handle.error_chain().size(), 1u);
  EXPECT_EQ(handle.error_chain()[0].kind(), ErrorKind::kTimeout);
  // Served by the monitor at ~deadline, not by the 400ms straggler.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            350);

  const std::uint64_t installed = handle.target();
  auto fn = handle.as<IntFn2>();
  EXPECT_EQ(fn(100, 7), c_arith_mix(5, 7));

  // Let the wedged Tier-0 compile finish; its late result must be discarded.
  service.WaitIdle();
  EXPECT_EQ(handle.target(), installed);
  EXPECT_EQ(handle.tier(), Tier::kDbrew);
  EXPECT_EQ(service.stats().timeouts, 1u);
}

TEST_F(FallbackTest, QueueOverflowServesTier2Immediately) {
  // Slow every compile down (the lift stage stalls 150ms without failing) so
  // the single worker is provably busy while we fill the 1-slot queue.
  fault::Spec stall;
  stall.kind = ErrorKind::kNone;
  stall.delay_ms = 150;
  fault::Arm("lift.function", stall);

  CompileService::Options options;
  options.workers = 1;
  options.max_queue = 1;
  CompileService service(options);

  CompileRequest a = ArithRequest();
  a.FixParam(0, 1);
  CompileRequest b = ArithRequest();
  b.FixParam(0, 2);
  CompileRequest c = ArithRequest();
  c.FixParam(0, 3);

  FunctionHandle ha = service.Request(a);
  // Give the worker time to dequeue `a` (it then stalls inside the lift).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  FunctionHandle hb = service.Request(b);  // fills the queue
  FunctionHandle hc = service.Request(c);  // bounced

  // The rejection is synchronous: no wait needed for a terminal state.
  EXPECT_EQ(hc.state(), FunctionHandle::State::kFailed);
  EXPECT_EQ(hc.tier(), Tier::kGeneric);
  EXPECT_EQ(hc.wait(), c.address);
  ASSERT_EQ(hc.error_chain().size(), 1u);
  EXPECT_EQ(hc.error_chain()[0].kind(), ErrorKind::kResourceLimit);
  EXPECT_EQ(service.stats().queue_rejected, 1u);
  // Rejected requests are not cached: the table only holds a and b.
  EXPECT_EQ(service.size(), 2u);

  // The admitted requests still complete normally.
  ha.wait();
  hb.wait();
  EXPECT_EQ(ha.state(), FunctionHandle::State::kSpecialized);
  EXPECT_EQ(hb.state(), FunctionHandle::State::kSpecialized);
  service.WaitIdle();
}

TEST_F(FallbackTest, NullHandleAccessorsAreSafe) {
  FunctionHandle handle;  // default-constructed: no slot behind it
  EXPECT_FALSE(handle.valid());
  EXPECT_EQ(handle.target(), 0u);
  EXPECT_EQ(handle.state(), FunctionHandle::State::kFailed);
  EXPECT_FALSE(handle.specialized());
  EXPECT_EQ(handle.tier(), Tier::kGeneric);
  EXPECT_EQ(handle.wait(), 0u);  // must not block or crash
  EXPECT_EQ(handle.error().kind(), ErrorKind::kBadConfig);
  EXPECT_TRUE(handle.error_chain().empty());
  EXPECT_EQ(handle.times().total_ns(), 0u);
}

// --- fault framework surface ------------------------------------------------

TEST_F(FallbackTest, FaultDirectiveParsing) {
  EXPECT_TRUE(fault::ArmFromString("jit.compile:kJit"));
  EXPECT_TRUE(fault::ArmFromString("decode.insn:decode:100:0.5"));
  EXPECT_TRUE(fault::ArmFromString("x:resource-limit:3"));

  std::string error;
  EXPECT_FALSE(fault::ArmFromString("nonsense", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(fault::ArmFromString("site:kBogusKind", &error));
  EXPECT_FALSE(fault::ArmFromString("site:kJit:notanumber", &error));
  EXPECT_FALSE(fault::ArmFromString("site:kJit:0:2.5", &error));  // p > 1

  // Env string: malformed entries are skipped, valid ones armed.
  fault::DisarmAll();
  EXPECT_EQ(fault::ArmFromEnv("a:kJit,b:bogus,c:kLift:2"), 2);
  EXPECT_TRUE(fault::AnyArmed());
  fault::DisarmAll();
  EXPECT_FALSE(fault::AnyArmed());
}

TEST_F(FallbackTest, FaultCountersAndAfterN) {
  fault::Spec spec;
  spec.kind = ErrorKind::kDecode;
  spec.after_n = 2;
  fault::Arm("test.site", spec);

  EXPECT_FALSE(fault::Hit("test.site").has_value());  // hit 0: skipped
  EXPECT_FALSE(fault::Hit("test.site").has_value());  // hit 1: skipped
  auto injected = fault::Hit("test.site");            // hit 2: fires
  ASSERT_TRUE(injected.has_value());
  EXPECT_EQ(injected->kind(), ErrorKind::kDecode);
  EXPECT_EQ(fault::HitCount("test.site"), 3u);
  EXPECT_EQ(fault::FireCount("test.site"), 1u);

  fault::Disarm("test.site");
  EXPECT_FALSE(fault::Hit("test.site").has_value());
  EXPECT_EQ(fault::FireCount("test.site"), 0u);  // counters die with the arm
}

// --- C API ------------------------------------------------------------------

// The issue's acceptance scenario, end to end through the C surface: with
// the JIT stage failing by injection, a specialization request still returns
// a working callable served by the DBrew tier.
TEST_F(FallbackTest, CApiFaultArmAndTier) {
  const std::uint64_t tier1_before = ObsValue("fallback.tier1_serve");
  ASSERT_EQ(dbll_fault_arm("jit.compile", "kJit", 0), 0);
  EXPECT_NE(dbll_fault_arm("jit.compile", "kNotAKind", 0), 0);

  dbll_cache* cache = dbll_cache_new(1, 16);
  dbll_cache_req* req = dbll_cache_request(
      cache, reinterpret_cast<void*>(&c_arith_mix), 2, /*returns_value=*/1);
  dbll_cache_req_setpar(req, 1, 5);  // 1-based, like dbrew_setpar

  EXPECT_EQ(dbll_handle_tier(req), 1);  // served by the DBrew fallback
  auto fn = reinterpret_cast<IntFn2>(dbll_cache_wait(req));
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn(100, 7), c_arith_mix(5, 7));
  EXPECT_EQ(ObsValue("fallback.tier1_serve"), tier1_before + 1);
  EXPECT_GE(dbll_fault_fire_count("jit.compile"), 1u);

  dbll_fault_disarm_all();
  dbll_cache_req_free(req);
  dbll_cache_free(cache);
}

TEST_F(FallbackTest, CApiDeadlineSetters) {
  dbll_cache* cache = dbll_cache_new(1, 16);
  dbll_cache_set_deadline_ms(cache, 5000);  // smoke: service-wide default
  dbll_cache_req* req = dbll_cache_request(
      cache, reinterpret_cast<void*>(&c_arith_mix), 2, 1);
  dbll_cache_req_set_deadline_ms(req, 10000);  // per-request override
  auto fn = reinterpret_cast<IntFn2>(dbll_cache_wait(req));
  EXPECT_EQ(dbll_handle_tier(req), 0);  // generous deadlines: Tier 0 serves
  EXPECT_EQ(fn(4, 7), c_arith_mix(4, 7));
  dbll_cache_req_free(req);
  dbll_cache_free(cache);
}

}  // namespace
}  // namespace dbll::runtime
