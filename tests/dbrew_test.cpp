// dbll tests -- the DBrew rewriter: specialization semantics, equivalence
// with the original code, loop unrolling, inlining, error recovery.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "corpus.h"
#include "dbll/dbrew/capi.h"
#include "dbll/dbrew/rewriter.h"
#include "dbll/x86/cfg.h"
#include "dbll/x86/printer.h"

namespace dbll::dbrew {
namespace {

using IntFn2 = long (*)(long, long);

/// Rewrites without any specialization; result must behave identically.
class IdentityRewriteTest
    : public testing::TestWithParam<dbll_tests::IntFn> {};

TEST_P(IdentityRewriteTest, BehavesLikeOriginal) {
  const auto& entry = GetParam();
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(entry.fn));
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value())
      << entry.name << ": " << rewritten.error().Format();
  auto fn = reinterpret_cast<IntFn2>(*rewritten);

  std::mt19937_64 rng(42);
  const long interesting[] = {0, 1, -1, 2, 7, -13, 100, -100, 1 << 20,
                              -(1 << 20), INT32_MAX, INT32_MIN};
  for (long a : interesting) {
    for (long b : interesting) {
      EXPECT_EQ(fn(a, b), entry.fn(a, b))
          << entry.name << "(" << a << ", " << b << ")";
    }
  }
  for (int i = 0; i < 100; ++i) {
    const long a = static_cast<long>(rng());
    const long b = static_cast<long>(rng());
    EXPECT_EQ(fn(a, b), entry.fn(a, b))
        << entry.name << "(" << a << ", " << b << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, IdentityRewriteTest,
    testing::ValuesIn(dbll_tests::kIntCorpus,
                      dbll_tests::kIntCorpus + dbll_tests::kIntCorpusSize),
    [](const testing::TestParamInfo<dbll_tests::IntFn>& info) {
      return info.param.name;
    });

/// Fixing parameter 0: rewritten(x, b) must equal original(fixed, b).
class ParamFixationTest : public testing::TestWithParam<dbll_tests::IntFn> {};

TEST_P(ParamFixationTest, FixedParameterWins) {
  const auto& entry = GetParam();
  const long fixed = 37;
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(entry.fn));
  rewriter.SetParam(0, static_cast<std::uint64_t>(fixed));
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value())
      << entry.name << ": " << rewritten.error().Format();
  auto fn = reinterpret_cast<IntFn2>(*rewritten);

  std::mt19937_64 rng(43);
  for (int i = 0; i < 60; ++i) {
    const long junk = static_cast<long>(rng());
    const long b = static_cast<long>(rng() % 4096) - 2048;
    EXPECT_EQ(fn(junk, b), entry.fn(fixed, b))
        << entry.name << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ParamFixationTest,
    testing::ValuesIn(dbll_tests::kIntCorpus,
                      dbll_tests::kIntCorpus + dbll_tests::kIntCorpusSize),
    [](const testing::TestParamInfo<dbll_tests::IntFn>& info) {
      return info.param.name;
    });

// --- Loop unrolling ----------------------------------------------------------

TEST(DbrewTest, KnownTripCountFullyUnrolls) {
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&c_loop_sum));
  rewriter.SetParam(0, 10);
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
  auto fn = reinterpret_cast<long (*)(long, long)>(*rewritten);
  EXPECT_EQ(fn(999, 0), 45);

  // A fully unrolled counted loop needs no conditional branches at all:
  // everything folds to a constant return.
  auto cfg = x86::BuildCfg(*rewritten);
  ASSERT_TRUE(cfg.has_value());
  for (const auto& [address, block] : cfg->blocks) {
    for (const auto& instr : block.instrs) {
      EXPECT_NE(instr.mnemonic, x86::Mnemonic::kJcc)
          << "unexpected branch: " << x86::PrintInstr(instr);
    }
  }
}

TEST(DbrewTest, UnknownTripCountStillWorks) {
  // No fixation: the loop condition is unknown, so the rewriter must emit a
  // real loop (exercising state widening/deduplication).
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&c_loop_fib));
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
  auto fn = reinterpret_cast<long (*)(long, long)>(*rewritten);
  for (long n : {0L, 1L, 2L, 10L, 30L}) {
    EXPECT_EQ(fn(n, 0), c_loop_fib(n)) << "n=" << n;
  }
  EXPECT_GT(rewriter.stats().blocks, 1u);
}

TEST(DbrewTest, PartialFixationUnrollsOuterLoopOnly) {
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&c_nested_loops));
  rewriter.SetParam(0, 3);  // outer bound known, inner bound unknown
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
  auto fn = reinterpret_cast<long (*)(long, long)>(*rewritten);
  for (long m : {0L, 1L, 5L, 11L}) {
    EXPECT_EQ(fn(999, m), c_nested_loops(3, m)) << "m=" << m;
  }
}

// --- Fixed memory ranges -------------------------------------------------

TEST(DbrewTest, FixedMemoryFoldsLoads) {
  static const CorpusNode nodes[4] = {{2, 3}, {5, 7}, {11, 13}, {17, 19}};
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&c_struct_walk));
  rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(nodes));
  rewriter.SetMemRange(nodes, nodes + 4);
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
  auto fn = reinterpret_cast<long (*)(const void*)>(*rewritten);
  EXPECT_EQ(fn(nullptr), c_struct_walk(nodes));
  // All loads folded: no memory reads of the node array remain, the result
  // is a constant. The whole function usually reduces to mov+ret.
  EXPECT_LE(rewriter.stats().emitted_instrs, 4u);
}

TEST(DbrewTest, PointerWithoutMemRangeDoesNotFoldLoads) {
  static const CorpusNode nodes[4] = {{2, 3}, {5, 7}, {11, 13}, {17, 19}};
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&c_struct_walk));
  rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(nodes));
  // No SetMemRange: loads must stay, values may change before the call.
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
  auto fn = reinterpret_cast<long (*)(const void*)>(*rewritten);
  EXPECT_EQ(fn(nullptr), c_struct_walk(nodes));
  EXPECT_GT(rewriter.stats().emitted_instrs, 4u);
}

// --- Call inlining ---------------------------------------------------------

TEST(DbrewTest, DirectCallsAreInlined) {
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&c_call_helper));
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
  auto fn = reinterpret_cast<long (*)(long, long)>(*rewritten);
  EXPECT_EQ(fn(3, 4), c_call_helper(3, 4));
  EXPECT_GE(rewriter.stats().inlined_calls, 2u);

  // The generated code must not contain call instructions.
  auto cfg = x86::BuildCfg(*rewritten);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_TRUE(cfg->call_targets.empty());
}

TEST(DbrewTest, CallChainInlines) {
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&c_call_chain));
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
  auto fn = reinterpret_cast<long (*)(long)>(*rewritten);
  for (long a : {0L, 1L, -7L, 1000L}) {
    EXPECT_EQ(fn(a), c_call_chain(a));
  }
}

TEST(DbrewTest, RecursionBeyondDepthEmitsCall) {
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&c_factorial));
  rewriter.config().max_inline_depth = 3;
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
  auto fn = reinterpret_cast<long (*)(long)>(*rewritten);
  EXPECT_EQ(fn(10), c_factorial(10));
  EXPECT_EQ(fn(1), 1);
}

// --- Floating point ----------------------------------------------------------

TEST(DbrewTest, FloatingPointIdentity) {
  for (int i = 0; i < dbll_tests::kFpCorpusSize; ++i) {
    const auto& entry = dbll_tests::kFpCorpus[i];
    Rewriter rewriter(reinterpret_cast<std::uint64_t>(entry.fn));
    auto rewritten = rewriter.Rewrite();
    ASSERT_TRUE(rewritten.has_value())
        << entry.name << ": " << rewritten.error().Format();
    auto fn = reinterpret_cast<double (*)(double, double)>(*rewritten);
    for (double a : {0.0, 1.5, -2.25, 1e10, -1e-5}) {
      for (double b : {1.0, -3.5, 0.125, 7.0}) {
        EXPECT_EQ(fn(a, b), entry.fn(a, b))
            << entry.name << "(" << a << ", " << b << ")";
      }
    }
  }
}

// --- Error handling ----------------------------------------------------------

TEST(DbrewTest, DefaultHandlerFallsBackToOriginal) {
  // A tiny buffer forces kResourceLimit; RewriteOrOriginal retries with a
  // larger buffer and, if that also fails, returns the original function.
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&c_arith_mix));
  rewriter.config().code_buffer_size = 64;
  rewriter.config().max_blocks = 1;  // also cripple the retry
  const std::uint64_t result = rewriter.RewriteOrOriginal();
  auto fn = reinterpret_cast<long (*)(long, long)>(result);
  EXPECT_EQ(fn(5, 6), c_arith_mix(5, 6));
}

TEST(DbrewTest, BadParamIndexReported) {
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&c_add3));
  rewriter.SetParam(9, 1);
  auto rewritten = rewriter.Rewrite();
  ASSERT_FALSE(rewritten.has_value());
  EXPECT_EQ(rewritten.error().kind(), ErrorKind::kBadConfig);
}

TEST(DbrewTest, StatsArePopulated) {
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&c_loop_sum));
  rewriter.SetParam(0, 5);
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value());
  const auto& stats = rewriter.stats();
  EXPECT_GT(stats.emulated_instrs, 0u);
  EXPECT_GT(stats.folded_instrs, 0u);
  EXPECT_GT(stats.code_bytes, 0u);
  EXPECT_GE(stats.blocks, 1u);
}

TEST(DbrewTest, RepeatedRewriteIsStable) {
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&c_arith_mix));
  auto first = rewriter.Rewrite();
  ASSERT_TRUE(first.has_value());
  auto second = rewriter.Rewrite();
  ASSERT_TRUE(second.has_value());
  auto fn = reinterpret_cast<long (*)(long, long)>(*second);
  EXPECT_EQ(fn(3, 9), c_arith_mix(3, 9));
}

// --- C API (paper Fig. 2 / Fig. 3) -------------------------------------------

TEST(CApiTest, BasicUsage) {
  dbrew_rewriter* r = dbrew_new(reinterpret_cast<void*>(&c_min_signed));
  void* rewritten = dbrew_rewrite(r);
  ASSERT_NE(rewritten, nullptr);
  EXPECT_STREQ(dbrew_last_error(r), "");
  auto fn = reinterpret_cast<long (*)(long, long)>(rewritten);
  EXPECT_EQ(fn(3, 9), 3);
  dbrew_free(r);
}

TEST(CApiTest, SetParIsOneBased) {
  dbrew_rewriter* r = dbrew_new(reinterpret_cast<void*>(&c_min_signed));
  dbrew_setpar(r, 1, 42);  // first parameter, matching the paper's examples
  auto fn = reinterpret_cast<long (*)(long, long)>(dbrew_rewrite(r));
  EXPECT_EQ(fn(0, 100), 42);   // min(42, 100)
  EXPECT_EQ(fn(0, 7), 7);      // min(42, 7)
  dbrew_free(r);
}

TEST(CApiTest, SetMem) {
  static const CorpusNode nodes[4] = {{1, 2}, {3, 4}, {5, 6}, {7, 8}};
  dbrew_rewriter* r = dbrew_new(reinterpret_cast<void*>(&c_struct_walk));
  dbrew_setpar(r, 1, reinterpret_cast<uint64_t>(nodes));
  dbrew_setmem(r, nodes, nodes + 4);
  auto fn = reinterpret_cast<long (*)(const void*)>(dbrew_rewrite(r));
  EXPECT_EQ(fn(nullptr), 1 * 2 + 3 * 4 + 5 * 6 + 7 * 8);
  dbrew_free(r);
}

TEST(CApiTest, ConfigAndStats) {
  dbrew_rewriter* r = dbrew_new(reinterpret_cast<void*>(&c_loop_sum));
  dbrew_set_unroll_cap(r, 64);
  dbrew_set_inline_depth(r, 4);
  dbrew_setpar(r, 1, 6);
  auto fn = reinterpret_cast<long (*)(long, long)>(dbrew_rewrite(r));
  EXPECT_EQ(fn(0, 0), 15);  // 0+1+..+5
  EXPECT_GT(dbrew_stat_folded(r), 0u);
  EXPECT_GT(dbrew_stat_emitted(r), 0u);
  EXPECT_GT(dbrew_stat_code_bytes(r), 0u);
  EXPECT_EQ(dbrew_stat_inlined_calls(r), 0u);
  dbrew_free(r);
}

TEST(CApiTest, InlinedCallStat) {
  dbrew_rewriter* r = dbrew_new(reinterpret_cast<void*>(&c_call_helper));
  auto fn = reinterpret_cast<long (*)(long, long)>(dbrew_rewrite(r));
  EXPECT_EQ(fn(2, 3), c_call_helper(2, 3));
  EXPECT_GE(dbrew_stat_inlined_calls(r), 2u);
  dbrew_free(r);
}

TEST(CApiTest, ErrorFallsBackToOriginal) {
  dbrew_rewriter* r = dbrew_new(reinterpret_cast<void*>(&c_gcd));
  dbrew_set_buffer_size(r, 1u << 30);  // absurd but allocatable; fine
  auto fn = reinterpret_cast<long (*)(long, long)>(dbrew_rewrite(r));
  EXPECT_EQ(fn(48, 18), 6);
  dbrew_free(r);
}

// --- Generated code inspection (paper Fig. 8 shape) -------------------------

TEST(DbrewTest, GeneratedCodeIsAvailableForDumping) {
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&c_min_signed));
  rewriter.SetParam(0, 42);
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value());
  EXPECT_FALSE(rewriter.code().empty());
  EXPECT_EQ(rewriter.code().size(), rewriter.stats().code_bytes);
}

}  // namespace
}  // namespace dbll::dbrew

// --- Indirect-call inlining & value-aware widening (callback fusion) --------

namespace dbll::dbrew {
namespace {

TEST(CallbackFusionTest, IndirectCallThroughFixedMemoryIsInlined) {
  static const long params[2] = {3, 11};
  static const CbConfig config{&cb_affine, params};
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&cb_apply));
  rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(&config));
  rewriter.SetMemRange(&config, &config + 1);
  rewriter.SetMemRange(params, params + 2);
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
  EXPECT_GT(rewriter.stats().inlined_calls, 0u);

  // No call instructions survive: the callback body is fused into the loop.
  auto cfg = x86::BuildCfg(*rewritten);
  ASSERT_TRUE(cfg.has_value());
  for (const auto& [address, block] : cfg->blocks) {
    for (const auto& instr : block.instrs) {
      EXPECT_NE(instr.mnemonic, x86::Mnemonic::kCall)
          << "unfused call at " << std::hex << instr.address;
    }
  }

  auto fn = reinterpret_cast<long (*)(const CbConfig*, long)>(*rewritten);
  for (long n : {0L, 1L, 7L, 100L, 1000L}) {
    EXPECT_EQ(fn(nullptr, n), cb_apply(&config, n)) << "n=" << n;
  }
}

TEST(CallbackFusionTest, SecondCallbackGetsItsOwnSpecialization) {
  static const long params[2] = {-4, 9};
  static const CbConfig config{&cb_poly, params};
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&cb_apply));
  rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(&config));
  rewriter.SetMemRange(&config, &config + 1);
  rewriter.SetMemRange(params, params + 2);
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
  auto fn = reinterpret_cast<long (*)(const CbConfig*, long)>(*rewritten);
  EXPECT_EQ(fn(nullptr, 50), cb_apply(&config, 50));
}

TEST(CallbackFusionTest, WideningKeepsLoopInvariants) {
  // A small unroll cap forces widening almost immediately; the invariant
  // descriptor pointer must survive so inlining continues to work.
  static const long params[2] = {2, 5};
  static const CbConfig config{&cb_affine, params};
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&cb_apply));
  rewriter.config().unroll_cap = 2;
  rewriter.SetParam(0, reinterpret_cast<std::uint64_t>(&config));
  rewriter.SetMemRange(&config, &config + 1);
  rewriter.SetMemRange(params, params + 2);
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
  auto cfg = x86::BuildCfg(*rewritten);
  ASSERT_TRUE(cfg.has_value());
  for (const auto& [address, block] : cfg->blocks) {
    for (const auto& instr : block.instrs) {
      EXPECT_NE(instr.mnemonic, x86::Mnemonic::kCall);
    }
  }
  auto fn = reinterpret_cast<long (*)(const CbConfig*, long)>(*rewritten);
  EXPECT_EQ(fn(nullptr, 200), cb_apply(&config, 200));
}

TEST(CallbackFusionTest, UnknownPointerKeepsIndirectCall) {
  // Without fixation the target is unknown: the indirect call must be
  // re-emitted as-is and still work.
  Rewriter rewriter(reinterpret_cast<std::uint64_t>(&cb_apply));
  auto rewritten = rewriter.Rewrite();
  ASSERT_TRUE(rewritten.has_value()) << rewritten.error().Format();
  static const long params[2] = {1, 2};
  const CbConfig config{&cb_affine, params};
  auto fn = reinterpret_cast<long (*)(const CbConfig*, long)>(*rewritten);
  EXPECT_EQ(fn(&config, 30), cb_apply(&config, 30));
}

}  // namespace
}  // namespace dbll::dbrew
