// dbll tests -- the observability layer (include/dbll/obs/obs.h): span
// recording, nesting and thread attribution, chrome-trace JSON export,
// disabled-mode cost, the metrics registry, its agreement with the legacy
// Rewriter::Stats / CacheStats surfaces, and the dbll_obs_* / dbll_rewriter_*
// C API contracts.
//
// Tracing is process-global state; every test that enables it restores the
// disabled default before finishing (TraceSession below), so tests compose
// in one binary.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "corpus.h"
#include "dbll/dbrew/capi.h"
#include "dbll/dbrew/rewriter.h"
#include "dbll/lift/lifter.h"
#include "dbll/obs/obs.h"
#include "dbll/runtime/compile_service.h"

namespace dbll::obs {
namespace {

/// Enables tracing on an empty buffer; disables and clears on destruction.
class TraceSession {
 public:
  TraceSession() {
    Tracer::Default().Clear();
    Tracer::Default().Enable();
  }
  ~TraceSession() {
    Tracer::Default().Disable();
    Tracer::Default().Clear();
  }
};

std::uint64_t CountEvents(const std::vector<SpanEvent>& events,
                          const std::string& name) {
  std::uint64_t count = 0;
  for (const SpanEvent& e : events) {
    if (name == e.name) ++count;
  }
  return count;
}

// --- Tracer -----------------------------------------------------------------

TEST(TracerTest, DisabledSpansEmitNothing) {
  Tracer::Default().Clear();
  ASSERT_FALSE(Tracer::Default().enabled());
  {
    DBLL_TRACE_SPAN("should.not.appear");
    DBLL_TRACE_SPAN("neither.should.this");
  }
  EXPECT_TRUE(Tracer::Default().Events().empty());

  // RecordManual is also a no-op while disabled.
  Tracer::Default().RecordManual("manual", 1, 2);
  EXPECT_TRUE(Tracer::Default().Events().empty());
}

TEST(TracerTest, RecordsNestedSpansWithDepth) {
  TraceSession session;
  {
    DBLL_TRACE_SPAN("outer");
    {
      DBLL_TRACE_SPAN("inner");
    }
    {
      DBLL_TRACE_SPAN("inner");
    }
  }
  const auto events = Tracer::Default().Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(CountEvents(events, "outer"), 1u);
  EXPECT_EQ(CountEvents(events, "inner"), 2u);
  for (const SpanEvent& e : events) {
    if (std::string("outer") == e.name) {
      EXPECT_EQ(e.depth, 0u);
    } else {
      EXPECT_EQ(e.depth, 1u);
    }
  }
  // Events() is sorted by start time: outer opened first.
  EXPECT_STREQ(events.front().name, "outer");
  // The outer span covers both inner spans.
  const SpanEvent& outer = events.front();
  for (const SpanEvent& e : events) {
    EXPECT_GE(e.start_ns, outer.start_ns);
    EXPECT_LE(e.start_ns + e.dur_ns, outer.start_ns + outer.dur_ns);
  }
}

TEST(TracerTest, AttributesSpansToThreads) {
  TraceSession session;
  {
    DBLL_TRACE_SPAN("main.span");
  }
  std::thread other([] { DBLL_TRACE_SPAN("other.span"); });
  other.join();

  const auto events = Tracer::Default().Events();
  ASSERT_EQ(events.size(), 2u);
  std::uint32_t main_tid = 0;
  std::uint32_t other_tid = 0;
  for (const SpanEvent& e : events) {
    if (std::string("main.span") == e.name) main_tid = e.tid;
    if (std::string("other.span") == e.name) other_tid = e.tid;
  }
  EXPECT_NE(main_tid, other_tid);
  // Both threads start their own nesting at depth 0.
  for (const SpanEvent& e : events) EXPECT_EQ(e.depth, 0u);
}

TEST(TracerTest, ClearDropsRecordedSpans) {
  TraceSession session;
  {
    DBLL_TRACE_SPAN("to.be.dropped");
  }
  ASSERT_EQ(Tracer::Default().Events().size(), 1u);
  Tracer::Default().Clear();
  EXPECT_TRUE(Tracer::Default().Events().empty());
}

TEST(TracerTest, ChromeTraceJsonContainsEventNames) {
  TraceSession session;
  {
    DBLL_TRACE_SPAN("json.outer");
    DBLL_TRACE_SPAN("json.inner");
  }
  const std::string json = Tracer::Default().ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"json.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"json.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  // Structural sanity: braces and brackets balance and the document is one
  // object (a cheap stand-in for a full JSON parser; scripts/
  // validate_trace.py runs the real one in CI).
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TracerTest, TextSummaryAggregatesPerName) {
  TraceSession session;
  for (int i = 0; i < 3; ++i) {
    DBLL_TRACE_SPAN("summary.span");
  }
  const std::string summary = Tracer::Default().TextSummary();
  EXPECT_NE(summary.find("summary.span"), std::string::npos);
  EXPECT_NE(summary.find("3"), std::string::npos);
}

// --- Registry ---------------------------------------------------------------

TEST(RegistryTest, CountersGaugesHistograms) {
  Registry registry;  // private registry: no cross-test interference
  registry.GetCounter("test.counter").Add(2);
  registry.GetCounter("test.counter").Add(3);
  EXPECT_EQ(registry.GetCounter("test.counter").value(), 5u);

  registry.GetGauge("test.gauge").Set(42);
  registry.GetGauge("test.gauge").Add(-2);
  EXPECT_EQ(registry.GetGauge("test.gauge").value(), 40);

  Histogram& histogram = registry.GetHistogram("test.histogram");
  histogram.Record(10);
  histogram.Record(30);
  EXPECT_EQ(histogram.count(), 2u);
  EXPECT_EQ(histogram.sum(), 40u);
  EXPECT_EQ(histogram.min(), 10u);
  EXPECT_EQ(histogram.max(), 30u);

  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  // Snapshot is sorted by name.
  EXPECT_EQ(snapshot[0].name, "test.counter");
  EXPECT_EQ(snapshot[0].kind, MetricKind::kCounter);
  EXPECT_EQ(snapshot[0].value, 5u);
  EXPECT_EQ(snapshot[1].name, "test.gauge");
  EXPECT_EQ(snapshot[2].name, "test.histogram");
  EXPECT_EQ(snapshot[2].value, 40u);
  EXPECT_EQ(snapshot[2].count, 2u);

  EXPECT_EQ(registry.Value("test.counter"), 5u);
  EXPECT_EQ(registry.Value("test.histogram"), 40u);
  EXPECT_EQ(registry.Value("no.such.metric"), 0u);

  registry.Reset();
  EXPECT_EQ(registry.Value("test.counter"), 0u);
  EXPECT_EQ(registry.GetHistogram("test.histogram").count(), 0u);
  EXPECT_EQ(registry.GetHistogram("test.histogram").min(), 0u);
}

TEST(RegistryTest, HandlesAreStableAcrossInserts) {
  Registry registry;
  Counter& first = registry.GetCounter("stable.a");
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("stable.fill." + std::to_string(i));
  }
  EXPECT_EQ(&first, &registry.GetCounter("stable.a"));
}

// --- Registry agreement with the legacy stats surfaces ----------------------

TEST(RegistryPipelineTest, RewriterStatsMatchRegistryDeltas) {
  Registry& registry = Registry::Default();
  const std::uint64_t emitted0 = registry.Value("rewriter.emitted_instrs");
  const std::uint64_t folded0 = registry.Value("rewriter.folded_instrs");
  const std::uint64_t code0 = registry.Value("rewriter.code_bytes");
  const std::uint64_t rewrites0 = registry.Value("rewriter.rewrites");

  dbrew::Rewriter rewriter(reinterpret_cast<std::uint64_t>(&c_loop_sum));
  rewriter.SetParam(0, 10);
  auto result = rewriter.Rewrite();
  ASSERT_TRUE(result.has_value()) << rewriter.last_error().Format();

  const dbrew::Rewriter::Stats& stats = rewriter.stats();
  EXPECT_EQ(registry.Value("rewriter.rewrites") - rewrites0, 1u);
  EXPECT_EQ(registry.Value("rewriter.emitted_instrs") - emitted0,
            stats.emitted_instrs);
  EXPECT_EQ(registry.Value("rewriter.folded_instrs") - folded0,
            stats.folded_instrs);
  EXPECT_EQ(registry.Value("rewriter.code_bytes") - code0, stats.code_bytes);
}

TEST(RegistryPipelineTest, CacheStatsMatchRegistryDeltas) {
  Registry& registry = Registry::Default();
  const std::uint64_t hits0 = registry.Value("cache.hits");
  const std::uint64_t misses0 = registry.Value("cache.misses");
  const std::uint64_t compiles0 = registry.Value("cache.compiles");
  const std::uint64_t lift0 = registry.Value("cache.lift_ns");
  const std::uint64_t opt0 = registry.Value("cache.opt_ns");
  const std::uint64_t jit0 = registry.Value("cache.jit_ns");

  runtime::CompileService service({/*workers=*/1, /*capacity=*/16});
  runtime::CompileRequest request(
      reinterpret_cast<std::uint64_t>(&c_arith_mix), lift::Signature::Ints(2));
  request.FixParam(0, 7);
  auto first = service.CompileSync(request);
  ASSERT_TRUE(first.has_value()) << first.error().Format();
  (void)service.Request(request).wait();  // hit
  service.WaitIdle();

  const runtime::CacheStats stats = service.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(registry.Value("cache.hits") - hits0, stats.hits);
  EXPECT_EQ(registry.Value("cache.misses") - misses0, stats.misses);
  EXPECT_EQ(registry.Value("cache.compiles") - compiles0, stats.compiles);
  EXPECT_EQ(registry.Value("cache.lift_ns") - lift0,
            stats.stage_total.lift_ns);
  EXPECT_EQ(registry.Value("cache.opt_ns") - opt0, stats.stage_total.opt_ns);
  EXPECT_EQ(registry.Value("cache.jit_ns") - jit0, stats.stage_total.jit_ns);
}

TEST(RegistryPipelineTest, TracedCompileProducesPipelineSpans) {
  TraceSession session;
  runtime::CompileService service({/*workers=*/1, /*capacity=*/16});
  runtime::CompileRequest request(
      reinterpret_cast<std::uint64_t>(&c_loop_fib), lift::Signature::Ints(1));
  auto entry = service.CompileSync(request);
  ASSERT_TRUE(entry.has_value()) << entry.error().Format();
  // wait() returns as soon as the result is published, which is *inside* the
  // worker's cache.compile/cache.install spans; drain the worker so those
  // guards have closed before we read the event list.
  service.WaitIdle();

  const auto events = Tracer::Default().Events();
  EXPECT_GE(CountEvents(events, "cache.compile"), 1u);
  EXPECT_GE(CountEvents(events, "cache.queue_wait"), 1u);
  EXPECT_GE(CountEvents(events, "cache.install"), 1u);
  EXPECT_GE(CountEvents(events, "lift.function"), 1u);
  EXPECT_GE(CountEvents(events, "cfg.build"), 1u);
  EXPECT_GE(CountEvents(events, "cfg.decode"), 1u);
  EXPECT_GE(CountEvents(events, "optimize.pipeline"), 1u);
  EXPECT_GE(CountEvents(events, "jit.compile"), 1u);

  // Nesting: the pipeline stages run inside the worker's cache.compile span.
  for (const SpanEvent& e : events) {
    if (std::string("lift.function") == e.name ||
        std::string("jit.compile") == e.name) {
      EXPECT_GE(e.depth, 1u) << e.name;
    }
  }
}

// --- Index-convention errors ------------------------------------------------

TEST(IndexConventionTest, RewriterRejectsOutOfRangeParam) {
  dbrew::Rewriter rewriter(reinterpret_cast<std::uint64_t>(&c_arith_mix));
  rewriter.SetParam(6, 1);  // only rdi..r9 (0..5) exist
  auto result = rewriter.Rewrite();
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind(), ErrorKind::kBadConfig);
  EXPECT_NE(result.error().Format().find("0-based"), std::string::npos);
  EXPECT_NE(result.error().Format().find("1-based"), std::string::npos);
}

TEST(IndexConventionTest, SpecializeParamRejectsOutOfRange) {
  lift::Lifter lifter;
  auto lifted = lifter.Lift(reinterpret_cast<std::uint64_t>(&c_arith_mix),
                            lift::Signature::Ints(2));
  ASSERT_TRUE(lifted.has_value()) << lifted.error().Format();

  Status status = lifted->SpecializeParam(2, 1);  // valid range is 0..1
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().kind(), ErrorKind::kBadConfig);
  EXPECT_NE(status.error().Format().find("0-based"), std::string::npos);
  EXPECT_NE(status.error().Format().find("1-based"), std::string::npos);

  status = lifted->SpecializeParam(-1, 1);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().kind(), ErrorKind::kBadConfig);
}

TEST(IndexConventionTest, CApiOneBasedMapsToCppZeroBased) {
  // dbll_rewriter_setpar(r, 1, v) must fix the *first* argument.
  dbll_rewriter* r =
      dbll_rewriter_new(reinterpret_cast<void*>(&c_arith_mix));
  dbll_rewriter_setpar(r, 1, 21);
  using Fn = long (*)(long, long);
  Fn fn = reinterpret_cast<Fn>(dbll_rewriter_rewrite(r));
  EXPECT_STREQ(dbll_rewriter_last_error(r), "");
  EXPECT_EQ(fn(/*ignored*/ 0, 5), c_arith_mix(21, 5));
  dbll_rewriter_free(r);
}

// --- C API: canonical names, aliases, error contract ------------------------

TEST(CApiTest, RewriterAliasesShareTheObject) {
  // dbrew_* and dbll_rewriter_* are the same functions on the same object.
  dbrew_rewriter* r = dbrew_new(reinterpret_cast<void*>(&c_loop_sum));
  dbll_rewriter_setpar(r, 1, 10);  // mix families on one object
  void* fn = dbrew_rewrite(r);
  ASSERT_NE(fn, nullptr);
  EXPECT_STREQ(dbrew_last_error(r), "");
  EXPECT_EQ(dbrew_stat_emitted(r), dbll_rewriter_stat_emitted(r));
  EXPECT_EQ(dbrew_stat_code_bytes(r), dbll_rewriter_stat_code_bytes(r));
  using Fn = long (*)(long);
  EXPECT_EQ(reinterpret_cast<Fn>(fn)(0), c_loop_sum(10));
  dbll_rewriter_free(r);  // alias-free through the canonical name
}

TEST(CApiTest, LastErrorContractAcrossObjectTypes) {
  // Rewriter: error set on failure, cleared by the next success.
  dbll_rewriter* r = dbll_rewriter_new(reinterpret_cast<void*>(&c_arith_mix));
  dbll_rewriter_setpar(r, 7, 1);  // out of range (1-based: 1..6)
  (void)dbll_rewriter_rewrite(r);
  EXPECT_NE(std::string(dbll_rewriter_last_error(r)).find("1-based"),
            std::string::npos);
  dbll_rewriter_free(r);

  // Cache request: failure message carries the convention note too.
  dbll_cache* cache = dbll_cache_new(1, 16);
  dbll_cache_req* req =
      dbll_cache_request(cache, reinterpret_cast<void*>(&c_arith_mix), 2, 1);
  dbll_cache_req_setpar(req, 3, 1);  // out of range (1-based: 1..2)
  (void)dbll_cache_wait(req);
  const std::string req_error = dbll_cache_req_last_error(req);
  EXPECT_NE(req_error.find("1-based"), std::string::npos);
  // Deprecated alias returns the same message.
  EXPECT_EQ(req_error, dbll_cache_req_error(req));
  // Service-level last_error reports the most recent failed compile.
  EXPECT_NE(std::string(dbll_cache_last_error(cache)).find("1-based"),
            std::string::npos);
  dbll_cache_req_free(req);

  // A successful request leaves its own error empty; the service-level
  // error keeps reporting the last *failure*.
  dbll_cache_req* good =
      dbll_cache_request(cache, reinterpret_cast<void*>(&c_arith_mix), 2, 1);
  dbll_cache_req_setpar(good, 1, 3);
  (void)dbll_cache_wait(good);
  EXPECT_STREQ(dbll_cache_req_last_error(good), "");
  EXPECT_NE(std::string(dbll_cache_last_error(cache)).size(), 0u);
  dbll_cache_req_free(good);
  dbll_cache_free(cache);
}

TEST(CApiTest, ObsSnapshotEnumeratesMetrics) {
  // Ensure at least one metric exists.
  Registry::Default().GetCounter("capi.test.counter").Add(4);

  dbll_obs_snapshot* snapshot = dbll_obs_snapshot_new();
  const std::uint64_t size = dbll_obs_snapshot_size(snapshot);
  ASSERT_GT(size, 0u);
  bool found = false;
  for (std::uint64_t i = 0; i < size; ++i) {
    const char* name = dbll_obs_snapshot_name(snapshot, i);
    ASSERT_NE(name, nullptr);
    if (std::string(name) == "capi.test.counter") {
      found = true;
      EXPECT_GE(dbll_obs_snapshot_value(snapshot, i), 4u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(dbll_obs_snapshot_name(snapshot, size), nullptr);
  EXPECT_EQ(dbll_obs_snapshot_value(snapshot, size), 0u);
  dbll_obs_snapshot_free(snapshot);

  EXPECT_GE(dbll_obs_value("capi.test.counter"), 4u);
  EXPECT_EQ(dbll_obs_value("no.such.metric"), 0u);
}

TEST(CApiTest, TraceControlAndWrite) {
  ASSERT_EQ(dbll_obs_trace_enabled(), 0);
  dbll_obs_trace_clear();
  dbll_obs_trace_enable();
  ASSERT_EQ(dbll_obs_trace_enabled(), 1);
  {
    DBLL_TRACE_SPAN("capi.trace.span");
  }
  dbll_obs_trace_disable();

  const std::string path =
      ::testing::TempDir() + "/dbll_obs_capi_trace.json";
  ASSERT_EQ(dbll_obs_trace_write(path.c_str()), 0);
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    content.append(buf, n);
  }
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_NE(content.find("capi.trace.span"), std::string::npos);

  // Unwritable path reports failure.
  EXPECT_NE(dbll_obs_trace_write("/nonexistent-dir/trace.json"), 0);
  dbll_obs_trace_clear();
}

}  // namespace
}  // namespace dbll::obs
