// dbll tests -- -O0 corpus declarations (see corpus_o0.cpp).
#pragma once

extern "C" {
long o0_locals(long a, long b);
long o0_branchy(long a, long b);
long o0_loop(long n);
double o0_float(double a, double b);
long o0_array(const long* data, long n);
long o0_calls(long a);
}
