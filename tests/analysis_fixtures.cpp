// dbll tests -- analysis fixtures (see analysis_fixtures.h). This TU is
// compiled with the corpus codegen flags (tests/CMakeLists.txt).
#include "analysis_fixtures.h"

extern "C" {

long af_double(long x) { return x * 2 + 1; }

volatile AfFn af_indirect_target = &af_double;

// The +1 after the call keeps it out of tail position: a tail call would be
// compiled to `jmp *%rax` (a different diagnostic kind) instead of an
// indirect call.
long af_indirect_call(long x) { return af_indirect_target(x + 1) + 1; }

// noinline + the trailing add keep this a plain direct call, so the fatal is
// only reachable through the transitive callee audit.
__attribute__((noinline)) long af_calls_bad(long x) {
  return af_indirect_call(x) + 3;
}

}  // extern "C"
