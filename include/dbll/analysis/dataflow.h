// dbll -- generic dataflow framework over decoded x86 CFGs.
//
// The lattice is the powerset of a fixed 38-element location universe: the 16
// general-purpose registers, the 16 SSE vector registers, and the six status
// flags the pipeline models (paper Sec. III-D). A set fits in one word, so
// transfer functions are two bit-ops and the worklist solver converges in a
// handful of passes even on loopy CFGs.
//
// The solver is direction-agnostic (union meet, i.e. "may" analyses): clients
// provide per-block gen/kill summaries plus the block graph in adjacency form
// and get per-block in/out sets back. Concrete analyses built on top live in
// liveness.h (flag/register liveness) and audit.h (lift-eligibility); see
// docs/static_analysis.md for how to add one.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dbll/x86/cfg.h"
#include "dbll/x86/insn.h"

namespace dbll::analysis {

/// A set of dataflow locations, bit-packed into one word. Bit layout:
/// [0,16) GP registers, [16,32) XMM registers, [32,38) flags in x86::Flag
/// enumeration order (which matches the x86::FlagMask bit order).
class LocSet {
 public:
  static constexpr int kGpBase = 0;
  static constexpr int kVecBase = x86::kGpRegCount;
  static constexpr int kFlagBase = kVecBase + x86::kVecRegCount;
  static constexpr int kLocCount = kFlagBase + x86::kFlagCount;

  constexpr LocSet() = default;

  static constexpr LocSet Gp(int index) { return LocSet(Bit(kGpBase + index)); }
  static constexpr LocSet Vec(int index) {
    return LocSet(Bit(kVecBase + index));
  }
  static constexpr LocSet FlagLoc(x86::Flag flag) {
    return LocSet(Bit(kFlagBase + static_cast<int>(flag)));
  }
  /// GP or XMM register to its location; other classes (rip, none) map to the
  /// empty set.
  static LocSet FromReg(x86::Reg reg);
  /// From an x86::FlagMask bitmask. The Flag enum order and the FlagMask bit
  /// order agree, so this is a plain shift.
  static constexpr LocSet FromFlagMask(std::uint8_t mask) {
    return LocSet(static_cast<std::uint64_t>(mask & x86::kFlagAll)
                  << kFlagBase);
  }
  static constexpr LocSet AllGp() {
    return LocSet(0xffffull << kGpBase);
  }
  static constexpr LocSet AllVec() {
    return LocSet(0xffffull << kVecBase);
  }
  static constexpr LocSet AllFlags() {
    return LocSet(static_cast<std::uint64_t>(x86::kFlagAll) << kFlagBase);
  }
  static constexpr LocSet All() {
    return AllGp() | AllVec() | AllFlags();
  }

  constexpr bool empty() const { return bits_ == 0; }
  int count() const;
  constexpr bool Test(int loc) const { return (bits_ >> loc) & 1u; }
  constexpr bool TestGp(int index) const { return Test(kGpBase + index); }
  constexpr bool TestVec(int index) const { return Test(kVecBase + index); }
  constexpr bool TestFlag(x86::Flag flag) const {
    return Test(kFlagBase + static_cast<int>(flag));
  }
  constexpr bool ContainsAll(LocSet other) const {
    return (other.bits_ & ~bits_) == 0;
  }
  constexpr bool Intersects(LocSet other) const {
    return (bits_ & other.bits_) != 0;
  }

  /// The flag sub-set as an x86::FlagMask bitmask.
  constexpr std::uint8_t FlagMask() const {
    return static_cast<std::uint8_t>((bits_ >> kFlagBase) & x86::kFlagAll);
  }

  constexpr std::uint64_t bits() const { return bits_; }

  constexpr friend LocSet operator|(LocSet a, LocSet b) {
    return LocSet(a.bits_ | b.bits_);
  }
  constexpr friend LocSet operator&(LocSet a, LocSet b) {
    return LocSet(a.bits_ & b.bits_);
  }
  /// Set difference.
  constexpr friend LocSet operator-(LocSet a, LocSet b) {
    return LocSet(a.bits_ & ~b.bits_);
  }
  LocSet& operator|=(LocSet other) {
    bits_ |= other.bits_;
    return *this;
  }
  LocSet& operator&=(LocSet other) {
    bits_ &= other.bits_;
    return *this;
  }
  LocSet& operator-=(LocSet other) {
    bits_ &= ~other.bits_;
    return *this;
  }
  constexpr bool operator==(const LocSet&) const = default;

  /// Human-readable listing ("rax rcx xmm0 ZF CF"), for lint output and test
  /// failure messages.
  std::string ToString() const;

 private:
  explicit constexpr LocSet(std::uint64_t bits) : bits_(bits) {}
  static constexpr std::uint64_t Bit(int loc) { return 1ull << loc; }

  std::uint64_t bits_ = 0;
};

/// Per-block transfer function in gen/kill form. For a backward analysis the
/// block equation is in = gen | (out - kill); forward is out = gen | (in -
/// kill).
struct Transfer {
  LocSet gen;
  LocSet kill;
};

enum class Direction : std::uint8_t { kForward, kBackward };

/// Block graph in adjacency form over dense indices [0, n). Both edge
/// directions are stored so either solve direction walks O(edges).
struct Graph {
  std::vector<std::vector<int>> succs;
  std::vector<std::vector<int>> preds;
  int entry = 0;

  std::size_t size() const { return succs.size(); }
};

struct DataflowResult {
  std::vector<LocSet> in;   ///< value at block entry
  std::vector<LocSet> out;  ///< value at block exit
  /// Worklist pops until the fixpoint was reached (solver-convergence tests).
  int iterations = 0;
};

/// Union-meet worklist solver. `boundary` seeds the out-set of exit blocks
/// (no successors) for backward problems, and the in-set of entry blocks (no
/// predecessors) for forward ones.
DataflowResult Solve(Direction direction, const Graph& graph,
                     const std::vector<Transfer>& transfer, LocSet boundary);

/// Dense-index view of an x86::Cfg: blocks numbered in address order, with
/// the adjacency lists derived from branch_target/fall_through plus any
/// resolved jump-table targets (successors) and BasicBlock::predecessors
/// (predecessors).
struct CfgIndex {
  std::vector<const x86::BasicBlock*> blocks;
  std::unordered_map<std::uint64_t, int> block_of;  ///< start address -> index
  Graph graph;

  explicit CfgIndex(const x86::Cfg& cfg);
};

}  // namespace dbll::analysis
