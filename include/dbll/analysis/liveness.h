// dbll -- register and flag liveness over a decoded function.
//
// A backward may-analysis on the dataflow.h framework: a location is live at
// a program point when some path to an exit reads it before overwriting it.
// Two consumers:
//
//  * The lifter queries the per-instruction live-flag mask to skip
//    materializing EFLAGS definitions nothing reads (LiftConfig::
//    flag_liveness) -- the static complement of the paper's dynamic flag
//    cache, which only recovers comparisons that *are* consumed.
//  * The DBrew rewriter prunes emitted instructions whose defined registers
//    and flags are all dead (src/dbrew/prune.cpp), and tests assert lifter
//    reads against live-in sets.
//
// Soundness direction: uses are over- and kills under-approximated, so
// "dead" is a proof and "live" merely an upper bound. Unknown instructions
// read everything and kill nothing. ABI boundaries follow what the pipeline
// itself implements: calls kill all six flags (the lifter undefines them,
// SysV leaves them unspecified) and conservatively read every register;
// ret reads the return registers (rax, rdx, xmm0, xmm1), the stack pointer,
// and the callee-saved set.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "dbll/analysis/dataflow.h"

namespace dbll::analysis {

/// Read/write summary of one instruction over the LocSet universe.
struct InstrEffects {
  LocSet uses;  ///< locations read (over-approximated when unsure)
  LocSet defs;  ///< locations written
  LocSet kills; ///< subset of defs that fully overwrite the old value
  bool writes_memory = false;  ///< stores, pushes, calls
  /// False when the mnemonic fell through to the fully conservative default
  /// (reads everything, kills nothing). Such instructions are never
  /// candidates for dead-store pruning.
  bool known = true;
};

/// Effects of `instr`, derived from its operands, the implicit-register
/// conventions of the mnemonic, and x86::FlagEffectsOf.
InstrEffects EffectsOf(const x86::Instr& instr);

/// Liveness solution for one function. Sets are keyed by address so the
/// result outlives the Cfg it was computed from.
struct Liveness {
  /// Live locations at block entry / exit, keyed by block start address.
  std::unordered_map<std::uint64_t, LocSet> block_in;
  std::unordered_map<std::uint64_t, LocSet> block_out;
  /// Live locations immediately *after* each instruction (what a definition
  /// at that instruction must satisfy to matter).
  std::unordered_map<std::uint64_t, LocSet> after_instr;
  /// Solver worklist pops until convergence.
  int iterations = 0;

  /// Lookup with a conservative everything-live default for addresses the
  /// analysis never saw.
  LocSet AfterInstr(std::uint64_t address) const {
    auto it = after_instr.find(address);
    return it != after_instr.end() ? it->second : LocSet::All();
  }
  /// Flags live right after the instruction, as an x86::FlagMask bitmask.
  std::uint8_t LiveFlagsAfter(std::uint64_t address) const {
    return AfterInstr(address).FlagMask();
  }
  /// Flags live at block entry (x86::FlagMask); conservative default.
  std::uint8_t LiveFlagsIn(std::uint64_t block_start) const {
    auto it = block_in.find(block_start);
    if (it == block_in.end()) return x86::kFlagAll;
    return it->second.FlagMask();
  }
};

/// Runs backward liveness over `cfg`.
Liveness ComputeLiveness(const x86::Cfg& cfg);

}  // namespace dbll::analysis
