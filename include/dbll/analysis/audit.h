// dbll -- lift-eligibility audit (static pre-flight for the tiered pipeline).
//
// A doomed Tier-0 attempt used to burn a full lift -> verify -> O3 run before
// the negative cache (docs/robustness.md) learned anything. The auditor
// classifies decoded instructions and CFG shapes the LLVM lifter cannot
// handle *before* any LLVM work: CompileService consults it ahead of Tier-0,
// routes kFatal functions straight to the DBrew tier, and seeds the negative
// cache with the kUnsupported root cause. The dbll-lint tool prints the same
// diagnostics with disassembly context for offline use.
//
// Counters: analysis.audits (entry points audited), analysis.diagnostics
// (records produced), analysis.fatal (audits with at least one kFatal);
// every audit runs under a DBLL_TRACE_SPAN("analysis.audit").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dbll/analysis/ranges.h"
#include "dbll/x86/cfg.h"

namespace dbll::analysis {

enum class Severity : std::uint8_t { kInfo = 0, kWarning = 1, kFatal = 2 };

enum class DiagKind : std::uint8_t {
  kDecodeFailure,       ///< bytes are not a decodable instruction
  kUnsupportedOpcode,   ///< decodes, but the lifter has no semantics for it
  kIndirectJump,        ///< jump through register/memory: CFG undiscoverable
  kIndirectCall,        ///< call through register/memory: lifter rejects
  kMidInstructionJump,  ///< branch into the middle of an instruction
  kJumpOutOfRange,      ///< branch target outside the provided buffer
  kRipWrite,            ///< RIP-relative memory write (position-dependent)
  kResourceLimit,       ///< function exceeds the decoded-instruction budget
};

const char* ToString(Severity severity) noexcept;
const char* ToString(DiagKind kind) noexcept;

/// One classified finding, anchored at a code address.
struct Diagnostic {
  std::uint64_t site = 0;
  Severity severity = Severity::kInfo;
  DiagKind kind = DiagKind::kDecodeFailure;
  std::string message;
};

struct AuditReport {
  std::vector<Diagnostic> diagnostics;

  Severity worst() const;
  /// True when nothing blocks a Tier-0 (LLVM) lift attempt.
  bool lift_eligible() const { return worst() != Severity::kFatal; }
  const Diagnostic* first_fatal() const;
};

struct AuditOptions {
  x86::CfgOptions cfg;
  /// Audit direct call targets transitively (the lifter lifts them too when
  /// LiftConfig::lift_calls is set, so a bad callee dooms the lift).
  bool follow_calls = true;
  int max_call_depth = 16;
  /// Run the value-range analysis and resolve register-indirect jumps
  /// against proven jump tables (docs/static_analysis.md): a resolved site
  /// downgrades from kFatal to an informational diagnostic and its targets
  /// become real CFG edges. In-process audits only (AuditFunction); buffer
  /// audits never read table memory and keep the fatal classification.
  /// Mirrors LiftConfig::value_ranges (both default on) so the audit verdict
  /// matches what the lifter can actually lift.
  bool value_ranges = true;
  /// Step budget forwarded to the range analysis.
  std::size_t range_budget = RangeOptions{}.budget;
};

/// Audits the function at `entry` in the current process image.
AuditReport AuditFunction(std::uint64_t entry, const AuditOptions& options = {});

/// Audits a function decoded from a buffer (`code[i]` lives at
/// `base_address + i`). Calls are not followed outside the buffer.
AuditReport AuditBuffer(std::span<const std::uint8_t> code,
                        std::uint64_t base_address, std::uint64_t entry,
                        const AuditOptions& options = {});

/// Instruction/shape checks over an already-built CFG (no decode errors --
/// those surface while building). Does not follow calls and does not touch
/// the analysis.* counters; the entry points above wrap this.
void AuditCfg(const x86::Cfg& cfg, AuditReport& report);

}  // namespace dbll::analysis
