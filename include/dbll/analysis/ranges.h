// dbll -- forward value-range dataflow over decoded x86 CFGs.
//
// Tracks, for each of the 16 general-purpose registers, an unsigned interval
// [lo, hi] plus a known-bits pair (mask, value) -- the product lattice of
// LLVM's ConstantRange and KnownBits, collapsed to what the rewriting
// pipeline needs (ROADMAP item 2, docs/static_analysis.md "Value-range
// analysis"). The analysis is forward, per-instruction, with conditional-edge
// refinement from the cmp/test feeding each jcc, widening on loop heads, and
// a per-function step budget; every shortcut degrades to top, never to an
// unsound bound.
//
// Three consumers spend the results (paper Sec. VIII lifts two of its own
// documented limitations with them):
//   1. the lifter annotates loads with !range metadata and folds
//      provably-constant addresses (src/lift/function_lifter.cpp),
//   2. the specializer chases proven pointer slots between fixed memory
//      regions so nested-pointer structs specialize at Tier 0
//      (FindPointerLinks, src/runtime/compile_service.cpp),
//   3. the audit gate resolves range-bounded indirect jumps against detected
//      jump tables, turning kIndirectJump fatals into real CFG edges
//      (ResolveJumpTables / BuildRangeResolvedCfg).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "dbll/support/error.h"
#include "dbll/x86/cfg.h"
#include "dbll/x86/insn.h"

namespace dbll::analysis {

/// Abstract value of one 64-bit register: the intersection of an unsigned
/// interval [lo, hi] (inclusive) and a known-bits constraint (every concrete
/// value v satisfies (v & known_mask) == known_val). Top is [0, ~0] with no
/// known bits; there is no explicit bottom -- unreachable states simply stay
/// out of the join.
struct ValueRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = ~0ull;
  std::uint64_t known_mask = 0;
  std::uint64_t known_val = 0;

  static constexpr ValueRange Top() { return ValueRange{}; }
  static constexpr ValueRange Constant(std::uint64_t value) {
    return ValueRange{value, value, ~0ull, value};
  }
  static constexpr ValueRange Bounded(std::uint64_t lo, std::uint64_t hi) {
    return ValueRange{lo, hi, 0, 0};
  }

  bool IsTop() const { return lo == 0 && hi == ~0ull && known_mask == 0; }
  bool IsConstant() const { return lo == hi; }
  std::uint64_t ConstantValue() const { return lo; }
  /// Whether the concrete value `v` is admitted by both constraints.
  bool Contains(std::uint64_t v) const {
    return v >= lo && v <= hi && (v & known_mask) == known_val;
  }
  /// Number of admitted interval values (saturating at ~0ull for top-like
  /// ranges); used to budget jump-table scans.
  std::uint64_t IntervalSize() const {
    return hi - lo == ~0ull ? ~0ull : hi - lo + 1;
  }

  bool operator==(const ValueRange&) const = default;
};

/// Least upper bound of two reachable states.
ValueRange Join(const ValueRange& a, const ValueRange& b);
/// Widening operator applied on loop heads after repeated visits: any bound
/// still moving is pushed straight to its extreme so the fixpoint is reached
/// in O(1) further passes per location.
ValueRange Widen(const ValueRange& previous, const ValueRange& next);
/// Intersection (conditional-edge refinement); if the constraints are
/// contradictory the edge is infeasible and the narrower operand wins --
/// callers only use the result on edges the program can take, so any
/// non-empty sound superset is acceptable.
ValueRange Meet(const ValueRange& a, const ValueRange& b);

// Interval/known-bits transfer helpers, exposed for the unit-test vectors in
// tests/analysis_test.cpp. All operate on full 64-bit values; callers clamp
// to the operand width afterwards (TruncateToWidth).
ValueRange RangeAdd(const ValueRange& a, const ValueRange& b);
ValueRange RangeSub(const ValueRange& a, const ValueRange& b);
ValueRange RangeAnd(const ValueRange& a, const ValueRange& b);
ValueRange RangeOr(const ValueRange& a, const ValueRange& b);
ValueRange RangeXor(const ValueRange& a, const ValueRange& b);
ValueRange RangeMul(const ValueRange& a, const ValueRange& b);
/// Shifts model the hardware count masking of a `width`-byte (1/2/4/8)
/// destination: the count is taken modulo 64 for 8-byte operands and modulo
/// 32 for everything narrower, exactly like the silicon (`shr eax, 33`
/// shifts by 1, it does not clear the register).
ValueRange RangeShl(const ValueRange& a, const ValueRange& amount,
                    int width = 8);
ValueRange RangeShr(const ValueRange& a, const ValueRange& amount,
                    int width = 8);
/// Zero-extending truncation to `width` bytes (1/2/4/8): models the x86
/// rule that 32-bit destinations zero the upper half, and bounds the result
/// of narrow loads.
ValueRange TruncateToWidth(const ValueRange& a, int width);
/// Refine `reg` with the constraint `reg <cond> constant` taken from a
/// cmp-immediate + jcc pair. Signed conditions only refine when the range
/// proves the sign is unambiguous; everything else returns `reg` unchanged.
ValueRange RefineByCondition(const ValueRange& reg, x86::Cond cond,
                             std::uint64_t constant);

/// A memory interval the analysis may treat as constant *and read during
/// analysis*. The soundness contract is exactly the DBrew SetMemRange one
/// (paper Sec. V): the caller asserts the bytes do not change between
/// analysis and every execution of the derived code; the runtime guards
/// staleness with the Tier-1 memcmp check (src/runtime/fallback.cpp).
struct ConstRegion {
  std::uint64_t base = 0;
  std::uint64_t size = 0;

  bool ContainsRange(std::uint64_t addr, std::uint64_t len) const {
    return addr >= base && len <= size && addr - base <= size - len;
  }
};

struct RangeOptions {
  /// Upper bound on instruction transfer steps (visits x block lengths)
  /// before the analysis gives up and reports all-top. Keeps loopy CFGs
  /// O(budget) regardless of lattice height.
  std::size_t budget = 1u << 17;
  /// Entry-state seeds: GP register index -> abstract value on function
  /// entry. The specializer seeds fixed arguments here.
  std::vector<std::pair<int, ValueRange>> entry_values;
  /// Memory the analysis may read through (see ConstRegion contract).
  std::vector<ConstRegion> const_regions;
};

/// Fixpoint result: per-instruction "before" states for the GP file, plus
/// the value ranges of loaded values for the lifter's !range annotations.
class FunctionRanges {
 public:
  using GpState = std::array<ValueRange, x86::kGpRegCount>;

  /// Abstract GP state immediately before the instruction at `address`
  /// executes. Unknown addresses (or an over-budget analysis) yield all-top.
  const GpState& Before(std::uint64_t address) const;
  /// Range of `gp_index` immediately before `address`.
  const ValueRange& BeforeReg(std::uint64_t address, int gp_index) const {
    return Before(address)[static_cast<std::size_t>(gp_index)];
  }
  /// Range of the value produced by the memory load at `address` (kMov /
  /// kMovzx from memory into a GP register); top when unknown or not a
  /// tracked load.
  const ValueRange& LoadRange(std::uint64_t address) const;

  /// False when the step budget was exhausted (every query returns top).
  bool converged() const { return converged_; }
  /// Transfer steps actually executed (budget telemetry and tests).
  std::size_t steps() const { return steps_; }

 private:
  friend FunctionRanges ComputeRanges(const x86::Cfg&, const RangeOptions&);

  std::map<std::uint64_t, GpState> before_;
  std::map<std::uint64_t, ValueRange> loads_;
  bool converged_ = false;
  std::size_t steps_ = 0;
};

/// Runs the forward fixpoint over `cfg`. Never fails: an exhausted budget or
/// unmodeled instruction degrades the affected state to top.
FunctionRanges ComputeRanges(const x86::Cfg& cfg,
                             const RangeOptions& options = {});

/// One resolved jump-table dispatch site.
struct JumpTable {
  std::uint64_t site = 0;        ///< address of the indirect jmp
  std::uint64_t table_base = 0;  ///< first table entry read
  int entry_size = 0;            ///< 4 (pc-relative i32) or 8 (absolute u64)
  bool relative = false;         ///< entries are i32 offsets from table_base
  std::vector<std::uint64_t> targets;  ///< sorted, deduplicated
};

/// Pattern-matches every unresolved register-indirect jmp in `cfg` against
/// the two jump-table idioms the compilers we rewrite emit --
///   lea rbase,[rip+tbl]; movsxd rt,[rbase+idx*4]; add rt,rbase; jmp rt
/// (PIC, i32 entries relative to the table) and the absolute form
///   mov rt,[rbase+idx*8]; jmp rt   /   jmp [rbase+idx*8]
/// -- and accepts a site only when the ranges prove the table base is a
/// singleton constant and the index interval is bounded (<= max_entries).
/// Table entries are read from process memory, so a site additionally
/// resolves only when the full scanned range lies inside a declared
/// `options.const_regions` entry (caller-asserted constancy) or inside a
/// read-only mapping of this process (.rodata of the image under rewrite,
/// sealed code buffers): the bytes are then both mapped and unable to change
/// behind the derived code's back. Writable tables stay unresolved.
std::vector<JumpTable> ResolveJumpTables(const x86::Cfg& cfg,
                                         const FunctionRanges& ranges,
                                         const RangeOptions& options = {},
                                         std::size_t max_entries = 512);

/// A CFG whose jump tables have been resolved into real edges, together with
/// the analysis artifacts the consumers reuse.
struct RangeResolvedCfg {
  x86::Cfg cfg;
  FunctionRanges ranges;
  std::vector<JumpTable> tables;
  /// True when at least one indirect jmp remains without proven targets
  /// (such a CFG is incomplete: the audit gate keeps it kFatal).
  bool unresolved_indirect = false;
};

/// Two-phase driver: optimistic decode tolerating indirect jmps, range
/// fixpoint, jump-table resolution, then a rebuild that follows the proven
/// targets (iterated until no new table resolves, max 4 rounds). With
/// `options.resolve_jump_tables == false` in spirit -- i.e. when callers
/// want the plain behavior -- use x86::BuildCfg directly instead.
Expected<RangeResolvedCfg> BuildRangeResolvedCfg(
    std::uint64_t entry, const x86::CfgOptions& cfg_options = {},
    const RangeOptions& range_options = {});

/// One fixed memory region participating in specialization, with its bytes
/// snapshotted at request time (SpecAction kConstMem / kConstRange).
struct FixedRegion {
  std::uint64_t address = 0;
  std::span<const std::uint8_t> bytes;
};

/// An 8-byte slot inside one fixed region whose snapshotted value provably
/// addresses the interior of another fixed region: regions[src].bytes at
/// [src_offset, src_offset+8) holds dst_address where
/// dst_address == regions[dst].address + dst_offset. This is the
/// "address provably inside a FixedMemRange" proof the specializer uses to
/// chase one level of pointer indirection (docs/static_analysis.md).
struct PointerLink {
  int src_region = 0;
  std::uint64_t src_offset = 0;
  int dst_region = 0;
  std::uint64_t dst_offset = 0;
};

/// Scans every 8-byte-aligned slot of every region for values landing inside
/// a (possibly different) region. Pure function of the snapshots; sorted by
/// (src_region, src_offset).
std::vector<PointerLink> FindPointerLinks(std::span<const FixedRegion> regions);

}  // namespace dbll::analysis
