// dbll -- meta-emulation state for binary specialization.
//
// The DBrew rewriter (paper Sec. II and [7]) partially evaluates a compiled
// function: values derived from the rewriter configuration (fixed parameters,
// fixed memory ranges) are *known* at rewrite time; everything else is
// *unknown* and handled by emitting the original instruction into the new
// code stream. MetaState tracks, for every architectural resource, whether
// its value is known and whether the runtime register content will actually
// hold that value ("materialized").
//
// Invariants the emulator maintains:
//  * A known value always equals the value the ORIGINAL program would have
//    computed at this point.
//  * materialized == true means the emitted code leaves the real register
//    holding exactly the known value, so emitted instructions may read it.
//  * Stack-relative values (rsp/rbp frame pointers) are always materialized:
//    every instruction that manipulates the stack pointer is emitted.
//  * All stores are emitted, so runtime memory is always consistent; the
//    stack slot map is purely an optimization for folding later loads.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dbll/x86/insn.h"

namespace dbll::dbrew {

/// Tracked knowledge about one 64-bit general-purpose register.
struct MetaValue {
  enum class Kind : std::uint8_t {
    kUnknown = 0,  ///< runtime value only; register content is valid
    kConst,        ///< value known at rewrite time
    kStackRel,     ///< entry-rsp + delta; always materialized
  };

  Kind kind = Kind::kUnknown;
  std::uint64_t value = 0;   ///< constant value (kConst) or delta (kStackRel)
  bool materialized = true;  ///< runtime register holds `value`

  static MetaValue Unknown() { return MetaValue{}; }
  static MetaValue Const(std::uint64_t value, bool materialized = false) {
    return MetaValue{Kind::kConst, value, materialized};
  }
  static MetaValue StackRel(std::int64_t delta) {
    return MetaValue{Kind::kStackRel, static_cast<std::uint64_t>(delta), true};
  }

  bool is_unknown() const { return kind == Kind::kUnknown; }
  bool is_const() const { return kind == Kind::kConst; }
  bool is_stack_rel() const { return kind == Kind::kStackRel; }
  std::int64_t stack_delta() const { return static_cast<std::int64_t>(value); }
};

/// Tracked knowledge about one 128-bit SSE register.
struct MetaXmm {
  bool known = false;
  bool materialized = true;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// Tracked knowledge about one status flag.
struct MetaFlag {
  bool known = false;
  bool value = false;
};

/// A known byte stored to the emulated stack. All stores are also emitted,
/// so this map never represents state the runtime stack does not have.
using StackMap = std::map<std::int64_t, std::uint8_t>;

/// Complete rewrite-time machine state.
struct MetaState {
  MetaValue gp[x86::kGpRegCount];
  MetaXmm vec[x86::kVecRegCount];
  MetaFlag flags[x86::kFlagCount];
  /// Known bytes on the stack, keyed by delta from the entry stack pointer.
  StackMap stack;
  /// Return addresses of calls currently being inlined (innermost last).
  /// Inlined calls do not move the runtime stack pointer: the call push and
  /// the ret pop are both elided, which cancels out for register-argument
  /// functions (the supported subset).
  std::vector<std::uint64_t> return_stack;

  MetaState() {
    gp[x86::kRsp.index] = MetaValue::StackRel(0);
  }

  MetaValue& Gp(x86::Reg reg) { return gp[reg.index & 15]; }
  const MetaValue& Gp(x86::Reg reg) const { return gp[reg.index & 15]; }
  MetaXmm& Vec(x86::Reg reg) { return vec[reg.index & 15]; }
  const MetaXmm& Vec(x86::Reg reg) const { return vec[reg.index & 15]; }
  MetaFlag& FlagRef(x86::Flag flag) { return flags[static_cast<int>(flag)]; }
  const MetaFlag& FlagRef(x86::Flag flag) const {
    return flags[static_cast<int>(flag)];
  }

  void ClearFlags() {
    for (auto& flag : flags) flag = MetaFlag{};
  }

  /// Serializes the state into a stable key used to de-duplicate
  /// specialization targets (same original address + same key => the already
  /// emitted block can be branched to).
  std::string Key(std::uint64_t address) const;
};

}  // namespace dbll::dbrew
