// dbll -- the DBrew-style binary rewriter (paper Sec. II, re-implementing the
// behaviour of [7] Weidendorfer/Breitbart 2016).
//
// A Rewriter produces a drop-in replacement for an existing compiled function
// with the same signature. Values configured as fixed (function parameters,
// memory ranges) are propagated through the code at rewrite time: instructions
// whose inputs are all known are folded away, conditional branches with known
// conditions are resolved (fully unrolling loops), and direct calls are
// inlined. Everything else is re-emitted.
//
//   dbll::dbrew::Rewriter r(reinterpret_cast<std::uint64_t>(&func));
//   r.SetParam(0, 42);                      // first argument fixed to 42
//   r.SetMemRange(ptr, ptr + size);         // *ptr..*(ptr+size) assumed const
//   auto fn = r.RewriteOrOriginal();        // falls back to &func on failure
//
// The generated code lives in a CodeBuffer owned by the Rewriter; the
// Rewriter must outlive any call through the returned pointer.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dbll/support/code_buffer.h"
#include "dbll/support/error.h"

namespace dbll::dbrew {

/// Resource limits and behaviour switches for one rewrite.
struct RewriterConfig {
  /// Size of the buffer for generated code (paper: the default error handler
  /// may enlarge this and restart).
  std::size_t code_buffer_size = 64 * 1024;
  /// Maximum number of emitted specialization blocks; guards against
  /// run-away unrolling.
  std::size_t max_blocks = 4096;
  /// Number of times the same original address may be re-specialized before
  /// the state is widened (changed register values are materialized and
  /// forgotten; loop-invariant knowledge survives). Known-trip-count loops
  /// fold their branches and are not affected by this cap.
  std::size_t unroll_cap = 32;
  /// Maximum depth of inlined direct calls; deeper calls are emitted as
  /// calls instead of being inlined.
  int max_inline_depth = 8;
  /// Emit one-line commentary of emulation decisions to stderr.
  bool verbose = false;
  /// Run static liveness (src/analysis) over the staged code and delete
  /// emitted instructions whose results nothing observes -- leftovers of
  /// specialization such as flag updates of a folded comparison.
  bool prune_dead_stores = true;
};

/// A memory range whose contents are assumed constant at rewrite time.
struct FixedMemRange {
  std::uint64_t start = 0;
  std::uint64_t end = 0;  // exclusive

  bool Contains(std::uint64_t address, std::size_t size) const {
    return address >= start && address + size <= end;
  }
};

class Rewriter {
 public:
  /// `function` is the entry address of a compiled function adhering to the
  /// System-V AMD64 ABI.
  explicit Rewriter(std::uint64_t function);

  template <typename Ret, typename... Args>
  explicit Rewriter(Ret (*function)(Args...))
      : Rewriter(reinterpret_cast<std::uint64_t>(function)) {}

  /// Fixes integer/pointer parameter `index` (0-based, register parameters
  /// only: rdi, rsi, rdx, rcx, r8, r9) to `value`. The rewritten function
  /// ignores the actual argument. Note the index convention: the C++ API is
  /// 0-based, while the C API (dbrew_setpar / dbll_rewriter_setpar) is
  /// 1-based to match the paper's examples. An out-of-range index makes
  /// Rewrite() fail with kBadConfig naming both conventions.
  void SetParam(int index, std::uint64_t value);

  /// Declares [start, end) to hold values that do not change between rewrite
  /// time and any later call of the rewritten function. (dbrew_setmem)
  void SetMemRange(std::uint64_t start, std::uint64_t end);
  void SetMemRange(const void* start, const void* end) {
    SetMemRange(reinterpret_cast<std::uint64_t>(start),
                reinterpret_cast<std::uint64_t>(end));
  }

  /// The fixed ranges declared so far, in declaration order. The value-range
  /// analysis (analysis::RangeOptions::const_regions) and the lint tooling
  /// seed their constant-memory model from exactly these spans, keeping the
  /// "assumed constant" contract in one place.
  std::span<const FixedMemRange> fixed_ranges() const { return fixed_ranges_; }
  /// True when [address, address+size) lies inside one declared fixed range.
  bool InFixedRange(std::uint64_t address, std::size_t size) const {
    for (const FixedMemRange& range : fixed_ranges_) {
      if (range.Contains(address, size)) return true;
    }
    return false;
  }

  RewriterConfig& config() { return config_; }

  /// Runs the rewrite. On success returns the entry address of the generated
  /// replacement; on failure returns the error (the caller decides how to
  /// recover). May be called repeatedly; each call regenerates the code.
  Expected<std::uint64_t> Rewrite();

  /// The paper's default error-handler behaviour: returns the rewritten
  /// entry on success and the *original* function on any failure, after
  /// retrying once with a doubled code buffer on kResourceLimit.
  std::uint64_t RewriteOrOriginal();

  template <typename Fn>
  Fn RewriteOrOriginalAs() {
    return reinterpret_cast<Fn>(RewriteOrOriginal());
  }

  /// Error of the last Rewrite() call (ok when it succeeded).
  const Error& last_error() const { return last_error_; }

  /// Statistics of the last successful rewrite.
  struct Stats {
    std::size_t emulated_instrs = 0;  ///< instructions stepped through
    std::size_t emitted_instrs = 0;   ///< instructions written to new code
    std::size_t folded_instrs = 0;    ///< instructions removed entirely
    /// Emitted instructions deleted afterwards by dead-store liveness
    /// pruning (RewriterConfig::prune_dead_stores).
    std::size_t pruned_instrs = 0;
    std::size_t inlined_calls = 0;
    std::size_t blocks = 0;
    std::size_t code_bytes = 0;
    /// Wall time of the whole rewrite (decode+emulate+encode), for the
    /// runtime stats layer's amortization accounting.
    std::uint64_t rewrite_ns = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Generated code of the last successful rewrite (for disassembly dumps).
  std::span<const std::uint8_t> code() const;

 private:
  std::uint64_t function_;
  RewriterConfig config_;
  std::vector<std::pair<int, std::uint64_t>> fixed_params_;
  std::vector<FixedMemRange> fixed_ranges_;
  CodeBuffer buffer_;
  Error last_error_;
  Stats stats_;
};

}  // namespace dbll::dbrew
