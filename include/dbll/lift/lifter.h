// dbll -- x86-64 to LLVM-IR lifter (the paper's primary contribution,
// Sections III & IV).
//
// The lifter transforms a compiled function into LLVM-IR designed for
// *performance* (not merely correctness):
//  * registers are modeled per facet (i64/i32/ptr for GP, scalar and vector
//    element types for SSE) with a facet cache so the optimizer never has to
//    see casts through the bitwise representation (Sec. III-C, Fig. 4);
//  * the six status flags are individual i1 values, with a flag cache that
//    re-materializes signed comparisons as icmp instead of SF^OF bit
//    arithmetic (Sec. III-D, Fig. 6);
//  * memory operands become getelementptr chains off pointer facets, and
//    constant addresses are rebased onto a global symbol for alias analysis
//    (Sec. III-E);
//  * the stack is a function-local alloca (Sec. III-F);
//  * direct calls are lifted recursively and left to the LLVM inliner
//    (Sec. III-B);
//  * specialization can be applied at the IR level: parameter fixation via an
//    always-inline wrapper, and constant memory regions cloned into the
//    module as global constants (Sec. IV).
//
// Every configuration knob corresponds to a design decision evaluated in the
// benchmarks (see DESIGN.md, D1-D5).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dbll/support/error.h"

namespace dbll::lift {

/// Argument classification for the lifted function's public signature
/// (System-V: integers/pointers in rdi..r9, floating point in xmm0..).
enum class ArgKind : std::uint8_t { kInt, kF64 };
enum class RetKind : std::uint8_t { kVoid, kInt, kF64 };

struct Signature {
  std::vector<ArgKind> args;
  RetKind ret = RetKind::kInt;

  static Signature Ints(int count, RetKind ret = RetKind::kInt) {
    Signature sig;
    sig.args.assign(static_cast<std::size_t>(count), ArgKind::kInt);
    sig.ret = ret;
    return sig;
  }
};

struct LiftConfig {
  /// D2: reconstruct comparison semantics via the flag cache.
  bool flag_cache = true;
  /// D1: cache register facets; when off, every access round-trips through
  /// the bitwise i64/i128 representation.
  bool facet_cache = true;
  /// D3: build addresses with getelementptr off pointer facets; when off,
  /// use integer arithmetic + inttoptr.
  bool use_gep = true;
  /// Apply -ffast-math-style flags to generated FP operations.
  bool fast_math = true;
  /// Optimization level of the post-lift pipeline (0..3).
  int opt_level = 3;
  /// Size of the virtual stack alloca in bytes (Sec. III-F).
  std::uint32_t stack_size = 8192;
  /// Recursively lift direct call targets into the same module and let the
  /// LLVM inliner decide (Sec. III-B); when off, calls are an error.
  bool lift_calls = true;
  int max_call_depth = 16;
  /// Maximum number of instructions lifted per function (resource guard).
  std::size_t max_instructions = 100000;
  /// Restrict the O3 pipeline to a named subset of passes (ablation bench);
  /// empty = full default pipeline. Understood values: "none", "basic"
  /// (SROA+InstCombine+SimplifyCFG), "tier0a" (the fast-baseline list of the
  /// tiering engine: basic + early-cse, no loop passes), "o1", "o2", "novec".
  std::string pass_preset;
  /// Paper Sec. III-E future work: emit all memory accesses as volatile so
  /// the optimizer cannot reorder or eliminate them. Costs most of the
  /// post-processing benefit; useful for I/O-mapped or concurrently
  /// modified memory.
  bool volatile_memory = false;
  /// Paper Sec. VIII future work: attach llvm.loop.vectorize.enable to every
  /// lifted loop back-edge, asking the vectorizer to ignore its cost model
  /// (the programmatic form of the paper's -force-vector-width experiment).
  bool vectorize_hint = false;
  /// Run static flag liveness (src/analysis) before lifting and skip the IR
  /// for EFLAGS definitions no successor reads -- the static complement of
  /// the dynamic flag cache (D2), shrinking the pre-O3 module the optimizer
  /// has to chew through.
  bool flag_liveness = true;
  /// Run the value-range dataflow (src/analysis/ranges.cpp) before lifting:
  /// loads gain !range metadata, provably-constant addresses fold onto the
  /// memory-rebase global, and register-indirect jumps whose jump table the
  /// analysis proves are lifted as real switches instead of failing the
  /// decode (docs/static_analysis.md, "Value-range analysis").
  bool value_ranges = true;
  /// Instruction-step budget of the range fixpoint per lifted function;
  /// exceeding it degrades every range to top (sound, just unhelpful).
  std::uint32_t range_budget = 1u << 17;
  /// ISA ladder level code is generated for (support/cpu_features.h):
  /// 0 = baseline (SSE2), 1 = avx2, 2 = avx512. Negative means "auto": the
  /// Lifter constructor and the compile service resolve it to the host's
  /// effective level (masked by DBLL_JIT_ISA), so every key actually cached
  /// carries a concrete level. Levels above the effective one are clamped
  /// down -- the JIT never emits code the host cannot run.
  int isa_level = -1;
  /// Per-request vectorization width: when nonzero, lifted loop back-edges
  /// carry llvm.loop.vectorize.width (alongside the enable hint), forcing
  /// the vectorizer to that VF regardless of its cost model -- the
  /// race-free replacement for flipping the process-global
  /// -force-vector-width cl::opt (paper Sec. VI-B). 0 leaves the cost
  /// model in charge.
  std::uint32_t vector_width = 0;
};

/// Stable 64-bit fingerprint over every semantic field of a LiftConfig.
/// Two configs with equal fingerprints lift identically; used by the runtime
/// specialization cache (include/dbll/runtime/spec_cache.h) as a memoization
/// key component.
std::uint64_t Fingerprint(const LiftConfig& config);

class LifterImpl;
class Jit;

/// A lifted function: an LLVM module owning the IR until it is compiled.
class LiftedFunction {
 public:
  ~LiftedFunction();
  LiftedFunction(LiftedFunction&&) noexcept;
  LiftedFunction& operator=(LiftedFunction&&) noexcept;

  /// Textual LLVM-IR as produced by the lifter (before optimization).
  std::string GetIr() const;

  /// Number of IR instructions currently in the module. Before Optimize()
  /// this measures raw lifter output -- the quantity flag-liveness pruning
  /// reduces (BENCH_analysis.json reports it with the knob on and off).
  std::size_t IrInstructionCount() const;

  /// Sec. IV: fixes integer parameter `index` to `value` by interposing an
  /// always-inline wrapper; the optimizer propagates the constant.
  Status SpecializeParam(int index, std::uint64_t value);

  /// Sec. IV: fixes pointer parameter `index` to the contents of
  /// [data, data+size): the bytes are copied into the module as a global
  /// constant and the parameter is redirected to it. Nested pointers inside
  /// the region are not followed by *this* entry point (the paper's
  /// documented limitation); SpecializeConstMemGraph lifts it.
  Status SpecializeParamToConstMem(int index, const void* data,
                                   std::size_t size);

  /// One fixed memory region of a specialization request, with the pointer
  /// slots the value-range analysis proved to address other fixed regions
  /// (analysis::FindPointerLinks).
  struct ConstMemRegion {
    /// Public wrapper argument carrying the region's address, or -1 for a
    /// region only reachable through another region's pointer slot.
    int param_index = -1;
    std::uint64_t address = 0;
    std::vector<std::uint8_t> bytes;
    /// Proven 8-byte pointer slots: byte offset in this region ->
    /// (region index in the graph, byte offset inside that region).
    struct Link {
      std::uint64_t offset = 0;
      int target_region = 0;
      std::uint64_t target_offset = 0;
    };
    std::vector<Link> links;
  };

  /// Closes the paper's nested-pointer limitation (Sec. VIII): materializes
  /// every region as a module-private constant global, splices each proven
  /// pointer slot as `ptrtoint(target global) + offset` into the enclosing
  /// initializer, and fixes the argument-carrying regions like
  /// SpecializeParamToConstMem. The optimizer then constant-folds loads
  /// through the pointer chain, so structures like PtrSortedStencil
  /// specialize at Tier 0. Soundness contract is the DBrew SetMemRange one:
  /// every region's live bytes must still equal the snapshot whenever the
  /// derived code runs (the runtime re-checks with memcmp at dispatch).
  Status SpecializeConstMemGraph(const std::vector<ConstMemRegion>& regions);

  /// Runs the optimization pipeline and compiles via the JIT; returns the
  /// native entry point. The LiftedFunction is consumed.
  Expected<std::uint64_t> Compile(Jit& jit);

  /// Runs only the optimization pipeline (idempotent; Compile afterwards
  /// performs pure JIT codegen). Lets callers -- the runtime compile service,
  /// the stage-breakdown benches -- time the optimize and JIT stages
  /// separately.
  Status Optimize();

  /// Runs only the optimization pipeline and returns the optimized IR
  /// (used by the Fig. 6 / Fig. 8 dumps).
  Expected<std::string> OptimizeAndGetIr();

  template <typename Fn>
  Expected<Fn> CompileAs(Jit& jit) {
    DBLL_TRY(std::uint64_t entry, Compile(jit));
    return reinterpret_cast<Fn>(entry);
  }

  /// Tags this module for the JIT's object-capture cache: during Compile()
  /// the emitted relocatable object is filed under `tag` and can be fetched
  /// once with TakeCapturedObject(). Untagged modules are never captured.
  /// Backs the persistent object cache (include/dbll/runtime/object_store.h).
  void SetCacheTag(const std::string& tag);

  /// Metadata the persistent cache stores next to a captured object so it
  /// can be re-installed without any IR (see LoadCachedObject).
  const std::string& wrapper_name() const;
  const std::string& membase_symbol() const;
  std::uint64_t membase_value() const;

 private:
  friend class Lifter;
  struct Impl;
  explicit LiftedFunction(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// The lifter front-end. One Lifter may lift many functions; each result is
/// an independent module.
class Lifter {
 public:
  explicit Lifter(LiftConfig config = {});
  ~Lifter();

  Lifter(const Lifter&) = delete;
  Lifter& operator=(const Lifter&) = delete;

  /// Lifts the compiled function at `address` with the given public
  /// signature. `name` is the symbol name of the produced function (a unique
  /// name is generated when empty).
  Expected<LiftedFunction> Lift(std::uint64_t address, const Signature& sig,
                                std::string name = {});

  template <typename Ret, typename... Args>
  Expected<LiftedFunction> Lift(Ret (*fn)(Args...), const Signature& sig,
                                std::string name = {}) {
    return Lift(reinterpret_cast<std::uint64_t>(fn), sig, std::move(name));
  }

  /// Paper Sec. VIII future work, made explicit: lifts an *element* kernel
  /// `void f(const void* desc, const double* src, double* dst, long index)`
  /// and wraps it in a generated IR loop over one row,
  /// `index = row*stride + col` for col in [col_begin, col_end), producing
  /// `void g(const void* desc, const double* src, double* dst, long row)`.
  /// The loop carries vectorization metadata, and because the loop body is
  /// typed IR (not binary code), the LLVM vectorizer has everything the
  /// paper found missing in Sec. VI-B. Specialization calls
  /// (SpecializeParam/SpecializeParamToConstMem) apply as usual.
  Expected<LiftedFunction> LiftElementAsLine(std::uint64_t element_kernel,
                                             long stride, long col_begin,
                                             long col_end,
                                             std::string name = {});

  const LiftConfig& config() const { return config_; }

 private:
  LiftConfig config_;
};

/// Toolchain stamps folded into persistent-cache fingerprints: the LLVM
/// version this binary was built against and the CPU the JIT targets. A
/// change in either invalidates every cached object (object_store.h).
const std::string& LlvmVersionString();
const std::string& JitTargetCpu();

/// Per-ISA-level toolchain stamp: the base CPU plus the level's subtarget
/// feature string (support/cpu_features.h), e.g. "x86-64" for baseline or
/// "x86-64+avx,+avx2,...". Persisted entries are stamped with the level they
/// were compiled for, so one shared cache directory holds coexisting
/// variants and each host validates an entry against the stamp its own
/// toolchain would produce for that level. Includes DBLL_JIT_FEATURES
/// extras (re-read per call).
std::string JitTargetCpuFor(int isa_level);

/// Takes (removes and returns) the object buffer captured under `tag` by the
/// most recent Compile() of a SetCacheTag()ed module; empty when nothing was
/// captured (e.g. capture disabled or tag never compiled).
std::vector<std::uint8_t> TakeCapturedObject(Jit& jit, const std::string& tag);

/// Warm-start path: installs a previously captured relocatable object into
/// the JIT and resolves its public wrapper -- no decode, no lift, no O3, no
/// codegen. The object is linked into a fresh JITDylib (wrapper names are
/// only unique within the process that emitted them) with the memory-rebase
/// global bound to `membase_value`. Returns the entry point.
Expected<std::uint64_t> LoadCachedObject(Jit& jit,
                                         const std::vector<std::uint8_t>& object,
                                         const std::string& wrapper_name,
                                         const std::string& membase_symbol,
                                         std::uint64_t membase_value);

/// Sets a global LLVM command-line option (e.g. "force-vector-width=2",
/// matching the paper's Sec. VI-B vectorization experiment). Affects every
/// subsequent optimization in the process.
Status SetLlvmOption(const std::string& option);

/// JIT execution engine (LLVM ORC LLJIT). Compiled code remains valid for
/// the lifetime of the Jit object.
class Jit {
 public:
  Jit();
  ~Jit();

  Jit(const Jit&) = delete;
  Jit& operator=(const Jit&) = delete;

  struct Impl;
  Impl& impl() { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace dbll::lift
