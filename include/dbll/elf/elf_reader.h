// dbll -- minimal ELF64 reader.
//
// Supports the paper's Sec. VII observation that the x86-64 -> LLVM-IR
// transformation is usable for reverse engineering: functions can be
// extracted from object files / executables on disk and fed to the
// disassembler and the lifter without executing the file.
//
// The reader understands little-endian ELF64 relocatable and executable
// files: section headers, the symbol table, and enough layout to build an
// analysis image (all allocatable PROGBITS/NOBITS sections copied at their
// virtual-address offsets) so that intra-image RIP-relative references and
// direct calls resolve.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dbll/support/error.h"

namespace dbll::elf {

struct Section {
  std::string name;
  std::uint32_t type = 0;
  std::uint64_t flags = 0;
  std::uint64_t vaddr = 0;
  std::uint64_t offset = 0;  // file offset
  std::uint64_t size = 0;

  bool is_alloc() const { return (flags & 0x2) != 0; }  // SHF_ALLOC
  bool is_progbits() const { return type == 1; }        // SHT_PROGBITS
  bool is_nobits() const { return type == 8; }          // SHT_NOBITS
};

struct Symbol {
  std::string name;
  std::uint64_t value = 0;  // virtual address (executables) or section offset
  std::uint64_t size = 0;
  std::uint16_t section_index = 0;
  bool is_function = false;
  bool is_global = false;
};

/// A copy of the file's allocatable sections laid out at their virtual-
/// address offsets, so code can be decoded with consistent cross-references.
class Image {
 public:
  Image() = default;

  /// Base virtual address of the image (lowest allocatable section).
  std::uint64_t base_vaddr() const { return base_vaddr_; }
  std::uint64_t size() const { return bytes_.size(); }

  /// Host pointer corresponding to `vaddr`; null when out of range.
  const std::uint8_t* Translate(std::uint64_t vaddr) const {
    if (vaddr < base_vaddr_ || vaddr >= base_vaddr_ + bytes_.size()) {
      return nullptr;
    }
    return bytes_.data() + (vaddr - base_vaddr_);
  }

  /// Host address for `vaddr` as an integer (for the decoder/lifter, which
  /// work on live memory).
  std::uint64_t HostAddress(std::uint64_t vaddr) const {
    const std::uint8_t* p = Translate(vaddr);
    return reinterpret_cast<std::uint64_t>(p);
  }

 private:
  friend class ElfFile;
  std::uint64_t base_vaddr_ = 0;
  std::vector<std::uint8_t> bytes_;
};

class ElfFile {
 public:
  /// Reads and parses the file; fails with kBadConfig on malformed or
  /// non-x86-64 ELF input.
  static Expected<ElfFile> Open(const std::string& path);

  /// Parses an in-memory ELF image (e.g. for tests).
  static Expected<ElfFile> Parse(std::vector<std::uint8_t> contents);

  const std::vector<Section>& sections() const { return sections_; }
  const std::vector<Symbol>& symbols() const { return symbols_; }
  bool is_relocatable() const { return type_ == 1; }  // ET_REL

  /// Looks up a function symbol by (exact) name.
  Expected<Symbol> FindFunction(const std::string& name) const;

  /// Virtual address of a symbol: for executables the symbol value, for
  /// relocatable files the containing section's assigned address plus the
  /// symbol's offset (sections are assigned consecutive addresses).
  Expected<std::uint64_t> SymbolVirtualAddress(const Symbol& symbol) const;

  /// Builds the analysis image (see Image).
  Expected<Image> LoadImage() const;

 private:
  std::vector<std::uint8_t> contents_;
  std::uint16_t type_ = 0;
  std::vector<Section> sections_;
  std::vector<Symbol> symbols_;
  /// For relocatable files: synthetic base address assigned to each section.
  std::vector<std::uint64_t> section_vaddr_;
};

}  // namespace dbll::elf
