// dbll -- process-wide observability: span tracing + metrics registry.
//
// The paper's evaluation (Fig. 10) is a per-stage cost breakdown of the
// decode -> CFG -> lift -> O3 -> JIT pipeline; this subsystem makes that
// breakdown a first-class, always-available measurement instead of
// bench-local timers.
//
// Two facilities, one header:
//
//  * Span tracer. `DBLL_TRACE_SPAN("lift.function");` opens an RAII span
//    that records {name, start, duration, thread, nesting depth} when
//    tracing is enabled and costs a single relaxed atomic load + branch when
//    it is not (the macro compiles out entirely under
//    -DDBLL_OBS_DISABLE_TRACING). Collected spans export as
//    chrome://tracing trace-event JSON (load the file via ui.perfetto.dev or
//    chrome://tracing) or as a flat per-name text summary.
//
//    Activation: programmatic (Tracer::Default().Enable()), via the
//    dbll_obs_* C API, or by environment variable -- DBLL_TRACE=out.json
//    enables tracing at load time and writes the JSON at process exit
//    (DBLL_TRACE_SUMMARY=path-or-"stderr" additionally writes the text
//    summary). See docs/observability.md for the span naming scheme.
//
//  * Metrics registry. Named counters / gauges / histograms with a single
//    enumerable snapshot API. The pipeline publishes its legacy statistics
//    (dbrew::Rewriter::Stats, runtime::CacheStats, per-stage wall times)
//    here as well, so benches and the C API read one surface:
//
//      for (const auto& e : dbll::obs::Registry::Default().Snapshot())
//        printf("%s = %llu\n", e.name.c_str(), e.value);
//
// Thread safety: everything in this header is safe to use from any thread.
// Span recording is per-thread buffered; registry handles are atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dbll::obs {

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Returns a stable, human-readable name for a MetricKind.
std::string_view ToString(MetricKind kind) noexcept;

/// Monotonic event count. Handles returned by the registry stay valid for
/// the process lifetime, so hot paths may cache the pointer.
class Counter {
 public:
  void Add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, cache size, ...).
class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::int64_t> value_{0};
};

/// Streaming distribution summary: count, sum, min, max. Used for the
/// per-stage wall times (sum/count = mean stage cost).
class Histogram {
 public:
  void Record(std::uint64_t sample);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const;  ///< 0 when no sample was recorded
  std::uint64_t max() const;

 private:
  friend class Registry;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ULL};
  std::atomic<std::uint64_t> max_{0};
};

/// One metric in a registry snapshot. `value` is the counter/gauge value; a
/// histogram reports its sum there and fills count/min/max as well.
struct SnapshotEntry {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;
  std::uint64_t count = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
};

/// Process-wide named-metric table. Metric handles are created on first use
/// and never move or disappear; re-requesting a name returns the same
/// handle. Requesting an existing name as a different kind aborts in debug
/// builds and returns a detached dummy handle otherwise.
class Registry {
 public:
  /// The process-wide default registry (leaky singleton: safe to use from
  /// static initializers and atexit handlers).
  static Registry& Default();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Enumerates every registered metric, sorted by name.
  std::vector<SnapshotEntry> Snapshot() const;

  /// Convenience: the value of one metric (0 when unknown). Histograms
  /// report their sum, matching SnapshotEntry::value.
  std::uint64_t Value(std::string_view name) const;

  /// Flat "name = value" text rendering of Snapshot().
  std::string FormatSnapshot() const;

  /// Zeroes every registered metric (handles stay valid). Test support;
  /// production code should read deltas between snapshots instead.
  void Reset();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  struct Impl;
  Impl* impl_;  // raw: the default registry intentionally leaks
};

// ---------------------------------------------------------------------------
// Span tracer
// ---------------------------------------------------------------------------

/// One finished span. Timestamps are steady-clock nanoseconds; `tid` is a
/// small dense id assigned per recording thread (0, 1, ...); `depth` is the
/// span nesting level on that thread (0 = top level).
struct SpanEvent {
  const char* name = nullptr;  ///< static string passed to DBLL_TRACE_SPAN
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
};

namespace internal {
/// Global tracing switch, read by every DBLL_TRACE_SPAN with a relaxed
/// load. Implementation detail: toggle via Tracer, never directly.
extern std::atomic<bool> g_tracing_enabled;
}  // namespace internal

/// Process-wide span collector. Enabled/disabled at runtime; recording
/// threads append to thread-local buffers, so spans on distinct threads
/// never contend.
class Tracer {
 public:
  /// The process-wide default tracer (leaky singleton, like Registry).
  static Tracer& Default();

  void Enable();
  void Disable();
  bool enabled() const {
    return internal::g_tracing_enabled.load(std::memory_order_relaxed);
  }

  /// Drops every recorded span (buffers of live threads stay registered).
  void Clear();

  /// Copies out every finished span, sorted by start time.
  std::vector<SpanEvent> Events() const;

  /// Records one pre-measured span on the calling thread's buffer; for
  /// durations that cross threads (e.g. queue wait measured at dequeue).
  /// No-op while tracing is disabled.
  void RecordManual(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns);

  /// chrome://tracing "trace event" JSON of every recorded span.
  std::string ChromeTraceJson() const;

  /// Per-name count/total/mean text table.
  std::string TextSummary() const;

  /// Writes ChromeTraceJson() to `path`; returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Steady-clock nanoseconds, the tracer's time base.
  static std::uint64_t NowNs();

  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  friend class SpanGuard;
  struct Impl;
  Impl* impl_;  // raw: the default tracer intentionally leaks
};

/// RAII span. Prefer the DBLL_TRACE_SPAN macro; `name` must be a string with
/// static storage duration (the tracer stores the pointer, not a copy).
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) {
    if (internal::g_tracing_enabled.load(std::memory_order_relaxed)) {
      Begin(name);
    }
  }
  ~SpanGuard() {
    if (name_ != nullptr) End();
  }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  void Begin(const char* name);  // out of line: touches thread-local state
  void End();

  const char* name_ = nullptr;  // non-null while the span is recording
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace dbll::obs

#define DBLL_OBS_CONCAT_IMPL(a, b) a##b
#define DBLL_OBS_CONCAT(a, b) DBLL_OBS_CONCAT_IMPL(a, b)

/// Opens a span covering the rest of the enclosing scope. `name` must be a
/// string literal (or otherwise static). Compiled out entirely when
/// DBLL_OBS_DISABLE_TRACING is defined.
#if defined(DBLL_OBS_DISABLE_TRACING)
#define DBLL_TRACE_SPAN(name) ((void)0)
#else
#define DBLL_TRACE_SPAN(name) \
  ::dbll::obs::SpanGuard DBLL_OBS_CONCAT(dbll_obs_span_, __LINE__)(name)
#endif
