// dbll -- fault-injection framework.
//
// Graceful degradation is only trustworthy if every failure path is
// *reachable from a test*. Most of the pipeline's error branches (a JIT that
// refuses a module, a decoder meeting bytes it cannot parse mid-rewrite, a
// wedged LLVM run) are hard or impossible to provoke naturally, so the
// fallible stages carry named fault points:
//
//   Expected<Instr> Decoder::DecodeOne(...) {
//     DBLL_FAULT_POINT("decode.insn");   // one relaxed atomic load when idle
//     ...
//   }
//
// A test (or operator) arms a site programmatically,
//
//   dbll::fault::Arm("jit.compile", {ErrorKind::kJit});
//
// or via the environment: DBLL_FAULT=jit.compile:kJit:0 arms the site at
// load time (grammar below). When an armed site is hit, DBLL_FAULT_POINT
// returns an injected Error from the enclosing function exactly as a real
// failure would, so the caller's recovery path -- retry, degrade to a lower
// tier, negative-cache -- executes for real. A Spec with kind == kNone and a
// nonzero delay_ms turns the site into a stall instead of a failure
// (simulating a wedged stage for deadline/timeout testing).
//
// Cost when no site is armed: a single relaxed atomic load + branch per
// fault point. Compiling with -DDBLL_FAULT_DISABLE removes the check (and
// any possibility of injection) entirely.
//
// DBLL_FAULT grammar (comma-separated list):
//   site:kind[:after_n[:probability]]
// where `kind` is an ErrorKind name in either enum form ("kJit") or display
// form ("jit", "resource-limit"), `after_n` skips the first N hits of the
// site (default 0 = fire from the first hit), and `probability` in [0,1]
// fires each eligible hit with that chance (default 1). Example:
//   DBLL_FAULT=jit.compile:kJit:0,decode.insn:kDecode:100:0.5
//
// Thread safety: all functions are safe to call from any thread. Sites armed
// with a probability draw from a per-site PRNG seeded deterministically at
// Arm() time, so runs are reproducible.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "dbll/support/error.h"

namespace dbll::fault {

/// What an armed site does when hit.
struct Spec {
  /// Error kind of the injected failure. kNone injects nothing (useful with
  /// delay_ms to simulate a stalled stage that eventually succeeds).
  ErrorKind kind = ErrorKind::kInternal;
  /// Skip the first `after_n` hits; the site starts firing on hit after_n
  /// (0-based), matching the env grammar's `n`.
  std::uint64_t after_n = 0;
  /// Chance in [0,1] that an eligible hit fires.
  double probability = 1.0;
  /// Stop firing after this many fires (0 = unlimited). `max_fires = 1`
  /// models a transient failure: first hit fails, the retry succeeds.
  std::uint64_t max_fires = 0;
  /// Sleep this long at the site on every fire, before (optionally)
  /// injecting the error. Simulates a wedged stage for deadline tests.
  std::uint32_t delay_ms = 0;
};

/// Arms (or re-arms, resetting counters) the named site.
void Arm(std::string_view site, Spec spec);

/// Arms one `site:kind[:after_n[:probability]]` directive. Returns false
/// (and fills *error when non-null) on a malformed directive.
bool ArmFromString(std::string_view directive, std::string* error = nullptr);

/// Arms every comma-separated directive in `env` (the DBLL_FAULT format).
/// Returns the number of sites armed; malformed directives are skipped with
/// a one-line note on stderr (an operator typo must not abort the process).
int ArmFromEnv(std::string_view env);

/// Disarms one site / every site. Hit/fire counters are discarded.
void Disarm(std::string_view site);
void DisarmAll();

/// Times the site was evaluated / actually fired since it was armed
/// (0 for unknown or disarmed sites).
std::uint64_t HitCount(std::string_view site);
std::uint64_t FireCount(std::string_view site);

/// Parses an ErrorKind name ("kJit" or "jit"); nullopt when unknown.
std::optional<ErrorKind> ParseErrorKind(std::string_view name);

/// The slow path behind DBLL_FAULT_POINT: evaluates the named site and
/// returns the injected error if it fires (after any configured delay).
/// Prefer the macro; call this directly only where the enclosing function
/// cannot `return Error` (e.g. its result is not Expected/Status).
std::optional<Error> Hit(std::string_view site);

namespace internal {
/// Number of currently armed sites; the fast-path gate for every fault
/// point. Implementation detail: modify via Arm/Disarm only.
extern std::atomic<int> g_armed_sites;
}  // namespace internal

/// True when at least one site is armed (one relaxed load).
inline bool AnyArmed() {
  return internal::g_armed_sites.load(std::memory_order_relaxed) != 0;
}

}  // namespace dbll::fault

/// Evaluates the named fault site; when armed and firing, returns the
/// injected Error from the enclosing function (which must return Status or
/// Expected<T>). Costs one relaxed atomic load + branch when nothing is
/// armed; compiled out entirely under -DDBLL_FAULT_DISABLE.
#if defined(DBLL_FAULT_DISABLE)
#define DBLL_FAULT_POINT(site) ((void)0)
#else
#define DBLL_FAULT_POINT(site)                                    \
  do {                                                            \
    if (::dbll::fault::AnyArmed()) {                              \
      if (auto dbll_fault_injected_ = ::dbll::fault::Hit(site)) { \
        return *std::move(dbll_fault_injected_);                  \
      }                                                           \
    }                                                             \
  } while (0)
#endif
