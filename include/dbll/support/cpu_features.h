// dbll -- host CPU feature detection and the ISA-level ladder.
//
// The JIT historically pinned its target to plain "x86-64" (SSE2 baseline),
// so Tier-0 kernels left AVX2/AVX-512 hardware idle. This header detects
// what the host actually supports (cpuid + xgetbv, because the OS must
// enable YMM/ZMM state before AVX is usable) and collapses the feature set
// into a small *ordered* ladder of ISA levels:
//
//   baseline (0)  <  avx2 (1)  <  avx512 (2)
//
// The ladder -- not the raw feature bitmap -- is the unit of
// multi-versioning everywhere else: LiftConfig carries an isa_level, the
// pass pipeline and the ORC compiler select a per-level TargetMachine, and
// the persistent object cache fingerprints each level separately so one
// shared cache directory holds coexisting variants and each host installs
// the best one it can run (docs/codegen.md).
//
// Level semantics (deliberately coarse, matching the x86-64-v3/v4
// micro-architecture levels):
//   baseline  x86-64 + SSE2 -- what every host speaks, and the only level
//             the DBrew-reconsumed paths (Tier-0a interim seed, Tier-1
//             rewrite, guard stubs) are allowed to see: the decoder only
//             understands non-VEX encodings.
//   avx2      requires SSE4.2, AVX, AVX2, FMA, BMI1, BMI2, POPCNT, LZCNT
//             (~x86-64-v3).
//   avx512    avx2 plus AVX-512F and AVX-512VL (~x86-64-v4 core).
//
// Environment overrides:
//   DBLL_JIT_ISA=baseline|avx2|avx512   mask the effective level DOWN.
//       The override can never raise the level above what the host
//       supports -- emitting AVX on a non-AVX host would fault.
//   DBLL_JIT_FEATURES=+feat,-feat,...   extra LLVM feature tokens appended
//       to every level's feature string (power-user escape hatch; tokens
//       are folded into the per-level persist fingerprint).
#pragma once

#include <cstdint>
#include <string>

namespace dbll::support {

/// Ordered ISA ladder. Numeric values are part of the persistent cache
/// format (object_store.h serializes the level per entry) -- never renumber.
enum class IsaLevel : std::uint8_t {
  kBaseline = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Highest level the ladder defines (for iteration).
inline constexpr int kMaxIsaLevel = static_cast<int>(IsaLevel::kAvx512);

/// Raw cpuid/xgetbv material, separated from the decode so tests can feed
/// synthetic snapshots (hostile vectors, partial XCR0 masks) without
/// depending on the machine they run on.
struct CpuidSnapshot {
  std::uint32_t leaf1_ecx = 0;  ///< cpuid(1).ecx: sse3/ssse3/sse4/avx/fma...
  std::uint32_t leaf7_ebx = 0;  ///< cpuid(7,0).ebx: avx2/bmi/avx512...
  std::uint32_t ext1_ecx = 0;   ///< cpuid(0x80000001).ecx: lzcnt (ABM)
  std::uint64_t xcr0 = 0;       ///< xgetbv(0); only read when OSXSAVE is set
};

/// Decoded feature booleans. Only the features the ladder cares about; the
/// raw snapshot is available for anything finer-grained.
struct CpuFeatures {
  bool sse3 = false;
  bool ssse3 = false;
  bool sse41 = false;
  bool sse42 = false;
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512vl = false;
  bool bmi1 = false;
  bool bmi2 = false;
  bool popcnt = false;
  bool lzcnt = false;
};

/// Pure decode of a snapshot, including the xgetbv OS-support gate: the AVX
/// family is reported only when OSXSAVE is set and XCR0 enables XMM+YMM
/// state (bits 1|2); AVX-512 additionally requires the opmask/ZMM state
/// bits (5|6|7). A kernel that context-switches no ZMM state must not make
/// us emit ZMM code.
CpuFeatures DecodeCpuFeatures(const CpuidSnapshot& snapshot);

/// Collapses decoded features into the highest ladder level they satisfy.
IsaLevel LevelFromFeatures(const CpuFeatures& features);

/// Decoded features of this host (real cpuid/xgetbv; cached after the first
/// call). All-false on non-x86-64 builds.
const CpuFeatures& HostCpuFeatures();

/// Ladder level of this host (cached). kBaseline on non-x86-64 builds.
IsaLevel HostIsaLevel();

/// Host level masked down by DBLL_JIT_ISA (re-read on every call so tests
/// can setenv between assertions). An unparseable value is ignored; the
/// override can only lower the level, never raise it above the host's.
IsaLevel EffectiveIsaLevel();

/// Resolves a LiftConfig-style requested level: negative means "auto"
/// (EffectiveIsaLevel); anything else is clamped into [0, effective].
IsaLevel ResolveIsaLevel(int requested);

/// "baseline" / "avx2" / "avx512".
const char* IsaLevelName(IsaLevel level);

/// Parses an IsaLevel name (also accepts the numeric strings "0"/"1"/"2").
/// Returns false and leaves `out` untouched on anything else.
bool ParseIsaLevel(const std::string& text, IsaLevel* out);

/// LLVM subtarget feature string for a ladder level, e.g.
/// "+avx,+avx2,+fma,..." -- empty for baseline (generic x86-64 is SSE2).
/// DBLL_JIT_FEATURES extras are appended verbatim to every level.
std::string IsaFeatureString(IsaLevel level);

}  // namespace dbll::support
