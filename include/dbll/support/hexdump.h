// dbll -- byte formatting helpers used by the disassembly printer, logs, and
// the Fig. 8 code-excerpt benchmark.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace dbll {

/// Formats bytes as lowercase hex separated by spaces: "48 89 f8".
std::string HexBytes(std::span<const std::uint8_t> bytes);

/// Formats a classic 16-byte-per-line hexdump with an address column.
std::string HexDump(std::span<const std::uint8_t> bytes, std::uint64_t base_address = 0);

/// Formats a value as "0x..." with no leading zeros.
std::string HexValue(std::uint64_t value);

}  // namespace dbll
