// dbll -- executable memory management.
//
// Generated code is written into a CodeBuffer, which owns page-aligned mmap'd
// memory. The buffer follows a W^X discipline: it is writable while code is
// being emitted and is flipped to read+execute by Seal(). DBrew-style error
// handlers can react to kResourceLimit by allocating a larger buffer and
// restarting the rewrite (paper, Sec. II).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "dbll/support/error.h"

namespace dbll {

/// Page-aligned, owning executable code region.
class CodeBuffer {
 public:
  CodeBuffer() = default;
  ~CodeBuffer();

  CodeBuffer(const CodeBuffer&) = delete;
  CodeBuffer& operator=(const CodeBuffer&) = delete;
  CodeBuffer(CodeBuffer&& other) noexcept;
  CodeBuffer& operator=(CodeBuffer&& other) noexcept;

  /// Allocates a writable region of at least `size` bytes (rounded up to the
  /// page size).
  static Expected<CodeBuffer> Allocate(std::size_t size);

  /// Allocates near `hint` (within rel32 range when possible) so that
  /// generated code can keep RIP-relative references to the original image.
  /// Falls back to an arbitrary placement when no nearby region is free.
  static Expected<CodeBuffer> AllocateNear(std::uint64_t hint, std::size_t size);

  /// Appends `code` to the buffer. Fails with kResourceLimit when full.
  Expected<std::uint8_t*> Append(std::span<const std::uint8_t> code);

  /// Reserves `size` bytes and returns a pointer the caller may write to
  /// directly (e.g. an in-place encoder). Advances the write cursor.
  Expected<std::uint8_t*> Reserve(std::size_t size);

  /// Rewinds the write cursor to `pos` (used when a rewrite is restarted).
  void Reset(std::size_t pos = 0);

  /// Makes the region read+execute. After sealing, Append/Reserve fail.
  Status Seal();

  /// Makes a sealed region writable again (for buffer reuse in benchmarks).
  Status Unseal();

  const std::uint8_t* data() const noexcept { return base_; }
  std::uint8_t* data() noexcept { return base_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept { return used_; }
  std::size_t remaining() const noexcept { return capacity_ - used_; }
  bool sealed() const noexcept { return sealed_; }

  /// Casts a position inside the buffer to a callable function pointer.
  /// The buffer must outlive any use of the returned pointer.
  template <typename Fn>
  Fn EntryAs(std::size_t offset = 0) const {
    return reinterpret_cast<Fn>(const_cast<std::uint8_t*>(base_ + offset));
  }

 private:
  CodeBuffer(std::uint8_t* base, std::size_t capacity)
      : base_(base), capacity_(capacity) {}

  std::uint8_t* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  bool sealed_ = false;
};

}  // namespace dbll
