// dbll -- signal-guarded execution frames (the crash-containment primitive).
//
// Rewritten code is hostile-by-construction: a mis-lifted instruction, a
// stale cached object, or a guard-stub gap shows up not as a reported Error
// but as a synchronous hardware fault (SIGSEGV/SIGILL/SIGBUS/SIGFPE) in the
// middle of a specialized entry. This layer turns that fault back into a
// value the runtime can act on: a thread arms a GuardFrame around the
// suspect call, and a process-wide chained signal handler converts a fault
// inside the guarded window into a `siglongjmp` back to the arming site with
// a FaultInfo describing what happened. Faults outside any armed frame are
// forwarded to whatever handler was installed before ours (sanitizers,
// crash reporters, the default action) -- the guard never widens the set of
// survivable crashes beyond the windows that explicitly opted in.
//
// Signal-safety rules (see docs/robustness.md, "containment" section):
//   * The handler touches only the current thread's top GuardFrame (plain
//     thread-local pointer chain), one process-global fault counter, and the
//     previously installed sigaction it chains to. No locks, no allocation,
//     no streams, no runtime callbacks.
//   * Recovery work (demotion, quarantine, metrics) happens *after* the
//     longjmp, in normal calling context, never inside the handler.
//   * Handlers run on a per-thread alternate stack (sigaltstack), installed
//     lazily the first time a thread arms a frame, so a stack-overflow
//     SIGSEGV inside a guarded window is still recoverable.
//
// Guarded windows must not hold locks or own resources that the skipped
// unwind would leak: `siglongjmp` does not run destructors of the guarded
// callee's frames. The intended (and only supported) use is around calls
// into flat rewritten machine code, which owns nothing.
#pragma once

#include <csetjmp>
#include <csignal>
#include <cstdint>

namespace dbll::support {

/// What the signal handler observed for a caught fault.
struct FaultInfo {
  int signo = 0;               ///< SIGSEGV, SIGILL, SIGBUS or SIGFPE
  std::uint64_t fault_addr = 0;  ///< si_addr: the faulting data/code address
  std::uint64_t fault_pc = 0;    ///< instruction pointer at the fault
};

/// Returns a stable name ("SIGSEGV"...) for a guarded signal number.
const char* GuardSignalName(int signo);

/// Installs the process-wide chained handlers for the four guarded signals.
/// Idempotent and thread-safe; the first caller wins, later calls are
/// no-ops. Returns false when sigaction itself failed (the guard then
/// behaves as if no frame were ever armed -- callers simply lose recovery,
/// not correctness). Called automatically by GuardFrame's constructor.
bool InstallCrashGuard();

/// True once InstallCrashGuard has succeeded in this process.
bool CrashGuardInstalled();

/// Process-wide count of faults recovered via an armed frame (monotonic).
std::uint64_t CrashGuardRecoveredFaults();

/// One guarded window on the current thread. Frames nest (LIFO per thread);
/// the innermost *armed* frame catches. Usage:
///
///   GuardFrame frame;
///   if (sigsetjmp(frame.jump_buffer(), 1) == 0) {
///     frame.Arm();
///     result = CallSuspectCode();
///     frame.Disarm();
///   } else {
///     // frame.fault() says what happened; the callee never returned.
///   }
///
/// `sigsetjmp` must be called from the frame's owning function (its jump
/// target dies with that activation record), which is why arming is split
/// out instead of done in the constructor. A frame that is never armed is
/// inert. Not copyable, not movable, must be stack-allocated.
class GuardFrame {
 public:
  GuardFrame();
  ~GuardFrame();
  GuardFrame(const GuardFrame&) = delete;
  GuardFrame& operator=(const GuardFrame&) = delete;

  sigjmp_buf& jump_buffer() { return jump_buffer_; }

  /// Makes this frame the recovery target for faults on this thread. Only
  /// valid after sigsetjmp has filled jump_buffer().
  void Arm() { armed_ = 1; }
  /// Ends the guarded window (also done by the handler before jumping, so a
  /// caught fault cannot re-enter a dead jump buffer).
  void Disarm() { armed_ = 0; }
  bool armed() const { return armed_ != 0; }

  /// Valid after the sigsetjmp returned nonzero.
  const FaultInfo& fault() const { return fault_; }

 private:
  friend struct GuardFrameAccess;  // the signal handler's window into frames

  sigjmp_buf jump_buffer_;
  FaultInfo fault_;
  GuardFrame* prev_ = nullptr;       ///< next-outer frame on this thread
  volatile sig_atomic_t armed_ = 0;
};

}  // namespace dbll::support
