// dbll -- error handling primitives.
//
// Re-writing and lifting are expected to fail on unsupported input (the paper,
// Sec. II: "We expect that re-writing may fail: each of the internal steps
// 'decoding', 'emulation' and 'encoding' may not be covered for a given
// instruction"). Failures are therefore values, not exceptions: every fallible
// API returns Expected<T>, and the rewriter's default error handler falls back
// to the original function.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace dbll {

/// Broad classification of a failure; used by error handlers to decide on a
/// recovery strategy (e.g. enlarge a buffer and retry vs. give up).
enum class ErrorKind : std::uint8_t {
  kNone = 0,
  kDecode,        ///< byte sequence is not a supported instruction
  kUnsupported,   ///< decoded fine, but the consumer cannot handle it
  kEncode,        ///< instruction cannot be re-encoded
  kEmulate,       ///< meta-emulation cannot proceed
  kLift,          ///< x86 -> LLVM-IR transformation failed
  kJit,           ///< LLVM JIT compilation failed
  kResourceLimit, ///< configured limit exceeded (code buffer, stack, depth...)
  kBadConfig,     ///< invalid rewriter/lifter configuration
  kInternal,      ///< invariant violation; indicates a bug in dbll itself
  kTimeout,       ///< compile deadline exceeded; the job was degraded
  kIo,            ///< filesystem/OS I/O failure (persistent cache, tooling)
};

/// Returns a stable, human-readable name for an ErrorKind.
std::string_view ToString(ErrorKind kind) noexcept;

/// An error value carrying a classification, a message, and (where it makes
/// sense) the code address the failure was observed at.
class Error {
 public:
  Error() = default;
  Error(ErrorKind kind, std::string message, std::uint64_t address = 0)
      : kind_(kind), message_(std::move(message)), address_(address) {}

  ErrorKind kind() const noexcept { return kind_; }
  const std::string& message() const noexcept { return message_; }
  std::uint64_t address() const noexcept { return address_; }
  bool ok() const noexcept { return kind_ == ErrorKind::kNone; }

  /// Formats as "kind: message (at 0x...)" for logs and test failures.
  std::string Format() const;

 private:
  ErrorKind kind_ = ErrorKind::kNone;
  std::string message_;
  std::uint64_t address_ = 0;
};

/// Minimal expected-type (std::expected is C++23; we target C++20).
/// Holds either a T or an Error. Access to value() on an error aborts, so
/// callers must check has_value() / operator bool first.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Error error) : storage_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool has_value() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return has_value(); }

  T& value() & { return std::get<T>(storage_); }
  const T& value() const& { return std::get<T>(storage_); }
  T&& value() && { return std::get<T>(std::move(storage_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  const Error& error() const& { return std::get<Error>(storage_); }
  Error&& error() && { return std::get<Error>(std::move(storage_)); }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return has_value() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Expected<void> analogue for operations with no result payload.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Status Ok() { return Status(); }

  bool ok() const noexcept { return error_.ok(); }
  explicit operator bool() const noexcept { return ok(); }
  const Error& error() const noexcept { return error_; }

 private:
  Error error_;
};

}  // namespace dbll

#define DBLL_CONCAT_INNER(a, b) a##b
#define DBLL_CONCAT(a, b) DBLL_CONCAT_INNER(a, b)

/// Propagates the error of an Expected/Status expression to the caller.
/// Usage: DBLL_TRY(auto instr, decoder.Decode(p));
#define DBLL_TRY_IMPL(tmp, decl, expr) \
  auto&& tmp = (expr);                 \
  if (!tmp) {                          \
    return std::move(tmp).error();     \
  }                                    \
  decl = std::move(tmp).value()

#define DBLL_TRY(decl, expr) \
  DBLL_TRY_IMPL(DBLL_CONCAT(dbll_try_tmp_, __COUNTER__), decl, expr)

#define DBLL_TRY_STATUS(expr)                          \
  do {                                                 \
    auto&& dbll_status_tmp = (expr);                   \
    if (!dbll_status_tmp) {                            \
      return std::move(dbll_status_tmp).error();       \
    }                                                  \
  } while (0)
