// dbll -- small POSIX file I/O helpers for the persistent object cache
// (include/dbll/runtime/object_store.h) and its tooling.
//
// Everything here is failure-as-value (Expected/Status, error.h) and built
// for the cache's durability contract:
//  * WriteFileAtomic publishes a file with temp-file + rename(2), so a
//    concurrent reader (or a crash mid-write) can never observe a torn
//    entry -- it sees either the old file, no file, or the complete new one.
//  * FileLock wraps flock(2) so multi-process manifest updates serialize.
//  * SafeReadMemory probes the *own* address space via process_vm_readv(2),
//    so fingerprinting a function's code bytes near the end of a mapping
//    cannot fault.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dbll/support/error.h"

namespace dbll::support {

/// Reads the whole regular file into a byte vector. kIo on any failure
/// (missing file, permission, short read race).
Expected<std::vector<std::uint8_t>> ReadFileBytes(const std::string& path);

/// Writes `size` bytes to `path` atomically: the data goes to a unique
/// temporary in the same directory first and is rename(2)d over the target.
/// Readers never see a partial file. No fsync -- after a power loss a torn
/// temp can linger, but the *published* name is always complete (callers
/// additionally checksum their payloads; see object_store.cpp).
Status WriteFileAtomic(const std::string& path, const void* data,
                       std::size_t size);

/// Creates the directory (and parents) if needed; ok when it already exists.
Status EnsureDir(const std::string& path);

/// Deletes a file, ignoring ENOENT. kIo on other failures.
Status RemoveFile(const std::string& path);

/// Lists the regular files (names, not paths) directly inside `dir`.
Expected<std::vector<std::string>> ListDir(const std::string& dir);

/// True when `path` exists and is a directory.
bool DirExists(const std::string& path);

/// Size of a regular file; kIo when it does not exist.
Expected<std::uint64_t> FileSize(const std::string& path);

/// RAII flock(2) on a dedicated lock file. Blocking exclusive acquisition in
/// the constructor; use ok() to check that the lock file could be opened.
/// A held lock serializes cooperating dbll processes; it does not protect
/// against non-cooperating writers (standard advisory-lock semantics).
class FileLock {
 public:
  explicit FileLock(const std::string& lock_path);
  ~FileLock();

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  bool ok() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// Copies up to `size` bytes from address `addr` of *this* process into
/// `out`, stopping at the first unmapped page, and returns the number of
/// bytes actually readable. Unlike a plain memcpy this never faults: the
/// kernel performs the copy (process_vm_readv on ourselves) and reports how
/// much was transferable. Used to hash a bounded window of function bytes
/// whose mapping length is unknown.
std::size_t SafeReadMemory(std::uint64_t addr, void* out, std::size_t size);

}  // namespace dbll::support
