// dbll -- the paper's case study: specializing a generic 2-D stencil
// (Sec. V, Fig. 7).
//
// A stencil is described as a data structure (flat: one factor per point;
// sorted: points grouped by common factor) and applied by *generic* compiled
// code. The rewriting techniques specialize this generic code for one
// concrete stencil at runtime. The hard-coded "direct" kernels are the
// statically specialized reference the paper compares against.
//
// The kernels live in a separate translation unit compiled with controlled
// flags (no CET landing pads, no stack protector) so they stay within the
// instruction subset the decoder and lifter support; see
// src/stencil/kernels.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace dbll::stencil {

/// Matrix side length: a 9x9 base grid with 80 interlines,
/// (9-1)*(80+1)+1 = 649 (paper Sec. VI).
inline constexpr long kMatrixSize = 649;

/// Maximum points/groups in the fixed-capacity stencil descriptions. The
/// paper uses C flexible array members; fixed capacities are layout-
/// compatible for all stencils used here and keep the types valid C++.
inline constexpr int kMaxPoints = 8;
inline constexpr int kMaxGroups = 4;

// --- Flat representation (paper Fig. 7, struct FS/FP) ----------------------

struct FlatPoint {
  double factor;
  int dx;
  int dy;
};

struct FlatStencil {
  int point_count;
  FlatPoint points[kMaxPoints];
};

// --- Sorted representation (paper Fig. 7, struct SS/SG/SP) -----------------

struct SortedPoint {
  int dx;
  int dy;
};

struct SortedGroup {
  double factor;
  int point_count;
  SortedPoint points[kMaxPoints];
};

struct SortedStencil {
  int group_count;
  SortedGroup groups[kMaxGroups];
};

/// Sorted representation with a *nested pointer* to the group array. This
/// matches the paper's evaluation behaviour: IR-level specialization copies
/// only the directly referenced region, so loads through the nested pointer
/// do not constant-fold ("nested pointers will not be marked as constant"),
/// while DBrew's memory ranges can cover both regions.
struct PtrSortedStencil {
  int group_count;
  const SortedGroup* groups;
};

/// The 4-point Jacobi stencil used throughout the evaluation.
const FlatStencil& FourPointFlat();
const SortedStencil& FourPointSorted();
const PtrSortedStencil& FourPointSortedPtr();

/// An 8-point (box) stencil exercising multiple factor groups.
const FlatStencil& EightPointFlat();
const SortedStencil& EightPointSorted();

// --- Kernels (defined in kernels.cpp with controlled codegen) --------------

extern "C" {

/// Generic element kernel, flat structure (paper Fig. 7 apply_flat).
void stencil_apply_flat(const FlatStencil* s, const double* m1, double* m2,
                        long index);

/// Generic element kernel, sorted structure (two nested loops).
void stencil_apply_sorted(const SortedStencil* s, const double* m1,
                          double* m2, long index);

/// Generic element kernel, pointer-based sorted structure.
void stencil_apply_sorted_ptr(const PtrSortedStencil* s, const double* m1,
                              double* m2, long index);

/// Hard-coded 4-point element kernel ("Direct" in Fig. 9).
void stencil_apply_direct(const void* unused, const double* m1, double* m2,
                          long index);

/// Line kernels: compute one matrix row (columns 1..N-2). The stencil code
/// is inlined by the compiler -- the input for Native/LLVM modes.
void stencil_line_flat(const FlatStencil* s, const double* m1, double* m2,
                       long row);
void stencil_line_sorted(const SortedStencil* s, const double* m1, double* m2,
                         long row);
void stencil_line_sorted_ptr(const PtrSortedStencil* s, const double* m1,
                             double* m2, long row);
void stencil_line_direct(const void* unused, const double* m1, double* m2,
                         long row);

/// Line kernels whose element computation is a separate noinline function.
/// This is the input for DBrew on the line kernel: the rewriter inlines the
/// element function but cannot unroll the (unknown-bound) column loop
/// (paper Sec. VI: "the actual computation of an element is moved to a
/// separate function which is inlined by DBrew").
void stencil_line_flat_outlined(const FlatStencil* s, const double* m1,
                                double* m2, long row);
void stencil_line_sorted_outlined(const SortedStencil* s, const double* m1,
                                  double* m2, long row);
void stencil_line_sorted_ptr_outlined(const PtrSortedStencil* s,
                                      const double* m1, double* m2, long row);
void stencil_line_direct_outlined(const void* unused, const double* m1,
                                  double* m2, long row);

}  // extern "C"

/// Uniform function-pointer types: the first parameter is the stencil
/// description (ignored by the direct kernels).
using ElementKernel = void (*)(const void*, const double*, double*, long);
using LineKernel = void (*)(const void*, const double*, double*, long);

/// Kernel providers for adaptive runs: re-polled once per Jacobi sweep, so a
/// runtime::FunctionHandle can serve the generic kernel while the
/// specialized compile is still in flight and be picked up the moment the
/// atomic entry swap happens (zero-stall warm-up).
using ElementKernelProvider = std::function<ElementKernel()>;
using LineKernelProvider = std::function<LineKernel()>;

// --- Jacobi driver (paper Sec. VI) -----------------------------------------

/// Two matrices of kMatrixSize^2 doubles with fixed boundary values; the
/// Jacobi iteration alternates between them.
class JacobiGrid {
 public:
  explicit JacobiGrid(long size = kMatrixSize);

  /// Heat-distribution boundary: top edge 1.0 decreasing to 0 on the other
  /// edges; interior starts at 0.
  void Reset();

  /// Runs `iterations` Jacobi sweeps with an element kernel.
  void RunElement(ElementKernel kernel, const void* stencil, int iterations);
  /// Runs `iterations` Jacobi sweeps with a line kernel.
  void RunLine(LineKernel kernel, const void* stencil, int iterations);

  /// Adaptive variants: the provider is polled before every sweep, letting
  /// the caller swap in a better kernel mid-run (e.g. when the runtime
  /// compile service installs the specialized entry).
  void RunElementAdaptive(const ElementKernelProvider& provider,
                          const void* stencil, int iterations);
  void RunLineAdaptive(const LineKernelProvider& provider, const void* stencil,
                       int iterations);

  long size() const { return size_; }
  const double* front() const { return front_; }
  double* front() { return front_; }

  /// Sum over the current matrix; used to verify that two kernel variants
  /// computed identical iterations.
  double Checksum() const;
  /// Maximum absolute difference to another grid's front matrix.
  double MaxDifference(const JacobiGrid& other) const;

 private:
  long size_;
  std::vector<double> a_;
  std::vector<double> b_;
  double* front_;
  double* back_;
};

}  // namespace dbll::stencil
