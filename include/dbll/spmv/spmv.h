// dbll -- second case study: sparse matrix-vector product (CSR) with a
// runtime-known sparsity pattern.
//
// The paper's introduction motivates runtime specialization with "input
// data, exact target architecture, specific features of I/O devices" known
// only at runtime. A sparse matrix is the classic HPC instance: the
// sparsity pattern is fixed for the whole solver run but unknown at compile
// time. The generic CSR kernel traverses index arrays per row; declaring
// the pattern (and optionally the values) fixed lets DBrew unroll each row
// and fold the index loads away -- the binary-level analogue of
// pattern-specialized SpMV code generators.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace dbll::spmv {

/// Compressed sparse row matrix. All arrays are plain so the kernels stay in
/// the decodable subset.
struct CsrMatrix {
  long rows = 0;
  long cols = 0;
  /// row_start[r] .. row_start[r+1] index into cols_idx/values.
  const long* row_start = nullptr;
  const long* col_idx = nullptr;
  const double* values = nullptr;
};

/// Owning builder for CsrMatrix (test/bench convenience).
class CsrBuilder {
 public:
  CsrBuilder(long rows, long cols) : rows_(rows), cols_(cols) {
    row_start_.assign(static_cast<std::size_t>(rows) + 1, 0);
  }

  /// Adds an entry; rows must be filled in increasing order.
  void Add(long row, long col, double value);

  /// Finalizes and returns a view (valid while the builder lives).
  CsrMatrix Finish();

  /// A banded test matrix: diagonals at the given offsets.
  static CsrBuilder Banded(long n, std::initializer_list<long> offsets,
                           double base_value = 1.0);
  /// A pseudo-random pattern with `per_row` entries per row.
  static CsrBuilder Random(long n, int per_row, std::uint64_t seed);

 private:
  long rows_;
  long cols_;
  long current_row_ = 0;
  std::vector<long> row_start_;
  std::vector<long> col_idx_;
  std::vector<double> values_;
};

extern "C" {

/// Generic CSR row kernel: y[row] = sum_j values[j] * x[col_idx[j]].
/// Compiled with controlled flags (see CMakeLists); the specialization
/// target of this case study.
void spmv_row(const CsrMatrix* m, const double* x, double* y, long row);

/// Generic full product looping over all rows (native baseline).
void spmv_full(const CsrMatrix* m, const double* x, double* y, long rows);

}  // extern "C"

/// Reference product computed with plain C++ (for verification).
void SpmvReference(const CsrMatrix& m, const double* x, double* y);

/// Row-kernel type matching spmv_row, usable with specialized entries.
using RowKernel = void (*)(const CsrMatrix*, const double*, double*, long);

/// Adaptive full product: the provider is re-polled every `poll_rows` rows,
/// so a runtime::FunctionHandle target can be swapped in mid-product once
/// the asynchronously compiled specialization is installed. With the
/// generic spmv_row as initial target the product is always correct.
void SpmvAdaptive(const CsrMatrix& m, const double* x, double* y,
                  const std::function<RowKernel()>& provider,
                  long poll_rows = 64);

}  // namespace dbll::spmv
