// dbll -- Intel-syntax disassembly printer.
//
// Used by the Fig. 8 code-excerpt benchmark, the examples, test diagnostics,
// and DBrew's verbose mode. The output format matches common disassemblers:
// "add rax, 1", "movsd xmm0, qword ptr [rsi + 8*rax]".
#pragma once

#include <string>

#include "dbll/x86/insn.h"

namespace dbll::x86 {

/// Returns the assembly name of a register at a given access width, e.g.
/// PrintReg(kRax, 4) == "eax", PrintReg(Xmm(3), 16) == "xmm3".
std::string PrintReg(Reg reg, std::uint8_t size, bool high8 = false);

/// Formats one operand ("rax", "0x2a", "qword ptr [rbp - 0xc]").
std::string PrintOperand(const Operand& op);

/// Formats a full instruction without address/bytes columns.
std::string PrintInstr(const Instr& instr);

/// Formats "address: bytes  mnemonic ops" (objdump-like single line).
std::string PrintInstrWithBytes(const Instr& instr, const std::uint8_t* bytes);

}  // namespace dbll::x86
