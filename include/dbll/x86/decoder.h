// dbll -- x86-64 instruction decoder.
//
// Covers the instruction subset emitted by current C compilers for integer
// and SSE/SSE2 floating-point code (the paper's supported subset: Linux
// System-V ABI, no AVX, no string instructions). Decoding is the first of the
// three fallible steps of a rewrite (decode / emulate / encode); unsupported
// byte sequences produce ErrorKind::kDecode with the offending address.
#pragma once

#include <cstdint>
#include <span>

#include "dbll/support/error.h"
#include "dbll/x86/insn.h"

namespace dbll::x86 {

class Decoder {
 public:
  /// Decodes a single instruction starting at `code.data()`, which is assumed
  /// to live at virtual address `address` (used to resolve RIP-relative
  /// operands and direct branch targets into Instr::target).
  static Expected<Instr> DecodeOne(std::span<const std::uint8_t> code,
                                   std::uint64_t address);

  /// Convenience overload reading directly from live memory at `address`.
  /// `max_length` bounds the read (an instruction is at most 15 bytes).
  static Expected<Instr> DecodeAt(std::uint64_t address,
                                  std::size_t max_length = 15);
};

}  // namespace dbll::x86
