// dbll -- x86-64 instruction representation.
//
// A decoded instruction is a fully explicit value type: mnemonic, condition
// code (for Jcc/SETcc/CMOVcc), and up to three operands with explicit access
// sizes. The same representation is consumed by the printer, the encoder (for
// the plain-DBrew backend), the meta-emulator, and the LLVM-IR lifter.
#pragma once

#include <cstdint>
#include <string>

namespace dbll::x86 {

// ---------------------------------------------------------------------------
// Registers
// ---------------------------------------------------------------------------

/// Architectural register file class.
enum class RegClass : std::uint8_t {
  kNone = 0,
  kGp,    ///< general purpose: rax..r15 (64-bit each)
  kIp,    ///< instruction pointer
  kVec,   ///< SSE vector registers: xmm0..xmm15 (128-bit each)
};

/// A register identity, independent of the accessed width ("facet" in the
/// paper's terms). Width lives on the operand.
struct Reg {
  RegClass cls = RegClass::kNone;
  std::uint8_t index = 0;

  constexpr bool valid() const noexcept { return cls != RegClass::kNone; }
  constexpr bool operator==(const Reg&) const noexcept = default;
};

// GP register indices follow hardware encoding (REX extension adds 8).
inline constexpr Reg kNoReg{RegClass::kNone, 0};
inline constexpr Reg kRax{RegClass::kGp, 0};
inline constexpr Reg kRcx{RegClass::kGp, 1};
inline constexpr Reg kRdx{RegClass::kGp, 2};
inline constexpr Reg kRbx{RegClass::kGp, 3};
inline constexpr Reg kRsp{RegClass::kGp, 4};
inline constexpr Reg kRbp{RegClass::kGp, 5};
inline constexpr Reg kRsi{RegClass::kGp, 6};
inline constexpr Reg kRdi{RegClass::kGp, 7};
inline constexpr Reg kR8{RegClass::kGp, 8};
inline constexpr Reg kR9{RegClass::kGp, 9};
inline constexpr Reg kR10{RegClass::kGp, 10};
inline constexpr Reg kR11{RegClass::kGp, 11};
inline constexpr Reg kR12{RegClass::kGp, 12};
inline constexpr Reg kR13{RegClass::kGp, 13};
inline constexpr Reg kR14{RegClass::kGp, 14};
inline constexpr Reg kR15{RegClass::kGp, 15};
inline constexpr Reg kRip{RegClass::kIp, 0};

constexpr Reg Gp(std::uint8_t index) { return Reg{RegClass::kGp, index}; }
constexpr Reg Xmm(std::uint8_t index) { return Reg{RegClass::kVec, index}; }

/// Number of registers modeled per class.
inline constexpr int kGpRegCount = 16;
inline constexpr int kVecRegCount = 16;

// ---------------------------------------------------------------------------
// Condition codes (hardware encoding, used by Jcc / SETcc / CMOVcc)
// ---------------------------------------------------------------------------

enum class Cond : std::uint8_t {
  kO = 0x0,   ///< overflow
  kNo = 0x1,
  kB = 0x2,   ///< below (unsigned <), aka C
  kAe = 0x3,  ///< above-or-equal (unsigned >=), aka NC
  kE = 0x4,   ///< equal / zero
  kNe = 0x5,
  kBe = 0x6,  ///< below-or-equal (unsigned <=)
  kA = 0x7,   ///< above (unsigned >)
  kS = 0x8,   ///< sign
  kNs = 0x9,
  kP = 0xa,   ///< parity even
  kNp = 0xb,
  kL = 0xc,   ///< less (signed <): SF != OF
  kGe = 0xd,  ///< greater-or-equal (signed >=)
  kLe = 0xe,  ///< less-or-equal (signed <=)
  kG = 0xf,   ///< greater (signed >)
};

/// Returns the suffix used in assembly mnemonics, e.g. "l" for Cond::kL.
const char* CondName(Cond cond) noexcept;

/// Returns the inverse condition (flip of the low encoding bit).
constexpr Cond Invert(Cond cond) {
  return static_cast<Cond>(static_cast<std::uint8_t>(cond) ^ 1u);
}

// ---------------------------------------------------------------------------
// Status flags
// ---------------------------------------------------------------------------

/// The six user-visible status flags modeled by dbll (paper Sec. III-D).
enum class Flag : std::uint8_t { kZf = 0, kSf, kCf, kOf, kPf, kAf };
inline constexpr int kFlagCount = 6;

/// Bitmask helpers for describing which flags an instruction writes/reads.
enum FlagMask : std::uint8_t {
  kFlagNone = 0,
  kFlagZ = 1u << 0,
  kFlagS = 1u << 1,
  kFlagC = 1u << 2,
  kFlagO = 1u << 3,
  kFlagP = 1u << 4,
  kFlagA = 1u << 5,
  kFlagAll = 0x3f,
};

/// Flags read by a condition code.
std::uint8_t CondFlagUses(Cond cond) noexcept;

// ---------------------------------------------------------------------------
// Mnemonics
// ---------------------------------------------------------------------------

// X-macro: mnemonic identifier, assembly name.
#define DBLL_X86_MNEMONIC_LIST(X)                                     \
  /* pseudo */                                                        \
  X(kInvalid, "(invalid)")                                            \
  X(kNop, "nop")                                                      \
  X(kEndbr64, "endbr64")                                              \
  X(kUd2, "ud2")                                                      \
  /* data movement */                                                 \
  X(kMov, "mov")                                                      \
  X(kMovzx, "movzx")                                                  \
  X(kMovsx, "movsx")                                                  \
  X(kMovsxd, "movsxd")                                                \
  X(kLea, "lea")                                                      \
  X(kXchg, "xchg")                                                    \
  X(kPush, "push")                                                    \
  X(kPop, "pop")                                                      \
  X(kLeave, "leave")                                                  \
  X(kCbw, "cbw")                                                      \
  X(kCwde, "cwde")                                                    \
  X(kCdqe, "cdqe")                                                    \
  X(kCwd, "cwd")                                                      \
  X(kCdq, "cdq")                                                      \
  X(kCqo, "cqo")                                                      \
  X(kBswap, "bswap")                                                  \
  X(kStc, "stc")                                                      \
  X(kClc, "clc")                                                      \
  /* integer arithmetic */                                            \
  X(kAdd, "add")                                                      \
  X(kAdc, "adc")                                                      \
  X(kSub, "sub")                                                      \
  X(kSbb, "sbb")                                                      \
  X(kCmp, "cmp")                                                      \
  X(kTest, "test")                                                    \
  X(kAnd, "and")                                                      \
  X(kOr, "or")                                                        \
  X(kXor, "xor")                                                      \
  X(kNot, "not")                                                      \
  X(kNeg, "neg")                                                      \
  X(kInc, "inc")                                                      \
  X(kDec, "dec")                                                      \
  X(kImul, "imul")                                                    \
  X(kMul, "mul")                                                      \
  X(kIdiv, "idiv")                                                    \
  X(kDiv, "div")                                                      \
  X(kShl, "shl")                                                      \
  X(kShr, "shr")                                                      \
  X(kSar, "sar")                                                      \
  X(kRol, "rol")                                                      \
  X(kRor, "ror")                                                      \
  X(kBt, "bt")                                                        \
  X(kBts, "bts")                                                      \
  X(kBtr, "btr")                                                      \
  X(kBtc, "btc")                                                      \
  X(kBsf, "bsf")                                                      \
  X(kBsr, "bsr")                                                      \
  X(kTzcnt, "tzcnt")                                                  \
  X(kPopcnt, "popcnt")                                                \
  X(kShld, "shld")                                                    \
  X(kShrd, "shrd")                                                    \
  X(kLfence, "lfence")                                                \
  X(kCmpxchg, "cmpxchg")                                              \
  X(kXadd, "xadd")                                                    \
  X(kRdtsc, "rdtsc")                                                  \
  X(kCpuid, "cpuid")                                                  \
  X(kInt3, "int3")                                                    \
  X(kMfence, "mfence")                                                \
  X(kSfence, "sfence")                                                \
  /* control flow */                                                  \
  X(kJmp, "jmp")                                                      \
  X(kJcc, "jcc")                                                      \
  X(kCall, "call")                                                    \
  X(kRet, "ret")                                                      \
  X(kSetcc, "setcc")                                                  \
  X(kCmovcc, "cmovcc")                                                \
  /* SSE data movement */                                             \
  X(kMovss, "movss")                                                  \
  X(kMovsdX, "movsd")                                                 \
  X(kMovaps, "movaps")                                                \
  X(kMovapd, "movapd")                                                \
  X(kMovups, "movups")                                                \
  X(kMovupd, "movupd")                                                \
  X(kMovdqa, "movdqa")                                                \
  X(kMovdqu, "movdqu")                                                \
  X(kMovd, "movd")                                                    \
  X(kMovq, "movq")                                                    \
  X(kMovlps, "movlps")                                                \
  X(kMovhps, "movhps")                                                \
  X(kMovlpd, "movlpd")                                                \
  X(kMovhpd, "movhpd")                                                \
  X(kMovhlps, "movhlps")                                              \
  X(kMovlhps, "movlhps")                                              \
  /* SSE scalar float arithmetic */                                   \
  X(kAddss, "addss")                                                  \
  X(kAddsd, "addsd")                                                  \
  X(kSubss, "subss")                                                  \
  X(kSubsd, "subsd")                                                  \
  X(kMulss, "mulss")                                                  \
  X(kMulsd, "mulsd")                                                  \
  X(kDivss, "divss")                                                  \
  X(kDivsd, "divsd")                                                  \
  X(kMinss, "minss")                                                  \
  X(kMinsd, "minsd")                                                  \
  X(kMaxss, "maxss")                                                  \
  X(kMaxsd, "maxsd")                                                  \
  X(kSqrtss, "sqrtss")                                                \
  X(kSqrtsd, "sqrtsd")                                                \
  /* SSE packed float arithmetic */                                   \
  X(kAddps, "addps")                                                  \
  X(kAddpd, "addpd")                                                  \
  X(kSubps, "subps")                                                  \
  X(kSubpd, "subpd")                                                  \
  X(kMulps, "mulps")                                                  \
  X(kMulpd, "mulpd")                                                  \
  X(kDivps, "divps")                                                  \
  X(kDivpd, "divpd")                                                  \
  X(kSqrtps, "sqrtps")                                                \
  X(kSqrtpd, "sqrtpd")                                                \
  /* SSE bitwise */                                                   \
  X(kAndps, "andps")                                                  \
  X(kAndpd, "andpd")                                                  \
  X(kAndnps, "andnps")                                                \
  X(kAndnpd, "andnpd")                                                \
  X(kOrps, "orps")                                                    \
  X(kOrpd, "orpd")                                                    \
  X(kXorps, "xorps")                                                  \
  X(kXorpd, "xorpd")                                                  \
  X(kPand, "pand")                                                    \
  X(kPandn, "pandn")                                                  \
  X(kPor, "por")                                                      \
  X(kPxor, "pxor")                                                    \
  /* SSE integer arithmetic */                                        \
  X(kPaddb, "paddb")                                                  \
  X(kPaddw, "paddw")                                                  \
  X(kPaddd, "paddd")                                                  \
  X(kPaddq, "paddq")                                                  \
  X(kPsubb, "psubb")                                                  \
  X(kPsubw, "psubw")                                                  \
  X(kPsubd, "psubd")                                                  \
  X(kPsubq, "psubq")                                                  \
  X(kPmullw, "pmullw")                                                \
  X(kPmuludq, "pmuludq")                                              \
  X(kPminub, "pminub")                                                \
  X(kPmaxub, "pmaxub")                                                \
  X(kPminsw, "pminsw")                                                \
  X(kPmaxsw, "pmaxsw")                                                \
  X(kPavgb, "pavgb")                                                  \
  X(kPavgw, "pavgw")                                                  \
  /* SSE integer compares */                                          \
  X(kPcmpeqb, "pcmpeqb")                                              \
  X(kPcmpeqw, "pcmpeqw")                                              \
  X(kPcmpeqd, "pcmpeqd")                                              \
  X(kPcmpgtb, "pcmpgtb")                                              \
  X(kPcmpgtw, "pcmpgtw")                                              \
  X(kPcmpgtd, "pcmpgtd")                                              \
  /* SSE shifts */                                                    \
  X(kPsllw, "psllw")                                                  \
  X(kPslld, "pslld")                                                  \
  X(kPsllq, "psllq")                                                  \
  X(kPsrlw, "psrlw")                                                  \
  X(kPsrld, "psrld")                                                  \
  X(kPsrlq, "psrlq")                                                  \
  X(kPsraw, "psraw")                                                  \
  X(kPsrad, "psrad")                                                  \
  X(kPslldq, "pslldq")                                                \
  X(kPsrldq, "psrldq")                                                \
  /* SSE mask extraction */                                           \
  X(kPmovmskb, "pmovmskb")                                            \
  X(kMovmskps, "movmskps")                                            \
  X(kMovmskpd, "movmskpd")                                            \
  /* SSE float compares with predicate */                             \
  X(kCmpss, "cmpss")                                                  \
  X(kCmpsd, "cmpsd")                                                  \
  X(kCmpps, "cmpps")                                                  \
  X(kCmppd, "cmppd")                                                  \
  /* rounding-mode conversions */                                     \
  X(kCvtss2si, "cvtss2si")                                            \
  X(kCvtsd2si, "cvtsd2si")                                            \
  /* SSE shuffles */                                                  \
  X(kUnpcklps, "unpcklps")                                            \
  X(kUnpcklpd, "unpcklpd")                                            \
  X(kUnpckhps, "unpckhps")                                            \
  X(kUnpckhpd, "unpckhpd")                                            \
  X(kShufps, "shufps")                                                \
  X(kShufpd, "shufpd")                                                \
  X(kPshufd, "pshufd")                                                \
  X(kPunpcklqdq, "punpcklqdq")                                        \
  X(kPunpckhqdq, "punpckhqdq")                                        \
  X(kPunpcklbw, "punpcklbw")                                          \
  X(kPunpcklwd, "punpcklwd")                                          \
  X(kPunpckldq, "punpckldq")                                          \
  X(kPunpckhbw, "punpckhbw")                                          \
  X(kPunpckhwd, "punpckhwd")                                          \
  X(kPunpckhdq, "punpckhdq")                                          \
  /* SSE compare / convert */                                         \
  X(kUcomiss, "ucomiss")                                              \
  X(kUcomisd, "ucomisd")                                              \
  X(kComiss, "comiss")                                                \
  X(kComisd, "comisd")                                                \
  X(kCvtsi2ss, "cvtsi2ss")                                            \
  X(kCvtsi2sd, "cvtsi2sd")                                            \
  X(kCvttss2si, "cvttss2si")                                          \
  X(kCvttsd2si, "cvttsd2si")                                          \
  X(kCvtss2sd, "cvtss2sd")                                            \
  X(kCvtsd2ss, "cvtsd2ss")                                            \
  X(kCvtdq2pd, "cvtdq2pd")                                            \
  X(kCvtdq2ps, "cvtdq2ps")                                            \
  X(kCvtps2pd, "cvtps2pd")                                            \
  X(kCvtpd2ps, "cvtpd2ps")

enum class Mnemonic : std::uint16_t {
#define DBLL_X86_ENUM(id, name) id,
  DBLL_X86_MNEMONIC_LIST(DBLL_X86_ENUM)
#undef DBLL_X86_ENUM
      kCount,
};

/// Returns the base assembly name ("jcc"/"setcc"/"cmovcc" for the
/// condition-carrying families; PrintInstr appends the condition suffix).
const char* MnemonicName(Mnemonic mnemonic) noexcept;

// ---------------------------------------------------------------------------
// Operands
// ---------------------------------------------------------------------------

enum class OpKind : std::uint8_t { kNone = 0, kReg, kImm, kMem };

/// Segment override prefix relevant for addressing (thread-local storage).
enum class Segment : std::uint8_t { kNone = 0, kFs, kGs };

/// A memory operand: [base + index*scale + disp], optionally RIP-relative or
/// segment-prefixed. When `base == kRip`, `disp` is relative to the *end* of
/// the instruction, and Decoder resolves it into `Instr::mem_target`.
struct MemOperand {
  Reg base = kNoReg;
  Reg index = kNoReg;
  std::uint8_t scale = 1;  // 1, 2, 4 or 8
  std::int32_t disp = 0;
  Segment segment = Segment::kNone;

  constexpr bool operator==(const MemOperand&) const noexcept = default;
};

/// An instruction operand with its access size in bytes (the "facet" width).
/// `high8` marks the legacy high-byte registers ah/ch/dh/bh.
struct Operand {
  OpKind kind = OpKind::kNone;
  std::uint8_t size = 0;  // access width in bytes: 1,2,4,8 for GP; 4,8,16 vec
  bool high8 = false;
  Reg reg;
  std::int64_t imm = 0;
  MemOperand mem;

  static Operand RegOp(Reg r, std::uint8_t size, bool high8 = false) {
    Operand op;
    op.kind = OpKind::kReg;
    op.reg = r;
    op.size = size;
    op.high8 = high8;
    return op;
  }
  static Operand ImmOp(std::int64_t value, std::uint8_t size) {
    Operand op;
    op.kind = OpKind::kImm;
    op.imm = value;
    op.size = size;
    return op;
  }
  static Operand MemOp(MemOperand mem, std::uint8_t size) {
    Operand op;
    op.kind = OpKind::kMem;
    op.mem = mem;
    op.size = size;
    return op;
  }

  bool is_reg() const noexcept { return kind == OpKind::kReg; }
  bool is_imm() const noexcept { return kind == OpKind::kImm; }
  bool is_mem() const noexcept { return kind == OpKind::kMem; }
  bool is_none() const noexcept { return kind == OpKind::kNone; }
};

// ---------------------------------------------------------------------------
// Instruction
// ---------------------------------------------------------------------------

/// A fully decoded instruction. Operand 0 is the destination (where one
/// exists); source operands follow.
struct Instr {
  std::uint64_t address = 0;   ///< virtual address of the first byte
  std::uint8_t length = 0;     ///< encoded length in bytes
  Mnemonic mnemonic = Mnemonic::kInvalid;
  Cond cond = Cond::kO;        ///< valid for kJcc / kSetcc / kCmovcc
  std::uint8_t op_count = 0;
  Operand ops[3];

  /// Resolved absolute target for direct jumps/calls and RIP-relative memory
  /// operands (0 when not applicable).
  std::uint64_t target = 0;

  std::uint64_t end() const noexcept { return address + length; }

  bool IsBranch() const noexcept {
    return mnemonic == Mnemonic::kJmp || mnemonic == Mnemonic::kJcc;
  }
  bool IsBlockTerminator() const noexcept {
    return IsBranch() || mnemonic == Mnemonic::kRet ||
           mnemonic == Mnemonic::kUd2;
  }
  bool HasRipOperand() const noexcept {
    for (int i = 0; i < op_count; ++i) {
      if (ops[i].is_mem() && ops[i].mem.base == kRip) return true;
    }
    return false;
  }
};

/// Flag behaviour metadata: which status flags a mnemonic writes and whether
/// it leaves some flags undefined. Used by the meta-emulator and the flag
/// cache invalidation logic.
struct FlagEffects {
  std::uint8_t written = kFlagNone;    ///< flags given defined values
  std::uint8_t undefined = kFlagNone;  ///< flags left in an undefined state
  bool reads_carry = false;            ///< adc/sbb read CF
};

/// Returns the flag effects for `mnemonic`.
FlagEffects FlagEffectsOf(Mnemonic mnemonic) noexcept;

}  // namespace dbll::x86
