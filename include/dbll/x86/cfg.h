// dbll -- function-level control-flow discovery (paper Sec. III-B).
//
// A compiled function is decoded into basic blocks starting from its entry
// point. Direct jumps and conditional jumps are followed; a jump into the
// middle of an existing block splits that block, so every decoded instruction
// belongs to exactly one block (the paper's de-duplication guarantee).
// Indirect jumps are rejected by default (tolerated, or followed through
// proven jump-table targets, via CfgOptions), calls are recorded but not
// followed.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "dbll/support/error.h"
#include "dbll/x86/insn.h"

namespace dbll::x86 {

/// A straight-line run of instructions ending with a control-flow change or
/// immediately before another block's leader.
struct BasicBlock {
  std::uint64_t start = 0;
  std::vector<Instr> instrs;

  /// Address of the taken successor for jmp/jcc (0 when none).
  std::uint64_t branch_target = 0;
  /// Address of the fall-through successor (0 when none, e.g. after ret/jmp).
  std::uint64_t fall_through = 0;
  /// Proven successor set of a register-indirect jmp terminator (jump-table
  /// dispatch resolved by the value-range analysis, docs/static_analysis.md).
  /// Sorted and deduplicated; empty for every other terminator and for an
  /// unresolved indirect jump decoded under
  /// CfgOptions::allow_indirect_jumps.
  std::vector<std::uint64_t> indirect_targets;

  bool HasIndirectJump() const {
    return !instrs.empty() && instrs.back().mnemonic == Mnemonic::kJmp &&
           instrs.back().op_count != 0 && !instrs.back().ops[0].is_imm();
  }
  /// Start addresses of every predecessor block, including the implicit
  /// fall-through edge created when a jump target splits a block mid-stream.
  /// Deduplicated (a jcc whose target equals its fall-through contributes one
  /// edge). Backward dataflow (src/analysis) walks these.
  std::vector<std::uint64_t> predecessors;

  std::uint64_t end() const noexcept {
    return instrs.empty() ? start : instrs.back().end();
  }
  const Instr& terminator() const { return instrs.back(); }
  bool EndsWithRet() const {
    return !instrs.empty() && instrs.back().mnemonic == Mnemonic::kRet;
  }
};

/// The decoded control-flow graph of one function.
struct Cfg {
  std::uint64_t entry = 0;
  /// Blocks keyed by start address (iteration order == address order).
  std::map<std::uint64_t, BasicBlock> blocks;
  /// Unique direct call targets observed anywhere in the function.
  std::vector<std::uint64_t> call_targets;
  /// Total number of decoded instructions.
  std::size_t instr_count = 0;

  const BasicBlock& entry_block() const { return blocks.at(entry); }
};

struct CfgOptions {
  /// Upper bound on decoded instructions; exceeds -> kResourceLimit. Guards
  /// against running off into non-code bytes.
  std::size_t max_instructions = 100000;
  /// Tolerate register-indirect jmp terminators instead of failing the
  /// decode with kUnsupported. The block ends with no successors; the
  /// value-range analysis (src/analysis/ranges.cpp) uses this for its first,
  /// optimistic decode pass before jump-table resolution. Consumers that do
  /// not resolve the targets must treat such a CFG as incomplete.
  bool allow_indirect_jumps = false;
  /// Proven jump-table targets keyed by the address of the indirect jmp
  /// instruction. When a site is found here its targets are followed like
  /// direct-branch successors and recorded in BasicBlock::indirect_targets.
  /// Not owned; must outlive the BuildCfg call.
  const std::map<std::uint64_t, std::vector<std::uint64_t>>* resolved_jumps =
      nullptr;
};

/// Decodes the function whose first instruction lives at `entry` in the
/// current process image.
Expected<Cfg> BuildCfg(std::uint64_t entry, const CfgOptions& options = {});

/// Decodes a function from a buffer: `code[i]` is the byte at virtual address
/// `base_address + i`. Jump targets outside the buffer are an error.
Expected<Cfg> BuildCfgFromBuffer(std::span<const std::uint8_t> code,
                                 std::uint64_t base_address,
                                 std::uint64_t entry,
                                 const CfgOptions& options = {});

}  // namespace dbll::x86
