// dbll -- x86-64 instruction encoder.
//
// Re-emits the decoded instruction representation as machine code. This is
// the "encoding" step of a DBrew rewrite: instructions that survive
// meta-emulation unchanged (or with operands replaced by immediates) are
// encoded into the new code buffer. The encoder covers the same subset as the
// decoder; Encode(Decode(x)) is semantically equivalent to x (not necessarily
// byte-identical, e.g. branches are always emitted in rel32 form).
#pragma once

#include <cstdint>
#include <span>

#include "dbll/support/error.h"
#include "dbll/x86/insn.h"

namespace dbll::x86 {

class Encoder {
 public:
  /// Encodes `instr` into `buffer`, assuming the first emitted byte will live
  /// at virtual address `address` (needed for RIP-relative operands and
  /// direct branches, which are re-materialized from Instr::target).
  /// Returns the encoded length.
  static Expected<std::size_t> Encode(const Instr& instr,
                                      std::span<std::uint8_t> buffer,
                                      std::uint64_t address);

  /// Maximum length of any encoding this encoder produces.
  static constexpr std::size_t kMaxLength = 15;
};

}  // namespace dbll::x86
