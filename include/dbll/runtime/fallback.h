// dbll -- the tiered degradation chain of the compile service.
//
// The paper's deployment promise (Sec. II) is that runtime rewriting is
// *optional* acceleration: a rewrite that cannot complete must never break
// the program, because the original compiled function is always a correct
// answer. The compile service realizes that promise as an explicit chain of
// tiers, each a strictly cheaper, strictly more robust implementation of the
// same specialization request:
//
//   Tier 0a (kBaseline) lift -> minimal pass list at a low opt level: the
//                     fast baseline of the tiering engine (tiering.h),
//                     installable in ~100us-1ms. Same failure modes as
//                     Tier 0, much cheaper to produce, slower steady-state
//                     code. Produced only by profile-guided tiering, never
//                     by degradation.
//   Tier 0 (kLlvm)    lift -> O3 -> JIT: the paper's full pipeline, fastest
//                     code, most failure modes (decode, lift, verify, JIT).
//   Tier 1 (kDbrew)   plain DBrew rewrite: decode -> meta-emulate -> encode,
//                     no LLVM at all. Slower code than Tier 0, but immune to
//                     every LLVM failure mode and orders of magnitude
//                     cheaper to produce.
//   Tier 2 (kGeneric) the original generic entry: always correct, no
//                     specialization benefit.
//
// A tier failure degrades to the next tier; which tier ultimately serves is
// recorded on the handle (FunctionHandle::tier()), along with the per-tier
// Error chain (FunctionHandle::error_chain()). Degradations surface in the
// obs registry as fallback.tier0_fail / fallback.tier1_serve /
// fallback.tier2_serve.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "dbll/support/error.h"

namespace dbll::dbrew {
class Rewriter;
}  // namespace dbll::dbrew

namespace dbll::runtime {

struct CompileRequest;

/// Which implementation serves a handle's target(). Values are stable (they
/// cross the C API as plain ints via dbll_handle_tier).
enum class Tier : std::uint8_t {
  kLlvm = 0,     ///< Tier 0: lift -> O3 -> JIT specialized code
  kDbrew = 1,    ///< Tier 1: plain-DBrew rewritten code (no LLVM)
  kGeneric = 2,  ///< Tier 2: the original generic entry
  kBaseline = 3, ///< Tier 0a: fast low-opt baseline (profile-guided tiering)
};

/// Returns a stable, human-readable name for a Tier.
std::string_view ToString(Tier tier) noexcept;

/// True for failures worth one retry before degrading (the failure may not
/// repeat: resource limits, deadline overruns of a contended run).
bool IsTransient(ErrorKind kind) noexcept;

/// True for failures that will repeat on any re-run of the same request
/// (decode/lift/JIT rejections of the same bytes). These are negative-cached
/// by the compile service so repeated requests skip straight past Tier 0
/// instead of re-running LLVM.
bool IsDeterministic(ErrorKind kind) noexcept;

/// A successful Tier-1 rewrite. The Rewriter owns the code buffer; it must
/// stay alive for as long as `entry` may be called (the compile service
/// keeps it until service destruction, preserving the documented "generated
/// code is owned by the service" lifetime).
struct Tier1Result {
  std::uint64_t entry = 0;
  std::unique_ptr<dbrew::Rewriter> rewriter;
};

/// Runs the request through the plain DBrew rewriter: parameter fixations
/// map to Rewriter::SetParam, const-memory fixations to SetParam (the
/// original region address) + SetMemRange. Fails with kUnsupported when the
/// request cannot be expressed in DBrew terms (FP parameter fixation, a
/// const-mem region whose live contents no longer match the bytes captured
/// at request time) and with the rewrite error otherwise. Retries once with
/// enlarged buffers on kResourceLimit, mirroring RewriteOrOriginal.
Expected<Tier1Result> Tier1Rewrite(const CompileRequest& request);

}  // namespace dbll::runtime
