// dbll -- specialization requests and the cache key scheme.
//
// A compiled specialization is fully determined by
//   (target address, public signature, LiftConfig, ordered specializations),
// where a specialization is either a parameter fixation (index, value) or a
// constant-memory fixation (index, region address + *contents*). Two
// requests with the same key are interchangeable, so the compile service
// memoizes on it: the repeated case degenerates to a hash lookup instead of
// a multi-millisecond lift -> O3 -> JIT run (paper Sec. V: rewriting time
// must be amortized over the calls of the specialized function).
//
// Constant-memory regions are *copied* at request time: the key hashes the
// bytes, matching the semantic contract that the region is constant for the
// lifetime of the specialized code. If the caller later changes the region
// and requests again, the content hash differs and a fresh compile runs.
// The region's source address is hashed too: the pointer-link proofs
// (analysis::FindPointerLinks) that SpecializeConstMemGraph bakes into
// Tier-0 code depend on absolute addresses, so a byte-identical region at a
// relocated address must not alias a cached compile.
#pragma once

#include <cstdint>
#include <vector>

#include "dbll/lift/lifter.h"

namespace dbll::runtime {

/// One IR-level specialization step, applied in request order.
struct SpecAction {
  enum class Kind : std::uint8_t { kParam, kConstMem, kConstRange };
  Kind kind = Kind::kParam;
  /// Public parameter index (0-based); -1 for kConstRange, which is not
  /// bound to any parameter.
  int index = 0;
  std::uint64_t value = 0;          ///< kParam: the fixed value
  /// kConstMem / kConstRange: region contents (copied at request time).
  std::vector<std::uint8_t> bytes;
  /// The live source address the bytes were copied from. Part of the cache
  /// key for both memory kinds: the pointer-link proofs
  /// (analysis::FindPointerLinks) that let the specializer chase between
  /// regions depend on the absolute addresses, so relocated but
  /// byte-identical regions must hash differently. Also lets the Tier-1
  /// DBrew fallback (fallback.h) re-express the fixation as a SetParam +
  /// SetMemRange on the original region.
  std::uint64_t mem_addr = 0;
};

/// Everything needed to produce (and identify) one specialized compile.
struct CompileRequest {
  std::uint64_t address = 0;   ///< entry of the compiled generic function
  lift::Signature signature;
  lift::LiftConfig config;
  std::vector<SpecAction> specs;
  /// Wall-clock budget for the Tier-0 (lift -> O3 -> JIT) attempt in
  /// milliseconds; 0 uses the service-wide default
  /// (CompileService::Options::default_deadline_ms). A compile that overruns
  /// is marked kTimeout and degraded to Tier 1 while the straggling LLVM run
  /// finishes in the background (its late result is discarded). Not part of
  /// the cache key: the deadline shapes *when* a result exists, not what it
  /// is.
  std::uint32_t deadline_ms = 0;

  CompileRequest() = default;
  CompileRequest(std::uint64_t entry_address, lift::Signature entry_signature,
                 lift::LiftConfig lift_config = {})
      : address(entry_address),
        signature(std::move(entry_signature)),
        config(std::move(lift_config)) {}

  /// Fixes integer parameter `index` to `value`
  /// (LiftedFunction::SpecializeParam).
  CompileRequest& FixParam(int index, std::uint64_t value);

  /// Fixes pointer parameter `index` to the contents of [data, data+size)
  /// (LiftedFunction::SpecializeParamToConstMem). The bytes are copied now.
  CompileRequest& FixConstMem(int index, const void* data, std::size_t size);

  /// Declares [data, data+size) fixed without binding it to a parameter.
  /// When a FixConstMem region holds a pointer that provably lands inside
  /// this range (analysis::FindPointerLinks), the Tier-0 specializer chases
  /// the indirection (LiftedFunction::SpecializeConstMemGraph); the Tier-1
  /// fallback pins it with dbrew SetMemRange. The bytes are copied now and
  /// must stay live-identical whenever the derived code runs.
  CompileRequest& AddConstRange(const void* data, std::size_t size);
};

/// Value-type cache key. Equality compares the full serialized request (no
/// reliance on hash uniqueness); the hash is precomputed for map use.
class SpecKey {
 public:
  /// Empty key; compares equal only to other empty keys. Exists so key
  /// fields can live in default-constructed aggregates (compile-service
  /// jobs); every key actually used for lookup is built from a request.
  SpecKey() = default;

  explicit SpecKey(const CompileRequest& request);

  std::uint64_t hash() const { return hash_; }
  /// Canonical serialization of the request; the persistent object cache
  /// (object_store.h) folds it into its on-disk fingerprint.
  const std::vector<std::uint8_t>& blob() const { return blob_; }
  bool operator==(const SpecKey& other) const {
    return hash_ == other.hash_ && blob_ == other.blob_;
  }

  struct Hash {
    std::size_t operator()(const SpecKey& key) const {
      return static_cast<std::size_t>(key.hash());
    }
  };

 private:
  std::vector<std::uint8_t> blob_;  ///< canonical serialization of the request
  std::uint64_t hash_ = 0;
};

}  // namespace dbll::runtime
