// dbll -- shared-memory hot-entry ring (the fleet cache's fast front).
//
// The on-disk ObjectStore removes recompiles per *machine*; this ring
// removes the remaining per-process disk I/O when N server processes on one
// box request the same specializations. It is a fixed-geometry array of
// seqlock-protected slots in a file-backed MAP_SHARED mapping
// (`<cache-dir>/hotring.dbshm`), each slot holding the *serialized* bytes of
// one ObjectStore entry keyed by its 64-bit persist fingerprint. Lookups are
// lock-free reads; inserts serialize on the ring file's flock(2), the same
// advisory-lock discipline the ObjectStore manifest already uses.
//
// Safety model (the ring must never serve a wrong or torn object):
//   * Each slot carries a sequence word: odd while a writer is mid-copy,
//     bumped to a new even value when the write is published. A reader
//     snapshots the sequence, copies the payload, and discards the copy if
//     the sequence moved or was odd -- the classic seqlock.
//   * The copied payload is then validated twice: a slot-level FNV-1a
//     checksum (cheap torn-write rejection) and the full DBLLOBJ1 entry
//     validation in the ObjectStore consumer (magic, version, fingerprint,
//     payload checksum, toolchain stamp). A hostile or half-written slot can
//     cost a miss, never a wrong kernel.
//   * Writers only mutate slots while holding the exclusive flock. An *odd*
//     sequence observed while holding that lock therefore proves the writer
//     died mid-copy; the slot is reclaimed on the spot (crash recovery).
//   * Attach is flock-serialized and idempotent: the first process sizes and
//     initializes the file, publishing it with a release-store of the ready
//     flag; a file left unpublished by a crashed initializer is re-initialized
//     by the next attacher. A ring written by an unknown (newer) format
//     version is refused -- the process degrades to disk-only. A ring written
//     by a different toolchain (LLVM version / target CPU fingerprint) is
//     re-initialized, mirroring the ObjectStore's invalidation rule.
//
// Failure semantics match the rest of the cache stack: every problem --
// unmappable file, torn read, checksum mismatch, armed `objcache.shm` fault
// -- degrades to a miss and is visible only through stats()/`shmcache.*`
// metrics. See docs/runtime_cache.md (fleet cache) and docs/robustness.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dbll/support/error.h"

namespace dbll::runtime {

class Quarantine;  // containment.h: the poisoned-fingerprint veto

/// Per-process counters of one attached ring (all monotonic).
struct ShmRingStats {
  std::uint64_t hits = 0;       ///< Lookup returned validated bytes
  std::uint64_t misses = 0;     ///< no slot (or a torn slot) for the key
  std::uint64_t inserts = 0;    ///< payloads published into a slot
  std::uint64_t evictions = 0;  ///< occupied slots overwritten (LRU victim)
  std::uint64_t too_big = 0;    ///< payloads skipped: larger than a slot
  std::uint64_t stale_reclaimed = 0;  ///< dead-writer slots recovered
  std::uint64_t errors = 0;     ///< checksum/torn/fault/IO degraded paths
  std::uint64_t reinit = 0;     ///< attach re-initialized an unusable ring
  std::uint64_t lookup_ns = 0;  ///< wall time inside Lookup
  std::uint64_t insert_ns = 0;  ///< wall time inside Insert
  std::uint64_t quarantine_blocked = 0;  ///< lookups/inserts vetoed as poisoned
};

/// Fleet-wide view of a ring file (header + slot scan), as read at one
/// instant. Fleet counters live in the shared header and aggregate over
/// every process that ever attached this ring since initialization.
struct ShmRingOccupancy {
  std::uint32_t format_version = 0;
  std::uint32_t slot_count = 0;
  std::uint64_t slot_bytes = 0;
  std::uint64_t toolchain_fp = 0;
  std::uint32_t used_slots = 0;
  std::uint64_t payload_bytes = 0;  ///< sum of occupied payload sizes
  std::uint64_t fleet_hits = 0;
  std::uint64_t fleet_inserts = 0;
  std::uint64_t fleet_evictions = 0;
};

class ShmRing {
 public:
  struct Options {
    std::string dir;  ///< cache directory; the ring file lives inside it
    /// Geometry requested when this process initializes the ring. When an
    /// initialized ring already exists its file geometry wins, so every
    /// attached process agrees on the layout.
    std::uint32_t slots = 64;
    std::uint64_t slot_bytes = 256 * 1024;
  };

  /// Attaches (creating/initializing/recovering as needed). On any failure
  /// the instance stays constructed but detached: Lookup always misses,
  /// Insert is a no-op, and init_status() says why.
  ShmRing(Options options, std::uint64_t toolchain_fp);
  ~ShmRing();
  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;

  const Status& init_status() const { return init_; }
  bool attached() const { return init_.ok(); }

  /// Geometry actually in effect (the file's, which may differ from the
  /// requested Options when another process initialized first).
  std::uint32_t slot_count() const { return slot_count_; }
  std::uint64_t slot_bytes() const { return slot_bytes_; }

  /// Lock-free lookup. True iff a slot holds the fingerprint and the copied
  /// payload survives the seqlock + checksum validation; fills *out with the
  /// serialized entry bytes. Everything else -- detached ring, concurrent
  /// writer, torn data, armed `objcache.shm` fault -- is a miss.
  bool Lookup(std::uint64_t fingerprint, std::vector<std::uint8_t>* out);

  /// Publishes serialized entry bytes under the fingerprint (flock'd).
  /// Chooses, in order: the slot already holding this fingerprint, a free
  /// slot, a crashed-writer slot, the least-recently-used slot. Payloads
  /// larger than a slot are skipped (counted, not an error). Returns true
  /// when the payload was published.
  bool Insert(std::uint64_t fingerprint, const std::uint8_t* data,
              std::size_t size);

  /// Wires the poisoned-fingerprint veto (containment.h): once set, Lookup
  /// refuses to serve -- and Insert refuses to publish -- a quarantined
  /// fingerprint, *before* touching any slot. Set once right after
  /// construction (the ObjectStore does this), before concurrent use.
  void SetQuarantine(std::shared_ptr<Quarantine> quarantine);

  /// Scrubs the slot holding `fingerprint`, if any, under the writer flock
  /// (seqlock write of an empty slot). Peers that already copied the
  /// payload keep it -- this stops *future* lookups fleet-wide. True when a
  /// slot was cleared.
  bool Invalidate(std::uint64_t fingerprint);

  ShmRingStats stats() const;

  /// Point-in-time fleet view of the attached ring.
  ShmRingOccupancy occupancy() const;

  /// Reads the occupancy of an existing ring file without creating,
  /// locking, or modifying anything (dbll-cachectl stats). Errors when no
  /// initialized ring exists under `dir`.
  static Expected<ShmRingOccupancy> Inspect(const std::string& dir);

  /// Name of the ring file inside a cache directory ("hotring.dbshm").
  static const char* RingFileName();

  /// --- test hooks (shm_ring_test.cpp) ---

  /// Index of the slot currently holding `fingerprint`, or -1.
  int TestFindSlot(std::uint64_t fingerprint) const;
  /// Forces a slot's sequence word (e.g. to an odd value, simulating a
  /// writer that died mid-copy).
  void TestSetSlotSeq(std::uint32_t slot_index, std::uint32_t seq);
  /// Flips one byte of a slot's payload without touching its checksum.
  void TestCorruptSlotPayload(std::uint32_t slot_index);

 private:
  struct Header;  // shared-memory layouts live in the .cpp
  struct Slot;

  Slot* SlotAt(std::uint32_t index) const;
  bool AttachLocked(std::uint64_t toolchain_fp);
  void InitializeLocked(std::uint64_t toolchain_fp);

  Options options_;
  Status init_;
  int fd_ = -1;
  void* map_ = nullptr;
  std::uint64_t map_bytes_ = 0;
  Header* header_ = nullptr;
  std::uint32_t slot_count_ = 0;
  std::uint64_t slot_bytes_ = 0;
  std::uint64_t slot_stride_ = 0;
  std::shared_ptr<Quarantine> quarantine_;

  mutable std::atomic<std::uint64_t> hits_{0}, misses_{0}, inserts_{0},
      evictions_{0}, too_big_{0}, stale_reclaimed_{0}, errors_{0}, reinit_{0},
      lookup_ns_{0}, insert_ns_{0}, quarantine_blocked_{0};
};

}  // namespace dbll::runtime
