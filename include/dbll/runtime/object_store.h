// dbll -- persistent compiled-object cache (the warm-start store).
//
// The paper's amortization argument (Sec. V: ~40ms of lift -> -O3 -> JIT per
// kernel) is re-paid on *every process start* as long as the specialization
// cache is purely in-memory. This store closes that gap: the relocatable
// object LLVM emitted for a specialization in one run is written to disk and
// re-installed in the next, skipping decode, lift, O3 and codegen entirely
// (LeanBin-style "lifted binaries are cacheable artifacts").
//
// Keying. An entry is addressed by a 64-bit fingerprint over everything that
// determines the emitted object:
//   * the SpecKey blob (target address, signature, LiftConfig fingerprint,
//     ordered specializations incl. const-memory *contents*),
//   * a bounded window of the target function's machine code bytes (so a
//     recompiled/patched target invalidates naturally),
//   * the LLVM version string and the JIT target CPU (a toolchain update or
//     codegen-target change invalidates the whole cache).
// Because the SpecKey contains raw virtual addresses (and lifted code bakes
// absolute rebased addresses in), warm hits require a stable address layout
// across runs -- same binary, ASLR disabled or compensated by the embedder
// (tools/warm_smoke.cpp shows the personality(ADDR_NO_RANDOMIZE) pattern).
// A layout change simply misses; it can never produce a wrong kernel.
//
// Durability contract:
//   * writes are temp-file + atomic rename: readers and crashes never see a
//     torn entry under its published name;
//   * every entry is self-validating (magic, format version, fingerprint,
//     payload length + FNV-1a checksum, LLVM version, CPU): anything that
//     fails validation is treated as a miss and deleted, never trusted and
//     never fatal;
//   * a flock(2)-guarded manifest provides cross-process LRU timestamps; the
//     directory listing (not the manifest) is ground truth for eviction and
//     stats, so a lost manifest only costs recency info.
//
// Failure semantics: every disk problem degrades to the in-memory behaviour
// (compile again), surfaced only through stats()/obs counters. See
// docs/runtime_cache.md and docs/robustness.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dbll/runtime/shm_ring.h"
#include "dbll/runtime/spec_cache.h"
#include "dbll/support/error.h"

namespace dbll::runtime {

class Quarantine;  // containment.h: the poisoned-fingerprint sidecar

/// One decoded cache entry: the relocatable object plus the metadata needed
/// to re-install it into the JIT without any IR.
struct ObjectEntry {
  std::uint64_t fingerprint = 0;
  std::string wrapper_name;     ///< public symbol to resolve after loading
  std::string membase_symbol;   ///< memory-rebasing global ("" = unused)
  std::uint64_t membase_value = 0;
  /// Optimization tier the object was compiled at: 0 = full O3 (Tier-0),
  /// 1 = fast baseline (Tier-0a, see tiering.h). Informational for tooling
  /// (dbll-cachectl stats breaks entries down by it); the fingerprint
  /// already separates the tiers because the SpecKey folds the LiftConfig
  /// (opt level + pass preset) in.
  std::uint32_t opt_tier = 0;
  /// ISA ladder level the object was compiled for (support/cpu_features.h:
  /// 0 = baseline, 1 = avx2, 2 = avx512). Unlike opt_tier this one is
  /// *load-bearing*: a host whose effective level is lower than the entry's
  /// must treat it as a clean miss -- installing it would fault on the
  /// first AVX instruction. The fingerprint separates levels too (the
  /// LiftConfig fingerprint folds isa_level in, and the persist fingerprint
  /// mixes the per-level cpu+features stamp), so coexisting variants of one
  /// kernel share a cache directory without aliasing.
  std::uint32_t isa_level = 0;
  std::vector<std::uint8_t> object;  ///< the emitted relocatable object file
};

/// Per-process counters of one ObjectStore (all monotonic).
struct ObjectStoreStats {
  std::uint64_t hits = 0;        ///< Load found a valid entry
  std::uint64_t misses = 0;      ///< Load found nothing for the fingerprint
  std::uint64_t stores = 0;      ///< entries published
  std::uint64_t evictions = 0;   ///< entries removed by the size/count cap
  std::uint64_t corrupt_dropped = 0;  ///< invalid entries deleted on load
  std::uint64_t errors = 0;      ///< I/O failures swallowed (degraded)
  std::uint64_t load_ns = 0;     ///< wall time inside Load
  std::uint64_t store_ns = 0;    ///< wall time inside Store
  /// Shared-memory hot-entry ring (shm_ring.h); all zero when disabled.
  /// A shm hit also counts in `hits` above -- `hits` is "Load succeeded",
  /// the shm_* fields say how.
  std::uint64_t shm_attached = 0;  ///< 1 when the ring mapped successfully
  std::uint64_t shm_slots = 0;     ///< ring geometry in effect
  std::uint64_t shm_entries = 0;   ///< occupied slots at snapshot time
  std::uint64_t shm_hits = 0;
  std::uint64_t shm_misses = 0;
  std::uint64_t shm_inserts = 0;
  std::uint64_t shm_evictions = 0;
  std::uint64_t shm_errors = 0;
  /// Poisoned-entry quarantine (containment.h); enforcement is always on.
  std::uint64_t quarantined = 0;          ///< fingerprints this store poisoned
  std::uint64_t quarantine_entries = 0;   ///< records in the loaded sidecar
  std::uint64_t quarantine_blocked = 0;   ///< loads/stores/inserts vetoed
  /// Valid entries refused because they target a higher ISA level than this
  /// host's effective one (support/cpu_features.h). A refusal is a clean
  /// miss: the file is kept (another host in the fleet can run it), nothing
  /// is installed.
  std::uint64_t isa_refused = 0;
};

/// Result of validating one on-disk entry (dbll-cachectl's unit of output).
struct ObjectScanEntry {
  std::string file;              ///< file name inside the cache dir
  std::uint64_t fingerprint = 0; ///< from the header (0 when unparseable)
  std::uint64_t file_size = 0;
  std::uint64_t payload_size = 0;
  std::string wrapper_name;
  std::string llvm_version;
  std::string target_cpu;
  std::uint32_t opt_tier = 0;    ///< 0 = full O3, 1 = Tier-0a baseline
  std::uint32_t isa_level = 0;   ///< ISA ladder level (0/1/2)
  bool valid = false;
  std::string detail;            ///< why validation failed ("" when valid)
};

class ObjectStore {
 public:
  struct Options {
    std::string dir;
    /// Byte cap over the sum of entry file sizes (0 = unbounded). Exceeding
    /// it after a Store evicts least-recently-used entries first.
    std::uint64_t max_bytes = 256ull << 20;
    /// Entry-count cap (0 = unbounded); evaluated together with max_bytes.
    std::uint64_t max_entries = 4096;
    /// Front the store with the cross-process shared-memory hot-entry ring
    /// (shm_ring.h): Load probes the ring before disk, Store and disk hits
    /// write through to it. Off by default at this layer so the store's
    /// disk semantics stay exact; CompileService::Options turns it on for
    /// the fleet-serving path.
    bool shm = false;
    std::uint32_t shm_slots = 64;
    std::uint64_t shm_slot_bytes = 256 * 1024;
  };

  explicit ObjectStore(Options options);

  /// Whether the directory could be created/used. A failed store stays
  /// constructed and degrades: every Load misses, every Store is a no-op.
  const Status& init_status() const { return init_; }
  const std::string& dir() const { return options_.dir; }

  /// The attached shm ring, or nullptr when Options::shm is off or the
  /// attach failed (tooling/tests; stats() carries the same counters).
  ShmRing* shm_ring() const { return ring_.get(); }

  /// The poisoned-fingerprint set this store enforces (containment.h).
  /// Non-null once constructed with a directory; nullptr on a bad-config
  /// store. Loaded from the `quarantine.dbq` sidecar at construction.
  Quarantine* quarantine() const { return quarantine_.get(); }

  /// Poisons a fingerprint: records it in the sidecar, deletes its entry
  /// file, and scrubs its shm-ring slot, in that veto-tightening order.
  /// Subsequent Load/Store/Insert calls (here and, after their next start
  /// or Refresh, in every peer) refuse it. Degrades on I/O trouble -- the
  /// in-memory veto of *this* process always takes effect.
  Status QuarantineFingerprint(std::uint64_t fingerprint,
                               const std::string& reason);

  /// Looks the fingerprint up -- shm ring first (lock-free), then disk; a
  /// disk hit is written back into the ring so the next process on this box
  /// skips the file I/O. True on a valid hit (fills *out). A plain miss, a
  /// corrupt/truncated entry (deleted on the way out), a version/CPU
  /// mismatch, an armed `objcache.load`/`objcache.shm` fault, and any I/O
  /// error all report false -- distinguishable only via stats(). Never
  /// throws, never crashes on hostile file or shared-memory contents.
  bool Load(std::uint64_t fingerprint, ObjectEntry* out);

  /// Publishes the entry atomically and applies the LRU cap. Failures are
  /// swallowed into stats (the in-memory entry is already installed; disk is
  /// an optimization).
  void Store(const ObjectEntry& entry);

  ObjectStoreStats stats() const;

  /// --- offline/tooling interface (dbll-cachectl, tests) ---

  /// Validates every entry file in `dir` without touching the manifest.
  static Expected<std::vector<ObjectScanEntry>> Scan(const std::string& dir);

  /// Deletes every cache artifact (entries, manifest, lock, stray temps) in
  /// `dir`; returns the number of entry files removed.
  static Expected<std::uint64_t> Purge(const std::string& dir);

  /// Serializes and atomically publishes one entry under `dir` with an
  /// explicit LLVM-version/CPU stamp. The instance Store() uses the real
  /// toolchain stamp; tests use this to fabricate version-mismatched
  /// entries.
  static Status WriteEntry(const std::string& dir, const ObjectEntry& entry,
                           const std::string& llvm_version,
                           const std::string& target_cpu);

  /// Entry file name for a fingerprint ("<16 hex digits>.dbo").
  static std::string EntryFileName(std::uint64_t fingerprint);

  /// Packs every valid entry under `dir` into a single self-validating
  /// bundle file at `path` (atomic publication): warm caches ship with
  /// deployments. Returns the number of entries exported; invalid entry
  /// files are skipped, not fatal. See docs/runtime_cache.md for the
  /// DBLLBND1 format.
  static Expected<std::uint64_t> ExportBundle(const std::string& dir,
                                              const std::string& path);

  /// Unpacks a bundle into `dir`, re-validating the bundle checksum and
  /// every contained entry; entry files are published byte-identical to
  /// what ExportBundle read. Returns the number of entries imported; a
  /// bundle that fails validation imports nothing. Entries targeting an ISA
  /// level above this host's effective one (hardware masked by
  /// DBLL_JIT_ISA) are skipped -- they could never load here -- and counted
  /// into *skipped_isa when non-null, so tooling reports them instead of
  /// silently dropping them.
  static Expected<std::uint64_t> ImportBundle(
      const std::string& path, const std::string& dir,
      std::uint64_t* skipped_isa = nullptr);

 private:
  void TouchManifest(std::uint64_t fingerprint);
  void EvictLocked();  // caller holds the directory flock

  Options options_;
  Status init_;
  std::unique_ptr<ShmRing> ring_;
  std::shared_ptr<Quarantine> quarantine_;
  mutable std::atomic<std::uint64_t> hits_{0}, misses_{0}, stores_{0},
      evictions_{0}, corrupt_dropped_{0}, errors_{0}, load_ns_{0},
      store_ns_{0}, quarantined_{0}, isa_refused_{0};
};

/// Stable on-disk fingerprint of one compile request: FNV-1a over the
/// SpecKey blob, a bounded window of the target function's code bytes, the
/// LLVM version string, and the JIT target CPU. See the file comment for the
/// invalidation rules this encodes.
std::uint64_t PersistFingerprint(const SpecKey& key, std::uint64_t address);

/// Per-ISA-level variant: mixes the level's cpu+features stamp
/// (lift::JitTargetCpuFor, including DBLL_JIT_FEATURES extras) instead of
/// the base CPU, so coexisting variants of one request hash to distinct
/// entries. The two-argument form equals isa_level 0 only while the request
/// config itself is baseline (the SpecKey blob folds isa_level in either
/// way).
std::uint64_t PersistFingerprint(const SpecKey& key, std::uint64_t address,
                                 int isa_level);

/// FNV-1a over the LLVM version string and the JIT target CPU: the stamp the
/// shm ring header carries so processes built against different toolchains
/// never exchange objects through shared memory (mirrors the per-entry
/// version/CPU validation the disk store does).
std::uint64_t ToolchainFingerprint();

}  // namespace dbll::runtime
