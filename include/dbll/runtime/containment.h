// dbll -- crash containment: probation execution, poisoned-entry
// quarantine, per-key circuit breakers.
//
// The fallback ladder (fallback.h) and the negative cache handle *reported*
// errors -- an Expected that came back with a diagnosis. This layer handles
// the failure mode that dominates for binary rewriters in practice: the
// rewritten code itself faulting at runtime (mis-lifted instruction, stale
// cached object, guard-stub gap). Three cooperating mechanisms:
//
//   * Probation execution (ProbationGuard). Every freshly installed entry
//     -- Tier-0a baseline, O3 promotion, disk/shm warm load -- serves its
//     first N calls through a hand-assembled stub that routes into a C++
//     dispatcher. The dispatcher arms a thread-local sigsetjmp recovery
//     window (support/crashguard.h) around the real call: a SIGSEGV/SIGILL/
//     SIGBUS/SIGFPE inside the entry longjmps back, the caller is served
//     from the Tier-2 fallback entry, and the owning slot is demoted. After
//     N clean calls the slot re-binds to the raw entry, so the steady-state
//     hot path (<5ns FunctionHandle::target() budget, docs/tiering.md) is
//     untouched.
//   * Poisoned-entry quarantine (Quarantine). A faulting entry's persist
//     fingerprint is recorded in a flock'd `quarantine.dbq` sidecar next to
//     the object cache. ObjectStore::Load/Store and ShmRing::Lookup/Insert
//     refuse quarantined fingerprints and bundle import skips them: one
//     crash immunizes the whole fleet across restarts. Quarantine
//     *enforcement* is always on; only probation guarding is opt-in.
//   * Per-SpecKey circuit breaker (BreakerBoard). Crash, deopt and compile-
//     failure events feed a breaker per key: closed -> open after K faults
//     (new requests route straight to Tier 1/2 without constructing any
//     LLVM state), half-open after a cooldown (exactly one guarded probe),
//     closed again on a clean probation. This generalizes the PR 3 negative
//     cache from "deterministic compile failure" to "observed runtime
//     misbehavior".
//
// Call model: probation stubs forward the six System-V integer argument
// registers and the integer return -- exactly the CompileRequest signature
// model the service supports. Floating-point argument registers are not
// preserved across the dispatcher, matching the rest of the runtime.
//
// Configuration: CompileService::Options::containment, overridable with
// DBLL_CONTAIN* environment variables (ContainmentOptions::ApplyEnv).
// See docs/robustness.md (containment section) for the signal-safety rules.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dbll/support/code_buffer.h"
#include "dbll/support/crashguard.h"
#include "dbll/support/error.h"

namespace dbll::runtime {

/// Containment knobs (CompileService::Options::containment).
struct ContainmentOptions {
  /// Master switch for probation guarding and the circuit breaker. Off by
  /// default (like tiering): the guard dispatcher costs a couple of ns per
  /// probation call and embedders must opt into process-wide signal
  /// handlers. Quarantine *enforcement* (refusing poisoned fingerprints in
  /// the cache stack) is always on regardless.
  bool enabled = false;
  /// Clean calls a fresh install must survive before the slot re-binds to
  /// the raw entry (0 is clamped to 1).
  std::uint32_t probation_calls = 8;
  /// Faults (crash/deopt/compile-failure) that open a key's breaker. The
  /// default 1 means a single caught crash stops further compiles of that
  /// key until a cooldown probe succeeds.
  std::uint32_t breaker_threshold = 1;
  /// How long an open breaker routes requests straight to fallback before
  /// letting one half-open probe through.
  std::uint64_t breaker_cooldown_ms = 250;
  /// Bound on tracked breaker entries (oldest dropped beyond it).
  std::uint32_t breaker_capacity = 1024;

  /// Environment overrides: DBLL_CONTAIN (master flag), DBLL_CONTAIN_CALLS,
  /// DBLL_CONTAIN_BREAKER_K, DBLL_CONTAIN_COOLDOWN_MS.
  void ApplyEnv();
  void Clamp();
};

/// One guarded entry under probation. Created at install time by the
/// compile service; the stub address is what gets published as the slot's
/// target. The guard must outlive every possible call through its stub --
/// the owning slot parks the shared_ptr for its own lifetime.
class ProbationGuard {
 public:
  /// Probation outcome callbacks. Fired at most once each, from whichever
  /// serving thread completed the transition -- in normal calling context,
  /// never inside a signal handler. `on_clean` runs after the N-th clean
  /// call (re-bind the slot to the raw entry); `on_fault` runs after the
  /// first caught fault (demote, quarantine, trip the breaker).
  struct Hooks {
    std::function<void()> on_clean;
    std::function<void(const support::FaultInfo&)> on_fault;
  };

  /// Emits the probation stub for `entry`. `fallback_entry` (the Tier-2
  /// original) serves the caller after a fault. Fails only on code-buffer
  /// allocation problems.
  static Expected<std::shared_ptr<ProbationGuard>> Create(
      std::uint64_t entry, std::uint64_t fallback_entry,
      std::uint32_t probation_calls, Hooks hooks);

  /// Callable stub address (publish this as the slot target).
  std::uint64_t stub_entry() const { return stub_entry_; }
  /// The guarded raw entry (re-bind to this after a clean probation).
  std::uint64_t entry() const { return entry_; }
  std::uint64_t fallback_entry() const { return fallback_; }

  bool poisoned() const;
  /// True once the probation finished clean (on_clean fired).
  bool completed() const;
  std::uint64_t clean_calls() const {
    return clean_.load(std::memory_order_relaxed);
  }
  /// Valid once poisoned(): what the handler observed (signo == 0 marks a
  /// synthetic fault injected via the `exec.probation` site).
  const support::FaultInfo& fault_info() const { return fault_; }

  /// The dispatcher the stub calls (public for the extern "C" thunk; not
  /// user API). `args` points at the six saved argument registers.
  static std::uint64_t Dispatch(ProbationGuard* guard,
                                const std::uint64_t* args);

 private:
  ProbationGuard() = default;

  void NoteClean();
  void HandleFault(const support::FaultInfo& info);

  enum State : std::uint32_t { kProbing = 0, kClean = 1, kPoisoned = 2 };

  CodeBuffer code_;
  std::uint64_t stub_entry_ = 0;
  std::uint64_t entry_ = 0;
  std::uint64_t fallback_ = 0;
  std::uint32_t probation_calls_ = 1;
  std::atomic<std::uint32_t> state_{kProbing};
  std::atomic<std::uint64_t> clean_{0};
  Hooks hooks_;
  support::FaultInfo fault_;
};

/// Circuit-breaker states, the classic three.
enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

std::string_view ToString(BreakerState state) noexcept;

/// Per-key circuit breakers over an opaque key blob (the service uses the
/// SpecKey blob, so breakers survive slot eviction). Thread-safe; bounded.
class BreakerBoard {
 public:
  /// What a new compile request for the key may do.
  enum class Decision : std::uint8_t {
    kAllow = 0,  ///< closed (or unknown key): compile normally
    kProbe = 1,  ///< half-open: this request is the one guarded probe
    kDeny = 2,   ///< open: route straight to Tier 1/2, no LLVM state
  };

  BreakerBoard(std::uint32_t threshold, std::uint64_t cooldown_ms,
               std::uint32_t capacity);

  Decision Check(const std::string& key, std::uint64_t now_ns);
  /// A crash/deopt/compile-failure was observed for the key.
  void OnFault(const std::string& key, std::uint64_t now_ns);
  /// A probation for the key completed clean: close (and reset) its breaker.
  void OnSuccess(const std::string& key);

  /// Point-in-time state of one key (kClosed for unknown keys).
  BreakerState StateOf(const std::string& key,
                       std::uint64_t now_ns) const;

  struct Stats {
    std::uint64_t opens = 0;    ///< closed/half-open -> open transitions
    std::uint64_t closes = 0;   ///< half-open -> closed transitions
    std::uint64_t probes = 0;   ///< half-open probes granted
    std::uint64_t denials = 0;  ///< requests routed to fallback while open
    std::uint64_t tracked = 0;  ///< keys currently tracked
  };
  Stats stats() const;

 private:
  struct Entry {
    BreakerState state = BreakerState::kClosed;
    std::uint32_t faults = 0;
    std::uint64_t opened_ns = 0;
    bool probing = false;  ///< a half-open probe is in flight
  };

  std::uint32_t threshold_;
  std::uint64_t cooldown_ns_;
  std::uint32_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::vector<std::string> order_;  ///< insertion order, for capacity eviction
  std::uint64_t opens_ = 0, closes_ = 0, probes_ = 0, denials_ = 0;
};

/// The poisoned-fingerprint set, backed by a flock'd text sidecar
/// (`quarantine.dbq`) in the cache directory. Construction loads the
/// sidecar; Add appends under the cache-wide lock and updates the in-memory
/// set, so enforcement in this process is immediate and peers pick the
/// record up on their next (re)start or Refresh(). Every method degrades on
/// I/O trouble (a lost sidecar can cost protection, never correctness).
class Quarantine {
 public:
  struct Record {
    std::uint64_t fingerprint = 0;
    std::string reason;
  };

  /// Loads `dir`'s sidecar (missing file = empty set). An empty dir makes
  /// an inert instance (Contains always false, Add a no-op error).
  explicit Quarantine(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Membership test; the cache stack's veto. O(1), cheap when empty.
  bool Contains(std::uint64_t fingerprint) const;

  /// Records the fingerprint (idempotent). Guarded by the `objcache.
  /// quarantine` fault site; on injected or real I/O failure the in-memory
  /// set is still updated (this process stays protected) and the error is
  /// reported.
  Status Add(std::uint64_t fingerprint, const std::string& reason);

  /// Re-reads the sidecar, merging records quarantined by other processes.
  Status Refresh();

  std::vector<Record> List() const;
  std::uint64_t size() const;

  /// Count of vetoes served from this set (bumped by callers via
  /// NoteBlocked so one counter covers disk, ring and bundle paths).
  std::uint64_t blocked() const {
    return blocked_.load(std::memory_order_relaxed);
  }
  void NoteBlocked();

  /// Sidecar file name inside a cache directory ("quarantine.dbq").
  static const char* FileName();

  /// Offline read of a directory's quarantine records (dbll-cachectl).
  static Expected<std::vector<Record>> ReadDir(const std::string& dir);

  /// Deletes the sidecar; returns how many records it held.
  static Expected<std::uint64_t> Clear(const std::string& dir);

 private:
  Status MergeFromDisk();  // caller holds mutex_

  std::string dir_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::string> entries_;
  std::atomic<std::uint64_t> count_{0};  ///< == entries_.size(), lock-free
  std::atomic<std::uint64_t> blocked_{0};
};

}  // namespace dbll::runtime
