// dbll -- specialization cache + asynchronous compile service.
//
// The seed re-ran the full lift -> O3 -> JIT chain synchronously on every
// request; this subsystem makes runtime rewriting deployable under load:
//
//  * SpecializationCache: requests are memoized on SpecKey (spec_cache.h), so
//    a repeated specialization is a hash lookup, not an LLVM run.
//  * Async compiles: Request() enqueues the work on a worker pool and returns
//    a FunctionHandle immediately. The handle's target() is the *original*
//    generic entry until the specialized code is installed with an atomic
//    pointer swap -- callers never stall during warm-up (BAAR-style "keep
//    serving the generic version while the accelerator compiles").
//  * Exactly-one compile: concurrent requests for one key coalesce onto the
//    same in-flight job.
//  * Stats (stats.h): hits/misses/evictions plus per-stage wall times,
//    dumped by bench/fig_cache.
//
// The JIT session lives as long as the service; evicting a cache entry drops
// the table slot (bounding lookup structures), while already-emitted code
// stays valid for handles that still point at it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dbll/runtime/spec_cache.h"
#include "dbll/runtime/stats.h"
#include "dbll/support/error.h"

namespace dbll::runtime {

/// Shared view of one cache entry. Copies are cheap (shared_ptr); a handle
/// keeps its entry alive across eviction.
class FunctionHandle {
 public:
  enum class State : std::uint8_t { kPending, kSpecialized, kFailed };

  FunctionHandle() = default;
  bool valid() const { return slot_ != nullptr; }

  /// Current best entry point: the original generic function until the
  /// specialized one is installed (atomic swap), the specialized entry
  /// afterwards, and the generic one again permanently on failure. Safe to
  /// call from any thread at any time.
  std::uint64_t target() const;

  template <typename Fn>
  Fn as() const {
    return reinterpret_cast<Fn>(target());
  }

  State state() const;
  bool specialized() const { return state() == State::kSpecialized; }

  /// Blocks until the compile reached a terminal state; returns target().
  std::uint64_t wait() const;

  /// Compile error; meaningful once state() == kFailed.
  Error error() const;

  /// Per-stage compile times; meaningful once the compile finished.
  StageTimes times() const;

 private:
  friend class CompileService;
  struct Slot;
  explicit FunctionHandle(std::shared_ptr<Slot> slot) : slot_(std::move(slot)) {}
  std::shared_ptr<Slot> slot_;
};

class CompileService {
 public:
  struct Options {
    /// Worker threads performing lift/optimize/JIT off the caller's thread.
    int workers = 1;
    /// Maximum memoized entries before LRU eviction (0 = unbounded).
    std::size_t capacity = 256;
  };

  // Two constructors instead of `Options options = {}`: a default argument
  // cannot use a nested class's member initializers before the enclosing
  // class is complete. The default constructor (defined out of line) uses
  // Options's own defaults.
  CompileService();
  explicit CompileService(Options options);
  ~CompileService();

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Non-blocking: returns immediately with a handle whose target() serves
  /// the generic entry until the specialized one is ready. A cache hit
  /// returns the installed entry with no compile at all.
  FunctionHandle Request(const CompileRequest& request);

  /// Blocking convenience: Request() + wait(). Returns the specialized entry
  /// on success, the compile error on failure. Results are cached like any
  /// other request.
  Expected<std::uint64_t> CompileSync(const CompileRequest& request);

  /// Blocks until no compile is queued or running (test/bench barrier).
  void WaitIdle();

  /// Drops every cached entry (counted as evictions). In-flight compiles
  /// finish and install into their handles, but are forgotten by the table.
  void Clear();

  CacheStats stats() const;
  std::size_t size() const;

  /// Error of the most recently *finished failing* compile (ok when no
  /// compile has failed yet). Per-request errors live on FunctionHandle;
  /// this is the service-level view backing dbll_cache_last_error.
  Error last_error() const;

  lift::Jit& jit() { return jit_; }

 private:
  struct Job {
    CompileRequest request;
    std::shared_ptr<FunctionHandle::Slot> slot;
    std::uint64_t enqueue_ns = 0;  ///< for the cache.queue_wait span/metric
  };
  struct TableEntry {
    std::shared_ptr<FunctionHandle::Slot> slot;
    std::list<SpecKey>::iterator lru_pos;
  };

  void WorkerLoop();
  void CompileOne(Job& job);
  void EvictIfNeeded();  // caller holds mutex_

  Options options_;
  lift::Jit jit_;

  mutable std::mutex mutex_;  // guards table_, lru_, queue_, counters
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::unordered_map<SpecKey, TableEntry, SpecKey::Hash> table_;
  std::list<SpecKey> lru_;  // front = most recently used
  std::deque<Job> queue_;
  int active_jobs_ = 0;
  bool stopping_ = false;
  CacheStats stats_;
  Error last_error_;  // most recent failed compile; guarded by mutex_
  std::mutex jit_mutex_;  // serializes module installation into the JIT
  std::vector<std::thread> workers_;
};

}  // namespace dbll::runtime
