// dbll -- specialization cache + asynchronous compile service.
//
// The seed re-ran the full lift -> O3 -> JIT chain synchronously on every
// request; this subsystem makes runtime rewriting deployable under load:
//
//  * SpecializationCache: requests are memoized on SpecKey (spec_cache.h), so
//    a repeated specialization is a hash lookup, not an LLVM run.
//  * Async compiles: Request() enqueues the work on a worker pool and returns
//    a FunctionHandle immediately. The handle's target() is the *original*
//    generic entry until the specialized code is installed with an atomic
//    pointer swap -- callers never stall during warm-up (BAAR-style "keep
//    serving the generic version while the accelerator compiles").
//  * Exactly-one compile: concurrent requests for one key coalesce onto the
//    same in-flight job.
//  * Tiered degradation (fallback.h): a Tier-0 (LLVM) failure degrades to a
//    plain-DBrew rewrite (Tier 1) and finally to the original generic entry
//    (Tier 2); a handle always resolves to *something* callable. Transient
//    failures get one retry with decorrelated backoff; deterministic
//    failures are negative-cached so repeated requests never re-run LLVM.
//  * Bounded resources: per-request deadlines (a wedged LLVM run is timed
//    out by a monitor thread and degraded, the straggler's late result is
//    discarded via a slot generation check) and a bounded compile queue
//    (overflow serves Tier 2 immediately instead of growing without bound).
//  * Stats (stats.h): hits/misses/evictions/degradations plus per-stage wall
//    times, dumped by bench/fig_cache.
//
// The JIT session lives as long as the service; evicting a cache entry drops
// the table slot (bounding lookup structures), while already-emitted code
// (JIT or DBrew fallback) stays valid until the service is destroyed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dbll/runtime/containment.h"
#include "dbll/runtime/fallback.h"
#include "dbll/runtime/object_store.h"
#include "dbll/runtime/spec_cache.h"
#include "dbll/runtime/stats.h"
#include "dbll/runtime/tiering.h"
#include "dbll/support/error.h"

namespace dbll::runtime {

/// Shared view of one cache entry. Copies are cheap (shared_ptr); a handle
/// keeps its entry alive across eviction. A default-constructed handle is
/// inert: valid() is false and every accessor returns a safe terminal value
/// (target() == 0, state() == kFailed, error() == kBadConfig) instead of
/// dereferencing a null slot.
class FunctionHandle {
 public:
  enum class State : std::uint8_t { kPending, kSpecialized, kFailed };

  FunctionHandle() = default;
  bool valid() const { return slot_ != nullptr; }

  /// Current best entry point: the original generic function until a
  /// specialized one (Tier 0 or Tier 1) is installed (atomic swap), and the
  /// generic one again permanently when every tier failed. Safe to call from
  /// any thread at any time.
  std::uint64_t target() const;

  template <typename Fn>
  Fn as() const {
    return reinterpret_cast<Fn>(target());
  }

  State state() const;
  bool specialized() const { return state() == State::kSpecialized; }

  /// Which tier target() currently resolves to: kGeneric while pending (the
  /// generic entry serves during warm-up), then whatever tier the compile
  /// degraded to. Under profile-guided tiering (Options::tiering) this also
  /// moves at runtime: kBaseline once the Tier-0a baseline installs, kLlvm
  /// after auto-promotion, and back to kGeneric after a deoptimization
  /// (guard-detected fixed-parameter violation) while the handle
  /// re-profiles. Lock-free.
  Tier tier() const;

  /// Calls counted by the tiering profile (0 when the handle is not tiered).
  /// Counters live on the handle's slot, so they survive Clear()/eviction
  /// for as long as any handle is alive.
  std::uint64_t calls() const;

  /// Deoptimizations this handle went through (0 when not tiered).
  std::uint64_t deopts() const;

  /// Blocks until the compile reached a terminal state; returns target().
  std::uint64_t wait() const;

  /// First error of the chain (the root cause -- the Tier-0 failure);
  /// meaningful once the compile degraded or failed.
  Error error() const;

  /// Every per-tier failure collected while degrading, in tier order:
  /// [tier0 error (or kTimeout), tier1 error if Tier 1 was attempted and
  /// failed]. Empty when Tier 0 succeeded cleanly; a lone kResourceLimit
  /// entry with state kSpecialized/tier kLlvm records a transient failure
  /// that succeeded on retry.
  std::vector<Error> error_chain() const;

  /// Per-stage compile times; meaningful once the compile finished.
  StageTimes times() const;

 private:
  friend class CompileService;
  struct Slot;
  explicit FunctionHandle(std::shared_ptr<Slot> slot) : slot_(std::move(slot)) {}
  std::shared_ptr<Slot> slot_;
};

class CompileService {
 public:
  struct Options {
    /// Worker threads performing lift/optimize/JIT off the caller's thread.
    int workers = 1;
    /// Maximum memoized entries before LRU eviction (0 = unbounded).
    std::size_t capacity = 256;
    /// Pending-compile bound; a request arriving while `max_queue` jobs are
    /// already queued is served Tier 2 immediately (kResourceLimit, counted
    /// as cache.queue_rejected) instead of growing the queue without bound.
    /// 0 = unbounded.
    std::size_t max_queue = 0;
    /// Default Tier-0 wall-clock budget in milliseconds for requests that do
    /// not set CompileRequest::deadline_ms; 0 = no deadline. Overruns are
    /// detected by a monitor thread, marked kTimeout, and degraded to
    /// Tier 1; the straggling compile's late result is discarded.
    std::uint32_t default_deadline_ms = 0;
    /// Base of the decorrelated backoff slept before the single retry of a
    /// transiently failed (kResourceLimit) Tier-0 attempt. The actual sleep
    /// is uniform in [base, 3*base], capped at 50ms.
    std::uint32_t retry_backoff_ms = 2;
    /// Degrade Tier-0 failures to a plain-DBrew rewrite before pinning the
    /// generic entry. Off = the pre-tiering behaviour (fail straight to the
    /// generic entry).
    bool tier1_fallback = true;
    /// Bound of the deterministic-failure (negative) cache; the cache is
    /// flushed wholesale when it would exceed this. 0 disables negative
    /// caching.
    std::size_t negative_capacity = 1024;
    /// Run the static lift-eligibility audit (src/analysis) before Tier 0.
    /// A kFatal verdict routes the job straight to the Tier-1 fallback and
    /// seeds the negative cache without constructing a single LLVM object;
    /// see docs/static_analysis.md.
    bool audit = true;
    /// Directory of the persistent compiled-object cache (object_store.h).
    /// Empty consults the DBLL_CACHE_DIR environment variable; when that is
    /// unset too, persistence is off and the cache is purely in-memory. A
    /// disk hit installs the specialization on the requesting thread with no
    /// queue and no worker; disk writes happen on the worker after a
    /// successful Tier-0 compile. Disk trouble of any kind degrades to the
    /// in-memory behaviour.
    std::string persist_dir;
    /// Size caps forwarded to ObjectStore::Options (0 = unbounded).
    std::uint64_t persist_max_bytes = 256ull << 20;
    std::uint64_t persist_max_entries = 4096;
    /// Profile-guided tiered recompilation (tiering.h): when enabled, a
    /// cache miss first installs a cheap Tier-0a baseline, per-handle call
    /// counters measure hotness, and the full O3 pipeline is enqueued
    /// automatically once the promotion policy fires. DBLL_TIER_* env
    /// overrides are applied on top at service construction.
    TieringOptions tiering;
    /// Front the persistent store with the cross-process shared-memory
    /// hot-entry ring (shm_ring.h): N processes over one cache directory
    /// share installed objects without file I/O. Only meaningful when a
    /// persist dir is in effect; a failed ring attach degrades to
    /// disk-only. Geometry below is the *requested* one -- an already
    /// initialized ring's file geometry wins.
    bool shm = true;
    std::uint32_t shm_slots = 64;
    std::uint64_t shm_slot_bytes = 256 * 1024;
    /// Crash containment (containment.h): when enabled, every install/
    /// rebind serves its first N calls through a signal-guarded probation
    /// stub, caught faults demote the slot / quarantine the cached object /
    /// trip the per-key circuit breaker, and open breakers route repeat
    /// requests straight to Tier 1/2 without constructing LLVM state.
    /// Quarantine *enforcement* in the cache stack is always on; this knob
    /// only controls guarding and the breaker. DBLL_CONTAIN* env overrides
    /// are applied on top at service construction.
    ContainmentOptions containment;

    /// Applies every DBLL_* environment override in one place -- the single
    /// centralized env-parsing path shared by the C++ constructor and the C
    /// API (dbll_cache_new*/dbll_cache_configure):
    ///   DBLL_CACHE_DIR            -> persist_dir (only when unset in code)
    ///   DBLL_CACHE_DEADLINE_MS    -> default_deadline_ms
    ///   DBLL_CACHE_SHM            -> shm (0/off/false disables)
    ///   DBLL_CACHE_SHM_SLOTS     -> shm_slots
    ///   DBLL_CACHE_SHM_SLOT_BYTES -> shm_slot_bytes
    ///   DBLL_TIER_*               -> tiering (TieringOptions::ApplyEnv)
    ///   DBLL_CONTAIN*             -> containment (ContainmentOptions::ApplyEnv)
    /// Called automatically by the CompileService constructor; idempotent.
    Options& ApplyEnv();
  };

  // Two constructors instead of `Options options = {}`: a default argument
  // cannot use a nested class's member initializers before the enclosing
  // class is complete. The default constructor (defined out of line) uses
  // Options's own defaults.
  CompileService();
  explicit CompileService(Options options);
  ~CompileService();

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Non-blocking: returns immediately with a handle whose target() serves
  /// the generic entry until the specialized one is ready. A cache hit
  /// returns the installed entry with no compile at all.
  FunctionHandle Request(const CompileRequest& request);

  /// Blocking convenience: Request() + wait(). Returns the specialized entry
  /// (Tier 0 or Tier 1) on success, the root-cause compile error when every
  /// tier failed. Results are cached like any other request.
  Expected<std::uint64_t> CompileSync(const CompileRequest& request);

  /// Blocks until no compile is queued or running (test/bench barrier).
  void WaitIdle();

  /// Drops every cached entry (counted as evictions). In-flight compiles
  /// finish and install into their handles, but are forgotten by the table.
  /// The negative cache is kept: a deterministic Tier-0 failure stays true
  /// across table resets, and re-running LLVM to rediscover it is exactly
  /// what negative caching exists to avoid.
  void Clear();

  /// Updates the service-wide default Tier-0 deadline for requests submitted
  /// from now on (backs dbll_cache_set_deadline_ms).
  void set_default_deadline_ms(std::uint32_t deadline_ms);

  /// Reconfigures profile-guided tiering for requests submitted from now on
  /// (backs dbll_cache_set_tiering). Handles already returned keep the
  /// policy they were created with.
  void set_tiering(TieringOptions tiering);

  /// Current tiering policy (a copy; thread-safe).
  TieringOptions tiering();

  /// Enables (or redirects) the persistent object cache at runtime, backing
  /// dbll_cache_set_persist_dir. Requests already submitted keep using the
  /// store they saw. On failure (directory cannot be created/used) the error
  /// is returned, recorded as last_error(), and the previous store -- if any
  /// -- stays active.
  Status set_persist_dir(const std::string& dir);

  /// Reconfigures the shm-ring knobs (Options::shm*) and, when a persistent
  /// store is attached, re-attaches it so the change takes effect
  /// immediately (store counters restart, as with set_persist_dir). Zero
  /// `slots`/`slot_bytes` keep the current geometry. Backs the shm fields
  /// of dbll_cache_configure.
  void set_shm_options(bool enabled, std::uint32_t slots,
                       std::uint64_t slot_bytes);

  /// True when a usable persistent store is attached.
  bool persist_enabled() const;

  /// Counters of the persistent store (zeros when persistence is off);
  /// backs dbll_cache_persist_stats.
  ObjectStoreStats persist_stats() const;

  /// Manually quarantines a cached object's fingerprint (containment.h):
  /// the record lands in the store's sidecar and the fingerprint is refused
  /// by disk, ring and bundle paths from now on. Fails when no persistent
  /// store is attached. Backs dbll_containment_quarantine.
  Status QuarantineObject(std::uint64_t fingerprint, const std::string& reason);

  CacheStats stats() const;
  std::size_t size() const;

  /// Error of the most recently *finished failing* compile (ok when no
  /// compile has failed yet). Per-request errors live on FunctionHandle;
  /// this is the service-level view backing dbll_cache_last_error.
  Error last_error() const;

  lift::Jit& jit() { return jit_; }

 private:
  struct Job {
    /// kNormal runs the classic miss path (request as given). kBaseline
    /// compiles the derived Tier-0a request and installs it guarded;
    /// kPromote re-runs the *original* request through the full pipeline
    /// and atomically swaps it over the serving baseline.
    enum class Kind : std::uint8_t { kNormal, kBaseline, kPromote };
    Kind kind = Kind::kNormal;
    CompileRequest request;
    /// kBaseline only: the user's original request (the promotion target and
    /// the source of the guard checks). Unused otherwise.
    CompileRequest original;
    std::shared_ptr<FunctionHandle::Slot> slot;
    SpecKey key;                       ///< for the negative cache
    std::uint64_t enqueue_ns = 0;      ///< for the cache.queue_wait span/metric
    std::uint32_t deadline_ms = 0;     ///< resolved request/service deadline
    bool skip_tier0 = false;           ///< negative-cache hit: go straight to Tier 1
    Error negative_error;              ///< the remembered Tier-0 failure
    /// Persistent-cache fingerprint (object_store.h); nonzero only when a
    /// store was attached at request time, in which case the worker tags the
    /// module, captures the emitted object, and writes it to disk after a
    /// successful Tier-0 compile. For kBaseline jobs this is the *baseline*
    /// request's fingerprint (both tiers are cacheable, each under its own
    /// fingerprint since the SpecKey folds the LiftConfig in).
    std::uint64_t fingerprint = 0;
    bool persist = false;
  };
  struct TableEntry {
    std::shared_ptr<FunctionHandle::Slot> slot;
    std::list<SpecKey>::iterator lru_pos;
    /// Steady-clock stamp of the last hit/insert; the cross-shard eviction
    /// compares these to recover the *global* LRU order from per-shard lists.
    std::uint64_t last_used_ns = 0;
  };
  /// One bucket of the sharded in-memory table. Requests hash to a shard by
  /// SpecKey and take only that shard's mutex on the hot hit path, so
  /// concurrent drivers stop serializing on one service-wide lock. Each
  /// shard keeps its own LRU list; the *global* capacity bound is enforced
  /// by entry_count_ + cross-shard victim selection on the slots'
  /// last-used timestamps (EvictIfNeeded), preserving the unsharded
  /// global-LRU eviction order.
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<SpecKey, TableEntry, SpecKey::Hash> table;
    std::list<SpecKey> lru;  ///< front = most recently used (in this shard)
  };
  static constexpr std::size_t kShardCount = 16;
  /// All cumulative counters are atomics: the hit path touches them without
  /// any service-wide lock, stats() assembles a CacheStats snapshot.
  struct Counters {
    std::atomic<std::uint64_t> hits{0}, coalesced{0}, misses{0},
        evictions{0}, failures{0}, compiles{0}, tier0_failures{0},
        tier1_serves{0}, tier2_serves{0}, retries{0}, timeouts{0},
        negative_hits{0}, queue_rejected{0}, lift_ns{0}, opt_ns{0},
        jit_ns{0}, tier1_ns{0}, tier0a_ns{0}, tier0a_compiles{0},
        interim_installs{0}, baseline_installs{0}, promotions{0},
        promote_failures{0}, deopts{0}, probation_installs{0},
        probation_clean{0}, probation_faults{0}, quarantined{0};
  };
  /// One deadline-carrying compile currently running on a worker, watched by
  /// the monitor thread.
  struct InFlight {
    std::shared_ptr<FunctionHandle::Slot> slot;
    CompileRequest request;        ///< copy: the monitor degrades from it
    std::uint64_t deadline_ns = 0; ///< absolute steady-clock expiry
    std::uint32_t deadline_ms = 0; ///< for the kTimeout message
    bool fired = false;            ///< monitor already took this one over
  };

  /// Liveness token shared with the tiering hooks: promote/demote fire from
  /// arbitrary caller threads via FunctionHandle::target(), possibly after
  /// the service is gone. The destructor nulls `svc` under the mutex before
  /// joining workers; hooks that lose the race become no-ops.
  struct AliveToken {
    std::mutex mutex;
    CompileService* svc = nullptr;
  };

  void WorkerLoop();
  void MonitorLoop();
  void CompileOne(Job& job);
  /// Tier-0a baseline compile (Job::Kind::kBaseline), installed
  /// progressively: an interim DBrew rewrite of the original request serves
  /// first (microseconds, so wait() returns almost immediately), then the
  /// disk probe / LLVM compile with the derived minimal config rebinds the
  /// better body over it. Profiling starts at the first Tier-0a install. An
  /// LLVM failure keeps the interim serving (the promotion ladder stays
  /// open); with no interim it abandons tiering and falls through to the
  /// classic path on the original request.
  void CompileBaseline(Job& job);
  /// Full-pipeline promotion (Job::Kind::kPromote): compiles the original
  /// request at its own opt level and atomically swaps baseline->optimized.
  /// Failure keeps the baseline serving.
  void CompilePromote(Job& job);
  /// Promote-hook landing point (called from the thread that crossed the
  /// hotness threshold): re-promotes from the saved optimized entry without
  /// a compile when one exists, otherwise enqueues a kPromote job. The
  /// profile's in-flight latch guarantees at most one enqueue per
  /// promotion cycle even when several threads cross simultaneously.
  void EnqueuePromotion(const std::shared_ptr<FunctionHandle::Slot>& slot,
                        const CompileRequest& request,
                        std::uint64_t fingerprint, bool persist);
  /// Tier-0: lift + specialize + optimize + JIT. Returns the failure (ok on
  /// success) and fills entry/times. When `captured` is non-null the module
  /// is tagged with `cache_tag` and the emitted relocatable object (plus the
  /// metadata needed to re-install it) is captured into it for the
  /// persistent store.
  Error TryTier0(const CompileRequest& request, StageTimes& times,
                 std::uint64_t* entry, const std::string& cache_tag = {},
                 ObjectEntry* captured = nullptr);
  /// Tier-1 / Tier-2: runs the DBrew fallback and installs the outcome into
  /// the slot if its generation still matches. Shared by workers (after a
  /// Tier-0 failure) and the monitor (after a deadline overrun).
  void Degrade(const std::shared_ptr<FunctionHandle::Slot>& slot,
               std::uint32_t expected_generation,
               const CompileRequest& request, std::vector<Error> chain,
               StageTimes times);
  /// Deadline overrun: bumps the slot generation (so the straggling worker's
  /// eventual result is discarded) and degrades on the monitor thread.
  void TakeOver(const std::shared_ptr<FunctionHandle::Slot>& slot,
                const CompileRequest& request, std::uint32_t deadline_ms);
  /// Finishes `slot` as Tier-2/kFailed without any compile (queue overflow,
  /// enqueue fault). Caller must not hold mutex_.
  void RejectImmediately(const std::shared_ptr<FunctionHandle::Slot>& slot,
                         Error error);
  /// Enforces the global capacity by evicting the globally least-recently-
  /// used non-pending entry across all shards. Locks one shard at a time;
  /// caller must hold no shard mutex and not mutex_.
  void EvictIfNeeded();
  Shard& ShardFor(const SpecKey& key) {
    return shards_[key.hash() % kShardCount];
  }
  /// Snapshot of the current store (swap point of set_persist_dir).
  std::shared_ptr<ObjectStore> store() const;
  /// Disk-probe half of Request(): on a warm hit, installs the cached object
  /// on the calling thread and publishes `slot` into the shard. Returns true
  /// when the request was fully served from disk.
  bool TryDiskLoad(const CompileRequest& request, const SpecKey& key,
                   std::uint64_t fingerprint,
                   const std::shared_ptr<FunctionHandle::Slot>& slot);
  /// Probation arming (containment.h): when containment is on, wraps a
  /// freshly compiled/loaded entry in a signal-guarded probation stub and
  /// returns the stub address to install; otherwise (or when stub emission
  /// fails) returns `entry` unchanged. The guard's hooks rebind the slot to
  /// the raw entry after N clean calls, or -- on a caught fault -- demote
  /// the slot to the generic entry, quarantine `fingerprint`, and trip the
  /// key's circuit breaker. The guard is parked on the slot for lifetime.
  std::uint64_t ArmProbation(const std::shared_ptr<FunctionHandle::Slot>& slot,
                             const SpecKey& key, std::uint64_t fingerprint,
                             std::uint64_t entry);
  /// Feeds the per-key circuit breaker (no-op when containment is off).
  void BreakerOnFault(const SpecKey& key);

  Options options_;
  lift::Jit jit_;

  mutable std::mutex mutex_;  // guards queue_, negative_, inflight_,
                              // tier1_code_, active_jobs_, stopping_,
                              // last_error_, store_,
                              // options_.default_deadline_ms
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::condition_variable monitor_cv_;
  Shard shards_[kShardCount];
  std::atomic<std::size_t> entry_count_{0};
  std::shared_ptr<ObjectStore> store_;  // null = persistence off
  std::deque<Job> queue_;
  /// Deterministic Tier-0 failures by key: a re-request (after eviction or
  /// Clear) skips straight past Tier 0 instead of re-running LLVM.
  std::unordered_map<SpecKey, Error, SpecKey::Hash> negative_;
  std::list<InFlight> inflight_;
  /// Keep-alive for Tier-1 code buffers: the documented lifetime is "code is
  /// owned by the service", so fallback Rewriters survive slot eviction.
  std::vector<std::unique_ptr<dbrew::Rewriter>> tier1_code_;
  int active_jobs_ = 0;
  bool stopping_ = false;
  /// Fast gate of Request()'s tiering branch: false keeps the miss path
  /// identical to the pre-tiering service with zero added locking. The full
  /// TieringOptions copy (under mutex_) happens only when this is true.
  std::atomic<bool> tiering_enabled_{false};
  /// Per-SpecKey circuit breakers; non-null iff Options::containment.enabled
  /// (immutable after construction, so workers use it without mutex_).
  std::unique_ptr<BreakerBoard> breaker_;
  std::shared_ptr<AliveToken> alive_;
  Counters counters_;
  Error last_error_;  // most recent failed compile; guarded by mutex_
  std::mutex jit_mutex_;  // serializes module installation into the JIT
  std::vector<std::thread> workers_;
  std::thread monitor_;
};

}  // namespace dbll::runtime
