// dbll -- statistics for the runtime specialization cache and compile
// service (see compile_service.h).
//
// The paper's Sec. V amortization argument ("the increased rewriting time
// pays off only when the specialized function is called often enough") makes
// compile-time observability a first-class concern: every cache decision and
// every pipeline stage is counted here so benches can measure the
// amortization curve instead of guessing it.
#pragma once

#include <cstdint>

namespace dbll::runtime {

/// Wall-clock nanoseconds spent in each stage of one lift->O3->JIT compile.
/// Decoding is part of the lift stage (the lifter drives the decoder).
struct StageTimes {
  std::uint64_t lift_ns = 0;  ///< decode + x86->LLVM-IR (+ specialization)
  std::uint64_t opt_ns = 0;   ///< optimization pipeline (-O3 by default)
  std::uint64_t jit_ns = 0;   ///< ORC JIT codegen + symbol resolution

  std::uint64_t total_ns() const { return lift_ns + opt_ns + jit_ns; }
};

/// Snapshot of the cache/service counters. All counts are cumulative since
/// service construction; `stage_total` sums the StageTimes of every compile
/// (successful or not), so `stage_total.total_ns() / compiles` is the mean
/// cost of a cache miss.
struct CacheStats {
  std::uint64_t hits = 0;        ///< request served by an installed entry
  std::uint64_t coalesced = 0;   ///< request joined an in-flight compile
  std::uint64_t misses = 0;      ///< request started a new compile
  std::uint64_t evictions = 0;   ///< entries dropped by LRU capacity
  std::uint64_t failures = 0;    ///< compiles that ended in an error
  std::uint64_t compiles = 0;    ///< compiles actually executed
  StageTimes stage_total;
};

}  // namespace dbll::runtime
