// dbll -- statistics for the runtime specialization cache and compile
// service (see compile_service.h).
//
// The paper's Sec. V amortization argument ("the increased rewriting time
// pays off only when the specialized function is called often enough") makes
// compile-time observability a first-class concern: every cache decision and
// every pipeline stage is counted here so benches can measure the
// amortization curve instead of guessing it.
#pragma once

#include <cstdint>

namespace dbll::runtime {

/// Wall-clock nanoseconds spent in each stage of one lift->O3->JIT compile.
/// Decoding is part of the lift stage (the lifter drives the decoder).
struct StageTimes {
  std::uint64_t lift_ns = 0;  ///< decode + x86->LLVM-IR (+ specialization)
  std::uint64_t opt_ns = 0;   ///< optimization pipeline (-O3 by default)
  std::uint64_t jit_ns = 0;   ///< ORC JIT codegen + symbol resolution
  /// Tier-1 fallback rewrite (plain DBrew, no LLVM); nonzero only when the
  /// job degraded past Tier 0 (see fallback.h).
  std::uint64_t tier1_ns = 0;
  /// Tier-0a fast-baseline compile (lift + minimal pass list at a low opt
  /// level; see tiering.h); tracked separately from the full-O3 stage times
  /// so the baseline's ~100us-1ms install cost is visible on its own
  /// (mirrored process-wide as cache.tier0a_ns).
  std::uint64_t tier0a_ns = 0;

  std::uint64_t total_ns() const {
    return lift_ns + opt_ns + jit_ns + tier1_ns + tier0a_ns;
  }
};

/// Snapshot of the cache/service counters. All counts are cumulative since
/// service construction; `stage_total` sums the StageTimes of every compile
/// (successful or not), so `stage_total.total_ns() / compiles` is the mean
/// cost of a cache miss.
struct CacheStats {
  std::uint64_t hits = 0;        ///< request served by an installed entry
  std::uint64_t coalesced = 0;   ///< request joined an in-flight compile
  std::uint64_t misses = 0;      ///< request started a new compile
  std::uint64_t evictions = 0;   ///< entries dropped by LRU capacity
  std::uint64_t failures = 0;    ///< compiles whose terminal state is kFailed
  std::uint64_t compiles = 0;    ///< Tier-0 compiles actually executed
  // Degradation chain (see fallback.h). Mirrored process-wide in the obs
  // registry as fallback.* / cache.queue_rejected.
  std::uint64_t tier0_failures = 0;  ///< Tier-0 attempts that failed
  std::uint64_t tier1_serves = 0;    ///< handles served by DBrew fallback code
  std::uint64_t tier2_serves = 0;    ///< handles pinned to the generic entry
  std::uint64_t retries = 0;         ///< transient-failure retries performed
  std::uint64_t timeouts = 0;        ///< compiles degraded by deadline overrun
  std::uint64_t negative_hits = 0;   ///< requests that skipped Tier 0 via the
                                     ///< deterministic-failure cache
  std::uint64_t queue_rejected = 0;  ///< requests bounced by the queue bound
  // Persistent object cache (object_store.h). A disk hit is *also* an
  // in-memory miss (the invariant hits + coalesced + misses == requests is
  // preserved); it just skips the compile queue entirely. Mirrored
  // process-wide in the obs registry as cache.disk_*.
  std::uint64_t disk_hits = 0;       ///< misses served from the object store
  std::uint64_t disk_misses = 0;     ///< store probes that found nothing usable
  std::uint64_t disk_stores = 0;     ///< objects persisted after Tier-0 success
  std::uint64_t disk_evictions = 0;  ///< on-disk entries removed by the cap
  std::uint64_t disk_load_ns = 0;    ///< wall time probing/loading the store
  std::uint64_t disk_store_ns = 0;   ///< wall time persisting objects
  // Shared-memory hot-entry ring (shm_ring.h), the fleet-level layer in
  // front of the disk store. A shm hit is also counted in disk_hits ("the
  // persistent layer served this"); the shm_* fields say it never touched a
  // file. Mirrored process-wide in the obs registry as shmcache.*.
  std::uint64_t shm_attached = 0;   ///< 1 when the ring is mapped and usable
  std::uint64_t shm_entries = 0;    ///< occupied ring slots at snapshot time
  std::uint64_t shm_hits = 0;       ///< loads served from shared memory
  std::uint64_t shm_misses = 0;     ///< ring probes that fell through to disk
  std::uint64_t shm_inserts = 0;    ///< payloads published into the ring
  std::uint64_t shm_evictions = 0;  ///< occupied slots overwritten (ring LRU)
  std::uint64_t shm_errors = 0;     ///< torn/checksum/fault degraded probes
  // Profile-guided tiering (tiering.h). Mirrored process-wide in the obs
  // registry as tiering.* (and cache.deopt for deoptimizations).
  std::uint64_t tier0a_compiles = 0;    ///< Tier-0a baseline compiles executed
  std::uint64_t interim_installs = 0;   ///< DBrew seeds served while the LLVM
                                        ///< baseline was still compiling
  std::uint64_t baseline_installs = 0;  ///< handles serving Tier-0a code
  std::uint64_t promotions = 0;         ///< baseline -> O3 swaps completed
  std::uint64_t promote_failures = 0;   ///< promotions that kept the baseline
  std::uint64_t deopts = 0;             ///< guard-triggered demotions
  // Crash containment (containment.h). Mirrored process-wide in the obs
  // registry as containment.*.
  std::uint64_t probation_installs = 0;  ///< entries armed with a guard stub
  std::uint64_t probation_clean = 0;     ///< probations that re-bound the raw
                                         ///< entry after N clean calls
  std::uint64_t probation_faults = 0;    ///< caught faults (caller served
                                         ///< Tier 2, slot demoted)
  std::uint64_t quarantined = 0;         ///< fingerprints poisoned by faults
  std::uint64_t breaker_opens = 0;       ///< per-key breakers tripped open
  std::uint64_t breaker_closes = 0;      ///< breakers closed by a clean probe
  std::uint64_t breaker_probes = 0;      ///< half-open probe compiles granted
  std::uint64_t breaker_denials = 0;     ///< requests routed straight to
                                         ///< Tier 1/2 by an open breaker
  StageTimes stage_total;
};

}  // namespace dbll::runtime
