// dbll -- profile-guided tiered recompilation (the auto-promotion engine).
//
// The paper pays the full lift -> O3 -> JIT cost up front on every
// specialization request, which puts amortization breakeven at tens of
// thousands of calls (BENCH_cache.json). This subsystem lets the *runtime*
// decide what deserves that cost, BAAR-style ("measure hotness on the fly,
// accelerate what earns it"), over an explicit tier lattice:
//
//   Tier-0a (kBaseline)  fast baseline, installed *progressively*: a plain
//                        DBrew rewrite of the request serves within ~100us
//                        (the interim seed), then the LLVM body -- lift (with
//                        flag-liveness pruning) + a minimal pass list (the
//                        "tier0a" preset) -- rebinds over it in-place when
//                        ready. First calls get a real specialization win
//                        almost immediately; the whole baseline effort is
//                        tracked separately as cache.tier0a_ns.
//   Tier-0  (kLlvm)      the full O3 pipeline, enqueued asynchronously once
//                        the function proves hot, atomically swapped over the
//                        baseline on completion.
//   Tier-1  (kDbrew)     plain-DBrew rewrite (compile-failure fallback).
//   Tier-2  (kGeneric)   the original entry (always correct).
//
// Mechanics:
//  * Counters: every FunctionHandle::target() fetch on a tiered entry bumps
//    a per-SpecKey atomic call counter (one relaxed fetch_add + a masked
//    branch; budget < 5ns/call). Every `sample_period` calls the profile
//    takes a timestamp and maintains an EWMA of the call rate.
//  * Promotion: when calls >= hot_threshold and the EWMA rate clears
//    min_rate_hz, the crossing thread CASes an in-flight latch (so two
//    threads crossing simultaneously enqueue exactly one O3 job) and the
//    full pipeline runs on a worker; the finished entry replaces the
//    baseline with the same atomic pointer swap that serves generic ->
//    specialized installs. A failed promotion keeps the baseline serving.
//  * Deoptimization: integer parameter fixations are protected by a guard
//    stub (BuildGuardStub) that compares the live argument registers against
//    the fixed values and tail-jumps to the *generic* entry on mismatch --
//    a wrong-value call can never reach specialized code. Guard misses are
//    counted; the next profile sample demotes the handle to the generic
//    entry (cache.deopt), resets the counters and re-profiles. A handle that
//    deopts more than max_deopts times is pinned generic instead of
//    thrashing.
//
// Both tiers are persistent-cacheable (object_store.h): the baseline request
// carries a distinct LiftConfig (opt level + "tier0a" pass preset), so its
// SpecKey -- and therefore its on-disk fingerprint -- already mixes the opt
// tier; ObjectEntry::opt_tier records it explicitly for tooling.
//
// Configuration: CompileService::Options::tiering, overridable with
// DBLL_TIER_* environment variables (see TieringOptions::ApplyEnv and
// docs/tiering.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "dbll/support/code_buffer.h"
#include "dbll/support/error.h"

namespace dbll::runtime {

struct CompileRequest;

/// Knobs of the profiling + promotion policy (CompileService::Options::
/// tiering). Every field has a DBLL_TIER_* environment override resolved at
/// service construction (ApplyEnv).
struct TieringOptions {
  /// Master switch (DBLL_TIER=1). Off = the pre-tiering behaviour: every
  /// request compiles at its own opt level, nothing is counted.
  bool enabled = false;
  /// Opt level of the Tier-0a baseline compile (DBLL_TIER_BASELINE_LEVEL,
  /// clamped to 0..1 -- the whole point is a cheap pipeline).
  int baseline_opt_level = 1;
  /// Calls before a baseline entry is promoted to the full O3 pipeline
  /// (DBLL_TIER_THRESHOLD). 0 is clamped to 1.
  std::uint64_t hot_threshold = 256;
  /// Calls between profile samples (timestamp + EWMA update + deopt check);
  /// rounded up to a power of two (DBLL_TIER_SAMPLE).
  std::uint32_t sample_period = 16;
  /// EWMA smoothing factor in (0,1]; applied per sample (DBLL_TIER_ALPHA).
  double ewma_alpha = 0.3;
  /// Minimum EWMA call rate (calls/sec) required to promote; 0 disables the
  /// rate gate and the threshold alone decides (DBLL_TIER_MIN_RATE).
  double min_rate_hz = 0.0;
  /// Deopts tolerated before the handle is pinned to the generic entry
  /// (DBLL_TIER_MAX_DEOPTS). Re-profiling after a deopt restarts counting
  /// from zero, so a workload that alternates fixed values settles on the
  /// generic entry instead of thrashing promote/deopt cycles.
  std::uint32_t max_deopts = 2;
  /// Emit guard stubs for integer parameter fixations (DBLL_TIER_GUARD).
  /// Off = the pre-tiering semantic contract (the caller promises to pass
  /// the fixed values); deoptimization never triggers.
  bool guard = true;
  /// Serve an interim DBrew rewrite as the Tier-0a seed while the LLVM
  /// baseline compiles (DBLL_TIER_INTERIM). Off = wait() blocks until the
  /// LLVM baseline itself is installed (the pre-interim behaviour).
  bool interim = true;

  /// Applies the DBLL_TIER_* environment overrides on top of *this and
  /// clamps every field into its valid range. Returns *this.
  TieringOptions& ApplyEnv();
  /// Clamping alone (no environment); called by ApplyEnv.
  TieringOptions& Clamp();
};

/// Lifecycle of one tiered cache entry. Terminal serving states are
/// kBaseline, kOptimized and kPinnedGeneric; the *Queued states carry an
/// in-flight compile.
enum class TierPhase : std::uint8_t {
  kBaselineQueued = 0,  ///< Tier-0a compile enqueued, generic still serving
  kBaseline,            ///< baseline installed, profiling towards promotion
  kPromoteQueued,       ///< hot: full O3 compile in flight, baseline serving
  kOptimized,           ///< Tier-0 O3 code serving
  kDeoptimized,         ///< guard fired: generic serving, re-profiling
  kPinnedGeneric,       ///< deopted > max_deopts times: generic, permanently
};

std::string_view ToString(TierPhase phase) noexcept;

/// What the caller of TierProfile::NoteCall must do next. Actions are edge-
/// triggered: each is returned exactly once per transition (CAS-latched), so
/// racing callers cannot double-promote or double-demote.
enum class TierAction : std::uint8_t { kNone = 0, kPromote, kDemote };

/// One guard stub: hand-assembled x86-64 that compares the live argument
/// registers against the values a specialization fixed and tail-jumps to
/// the specialized entry on full match, or bumps a deopt counter and
/// tail-jumps to the generic entry on any mismatch. The stub preserves all
/// argument registers (only rax is clobbered, which the SysV ABI allows),
/// so both targets observe the original arguments.
struct GuardStub {
  CodeBuffer code;
  std::uint64_t entry = 0;    ///< callable stub address
  std::size_t guards = 0;     ///< number of parameter comparisons emitted
};

/// One (argument register, fixed value) pair a guard stub must check.
struct GuardCheck {
  int gp_index = 0;  ///< System-V integer argument register index (0 = rdi)
  std::uint64_t value = 0;
};

/// Extracts the guardable checks of a request: every kParam fixation of an
/// integer parameter that lives in one of the six GP argument registers.
/// Const-memory fixations and stack-passed parameters are not guardable and
/// are skipped (documented limitation; the semantic contract of those
/// fixations is unchanged). Returns an empty vector when nothing is
/// guardable -- the caller then installs the raw entry and deopt never
/// triggers for that key.
std::vector<GuardCheck> GuardableChecks(const CompileRequest& request);

/// Emits the guard stub. `deopt_hits` must outlive the stub (it lives on the
/// TierProfile, which the owning slot keeps alive). Fails with
/// kResourceLimit/kInternal on allocation problems only.
Expected<GuardStub> BuildGuardStub(const std::vector<GuardCheck>& checks,
                                   std::uint64_t specialized_entry,
                                   std::uint64_t generic_entry,
                                   std::atomic<std::uint64_t>* deopt_hits);

/// Per-entry profiling state. Owned (shared_ptr) by the cache slot, so it
/// survives table eviction and Clear() for as long as any handle is alive --
/// call counters are part of the handle's identity, not the table's.
///
/// Thread model: NoteCall is called concurrently from every serving thread
/// and is lock-free; the Fire* callbacks run on whichever thread won the
/// transition CAS; On* notifications run on compile-service workers.
class TierProfile {
 public:
  TierProfile(const TieringOptions& options, std::uint64_t generic_entry);

  /// The hot path: one relaxed fetch_add; every sample_period-th call takes
  /// a timestamp, refreshes the EWMA, checks the deopt counter and the
  /// promotion policy. Returns the (CAS-latched) action the caller must
  /// fire, kNone otherwise.
  TierAction NoteCall() {
    const std::uint64_t c = calls_.fetch_add(1, std::memory_order_relaxed) + 1;
    if ((c & sample_mask_) != 0) return TierAction::kNone;
    return Sample(c);
  }

  /// --- wiring (compile service) ------------------------------------------
  /// The promote hook enqueues the full O3 compile; the demote hook swaps
  /// the slot back to the generic entry. Both are invoked at most once per
  /// latched transition, from the calling thread of NoteCall.
  void SetHooks(std::function<void()> promote, std::function<void()> demote);
  void FirePromote();
  void FireDemote();

  /// --- state transitions (compile service workers) -----------------------
  void OnBaselineInstalled(std::uint64_t guarded_entry);
  /// The LLVM baseline replaced the interim DBrew seed in place (same tier,
  /// same phase, better code): only the recorded entry moves. Never touches
  /// the phase -- a promotion or deopt that landed first stays authoritative.
  void OnBaselineRefined(std::uint64_t guarded_entry);
  void OnPromoted(std::uint64_t guarded_entry);
  /// Promotion failed: keep serving the baseline. Deterministic failures
  /// latch the in-flight flag forever (re-promoting would fail identically);
  /// transient ones release it so a later sample may retry.
  void OnPromoteFailed(bool deterministic);
  /// Deopt committed (slot swapped to generic): resets the counters for
  /// re-profiling, or pins generic when the deopt budget is exhausted.
  void OnDemoted();
  /// Turns the profile off permanently (baseline compile failed; the classic
  /// path owns the slot from here). NoteCall keeps counting but never fires
  /// another action.
  void Abandon();

  /// --- observers ----------------------------------------------------------
  TierPhase phase() const {
    return static_cast<TierPhase>(phase_.load(std::memory_order_acquire));
  }
  std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }
  std::uint64_t deopt_hits() const {
    return deopt_hits_.load(std::memory_order_relaxed);
  }
  std::uint32_t deopts() const {
    return deopts_.load(std::memory_order_relaxed);
  }
  /// EWMA of the call rate in calls/sec (0 until the second sample).
  double ewma_rate_hz() const;
  std::uint64_t threshold_crossings() const {
    return crossings_.load(std::memory_order_relaxed);
  }

  /// The entry the current phase serves when specialized code is live
  /// (guarded when guards exist). 0 while nothing is installed.
  std::uint64_t baseline_entry() const {
    return baseline_entry_.load(std::memory_order_acquire);
  }
  std::uint64_t optimized_entry() const {
    return optimized_entry_.load(std::memory_order_acquire);
  }

  const TieringOptions& options() const { return options_; }
  std::uint64_t generic_entry() const { return generic_entry_; }

  /// Deopt-counter cell the guard stubs bump (stable address for the
  /// lifetime of the profile).
  std::atomic<std::uint64_t>* deopt_cell() { return &deopt_hits_; }

  /// Parks a guard stub on the profile so its code outlives installs.
  void AdoptGuard(GuardStub stub);

 private:
  TierAction Sample(std::uint64_t calls_now);

  TieringOptions options_;
  std::uint64_t generic_entry_ = 0;
  std::uint64_t sample_mask_ = 15;

  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> deopt_hits_{0};
  std::atomic<std::uint64_t> deopt_seen_{0};   ///< hits already acted upon
  std::atomic<std::uint64_t> crossings_{0};
  std::atomic<std::uint32_t> deopts_{0};
  std::atomic<std::uint8_t> phase_{
      static_cast<std::uint8_t>(TierPhase::kBaselineQueued)};
  std::atomic<bool> promote_inflight_{false};
  std::atomic<bool> demote_inflight_{false};
  std::atomic<std::uint64_t> baseline_entry_{0};
  std::atomic<std::uint64_t> optimized_entry_{0};

  /// EWMA state, only touched on sample boundaries (racy rewrites between
  /// concurrent samplers lose one update, which the EWMA absorbs).
  std::atomic<std::uint64_t> last_sample_ns_{0};
  std::atomic<std::uint64_t> ewma_bits_{0};  ///< bit-cast double, calls/sec

  std::mutex hook_mutex_;  ///< guards hooks + guard stub adoption
  std::function<void()> promote_hook_;
  std::function<void()> demote_hook_;
  std::vector<GuardStub> guards_;  ///< stubs kept alive for installed entries
};

}  // namespace dbll::runtime
