// dbll-objlift -- extract a function from an ELF file, disassemble it, and
// lift it to LLVM-IR without executing the file (the paper's Sec. VII
// reverse-engineering use case).
//
// Usage:
//   dbll-objlift <elf-file> <function-symbol> [--disasm] [--ir] [--ir-opt]
//                [--rewrite] [--no-flag-cache] [--no-facets] [--no-gep]
//                [--list]
//
// Default output is --disasm --ir-opt. --rewrite runs the DBrew identity
// rewrite on the extracted function and disassembles the result.
#include <cstdio>
#include <cstring>
#include <string>

#include "dbll/dbrew/rewriter.h"
#include "dbll/elf/elf_reader.h"
#include "dbll/lift/lifter.h"
#include "dbll/x86/cfg.h"
#include "dbll/x86/printer.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: dbll-objlift <elf-file> <function> [--disasm] [--ir] "
               "[--ir-opt] [--no-flag-cache] [--no-facets] [--no-gep]\n"
               "       dbll-objlift <elf-file> --list\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string path = argv[1];
  const std::string symbol_name = argv[2];

  bool want_disasm = false;
  bool want_ir = false;
  bool want_ir_opt = false;
  bool want_rewrite = false;
  dbll::lift::LiftConfig config;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--disasm") == 0) want_disasm = true;
    else if (std::strcmp(argv[i], "--ir") == 0) want_ir = true;
    else if (std::strcmp(argv[i], "--ir-opt") == 0) want_ir_opt = true;
    else if (std::strcmp(argv[i], "--rewrite") == 0) want_rewrite = true;
    else if (std::strcmp(argv[i], "--no-flag-cache") == 0) config.flag_cache = false;
    else if (std::strcmp(argv[i], "--no-facets") == 0) config.facet_cache = false;
    else if (std::strcmp(argv[i], "--no-gep") == 0) config.use_gep = false;
    else return Usage();
  }
  if (!want_disasm && !want_ir && !want_ir_opt && !want_rewrite) {
    want_disasm = true;
    want_ir_opt = true;
  }

  auto file = dbll::elf::ElfFile::Open(path);
  if (!file.has_value()) {
    std::fprintf(stderr, "error: %s\n", file.error().Format().c_str());
    return 1;
  }

  if (symbol_name == "--all") {
    // Robustness sweep: try to disassemble and lift every function symbol.
    auto image_all = file->LoadImage();
    if (!image_all.has_value()) {
      std::fprintf(stderr, "error: cannot build analysis image\n");
      return 1;
    }
    int total = 0;
    int decoded = 0;
    int lifted_ok = 0;
    for (const auto& sym : file->symbols()) {
      if (!sym.is_function || sym.name.empty() || sym.size == 0) continue;
      auto va = file->SymbolVirtualAddress(sym);
      if (!va.has_value()) continue;
      const std::uint64_t h = image_all->HostAddress(*va);
      if (h == 0) continue;
      ++total;
      auto cfg = dbll::x86::BuildCfg(h);
      const bool dec_ok = cfg.has_value();
      if (dec_ok) ++decoded;
      bool lift_ok = false;
      if (dec_ok) {
        dbll::lift::Lifter lifter(config);
        auto lifted = lifter.Lift(h, dbll::lift::Signature::Ints(4));
        lift_ok = lifted.has_value();
        if (lift_ok) ++lifted_ok;
        if (!lift_ok) {
          std::printf("LIFT-FAIL  %-32s %s\n", sym.name.c_str(),
                      lifted.error().Format().c_str());
        }
      } else {
        std::printf("DEC-FAIL   %-32s %s\n", sym.name.c_str(),
                    cfg.error().Format().c_str());
      }
    }
    std::printf("\n%d functions: %d decoded (%.0f%%), %d lifted (%.0f%%)\n",
                total, decoded, total ? 100.0 * decoded / total : 0.0,
                lifted_ok, total ? 100.0 * lifted_ok / total : 0.0);
    return 0;
  }

  if (symbol_name == "--list") {
    for (const auto& symbol : file->symbols()) {
      if (symbol.is_function && !symbol.name.empty()) {
        std::printf("%8llu  %s\n",
                    static_cast<unsigned long long>(symbol.size),
                    symbol.name.c_str());
      }
    }
    return 0;
  }

  auto symbol = file->FindFunction(symbol_name);
  if (!symbol.has_value()) {
    std::fprintf(stderr, "error: %s\n", symbol.error().Format().c_str());
    return 1;
  }
  auto vaddr = file->SymbolVirtualAddress(*symbol);
  auto image = file->LoadImage();
  if (!vaddr.has_value() || !image.has_value()) {
    std::fprintf(stderr, "error: cannot build analysis image\n");
    return 1;
  }
  const std::uint64_t host = image->HostAddress(*vaddr);
  if (host == 0) {
    std::fprintf(stderr, "error: symbol outside the loaded image\n");
    return 1;
  }

  std::printf("; %s from %s (vaddr 0x%llx, %llu bytes)\n\n",
              symbol_name.c_str(), path.c_str(),
              static_cast<unsigned long long>(*vaddr),
              static_cast<unsigned long long>(symbol->size));

  if (want_disasm) {
    auto cfg = dbll::x86::BuildCfg(host);
    if (!cfg.has_value()) {
      std::fprintf(stderr, "disassembly failed: %s\n",
                   cfg.error().Format().c_str());
      return 1;
    }
    for (const auto& [address, block] : cfg->blocks) {
      std::printf("block_0x%llx:\n",
                  static_cast<unsigned long long>(address - host + *vaddr));
      for (const auto& instr : block.instrs) {
        std::printf("  %s\n", dbll::x86::PrintInstr(instr).c_str());
      }
    }
    std::printf("\n");
  }

  if (want_rewrite) {
    dbll::dbrew::Rewriter rewriter(host);
    auto rewritten = rewriter.Rewrite();
    if (!rewritten.has_value()) {
      std::fprintf(stderr, "rewrite failed: %s\n",
                   rewritten.error().Format().c_str());
      return 1;
    }
    std::printf("; --- DBrew identity rewrite (%zu emitted, %zu folded) ---\n",
                rewriter.stats().emitted_instrs,
                rewriter.stats().folded_instrs);
    auto cfg2 = dbll::x86::BuildCfg(*rewritten);
    if (cfg2.has_value()) {
      for (const auto& [address, block] : cfg2->blocks) {
        for (const auto& instr : block.instrs) {
          std::printf("  %s\n", dbll::x86::PrintInstr(instr).c_str());
        }
      }
    }
    std::printf("\n");
  }

  if (want_ir || want_ir_opt) {
    // Reverse-engineering default signature: four integer args, int return.
    dbll::lift::Lifter lifter(config);
    auto lifted = lifter.Lift(host, dbll::lift::Signature::Ints(4),
                              symbol_name);
    if (!lifted.has_value()) {
      std::fprintf(stderr, "lift failed: %s\n",
                   lifted.error().Format().c_str());
      return 1;
    }
    if (want_ir) {
      std::printf("; --- raw lifted IR ---\n%s\n", lifted->GetIr().c_str());
    }
    if (want_ir_opt) {
      auto ir = lifted->OptimizeAndGetIr();
      if (!ir.has_value()) {
        std::fprintf(stderr, "optimization failed: %s\n",
                     ir.error().Format().c_str());
        return 1;
      }
      std::printf("; --- optimized IR ---\n%s", ir->c_str());
    }
  }
  return 0;
}
