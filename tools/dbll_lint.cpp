// dbll-lint -- offline lift-eligibility linter (src/analysis auditor as a
// CLI). Answers "will Tier 0 take this function?" without constructing a
// single LLVM object, and prints each finding with Intel-syntax disassembly
// context so the offending instruction is visible at a glance.
//
// Usage:
//   dbll-lint <elf-file> <function-symbol>   audit a function from an ELF
//   dbll-lint --corpus <name>                audit one built-in corpus entry
//   dbll-lint --all-corpus                   audit every corpus entry
//   dbll-lint --ranges                       value-range frontier report
//
// Options: --no-follow-calls (audit only the entry function).
//
// --ranges audits every corpus entry twice -- value-range analysis off and
// on -- and prints one row per function: resolved jump-table count and the
// eligibility transition ("no -> yes" is the Tier-0 frontier the analysis
// unlocks, docs/static_analysis.md). Fails (exit 1) when any function is
// eligible without ranges but not with them: the analysis must only ever
// grow the frontier. scripts/check.sh gates on this and on switch_dispatch
// crossing the frontier.
//
// Exit status: 0 when nothing fatal was found, 1 on at least one kFatal
// diagnostic (or a usage/IO error). scripts/check.sh runs --all-corpus and
// expects zero fatals: every corpus function must stay Tier-0 eligible.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "corpus.h"
#include "dbll/analysis/audit.h"
#include "dbll/elf/elf_reader.h"
#include "dbll/x86/decoder.h"
#include "dbll/x86/printer.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: dbll-lint <elf-file> <function> [--no-follow-calls]\n"
               "       dbll-lint --corpus <name> [--no-follow-calls]\n"
               "       dbll-lint --all-corpus [--no-follow-calls]\n"
               "       dbll-lint --ranges [--no-follow-calls]\n");
  return 1;
}

void PrintDiagnostic(const dbll::analysis::Diagnostic& diag) {
  std::printf("  [%s] %s @ 0x%llx: %s\n",
              dbll::analysis::ToString(diag.severity),
              dbll::analysis::ToString(diag.kind),
              static_cast<unsigned long long>(diag.site),
              diag.message.c_str());
  // Disassembly context: the site is a code address in this process (the
  // corpus, or the loaded ELF image), so one instruction can be re-decoded
  // in place. A kDecodeFailure site has no decodable instruction -- skip.
  auto instr = dbll::x86::Decoder::DecodeAt(diag.site);
  if (instr.has_value()) {
    std::printf("      > %s\n", dbll::x86::PrintInstr(*instr).c_str());
  }
}

/// Audits one entry point and prints its report. Returns the worst severity.
dbll::analysis::Severity Lint(const char* name, std::uint64_t entry,
                              const dbll::analysis::AuditOptions& options) {
  const dbll::analysis::AuditReport report =
      dbll::analysis::AuditFunction(entry, options);
  const dbll::analysis::Severity worst = report.worst();
  const char* verdict = report.lift_eligible()
                            ? (report.diagnostics.empty() ? "clean" : "eligible")
                            : "NOT LIFT-ELIGIBLE";
  std::printf("%-24s %s (%zu diagnostic%s)\n", name, verdict,
              report.diagnostics.size(),
              report.diagnostics.size() == 1 ? "" : "s");
  for (const auto& diag : report.diagnostics) PrintDiagnostic(diag);
  return worst;
}

struct NamedFn {
  const char* name;
  std::uint64_t entry;
};

/// Flattens the three corpus tables into one name -> entry list.
std::vector<NamedFn> CorpusEntries() {
  std::vector<NamedFn> entries;
  for (int i = 0; i < dbll_tests::kIntCorpusSize; ++i) {
    entries.push_back({dbll_tests::kIntCorpus[i].name,
                       reinterpret_cast<std::uint64_t>(
                           dbll_tests::kIntCorpus[i].fn)});
  }
  for (int i = 0; i < dbll_tests::kFpCorpusSize; ++i) {
    entries.push_back({dbll_tests::kFpCorpus[i].name,
                       reinterpret_cast<std::uint64_t>(
                           dbll_tests::kFpCorpus[i].fn)});
  }
  for (int i = 0; i < dbll_tests::kVecCorpusSize; ++i) {
    entries.push_back({dbll_tests::kVecCorpus[i].name,
                       reinterpret_cast<std::uint64_t>(
                           dbll_tests::kVecCorpus[i].fn)});
  }
  // Not in kIntCorpus: the DBrew identity sweeps cannot rewrite an indirect
  // jump. The auditor resolves its jump table via the value-range analysis,
  // which is exactly the frontier move --ranges demonstrates.
  entries.push_back({"switch_dispatch",
                     reinterpret_cast<std::uint64_t>(&c_switch_dispatch)});
  return entries;
}

/// --ranges: audits every corpus entry with the value-range analysis off and
/// on, prints the per-function jump-table and eligibility transition, and
/// enforces that the Tier-0 frontier never shrinks.
int RangesReport(dbll::analysis::AuditOptions options) {
  int eligible_off = 0;
  int eligible_on = 0;
  int regressions = 0;
  const std::vector<NamedFn> entries = CorpusEntries();
  std::printf("%-24s %7s  %s\n", "function", "tables", "lift-eligible");
  for (const NamedFn& fn : entries) {
    options.value_ranges = false;
    const dbll::analysis::AuditReport off =
        dbll::analysis::AuditFunction(fn.entry, options);
    options.value_ranges = true;
    const dbll::analysis::AuditReport on =
        dbll::analysis::AuditFunction(fn.entry, options);
    // Resolved dispatch sites are the kInfo kIndirectJump diagnostics of the
    // ranges-on report (audit.cpp classifies exactly those two ways).
    int tables = 0;
    for (const auto& diag : on.diagnostics) {
      if (diag.kind == dbll::analysis::DiagKind::kIndirectJump &&
          diag.severity == dbll::analysis::Severity::kInfo) {
        ++tables;
      }
    }
    eligible_off += off.lift_eligible() ? 1 : 0;
    eligible_on += on.lift_eligible() ? 1 : 0;
    if (off.lift_eligible() && !on.lift_eligible()) ++regressions;
    std::printf("%-24s %7d  %s -> %s\n", fn.name, tables,
                off.lift_eligible() ? "yes" : "no",
                on.lift_eligible() ? "yes" : "no");
  }
  std::printf("\nranges frontier: %d -> %d of %zu lift-eligible (delta %+d)\n",
              eligible_off, eligible_on, entries.size(),
              eligible_on - eligible_off);
  if (regressions != 0) {
    std::fprintf(stderr,
                 "error: %d function%s lost lift-eligibility with the "
                 "value-range analysis on (frontier must never shrink)\n",
                 regressions, regressions == 1 ? "" : "s");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool all_corpus = false;
  bool ranges_report = false;
  std::string corpus_name;
  std::string elf_path;
  std::string symbol_name;
  dbll::analysis::AuditOptions options;

  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-follow-calls") == 0) {
      options.follow_calls = false;
    } else if (std::strcmp(argv[i], "--all-corpus") == 0) {
      all_corpus = true;
    } else if (std::strcmp(argv[i], "--ranges") == 0) {
      ranges_report = true;
    } else if (std::strcmp(argv[i], "--corpus") == 0) {
      if (i + 1 >= argc) return Usage();
      corpus_name = argv[++i];
    } else if (argv[i][0] == '-') {
      return Usage();
    } else {
      positional.push_back(argv[i]);
    }
  }

  if (ranges_report) {
    if (!positional.empty() || !corpus_name.empty() || all_corpus) {
      return Usage();
    }
    return RangesReport(options);
  }

  if (all_corpus) {
    if (!positional.empty() || !corpus_name.empty()) return Usage();
    int fatal = 0;
    const std::vector<NamedFn> entries = CorpusEntries();
    for (const NamedFn& fn : entries) {
      if (Lint(fn.name, fn.entry, options) ==
          dbll::analysis::Severity::kFatal) {
        ++fatal;
      }
    }
    std::printf("\n%zu corpus functions audited, %d not lift-eligible\n",
                entries.size(), fatal);
    return fatal == 0 ? 0 : 1;
  }

  if (!corpus_name.empty()) {
    if (!positional.empty()) return Usage();
    for (const NamedFn& fn : CorpusEntries()) {
      if (corpus_name == fn.name) {
        return Lint(fn.name, fn.entry, options) ==
                       dbll::analysis::Severity::kFatal
                   ? 1
                   : 0;
      }
    }
    std::fprintf(stderr, "error: no corpus function named '%s'\n",
                 corpus_name.c_str());
    return 1;
  }

  if (positional.size() != 2) return Usage();
  elf_path = positional[0];
  symbol_name = positional[1];

  auto file = dbll::elf::ElfFile::Open(elf_path);
  if (!file.has_value()) {
    std::fprintf(stderr, "error: %s\n", file.error().Format().c_str());
    return 1;
  }
  auto symbol = file->FindFunction(symbol_name);
  if (!symbol.has_value()) {
    std::fprintf(stderr, "error: %s\n", symbol.error().Format().c_str());
    return 1;
  }
  auto vaddr = file->SymbolVirtualAddress(*symbol);
  auto image = file->LoadImage();
  if (!vaddr.has_value() || !image.has_value()) {
    std::fprintf(stderr, "error: cannot build analysis image\n");
    return 1;
  }
  const std::uint64_t host = image->HostAddress(*vaddr);
  if (host == 0) {
    std::fprintf(stderr, "error: symbol outside the loaded image\n");
    return 1;
  }
  return Lint(symbol_name.c_str(), host, options) ==
                 dbll::analysis::Severity::kFatal
             ? 1
             : 0;
}
