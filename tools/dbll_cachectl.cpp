// dbll-cachectl -- offline inspector for the persistent compiled-object
// cache (include/dbll/runtime/object_store.h). Operates on a cache directory
// with no JIT and no running service; everything it prints comes from
// ObjectStore::Scan/Purge, so the validation rules are exactly the ones the
// runtime applies on load.
//
// Usage:
//   dbll-cachectl list   <dir> [--json]   one line per entry file
//   dbll-cachectl verify <dir> [--json]   validate all; exit 1 on bad entries
//   dbll-cachectl purge  <dir> [--json]   delete every cache artifact
//   dbll-cachectl stats  <dir> [--json]   aggregate counts and sizes
//
// Exit status: 0 on success (for `verify`: every entry valid), 1 on invalid
// entries or usage/IO errors. An empty or not-yet-created directory is a
// valid, empty cache, not an error.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dbll/runtime/object_store.h"

namespace {

using dbll::runtime::ObjectScanEntry;
using dbll::runtime::ObjectStore;

int Usage() {
  std::fprintf(stderr,
               "usage: dbll-cachectl <list|verify|purge|stats> <dir> [--json]\n");
  return 1;
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes); entry
/// details and symbol names are the only free-form strings we emit.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Entry opt tier as a short label: 0 = full-O3 Tier-0 object, 1 = the fast
/// Tier-0a baseline emitted by profile-guided tiering (docs/tiering.md).
const char* TierLabel(std::uint32_t opt_tier) {
  return opt_tier == 1 ? "tier0a" : "tier0";
}

void PrintEntryJson(const ObjectScanEntry& e, bool last) {
  std::printf("  {\"file\": \"%s\", \"fingerprint\": \"%016" PRIx64
              "\", \"file_size\": %" PRIu64 ", \"payload_size\": %" PRIu64
              ", \"wrapper\": \"%s\", \"opt_tier\": \"%s\", "
              "\"llvm_version\": \"%s\", "
              "\"target_cpu\": \"%s\", \"valid\": %s, \"detail\": \"%s\"}%s\n",
              JsonEscape(e.file).c_str(), e.fingerprint, e.file_size,
              e.payload_size, JsonEscape(e.wrapper_name).c_str(),
              TierLabel(e.opt_tier), JsonEscape(e.llvm_version).c_str(),
              JsonEscape(e.target_cpu).c_str(), e.valid ? "true" : "false",
              JsonEscape(e.detail).c_str(), last ? "" : ",");
}

void PrintEntryHuman(const ObjectScanEntry& e) {
  if (e.valid) {
    std::printf("%-20s %8" PRIu64 " B  %-24s %-6s llvm %s/%s  ok\n",
                e.file.c_str(), e.file_size, e.wrapper_name.c_str(),
                TierLabel(e.opt_tier), e.llvm_version.c_str(),
                e.target_cpu.c_str());
  } else {
    std::printf("%-20s %8" PRIu64 " B  INVALID: %s\n", e.file.c_str(),
                e.file_size, e.detail.c_str());
  }
}

int RunScan(const std::string& dir, bool json, bool verify) {
  auto scan = ObjectStore::Scan(dir);
  if (!scan.has_value()) {
    std::fprintf(stderr, "error: %s\n", scan.error().Format().c_str());
    return 1;
  }
  std::uint64_t invalid = 0;
  for (const ObjectScanEntry& e : *scan) invalid += e.valid ? 0 : 1;
  if (json) {
    std::printf("[\n");
    for (std::size_t i = 0; i < scan->size(); ++i) {
      PrintEntryJson((*scan)[i], i + 1 == scan->size());
    }
    std::printf("]\n");
  } else {
    for (const ObjectScanEntry& e : *scan) PrintEntryHuman(e);
    std::printf("%zu entr%s, %" PRIu64 " invalid\n", scan->size(),
                scan->size() == 1 ? "y" : "ies", invalid);
  }
  return verify && invalid != 0 ? 1 : 0;
}

int RunPurge(const std::string& dir, bool json) {
  auto removed = ObjectStore::Purge(dir);
  if (!removed.has_value()) {
    std::fprintf(stderr, "error: %s\n", removed.error().Format().c_str());
    return 1;
  }
  if (json) {
    std::printf("{\"removed\": %" PRIu64 "}\n", *removed);
  } else {
    std::printf("purged %" PRIu64 " entr%s from %s\n", *removed,
                *removed == 1 ? "y" : "ies", dir.c_str());
  }
  return 0;
}

int RunStats(const std::string& dir, bool json) {
  auto scan = ObjectStore::Scan(dir);
  if (!scan.has_value()) {
    std::fprintf(stderr, "error: %s\n", scan.error().Format().c_str());
    return 1;
  }
  std::uint64_t total_bytes = 0, valid = 0, invalid = 0;
  // Per-opt-tier breakdown of the valid entries: a warm store for a tiered
  // workload holds a tier0a object (fast baseline) and a tier0 object (full
  // O3) for the same specialization; the split shows how many hot keys have
  // been promoted.
  std::uint64_t tier0_entries = 0, tier0a_entries = 0;
  std::uint64_t tier0_bytes = 0, tier0a_bytes = 0;
  std::string llvm_version, target_cpu;  // of the first valid entry
  for (const ObjectScanEntry& e : *scan) {
    total_bytes += e.file_size;
    if (e.valid) {
      if (valid == 0) {
        llvm_version = e.llvm_version;
        target_cpu = e.target_cpu;
      }
      ++valid;
      if (e.opt_tier == 1) {
        ++tier0a_entries;
        tier0a_bytes += e.file_size;
      } else {
        ++tier0_entries;
        tier0_bytes += e.file_size;
      }
    } else {
      ++invalid;
    }
  }
  if (json) {
    std::printf("{\"dir\": \"%s\", \"entries\": %zu, \"valid\": %" PRIu64
                ", \"invalid\": %" PRIu64 ", \"total_bytes\": %" PRIu64
                ", \"tier0_entries\": %" PRIu64 ", \"tier0_bytes\": %" PRIu64
                ", \"tier0a_entries\": %" PRIu64 ", \"tier0a_bytes\": %" PRIu64
                ", \"llvm_version\": \"%s\", \"target_cpu\": \"%s\"}\n",
                JsonEscape(dir).c_str(), scan->size(), valid, invalid,
                total_bytes, tier0_entries, tier0_bytes, tier0a_entries,
                tier0a_bytes, JsonEscape(llvm_version).c_str(),
                JsonEscape(target_cpu).c_str());
  } else {
    std::printf("%s: %zu entries (%" PRIu64 " valid, %" PRIu64
                " invalid), %" PRIu64 " bytes",
                dir.c_str(), scan->size(), valid, invalid, total_bytes);
    if (valid != 0) {
      std::printf(", %" PRIu64 " tier0 / %" PRIu64 " tier0a, llvm %s/%s",
                  tier0_entries, tier0a_entries, llvm_version.c_str(),
                  target_cpu.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string command, dir;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (argv[i][0] == '-') {
      return Usage();
    } else if (command.empty()) {
      command = argv[i];
    } else if (dir.empty()) {
      dir = argv[i];
    } else {
      return Usage();
    }
  }
  if (command.empty() || dir.empty()) return Usage();

  if (command == "list") return RunScan(dir, json, /*verify=*/false);
  if (command == "verify") return RunScan(dir, json, /*verify=*/true);
  if (command == "purge") return RunPurge(dir, json);
  if (command == "stats") return RunStats(dir, json);
  return Usage();
}
