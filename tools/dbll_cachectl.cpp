// dbll-cachectl -- offline tool for the persistent compiled-object cache
// (include/dbll/runtime/object_store.h) and its shared-memory hot-entry ring
// (include/dbll/runtime/shm_ring.h). Everything the inspection commands print
// comes from ObjectStore::Scan/Purge and ShmRing::Inspect, so the validation
// rules are exactly the ones the runtime applies on load.
//
// Usage:
//   dbll-cachectl list    <dir> [--json]    one line per entry file
//   dbll-cachectl verify  <dir> [--json]    validate all; exit 1 on bad entries
//   dbll-cachectl purge   <dir> [--json]    delete every cache artifact
//   dbll-cachectl stats   <dir> [--json]    aggregate counts, sizes, shm ring
//   dbll-cachectl export  <dir> <bundle> [--json]
//                                           pack valid entries into one bundle
//   dbll-cachectl import  <bundle> <dir> [--json]
//                                           unpack a bundle (all-or-nothing)
//   dbll-cachectl prewarm <dir> <manifest.json> [--lib <so>] [--expect-warm]
//                         [--json]          bulk-compile a SpecKey manifest
//   dbll-cachectl quarantine <dir> [--clear] [--json]
//                                           list (or delete) the poisoned-
//                                           fingerprint records (quarantine.dbq)
//
// The prewarm manifest names kernels exported by a shared library and the
// parameters to fix (1-based indices, matching dbll_cache_req_setpar and the
// paper's examples):
//
//   { "schema_version": 1,
//     "lib": "path/to/libprewarm_kernels.so",
//     "entries": [
//       { "symbol": "prewarm_saxpy", "int_args": 4, "returns_value": true,
//         "fix": [ { "index": 4, "value": 64 } ] } ] }
//
// Prewarm re-execs itself once with ASLR disabled (the persist fingerprint
// folds raw virtual addresses), so repeated prewarm runs -- and any fleet
// process that loads the same library the same way -- agree on fingerprints.
// `--expect-warm` turns the run into a gate: every entry must be served from
// the persistent layer with zero Tier-0 compiles.
//
// Every --json output carries "schema_version": 4 (2 added the shm/fleet
// fields; 3 added the quarantine command and stats fields; 4 added the
// per-entry "isa" label, the per-ISA-level stats breakdown plus "host_isa",
// and the import "skipped_isa" count).
//
// Exit status: 0 on success (for `verify`: every entry valid; for
// `--expect-warm`: zero compiles), 1 on invalid entries or usage/IO errors.
// An empty or not-yet-created directory is a valid, empty cache, not an
// error.
#include <dlfcn.h>
#include <sys/personality.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "dbll/runtime/compile_service.h"
#include "dbll/runtime/containment.h"
#include "dbll/runtime/object_store.h"
#include "dbll/runtime/shm_ring.h"
#include "dbll/support/cpu_features.h"

namespace {

using dbll::runtime::ObjectScanEntry;
using dbll::runtime::ObjectStore;
using dbll::runtime::Quarantine;
using dbll::runtime::ShmRing;
using dbll::runtime::ShmRingOccupancy;

/// Version stamp of every --json output shape below (4: per-entry ISA label,
/// per-level stats breakdown, import skipped_isa).
constexpr int kJsonSchemaVersion = 4;

int Usage() {
  std::fprintf(
      stderr,
      "usage: dbll-cachectl <command> ... [--json]\n"
      "  list    <dir>             one line per entry file\n"
      "  verify  <dir>             validate all; exit 1 on bad entries\n"
      "  purge   <dir>             delete every cache artifact\n"
      "  stats   <dir>             aggregate counts, sizes, shm occupancy\n"
      "  export  <dir> <bundle>    pack valid entries into a bundle file\n"
      "  import  <bundle> <dir>    unpack a bundle into a cache dir\n"
      "  prewarm <dir> <manifest>  bulk-compile a SpecKey manifest\n"
      "          [--lib <so>] [--expect-warm]\n"
      "  quarantine <dir> [--clear] list or delete poisoned-fingerprint "
      "records\n");
  return 1;
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes); entry
/// details and symbol names are the only free-form strings we emit.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Entry opt tier as a short label: 0 = full-O3 Tier-0 object, 1 = the fast
/// Tier-0a baseline emitted by profile-guided tiering (docs/tiering.md).
const char* TierLabel(std::uint32_t opt_tier) {
  return opt_tier == 1 ? "tier0a" : "tier0";
}

/// Entry ISA ladder level as its canonical name (docs/codegen.md). Levels
/// above the ladder this tool knows would have failed Scan validation, but
/// clamp defensively anyway.
const char* IsaLabel(std::uint32_t isa_level) {
  const int clamped = isa_level > static_cast<std::uint32_t>(
                                      dbll::support::kMaxIsaLevel)
                          ? dbll::support::kMaxIsaLevel
                          : static_cast<int>(isa_level);
  return dbll::support::IsaLevelName(
      static_cast<dbll::support::IsaLevel>(clamped));
}

void PrintEntryJson(const ObjectScanEntry& e, bool last) {
  std::printf("    {\"file\": \"%s\", \"fingerprint\": \"%016" PRIx64
              "\", \"file_size\": %" PRIu64 ", \"payload_size\": %" PRIu64
              ", \"wrapper\": \"%s\", \"opt_tier\": \"%s\", \"isa\": \"%s\", "
              "\"llvm_version\": \"%s\", "
              "\"target_cpu\": \"%s\", \"valid\": %s, \"detail\": \"%s\"}%s\n",
              JsonEscape(e.file).c_str(), e.fingerprint, e.file_size,
              e.payload_size, JsonEscape(e.wrapper_name).c_str(),
              TierLabel(e.opt_tier), IsaLabel(e.isa_level),
              JsonEscape(e.llvm_version).c_str(),
              JsonEscape(e.target_cpu).c_str(), e.valid ? "true" : "false",
              JsonEscape(e.detail).c_str(), last ? "" : ",");
}

void PrintEntryHuman(const ObjectScanEntry& e) {
  if (e.valid) {
    std::printf("%-20s %8" PRIu64 " B  %-24s %-6s %-8s llvm %s/%s  ok\n",
                e.file.c_str(), e.file_size, e.wrapper_name.c_str(),
                TierLabel(e.opt_tier), IsaLabel(e.isa_level),
                e.llvm_version.c_str(), e.target_cpu.c_str());
  } else {
    std::printf("%-20s %8" PRIu64 " B  INVALID: %s\n", e.file.c_str(),
                e.file_size, e.detail.c_str());
  }
}

int RunScan(const std::string& dir, bool json, bool verify) {
  auto scan = ObjectStore::Scan(dir);
  if (!scan.has_value()) {
    std::fprintf(stderr, "error: %s\n", scan.error().Format().c_str());
    return 1;
  }
  std::uint64_t invalid = 0;
  for (const ObjectScanEntry& e : *scan) invalid += e.valid ? 0 : 1;
  if (json) {
    std::printf("{\n  \"schema_version\": %d,\n  \"entries\": [\n",
                kJsonSchemaVersion);
    for (std::size_t i = 0; i < scan->size(); ++i) {
      PrintEntryJson((*scan)[i], i + 1 == scan->size());
    }
    std::printf("  ]\n}\n");
  } else {
    for (const ObjectScanEntry& e : *scan) PrintEntryHuman(e);
    std::printf("%zu entr%s, %" PRIu64 " invalid\n", scan->size(),
                scan->size() == 1 ? "y" : "ies", invalid);
  }
  return verify && invalid != 0 ? 1 : 0;
}

int RunPurge(const std::string& dir, bool json) {
  auto removed = ObjectStore::Purge(dir);
  if (!removed.has_value()) {
    std::fprintf(stderr, "error: %s\n", removed.error().Format().c_str());
    return 1;
  }
  if (json) {
    std::printf("{\"schema_version\": %d, \"removed\": %" PRIu64 "}\n",
                kJsonSchemaVersion, *removed);
  } else {
    std::printf("purged %" PRIu64 " entr%s from %s\n", *removed,
                *removed == 1 ? "y" : "ies", dir.c_str());
  }
  return 0;
}

int RunStats(const std::string& dir, bool json) {
  auto scan = ObjectStore::Scan(dir);
  if (!scan.has_value()) {
    std::fprintf(stderr, "error: %s\n", scan.error().Format().c_str());
    return 1;
  }
  std::uint64_t total_bytes = 0, valid = 0, invalid = 0;
  // Per-opt-tier breakdown of the valid entries: a warm store for a tiered
  // workload holds a tier0a object (fast baseline) and a tier0 object (full
  // O3) for the same specialization; the split shows how many hot keys have
  // been promoted.
  std::uint64_t tier0_entries = 0, tier0a_entries = 0;
  std::uint64_t tier0_bytes = 0, tier0a_bytes = 0;
  // Per-ISA-ladder-level breakdown of the valid entries: one shared fleet
  // directory deliberately holds coexisting variants of the same
  // specialization (docs/codegen.md), so the split answers "which hosts is
  // this cache warm for?".
  std::uint64_t isa_entries[dbll::support::kMaxIsaLevel + 1] = {};
  std::string llvm_version, target_cpu;  // of the first valid entry
  for (const ObjectScanEntry& e : *scan) {
    total_bytes += e.file_size;
    if (e.valid) {
      if (valid == 0) {
        llvm_version = e.llvm_version;
        target_cpu = e.target_cpu;
      }
      ++valid;
      if (e.opt_tier == 1) {
        ++tier0a_entries;
        tier0a_bytes += e.file_size;
      } else {
        ++tier0_entries;
        tier0_bytes += e.file_size;
      }
      const std::uint32_t level =
          e.isa_level > static_cast<std::uint32_t>(dbll::support::kMaxIsaLevel)
              ? static_cast<std::uint32_t>(dbll::support::kMaxIsaLevel)
              : e.isa_level;
      ++isa_entries[level];
    } else {
      ++invalid;
    }
  }
  // The shm hot-entry ring, read without locking or creating anything. A
  // missing ring is normal (no fleet process attached yet), not an error:
  // one call answers "is the fleet cache warm?".
  auto ring = ShmRing::Inspect(dir);
  // Quarantine records count as cache state too: a non-empty sidecar means
  // some fingerprints will never be served (-1: sidecar exists but unreadable).
  auto quarantine = Quarantine::ReadDir(dir);
  const long long quarantine_records =
      quarantine.has_value() ? static_cast<long long>(quarantine->size()) : -1;
  if (json) {
    std::printf("{\"schema_version\": %d, \"dir\": \"%s\", \"entries\": %zu, "
                "\"valid\": %" PRIu64 ", \"invalid\": %" PRIu64
                ", \"total_bytes\": %" PRIu64 ", \"tier0_entries\": %" PRIu64
                ", \"tier0_bytes\": %" PRIu64 ", \"tier0a_entries\": %" PRIu64
                ", \"tier0a_bytes\": %" PRIu64
                ", \"isa\": {\"baseline\": %" PRIu64 ", \"avx2\": %" PRIu64
                ", \"avx512\": %" PRIu64 "}, \"host_isa\": \"%s\""
                ", \"llvm_version\": \"%s\", \"target_cpu\": \"%s\""
                ", \"quarantine_records\": %lld",
                kJsonSchemaVersion, JsonEscape(dir).c_str(), scan->size(),
                valid, invalid, total_bytes, tier0_entries, tier0_bytes,
                tier0a_entries, tier0a_bytes, isa_entries[0], isa_entries[1],
                isa_entries[2],
                dbll::support::IsaLevelName(dbll::support::EffectiveIsaLevel()),
                JsonEscape(llvm_version).c_str(),
                JsonEscape(target_cpu).c_str(), quarantine_records);
    if (ring.has_value()) {
      std::printf(", \"shm\": {\"present\": true, \"format_version\": %" PRIu32
                  ", \"slots\": %" PRIu32 ", \"slot_bytes\": %" PRIu64
                  ", \"used_slots\": %" PRIu32 ", \"payload_bytes\": %" PRIu64
                  ", \"fleet_hits\": %" PRIu64 ", \"fleet_inserts\": %" PRIu64
                  ", \"fleet_evictions\": %" PRIu64 "}}\n",
                  ring->format_version, ring->slot_count, ring->slot_bytes,
                  ring->used_slots, ring->payload_bytes, ring->fleet_hits,
                  ring->fleet_inserts, ring->fleet_evictions);
    } else {
      std::printf(", \"shm\": {\"present\": false}}\n");
    }
  } else {
    std::printf("%s: %zu entries (%" PRIu64 " valid, %" PRIu64
                " invalid), %" PRIu64 " bytes",
                dir.c_str(), scan->size(), valid, invalid, total_bytes);
    if (valid != 0) {
      std::printf(", %" PRIu64 " tier0 / %" PRIu64 " tier0a, llvm %s/%s",
                  tier0_entries, tier0a_entries, llvm_version.c_str(),
                  target_cpu.c_str());
    }
    std::printf("\n");
    std::printf("isa: %" PRIu64 " baseline, %" PRIu64 " avx2, %" PRIu64
                " avx512 (host dispatches at %s)\n",
                isa_entries[0], isa_entries[1], isa_entries[2],
                dbll::support::IsaLevelName(
                    dbll::support::EffectiveIsaLevel()));
    if (ring.has_value()) {
      std::printf("shm ring: %" PRIu32 "/%" PRIu32 " slots used, %" PRIu64
                  " payload bytes, fleet hits %" PRIu64 " inserts %" PRIu64
                  " evictions %" PRIu64 "\n",
                  ring->used_slots, ring->slot_count, ring->payload_bytes,
                  ring->fleet_hits, ring->fleet_inserts,
                  ring->fleet_evictions);
    } else {
      std::printf("shm ring: none\n");
    }
    if (quarantine_records != 0) {
      std::printf("quarantine: %lld record%s\n", quarantine_records,
                  quarantine_records == 1 ? "" : "s");
    }
  }
  return 0;
}

int RunQuarantine(const std::string& dir, bool clear, bool json) {
  if (clear) {
    auto cleared = Quarantine::Clear(dir);
    if (!cleared.has_value()) {
      std::fprintf(stderr, "error: %s\n", cleared.error().Format().c_str());
      return 1;
    }
    if (json) {
      std::printf("{\"schema_version\": %d, \"cleared\": %" PRIu64 "}\n",
                  kJsonSchemaVersion, *cleared);
    } else {
      std::printf("cleared %" PRIu64 " quarantine record%s from %s\n",
                  *cleared, *cleared == 1 ? "" : "s", dir.c_str());
    }
    return 0;
  }
  auto records = Quarantine::ReadDir(dir);
  if (!records.has_value()) {
    std::fprintf(stderr, "error: %s\n", records.error().Format().c_str());
    return 1;
  }
  if (json) {
    std::printf("{\n  \"schema_version\": %d,\n  \"records\": [\n",
                kJsonSchemaVersion);
    for (std::size_t i = 0; i < records->size(); ++i) {
      const Quarantine::Record& r = (*records)[i];
      std::printf("    {\"fingerprint\": \"%016" PRIx64
                  "\", \"reason\": \"%s\"}%s\n",
                  r.fingerprint, JsonEscape(r.reason).c_str(),
                  i + 1 == records->size() ? "" : ",");
    }
    std::printf("  ]\n}\n");
  } else {
    for (const Quarantine::Record& r : *records) {
      std::printf("%016" PRIx64 "  %s\n", r.fingerprint, r.reason.c_str());
    }
    std::printf("%zu quarantine record%s\n", records->size(),
                records->size() == 1 ? "" : "s");
  }
  return 0;
}

int RunExport(const std::string& dir, const std::string& bundle, bool json) {
  auto exported = ObjectStore::ExportBundle(dir, bundle);
  if (!exported.has_value()) {
    std::fprintf(stderr, "error: %s\n", exported.error().Format().c_str());
    return 1;
  }
  if (json) {
    std::printf("{\"schema_version\": %d, \"exported\": %" PRIu64
                ", \"bundle\": \"%s\"}\n",
                kJsonSchemaVersion, *exported, JsonEscape(bundle).c_str());
  } else {
    std::printf("exported %" PRIu64 " entr%s from %s to %s\n", *exported,
                *exported == 1 ? "y" : "ies", dir.c_str(), bundle.c_str());
  }
  return 0;
}

int RunImport(const std::string& bundle, const std::string& dir, bool json) {
  std::uint64_t skipped_isa = 0;
  auto imported = ObjectStore::ImportBundle(bundle, dir, &skipped_isa);
  if (!imported.has_value()) {
    std::fprintf(stderr, "error: %s\n", imported.error().Format().c_str());
    return 1;
  }
  if (json) {
    std::printf("{\"schema_version\": %d, \"imported\": %" PRIu64
                ", \"skipped_isa\": %" PRIu64 ", \"dir\": \"%s\"}\n",
                kJsonSchemaVersion, *imported, skipped_isa,
                JsonEscape(dir).c_str());
  } else {
    std::printf("imported %" PRIu64 " entr%s from %s into %s\n", *imported,
                *imported == 1 ? "y" : "ies", bundle.c_str(), dir.c_str());
    if (skipped_isa != 0) {
      std::printf("skipped %" PRIu64
                  " entr%s needing a higher ISA level than this host's %s\n",
                  skipped_isa, skipped_isa == 1 ? "y" : "ies",
                  dbll::support::IsaLevelName(
                      dbll::support::EffectiveIsaLevel()));
    }
  }
  return 0;
}

/* --- prewarm: manifest-driven bulk compile --------------------------------
 *
 * A deliberately small JSON reader (objects, arrays, strings, integer
 * numbers, booleans, null) -- enough for the manifest grammar documented at
 * the top of this file, with no third-party dependency. */

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;  // manifest integers are small; double is exact < 2^53
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const char* key) const {
    for (const auto& kv : object) {
      if (kv.first == key) return &kv.second;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipWs();
    return ok && pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: return false;  // \uXXXX etc.: not needed by the manifest
        }
      }
      out->push_back(c);
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWs();
        if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
        SkipWs();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        SkipWs();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null");
    }
    char* end = nullptr;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) return false;
    pos_ = static_cast<std::size_t>(end - s_.c_str());
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// A fixed-parameter value: a JSON number, or a string like "0x1000" for
/// 64-bit values a double cannot carry exactly.
bool ReadU64(const JsonValue& v, std::uint64_t* out) {
  if (v.kind == JsonValue::Kind::kNumber) {
    *out = static_cast<std::uint64_t>(v.number);
    return true;
  }
  if (v.kind == JsonValue::Kind::kString) {
    char* end = nullptr;
    *out = std::strtoull(v.string.c_str(), &end, 0);
    return end != v.string.c_str() && *end == '\0';
  }
  return false;
}

/// Re-execs once with ASLR disabled so kernel addresses (and every rebased
/// address the persist fingerprint folds) are identical across prewarm runs
/// and across the fleet processes that load the same library. No-ops when
/// ASLR is already off (setarch -R, or the re-execed child itself).
void EnsureStableAddresses(char** argv) {
  if (std::getenv("DBLL_CACHECTL_REEXEC") != nullptr) return;
  const int persona = personality(0xffffffff);
  if (persona == -1 || (persona & ADDR_NO_RANDOMIZE) != 0) return;
  if (personality(persona | ADDR_NO_RANDOMIZE) == -1) return;
  setenv("DBLL_CACHECTL_REEXEC", "1", 1);
  execv("/proc/self/exe", argv);
  // exec failed: run anyway; fingerprints are still self-consistent within
  // this run, repeated runs may just re-compile.
}

int PrewarmError(const char* what) {
  std::fprintf(stderr, "dbll-cachectl prewarm: %s\n", what);
  return 1;
}

int RunPrewarm(const std::string& dir, const std::string& manifest_path,
               const std::string& lib_override, bool expect_warm, bool json) {
  // Slurp + parse the manifest.
  std::string text;
  {
    std::FILE* f = std::fopen(manifest_path.c_str(), "rb");
    if (f == nullptr) return PrewarmError("cannot open manifest");
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  JsonValue root;
  if (!JsonParser(text).Parse(&root) ||
      root.kind != JsonValue::Kind::kObject) {
    return PrewarmError("manifest is not valid JSON");
  }
  const JsonValue* schema = root.Find("schema_version");
  if (schema != nullptr && schema->kind == JsonValue::Kind::kNumber &&
      schema->number > 1) {
    return PrewarmError("manifest schema_version is newer than this tool");
  }
  std::string lib = lib_override;
  if (lib.empty()) {
    const JsonValue* l = root.Find("lib");
    if (l != nullptr && l->kind == JsonValue::Kind::kString) lib = l->string;
  }
  if (lib.empty()) return PrewarmError("no kernel library (manifest \"lib\" or --lib)");
  const JsonValue* entries = root.Find("entries");
  if (entries == nullptr || entries->kind != JsonValue::Kind::kArray ||
      entries->array.empty()) {
    return PrewarmError("manifest has no entries");
  }

  void* handle = dlopen(lib.c_str(), RTLD_NOW);
  if (handle == nullptr) {
    std::fprintf(stderr, "dbll-cachectl prewarm: dlopen(%s): %s\n",
                 lib.c_str(), dlerror());
    return 1;
  }

  dbll::runtime::CompileService::Options options;
  options.persist_dir = dir;
  options.workers = 2;
  dbll::runtime::CompileService service(options);
  if (!service.persist_enabled()) {
    return PrewarmError("persistent store could not be attached");
  }

  std::uint64_t ok_entries = 0, failed = 0;
  for (const JsonValue& e : entries->array) {
    if (e.kind != JsonValue::Kind::kObject) return PrewarmError("entry is not an object");
    const JsonValue* symbol = e.Find("symbol");
    const JsonValue* int_args = e.Find("int_args");
    if (symbol == nullptr || symbol->kind != JsonValue::Kind::kString ||
        int_args == nullptr || int_args->kind != JsonValue::Kind::kNumber) {
      return PrewarmError("entry needs \"symbol\" and \"int_args\"");
    }
    void* func = dlsym(handle, symbol->string.c_str());
    if (func == nullptr) {
      std::fprintf(stderr, "dbll-cachectl prewarm: dlsym(%s): %s\n",
                   symbol->string.c_str(), dlerror());
      ++failed;
      continue;
    }
    const JsonValue* rets = e.Find("returns_value");
    const bool returns_value =
        rets == nullptr || rets->kind != JsonValue::Kind::kBool ||
        rets->boolean;

    dbll::runtime::CompileRequest request;
    request.address = reinterpret_cast<std::uint64_t>(func);
    request.signature = dbll::lift::Signature::Ints(
        static_cast<int>(int_args->number),
        returns_value ? dbll::lift::RetKind::kInt : dbll::lift::RetKind::kVoid);
    const JsonValue* fix = e.Find("fix");
    if (fix != nullptr) {
      if (fix->kind != JsonValue::Kind::kArray) return PrewarmError("\"fix\" is not an array");
      for (const JsonValue& f : fix->array) {
        const JsonValue* index = f.Find("index");
        const JsonValue* value = f.Find("value");
        std::uint64_t fixed = 0;
        if (f.kind != JsonValue::Kind::kObject || index == nullptr ||
            index->kind != JsonValue::Kind::kNumber || value == nullptr ||
            !ReadU64(*value, &fixed)) {
          return PrewarmError("fix entry needs a numeric \"index\" and \"value\"");
        }
        // Manifest indices are 1-based, like dbll_cache_req_setpar.
        request.FixParam(static_cast<int>(index->number) - 1, fixed);
      }
    }

    auto compiled = service.CompileSync(request);
    if (compiled.has_value()) {
      ++ok_entries;
    } else {
      std::fprintf(stderr, "dbll-cachectl prewarm: %s: %s\n",
                   symbol->string.c_str(),
                   compiled.error().Format().c_str());
      ++failed;
    }
  }
  service.WaitIdle();  // settle the persistent write-backs before stats
  const dbll::runtime::CacheStats stats = service.stats();

  if (json) {
    std::printf("{\"schema_version\": %d, \"dir\": \"%s\", \"entries\": %zu, "
                "\"prewarmed\": %" PRIu64 ", \"failed\": %" PRIu64
                ", \"compiles\": %" PRIu64 ", \"disk_hits\": %" PRIu64
                ", \"disk_stores\": %" PRIu64 ", \"shm_hits\": %" PRIu64
                ", \"shm_inserts\": %" PRIu64 "}\n",
                kJsonSchemaVersion, JsonEscape(dir).c_str(),
                entries->array.size(), ok_entries, failed, stats.compiles,
                stats.disk_hits, stats.disk_stores, stats.shm_hits,
                stats.shm_inserts);
  } else {
    std::printf("prewarmed %" PRIu64 "/%zu entr%s into %s (%" PRIu64
                " compiled, %" PRIu64 " already warm, %" PRIu64 " stored)\n",
                ok_entries, entries->array.size(),
                entries->array.size() == 1 ? "y" : "ies", dir.c_str(),
                stats.compiles, stats.disk_hits, stats.disk_stores);
  }
  if (failed != 0) return 1;
  if (expect_warm && stats.compiles != 0) {
    std::fprintf(stderr,
                 "dbll-cachectl prewarm: FAIL: %" PRIu64
                 " Tier-0 compile(s) ran with --expect-warm\n",
                 stats.compiles);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string command;
  std::vector<std::string> positional;
  std::string lib_override;
  bool json = false, expect_warm = false, clear = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--expect-warm") == 0) {
      expect_warm = true;
    } else if (std::strcmp(argv[i], "--clear") == 0) {
      clear = true;
    } else if (std::strcmp(argv[i], "--lib") == 0 && i + 1 < argc) {
      lib_override = argv[++i];
    } else if (argv[i][0] == '-') {
      return Usage();
    } else if (command.empty()) {
      command = argv[i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (command.empty() || positional.empty()) return Usage();

  if (command == "list" && positional.size() == 1) {
    return RunScan(positional[0], json, /*verify=*/false);
  }
  if (command == "verify" && positional.size() == 1) {
    return RunScan(positional[0], json, /*verify=*/true);
  }
  if (command == "purge" && positional.size() == 1) {
    return RunPurge(positional[0], json);
  }
  if (command == "stats" && positional.size() == 1) {
    return RunStats(positional[0], json);
  }
  if (command == "export" && positional.size() == 2) {
    return RunExport(positional[0], positional[1], json);
  }
  if (command == "import" && positional.size() == 2) {
    return RunImport(positional[0], positional[1], json);
  }
  if (command == "prewarm" && positional.size() == 2) {
    EnsureStableAddresses(argv);
    return RunPrewarm(positional[0], positional[1], lib_override, expect_warm,
                      json);
  }
  if (command == "quarantine" && positional.size() == 1) {
    return RunQuarantine(positional[0], clear, json);
  }
  return Usage();
}
