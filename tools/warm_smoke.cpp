// dbll -- warm-start smoke binary for scripts/check.sh.
//
// Exercises the persistent object cache across *processes*, through the C
// API, the way an embedder would:
//
//   warm_smoke <cache-dir>                 cold run: compiles, persists
//   warm_smoke <cache-dir> --expect-warm   warm run: must serve from disk
//
// The warm run asserts the issue's acceptance criterion literally: zero
// Tier-0 compiles, zero lift work (the "lift.wall_ns" registry histogram
// stays empty), and cache.disk_hits >= 1 -- the second process start skips
// decode/lift/O3/codegen entirely.
//
// The persistent fingerprint folds raw virtual addresses (the SpecKey target
// and the rebased memory the lifted code bakes in), so a warm hit needs the
// same address layout in both runs. The binary arranges that itself: if ASLR
// is active it sets personality(ADDR_NO_RANDOMIZE) and re-execs once, so both
// smoke runs land on identical addresses without any wrapper script.
#include <sys/personality.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "dbll/dbrew/capi.h"

// The specialization target, compiled in this TU so it gets the controlled
// kernel flags (see CMakeLists) keeping it in the supported subset.
extern "C" long warm_kernel(long left, long mid, long right, long w) {
  long acc = 0;
  for (long i = 0; i < w; ++i) {
    acc += left + 2 * mid + right + i;
  }
  return acc;
}

typedef long (*WarmKernelFn)(long, long, long, long);

#define CHECK(cond, what)                                        \
  do {                                                           \
    if (!(cond)) {                                               \
      std::fprintf(stderr, "warm_smoke: FAIL: %s\n", what);      \
      return 1;                                                  \
    }                                                            \
  } while (0)

namespace {

/// Re-execs once with ASLR disabled so the kernel address (and every rebased
/// address the fingerprint folds) is identical across smoke runs. No-ops when
/// ASLR is already off (setarch -R, or the re-execed child itself).
void EnsureStableAddresses(char** argv) {
  if (std::getenv("DBLL_WARM_SMOKE_REEXEC") != nullptr) return;
  const int persona = personality(0xffffffff);
  if (persona == -1 || (persona & ADDR_NO_RANDOMIZE) != 0) return;
  if (personality(persona | ADDR_NO_RANDOMIZE) == -1) return;
  setenv("DBLL_WARM_SMOKE_REEXEC", "1", 1);
  execv("/proc/self/exe", argv);
  // exec failed: fall through and run anyway (the cold half still works; the
  // warm half may miss and report the failure visibly).
}

}  // namespace

int main(int argc, char** argv) {
  EnsureStableAddresses(argv);

  const char* dir = nullptr;
  bool expect_warm = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--expect-warm") == 0) {
      expect_warm = true;
    } else if (dir == nullptr) {
      dir = argv[i];
    } else {
      std::fprintf(stderr, "usage: warm_smoke <cache-dir> [--expect-warm]\n");
      return 1;
    }
  }
  if (dir == nullptr) {
    std::fprintf(stderr, "usage: warm_smoke <cache-dir> [--expect-warm]\n");
    return 1;
  }

  // The consolidated construction path (dbll_cache_new_v1 +
  // dbll_cache_configure): this smoke doubles as the C-API example for the
  // struct-based surface (docs/API.md).
  dbll_cache_options_v1 copts;
  std::memset(&copts, 0, sizeof(copts));
  copts.struct_size = sizeof(copts);
  copts.apply_mask = DBLL_CACHE_APPLY_WORKERS | DBLL_CACHE_APPLY_CAPACITY;
  copts.workers = 1;
  copts.capacity = 16;
  dbll_cache* cache = dbll_cache_new_v1(&copts);
  std::memset(&copts, 0, sizeof(copts));
  copts.struct_size = sizeof(copts);
  copts.apply_mask = DBLL_CACHE_APPLY_PERSIST;
  copts.persist_dir = dir;
  CHECK(dbll_cache_configure(cache, &copts) == 0,
        dbll_cache_last_error(cache));
  CHECK(dbll_cache_persist_enabled(cache) == 1, "persistence not enabled");

  dbll_cache_req* req =
      dbll_cache_request(cache, reinterpret_cast<void*>(&warm_kernel), 4,
                         /*returns_value=*/1);
  dbll_cache_req_setpar(req, 4, 5);  // fix the width w = 5 (1-based index)

  auto fn = reinterpret_cast<WarmKernelFn>(dbll_cache_wait(req));
  CHECK(fn != nullptr, "null callable");
  const int tier = dbll_handle_tier(req);
  CHECK(tier == 0, "not served by Tier 0");
  const long expected = warm_kernel(10, 20, 30, 5);
  const long got = fn(10, 20, 30, 0);  // w is burned in; pass garbage
  CHECK(got == expected, "specialized callable returned a wrong value");

  // The persistent write-back happens on the worker *after* the handle
  // finishes; settle it before reading stats.
  dbll_cache_wait_idle(cache);
  dbll_persist_stats persist;
  dbll_cache_persist_stats(cache, &persist);
  dbll_cache_stats_v1 stats;
  stats.struct_size = sizeof(stats);
  CHECK(dbll_cache_get_stats(cache, &stats) == 0, "dbll_cache_get_stats failed");
  const uint64_t compiles = stats.compiles;
  const uint64_t lift_ns = dbll_obs_value("lift.wall_ns");
  // The deprecated getters are wrappers over the same snapshot; a drift here
  // means the compatibility shims broke.
  CHECK(dbll_cache_stat_compiles(cache) == stats.compiles,
        "deprecated stat_compiles disagrees with dbll_cache_get_stats");

  if (expect_warm) {
    // The acceptance criterion: a warm process start does zero lift/O3/
    // codegen work -- the object comes from the persistent layer (the shm
    // hot-entry ring when another fleet process already faulted it in, the
    // disk store otherwise; both count as persist hits).
    CHECK(persist.hits >= 1, "cache.disk_hits == 0 on the warm run");
    CHECK(dbll_obs_value("cache.disk_hits") >= 1,
          "obs registry cache.disk_hits == 0 on the warm run");
    CHECK(compiles == 0, "Tier-0 compile ran on the warm run");
    CHECK(lift_ns == 0, "lift.wall_ns != 0 on the warm run");
  } else {
    CHECK(compiles == 1, "cold run did not compile");
    CHECK(persist.stores == 1, "cold run did not persist the object");
    CHECK(persist.errors == 0, "object store reported I/O errors");
  }

  std::printf("warm_smoke: OK (%s dir=%s disk_hits=%" PRIu64
              " stores=%" PRIu64 " compiles=%" PRIu64 " lift_ns=%" PRIu64
              " shm_attached=%" PRIu64 " shm_hits=%" PRIu64
              " shm_inserts=%" PRIu64 ")\n",
              expect_warm ? "warm" : "cold", dir, persist.hits, persist.stores,
              compiles, lift_ns, persist.shm_attached, persist.shm_hits,
              persist.shm_inserts);
  dbll_cache_req_free(req);
  dbll_cache_free(cache);
  return 0;
}
