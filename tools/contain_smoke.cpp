// dbll -- crash-containment smoke binary for scripts/check.sh.
//
// Drives the full containment story (docs/robustness.md) across *processes*,
// through the C API, against one cache directory:
//
//   contain_smoke <cache-dir> --poison
//       Containment on, `exec.probation` armed: the freshly compiled kernel
//       faults on its first probation call. The process must survive, the
//       caller must get the correct answer from the Tier-2 fallback, the
//       slot must demote, the fingerprint must land in the quarantine
//       sidecar, and the key's circuit breaker must open -- a follow-up
//       request for the same key (after eviction) is denied straight to
//       Tier 1 without touching LLVM.
//
//   contain_smoke <cache-dir> --expect-quarantined
//       Fresh process, same directory, no faults armed: the quarantined
//       object must never be reloaded (zero persist hits, the kernel is
//       recompiled) and the re-persist of the poisoned fingerprint must be
//       vetoed by the loaded sidecar.
//
//   contain_smoke <cache-dir> --sidecar-fault
//       Fresh directory; `exec.probation` AND `objcache.quarantine` armed:
//       the sidecar write itself fails, but the in-process quarantine veto
//       must still hold (the fingerprint is refused on the next store even
//       though quarantine.dbq never materialized).
//
// The persistent fingerprint folds raw virtual addresses, so the poison and
// restart legs need the same layout in both runs; like warm_smoke, the
// binary sets personality(ADDR_NO_RANDOMIZE) and re-execs once if needed.
#include <sys/personality.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "dbll/dbrew/capi.h"

// The specialization targets, compiled in this TU for the controlled kernel
// flags (see CMakeLists). contain_other exists only to evict contain_kernel's
// slot from a capacity-1 cache so a re-request must pass the breaker again.
extern "C" long contain_kernel(long left, long mid, long right, long w) {
  long acc = 0;
  for (long i = 0; i < w; ++i) {
    acc += left + 2 * mid + right + i;
  }
  return acc;
}

extern "C" long contain_other(long a, long b, long c, long w) {
  long acc = 0;
  for (long i = 0; i < w; ++i) {
    acc += a * 3 + b - c + i;
  }
  return acc;
}

typedef long (*KernelFn)(long, long, long, long);

#define CHECK(cond, what)                                           \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::fprintf(stderr, "contain_smoke: FAIL: %s\n", what);      \
      return 1;                                                     \
    }                                                               \
  } while (0)

namespace {

void EnsureStableAddresses(char** argv) {
  if (std::getenv("DBLL_CONTAIN_SMOKE_REEXEC") != nullptr) return;
  const int persona = personality(0xffffffff);
  if (persona == -1 || (persona & ADDR_NO_RANDOMIZE) != 0) return;
  if (personality(persona | ADDR_NO_RANDOMIZE) == -1) return;
  setenv("DBLL_CONTAIN_SMOKE_REEXEC", "1", 1);
  execv("/proc/self/exe", argv);
  // exec failed: run anyway; the restart leg may miss and report visibly.
}

/// Containment-enabled cache over `dir`: 1 worker, capacity 1 (so a second
/// request evicts the first slot), breaker threshold 1 with a cooldown long
/// enough that an opened breaker stays open for the whole smoke run.
dbll_cache* MakeCache(const char* dir, uint32_t breaker_k) {
  dbll_cache_options_v1 o;
  std::memset(&o, 0, sizeof(o));
  o.struct_size = sizeof(o);
  o.apply_mask = DBLL_CACHE_APPLY_WORKERS | DBLL_CACHE_APPLY_CAPACITY |
                 DBLL_CACHE_APPLY_CONTAIN;
  o.workers = 1;
  o.capacity = 1;
  o.contain_enabled = 1;
  o.contain_breaker_k = breaker_k;
  o.contain_cooldown_ms = 600000;  // longer than any smoke run
  dbll_cache* cache = dbll_cache_new_v1(&o);
  if (cache == nullptr) return nullptr;
  std::memset(&o, 0, sizeof(o));
  o.struct_size = sizeof(o);
  o.apply_mask = DBLL_CACHE_APPLY_PERSIST;
  o.persist_dir = dir;
  if (dbll_cache_configure(cache, &o) != 0) {
    std::fprintf(stderr, "contain_smoke: persist: %s\n",
                 dbll_cache_last_error(cache));
    dbll_cache_free(cache);
    return nullptr;
  }
  return cache;
}

dbll_cache_req* RequestKernel(dbll_cache* cache, void* kernel, long w) {
  dbll_cache_req* req = dbll_cache_request(cache, kernel, 4,
                                           /*returns_value=*/1);
  dbll_cache_req_setpar(req, 4, w);
  return req;
}

}  // namespace

static int RunPoison(const char* dir, bool sidecar_fault) {
  // Arm the faults programmatically (same registry as DBLL_FAULT). With
  // --sidecar-fault the breaker threshold is raised so an open breaker does
  // not mask the in-process quarantine veto we are trying to observe.
  CHECK(dbll_fault_arm("exec.probation", "kInternal", 0) == 0,
        "could not arm exec.probation");
  if (sidecar_fault) {
    CHECK(dbll_fault_arm("objcache.quarantine", "kIo", 0) == 0,
          "could not arm objcache.quarantine");
  }
  dbll_cache* cache = MakeCache(dir, sidecar_fault ? 100 : 1);
  CHECK(cache != nullptr, "cache construction failed");

  dbll_cache_req* req =
      RequestKernel(cache, reinterpret_cast<void*>(&contain_kernel), 5);
  auto fn = reinterpret_cast<KernelFn>(dbll_cache_wait(req));
  CHECK(fn != nullptr, "null callable");
  CHECK(dbll_handle_tier(req) == 0, "poison leg did not compile at Tier 0");
  dbll_cache_wait_idle(cache);  // settle the persist write-back first

  // First call through the probation stub: the guard catches the injected
  // fault and serves the caller from the Tier-2 entry, which reads the real
  // w argument -- so pass the full argument set and expect the right answer.
  const long expected = contain_kernel(10, 20, 30, 5);
  const long got = fn(10, 20, 30, 5);
  CHECK(got == expected, "caller saw a wrong value across the caught fault");
  CHECK(dbll_fault_fire_count("exec.probation") >= 1,
        "armed probation fault never fired");
  CHECK(dbll_handle_tier(req) == 2, "slot did not demote to Tier 2");

  dbll_cache_stats_v1 stats;
  stats.struct_size = sizeof(stats);
  CHECK(dbll_cache_get_stats(cache, &stats) == 0, "get_stats failed");
  CHECK(stats.probation_faults >= 1, "probation_faults did not tick");
  CHECK(stats.quarantined >= 1, "fingerprint was not quarantined");

  const int64_t sidecar = dbll_containment_quarantine_count(dir);
  if (sidecar_fault) {
    CHECK(dbll_fault_fire_count("objcache.quarantine") >= 1,
          "armed sidecar fault never fired");
    CHECK(sidecar == 0, "sidecar materialized despite the injected failure");
  } else {
    CHECK(sidecar >= 1, "quarantine sidecar has no record");
    CHECK(stats.breaker_opens >= 1, "circuit breaker did not open");
  }

  // Evict the poisoned slot (capacity 1), then re-request the same key with
  // no faults armed: the breaker must deny it straight to Tier 1 (default
  // leg), or -- with the breaker defanged in the sidecar-fault leg -- the
  // in-memory quarantine must veto the reload/re-store so the kernel is
  // recompiled instead of served from the poisoned object.
  dbll_fault_disarm_all();
  dbll_cache_req* other =
      RequestKernel(cache, reinterpret_cast<void*>(&contain_other), 3);
  CHECK(dbll_cache_wait(other) != nullptr, "eviction request failed");
  dbll_cache_wait_idle(cache);

  dbll_cache_req* again =
      RequestKernel(cache, reinterpret_cast<void*>(&contain_kernel), 5);
  auto fn2 = reinterpret_cast<KernelFn>(dbll_cache_wait(again));
  CHECK(fn2 != nullptr, "re-request returned no callable");
  const int tier2 = dbll_handle_tier(again);
  CHECK(fn2(10, 20, 30, 0) == expected,  // w burned in on tiers 0 and 1
        "re-requested callable returned a wrong value");
  dbll_cache_wait_idle(cache);
  CHECK(dbll_cache_get_stats(cache, &stats) == 0, "get_stats failed");
  if (sidecar_fault) {
    CHECK(tier2 == 0, "re-request was not recompiled at Tier 0");
    CHECK(dbll_obs_value("containment.quarantine_blocked") >= 1,
          "in-process quarantine veto never fired");
  } else {
    CHECK(tier2 == 1, "open breaker did not deny straight to Tier 1");
    CHECK(stats.breaker_denials >= 1, "breaker_denials did not tick");
  }

  std::printf("contain_smoke: OK (%s dir=%s faults=%" PRIu64
              " quarantined=%" PRIu64 " opens=%" PRIu64 " denials=%" PRIu64
              " sidecar=%" PRId64 ")\n",
              sidecar_fault ? "sidecar-fault" : "poison", dir,
              stats.probation_faults, stats.quarantined, stats.breaker_opens,
              stats.breaker_denials, sidecar);
  dbll_cache_req_free(req);
  dbll_cache_req_free(other);
  dbll_cache_req_free(again);
  dbll_cache_free(cache);
  return 0;
}

static int RunRestart(const char* dir) {
  CHECK(dbll_containment_quarantine_count(dir) >= 1,
        "restart leg found no quarantine record");
  dbll_cache* cache = MakeCache(dir, 1);
  CHECK(cache != nullptr, "cache construction failed");

  dbll_cache_req* req =
      RequestKernel(cache, reinterpret_cast<void*>(&contain_kernel), 5);
  auto fn = reinterpret_cast<KernelFn>(dbll_cache_wait(req));
  CHECK(fn != nullptr, "null callable");
  CHECK(dbll_handle_tier(req) == 0, "restart leg did not recompile at Tier 0");
  const long expected = contain_kernel(10, 20, 30, 5);
  CHECK(fn(10, 20, 30, 0) == expected, "recompiled callable wrong value");
  dbll_cache_wait_idle(cache);

  // The acceptance criterion: the quarantined object is never reloaded. The
  // poison run deleted its entry file and the sidecar vetoes both the load
  // ladder and the re-persist of the freshly compiled twin.
  dbll_persist_stats persist;
  dbll_cache_persist_stats(cache, &persist);
  dbll_cache_stats_v1 stats;
  stats.struct_size = sizeof(stats);
  CHECK(dbll_cache_get_stats(cache, &stats) == 0, "get_stats failed");
  CHECK(persist.hits == 0, "quarantined object served from the cache");
  CHECK(persist.stores == 0, "poisoned fingerprint was re-persisted");
  CHECK(stats.compiles == 1, "restart leg did not recompile");
  CHECK(dbll_obs_value("containment.quarantine_blocked") >= 1,
        "store veto of the quarantined fingerprint never fired");

  std::printf("contain_smoke: OK (restart dir=%s hits=%" PRIu64
              " stores=%" PRIu64 " compiles=%" PRIu64 " blocked=%" PRIu64
              ")\n",
              dir, persist.hits, persist.stores, stats.compiles,
              dbll_obs_value("containment.quarantine_blocked"));
  dbll_cache_req_free(req);
  dbll_cache_free(cache);
  return 0;
}

int main(int argc, char** argv) {
  EnsureStableAddresses(argv);

  const char* dir = nullptr;
  const char* mode = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') {
      mode = argv[i];
    } else if (dir == nullptr) {
      dir = argv[i];
    }
  }
  if (dir == nullptr || mode == nullptr) {
    std::fprintf(stderr,
                 "usage: contain_smoke <cache-dir> "
                 "(--poison | --expect-quarantined | --sidecar-fault)\n");
    return 1;
  }
  if (std::strcmp(mode, "--poison") == 0) return RunPoison(dir, false);
  if (std::strcmp(mode, "--sidecar-fault") == 0) return RunPoison(dir, true);
  if (std::strcmp(mode, "--expect-quarantined") == 0) return RunRestart(dir);
  std::fprintf(stderr, "contain_smoke: unknown mode %s\n", mode);
  return 1;
}
