// dbll -- kernels for the prewarm smoke (dbll-cachectl prewarm).
//
// Built as a *shared library* on purpose: the prewarm workflow is "ship a
// manifest + the kernel .so, bulk-compile before taking traffic", and the
// persist fingerprint folds the kernels' virtual addresses -- loading one
// shared object at an ASLR-disabled base is what makes fingerprints agree
// between the prewarm run and the serving processes. The whole TU gets the
// controlled kernel flags (see CMakeLists) so the kernels stay inside the
// decoder's supported instruction subset.

extern "C" long prewarm_saxpy(long a, long x, long y, long n) {
  long acc = 0;
  for (long i = 0; i < n; ++i) {
    acc += a * (x + i) + y;
  }
  return acc;
}

extern "C" long prewarm_dot3(long a, long b, long n) {
  long acc = 0;
  for (long i = 0; i < n; ++i) {
    acc += (a + i) * (b - i);
  }
  return acc;
}

extern "C" long prewarm_poly(long x, long c0, long c1, long c2) {
  return c0 + c1 * x + c2 * x * x;
}
