// dbll -- fault-injection smoke binary for scripts/check.sh.
//
// Exercises the issue's acceptance scenario end to end, through the C API,
// with the fault armed from the environment exactly as an operator would:
//
//   DBLL_FAULT=jit.compile:kJit:0 fault_smoke
//
// must exit 0 with the stencil-style specialization request served by the
// Tier-1 (plain DBrew) fallback: a working callable, dbll_handle_tier == 1,
// and fallback.tier1_serve == 1. Without DBLL_FAULT it asserts the Tier-0
// path instead, so the same binary smokes both sides of the degradation.
//
// A third mode covers crash containment (docs/robustness.md):
//
//   DBLL_CONTAIN=1 DBLL_FAULT=exec.probation:kInternal:0 fault_smoke
//
// compiles at Tier 0 as usual, but the first call through the probation
// stub takes a synthetic fault inside the guarded window: the caller must
// still get the right answer (served from the Tier-2 fallback entry, so the
// call passes real arguments), the slot must demote to tier 2, and
// containment.probation_faults must tick.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "dbll/dbrew/capi.h"

// The specialization target: a 3-point stencil row update with a runtime
// width parameter, the paper's motivating shape. Compiled in this file so it
// gets the kernel flags (see CMakeLists) keeping it in the supported subset.
extern "C" long stencil3(long left, long mid, long right, long w) {
  long acc = 0;
  for (long i = 0; i < w; ++i) {
    acc += left + 2 * mid + right + i;
  }
  return acc;
}

typedef long (*Stencil3Fn)(long, long, long, long);

#define CHECK(cond, what)                                         \
  do {                                                            \
    if (!(cond)) {                                                \
      std::fprintf(stderr, "fault_smoke: FAIL: %s\n", what);      \
      return 1;                                                   \
    }                                                             \
  } while (0)

int main() {
  const char* fault_env = std::getenv("DBLL_FAULT");
  const bool probation_mode =
      fault_env != nullptr && std::strstr(fault_env, "exec.probation") != nullptr;
  const int expect_tier =
      (fault_env != nullptr && *fault_env != '\0' && !probation_mode) ? 1 : 0;

  dbll_cache* cache = dbll_cache_new(1, 16);
  dbll_cache_req* req =
      dbll_cache_request(cache, reinterpret_cast<void*>(&stencil3), 4,
                         /*returns_value=*/1);
  dbll_cache_req_setpar(req, 4, 3);  // fix the width w = 3 (1-based index)

  const int tier = dbll_handle_tier(req);
  auto fn = reinterpret_cast<Stencil3Fn>(dbll_cache_wait(req));
  CHECK(fn != nullptr, "null callable");
  const long expected = stencil3(10, 20, 30, 3);
  // In probation mode the first call faults inside the guard and is served
  // by the Tier-2 fallback, which reads the *real* w argument -- so pass the
  // full argument set instead of relying on the burned-in w.
  const long got = probation_mode ? fn(10, 20, 30, 3) : fn(10, 20, 30, 0);
  CHECK(got == expected, "specialized callable returned a wrong value");

  CHECK(tier == expect_tier, "unexpected serving tier");
  const uint64_t tier1_serves = dbll_obs_value("fallback.tier1_serve");
  if (probation_mode) {
    CHECK(dbll_fault_fire_count("exec.probation") >= 1,
          "armed probation fault never fired");
    CHECK(dbll_obs_value("containment.probation_faults") >= 1,
          "containment.probation_faults did not tick");
    CHECK(dbll_handle_tier(req) == 2,
          "slot did not demote to tier 2 after the caught fault");
    CHECK(dbll_containment_recovered_faults() == 0,
          "synthetic fault must not count as a recovered hardware fault");
  } else if (expect_tier == 1) {
    CHECK(tier1_serves == 1, "fallback.tier1_serve != 1");
    CHECK(dbll_fault_fire_count("jit.compile") >= 1,
          "armed fault never fired");
  } else {
    CHECK(tier1_serves == 0, "unexpected Tier-1 serve on the clean path");
  }

  std::printf(
      "fault_smoke: OK (DBLL_FAULT=%s tier=%d value=%ld tier1_serve=%" PRIu64
      ")\n",
      fault_env != nullptr ? fault_env : "", tier, got, tier1_serves);
  dbll_cache_req_free(req);
  dbll_cache_free(cache);
  return 0;
}
