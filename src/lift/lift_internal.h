// dbll -- internal plumbing shared by the lifter, pipeline, and JIT.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include <llvm/IR/IRBuilder.h>
#include <llvm/IR/LLVMContext.h>
#include <llvm/IR/Module.h>

#include "dbll/lift/lifter.h"
#include "dbll/support/error.h"

namespace dbll::lift {

/// The internal "register file" signature used for every lifted function
/// transfers the complete caller-saved register state:
///   { 9 x i64, 8 x i128 } @l_<addr>(9 x i64, 8 x i128)
/// GP order: rax, rdi, rsi, rdx, rcx, r8, r9, r10, r11; vectors: xmm0..xmm7.
/// Passing the whole set (instead of only the ABI argument registers) keeps
/// lifted call boundaries correct even for compilers that shrink the
/// clobber set of local callees (GCC -fipa-ra): untouched registers pass
/// through the callee unchanged. A thin public wrapper adapts this to the
/// user-visible Signature; after always-inlining the struct traffic
/// disappears entirely. Stack arguments are unsupported (documented).
inline constexpr int kGpTransferRegs = 9;
inline constexpr int kVecTransferRegs = 8;
/// ABI argument register limits for the public wrapper.
inline constexpr int kMaxIntArgs = 6;
inline constexpr int kMaxSseArgs = 8;

/// Everything a LiftedFunction owns: context + module + bookkeeping needed
/// for specialization and JIT symbol definition.
struct ModuleBundle {
  std::unique_ptr<llvm::LLVMContext> context;
  std::unique_ptr<llvm::Module> module;
  std::string wrapper_name;     // public symbol
  Signature signature;
  LiftConfig config;
  /// Base chosen for the memory-rebasing global (first constant address the
  /// lifter saw); 0 when the function has no constant addresses.
  std::uint64_t membase_value = 0;
  std::string membase_symbol;   // unique global name, empty when unused
  bool optimized = false;
};

/// Lifts the function at `address` (plus reachable direct callees) into the
/// bundle's module and creates the public wrapper. On success the module
/// verifies.
Status LiftFunctionInto(ModuleBundle& bundle, std::uint64_t address);

/// Lifts the element kernel at `address` and builds a row-loop wrapper
/// (see Lifter::LiftElementAsLine). The bundle's signature must be the
/// four-integer-argument void signature.
Status LiftLineLoopInto(ModuleBundle& bundle, std::uint64_t address,
                        long stride, long col_begin, long col_end);

/// Runs the post-lift optimization pipeline (O3 by default, or the
/// configured ablation preset).
Status RunPipeline(ModuleBundle& bundle);

}  // namespace dbll::lift
