// dbll -- ORC JIT wrapper (paper Fig. 1: the optimized LLVM-IR is compiled
// to new binary code using the JIT compiler of LLVM).
#include <llvm/ExecutionEngine/Orc/JITTargetMachineBuilder.h>
#include <llvm/ExecutionEngine/Orc/LLJIT.h>
#include <llvm/Support/Host.h>
#include <llvm/Support/TargetSelect.h>

#include <mutex>

#include "dbll/obs/obs.h"
#include "dbll/support/fault.h"
#include "jit_internal.h"

namespace dbll::lift {

void EnsureLlvmInit() {
  static std::once_flag once;
  std::call_once(once, [] {
    llvm::InitializeNativeTarget();
    llvm::InitializeNativeTargetAsmPrinter();
    llvm::InitializeNativeTargetAsmParser();
  });
}

Jit::Jit() : impl_(std::make_unique<Impl>()) {
  EnsureLlvmInit();
  // Match the paper's -mno-avx environment: the lifter (and the DBrew
  // decoder, which may re-consume JIT output) supports the SSE subset only,
  // so the JIT must not emit VEX-encoded code. The generic x86-64 target
  // (SSE2 baseline) guarantees that.
  llvm::orc::JITTargetMachineBuilder jtmb(
      llvm::Triple(llvm::sys::getProcessTriple()));
  jtmb.setCPU("x86-64");
  auto jit = llvm::orc::LLJITBuilder()
                 .setJITTargetMachineBuilder(std::move(jtmb))
                 .create();
  if (!jit) {
    // Creation only fails when the native target is unavailable, which is a
    // build configuration problem; surface it on first use instead.
    impl_->init_error = llvm::toString(jit.takeError());
    return;
  }
  impl_->lljit = std::move(*jit);
  // The optimizer may introduce libc calls (memset/memcpy from idiom
  // recognition); resolve them against the host process.
  auto generator =
      llvm::orc::DynamicLibrarySearchGenerator::GetForCurrentProcess(
          impl_->lljit->getDataLayout().getGlobalPrefix());
  if (generator) {
    impl_->lljit->getMainJITDylib().addGenerator(std::move(*generator));
  } else {
    impl_->init_error = llvm::toString(generator.takeError());
    impl_->lljit.reset();
  }
}

Jit::~Jit() = default;

Expected<std::uint64_t> JitCompile(Jit& jit, ModuleBundle& bundle) {
  DBLL_TRACE_SPAN("jit.compile");
  DBLL_FAULT_POINT("jit.compile");
  const std::uint64_t jit_start_ns = dbll::obs::Tracer::NowNs();
  namespace orc = llvm::orc;
  Jit::Impl& impl = jit.impl();
  if (impl.lljit == nullptr) {
    return Error(ErrorKind::kJit, "LLJIT unavailable: " + impl.init_error);
  }

  bundle.module->setDataLayout(impl.lljit->getDataLayout());

  // The memory-rebasing global resolves to the absolute base address chosen
  // during lifting.
  if (!bundle.membase_symbol.empty()) {
    orc::SymbolMap symbols;
    symbols[impl.lljit->mangleAndIntern(bundle.membase_symbol)] =
        llvm::JITEvaluatedSymbol(bundle.membase_value,
                                 llvm::JITSymbolFlags::Exported);
    if (llvm::Error err = impl.lljit->getMainJITDylib().define(
            orc::absoluteSymbols(std::move(symbols)))) {
      return Error(ErrorKind::kJit,
                   "defining membase failed: " + llvm::toString(std::move(err)));
    }
  }

  orc::ThreadSafeModule tsm(std::move(bundle.module),
                            std::move(bundle.context));
  if (llvm::Error err = impl.lljit->addIRModule(std::move(tsm))) {
    return Error(ErrorKind::kJit,
                 "addIRModule failed: " + llvm::toString(std::move(err)));
  }
  auto symbol = impl.lljit->lookup(bundle.wrapper_name);
  if (!symbol) {
    return Error(ErrorKind::kJit,
                 "symbol lookup failed: " + llvm::toString(symbol.takeError()));
  }
  dbll::obs::Registry::Default()
      .GetHistogram("jit.wall_ns")
      .Record(dbll::obs::Tracer::NowNs() - jit_start_ns);
  return static_cast<std::uint64_t>(symbol->getAddress());
}

}  // namespace dbll::lift
