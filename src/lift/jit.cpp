// dbll -- ORC JIT wrapper (paper Fig. 1: the optimized LLVM-IR is compiled
// to new binary code using the JIT compiler of LLVM).
//
// Two extra responsibilities beyond plain compilation back the persistent
// object cache (include/dbll/runtime/object_store.h):
//  * a CaptureObjectCache hangs off the LLJIT compile function and files the
//    emitted relocatable object of every SetCacheTag()ed module, so the
//    runtime can persist it;
//  * LoadCachedObject() re-installs such an object in a later run without
//    constructing any IR -- the warm-start path that makes a second process
//    start skip decode/lift/O3/codegen entirely.
#include <llvm/Config/llvm-config.h>
#include <llvm/ExecutionEngine/Orc/CompileUtils.h>
#include <llvm/ExecutionEngine/Orc/JITTargetMachineBuilder.h>
#include <llvm/ExecutionEngine/Orc/LLJIT.h>
#include <llvm/IR/Constants.h>
#include <llvm/IR/Module.h>
#include <llvm/Support/Host.h>
#include <llvm/Support/MemoryBuffer.h>
#include <llvm/Support/TargetSelect.h>
#include <llvm/Target/TargetMachine.h>

#include <mutex>

#include "dbll/obs/obs.h"
#include "dbll/support/cpu_features.h"
#include "dbll/support/fault.h"
#include "jit_internal.h"

namespace dbll::lift {

namespace {
/// Paper's -mno-avx environment (see the Jit constructor): generic x86-64,
/// SSE2 baseline, no VEX. Also a persistent-cache fingerprint component.
constexpr char kTargetCpu[] = "x86-64";

int ClampIsaLevel(int isa_level) {
  if (isa_level < 0) return 0;
  if (isa_level > support::kMaxIsaLevel) return support::kMaxIsaLevel;
  return isa_level;
}

/// ORC IR compiler that keeps one TargetMachine per ISA ladder level and
/// picks the one named by the module's "dbll.isa" flag. The baseline is the
/// default (a module without the flag compiles exactly like the old single-
/// TM compiler); higher levels are created lazily on first use. Codegen is
/// serialized under one mutex -- TargetMachine is not thread-safe, and the
/// previous TMOwningSimpleCompiler shared a single machine anyway.
class MultiIsaCompiler : public llvm::orc::IRCompileLayer::IRCompiler {
 public:
  MultiIsaCompiler(const llvm::TargetOptions& options,
                   llvm::ObjectCache* cache)
      : IRCompiler(llvm::orc::irManglingOptionsFromTargetOptions(options)),
        cache_(cache) {}

  llvm::Expected<std::unique_ptr<llvm::MemoryBuffer>> operator()(
      llvm::Module& module) override {
    int level = 0;
    if (llvm::Metadata* md = module.getModuleFlag(kIsaModuleFlag)) {
      if (auto* ci = llvm::mdconst::dyn_extract<llvm::ConstantInt>(md)) {
        level = static_cast<int>(ci->getSExtValue());
      }
    }
    level = ClampIsaLevel(level);
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<llvm::TargetMachine>& tm = tms_[level];
    if (tm == nullptr) {
      auto created = CreateIsaTargetMachine(level);
      if (!created) return created.takeError();
      tm = std::move(*created);
    }
    return llvm::orc::SimpleCompiler(*tm, cache_)(module);
  }

 private:
  llvm::ObjectCache* cache_;
  std::mutex mutex_;
  std::unique_ptr<llvm::TargetMachine> tms_[support::kMaxIsaLevel + 1];
};
}  // namespace

llvm::Expected<std::unique_ptr<llvm::TargetMachine>> CreateIsaTargetMachine(
    int isa_level) {
  EnsureLlvmInit();
  llvm::orc::JITTargetMachineBuilder jtmb(
      llvm::Triple(llvm::sys::getProcessTriple()));
  jtmb.setCPU(kTargetCpu);
  const std::string features = support::IsaFeatureString(
      static_cast<support::IsaLevel>(ClampIsaLevel(isa_level)));
  std::size_t pos = 0;
  while (pos < features.size()) {
    std::size_t comma = features.find(',', pos);
    if (comma == std::string::npos) comma = features.size();
    std::string token = features.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    if (token[0] == '+') {
      jtmb.getFeatures().AddFeature(token.substr(1), true);
    } else if (token[0] == '-') {
      jtmb.getFeatures().AddFeature(token.substr(1), false);
    } else {
      jtmb.getFeatures().AddFeature(token, true);
    }
  }
  return jtmb.createTargetMachine();
}

const std::string& LlvmVersionString() {
  static const std::string version = LLVM_VERSION_STRING;
  return version;
}

const std::string& JitTargetCpu() {
  static const std::string cpu = kTargetCpu;
  return cpu;
}

std::string JitTargetCpuFor(int isa_level) {
  const std::string features = support::IsaFeatureString(
      static_cast<support::IsaLevel>(ClampIsaLevel(isa_level)));
  if (features.empty()) return JitTargetCpu();
  return JitTargetCpu() + "+" + features;
}

void EnsureLlvmInit() {
  static std::once_flag once;
  std::call_once(once, [] {
    llvm::InitializeNativeTarget();
    llvm::InitializeNativeTargetAsmPrinter();
    llvm::InitializeNativeTargetAsmParser();
  });
}

void CaptureObjectCache::notifyObjectCompiled(const llvm::Module* module,
                                              llvm::MemoryBufferRef object) {
  const llvm::StringRef id = module->getModuleIdentifier();
  if (!id.startswith(kCaptureTagPrefix)) return;  // untagged: not captured
  const auto* begin =
      reinterpret_cast<const std::uint8_t*>(object.getBufferStart());
  std::lock_guard<std::mutex> lock(mutex_);
  captured_[id.str()].assign(begin, begin + object.getBufferSize());
}

std::unique_ptr<llvm::MemoryBuffer> CaptureObjectCache::getObject(
    const llvm::Module*) {
  // Always miss: reuse happens via LoadCachedObject in a later run, not by
  // short-circuiting an IR recompilation in this one (the in-memory spec
  // cache already guarantees each key is compiled at most once per process).
  return nullptr;
}

std::vector<std::uint8_t> CaptureObjectCache::Take(
    const std::string& module_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = captured_.find(module_id);
  if (it == captured_.end()) return {};
  std::vector<std::uint8_t> bytes = std::move(it->second);
  captured_.erase(it);
  return bytes;
}

Jit::Jit() : impl_(std::make_unique<Impl>()) {
  EnsureLlvmInit();
  // The *default* target stays the paper's -mno-avx environment: generic
  // x86-64 (SSE2 baseline), so the DBrew decoder -- which may re-consume
  // JIT output on the Tier-0a/Tier-1 paths -- never sees VEX encodings.
  // Modules that RunPipeline stamped with a higher "dbll.isa" level are
  // compiled by the MultiIsaCompiler with that level's TargetMachine
  // (docs/codegen.md); such modules are never fed back into DBrew.
  llvm::orc::JITTargetMachineBuilder jtmb(
      llvm::Triple(llvm::sys::getProcessTriple()));
  jtmb.setCPU(kTargetCpu);
  CaptureObjectCache* capture = &impl_->capture;
  auto jit =
      llvm::orc::LLJITBuilder()
          .setJITTargetMachineBuilder(std::move(jtmb))
          // Per-ISA-level SimpleCompilers with the capture cache attached so
          // tagged modules leave a persistable object.
          .setCompileFunctionCreator(
              [capture](llvm::orc::JITTargetMachineBuilder jtmb2)
                  -> llvm::Expected<std::unique_ptr<
                      llvm::orc::IRCompileLayer::IRCompiler>> {
                return std::make_unique<MultiIsaCompiler>(jtmb2.getOptions(),
                                                          capture);
              })
          .create();
  if (!jit) {
    // Creation only fails when the native target is unavailable, which is a
    // build configuration problem; surface it on first use instead.
    impl_->init_error = llvm::toString(jit.takeError());
    return;
  }
  impl_->lljit = std::move(*jit);
  // The optimizer may introduce libc calls (memset/memcpy from idiom
  // recognition); resolve them against the host process.
  auto generator =
      llvm::orc::DynamicLibrarySearchGenerator::GetForCurrentProcess(
          impl_->lljit->getDataLayout().getGlobalPrefix());
  if (generator) {
    impl_->lljit->getMainJITDylib().addGenerator(std::move(*generator));
  } else {
    impl_->init_error = llvm::toString(generator.takeError());
    impl_->lljit.reset();
  }
}

Jit::~Jit() = default;

Expected<std::uint64_t> JitCompile(Jit& jit, ModuleBundle& bundle) {
  DBLL_TRACE_SPAN("jit.compile");
  DBLL_FAULT_POINT("jit.compile");
  const std::uint64_t jit_start_ns = dbll::obs::Tracer::NowNs();
  namespace orc = llvm::orc;
  Jit::Impl& impl = jit.impl();
  if (impl.lljit == nullptr) {
    return Error(ErrorKind::kJit, "LLJIT unavailable: " + impl.init_error);
  }

  bundle.module->setDataLayout(impl.lljit->getDataLayout());

  // The memory-rebasing global resolves to the absolute base address chosen
  // during lifting.
  if (!bundle.membase_symbol.empty()) {
    orc::SymbolMap symbols;
    symbols[impl.lljit->mangleAndIntern(bundle.membase_symbol)] =
        llvm::JITEvaluatedSymbol(bundle.membase_value,
                                 llvm::JITSymbolFlags::Exported);
    if (llvm::Error err = impl.lljit->getMainJITDylib().define(
            orc::absoluteSymbols(std::move(symbols)))) {
      return Error(ErrorKind::kJit,
                   "defining membase failed: " + llvm::toString(std::move(err)));
    }
  }

  orc::ThreadSafeModule tsm(std::move(bundle.module),
                            std::move(bundle.context));
  if (llvm::Error err = impl.lljit->addIRModule(std::move(tsm))) {
    return Error(ErrorKind::kJit,
                 "addIRModule failed: " + llvm::toString(std::move(err)));
  }
  auto symbol = impl.lljit->lookup(bundle.wrapper_name);
  if (!symbol) {
    return Error(ErrorKind::kJit,
                 "symbol lookup failed: " + llvm::toString(symbol.takeError()));
  }
  dbll::obs::Registry::Default()
      .GetHistogram("jit.wall_ns")
      .Record(dbll::obs::Tracer::NowNs() - jit_start_ns);
  return static_cast<std::uint64_t>(symbol->getAddress());
}

std::vector<std::uint8_t> TakeCapturedObject(Jit& jit,
                                             const std::string& tag) {
  return jit.impl().capture.Take(std::string(kCaptureTagPrefix) + tag);
}

Expected<std::uint64_t> LoadCachedObject(
    Jit& jit, const std::vector<std::uint8_t>& object,
    const std::string& wrapper_name, const std::string& membase_symbol,
    std::uint64_t membase_value) {
  DBLL_TRACE_SPAN("jit.objcache.install");
  namespace orc = llvm::orc;
  Jit::Impl& impl = jit.impl();
  if (impl.lljit == nullptr) {
    return Error(ErrorKind::kJit, "LLJIT unavailable: " + impl.init_error);
  }

  // Each cached object gets its own JITDylib: wrapper/membase names restart
  // per emitting process, so loading two cached objects (or a cached object
  // next to a fresh compile) into the main dylib could collide. The fresh
  // dylib still resolves libc symbols through the main one.
  std::string dylib_name;
  {
    std::lock_guard<std::mutex> lock(impl.dylib_mutex);
    dylib_name = "dbll_objcache_" + std::to_string(impl.dylib_counter++);
  }
  auto created = impl.lljit->createJITDylib(dylib_name);
  if (!created) {
    return Error(ErrorKind::kJit, "createJITDylib failed: " +
                                      llvm::toString(created.takeError()));
  }
  orc::JITDylib& dylib = *created;
  dylib.addToLinkOrder(impl.lljit->getMainJITDylib());

  if (!membase_symbol.empty()) {
    orc::SymbolMap symbols;
    symbols[impl.lljit->mangleAndIntern(membase_symbol)] =
        llvm::JITEvaluatedSymbol(membase_value,
                                 llvm::JITSymbolFlags::Exported);
    if (llvm::Error err =
            dylib.define(orc::absoluteSymbols(std::move(symbols)))) {
      return Error(ErrorKind::kJit,
                   "defining membase failed: " + llvm::toString(std::move(err)));
    }
  }

  auto buffer = llvm::MemoryBuffer::getMemBufferCopy(
      llvm::StringRef(reinterpret_cast<const char*>(object.data()),
                      object.size()),
      dylib_name);
  if (llvm::Error err =
          impl.lljit->addObjectFile(dylib, std::move(buffer))) {
    return Error(ErrorKind::kJit,
                 "addObjectFile failed: " + llvm::toString(std::move(err)));
  }
  auto symbol = impl.lljit->lookup(dylib, wrapper_name);
  if (!symbol) {
    return Error(ErrorKind::kJit, "cached-object symbol lookup failed: " +
                                      llvm::toString(symbol.takeError()));
  }
  return static_cast<std::uint64_t>(symbol->getAddress());
}

}  // namespace dbll::lift
