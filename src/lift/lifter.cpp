// dbll -- public lifter API (glue between the header and the internals).
#include "dbll/lift/lifter.h"

#include <llvm/IR/IRBuilder.h>
#include <llvm/Support/Host.h>
#include <llvm/Support/raw_ostream.h>

#include <algorithm>
#include <atomic>
#include <cinttypes>

#include "dbll/obs/obs.h"
#include "dbll/support/cpu_features.h"
#include "dbll/support/fault.h"
#include "jit_internal.h"
#include "lift_internal.h"

namespace dbll::lift {

struct LiftedFunction::Impl {
  ModuleBundle bundle;
};

LiftedFunction::LiftedFunction(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
LiftedFunction::~LiftedFunction() = default;
LiftedFunction::LiftedFunction(LiftedFunction&&) noexcept = default;
LiftedFunction& LiftedFunction::operator=(LiftedFunction&&) noexcept = default;

std::string LiftedFunction::GetIr() const {
  std::string out;
  llvm::raw_string_ostream os(out);
  impl_->bundle.module->print(os, nullptr);
  os.flush();
  return out;
}

std::size_t LiftedFunction::IrInstructionCount() const {
  std::size_t count = 0;
  for (const llvm::Function& fn : *impl_->bundle.module) {
    for (const llvm::BasicBlock& block : fn) {
      count += block.size();
    }
  }
  return count;
}

namespace {

/// Locates the single call of the lifted function inside the wrapper and the
/// register-file argument slot of the `index`-th public parameter.
Expected<std::pair<llvm::CallInst*, unsigned>> FindWrapperSlot(
    ModuleBundle& bundle, int index) {
  if (index < 0 || static_cast<std::size_t>(index) >= bundle.signature.args.size()) {
    return Error(
        ErrorKind::kBadConfig,
        "parameter index " + std::to_string(index) +
            " out of range: the C++ specialization APIs are 0-based; the C "
            "APIs dbll_cache_req_setpar/dbrew_setpar are 1-based");
  }
  llvm::Function* wrapper = bundle.module->getFunction(bundle.wrapper_name);
  if (wrapper == nullptr || wrapper->empty()) {
    return Error(ErrorKind::kInternal, "wrapper function missing");
  }
  llvm::CallInst* call = nullptr;
  for (llvm::BasicBlock& block : *wrapper) {
    for (llvm::Instruction& instr : block) {
      if (auto* candidate = llvm::dyn_cast<llvm::CallInst>(&instr)) {
        call = candidate;
        break;
      }
    }
    if (call != nullptr) break;
  }
  if (call == nullptr) {
    return Error(ErrorKind::kInternal, "wrapper call missing");
  }
  // Map the public parameter index to the register-file argument slot.
  int int_before = 0;
  int sse_before = 0;
  for (int i = 0; i < index; ++i) {
    if (bundle.signature.args[static_cast<std::size_t>(i)] == ArgKind::kInt) {
      ++int_before;
    } else {
      ++sse_before;
    }
  }
  const bool is_int =
      bundle.signature.args[static_cast<std::size_t>(index)] == ArgKind::kInt;
  // Transfer order: rax, rdi, rsi, rdx, rcx, r8, r9, r10, r11, xmm0..7 --
  // integer arguments start at slot 1 (rdi), vectors after the GP block.
  const unsigned slot =
      is_int ? static_cast<unsigned>(1 + int_before)
             : static_cast<unsigned>(kGpTransferRegs + sse_before);
  return std::make_pair(call, slot);
}

}  // namespace

Status LiftedFunction::SpecializeParam(int index, std::uint64_t value) {
  DBLL_TRACE_SPAN("lift.specialize");
  ModuleBundle& bundle = impl_->bundle;
  if (bundle.optimized) {
    return Error(ErrorKind::kBadConfig,
                 "cannot specialize after optimization");
  }
  if (index < 0 ||
      static_cast<std::size_t>(index) >= bundle.signature.args.size()) {
    return Error(
        ErrorKind::kBadConfig,
        "parameter index " + std::to_string(index) +
            " out of range: SpecializeParam is 0-based (0.." +
            std::to_string(
                static_cast<int>(bundle.signature.args.size()) - 1) +
            "); the C APIs dbll_cache_req_setpar/dbrew_setpar are 1-based");
  }
  if (bundle.signature.args[static_cast<std::size_t>(index)] !=
      ArgKind::kInt) {
    return Error(ErrorKind::kBadConfig,
                 "only integer parameters can be fixed to a value");
  }
  DBLL_TRY(auto slot, FindWrapperSlot(bundle, index));
  auto [call, position] = slot;
  call->setArgOperand(
      position,
      llvm::ConstantInt::get(llvm::Type::getInt64Ty(*bundle.context), value));
  return Status::Ok();
}

Status LiftedFunction::SpecializeParamToConstMem(int index, const void* data,
                                                 std::size_t size) {
  DBLL_TRACE_SPAN("lift.specialize");
  ModuleBundle& bundle = impl_->bundle;
  if (bundle.optimized) {
    return Error(ErrorKind::kBadConfig,
                 "cannot specialize after optimization");
  }
  DBLL_TRY(auto slot, FindWrapperSlot(bundle, index));
  auto [call, position] = slot;
  // Copy the region into the module as a constant global (paper Sec. IV).
  llvm::LLVMContext& ctx = *bundle.context;
  llvm::Constant* init = llvm::ConstantDataArray::get(
      ctx, llvm::ArrayRef<std::uint8_t>(
               static_cast<const std::uint8_t*>(data), size));
  auto* global = new llvm::GlobalVariable(
      *bundle.module, init->getType(), /*isConstant=*/true,
      llvm::GlobalValue::PrivateLinkage, init,
      bundle.wrapper_name + "_constmem");
  global->setAlignment(llvm::Align(16));
  llvm::IRBuilder<> builder(call);
  call->setArgOperand(
      position,
      builder.CreatePtrToInt(global, llvm::Type::getInt64Ty(ctx)));
  return Status::Ok();
}

Status LiftedFunction::SpecializeConstMemGraph(
    const std::vector<ConstMemRegion>& regions) {
  DBLL_TRACE_SPAN("lift.specialize");
  ModuleBundle& bundle = impl_->bundle;
  if (bundle.optimized) {
    return Error(ErrorKind::kBadConfig,
                 "cannot specialize after optimization");
  }
  if (regions.empty()) {
    return Error(ErrorKind::kBadConfig, "const-mem graph has no regions");
  }
  llvm::LLVMContext& ctx = *bundle.context;
  llvm::Type* i64 = llvm::Type::getInt64Ty(ctx);
  llvm::Type* i8 = llvm::Type::getInt8Ty(ctx);

  // Validate every region and lay it out as a packed struct alternating raw
  // byte runs with i64 pointer slots, so the byte image of the global equals
  // the snapshot with the proven slots rewritten to module-local addresses.
  struct Layout {
    std::vector<ConstMemRegion::Link> links;  // sorted by offset
    llvm::StructType* type = nullptr;
  };
  std::vector<Layout> layouts(regions.size());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    const ConstMemRegion& region = regions[r];
    if (region.bytes.empty()) {
      return Error(ErrorKind::kBadConfig, "const-mem region has no bytes");
    }
    Layout& layout = layouts[r];
    layout.links = region.links;
    std::sort(layout.links.begin(), layout.links.end(),
              [](const ConstMemRegion::Link& a, const ConstMemRegion::Link& b) {
                return a.offset < b.offset;
              });
    std::vector<llvm::Type*> fields;
    std::uint64_t cursor = 0;
    for (const ConstMemRegion::Link& link : layout.links) {
      if (link.offset < cursor || link.offset + 8 > region.bytes.size()) {
        return Error(ErrorKind::kBadConfig,
                     "pointer slot outside region or overlapping");
      }
      if (link.target_region < 0 ||
          static_cast<std::size_t>(link.target_region) >= regions.size()) {
        return Error(ErrorKind::kBadConfig, "pointer slot target out of range");
      }
      const auto& target = regions[static_cast<std::size_t>(link.target_region)];
      if (link.target_offset >= target.bytes.size()) {
        return Error(ErrorKind::kBadConfig,
                     "pointer slot targets past the end of its region");
      }
      if (link.offset > cursor) {
        fields.push_back(llvm::ArrayType::get(i8, link.offset - cursor));
      }
      fields.push_back(i64);
      cursor = link.offset + 8;
    }
    if (cursor < region.bytes.size()) {
      fields.push_back(llvm::ArrayType::get(i8, region.bytes.size() - cursor));
    }
    layout.type = llvm::StructType::get(ctx, fields, /*isPacked=*/true);
  }

  // Create every global first (initializers may reference each other, even
  // cyclically), then fill the initializers, then fix the argument slots.
  std::vector<llvm::GlobalVariable*> globals(regions.size());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    globals[r] = new llvm::GlobalVariable(
        *bundle.module, layouts[r].type, /*isConstant=*/true,
        llvm::GlobalValue::PrivateLinkage, nullptr,
        bundle.wrapper_name + "_constmem" + std::to_string(r));
    globals[r]->setAlignment(llvm::Align(16));
  }
  for (std::size_t r = 0; r < regions.size(); ++r) {
    const ConstMemRegion& region = regions[r];
    const Layout& layout = layouts[r];
    std::vector<llvm::Constant*> values;
    std::uint64_t cursor = 0;
    auto append_run = [&](std::uint64_t end) {
      if (end > cursor) {
        values.push_back(llvm::ConstantDataArray::get(
            ctx, llvm::ArrayRef<std::uint8_t>(region.bytes.data() + cursor,
                                              end - cursor)));
      }
    };
    for (const ConstMemRegion::Link& link : layout.links) {
      append_run(link.offset);
      llvm::Constant* target = llvm::ConstantExpr::getPtrToInt(
          globals[static_cast<std::size_t>(link.target_region)], i64);
      if (link.target_offset != 0) {
        target = llvm::ConstantExpr::getAdd(
            target, llvm::ConstantInt::get(i64, link.target_offset));
      }
      values.push_back(target);
      cursor = link.offset + 8;
    }
    append_run(region.bytes.size());
    globals[r]->setInitializer(llvm::ConstantStruct::get(layout.type, values));
  }
  for (std::size_t r = 0; r < regions.size(); ++r) {
    if (regions[r].param_index < 0) continue;
    DBLL_TRY(auto slot, FindWrapperSlot(bundle, regions[r].param_index));
    auto [call, position] = slot;
    llvm::IRBuilder<> builder(call);
    call->setArgOperand(position, builder.CreatePtrToInt(globals[r], i64));
  }
  return Status::Ok();
}

Status LiftedFunction::Optimize() { return RunPipeline(impl_->bundle); }

Expected<std::string> LiftedFunction::OptimizeAndGetIr() {
  DBLL_TRY_STATUS(RunPipeline(impl_->bundle));
  return GetIr();
}

Expected<std::uint64_t> LiftedFunction::Compile(Jit& jit) {
  DBLL_TRY_STATUS(RunPipeline(impl_->bundle));
  return JitCompile(jit, impl_->bundle);
}

void LiftedFunction::SetCacheTag(const std::string& tag) {
  // The capture cache keys on the module identifier: only identifiers with
  // the capture prefix are filed (jit_internal.h), so tagging is opt-in per
  // module and costless for everything else.
  impl_->bundle.module->setModuleIdentifier(std::string(kCaptureTagPrefix) +
                                            tag);
}

const std::string& LiftedFunction::wrapper_name() const {
  return impl_->bundle.wrapper_name;
}

const std::string& LiftedFunction::membase_symbol() const {
  return impl_->bundle.membase_symbol;
}

std::uint64_t LiftedFunction::membase_value() const {
  return impl_->bundle.membase_value;
}

std::uint64_t Fingerprint(const LiftConfig& config) {
  // FNV-1a over every field that influences the produced IR or code. A new
  // LiftConfig knob must be mixed in here, otherwise the runtime cache would
  // alias configs that lift differently.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xff;
      hash *= 0x100000001b3ULL;
    }
  };
  mix(config.flag_cache);
  mix(config.facet_cache);
  mix(config.use_gep);
  mix(config.fast_math);
  mix(static_cast<std::uint64_t>(config.opt_level));
  mix(config.stack_size);
  mix(config.lift_calls);
  mix(static_cast<std::uint64_t>(config.max_call_depth));
  mix(config.max_instructions);
  mix(config.pass_preset.size());
  for (char c : config.pass_preset) mix(static_cast<std::uint8_t>(c));
  mix(config.volatile_memory);
  mix(config.vectorize_hint);
  mix(config.flag_liveness);
  mix(config.value_ranges);
  mix(config.range_budget);
  mix(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(config.isa_level)));
  mix(config.vector_width);
  return hash;
}

Lifter::Lifter(LiftConfig config) : config_(std::move(config)) {
  // Resolve "auto" to a concrete ladder level (and clamp requests above the
  // host's effective level) so everything downstream -- fingerprints,
  // per-level TargetMachines, persisted entries -- sees a stable value.
  config_.isa_level =
      static_cast<int>(support::ResolveIsaLevel(config_.isa_level));
  EnsureLlvmInit();
}
Lifter::~Lifter() = default;

Expected<LiftedFunction> Lifter::LiftElementAsLine(
    std::uint64_t element_kernel, long stride, long col_begin, long col_end,
    std::string name) {
  DBLL_TRACE_SPAN("lift.function");
  DBLL_FAULT_POINT("lift.function");
  const std::uint64_t start_ns = obs::Tracer::NowNs();
  Signature sig = Signature::Ints(4, RetKind::kVoid);
  auto impl = std::make_unique<LiftedFunction::Impl>();
  ModuleBundle& bundle = impl->bundle;
  bundle.context = std::make_unique<llvm::LLVMContext>();
  bundle.module =
      std::make_unique<llvm::Module>("dbll_lifted_line", *bundle.context);
  bundle.module->setTargetTriple(llvm::sys::getProcessTriple());
  bundle.signature = sig;
  bundle.config = config_;
  static std::atomic<std::uint64_t> line_counter{0};
  if (name.empty()) name = "dbll_line";
  name += "_" + std::to_string(line_counter.fetch_add(1));
  bundle.wrapper_name = name;
  DBLL_TRY_STATUS(
      LiftLineLoopInto(bundle, element_kernel, stride, col_begin, col_end));
  obs::Registry::Default()
      .GetHistogram("lift.wall_ns")
      .Record(obs::Tracer::NowNs() - start_ns);
  return LiftedFunction(std::move(impl));
}

Expected<LiftedFunction> Lifter::Lift(std::uint64_t address,
                                      const Signature& sig, std::string name) {
  DBLL_TRACE_SPAN("lift.function");
  DBLL_FAULT_POINT("lift.function");
  const std::uint64_t start_ns = obs::Tracer::NowNs();
  auto impl = std::make_unique<LiftedFunction::Impl>();
  ModuleBundle& bundle = impl->bundle;
  bundle.context = std::make_unique<llvm::LLVMContext>();
  bundle.module =
      std::make_unique<llvm::Module>("dbll_lifted", *bundle.context);
  bundle.module->setTargetTriple(llvm::sys::getProcessTriple());
  bundle.signature = sig;
  bundle.config = config_;
  // The counter is process-wide: symbols must stay unique even across
  // Lifter instances that share one JIT session.
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t unique = counter.fetch_add(1);
  if (name.empty()) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "dbll_fn_%" PRIx64 "_%" PRIu64, address,
                  unique);
    name = buf;
  } else {
    // Keep symbols unique across modules in one JIT session.
    name += "_" + std::to_string(unique);
  }
  bundle.wrapper_name = name;

  DBLL_TRY_STATUS(LiftFunctionInto(bundle, address));
  obs::Registry::Default()
      .GetHistogram("lift.wall_ns")
      .Record(obs::Tracer::NowNs() - start_ns);
  return LiftedFunction(std::move(impl));
}

}  // namespace dbll::lift
