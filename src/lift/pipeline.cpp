// dbll -- post-lift optimization pipeline (paper Sec. IV: "the standard
// optimization pipeline with level 3, similar to the -O3 compiler option, is
// applied. The optimizations are also necessary to remove the overhead
// introduced by the transformation.")
#include <llvm/Passes/PassBuilder.h>
#include <llvm/Support/CommandLine.h>

#include "lift_internal.h"

namespace dbll::lift {

Status RunPipeline(ModuleBundle& bundle) {
  if (bundle.optimized) return Status::Ok();

  namespace L = llvm;
  L::OptimizationLevel level;
  switch (bundle.config.opt_level) {
    case 0: level = L::OptimizationLevel::O0; break;
    case 1: level = L::OptimizationLevel::O1; break;
    case 2: level = L::OptimizationLevel::O2; break;
    default: level = L::OptimizationLevel::O3; break;
  }

  L::PipelineTuningOptions tuning;
  const std::string& preset = bundle.config.pass_preset;
  if (preset == "novec") {
    tuning.LoopVectorization = false;
    tuning.SLPVectorization = false;
  }

  L::PassBuilder pb(nullptr, tuning);
  L::LoopAnalysisManager lam;
  L::FunctionAnalysisManager fam;
  L::CGSCCAnalysisManager cgam;
  L::ModuleAnalysisManager mam;
  pb.registerModuleAnalyses(mam);
  pb.registerCGSCCAnalyses(cgam);
  pb.registerFunctionAnalyses(fam);
  pb.registerLoopAnalyses(lam);
  pb.crossRegisterProxies(lam, fam, cgam, mam);

  L::ModulePassManager mpm;
  if (preset == "none") {
    // Always-inlining must still run so the wrapper becomes self-contained.
    mpm = pb.buildO0DefaultPipeline(L::OptimizationLevel::O0);
  } else if (preset == "basic") {
    // Minimal cleanup: inline, promote the virtual stack, fold casts.
    auto parsed = pb.parsePassPipeline(
        mpm,
        "always-inline,function(sroa,instcombine,simplifycfg,dce)");
    if (parsed) {
      return Error(ErrorKind::kJit, "cannot parse basic pass preset");
    }
  } else if (preset == "o1") {
    mpm = pb.buildPerModuleDefaultPipeline(
        L::OptimizationLevel::O1);
  } else if (preset == "o2") {
    mpm = pb.buildPerModuleDefaultPipeline(
        L::OptimizationLevel::O2);
  } else if (bundle.config.opt_level == 0) {
    mpm = pb.buildO0DefaultPipeline(L::OptimizationLevel::O0);
  } else {
    mpm = pb.buildPerModuleDefaultPipeline(level);
  }

  mpm.run(*bundle.module, mam);
  bundle.optimized = true;
  return Status::Ok();
}

Status SetLlvmOption(const std::string& option) {
  const std::size_t eq = option.find('=');
  const std::string name = option.substr(0, eq);
  const std::string value =
      eq == std::string::npos ? std::string() : option.substr(eq + 1);
  auto& registered = llvm::cl::getRegisteredOptions();
  auto it = registered.find(name);
  if (it == registered.end()) {
    return Error(ErrorKind::kBadConfig, "unknown LLVM option: " + name);
  }
  // Allow repeated programmatic updates (cl options default to Optional,
  // which rejects a second occurrence).
  it->second->setNumOccurrencesFlag(llvm::cl::ZeroOrMore);
  if (it->second->addOccurrence(0, name, value)) {
    return Error(ErrorKind::kBadConfig,
                 "invalid value for LLVM option: " + option);
  }
  return Status::Ok();
}

}  // namespace dbll::lift
