// dbll -- post-lift optimization pipeline (paper Sec. IV: "the standard
// optimization pipeline with level 3, similar to the -O3 compiler option, is
// applied. The optimizations are also necessary to remove the overhead
// introduced by the transformation.")
//
// Pipeline setup (PassBuilder construction, analysis registration, building
// the pass sequence) is hoisted into a per-thread cache keyed by
// (opt_level, preset, isa_level): the runtime compile service's cache-miss
// path and the repetition benches optimize many modules with the same
// configuration, and must not pay the setup for each one. Analysis caches
// are dropped after every run so no analysis result can dangle into a
// destroyed module.
//
// ISA threading (docs/codegen.md): each pipeline owns the TargetMachine of
// its ladder level (support/cpu_features.h) and hands it to the PassBuilder,
// so per-function TargetTransformInfo reports the level's real vector
// widths to the loop/SLP vectorizers. RunPipeline stamps every defined
// function with matching target-cpu/target-features attributes (the
// subtarget key both TTI and codegen resolve against) and records the level
// in the "dbll.isa" module flag for the ORC multi-ISA compiler. Stamping
// happens here -- the single choke point before optimization -- so
// late-created specialization wrappers are covered too and the inliner
// never refuses a callee over mismatched feature sets.
#include <llvm/IR/Verifier.h>
#include <llvm/Passes/PassBuilder.h>
#include <llvm/Support/CommandLine.h>
#include <llvm/Support/raw_ostream.h>
#include <llvm/Target/TargetMachine.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>

#include "dbll/obs/obs.h"
#include "dbll/support/cpu_features.h"
#include "dbll/support/fault.h"
#include "jit_internal.h"
#include "lift_internal.h"

namespace dbll::lift {

namespace {

/// One reusable (TargetMachine + PassBuilder + analysis managers + pass
/// sequence) combo for a fixed (opt_level, preset, isa_level). Not
/// thread-safe; cached thread_local.
class ReusablePipeline {
 public:
  ReusablePipeline(int opt_level, const std::string& preset, int isa_level) {
    namespace L = llvm;
    L::OptimizationLevel level;
    switch (opt_level) {
      case 0: level = L::OptimizationLevel::O0; break;
      case 1: level = L::OptimizationLevel::O1; break;
      case 2: level = L::OptimizationLevel::O2; break;
      default: level = L::OptimizationLevel::O3; break;
    }

    L::PipelineTuningOptions tuning;
    if (preset == "novec") {
      tuning.LoopVectorization = false;
      tuning.SLPVectorization = false;
    }

    // The pipeline owns the ladder level's TargetMachine: with it, the
    // PassBuilder registers a real TargetIRAnalysis and the vectorizers see
    // the level's actual register widths instead of the base x86-64 guess.
    auto tm = CreateIsaTargetMachine(isa_level);
    if (!tm) {
      setup_error_ = "cannot create ISA target machine: " +
                     L::toString(tm.takeError());
      return;
    }
    tm_ = std::move(*tm);

    pb_ = std::make_unique<L::PassBuilder>(tm_.get(), tuning);
    pb_->registerModuleAnalyses(mam_);
    pb_->registerCGSCCAnalyses(cgam_);
    pb_->registerFunctionAnalyses(fam_);
    pb_->registerLoopAnalyses(lam_);
    pb_->crossRegisterProxies(lam_, fam_, cgam_, mam_);

    if (preset == "none") {
      // Always-inlining must still run so the wrapper becomes self-contained.
      mpm_ = pb_->buildO0DefaultPipeline(L::OptimizationLevel::O0);
    } else if (preset == "tier0a") {
      // Tier-0a fast baseline (runtime/tiering.h): the cheapest pipeline
      // that still removes the lifter's virtual-stack and flag overhead.
      // One loop-unroll (plus the instcombine cleanup it needs) buys most of
      // the O3 per-call quality on the small lifted loops; deliberately no
      // vectorization and no full loop pipeline -- install latency is the
      // product here; the O3 run comes later via promotion.
      const char* text =
          "always-inline,function(sroa,early-cse,instcombine,simplifycfg,"
          "loop-unroll,instcombine,dce)";
      if (L::Error err = pb_->parsePassPipeline(mpm_, text)) {
        setup_error_ = "cannot parse tier0a pass preset: " +
                       L::toString(std::move(err));
      }
    } else if (preset == "basic") {
      // Minimal cleanup: inline, promote the virtual stack, fold casts.
      const char* text = "always-inline,function(sroa,instcombine,simplifycfg,dce)";
      if (L::Error err = pb_->parsePassPipeline(mpm_, text)) {
        setup_error_ = "cannot parse basic pass preset: " +
                       L::toString(std::move(err));
      }
    } else if (preset == "o1") {
      mpm_ = pb_->buildPerModuleDefaultPipeline(L::OptimizationLevel::O1);
    } else if (preset == "o2") {
      mpm_ = pb_->buildPerModuleDefaultPipeline(L::OptimizationLevel::O2);
    } else if (opt_level == 0) {
      mpm_ = pb_->buildO0DefaultPipeline(L::OptimizationLevel::O0);
    } else {
      mpm_ = pb_->buildPerModuleDefaultPipeline(level);
    }
  }

  Status Run(llvm::Module& module) {
    if (!setup_error_.empty()) {
      return Error(ErrorKind::kJit, setup_error_);
    }
    mpm_.run(module, mam_);
    // The pass sequence is reusable, cached analysis results are not: they
    // reference IR of the module just optimized, which the caller may free.
    lam_.clear();
    cgam_.clear();
    fam_.clear();
    mam_.clear();
    return Status::Ok();
  }

 private:
  // Declared before the managers/PassBuilder: registered analyses hold the
  // raw TargetMachine pointer, so the machine must outlive (and be destroyed
  // after) everything that references it.
  std::unique_ptr<llvm::TargetMachine> tm_;
  llvm::LoopAnalysisManager lam_;
  llvm::FunctionAnalysisManager fam_;
  llvm::CGSCCAnalysisManager cgam_;
  llvm::ModuleAnalysisManager mam_;
  std::unique_ptr<llvm::PassBuilder> pb_;
  llvm::ModulePassManager mpm_;
  std::string setup_error_;
};

/// Robustness gate: a module that fails the LLVM verifier would crash (or
/// miscompile) deep inside the pass pipeline / codegen, far from the actual
/// bug. Catching it here converts a latent crash into an Error the compile
/// service can degrade on (fallback.h tier chain). `kind` attributes the
/// break to the stage that produced the IR.
Status VerifyGate(llvm::Module& module, ErrorKind kind, const char* stage) {
  std::string report;
  llvm::raw_string_ostream os(report);
  if (llvm::verifyModule(module, &os)) {
    os.flush();
    // The verifier report can span many lines; the first is the diagnosis.
    const std::size_t eol = report.find('\n');
    if (eol != std::string::npos) report.resize(eol);
    return Error(kind, std::string("IR verification failed ") + stage + ": " +
                           report);
  }
  return Status::Ok();
}

/// Stamps the bundle's concrete ISA level onto the module: target-cpu /
/// target-features function attributes on every definition (the subtarget
/// key per-function TTI and codegen resolve), plus the "dbll.isa" module
/// flag the ORC compiler dispatches on. Covering *all* definitions matters:
/// the inliner's areInlineCompatible refuses callees whose feature set
/// exceeds the caller's, which would silently disable the always-inline
/// specialization wrappers.
void ApplyIsaAttributes(llvm::Module& module, int isa_level) {
  const std::string features = support::IsaFeatureString(
      static_cast<support::IsaLevel>(isa_level));
  for (llvm::Function& fn : module) {
    if (fn.isDeclaration()) continue;
    fn.addFnAttr("target-cpu", JitTargetCpu());
    if (!features.empty()) fn.addFnAttr("target-features", features);
  }
  if (module.getModuleFlag(kIsaModuleFlag) == nullptr) {
    module.addModuleFlag(llvm::Module::Error, kIsaModuleFlag,
                         static_cast<std::uint32_t>(isa_level));
  }
}

}  // namespace

Status RunPipeline(ModuleBundle& bundle) {
  if (bundle.optimized) return Status::Ok();
  DBLL_TRACE_SPAN("optimize.pipeline");
  DBLL_FAULT_POINT("opt.pipeline");
  const std::uint64_t start_ns = obs::Tracer::NowNs();

  // Normally already concrete (the Lifter constructor resolves "auto"), but
  // hand-built bundles get the same host-clamped resolution here.
  int isa_level = bundle.config.isa_level;
  if (isa_level < 0 || isa_level > support::kMaxIsaLevel) {
    isa_level = static_cast<int>(support::ResolveIsaLevel(isa_level));
  }
  ApplyIsaAttributes(*bundle.module, isa_level);

  DBLL_TRY_STATUS(VerifyGate(*bundle.module, ErrorKind::kLift,
                             "after lift/specialization (pre-optimization)"));

  // thread_local keeps the compile service's workers lock-free here; the
  // handful of (level, preset, isa) combos in use bounds the cache size.
  thread_local std::map<std::tuple<int, std::string, int>,
                        std::unique_ptr<ReusablePipeline>>
      pipelines;
  auto key = std::make_tuple(bundle.config.opt_level,
                             bundle.config.pass_preset, isa_level);
  std::unique_ptr<ReusablePipeline>& slot = pipelines[key];
  if (slot == nullptr) {
    // One-time per (thread, level, preset, isa): PassBuilder + TM + analysis
    // setup.
    DBLL_TRACE_SPAN("optimize.setup");
    slot = std::make_unique<ReusablePipeline>(
        bundle.config.opt_level, bundle.config.pass_preset, isa_level);
  }
  {
    DBLL_TRACE_SPAN("optimize.run");
    DBLL_TRY_STATUS(slot->Run(*bundle.module));
  }
  DBLL_TRY_STATUS(
      VerifyGate(*bundle.module, ErrorKind::kJit, "after optimization"));
  bundle.optimized = true;
  obs::Registry::Default()
      .GetHistogram("opt.wall_ns")
      .Record(obs::Tracer::NowNs() - start_ns);
  return Status::Ok();
}

Status SetLlvmOption(const std::string& option) {
  const std::size_t eq = option.find('=');
  const std::string name = option.substr(0, eq);
  const std::string value =
      eq == std::string::npos ? std::string() : option.substr(eq + 1);
  auto& registered = llvm::cl::getRegisteredOptions();
  auto it = registered.find(name);
  if (it == registered.end()) {
    return Error(ErrorKind::kBadConfig, "unknown LLVM option: " + name);
  }
  // Allow repeated programmatic updates (cl options default to Optional,
  // which rejects a second occurrence).
  it->second->setNumOccurrencesFlag(llvm::cl::ZeroOrMore);
  if (it->second->addOccurrence(0, name, value)) {
    return Error(ErrorKind::kBadConfig,
                 "invalid value for LLVM option: " + option);
  }
  return Status::Ok();
}

}  // namespace dbll::lift
