// dbll -- the x86-64 to LLVM-IR function lifter (paper Sections III & IV).
//
// Structure: ModuleLifter lifts a set of functions (the requested entry plus
// reachable direct callees) into one llvm::Module using the internal
// register-file signature; BodyLifter lifts one function body block by
// block, maintaining per-block register/flag states in SSA form with
// Φ-nodes at block entries and a facet cache per register.
#include <cstring>
#include <map>
#include <vector>

#include <llvm/IR/InlineAsm.h>
#include <llvm/IR/Intrinsics.h>
#include <llvm/IR/IntrinsicsX86.h>
#include <llvm/IR/Verifier.h>
#include <llvm/Support/raw_ostream.h>

#include "dbll/analysis/liveness.h"
#include "dbll/analysis/ranges.h"
#include "dbll/x86/cfg.h"
#include "dbll/x86/insn.h"
#include "dbll/x86/printer.h"
#include "lift_internal.h"

namespace dbll::lift {
namespace {

using x86::Cond;
using x86::Flag;
using x86::Instr;
using x86::MemOperand;
using x86::Mnemonic;
using x86::Operand;
using x86::Reg;
using x86::RegClass;

namespace L = llvm;

// Attaches llvm.loop.vectorize.enable (and, when width > 0, a pinned
// llvm.loop.vectorize.width) to a loop latch terminator. The enable hint
// overrides the vectorizer's cost model; the width additionally forces the
// VF -- the per-request form of the paper's -force-vector-width experiment.
void SetVectorizeLoopMetadata(L::LLVMContext& c, L::Instruction* latch,
                              std::uint32_t width) {
  L::SmallVector<L::Metadata*, 3> ops = {nullptr};
  ops.push_back(L::MDNode::get(
      c, {L::MDString::get(c, "llvm.loop.vectorize.enable"),
          L::ConstantAsMetadata::get(
              L::ConstantInt::getTrue(L::Type::getInt1Ty(c)))}));
  if (width > 0) {
    ops.push_back(L::MDNode::get(
        c, {L::MDString::get(c, "llvm.loop.vectorize.width"),
            L::ConstantAsMetadata::get(
                L::ConstantInt::get(L::Type::getInt32Ty(c), width))}));
  }
  L::MDNode* loop_id = L::MDNode::getDistinct(c, ops);
  loop_id->replaceOperandWith(0, loop_id);
  latch->setMetadata(L::LLVMContext::MD_loop, loop_id);
}

// Facet indices (paper Fig. 4). The first entry of each family is the
// canonical bitwise representation that always exists.
enum GpFacet {
  kGpI64 = 0,
  kGpI32,
  kGpI16,
  kGpI8,
  kGpPtr,
  kGpFacetCount,
};

GpFacet GpFacetForSize(std::uint8_t size) {
  switch (size) {
    case 4: return kGpI32;
    case 2: return kGpI16;
    case 1: return kGpI8;
    default: return kGpI64;
  }
}
enum VecFacet {
  kVecI128 = 0,
  kVecF64,   // scalar double in lane 0
  kVecF32,   // scalar float in lane 0
  kVecV2F64,
  kVecV4F32,
  kVecV2I64,
  kVecV4I32,
  kVecFacetCount,
};

/// GP registers transferred through the internal register-file signature:
/// rax, rdi, rsi, rdx, rcx, r8, r9, r10, r11 (all caller-saved GP regs).
constexpr std::uint8_t kGpTransferIndex[kGpTransferRegs] = {0, 7, 6, 2,  1,
                                                            8, 9, 10, 11};
/// SysV integer *argument* registers in order (used by the wrapper).
constexpr std::uint8_t kIntArgIndex[kMaxIntArgs] = {7, 6, 2, 1, 8, 9};

struct BlockState {
  L::Value* gp[x86::kGpRegCount][kGpFacetCount] = {};
  L::Value* vec[x86::kVecRegCount][kVecFacetCount] = {};
  L::Value* flags[x86::kFlagCount] = {};

  // Flag cache (paper Sec. III-D): operands of the latest cmp/sub, so
  // conditions can be reconstructed as a single icmp.
  L::Value* cmp_lhs = nullptr;
  L::Value* cmp_rhs = nullptr;
  bool cmp_valid = false;

  void InvalidateCmp() {
    cmp_valid = false;
    cmp_lhs = nullptr;
    cmp_rhs = nullptr;
  }
};

class ModuleLifter;

/// Lifts one function body.
class BodyLifter {
 public:
  BodyLifter(ModuleLifter& parent, L::Function* fn, const x86::Cfg& cfg,
             int call_depth, const analysis::Liveness* liveness,
             const analysis::FunctionRanges* ranges)
      : parent_(parent),
        fn_(fn),
        cfg_(cfg),
        call_depth_(call_depth),
        liveness_(liveness),
        ranges_(ranges) {}

  Status Run();

 private:
  struct BlockInfo {
    L::BasicBlock* bb = nullptr;
    BlockState entry;   // phi nodes (non-entry blocks)
    BlockState exit;    // state at terminator
    bool lifted = false;
  };

  // State accessors ---------------------------------------------------------
  L::LLVMContext& ctx();
  L::IRBuilder<>& b();
  const LiftConfig& config() const;

  L::Type* I1() { return L::Type::getInt1Ty(ctx()); }
  L::Type* I8() { return L::Type::getInt8Ty(ctx()); }
  L::Type* I16() { return L::Type::getInt16Ty(ctx()); }
  L::Type* I32() { return L::Type::getInt32Ty(ctx()); }
  L::Type* I64() { return L::Type::getInt64Ty(ctx()); }
  L::Type* I128() { return L::Type::getInt128Ty(ctx()); }
  L::Type* F32T() { return L::Type::getFloatTy(ctx()); }
  L::Type* F64T() { return L::Type::getDoubleTy(ctx()); }
  L::Type* IntN(unsigned bytes) {
    return L::Type::getIntNTy(ctx(), bytes * 8);
  }
  L::Type* FacetType(VecFacet facet) {
    switch (facet) {
      case kVecI128: return I128();
      case kVecF64: return F64T();
      case kVecF32: return F32T();
      case kVecV2F64: return L::FixedVectorType::get(F64T(), 2);
      case kVecV4F32: return L::FixedVectorType::get(F32T(), 4);
      case kVecV2I64: return L::FixedVectorType::get(I64(), 2);
      case kVecV4I32: return L::FixedVectorType::get(I32(), 4);
      default: return I128();
    }
  }

  L::Value* Undef(L::Type* type) { return L::UndefValue::get(type); }
  L::Constant* CI(L::Type* type, std::uint64_t v) {
    return L::ConstantInt::get(type, v);
  }

  // Register access ---------------------------------------------------------
  L::Value* GpBase(Reg reg) { return state_->gp[reg.index][kGpI64]; }
  void SetGpBase(Reg reg, L::Value* value) {
    state_->gp[reg.index][kGpI64] = value;
    for (int f = 1; f < kGpFacetCount; ++f) {
      state_->gp[reg.index][f] = nullptr;
    }
  }
  /// Caches a sub-dword facet value just produced by an instruction
  /// (paper Fig. 4a: "we additionally cache the values of the facets as
  /// produced by the instructions").
  void CacheGpFacet(Reg reg, GpFacet facet, L::Value* value) {
    if (config().facet_cache && facet != kGpI64) {
      state_->gp[reg.index][facet] = value;
    }
  }
  /// Returns the pointer facet, creating it (entry phi or inttoptr).
  L::Value* GpPtr(Reg reg);
  void SetGpPtr(Reg reg, L::Value* ptr) {
    state_->gp[reg.index][kGpPtr] = ptr;
  }

  L::Value* VecBase(Reg reg) { return state_->vec[reg.index][kVecI128]; }
  /// Reads a vector register in the requested facet (paper Fig. 4b/4c).
  L::Value* VecRead(Reg reg, VecFacet facet);
  /// Writes a vector register through one facet; other facets are dropped
  /// and the canonical i128 is recomputed.
  void VecWrite(Reg reg, VecFacet facet, L::Value* value);

  L::Value* GetFlag(Flag flag) {
    return state_->flags[static_cast<int>(flag)];
  }
  void SetFlag(Flag flag, L::Value* value) {
    state_->flags[static_cast<int>(flag)] = value;
  }
  /// Marks every flag written by an instruction we do not model bit-exactly.
  void UndefFlags() {
    for (auto& flag : state_->flags) flag = Undef(I1());
    state_->InvalidateCmp();
  }
  /// True when static liveness proved no successor reads `flag` after the
  /// instruction being lifted: its definition may be an undef instead of a
  /// computed value. Always false without LiftConfig::flag_liveness.
  bool FlagDead(Flag flag) const {
    return (live_flags_ & (1u << static_cast<int>(flag))) == 0;
  }
  /// Skips the flag computation entirely when the flag is statically dead
  /// (the thunk only runs for live flags).
  template <typename Fn>
  void SetFlagLazy(Flag flag, Fn&& compute) {
    SetFlag(flag, FlagDead(flag) ? Undef(I1()) : compute());
  }

  // Facet casts -------------------------------------------------------------
  L::Value* CastFromI128(L::Value* base, VecFacet facet);
  L::Value* CastToI128(L::Value* value, VecFacet facet);

  // Operand access ----------------------------------------------------------
  /// Integer read of a reg/imm/mem operand as iN (N = op.size * 8).
  Expected<L::Value*> ReadInt(const Instr& instr, const Operand& op);
  /// Integer write to a reg/mem operand with x86 merge semantics.
  Status WriteInt(const Instr& instr, const Operand& op, L::Value* value);
  /// Attaches !range metadata to a lifted load when the value-range pass
  /// bounded the loaded value.
  void AnnotateLoadRange(L::LoadInst* load, const Instr& instr,
                         unsigned bytes);
  /// Builds an i8* (or segment address space) pointer for a memory operand.
  Expected<L::Value*> BuildPointer(const Instr& instr, const MemOperand& mem);
  /// Typed pointer for a load/store of `type`.
  Expected<L::Value*> TypedPointer(const Instr& instr, const MemOperand& mem,
                                   L::Type* type);
  /// Reads a vector operand (register facet or memory load).
  Expected<L::Value*> ReadVec(const Instr& instr, const Operand& op,
                              VecFacet facet, unsigned mem_bytes);
  unsigned LoadAlign(Mnemonic m) {
    return (m == Mnemonic::kMovaps || m == Mnemonic::kMovapd ||
            m == Mnemonic::kMovdqa)
               ? 16
               : 1;
  }

  // Flag computation --------------------------------------------------------
  void FlagsAddSub(L::Value* lhs, L::Value* rhs, L::Value* res, bool is_sub);
  void FlagsLogic(L::Value* res);
  void FlagsZSP(L::Value* res);
  L::Value* EvalCondIr(Cond cond);

  // Instruction lifting -----------------------------------------------------
  Status LiftBlock(const x86::BasicBlock& block, BlockInfo& info);
  /// Lifts a range-resolved jump-table dispatch as a switch over the
  /// computed target address (docs/static_analysis.md).
  Status LiftIndirectJump(const x86::BasicBlock& block, const Instr& last);
  Status LiftInstr(const Instr& instr, bool* terminated);
  Status LiftIntAlu(const Instr& instr);
  Status LiftShift(const Instr& instr);
  Status LiftMovFamily(const Instr& instr);
  Status LiftMulDiv(const Instr& instr);
  Status LiftStack(const Instr& instr);
  Status LiftSse(const Instr& instr);
  Status LiftCall(const Instr& instr);
  Status LiftRet(const Instr& instr);

  void ApplyFastMath(L::Value* value) {
    if (config().fast_math) {
      if (auto* op = L::dyn_cast<L::Instruction>(value)) {
        if (L::isa<L::FPMathOperator>(op)) {
          L::FastMathFlags fmf;
          fmf.setFast();
          op->setFastMathFlags(fmf);
        }
      }
    }
  }

  // Phi plumbing ------------------------------------------------------------
  void CreateEntryPhis(std::uint64_t address, BlockInfo& info);
  Status FillPhis();
  /// Value of `slot` at the end of `pred`, materializing missing facets just
  /// before the terminator.
  L::Value* ExitGpFacet(BlockInfo& pred, int reg, int facet);
  L::Value* ExitVecFacet(BlockInfo& pred, int reg, int facet);

  ModuleLifter& parent_;
  L::Function* fn_;
  const x86::Cfg& cfg_;
  int call_depth_;
  /// Flag-liveness solution for cfg_ (null when pruning is disabled).
  const analysis::Liveness* liveness_;
  /// Value-range solution for cfg_ (null when LiftConfig::value_ranges is
  /// off). Feeds !range load annotations and constant-address folding.
  const analysis::FunctionRanges* ranges_;

  BlockInfo setup_;  ///< synthetic entry: arguments + virtual stack
  std::map<std::uint64_t, BlockInfo> blocks_;
  BlockInfo* cur_ = nullptr;
  BlockState* state_ = nullptr;
  /// FlagMask of flags live after the instruction currently being lifted.
  std::uint8_t live_flags_ = x86::kFlagAll;
  std::size_t lifted_instrs_ = 0;
};

/// Lifts a set of functions into one module.
class ModuleLifter {
 public:
  ModuleLifter(ModuleBundle& bundle) : bundle_(bundle), builder_(ctx()) {}

  Status LiftAll(std::uint64_t entry_address);

  L::LLVMContext& ctx() { return *bundle_.context; }
  L::Module& module() { return *bundle_.module; }
  L::IRBuilder<>& builder() { return builder_; }
  const LiftConfig& config() const { return bundle_.config; }

  /// The internal register-file function type.
  L::FunctionType* RegFileType();

  /// Returns (declaring + queueing for definition) the lifted function for
  /// a call target.
  Expected<L::Function*> GetOrDeclare(std::uint64_t address, int depth);

  /// Pointer into the rebased constant-address global (paper Sec. III-E).
  L::Value* MemBasePointer(std::uint64_t address);

  /// Lifts the function at `entry_address` and all reachable callees;
  /// returns the root internal function (no public wrapper yet).
  Expected<L::Function*> LiftBodies(std::uint64_t entry_address);

  Status BuildWrapper(L::Function* internal);
  /// Builds the row-loop wrapper of LiftLineLoopInto.
  Status BuildLineWrapper(L::Function* internal, long stride, long col_begin,
                          long col_end);
  Status Verify();

 private:

  ModuleBundle& bundle_;
  L::IRBuilder<> builder_;
  std::map<std::uint64_t, L::Function*> functions_;
  std::vector<std::pair<std::uint64_t, int>> pending_;  // address, depth
  L::GlobalVariable* membase_ = nullptr;
};

// ===========================================================================
// BodyLifter implementation
// ===========================================================================

L::LLVMContext& BodyLifter::ctx() { return parent_.ctx(); }
L::IRBuilder<>& BodyLifter::b() { return parent_.builder(); }
const LiftConfig& BodyLifter::config() const { return parent_.config(); }

L::Value* BodyLifter::GpPtr(Reg reg) {
  L::Value*& cached = state_->gp[reg.index][kGpPtr];
  if (config().facet_cache && cached != nullptr) return cached;
  L::Value* ptr = b().CreateIntToPtr(GpBase(reg), I8()->getPointerTo());
  if (config().facet_cache) cached = ptr;
  return ptr;
}

L::Value* BodyLifter::CastFromI128(L::Value* base, VecFacet facet) {
  switch (facet) {
    case kVecI128:
      return base;
    case kVecF64:
      return b().CreateExtractElement(
          b().CreateBitCast(base, FacetType(kVecV2F64)), std::uint64_t{0});
    case kVecF32:
      return b().CreateExtractElement(
          b().CreateBitCast(base, FacetType(kVecV4F32)), std::uint64_t{0});
    default:
      return b().CreateBitCast(base, FacetType(facet));
  }
}

L::Value* BodyLifter::CastToI128(L::Value* value, VecFacet facet) {
  switch (facet) {
    case kVecI128:
      return value;
    case kVecF64: {
      L::Value* vec = b().CreateInsertElement(
          L::Constant::getNullValue(FacetType(kVecV2F64)), value,
          std::uint64_t{0});
      return b().CreateBitCast(vec, I128());
    }
    case kVecF32: {
      L::Value* vec = b().CreateInsertElement(
          L::Constant::getNullValue(FacetType(kVecV4F32)), value,
          std::uint64_t{0});
      return b().CreateBitCast(vec, I128());
    }
    default:
      return b().CreateBitCast(value, I128());
  }
}

L::Value* BodyLifter::VecRead(Reg reg, VecFacet facet) {
  L::Value*& cached = state_->vec[reg.index][facet];
  if (config().facet_cache && cached != nullptr) return cached;
  L::Value* value = CastFromI128(VecBase(reg), facet);
  if (config().facet_cache) cached = value;
  return value;
}

void BodyLifter::VecWrite(Reg reg, VecFacet facet, L::Value* value) {
  for (auto& slot : state_->vec[reg.index]) slot = nullptr;
  state_->vec[reg.index][kVecI128] = CastToI128(value, facet);
  if (config().facet_cache && facet != kVecI128) {
    state_->vec[reg.index][facet] = value;
  }
}

// ---------------------------------------------------------------------------
// Operand access
// ---------------------------------------------------------------------------

Expected<L::Value*> BodyLifter::BuildPointer(const Instr& instr,
                                             const MemOperand& mem) {
  // Segment-prefixed accesses live in the x86 address spaces 257 (fs) and
  // 256 (gs) (paper Sec. III-E).
  if (mem.segment != x86::Segment::kNone) {
    const unsigned kAddrSpace = mem.segment == x86::Segment::kFs ? 257 : 256;
    L::Value* addr = CI(I64(), static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(mem.disp)));
    if (mem.base.valid() && mem.base != x86::kRip) {
      addr = b().CreateAdd(addr, GpBase(mem.base));
    }
    if (mem.index.valid()) {
      addr = b().CreateAdd(
          addr, b().CreateMul(GpBase(mem.index), CI(I64(), mem.scale)));
    }
    return b().CreateIntToPtr(addr, I8()->getPointerTo(kAddrSpace));
  }

  // RIP-relative and absolute addresses rebase onto the module's memory
  // base global so alias analysis sees a proper global object.
  if (mem.base == x86::kRip) {
    return parent_.MemBasePointer(instr.target);
  }
  if (!mem.base.valid() && !mem.index.valid()) {
    return parent_.MemBasePointer(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(mem.disp)));
  }

  // Register-based addresses the value-range analysis proved constant fold
  // onto the same membase global as immediate absolute addresses, so alias
  // analysis sees one global object instead of an opaque inttoptr
  // (docs/static_analysis.md, consumer 1).
  if (ranges_ != nullptr) {
    std::uint64_t address =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(mem.disp));
    bool constant = true;
    if (mem.base.valid()) {
      const analysis::ValueRange& r =
          ranges_->BeforeReg(instr.address, mem.base.index);
      if (r.IsConstant()) address += r.lo; else constant = false;
    }
    if (constant && mem.index.valid()) {
      const analysis::ValueRange& r =
          ranges_->BeforeReg(instr.address, mem.index.index);
      if (r.IsConstant()) address += r.lo * mem.scale; else constant = false;
    }
    if (constant) return parent_.MemBasePointer(address);
  }

  if (!config().use_gep) {
    // Ablation D3: integer arithmetic + inttoptr.
    L::Value* addr = CI(I64(), static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(mem.disp)));
    if (mem.base.valid()) addr = b().CreateAdd(addr, GpBase(mem.base));
    if (mem.index.valid()) {
      addr = b().CreateAdd(
          addr, b().CreateMul(GpBase(mem.index), CI(I64(), mem.scale)));
    }
    return b().CreateIntToPtr(addr, I8()->getPointerTo());
  }

  // GEP path: offset off the base register's pointer facet.
  L::Value* base_ptr = nullptr;
  L::Value* offset =
      CI(I64(), static_cast<std::uint64_t>(static_cast<std::int64_t>(mem.disp)));
  if (mem.base.valid()) {
    base_ptr = GpPtr(mem.base);
    if (mem.index.valid()) {
      offset = b().CreateAdd(
          offset, b().CreateMul(GpBase(mem.index), CI(I64(), mem.scale)));
    }
  } else {
    // Index without base: only usable as pointer when unscaled.
    if (mem.scale == 1) {
      base_ptr = GpPtr(mem.index);
    } else {
      L::Value* addr =
          b().CreateAdd(offset, b().CreateMul(GpBase(mem.index),
                                              CI(I64(), mem.scale)));
      return b().CreateIntToPtr(addr, I8()->getPointerTo());
    }
  }
  return b().CreateGEP(I8(), base_ptr, offset);
}

Expected<L::Value*> BodyLifter::TypedPointer(const Instr& instr,
                                             const MemOperand& mem,
                                             L::Type* type) {
  DBLL_TRY(L::Value * ptr, BuildPointer(instr, mem));
  const unsigned addr_space = ptr->getType()->getPointerAddressSpace();
  return b().CreateBitCast(ptr, type->getPointerTo(addr_space));
}

Expected<L::Value*> BodyLifter::ReadInt(const Instr& instr,
                                        const Operand& op) {
  L::Type* type = IntN(op.size);
  switch (op.kind) {
    case x86::OpKind::kImm:
      // ConstantInt truncates the sign-extended value to the type width.
      return static_cast<L::Value*>(
          CI(type, static_cast<std::uint64_t>(op.imm)));
    case x86::OpKind::kReg: {
      if (op.size == 8) return GpBase(op.reg);
      if (op.high8) {
        L::Value* shifted = b().CreateLShr(GpBase(op.reg), CI(I64(), 8));
        return b().CreateTrunc(shifted, type);
      }
      const GpFacet facet = GpFacetForSize(op.size);
      L::Value*& cached = state_->gp[op.reg.index][facet];
      if (config().facet_cache && cached != nullptr) return cached;
      L::Value* value = b().CreateTrunc(GpBase(op.reg), type);
      if (config().facet_cache) cached = value;
      return value;
    }
    case x86::OpKind::kMem: {
      DBLL_TRY(L::Value * ptr, TypedPointer(instr, op.mem, type));
      L::LoadInst* load = b().CreateAlignedLoad(type, ptr, L::Align(1),
                                                config().volatile_memory);
      AnnotateLoadRange(load, instr, op.size);
      return static_cast<L::Value*>(load);
    }
    default:
      return Error(ErrorKind::kLift, "cannot read operand", instr.address);
  }
}

void BodyLifter::AnnotateLoadRange(L::LoadInst* load, const Instr& instr,
                                   unsigned bytes) {
  if (ranges_ == nullptr) return;
  const analysis::ValueRange& range = ranges_->LoadRange(instr.address);
  if (range.IsTop()) return;
  const unsigned bits = bytes * 8;
  const std::uint64_t width_mask =
      bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  // The recorded range describes the zero-extended 64-bit value; it only
  // maps onto the iN load when it fits the load width, and a full interval
  // carries no information LLVM's half-open [lo, hi+1) encoding can hold.
  if (range.hi > width_mask) return;
  if (range.lo == 0 && range.hi == width_mask) return;
  L::Metadata* ops[2] = {
      L::ConstantAsMetadata::get(
          L::cast<L::ConstantInt>(CI(load->getType(), range.lo))),
      L::ConstantAsMetadata::get(
          L::cast<L::ConstantInt>(CI(load->getType(), range.hi + 1))),
  };
  load->setMetadata(L::LLVMContext::MD_range, L::MDNode::get(ctx(), ops));
}

Status BodyLifter::WriteInt(const Instr& instr, const Operand& op,
                            L::Value* value) {
  if (op.is_mem()) {
    DBLL_TRY(L::Value * ptr, TypedPointer(instr, op.mem, value->getType()));
    b().CreateAlignedStore(value, ptr, L::Align(1),
                           config().volatile_memory);
    return Status::Ok();
  }
  if (!op.is_reg() || op.reg.cls != RegClass::kGp) {
    return Error(ErrorKind::kLift, "cannot write operand", instr.address);
  }
  switch (op.size) {
    case 8:
      SetGpBase(op.reg, value);
      return Status::Ok();
    case 4:
      // 32-bit writes zero the upper half (paper Fig. 4a).
      SetGpBase(op.reg, b().CreateZExt(value, I64()));
      CacheGpFacet(op.reg, kGpI32, value);
      return Status::Ok();
    case 2:
    case 1: {
      std::uint64_t mask = op.size == 2 ? 0xffff : 0xff;
      unsigned shift = 0;
      if (op.high8) {
        mask = 0xff00;
        shift = 8;
      }
      L::Value* wide = b().CreateZExt(value, I64());
      if (shift != 0) wide = b().CreateShl(wide, CI(I64(), shift));
      L::Value* kept = b().CreateAnd(GpBase(op.reg), CI(I64(), ~mask));
      SetGpBase(op.reg, b().CreateOr(kept, wide));
      if (!op.high8) {
        CacheGpFacet(op.reg, op.size == 2 ? kGpI16 : kGpI8, value);
      }
      return Status::Ok();
    }
    default:
      return Error(ErrorKind::kLift, "bad write size", instr.address);
  }
}

Expected<L::Value*> BodyLifter::ReadVec(const Instr& instr, const Operand& op,
                                        VecFacet facet, unsigned mem_bytes) {
  if (op.is_reg() && op.reg.cls == RegClass::kVec) {
    return VecRead(op.reg, facet);
  }
  if (op.is_mem()) {
    L::Type* type = FacetType(facet);
    // Memory operands narrower than the facet load the low element(s).
    if (facet == kVecF64 || facet == kVecF32) {
      DBLL_TRY(L::Value * ptr, TypedPointer(instr, op.mem, type));
      return static_cast<L::Value*>(b().CreateAlignedLoad(
          type, ptr, L::Align(1), config().volatile_memory));
    }
    if (mem_bytes == 16) {
      DBLL_TRY(L::Value * ptr, TypedPointer(instr, op.mem, type));
      return static_cast<L::Value*>(b().CreateAlignedLoad(
          type, ptr, L::Align(LoadAlign(instr.mnemonic)),
          config().volatile_memory));
    }
    // Partial vector load (e.g. movq/movlps m64): load and widen with zeros.
    L::Type* narrow = IntN(mem_bytes);
    DBLL_TRY(L::Value * ptr, TypedPointer(instr, op.mem, narrow));
    L::Value* loaded = b().CreateAlignedLoad(narrow, ptr, L::Align(1));
    L::Value* wide = b().CreateZExt(loaded, I128());
    return CastFromI128(wide, facet);
  }
  return Error(ErrorKind::kLift, "cannot read vector operand", instr.address);
}

// ---------------------------------------------------------------------------
// Flags (paper Sec. III-D)
// ---------------------------------------------------------------------------

void BodyLifter::FlagsZSP(L::Value* res) {
  // Each flag is only computed when static liveness says a successor reads
  // it; dead definitions become undef without emitting any IR
  // (LiftConfig::flag_liveness -- the static complement of the flag cache).
  L::Type* type = res->getType();
  SetFlagLazy(Flag::kZf, [&] {
    return b().CreateICmpEQ(res, L::Constant::getNullValue(type));
  });
  SetFlagLazy(Flag::kSf, [&] {
    return b().CreateICmpSLT(res, L::Constant::getNullValue(type));
  });
  // PF counts bits of the low byte via llvm.ctpop.i8 (paper Sec. III-D).
  SetFlagLazy(Flag::kPf, [&] {
    L::Value* low = res;
    if (type != I8()) low = b().CreateTrunc(res, I8());
    L::Value* pop = b().CreateUnaryIntrinsic(L::Intrinsic::ctpop, low);
    return b().CreateICmpEQ(b().CreateAnd(pop, CI(I8(), 1)), CI(I8(), 0));
  });
}

void BodyLifter::FlagsAddSub(L::Value* lhs, L::Value* rhs, L::Value* res,
                             bool is_sub) {
  FlagsZSP(res);
  L::Type* type = res->getType();
  if (is_sub) {
    SetFlagLazy(Flag::kCf, [&] { return b().CreateICmpULT(lhs, rhs); });
    // OF via bitwise reconstruction (paper Fig. 6b).
    SetFlagLazy(Flag::kOf, [&] {
      L::Value* tmp =
          b().CreateAnd(b().CreateXor(lhs, rhs), b().CreateXor(lhs, res));
      return b().CreateICmpSLT(tmp, L::Constant::getNullValue(type));
    });
  } else {
    SetFlagLazy(Flag::kCf, [&] { return b().CreateICmpULT(res, lhs); });
    SetFlagLazy(Flag::kOf, [&] {
      L::Value* tmp = b().CreateAnd(b().CreateNot(b().CreateXor(lhs, rhs)),
                                    b().CreateXor(lhs, res));
      return b().CreateICmpSLT(tmp, L::Constant::getNullValue(type));
    });
  }
  // AF from the nibble carry. No modeled mnemonic ever reads AF, so this is
  // statically dead whenever flag liveness runs.
  SetFlagLazy(Flag::kAf, [&] {
    L::Value* af = b().CreateAnd(b().CreateXor(b().CreateXor(lhs, rhs), res),
                                 CI(type, 0x10));
    return b().CreateICmpNE(af, L::Constant::getNullValue(type));
  });
}

void BodyLifter::FlagsLogic(L::Value* res) {
  FlagsZSP(res);
  SetFlag(Flag::kCf, CI(I1(), 0));
  SetFlag(Flag::kOf, CI(I1(), 0));
  SetFlag(Flag::kAf, Undef(I1()));
}

L::Value* BodyLifter::EvalCondIr(Cond cond) {
  // Flag cache hit: rebuild the comparison directly (paper Fig. 6c).
  if (config().flag_cache && state_->cmp_valid) {
    L::Value* lhs = state_->cmp_lhs;
    L::Value* rhs = state_->cmp_rhs;
    switch (cond) {
      case Cond::kE: return b().CreateICmpEQ(lhs, rhs);
      case Cond::kNe: return b().CreateICmpNE(lhs, rhs);
      case Cond::kL: return b().CreateICmpSLT(lhs, rhs);
      case Cond::kGe: return b().CreateICmpSGE(lhs, rhs);
      case Cond::kLe: return b().CreateICmpSLE(lhs, rhs);
      case Cond::kG: return b().CreateICmpSGT(lhs, rhs);
      case Cond::kB: return b().CreateICmpULT(lhs, rhs);
      case Cond::kAe: return b().CreateICmpUGE(lhs, rhs);
      case Cond::kBe: return b().CreateICmpULE(lhs, rhs);
      case Cond::kA: return b().CreateICmpUGT(lhs, rhs);
      default:
        break;  // sign/overflow/parity conditions use the flag bits
    }
  }
  auto flag = [&](Flag f) { return GetFlag(f); };
  switch (cond) {
    case Cond::kO: return flag(Flag::kOf);
    case Cond::kNo: return b().CreateNot(flag(Flag::kOf));
    case Cond::kB: return flag(Flag::kCf);
    case Cond::kAe: return b().CreateNot(flag(Flag::kCf));
    case Cond::kE: return flag(Flag::kZf);
    case Cond::kNe: return b().CreateNot(flag(Flag::kZf));
    case Cond::kBe: return b().CreateOr(flag(Flag::kCf), flag(Flag::kZf));
    case Cond::kA:
      return b().CreateNot(b().CreateOr(flag(Flag::kCf), flag(Flag::kZf)));
    case Cond::kS: return flag(Flag::kSf);
    case Cond::kNs: return b().CreateNot(flag(Flag::kSf));
    case Cond::kP: return flag(Flag::kPf);
    case Cond::kNp: return b().CreateNot(flag(Flag::kPf));
    case Cond::kL: return b().CreateXor(flag(Flag::kSf), flag(Flag::kOf));
    case Cond::kGe:
      return b().CreateNot(b().CreateXor(flag(Flag::kSf), flag(Flag::kOf)));
    case Cond::kLe:
      return b().CreateOr(flag(Flag::kZf),
                          b().CreateXor(flag(Flag::kSf), flag(Flag::kOf)));
    case Cond::kG:
      return b().CreateNot(
          b().CreateOr(flag(Flag::kZf),
                       b().CreateXor(flag(Flag::kSf), flag(Flag::kOf))));
  }
  return Undef(I1());
}

// ---------------------------------------------------------------------------
// Instruction lifting
// ---------------------------------------------------------------------------

Status BodyLifter::LiftIntAlu(const Instr& instr) {
  using M = Mnemonic;
  const Operand& dst = instr.ops[0];

  switch (instr.mnemonic) {
    case M::kStc:
      SetFlag(Flag::kCf, CI(I1(), 1));
      state_->InvalidateCmp();
      return Status::Ok();
    case M::kClc:
      SetFlag(Flag::kCf, CI(I1(), 0));
      state_->InvalidateCmp();
      return Status::Ok();
    default:
      break;
  }

  DBLL_TRY(L::Value * lhs, ReadInt(instr, dst));

  // Unary operations.
  switch (instr.mnemonic) {
    case M::kNot: {
      DBLL_TRY_STATUS(WriteInt(instr, dst, b().CreateNot(lhs)));
      return Status::Ok();  // not does not modify flags
    }
    case M::kNeg: {
      L::Value* zero = L::Constant::getNullValue(lhs->getType());
      L::Value* res = b().CreateSub(zero, lhs);
      FlagsAddSub(zero, lhs, res, /*is_sub=*/true);
      // CF for neg: set unless the operand was zero.
      SetFlagLazy(Flag::kCf, [&] { return b().CreateICmpNE(lhs, zero); });
      state_->InvalidateCmp();
      DBLL_TRY_STATUS(WriteInt(instr, dst, res));
      return Status::Ok();
    }
    case M::kInc:
    case M::kDec: {
      L::Value* one = CI(lhs->getType(), 1);
      const bool is_dec = instr.mnemonic == M::kDec;
      L::Value* res =
          is_dec ? b().CreateSub(lhs, one) : b().CreateAdd(lhs, one);
      L::Value* saved_cf = GetFlag(Flag::kCf);  // inc/dec preserve CF
      FlagsAddSub(lhs, one, res, is_dec);
      SetFlag(Flag::kCf, saved_cf);
      state_->InvalidateCmp();
      DBLL_TRY_STATUS(WriteInt(instr, dst, res));
      return Status::Ok();
    }
    case M::kBswap: {
      L::Value* res = b().CreateUnaryIntrinsic(L::Intrinsic::bswap, lhs);
      DBLL_TRY_STATUS(WriteInt(instr, dst, res));
      return Status::Ok();
    }
    default:
      break;
  }

  DBLL_TRY(L::Value * rhs, ReadInt(instr, instr.ops[1]));
  // Immediates are sign-extended to the operand width.
  if (instr.ops[1].is_imm() && instr.ops[1].size < dst.size) {
    rhs = CI(lhs->getType(),
             static_cast<std::uint64_t>(instr.ops[1].imm));
  } else if (rhs->getType() != lhs->getType()) {
    rhs = b().CreateSExtOrTrunc(rhs, lhs->getType());
  }

  L::Value* res = nullptr;
  switch (instr.mnemonic) {
    case M::kAdd:
      res = b().CreateAdd(lhs, rhs);
      FlagsAddSub(lhs, rhs, res, false);
      state_->InvalidateCmp();
      break;
    case M::kSub:
    case M::kCmp:
      res = b().CreateSub(lhs, rhs);
      FlagsAddSub(lhs, rhs, res, true);
      // The flag cache captures cmp AND sub (paper Sec. III-D).
      state_->cmp_lhs = lhs;
      state_->cmp_rhs = rhs;
      state_->cmp_valid = true;
      break;
    case M::kAdc:
    case M::kSbb: {
      L::Value* carry = b().CreateZExt(GetFlag(Flag::kCf), lhs->getType());
      if (instr.mnemonic == M::kAdc) {
        res = b().CreateAdd(b().CreateAdd(lhs, rhs), carry);
        FlagsZSP(res);
        // Carry out: res < lhs, or res == lhs with carry-in and rhs != 0;
        // compute via the wide sum to stay exact.
        SetFlagLazy(Flag::kCf, [&] {
          L::Type* wide = L::Type::getIntNTy(
              ctx(), lhs->getType()->getIntegerBitWidth() + 1);
          L::Value* ws = b().CreateAdd(
              b().CreateAdd(b().CreateZExt(lhs, wide),
                            b().CreateZExt(rhs, wide)),
              b().CreateZExt(carry, wide));
          return b().CreateICmpNE(
              b().CreateLShr(ws,
                             CI(wide, lhs->getType()->getIntegerBitWidth())),
              L::Constant::getNullValue(wide));
        });
        SetFlagLazy(Flag::kOf, [&] {
          L::Value* tmp = b().CreateAnd(b().CreateNot(b().CreateXor(lhs, rhs)),
                                        b().CreateXor(lhs, res));
          return b().CreateICmpSLT(tmp,
                                   L::Constant::getNullValue(lhs->getType()));
        });
        SetFlag(Flag::kAf, Undef(I1()));
      } else {
        res = b().CreateSub(b().CreateSub(lhs, rhs), carry);
        FlagsZSP(res);
        SetFlagLazy(Flag::kCf, [&] {
          L::Type* wide = L::Type::getIntNTy(
              ctx(), lhs->getType()->getIntegerBitWidth() + 1);
          L::Value* wd = b().CreateSub(
              b().CreateSub(b().CreateZExt(lhs, wide),
                            b().CreateZExt(rhs, wide)),
              b().CreateZExt(carry, wide));
          return b().CreateICmpNE(
              b().CreateLShr(wd,
                             CI(wide, lhs->getType()->getIntegerBitWidth())),
              L::Constant::getNullValue(wide));
        });
        SetFlagLazy(Flag::kOf, [&] {
          L::Value* tmp = b().CreateAnd(b().CreateXor(lhs, rhs),
                                        b().CreateXor(lhs, res));
          return b().CreateICmpSLT(tmp,
                                   L::Constant::getNullValue(lhs->getType()));
        });
        SetFlag(Flag::kAf, Undef(I1()));
      }
      state_->InvalidateCmp();
      break;
    }
    case M::kAnd:
    case M::kTest:
      res = b().CreateAnd(lhs, rhs);
      FlagsLogic(res);
      state_->InvalidateCmp();
      break;
    case M::kOr:
      res = b().CreateOr(lhs, rhs);
      FlagsLogic(res);
      state_->InvalidateCmp();
      break;
    case M::kXor:
      res = b().CreateXor(lhs, rhs);
      FlagsLogic(res);
      state_->InvalidateCmp();
      break;
    case M::kImul: {
      // Two- and three-operand forms: truncating signed multiply.
      L::Value* a = lhs;
      L::Value* mul_rhs = rhs;
      if (instr.op_count == 3) {
        DBLL_TRY(L::Value * src1, ReadInt(instr, instr.ops[1]));
        a = src1;
        mul_rhs = CI(a->getType(), static_cast<std::uint64_t>(instr.ops[2].imm));
      }
      res = b().CreateMul(a, mul_rhs);
      // CF=OF = result does not fit; via wide multiply comparison. The wide
      // multiply is shared, so emit it once iff either flag is live.
      if (!FlagDead(Flag::kOf) || !FlagDead(Flag::kCf)) {
        const unsigned bits = a->getType()->getIntegerBitWidth();
        L::Type* wide = L::Type::getIntNTy(ctx(), bits * 2);
        L::Value* wm = b().CreateMul(b().CreateSExt(a, wide),
                                     b().CreateSExt(mul_rhs, wide));
        L::Value* fits = b().CreateICmpEQ(wm, b().CreateSExt(res, wide));
        SetFlag(Flag::kOf, b().CreateNot(fits));
        SetFlag(Flag::kCf, b().CreateNot(fits));
      } else {
        SetFlag(Flag::kOf, Undef(I1()));
        SetFlag(Flag::kCf, Undef(I1()));
      }
      SetFlag(Flag::kZf, Undef(I1()));
      SetFlag(Flag::kSf, Undef(I1()));
      SetFlag(Flag::kPf, Undef(I1()));
      SetFlag(Flag::kAf, Undef(I1()));
      state_->InvalidateCmp();
      break;
    }
    case M::kBt: case M::kBts: case M::kBtr: case M::kBtc: {
      L::Value* bit = b().CreateAnd(
          rhs, CI(rhs->getType(), dst.size * 8 - 1));
      SetFlagLazy(Flag::kCf, [&] {
        return b().CreateTrunc(b().CreateLShr(lhs, bit), I1());
      });
      state_->InvalidateCmp();
      if (instr.mnemonic == M::kBt) {
        return Status::Ok();  // bt writes no operand
      }
      L::Value* mask = b().CreateShl(CI(lhs->getType(), 1), bit);
      L::Value* out = nullptr;
      if (instr.mnemonic == M::kBts) {
        out = b().CreateOr(lhs, mask);
      } else if (instr.mnemonic == M::kBtr) {
        out = b().CreateAnd(lhs, b().CreateNot(mask));
      } else {
        out = b().CreateXor(lhs, mask);
      }
      DBLL_TRY_STATUS(WriteInt(instr, dst, out));
      return Status::Ok();
    }
    case M::kBsf:
    case M::kTzcnt: {
      L::Value* ctz = b().CreateBinaryIntrinsic(L::Intrinsic::cttz, rhs,
                                                CI(I1(), 0));
      res = ctz;
      SetFlagLazy(Flag::kZf, [&] {
        return b().CreateICmpEQ(rhs,
                                L::Constant::getNullValue(rhs->getType()));
      });
      if (instr.mnemonic == M::kTzcnt) {
        SetFlagLazy(Flag::kCf, [&] {
          return b().CreateICmpEQ(rhs,
                                  L::Constant::getNullValue(rhs->getType()));
        });
      } else {
        SetFlag(Flag::kCf, Undef(I1()));
      }
      SetFlag(Flag::kSf, Undef(I1()));
      SetFlag(Flag::kOf, Undef(I1()));
      SetFlag(Flag::kPf, Undef(I1()));
      SetFlag(Flag::kAf, Undef(I1()));
      state_->InvalidateCmp();
      break;
    }
    case M::kBsr: {
      L::Value* clz = b().CreateBinaryIntrinsic(L::Intrinsic::ctlz, rhs,
                                                CI(I1(), 0));
      res = b().CreateSub(CI(rhs->getType(), dst.size * 8 - 1), clz);
      SetFlagLazy(Flag::kZf, [&] {
        return b().CreateICmpEQ(rhs,
                                L::Constant::getNullValue(rhs->getType()));
      });
      SetFlag(Flag::kCf, Undef(I1()));
      SetFlag(Flag::kSf, Undef(I1()));
      SetFlag(Flag::kOf, Undef(I1()));
      SetFlag(Flag::kPf, Undef(I1()));
      SetFlag(Flag::kAf, Undef(I1()));
      state_->InvalidateCmp();
      break;
    }
    case M::kPopcnt: {
      res = b().CreateUnaryIntrinsic(L::Intrinsic::ctpop, rhs);
      SetFlagLazy(Flag::kZf, [&] {
        return b().CreateICmpEQ(rhs,
                                L::Constant::getNullValue(rhs->getType()));
      });
      SetFlag(Flag::kCf, CI(I1(), 0));
      SetFlag(Flag::kSf, CI(I1(), 0));
      SetFlag(Flag::kOf, CI(I1(), 0));
      SetFlag(Flag::kPf, Undef(I1()));
      SetFlag(Flag::kAf, CI(I1(), 0));
      state_->InvalidateCmp();
      break;
    }
    default:
      return Error(ErrorKind::kLift, "unhandled ALU mnemonic", instr.address);
  }

  if (instr.mnemonic != M::kCmp && instr.mnemonic != M::kTest) {
    // add/sub on a register with a pointer facet also produce a pointer
    // facet via GEP, aiding alias analysis (paper Sec. III-C).
    const bool ptr_arith =
        config().use_gep && dst.is_reg() && dst.size == 8 &&
        (instr.mnemonic == M::kAdd || instr.mnemonic == M::kSub) &&
        state_->gp[dst.reg.index][kGpPtr] != nullptr;
    L::Value* old_ptr =
        ptr_arith ? state_->gp[dst.reg.index][kGpPtr] : nullptr;
    DBLL_TRY_STATUS(WriteInt(instr, dst, res));
    if (ptr_arith) {
      L::Value* off = rhs;
      if (instr.mnemonic == M::kSub) off = b().CreateNeg(rhs);
      SetGpPtr(dst.reg, b().CreateGEP(I8(), old_ptr, off));
    }
  }
  return Status::Ok();
}

Status BodyLifter::LiftShift(const Instr& instr) {
  using M = Mnemonic;
  const Operand& dst = instr.ops[0];

  if (instr.mnemonic == M::kShld || instr.mnemonic == M::kShrd) {
    // Double-precision shifts map onto the funnel-shift intrinsics:
    //   shld dst, src, n == fshl(dst, src, n)
    //   shrd dst, src, n == fshr(src, dst, n)
    DBLL_TRY(L::Value * a, ReadInt(instr, dst));
    DBLL_TRY(L::Value * c, ReadInt(instr, instr.ops[1]));
    DBLL_TRY(L::Value * n_raw, ReadInt(instr, instr.ops[2]));
    L::Value* n = b().CreateZExt(n_raw, a->getType());
    const unsigned bits = a->getType()->getIntegerBitWidth();
    n = b().CreateAnd(n, CI(a->getType(), bits == 64 ? 63 : 31));
    L::Value* res =
        instr.mnemonic == M::kShld
            ? b().CreateIntrinsic(L::Intrinsic::fshl, {a->getType()},
                                  {a, c, n})
            : b().CreateIntrinsic(L::Intrinsic::fshr, {a->getType()},
                                  {c, a, n});
    FlagsZSP(res);
    SetFlag(Flag::kCf, Undef(I1()));
    SetFlag(Flag::kOf, Undef(I1()));
    SetFlag(Flag::kAf, Undef(I1()));
    state_->InvalidateCmp();
    return WriteInt(instr, dst, res);
  }

  DBLL_TRY(L::Value * lhs, ReadInt(instr, dst));
  DBLL_TRY(L::Value * amount_raw, ReadInt(instr, instr.ops[1]));
  L::Value* amount = amount_raw;
  if (amount->getType() != lhs->getType()) {
    amount = b().CreateZExt(amount, lhs->getType());
  }
  const unsigned bits = lhs->getType()->getIntegerBitWidth();
  amount = b().CreateAnd(amount, CI(lhs->getType(), bits == 64 ? 63 : 31));

  // x86 masks the count to 5/6 bits *before* comparing against the operand
  // width, so an 8/16-bit shift by up to 31 is architecturally defined
  // (shifting everything out). IR shifts are poison at count >= width;
  // perform narrow shifts in 32 bits.
  L::Value* shift_lhs = lhs;
  L::Value* shift_amount = amount;
  if (bits < 32 && (instr.mnemonic == M::kShl || instr.mnemonic == M::kShr ||
                    instr.mnemonic == M::kSar)) {
    shift_lhs = instr.mnemonic == M::kSar ? b().CreateSExt(lhs, I32())
                                          : b().CreateZExt(lhs, I32());
    shift_amount = b().CreateZExt(amount, I32());
  }

  L::Value* res = nullptr;
  switch (instr.mnemonic) {
    case M::kShl:
      res = b().CreateShl(shift_lhs, shift_amount);
      break;
    case M::kShr:
      res = b().CreateLShr(shift_lhs, shift_amount);
      break;
    case M::kSar:
      res = b().CreateAShr(shift_lhs, shift_amount);
      break;
    case M::kRol: {
      res = b().CreateIntrinsic(L::Intrinsic::fshl, {lhs->getType()},
                                {lhs, lhs, amount});
      break;
    }
    case M::kRor: {
      res = b().CreateIntrinsic(L::Intrinsic::fshr, {lhs->getType()},
                                {lhs, lhs, amount});
      break;
    }
    default:
      return Error(ErrorKind::kLift, "unhandled shift", instr.address);
  }
  if (res->getType() != lhs->getType()) {
    res = b().CreateTrunc(res, lhs->getType());
  }
  // Architectural shift flags: a zero count leaves every flag untouched;
  // non-zero counts set ZF/SF/PF from the result and CF from the last bit
  // shifted out (OF is only defined for one-bit shifts and stays undef).
  if (instr.mnemonic == M::kShl || instr.mnemonic == M::kShr ||
      instr.mnemonic == M::kSar) {
    // Liveness never kills flags across a variable-count shift (count == 0
    // preserves them), so whenever one of these flags is live after the
    // shift its old value below is a real definition, never a pruned undef.
    const bool any_live = !FlagDead(Flag::kZf) || !FlagDead(Flag::kSf) ||
                          !FlagDead(Flag::kPf) || !FlagDead(Flag::kCf);
    L::Value* zero_count =
        any_live ? b().CreateICmpEQ(
                       amount, L::Constant::getNullValue(amount->getType()))
                 : nullptr;
    L::Value* old_zf = FlagDead(Flag::kZf) ? nullptr : GetFlag(Flag::kZf);
    L::Value* old_sf = FlagDead(Flag::kSf) ? nullptr : GetFlag(Flag::kSf);
    L::Value* old_pf = FlagDead(Flag::kPf) ? nullptr : GetFlag(Flag::kPf);
    L::Value* old_cf = FlagDead(Flag::kCf) ? nullptr : GetFlag(Flag::kCf);
    FlagsZSP(res);
    SetFlagLazy(Flag::kZf, [&] {
      return b().CreateSelect(zero_count, old_zf, GetFlag(Flag::kZf));
    });
    SetFlagLazy(Flag::kSf, [&] {
      return b().CreateSelect(zero_count, old_sf, GetFlag(Flag::kSf));
    });
    SetFlagLazy(Flag::kPf, [&] {
      return b().CreateSelect(zero_count, old_pf, GetFlag(Flag::kPf));
    });
    SetFlagLazy(Flag::kCf, [&] {
      // CF: shl -> bit (bits - count); shr/sar -> bit (count - 1).
      L::Type* cf_ty = shift_lhs->getType();
      L::Value* wide_amount = shift_amount;
      const unsigned cf_bits = cf_ty->getIntegerBitWidth();
      L::Value* cf_bit_index =
          instr.mnemonic == M::kShl
              ? b().CreateSub(CI(cf_ty, bits), wide_amount)
              : b().CreateSub(wide_amount, CI(cf_ty, 1));
      // Guard the shift against a poison out-of-range index on count == 0
      // (shl path yields index == bits): clamp, then select the old flag.
      L::Value* clamped = b().CreateAnd(cf_bit_index, CI(cf_ty, cf_bits - 1));
      L::Value* cf_source =
          instr.mnemonic == M::kSar
              ? b().CreateAShr(shift_lhs, clamped)
              : b().CreateLShr(shift_lhs, clamped);
      L::Value* new_cf = b().CreateTrunc(cf_source, I1());
      return b().CreateSelect(zero_count, old_cf, new_cf);
    });
    SetFlag(Flag::kOf, Undef(I1()));
    SetFlag(Flag::kAf, Undef(I1()));
  } else {
    SetFlag(Flag::kCf, Undef(I1()));
    SetFlag(Flag::kOf, Undef(I1()));
  }
  state_->InvalidateCmp();
  DBLL_TRY_STATUS(WriteInt(instr, dst, res));
  return Status::Ok();
}

Status BodyLifter::LiftMovFamily(const Instr& instr) {
  using M = Mnemonic;
  switch (instr.mnemonic) {
    case M::kMov: {
      const Operand& dst = instr.ops[0];
      const Operand& src = instr.ops[1];
      // Full-width register-to-register moves copy every facet, including
      // the pointer facet.
      if (dst.is_reg() && src.is_reg() && dst.size == 8 &&
          dst.reg.cls == RegClass::kGp && src.reg.cls == RegClass::kGp) {
        for (int f = 0; f < kGpFacetCount; ++f) {
          state_->gp[dst.reg.index][f] = state_->gp[src.reg.index][f];
        }
        return Status::Ok();
      }
      DBLL_TRY(L::Value * value, ReadInt(instr, src));
      // Immediates stored to wider slots are sign-extended.
      if (src.is_imm() && src.size < dst.size) {
        value = CI(IntN(dst.size), static_cast<std::uint64_t>(src.imm));
      }
      return WriteInt(instr, dst, value);
    }
    case M::kMovzx: {
      DBLL_TRY(L::Value * value, ReadInt(instr, instr.ops[1]));
      return WriteInt(instr, instr.ops[0],
                      b().CreateZExt(value, IntN(instr.ops[0].size)));
    }
    case M::kMovsx:
    case M::kMovsxd: {
      DBLL_TRY(L::Value * value, ReadInt(instr, instr.ops[1]));
      return WriteInt(instr, instr.ops[0],
                      b().CreateSExt(value, IntN(instr.ops[0].size)));
    }
    case M::kLea: {
      const MemOperand& mem = instr.ops[1].mem;
      const Operand& dst = instr.ops[0];
      // Integer facet.
      L::Value* addr;
      if (mem.base == x86::kRip) {
        addr = CI(I64(), instr.target);
      } else {
        addr = CI(I64(), static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(mem.disp)));
        if (mem.base.valid()) addr = b().CreateAdd(GpBase(mem.base), addr);
        if (mem.index.valid()) {
          addr = b().CreateAdd(
              addr, b().CreateMul(GpBase(mem.index), CI(I64(), mem.scale)));
        }
      }
      L::Value* ptr = nullptr;
      if (config().use_gep && dst.size == 8) {
        // lea sets both facets (paper Sec. III-C).
        auto built = BuildPointer(instr, mem);
        if (built) ptr = *built;
      }
      if (dst.size == 8) {
        SetGpBase(dst.reg, addr);
      } else {
        DBLL_TRY_STATUS(WriteInt(instr, dst, b().CreateTrunc(addr, IntN(dst.size))));
      }
      if (ptr != nullptr) SetGpPtr(dst.reg, ptr);
      return Status::Ok();
    }
    case M::kXchg: {
      const Operand& a = instr.ops[0];
      const Operand& bop = instr.ops[1];
      if (a.is_reg() && bop.is_reg() && a.size == 8) {
        for (int f = 0; f < kGpFacetCount; ++f) {
          std::swap(state_->gp[a.reg.index][f], state_->gp[bop.reg.index][f]);
        }
        return Status::Ok();
      }
      DBLL_TRY(L::Value * av, ReadInt(instr, a));
      DBLL_TRY(L::Value * bv, ReadInt(instr, bop));
      DBLL_TRY_STATUS(WriteInt(instr, a, bv));
      return WriteInt(instr, bop, av);
    }
    case M::kCmovcc: {
      DBLL_TRY(L::Value * src, ReadInt(instr, instr.ops[1]));
      DBLL_TRY(L::Value * old, ReadInt(instr, instr.ops[0]));
      L::Value* cond = EvalCondIr(instr.cond);
      return WriteInt(instr, instr.ops[0], b().CreateSelect(cond, src, old));
    }
    case M::kSetcc: {
      L::Value* cond = EvalCondIr(instr.cond);
      return WriteInt(instr, instr.ops[0], b().CreateZExt(cond, I8()));
    }
    case M::kCbw: {
      L::Value* al = b().CreateTrunc(GpBase(x86::kRax), I8());
      Operand ax = Operand::RegOp(x86::kRax, 2);
      return WriteInt(instr, ax, b().CreateSExt(al, I16()));
    }
    case M::kCwde: {
      L::Value* ax = b().CreateTrunc(GpBase(x86::kRax), I16());
      Operand eax = Operand::RegOp(x86::kRax, 4);
      return WriteInt(instr, eax, b().CreateSExt(ax, I32()));
    }
    case M::kCdqe: {
      L::Value* eax = b().CreateTrunc(GpBase(x86::kRax), I32());
      SetGpBase(x86::kRax, b().CreateSExt(eax, I64()));
      return Status::Ok();
    }
    case M::kCwd:
    case M::kCdq:
    case M::kCqo: {
      const unsigned bytes =
          instr.mnemonic == M::kCwd ? 2 : (instr.mnemonic == M::kCdq ? 4 : 8);
      L::Value* value = GpBase(x86::kRax);
      if (bytes != 8) value = b().CreateTrunc(value, IntN(bytes));
      L::Value* fill = b().CreateAShr(value, CI(IntN(bytes), bytes * 8 - 1));
      Operand dx = Operand::RegOp(x86::kRdx, static_cast<std::uint8_t>(bytes));
      return WriteInt(instr, dx, fill);
    }
    default:
      return Error(ErrorKind::kLift, "unhandled mov-family mnemonic",
                   instr.address);
  }
}

Status BodyLifter::LiftMulDiv(const Instr& instr) {
  using M = Mnemonic;
  const Operand& src = instr.ops[0];
  const unsigned bytes = src.size;
  const unsigned bits = bytes * 8;
  DBLL_TRY(L::Value * rhs, ReadInt(instr, src));
  L::Value* rax = GpBase(x86::kRax);
  if (bytes != 8) rax = b().CreateTrunc(rax, IntN(bytes));

  if (instr.mnemonic == M::kMul || instr.mnemonic == M::kImul) {
    L::Type* wide = L::Type::getIntNTy(ctx(), bits * 2);
    const bool is_signed = instr.mnemonic == M::kImul;
    L::Value* wl = is_signed ? b().CreateSExt(rax, wide)
                             : b().CreateZExt(rax, wide);
    L::Value* wr = is_signed ? b().CreateSExt(rhs, wide)
                             : b().CreateZExt(rhs, wide);
    L::Value* wm = b().CreateMul(wl, wr);
    L::Value* lo = b().CreateTrunc(wm, IntN(bytes));
    L::Value* hi = b().CreateTrunc(b().CreateLShr(wm, CI(wide, bits)), IntN(bytes));
    Operand rax_op = Operand::RegOp(x86::kRax, static_cast<std::uint8_t>(bytes));
    Operand rdx_op = Operand::RegOp(x86::kRdx, static_cast<std::uint8_t>(bytes));
    DBLL_TRY_STATUS(WriteInt(instr, rax_op, lo));
    DBLL_TRY_STATUS(WriteInt(instr, rdx_op, hi));
    UndefFlags();
    return Status::Ok();
  }

  // div / idiv: rdx:rax / src.
  L::Type* wide = L::Type::getIntNTy(ctx(), bits * 2);
  L::Value* rdx = GpBase(x86::kRdx);
  if (bytes != 8) rdx = b().CreateTrunc(rdx, IntN(bytes));
  L::Value* dividend = b().CreateOr(
      b().CreateShl(b().CreateZExt(rdx, wide), CI(wide, bits)),
      b().CreateZExt(rax, wide));
  L::Value* divisor = instr.mnemonic == M::kIdiv ? b().CreateSExt(rhs, wide)
                                                 : b().CreateZExt(rhs, wide);
  L::Value* quot;
  L::Value* rem;
  if (instr.mnemonic == M::kIdiv) {
    quot = b().CreateSDiv(dividend, divisor);
    rem = b().CreateSRem(dividend, divisor);
  } else {
    quot = b().CreateUDiv(dividend, divisor);
    rem = b().CreateURem(dividend, divisor);
  }
  Operand rax_op = Operand::RegOp(x86::kRax, static_cast<std::uint8_t>(bytes));
  Operand rdx_op = Operand::RegOp(x86::kRdx, static_cast<std::uint8_t>(bytes));
  DBLL_TRY_STATUS(WriteInt(instr, rax_op, b().CreateTrunc(quot, IntN(bytes))));
  DBLL_TRY_STATUS(WriteInt(instr, rdx_op, b().CreateTrunc(rem, IntN(bytes))));
  UndefFlags();
  return Status::Ok();
}

Status BodyLifter::LiftStack(const Instr& instr) {
  using M = Mnemonic;
  switch (instr.mnemonic) {
    case M::kPush: {
      DBLL_TRY(L::Value * value, ReadInt(instr, instr.ops[0]));
      if (instr.ops[0].is_imm() || instr.ops[0].size < 8) {
        value = b().CreateSExt(value, I64());
      }
      if (instr.ops[0].size == 8 && !instr.ops[0].is_imm()) {
        // already i64
      }
      L::Value* new_rsp = b().CreateSub(GpBase(x86::kRsp), CI(I64(), 8));
      L::Value* new_ptr = b().CreateGEP(I8(), GpPtr(x86::kRsp),
                                        CI(I64(), static_cast<std::uint64_t>(-8)));
      SetGpBase(x86::kRsp, new_rsp);
      SetGpPtr(x86::kRsp, new_ptr);
      L::Value* slot = b().CreateBitCast(new_ptr, I64()->getPointerTo());
      b().CreateAlignedStore(value, slot, L::Align(8));
      return Status::Ok();
    }
    case M::kPop: {
      L::Value* old_ptr = GpPtr(x86::kRsp);
      L::Value* slot = b().CreateBitCast(old_ptr, I64()->getPointerTo());
      L::Value* value = b().CreateAlignedLoad(I64(), slot, L::Align(8));
      L::Value* new_rsp = b().CreateAdd(GpBase(x86::kRsp), CI(I64(), 8));
      L::Value* new_ptr = b().CreateGEP(I8(), old_ptr, CI(I64(), 8));
      SetGpBase(x86::kRsp, new_rsp);
      SetGpPtr(x86::kRsp, new_ptr);
      if (instr.ops[0].is_reg()) {
        SetGpBase(instr.ops[0].reg, value);
      } else {
        DBLL_TRY_STATUS(WriteInt(instr, instr.ops[0], value));
      }
      return Status::Ok();
    }
    case M::kLeave: {
      // mov rsp, rbp; pop rbp.
      for (int f = 0; f < kGpFacetCount; ++f) {
        state_->gp[x86::kRsp.index][f] = state_->gp[x86::kRbp.index][f];
      }
      L::Value* slot =
          b().CreateBitCast(GpPtr(x86::kRsp), I64()->getPointerTo());
      L::Value* value = b().CreateAlignedLoad(I64(), slot, L::Align(8));
      L::Value* new_ptr = b().CreateGEP(I8(), GpPtr(x86::kRsp), CI(I64(), 8));
      SetGpBase(x86::kRsp, b().CreateAdd(GpBase(x86::kRsp), CI(I64(), 8)));
      SetGpPtr(x86::kRsp, new_ptr);
      SetGpBase(x86::kRbp, value);
      return Status::Ok();
    }
    default:
      return Error(ErrorKind::kLift, "unhandled stack op", instr.address);
  }
}

Status BodyLifter::LiftSse(const Instr& instr) {
  using M = Mnemonic;
  const Operand& dst = instr.ops[0];
  const Operand& src = instr.op_count > 1 ? instr.ops[1] : instr.ops[0];

  // Helper: store a vector-typed value to a memory destination.
  auto store_vec = [&](L::Value* value, unsigned bytes) -> Status {
    L::Type* type = value->getType();
    DBLL_TRY(L::Value * ptr, TypedPointer(instr, dst.mem, type));
    b().CreateAlignedStore(
        value, ptr, L::Align(bytes == 16 ? LoadAlign(instr.mnemonic) : 1),
        config().volatile_memory);
    return Status::Ok();
  };

  // Scalar double/float arithmetic (paper Fig. 5 bottom).
  auto scalar_arith = [&](VecFacet facet) -> Status {
    DBLL_TRY(L::Value * a, ReadVec(instr, dst, facet, facet == kVecF64 ? 8 : 4));
    DBLL_TRY(L::Value * c,
             ReadVec(instr, src, facet, facet == kVecF64 ? 8 : 4));
    L::Value* res = nullptr;
    switch (instr.mnemonic) {
      case M::kAddsd: case M::kAddss: res = b().CreateFAdd(a, c); break;
      case M::kSubsd: case M::kSubss: res = b().CreateFSub(a, c); break;
      case M::kMulsd: case M::kMulss: res = b().CreateFMul(a, c); break;
      case M::kDivsd: case M::kDivss: res = b().CreateFDiv(a, c); break;
      // min/maxsd return the *source* on false/unordered compares (NaN,
      // signed zeros): result = (dst OP src) ? dst : src.
      case M::kMinsd: case M::kMinss:
        res = b().CreateSelect(b().CreateFCmpOLT(a, c), a, c);
        break;
      case M::kMaxsd: case M::kMaxss:
        res = b().CreateSelect(b().CreateFCmpOGT(a, c), a, c);
        break;
      case M::kSqrtsd: case M::kSqrtss:
        res = b().CreateUnaryIntrinsic(L::Intrinsic::sqrt, c);
        break;
      default:
        return Error(ErrorKind::kLift, "bad scalar arith", instr.address);
    }
    ApplyFastMath(res);
    // Insert into the untouched destination vector (upper preserved).
    const VecFacet vec_facet = facet == kVecF64 ? kVecV2F64 : kVecV4F32;
    L::Value* whole = VecRead(dst.reg, vec_facet);
    L::Value* merged = b().CreateInsertElement(whole, res, std::uint64_t{0});
    VecWrite(dst.reg, vec_facet, merged);
    if (config().facet_cache) state_->vec[dst.reg.index][facet] = res;
    return Status::Ok();
  };

  auto packed_arith = [&](VecFacet facet) -> Status {
    DBLL_TRY(L::Value * a, ReadVec(instr, dst, facet, 16));
    DBLL_TRY(L::Value * c, ReadVec(instr, src, facet, 16));
    L::Value* res = nullptr;
    switch (instr.mnemonic) {
      case M::kAddpd: case M::kAddps: res = b().CreateFAdd(a, c); break;
      case M::kSubpd: case M::kSubps: res = b().CreateFSub(a, c); break;
      case M::kMulpd: case M::kMulps: res = b().CreateFMul(a, c); break;
      case M::kDivpd: case M::kDivps: res = b().CreateFDiv(a, c); break;
      case M::kSqrtpd: case M::kSqrtps:
        res = b().CreateUnaryIntrinsic(L::Intrinsic::sqrt, c);
        break;
      case M::kPaddb: case M::kPaddw: case M::kPaddd: case M::kPaddq:
        res = b().CreateAdd(a, c);
        break;
      case M::kPsubb: case M::kPsubw: case M::kPsubd: case M::kPsubq:
        res = b().CreateSub(a, c);
        break;
      default:
        return Error(ErrorKind::kLift, "bad packed arith", instr.address);
    }
    ApplyFastMath(res);
    VecWrite(dst.reg, facet, res);
    return Status::Ok();
  };

  auto bitwise = [&](bool negate_first) -> Status {
    DBLL_TRY(L::Value * a, ReadVec(instr, dst, kVecV2I64, 16));
    DBLL_TRY(L::Value * c, ReadVec(instr, src, kVecV2I64, 16));
    if (negate_first) a = b().CreateNot(a);
    L::Value* res = nullptr;
    switch (instr.mnemonic) {
      case M::kAndps: case M::kAndpd: case M::kPand:
      case M::kAndnps: case M::kAndnpd: case M::kPandn:
        res = b().CreateAnd(a, c);
        break;
      case M::kOrps: case M::kOrpd: case M::kPor:
        res = b().CreateOr(a, c);
        break;
      case M::kXorps: case M::kXorpd: case M::kPxor:
        res = b().CreateXor(a, c);
        break;
      default:
        return Error(ErrorKind::kLift, "bad bitwise", instr.address);
    }
    VecWrite(dst.reg, kVecV2I64, res);
    return Status::Ok();
  };

  switch (instr.mnemonic) {
    // --- moves ---
    case M::kMovss:
    case M::kMovsdX: {
      const VecFacet sf = instr.mnemonic == M::kMovss ? kVecF32 : kVecF64;
      const VecFacet vf = instr.mnemonic == M::kMovss ? kVecV4F32 : kVecV2F64;
      if (dst.is_mem()) {
        L::Value* value = VecRead(src.reg, sf);
        DBLL_TRY(L::Value * ptr, TypedPointer(instr, dst.mem, value->getType()));
        b().CreateAlignedStore(value, ptr, L::Align(1),
                               config().volatile_memory);
        return Status::Ok();
      }
      if (src.is_mem()) {
        // Load form zeroes the untouched part (paper Sec. III-C.2).
        DBLL_TRY(L::Value * value,
                 ReadVec(instr, src, sf, sf == kVecF64 ? 8 : 4));
        VecWrite(dst.reg, sf, value);
        return Status::Ok();
      }
      // Register form preserves the upper part.
      L::Value* scalar = VecRead(src.reg, sf);
      L::Value* whole = VecRead(dst.reg, vf);
      L::Value* merged =
          b().CreateInsertElement(whole, scalar, std::uint64_t{0});
      VecWrite(dst.reg, vf, merged);
      if (config().facet_cache) state_->vec[dst.reg.index][sf] = scalar;
      return Status::Ok();
    }
    case M::kMovaps: case M::kMovapd: case M::kMovups: case M::kMovupd:
    case M::kMovdqa: case M::kMovdqu: {
      if (dst.is_mem()) {
        // Prefer a typed store when a facet is cached; default to v2i64.
        L::Value* value = VecRead(src.reg, kVecV2I64);
        return store_vec(value, 16);
      }
      if (src.is_mem()) {
        const VecFacet facet =
            (instr.mnemonic == M::kMovdqa || instr.mnemonic == M::kMovdqu)
                ? kVecV2I64
                : (instr.mnemonic == M::kMovaps || instr.mnemonic == M::kMovups
                       ? kVecV4F32
                       : kVecV2F64);
        DBLL_TRY(L::Value * value, ReadVec(instr, src, facet, 16));
        VecWrite(dst.reg, facet, value);
        return Status::Ok();
      }
      // Register move: copy all facets.
      for (int f = 0; f < kVecFacetCount; ++f) {
        state_->vec[dst.reg.index][f] = state_->vec[src.reg.index][f];
      }
      return Status::Ok();
    }
    case M::kMovq:
    case M::kMovd: {
      const unsigned bytes = instr.mnemonic == M::kMovq ? 8 : 4;
      if (dst.is_reg() && dst.reg.cls == RegClass::kVec) {
        L::Value* low = nullptr;
        if (src.is_reg() && src.reg.cls == RegClass::kVec) {
          low = b().CreateExtractElement(VecRead(src.reg, kVecV2I64),
                                         std::uint64_t{0});
        } else {
          DBLL_TRY(L::Value * v, ReadInt(instr, src));
          low = v;
        }
        if (bytes == 4) low = b().CreateZExt(low, I64());
        // Zero the untouched part via insert into a zero vector.
        L::Value* vec = b().CreateInsertElement(
            L::Constant::getNullValue(FacetType(kVecV2I64)), low,
            std::uint64_t{0});
        VecWrite(dst.reg, kVecV2I64, vec);
        return Status::Ok();
      }
      // Store / GP destination.
      L::Value* low = b().CreateExtractElement(VecRead(src.reg, kVecV2I64),
                                               std::uint64_t{0});
      if (bytes == 4) low = b().CreateTrunc(low, I32());
      return WriteInt(instr, dst, low);
    }
    case M::kMovlps: case M::kMovlpd: {
      if (dst.is_mem()) {
        L::Value* scalar = VecRead(src.reg, kVecF64);
        DBLL_TRY(L::Value * ptr, TypedPointer(instr, dst.mem, F64T()));
        b().CreateAlignedStore(scalar, ptr, L::Align(1),
                               config().volatile_memory);
        return Status::Ok();
      }
      DBLL_TRY(L::Value * value, ReadVec(instr, src, kVecF64, 8));
      L::Value* whole = VecRead(dst.reg, kVecV2F64);
      VecWrite(dst.reg, kVecV2F64,
               b().CreateInsertElement(whole, value, std::uint64_t{0}));
      return Status::Ok();
    }
    case M::kMovhps: case M::kMovhpd: {
      if (dst.is_mem()) {
        L::Value* high = b().CreateExtractElement(VecRead(src.reg, kVecV2F64),
                                                  std::uint64_t{1});
        DBLL_TRY(L::Value * ptr, TypedPointer(instr, dst.mem, F64T()));
        b().CreateAlignedStore(high, ptr, L::Align(1),
                               config().volatile_memory);
        return Status::Ok();
      }
      DBLL_TRY(L::Value * value, ReadVec(instr, src, kVecF64, 8));
      L::Value* whole = VecRead(dst.reg, kVecV2F64);
      VecWrite(dst.reg, kVecV2F64,
               b().CreateInsertElement(whole, value, std::uint64_t{1}));
      return Status::Ok();
    }
    case M::kMovhlps: {
      L::Value* a = VecRead(dst.reg, kVecV2F64);
      L::Value* c = VecRead(src.reg, kVecV2F64);
      VecWrite(dst.reg, kVecV2F64,
               b().CreateShuffleVector(c, a, L::ArrayRef<int>{1, 3}));
      return Status::Ok();
    }
    case M::kMovlhps: {
      L::Value* a = VecRead(dst.reg, kVecV2F64);
      L::Value* c = VecRead(src.reg, kVecV2F64);
      VecWrite(dst.reg, kVecV2F64,
               b().CreateShuffleVector(a, c, L::ArrayRef<int>{0, 2}));
      return Status::Ok();
    }

    // --- arithmetic ---
    case M::kAddsd: case M::kSubsd: case M::kMulsd: case M::kDivsd:
    case M::kMinsd: case M::kMaxsd: case M::kSqrtsd:
      return scalar_arith(kVecF64);
    case M::kAddss: case M::kSubss: case M::kMulss: case M::kDivss:
    case M::kMinss: case M::kMaxss: case M::kSqrtss:
      return scalar_arith(kVecF32);
    case M::kAddpd: case M::kSubpd: case M::kMulpd: case M::kDivpd:
    case M::kSqrtpd:
      return packed_arith(kVecV2F64);
    case M::kAddps: case M::kSubps: case M::kMulps: case M::kDivps:
    case M::kSqrtps:
      return packed_arith(kVecV4F32);
    case M::kPaddb: case M::kPsubb:
    case M::kPaddw: case M::kPsubw: {
      // Byte/word lanes have no named facet: go through an explicit bitcast
      // so carries stay inside the lanes.
      const bool is_byte =
          instr.mnemonic == M::kPaddb || instr.mnemonic == M::kPsubb;
      L::Type* vec_ty = L::FixedVectorType::get(is_byte ? I8() : I16(),
                                                is_byte ? 16 : 8);
      DBLL_TRY(L::Value * s, ReadVec(instr, src, kVecV2I64, 16));
      L::Value* a = b().CreateBitCast(VecRead(dst.reg, kVecV2I64), vec_ty);
      L::Value* c = b().CreateBitCast(s, vec_ty);
      const bool is_add =
          instr.mnemonic == M::kPaddb || instr.mnemonic == M::kPaddw;
      L::Value* res = is_add ? b().CreateAdd(a, c) : b().CreateSub(a, c);
      VecWrite(dst.reg, kVecV2I64,
               b().CreateBitCast(res, FacetType(kVecV2I64)));
      return Status::Ok();
    }
    case M::kPaddd: case M::kPsubd:
      return packed_arith(kVecV4I32);
    case M::kPaddq: case M::kPsubq:
      return packed_arith(kVecV2I64);
    case M::kAndps: case M::kAndpd: case M::kPand:
      return bitwise(false);
    case M::kAndnps: case M::kAndnpd: case M::kPandn:
      return bitwise(true);
    case M::kOrps: case M::kOrpd: case M::kPor:
    case M::kXorps: case M::kXorpd: case M::kPxor:
      return bitwise(false);

    // --- shuffles ---
    case M::kUnpcklpd: case M::kPunpcklqdq: {
      DBLL_TRY(L::Value * c, ReadVec(instr, src, kVecV2F64, 16));
      L::Value* a = VecRead(dst.reg, kVecV2F64);
      VecWrite(dst.reg, kVecV2F64,
               b().CreateShuffleVector(a, c, L::ArrayRef<int>{0, 2}));
      return Status::Ok();
    }
    case M::kUnpckhpd: case M::kPunpckhqdq: {
      DBLL_TRY(L::Value * c, ReadVec(instr, src, kVecV2F64, 16));
      L::Value* a = VecRead(dst.reg, kVecV2F64);
      VecWrite(dst.reg, kVecV2F64,
               b().CreateShuffleVector(a, c, L::ArrayRef<int>{1, 3}));
      return Status::Ok();
    }
    case M::kUnpcklps: {
      DBLL_TRY(L::Value * c, ReadVec(instr, src, kVecV4F32, 16));
      L::Value* a = VecRead(dst.reg, kVecV4F32);
      VecWrite(dst.reg, kVecV4F32,
               b().CreateShuffleVector(a, c, L::ArrayRef<int>{0, 4, 1, 5}));
      return Status::Ok();
    }
    case M::kUnpckhps: {
      DBLL_TRY(L::Value * c, ReadVec(instr, src, kVecV4F32, 16));
      L::Value* a = VecRead(dst.reg, kVecV4F32);
      VecWrite(dst.reg, kVecV4F32,
               b().CreateShuffleVector(a, c, L::ArrayRef<int>{2, 6, 3, 7}));
      return Status::Ok();
    }
    case M::kShufpd: {
      DBLL_TRY(L::Value * c, ReadVec(instr, src, kVecV2F64, 16));
      L::Value* a = VecRead(dst.reg, kVecV2F64);
      const int imm = static_cast<int>(instr.ops[2].imm);
      VecWrite(dst.reg, kVecV2F64,
               b().CreateShuffleVector(
                   a, c, L::ArrayRef<int>{imm & 1, 2 + ((imm >> 1) & 1)}));
      return Status::Ok();
    }
    case M::kShufps: {
      DBLL_TRY(L::Value * c, ReadVec(instr, src, kVecV4F32, 16));
      L::Value* a = VecRead(dst.reg, kVecV4F32);
      const int imm = static_cast<int>(instr.ops[2].imm);
      VecWrite(dst.reg, kVecV4F32,
               b().CreateShuffleVector(
                   a, c,
                   L::ArrayRef<int>{imm & 3, (imm >> 2) & 3,
                                    4 + ((imm >> 4) & 3), 4 + ((imm >> 6) & 3)}));
      return Status::Ok();
    }
    case M::kPshufd: {
      DBLL_TRY(L::Value * c, ReadVec(instr, src, kVecV4I32, 16));
      const int imm = static_cast<int>(instr.ops[2].imm);
      VecWrite(dst.reg, kVecV4I32,
               b().CreateShuffleVector(
                   c, c,
                   L::ArrayRef<int>{imm & 3, (imm >> 2) & 3, (imm >> 4) & 3,
                                    (imm >> 6) & 3}));
      return Status::Ok();
    }

    // --- compares / conversions ---
    case M::kUcomisd: case M::kComisd:
    case M::kUcomiss: case M::kComiss: {
      const bool is_double =
          instr.mnemonic == M::kUcomisd || instr.mnemonic == M::kComisd;
      const VecFacet facet = is_double ? kVecF64 : kVecF32;
      DBLL_TRY(L::Value * a, ReadVec(instr, dst, facet, is_double ? 8 : 4));
      DBLL_TRY(L::Value * c, ReadVec(instr, src, facet, is_double ? 8 : 4));
      // ZF = unordered-or-equal, PF = unordered, CF = unordered-or-less.
      SetFlagLazy(Flag::kZf, [&] { return b().CreateFCmpUEQ(a, c); });
      SetFlagLazy(Flag::kPf, [&] { return b().CreateFCmpUNO(a, c); });
      SetFlagLazy(Flag::kCf, [&] { return b().CreateFCmpULT(a, c); });
      SetFlag(Flag::kOf, CI(I1(), 0));
      SetFlag(Flag::kSf, CI(I1(), 0));
      SetFlag(Flag::kAf, CI(I1(), 0));
      state_->InvalidateCmp();
      return Status::Ok();
    }
    case M::kCvtsi2sd: case M::kCvtsi2ss: {
      DBLL_TRY(L::Value * v, ReadInt(instr, src));
      const bool is_double = instr.mnemonic == M::kCvtsi2sd;
      L::Value* fp = b().CreateSIToFP(v, is_double ? F64T() : F32T());
      const VecFacet vf = is_double ? kVecV2F64 : kVecV4F32;
      L::Value* whole = VecRead(dst.reg, vf);
      VecWrite(dst.reg, vf,
               b().CreateInsertElement(whole, fp, std::uint64_t{0}));
      if (config().facet_cache) {
        state_->vec[dst.reg.index][is_double ? kVecF64 : kVecF32] = fp;
      }
      return Status::Ok();
    }
    case M::kCvttsd2si: case M::kCvttss2si: {
      // fptosi is poison for out-of-range inputs, but the hardware returns
      // the integer-indefinite value; the x86 intrinsics model this exactly.
      const bool is_double = instr.mnemonic == M::kCvttsd2si;
      const bool is_64 = instr.ops[0].size == 8;
      L::Value* v = nullptr;
      if (src.is_mem()) {
        DBLL_TRY(L::Value * scalar,
                 ReadVec(instr, src, is_double ? kVecF64 : kVecF32,
                         is_double ? 8 : 4));
        v = b().CreateInsertElement(
            Undef(FacetType(is_double ? kVecV2F64 : kVecV4F32)), scalar,
            std::uint64_t{0});
      } else {
        v = VecRead(src.reg, is_double ? kVecV2F64 : kVecV4F32);
      }
      L::Intrinsic::ID id;
      if (is_double) {
        id = is_64 ? L::Intrinsic::x86_sse2_cvttsd2si64
                   : L::Intrinsic::x86_sse2_cvttsd2si;
      } else {
        id = is_64 ? L::Intrinsic::x86_sse_cvttss2si64
                   : L::Intrinsic::x86_sse_cvttss2si;
      }
      return WriteInt(instr, dst, b().CreateIntrinsic(id, {}, {v}));
    }
    case M::kCvtss2sd: {
      DBLL_TRY(L::Value * v, ReadVec(instr, src, kVecF32, 4));
      L::Value* d = b().CreateFPExt(v, F64T());
      L::Value* whole = VecRead(dst.reg, kVecV2F64);
      VecWrite(dst.reg, kVecV2F64,
               b().CreateInsertElement(whole, d, std::uint64_t{0}));
      if (config().facet_cache) state_->vec[dst.reg.index][kVecF64] = d;
      return Status::Ok();
    }
    case M::kCvtsd2ss: {
      DBLL_TRY(L::Value * v, ReadVec(instr, src, kVecF64, 8));
      L::Value* f = b().CreateFPTrunc(v, F32T());
      L::Value* whole = VecRead(dst.reg, kVecV4F32);
      VecWrite(dst.reg, kVecV4F32,
               b().CreateInsertElement(whole, f, std::uint64_t{0}));
      if (config().facet_cache) state_->vec[dst.reg.index][kVecF32] = f;
      return Status::Ok();
    }
    case M::kCvtps2pd: {
      DBLL_TRY(L::Value * v, ReadVec(instr, src, kVecV4F32, 8));
      L::Value* low = b().CreateShuffleVector(v, v, L::ArrayRef<int>{0, 1});
      VecWrite(dst.reg, kVecV2F64, b().CreateFPExt(low, FacetType(kVecV2F64)));
      return Status::Ok();
    }
    case M::kCvtpd2ps: {
      DBLL_TRY(L::Value * v, ReadVec(instr, src, kVecV2F64, 16));
      L::Value* trunc = b().CreateFPTrunc(
          v, L::FixedVectorType::get(F32T(), 2));
      L::Value* zero = L::Constant::getNullValue(
          L::FixedVectorType::get(F32T(), 2));
      VecWrite(dst.reg, kVecV4F32,
               b().CreateShuffleVector(trunc, zero, L::ArrayRef<int>{0, 1, 2, 3}));
      return Status::Ok();
    }
    case M::kCvtdq2pd: {
      DBLL_TRY(L::Value * v, ReadVec(instr, src, kVecV4I32, 8));
      L::Value* low = b().CreateShuffleVector(v, v, L::ArrayRef<int>{0, 1});
      VecWrite(dst.reg, kVecV2F64,
               b().CreateSIToFP(low, FacetType(kVecV2F64)));
      return Status::Ok();
    }
    case M::kCvtdq2ps: {
      DBLL_TRY(L::Value * v, ReadVec(instr, src, kVecV4I32, 16));
      VecWrite(dst.reg, kVecV4F32,
               b().CreateSIToFP(v, FacetType(kVecV4F32)));
      return Status::Ok();
    }

    // --- SSE2 integer extension pack ---
    case M::kPcmpeqb: case M::kPcmpeqw: case M::kPcmpeqd:
    case M::kPcmpgtb: case M::kPcmpgtw: case M::kPcmpgtd: {
      const int lane_bits =
          (instr.mnemonic == M::kPcmpeqb || instr.mnemonic == M::kPcmpgtb)
              ? 8
              : (instr.mnemonic == M::kPcmpeqw ||
                 instr.mnemonic == M::kPcmpgtw)
                    ? 16
                    : 32;
      L::Type* vec_ty = L::FixedVectorType::get(
          L::Type::getIntNTy(ctx(), lane_bits), 128 / lane_bits);
      DBLL_TRY(L::Value * s, ReadVec(instr, src, kVecV2I64, 16));
      L::Value* a = b().CreateBitCast(VecRead(dst.reg, kVecV2I64), vec_ty);
      L::Value* c = b().CreateBitCast(s, vec_ty);
      const bool is_eq = instr.mnemonic == M::kPcmpeqb ||
                         instr.mnemonic == M::kPcmpeqw ||
                         instr.mnemonic == M::kPcmpeqd;
      L::Value* mask = is_eq ? b().CreateICmpEQ(a, c) : b().CreateICmpSGT(a, c);
      VecWrite(dst.reg, kVecV2I64,
               b().CreateBitCast(b().CreateSExt(mask, vec_ty),
                                 FacetType(kVecV2I64)));
      return Status::Ok();
    }
    case M::kPmullw: {
      L::Type* vec_ty = L::FixedVectorType::get(I16(), 8);
      DBLL_TRY(L::Value * s, ReadVec(instr, src, kVecV2I64, 16));
      L::Value* a = b().CreateBitCast(VecRead(dst.reg, kVecV2I64), vec_ty);
      L::Value* c = b().CreateBitCast(s, vec_ty);
      VecWrite(dst.reg, kVecV2I64,
               b().CreateBitCast(b().CreateMul(a, c), FacetType(kVecV2I64)));
      return Status::Ok();
    }
    case M::kPmuludq: {
      // Even 32-bit lanes multiplied into 64-bit results: mask the high
      // halves and use a 64-bit lane multiply.
      DBLL_TRY(L::Value * s, ReadVec(instr, src, kVecV2I64, 16));
      L::Value* a = VecRead(dst.reg, kVecV2I64);
      L::Value* mask = L::ConstantVector::getSplat(
          L::ElementCount::getFixed(2), CI(I64(), 0xffffffffull));
      VecWrite(dst.reg, kVecV2I64,
               b().CreateMul(b().CreateAnd(a, mask), b().CreateAnd(s, mask)));
      return Status::Ok();
    }
    case M::kPminub: case M::kPmaxub:
    case M::kPminsw: case M::kPmaxsw: {
      const bool is_byte = instr.mnemonic == M::kPminub ||
                           instr.mnemonic == M::kPmaxub;
      const bool is_min = instr.mnemonic == M::kPminub ||
                          instr.mnemonic == M::kPminsw;
      L::Type* vec_ty = L::FixedVectorType::get(is_byte ? I8() : I16(),
                                                is_byte ? 16 : 8);
      DBLL_TRY(L::Value * s, ReadVec(instr, src, kVecV2I64, 16));
      L::Value* a = b().CreateBitCast(VecRead(dst.reg, kVecV2I64), vec_ty);
      L::Value* c = b().CreateBitCast(s, vec_ty);
      L::Value* cmp = is_byte
                          ? (is_min ? b().CreateICmpULT(a, c)
                                    : b().CreateICmpUGT(a, c))
                          : (is_min ? b().CreateICmpSLT(a, c)
                                    : b().CreateICmpSGT(a, c));
      VecWrite(dst.reg, kVecV2I64,
               b().CreateBitCast(b().CreateSelect(cmp, a, c),
                                 FacetType(kVecV2I64)));
      return Status::Ok();
    }
    case M::kPavgb: case M::kPavgw: {
      const bool is_byte = instr.mnemonic == M::kPavgb;
      L::Type* narrow = L::FixedVectorType::get(is_byte ? I8() : I16(),
                                                is_byte ? 16 : 8);
      L::Type* wide = L::FixedVectorType::get(is_byte ? I16() : I32(),
                                              is_byte ? 16 : 8);
      DBLL_TRY(L::Value * s, ReadVec(instr, src, kVecV2I64, 16));
      L::Value* a = b().CreateZExt(
          b().CreateBitCast(VecRead(dst.reg, kVecV2I64), narrow), wide);
      L::Value* c =
          b().CreateZExt(b().CreateBitCast(s, narrow), wide);
      L::Value* one = L::ConstantInt::get(wide, 1);
      L::Value* avg =
          b().CreateLShr(b().CreateAdd(b().CreateAdd(a, c), one), one);
      VecWrite(dst.reg, kVecV2I64,
               b().CreateBitCast(b().CreateTrunc(avg, narrow),
                                 FacetType(kVecV2I64)));
      return Status::Ok();
    }
    case M::kPsllw: case M::kPslld: case M::kPsllq:
    case M::kPsrlw: case M::kPsrld: case M::kPsrlq:
    case M::kPsraw: case M::kPsrad: {
      const int lane_bits =
          (instr.mnemonic == M::kPsllw || instr.mnemonic == M::kPsrlw ||
           instr.mnemonic == M::kPsraw)
              ? 16
              : (instr.mnemonic == M::kPslld || instr.mnemonic == M::kPsrld ||
                 instr.mnemonic == M::kPsrad)
                    ? 32
                    : 64;
      L::Type* vec_ty = L::FixedVectorType::get(
          L::Type::getIntNTy(ctx(), lane_bits), 128 / lane_bits);
      // Count: immediate or the low 64 bits of an xmm/m128 operand.
      L::Value* count = nullptr;
      if (src.is_imm()) {
        count = CI(I64(), static_cast<std::uint64_t>(src.imm));
      } else {
        DBLL_TRY(L::Value * cv, ReadVec(instr, src, kVecV2I64, 16));
        count = b().CreateExtractElement(cv, std::uint64_t{0});
      }
      L::Value* a = b().CreateBitCast(VecRead(dst.reg, kVecV2I64), vec_ty);
      // Architectural semantics: counts >= lane width zero the result (or
      // replicate the sign); clamp to keep the IR shift defined.
      L::Value* oob = b().CreateICmpUGE(count, CI(I64(), lane_bits));
      const bool is_arith = instr.mnemonic == M::kPsraw ||
                            instr.mnemonic == M::kPsrad;
      L::Value* clamped = b().CreateSelect(
          oob, CI(I64(), is_arith ? lane_bits - 1 : 0), count);
      L::Value* splat = b().CreateVectorSplat(
          static_cast<unsigned>(128 / lane_bits),
          b().CreateTrunc(clamped, L::Type::getIntNTy(ctx(), lane_bits)));
      L::Value* res;
      switch (instr.mnemonic) {
        case M::kPsllw: case M::kPslld: case M::kPsllq:
          res = b().CreateShl(a, splat);
          break;
        case M::kPsraw: case M::kPsrad:
          res = b().CreateAShr(a, splat);
          break;
        default:
          res = b().CreateLShr(a, splat);
          break;
      }
      if (!is_arith) {
        L::Value* zero = L::Constant::getNullValue(vec_ty);
        res = b().CreateSelect(oob, zero, res);
      }
      VecWrite(dst.reg, kVecV2I64,
               b().CreateBitCast(res, FacetType(kVecV2I64)));
      return Status::Ok();
    }
    case M::kPslldq: case M::kPsrldq: {
      const int count = static_cast<int>(instr.ops[1].imm);
      L::Type* bytes_ty = L::FixedVectorType::get(I8(), 16);
      L::Value* a = b().CreateBitCast(VecRead(dst.reg, kVecV2I64), bytes_ty);
      L::Value* zero = L::Constant::getNullValue(bytes_ty);
      int mask[16];
      for (int i = 0; i < 16; ++i) {
        // Shuffle of (a, zero): indices 0..15 pick from a, 16.. pick zero.
        const int from = instr.mnemonic == M::kPslldq ? i - count : i + count;
        mask[i] = (from >= 0 && from < 16) ? from : 16;
      }
      VecWrite(dst.reg, kVecV2I64,
               b().CreateBitCast(b().CreateShuffleVector(a, zero, mask),
                                 FacetType(kVecV2I64)));
      return Status::Ok();
    }
    case M::kPunpcklbw: case M::kPunpcklwd: case M::kPunpckldq:
    case M::kPunpckhbw: case M::kPunpckhwd: case M::kPunpckhdq: {
      const bool high = instr.mnemonic == M::kPunpckhbw ||
                        instr.mnemonic == M::kPunpckhwd ||
                        instr.mnemonic == M::kPunpckhdq;
      const int lane_bits =
          (instr.mnemonic == M::kPunpcklbw || instr.mnemonic == M::kPunpckhbw)
              ? 8
              : (instr.mnemonic == M::kPunpcklwd ||
                 instr.mnemonic == M::kPunpckhwd)
                    ? 16
                    : 32;
      const int lanes = 128 / lane_bits;
      L::Type* vec_ty = L::FixedVectorType::get(
          L::Type::getIntNTy(ctx(), lane_bits), lanes);
      DBLL_TRY(L::Value * s, ReadVec(instr, src, kVecV2I64, 16));
      L::Value* a = b().CreateBitCast(VecRead(dst.reg, kVecV2I64), vec_ty);
      L::Value* c = b().CreateBitCast(s, vec_ty);
      std::vector<int> mask;
      const int base = high ? lanes / 2 : 0;
      for (int i = 0; i < lanes / 2; ++i) {
        mask.push_back(base + i);
        mask.push_back(lanes + base + i);
      }
      VecWrite(dst.reg, kVecV2I64,
               b().CreateBitCast(b().CreateShuffleVector(a, c, mask),
                                 FacetType(kVecV2I64)));
      return Status::Ok();
    }
    case M::kPmovmskb: case M::kMovmskps: case M::kMovmskpd: {
      const int lane_bits = instr.mnemonic == M::kPmovmskb
                                ? 8
                                : instr.mnemonic == M::kMovmskps ? 32 : 64;
      const int lanes = 128 / lane_bits;
      L::Type* vec_ty = L::FixedVectorType::get(
          L::Type::getIntNTy(ctx(), lane_bits), lanes);
      L::Value* v = b().CreateBitCast(VecRead(src.reg, kVecV2I64), vec_ty);
      L::Value* signs =
          b().CreateICmpSLT(v, L::Constant::getNullValue(vec_ty));
      L::Value* bits = b().CreateBitCast(
          signs, L::Type::getIntNTy(ctx(), static_cast<unsigned>(lanes)));
      return WriteInt(instr, dst, b().CreateZExt(bits, I32()));
    }
    case M::kCmpss: case M::kCmpsd: {
      const bool is_double = instr.mnemonic == M::kCmpsd;
      const VecFacet facet = is_double ? kVecF64 : kVecF32;
      DBLL_TRY(L::Value * a, ReadVec(instr, dst, facet, is_double ? 8 : 4));
      DBLL_TRY(L::Value * c, ReadVec(instr, src, facet, is_double ? 8 : 4));
      L::Value* cond = nullptr;
      switch (instr.ops[2].imm & 7) {
        case 0: cond = b().CreateFCmpOEQ(a, c); break;
        case 1: cond = b().CreateFCmpOLT(a, c); break;
        case 2: cond = b().CreateFCmpOLE(a, c); break;
        case 3: cond = b().CreateFCmpUNO(a, c); break;
        case 4: cond = b().CreateFCmpUNE(a, c); break;
        case 5: cond = b().CreateFCmpUGE(a, c); break;
        case 6: cond = b().CreateFCmpUGT(a, c); break;
        default: cond = b().CreateFCmpORD(a, c); break;
      }
      L::Type* lane = is_double ? I64() : I32();
      L::Value* bitmask = b().CreateSExt(cond, lane);
      L::Value* whole = VecRead(dst.reg, is_double ? kVecV2I64 : kVecV4I32);
      VecWrite(dst.reg, is_double ? kVecV2I64 : kVecV4I32,
               b().CreateInsertElement(whole, bitmask, std::uint64_t{0}));
      return Status::Ok();
    }
    case M::kCmpps: case M::kCmppd: {
      const bool is_double = instr.mnemonic == M::kCmppd;
      const VecFacet facet = is_double ? kVecV2F64 : kVecV4F32;
      DBLL_TRY(L::Value * c, ReadVec(instr, src, facet, 16));
      L::Value* a = VecRead(dst.reg, facet);
      L::Value* cond = nullptr;
      switch (instr.ops[2].imm & 7) {
        case 0: cond = b().CreateFCmpOEQ(a, c); break;
        case 1: cond = b().CreateFCmpOLT(a, c); break;
        case 2: cond = b().CreateFCmpOLE(a, c); break;
        case 3: cond = b().CreateFCmpUNO(a, c); break;
        case 4: cond = b().CreateFCmpUNE(a, c); break;
        case 5: cond = b().CreateFCmpUGE(a, c); break;
        case 6: cond = b().CreateFCmpUGT(a, c); break;
        default: cond = b().CreateFCmpORD(a, c); break;
      }
      L::Type* int_vec =
          is_double ? FacetType(kVecV2I64) : FacetType(kVecV4I32);
      VecWrite(dst.reg, is_double ? kVecV2I64 : kVecV4I32,
               b().CreateSExt(cond, int_vec));
      return Status::Ok();
    }
    case M::kCvtss2si: case M::kCvtsd2si: {
      // Uses the current rounding mode (round-to-nearest-even by default);
      // the x86-specific intrinsics model this exactly.
      const bool is_double = instr.mnemonic == M::kCvtsd2si;
      const bool is_64 = instr.ops[0].size == 8;
      L::Value* v = nullptr;
      if (src.is_mem()) {
        // The memory form reads only the scalar; widen it into a vector for
        // the intrinsic.
        DBLL_TRY(L::Value * scalar,
                 ReadVec(instr, src, is_double ? kVecF64 : kVecF32,
                         is_double ? 8 : 4));
        v = b().CreateInsertElement(
            Undef(FacetType(is_double ? kVecV2F64 : kVecV4F32)), scalar,
            std::uint64_t{0});
      } else {
        v = VecRead(src.reg, is_double ? kVecV2F64 : kVecV4F32);
      }
      L::Intrinsic::ID id;
      if (is_double) {
        id = is_64 ? L::Intrinsic::x86_sse2_cvtsd2si64
                   : L::Intrinsic::x86_sse2_cvtsd2si;
      } else {
        id = is_64 ? L::Intrinsic::x86_sse_cvtss2si64
                   : L::Intrinsic::x86_sse_cvtss2si;
      }
      L::Value* result = b().CreateIntrinsic(id, {}, {v});
      return WriteInt(instr, dst, result);
    }

    default:
      return Error(ErrorKind::kUnsupported,
                   std::string("cannot lift ") +
                       x86::MnemonicName(instr.mnemonic),
                   instr.address);
  }
}

Status BodyLifter::LiftCall(const Instr& instr) {
  if (!config().lift_calls) {
    return Error(ErrorKind::kUnsupported, "calls disabled by configuration",
                 instr.address);
  }
  if (instr.op_count != 1 || !instr.ops[0].is_imm()) {
    return Error(ErrorKind::kUnsupported,
                 "indirect calls cannot be lifted", instr.address);
  }
  if (call_depth_ + 1 > config().max_call_depth) {
    return Error(ErrorKind::kResourceLimit, "call depth limit exceeded",
                 instr.address);
  }
  DBLL_TRY(L::Function * callee,
           parent_.GetOrDeclare(instr.target, call_depth_ + 1));

  // Pass the argument registers; the LLVM inliner decides about inlining
  // (paper Sec. III-B).
  std::vector<L::Value*> args;
  for (int i = 0; i < kGpTransferRegs; ++i) {
    args.push_back(GpBase(x86::Gp(kGpTransferIndex[i])));
  }
  for (int i = 0; i < kVecTransferRegs; ++i) {
    args.push_back(VecBase(x86::Xmm(static_cast<std::uint8_t>(i))));
  }
  L::CallInst* call = b().CreateCall(callee, args);

  // The callee returns the complete caller-saved register file; registers it
  // never wrote pass through unchanged (correct under GCC -fipa-ra).
  for (int i = 0; i < kGpTransferRegs; ++i) {
    SetGpBase(x86::Gp(kGpTransferIndex[i]),
              b().CreateExtractValue(call, static_cast<unsigned>(i)));
  }
  for (int i = 0; i < kVecTransferRegs; ++i) {
    for (auto& slot : state_->vec[i]) slot = nullptr;
    state_->vec[i][kVecI128] = b().CreateExtractValue(
        call, static_cast<unsigned>(kGpTransferRegs + i));
  }
  UndefFlags();
  return Status::Ok();
}

Status BodyLifter::LiftRet(const Instr&) {
  // The public wrapper extracts what the signature needs; the internal
  // register-file function returns the full caller-saved register file.
  L::Value* ret = Undef(fn_->getReturnType());
  for (int i = 0; i < kGpTransferRegs; ++i) {
    ret = b().CreateInsertValue(ret, GpBase(x86::Gp(kGpTransferIndex[i])),
                                static_cast<unsigned>(i));
  }
  for (int i = 0; i < kVecTransferRegs; ++i) {
    ret = b().CreateInsertValue(
        ret, VecBase(x86::Xmm(static_cast<std::uint8_t>(i))),
        static_cast<unsigned>(kGpTransferRegs + i));
  }
  b().CreateRet(ret);
  return Status::Ok();
}

Status BodyLifter::LiftInstr(const Instr& instr, bool* terminated) {
  using M = Mnemonic;
  *terminated = false;
  switch (instr.mnemonic) {
    case M::kNop:
    case M::kEndbr64:
      return Status::Ok();
    case M::kUd2:
      b().CreateIntrinsic(L::Intrinsic::trap, {}, {});
      b().CreateUnreachable();
      *terminated = true;
      return Status::Ok();
    case M::kRet:
      DBLL_TRY_STATUS(LiftRet(instr));
      *terminated = true;
      return Status::Ok();
    case M::kCall:
      return LiftCall(instr);
    case M::kJmp:
    case M::kJcc:
      // Handled as block terminators by LiftBlock.
      return Status::Ok();

    case M::kPush:
    case M::kPop:
    case M::kLeave:
      return LiftStack(instr);

    case M::kMov: case M::kMovzx: case M::kMovsx: case M::kMovsxd:
    case M::kLea: case M::kXchg: case M::kCmovcc: case M::kSetcc:
    case M::kCbw: case M::kCwde: case M::kCdqe:
    case M::kCwd: case M::kCdq: case M::kCqo:
      // SSE movq/movd share mnemonics with GP moves only via distinct
      // mnemonic ids, so this is purely the GP family.
      return LiftMovFamily(instr);

    case M::kAdd: case M::kAdc: case M::kSub: case M::kSbb:
    case M::kCmp: case M::kTest: case M::kAnd: case M::kOr: case M::kXor:
    case M::kNot: case M::kNeg: case M::kInc: case M::kDec:
    case M::kBswap: case M::kBt: case M::kBts: case M::kBtr: case M::kBtc:
    case M::kBsf: case M::kBsr:
    case M::kTzcnt: case M::kPopcnt: case M::kStc: case M::kClc:
      return LiftIntAlu(instr);

    case M::kShl: case M::kShr: case M::kSar: case M::kRol: case M::kRor:
    case M::kShld: case M::kShrd:
      return LiftShift(instr);

    case M::kLfence: case M::kMfence: case M::kSfence:
      // Single-threaded lifted execution: a full fence is a safe
      // over-approximation of all three.
      b().CreateFence(L::AtomicOrdering::SequentiallyConsistent);
      return Status::Ok();

    case M::kImul:
      if (instr.op_count == 1) return LiftMulDiv(instr);
      return LiftIntAlu(instr);
    case M::kMul: case M::kIdiv: case M::kDiv:
      return LiftMulDiv(instr);

    default:
      return LiftSse(instr);
  }
}

Status BodyLifter::LiftBlock(const x86::BasicBlock& block, BlockInfo& info) {
  cur_ = &info;
  state_ = &info.exit;
  b().SetInsertPoint(info.bb);

  bool terminated = false;
  for (const Instr& instr : block.instrs) {
    if (++lifted_instrs_ > config().max_instructions) {
      return Error(ErrorKind::kResourceLimit,
                   "lift instruction budget exhausted", instr.address);
    }
    // Flags nothing reads between here and every exit need no IR at all
    // (see FlagDead / SetFlagLazy).
    live_flags_ =
        liveness_ ? liveness_->LiveFlagsAfter(instr.address) : x86::kFlagAll;
    DBLL_TRY_STATUS(LiftInstr(instr, &terminated));
    if (terminated) break;
  }
  if (terminated) {
    info.lifted = true;
    return Status::Ok();
  }

  // Terminator.
  const Instr& last = block.instrs.back();
  if (last.mnemonic == Mnemonic::kJcc) {
    if (block.branch_target == block.fall_through) {
      b().CreateBr(blocks_.at(block.branch_target).bb);
    } else {
      L::Value* cond = EvalCondIr(last.cond);
      b().CreateCondBr(cond, blocks_.at(block.branch_target).bb,
                       blocks_.at(block.fall_through).bb);
    }
  } else if (last.mnemonic == Mnemonic::kJmp) {
    if (!block.indirect_targets.empty()) {
      DBLL_TRY_STATUS(LiftIndirectJump(block, last));
    } else {
      b().CreateBr(blocks_.at(block.branch_target).bb);
    }
  } else if (block.fall_through != 0) {
    b().CreateBr(blocks_.at(block.fall_through).bb);
  } else {
    return Error(ErrorKind::kInternal, "block without terminator",
                 block.start);
  }
  info.lifted = true;
  return Status::Ok();
}

Status BodyLifter::LiftIndirectJump(const x86::BasicBlock& block,
                                    const Instr& last) {
  // The value-range pass proved `last` a jump-table dispatch against
  // immutable (read-only mapped or ConstRegion-declared) table memory, so
  // the computed address can only hit one of the case labels. The default is
  // still lowered to a trap rather than bare `unreachable`: if the constancy
  // contract is ever violated, the stale dispatch faults deterministically
  // -- the crashguard probation window (src/runtime/containment.cpp) then
  // demotes to the original entry -- instead of executing undefined IR.
  DBLL_TRY(L::Value * target, ReadInt(last, last.ops[0]));
  if (target->getType() != I64()) target = b().CreateZExt(target, I64());
  char name[32];
  std::snprintf(name, sizeof(name), "jt_default_%llx",
                static_cast<unsigned long long>(last.address));
  L::BasicBlock* unreachable_bb = L::BasicBlock::Create(ctx(), name, fn_);
  L::SwitchInst* sw = b().CreateSwitch(
      target, unreachable_bb,
      static_cast<unsigned>(block.indirect_targets.size()));
  for (std::uint64_t addr : block.indirect_targets) {
    sw->addCase(L::cast<L::ConstantInt>(CI(I64(), addr)),
                blocks_.at(addr).bb);
  }
  b().SetInsertPoint(unreachable_bb);
  b().CreateIntrinsic(L::Intrinsic::trap, {}, {});
  b().CreateUnreachable();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Phi plumbing
// ---------------------------------------------------------------------------

void BodyLifter::CreateEntryPhis(std::uint64_t address, BlockInfo& info) {
  // Φ-nodes for every register in every facet (paper Sec. III-C: "each basic
  // block has a set of Φ-nodes at the beginning, where the values of the
  // registers in all facets of the predecessors are merged"). Unused ones
  // are removed by the optimizer.
  b().SetInsertPoint(info.bb);
  for (int r = 0; r < x86::kGpRegCount; ++r) {
    info.entry.gp[r][kGpI64] = b().CreatePHI(I64(), 2);
    if (config().facet_cache) {
      info.entry.gp[r][kGpI32] = b().CreatePHI(I32(), 2);
      info.entry.gp[r][kGpI16] = b().CreatePHI(I16(), 2);
      info.entry.gp[r][kGpI8] = b().CreatePHI(I8(), 2);
      info.entry.gp[r][kGpPtr] = b().CreatePHI(I8()->getPointerTo(), 2);
    }
  }
  for (int r = 0; r < x86::kVecRegCount; ++r) {
    info.entry.vec[r][kVecI128] = b().CreatePHI(I128(), 2);
    if (config().facet_cache) {
      for (int f = 1; f < kVecFacetCount; ++f) {
        info.entry.vec[r][f] =
            b().CreatePHI(FacetType(static_cast<VecFacet>(f)), 2);
      }
    }
  }
  // Flag phis only exist for flags live at block entry. A flag that is dead
  // on entry but live at some exit is necessarily redefined inside the block
  // (liveness would otherwise propagate it into the entry set), so starting
  // it as undef is sound and FillPhis skips the missing phi.
  const std::uint8_t live_in =
      liveness_ ? liveness_->LiveFlagsIn(address) : x86::kFlagAll;
  for (int f = 0; f < x86::kFlagCount; ++f) {
    info.entry.flags[f] =
        (live_in & (1u << f)) != 0
            ? static_cast<L::Value*>(b().CreatePHI(I1(), 2))
            : Undef(I1());
  }
  info.exit = info.entry;
  // The flag cache does not survive block boundaries.
  info.exit.InvalidateCmp();
}

L::Value* BodyLifter::ExitGpFacet(BlockInfo& pred, int reg, int facet) {
  if (pred.exit.gp[reg][facet] != nullptr) return pred.exit.gp[reg][facet];
  // Materialize the facet from the base just before the terminator.
  L::Instruction* term = pred.bb->getTerminator();
  b().SetInsertPoint(term);
  L::Value* base = pred.exit.gp[reg][kGpI64];
  L::Value* value = nullptr;
  switch (static_cast<GpFacet>(facet)) {
    case kGpPtr:
      value = b().CreateIntToPtr(base, I8()->getPointerTo());
      break;
    case kGpI32:
      value = b().CreateTrunc(base, I32());
      break;
    case kGpI16:
      value = b().CreateTrunc(base, I16());
      break;
    case kGpI8:
      value = b().CreateTrunc(base, I8());
      break;
    default:
      value = base;
      break;
  }
  pred.exit.gp[reg][facet] = value;
  return value;
}

L::Value* BodyLifter::ExitVecFacet(BlockInfo& pred, int reg, int facet) {
  if (pred.exit.vec[reg][facet] != nullptr) return pred.exit.vec[reg][facet];
  L::Instruction* term = pred.bb->getTerminator();
  b().SetInsertPoint(term);
  L::Value* value = CastFromI128(pred.exit.vec[reg][kVecI128],
                                 static_cast<VecFacet>(facet));
  pred.exit.vec[reg][facet] = value;
  return value;
}

Status BodyLifter::FillPhis() {
  struct Edge {
    BlockInfo* pred;
    std::uint64_t succ;
  };
  std::vector<Edge> edges;
  edges.push_back(Edge{&setup_, cfg_.entry});
  for (const auto& [address, block] : cfg_.blocks) {
    BlockInfo& pred = blocks_.at(address);
    const Instr& last = block.instrs.back();
    if (last.mnemonic == Mnemonic::kJcc) {
      edges.push_back(Edge{&pred, block.branch_target});
      if (block.branch_target != block.fall_through) {
        edges.push_back(Edge{&pred, block.fall_through});
      }
    } else if (last.mnemonic == Mnemonic::kJmp) {
      if (!block.indirect_targets.empty()) {
        // Deduplicated by CFG construction: one switch case (and thus one
        // phi edge) per distinct jump-table target.
        for (std::uint64_t target : block.indirect_targets) {
          edges.push_back(Edge{&pred, target});
        }
      } else {
        edges.push_back(Edge{&pred, block.branch_target});
      }
    } else if (block.fall_through != 0 && !last.IsBlockTerminator()) {
      edges.push_back(Edge{&pred, block.fall_through});
    }
  }
  for (const Edge& edge : edges) {
    BlockInfo& pred = *edge.pred;
    BlockInfo& succ = blocks_.at(edge.succ);
    for (int r = 0; r < x86::kGpRegCount; ++r) {
      L::cast<L::PHINode>(succ.entry.gp[r][kGpI64])
          ->addIncoming(pred.exit.gp[r][kGpI64], pred.bb);
      for (int f = 1; f < kGpFacetCount; ++f) {
        if (succ.entry.gp[r][f] != nullptr) {
          L::cast<L::PHINode>(succ.entry.gp[r][f])
              ->addIncoming(ExitGpFacet(pred, r, f), pred.bb);
        }
      }
    }
    for (int r = 0; r < x86::kVecRegCount; ++r) {
      L::cast<L::PHINode>(succ.entry.vec[r][kVecI128])
          ->addIncoming(pred.exit.vec[r][kVecI128], pred.bb);
      for (int f = 1; f < kVecFacetCount; ++f) {
        if (succ.entry.vec[r][f] != nullptr) {
          L::cast<L::PHINode>(succ.entry.vec[r][f])
              ->addIncoming(ExitVecFacet(pred, r, f), pred.bb);
        }
      }
    }
    for (int f = 0; f < x86::kFlagCount; ++f) {
      // Dead-on-entry flags have an undef placeholder instead of a phi.
      if (auto* phi = L::dyn_cast<L::PHINode>(succ.entry.flags[f])) {
        phi->addIncoming(pred.exit.flags[f], pred.bb);
      }
    }
  }
  return Status::Ok();
}

Status BodyLifter::Run() {
  // A synthetic setup block receives the arguments and the virtual stack;
  // the x86 entry block is a regular phi-carrying block so that loops may
  // branch back to the function entry.
  setup_.bb = L::BasicBlock::Create(ctx(), "setup", fn_);

  for (const auto& [address, block] : cfg_.blocks) {
    BlockInfo info;
    char name[32];
    std::snprintf(name, sizeof(name), "bb_%llx",
                  static_cast<unsigned long long>(address));
    info.bb = L::BasicBlock::Create(ctx(), name, fn_);
    blocks_.emplace(address, info);
  }

  // Setup state: arguments land in their ABI registers, the virtual stack
  // (paper Sec. III-F) is a fresh alloca, everything else is undef.
  {
    b().SetInsertPoint(setup_.bb);
    BlockState& st = setup_.exit;
    for (int r = 0; r < x86::kGpRegCount; ++r) {
      st.gp[r][kGpI64] = Undef(I64());
    }
    for (int r = 0; r < x86::kVecRegCount; ++r) {
      st.vec[r][kVecI128] = Undef(I128());
    }
    for (int f = 0; f < x86::kFlagCount; ++f) {
      st.flags[f] = Undef(I1());
    }
    auto arg = fn_->arg_begin();
    for (int i = 0; i < kGpTransferRegs; ++i, ++arg) {
      st.gp[kGpTransferIndex[i]][kGpI64] = &*arg;
    }
    for (int i = 0; i < kVecTransferRegs; ++i, ++arg) {
      st.vec[i][kVecI128] = &*arg;
    }
    // Virtual stack: the entry rsp points at the top minus the slot where
    // the return address would live.
    L::AllocaInst* stack = b().CreateAlloca(
        L::ArrayType::get(I8(), config().stack_size), nullptr, "stack");
    stack->setAlignment(L::Align(16));
    L::Value* top = b().CreateGEP(
        I8(), b().CreateBitCast(stack, I8()->getPointerTo()),
        CI(I64(), config().stack_size - 8));
    st.gp[x86::kRsp.index][kGpPtr] = top;
    st.gp[x86::kRsp.index][kGpI64] = b().CreatePtrToInt(top, I64());
    b().CreateBr(blocks_.at(cfg_.entry).bb);
  }

  // Entry phis for every block (including the x86 entry).
  for (auto& [address, info] : blocks_) {
    CreateEntryPhis(address, info);
  }

  // Lift the bodies in address order.
  for (const auto& [address, block] : cfg_.blocks) {
    DBLL_TRY_STATUS(LiftBlock(block, blocks_.at(address)));
  }

  DBLL_TRY_STATUS(FillPhis());

  if (config().vectorize_hint || config().vector_width > 0) {
    // Mark every back edge (branch to a block at a lower address) with
    // llvm.loop.vectorize.enable, overriding the vectorizer's cost model
    // (paper Sec. VIII / the -force-vector-width=2 experiment). A nonzero
    // config().vector_width additionally pins the VF -- the per-request
    // replacement for the process-global -force-vector-width cl::opt.
    for (const auto& [address, block] : cfg_.blocks) {
      const bool backwards =
          (block.branch_target != 0 && block.branch_target <= address);
      if (!backwards) continue;
      L::Instruction* term = blocks_.at(address).bb->getTerminator();
      if (term == nullptr) continue;
      SetVectorizeLoopMetadata(ctx(), term, config().vector_width);
    }
  }
  return Status::Ok();
}

// ===========================================================================
// ModuleLifter implementation
// ===========================================================================

L::FunctionType* ModuleLifter::RegFileType() {
  L::Type* i64 = L::Type::getInt64Ty(ctx());
  L::Type* i128 = L::Type::getInt128Ty(ctx());
  std::vector<L::Type*> params;
  for (int i = 0; i < kGpTransferRegs; ++i) params.push_back(i64);
  for (int i = 0; i < kVecTransferRegs; ++i) params.push_back(i128);
  // The return type mirrors the parameters: the complete caller-saved file.
  std::vector<L::Type*> ret_elems = params;
  L::StructType* ret = L::StructType::get(ctx(), ret_elems);
  return L::FunctionType::get(ret, params, /*isVarArg=*/false);
}

Expected<L::Function*> ModuleLifter::GetOrDeclare(std::uint64_t address,
                                                  int depth) {
  auto it = functions_.find(address);
  if (it != functions_.end()) return it->second;
  char name[32];
  std::snprintf(name, sizeof(name), "l_%llx",
                static_cast<unsigned long long>(address));
  L::Function* fn = L::Function::Create(
      RegFileType(), L::GlobalValue::InternalLinkage, name, module());
  fn->addFnAttr(L::Attribute::AlwaysInline);
  functions_.emplace(address, fn);
  pending_.emplace_back(address, depth);
  return fn;
}

L::Value* ModuleLifter::MemBasePointer(std::uint64_t address) {
  // Constant addresses are rebased onto a global symbol so that alias
  // analysis sees accesses into one global object (paper Sec. III-E: "the
  // base pointer is set to the first constant address found").
  if (membase_ == nullptr) {
    bundle_.membase_value = address;
    bundle_.membase_symbol = bundle_.wrapper_name + "_membase";
    membase_ = new L::GlobalVariable(
        module(), L::Type::getInt8Ty(ctx()), /*isConstant=*/false,
        L::GlobalValue::ExternalLinkage, /*Initializer=*/nullptr,
        bundle_.membase_symbol);
  }
  const std::int64_t offset = static_cast<std::int64_t>(address) -
                              static_cast<std::int64_t>(bundle_.membase_value);
  return builder_.CreateGEP(
      L::Type::getInt8Ty(ctx()), membase_,
      L::ConstantInt::get(L::Type::getInt64Ty(ctx()),
                          static_cast<std::uint64_t>(offset)));
}

Status ModuleLifter::BuildWrapper(L::Function* internal) {
  const Signature& sig = bundle_.signature;
  L::Type* i64 = L::Type::getInt64Ty(ctx());
  L::Type* i128 = L::Type::getInt128Ty(ctx());
  L::Type* f64 = L::Type::getDoubleTy(ctx());

  int int_args = 0;
  int sse_args = 0;
  std::vector<L::Type*> params;
  for (ArgKind kind : sig.args) {
    if (kind == ArgKind::kInt) {
      if (++int_args > kMaxIntArgs) {
        return Error(ErrorKind::kBadConfig, "too many integer arguments");
      }
      params.push_back(i64);
    } else {
      if (++sse_args > kMaxSseArgs) {
        return Error(ErrorKind::kBadConfig, "too many SSE arguments");
      }
      params.push_back(f64);
    }
  }
  L::Type* ret_type = sig.ret == RetKind::kVoid
                          ? L::Type::getVoidTy(ctx())
                          : (sig.ret == RetKind::kInt ? i64 : f64);
  L::FunctionType* type = L::FunctionType::get(ret_type, params, false);
  L::Function* wrapper =
      L::Function::Create(type, L::GlobalValue::ExternalLinkage,
                          bundle_.wrapper_name, module());
  L::BasicBlock* bb = L::BasicBlock::Create(ctx(), "entry", wrapper);
  builder_.SetInsertPoint(bb);

  std::vector<L::Value*> args(
      static_cast<std::size_t>(kGpTransferRegs + kVecTransferRegs));
  for (int i = 0; i < kGpTransferRegs; ++i) args[i] = L::UndefValue::get(i64);
  for (int i = 0; i < kVecTransferRegs; ++i) {
    args[kGpTransferRegs + i] = L::UndefValue::get(i128);
  }
  // Map each SysV integer argument register to its slot in the transfer
  // order (rax, rdi, rsi, rdx, rcx, r8, r9, r10, r11).
  constexpr int kIntArgSlot[kMaxIntArgs] = {1, 2, 3, 4, 5, 6};
  int int_at = 0;
  int sse_at = 0;
  int arg_index = 0;
  for (ArgKind kind : sig.args) {
    L::Value* incoming = wrapper->getArg(arg_index++);
    if (kind == ArgKind::kInt) {
      args[kIntArgSlot[int_at++]] = incoming;
    } else {
      // Bit-pattern of the double into lane 0 of the xmm register.
      L::Value* bits = builder_.CreateBitCast(incoming, i64);
      args[kGpTransferRegs + sse_at++] = builder_.CreateZExt(bits, i128);
    }
  }
  L::CallInst* call = builder_.CreateCall(internal, args);
  switch (sig.ret) {
    case RetKind::kVoid:
      builder_.CreateRetVoid();
      break;
    case RetKind::kInt:
      // rax is transfer slot 0.
      builder_.CreateRet(builder_.CreateExtractValue(call, 0));
      break;
    case RetKind::kF64: {
      // xmm0 is the first vector slot.
      L::Value* low = builder_.CreateTrunc(
          builder_.CreateExtractValue(call, kGpTransferRegs), i64);
      builder_.CreateRet(builder_.CreateBitCast(low, f64));
      break;
    }
  }
  return Status::Ok();
}

Expected<L::Function*> ModuleLifter::LiftBodies(std::uint64_t entry_address) {
  DBLL_TRY(L::Function * root, GetOrDeclare(entry_address, 0));
  while (!pending_.empty()) {
    auto [address, depth] = pending_.back();
    pending_.pop_back();
    L::Function* fn = functions_.at(address);
    if (!fn->empty()) continue;

    x86::CfgOptions cfg_options;
    cfg_options.max_instructions = config().max_instructions;
    x86::Cfg cfg;
    analysis::FunctionRanges ranges;
    const analysis::FunctionRanges* ranges_ptr = nullptr;
    if (config().value_ranges) {
      // Range-resolved decode: proven jump tables become real CFG edges and
      // the fixpoint result feeds !range annotations and address folding. An
      // unresolved indirect jmp keeps the historical error text so the
      // negative cache classifies it exactly like the plain decode failure.
      analysis::RangeOptions range_options;
      range_options.budget = config().range_budget;
      auto resolved =
          analysis::BuildRangeResolvedCfg(address, cfg_options, range_options);
      if (!resolved) {
        return Error(ErrorKind::kLift,
                     "cannot decode function: " + resolved.error().Format(),
                     address);
      }
      if (resolved.value().unresolved_indirect) {
        return Error(ErrorKind::kLift,
                     "cannot decode function: indirect jumps are not "
                     "supported (no provable jump table)",
                     address);
      }
      cfg = std::move(resolved.value().cfg);
      ranges = std::move(resolved.value().ranges);
      ranges_ptr = &ranges;
    } else {
      auto plain = x86::BuildCfg(address, cfg_options);
      if (!plain) {
        return Error(ErrorKind::kLift,
                     "cannot decode function: " + plain.error().Format(),
                     address);
      }
      cfg = std::move(plain.value());
    }
    // Static flag liveness feeds the per-instruction pruning in the body
    // lifter; null disables it (every flag permanently live).
    analysis::Liveness liveness;
    const analysis::Liveness* liveness_ptr = nullptr;
    if (config().flag_liveness) {
      liveness = analysis::ComputeLiveness(cfg);
      liveness_ptr = &liveness;
    }
    BodyLifter body(*this, fn, cfg, depth, liveness_ptr, ranges_ptr);
    DBLL_TRY_STATUS(body.Run());
  }
  return root;
}

Status ModuleLifter::Verify() {
  std::string verify_log;
  L::raw_string_ostream os(verify_log);
  if (L::verifyModule(module(), &os)) {
    os.flush();
    return Error(ErrorKind::kLift, "module verification failed: " + verify_log);
  }
  return Status::Ok();
}

Status ModuleLifter::LiftAll(std::uint64_t entry_address) {
  DBLL_TRY(L::Function * root, LiftBodies(entry_address));
  DBLL_TRY_STATUS(BuildWrapper(root));
  return Verify();
}

Status ModuleLifter::BuildLineWrapper(L::Function* internal, long stride,
                                      long col_begin, long col_end) {
  L::Type* i64 = L::Type::getInt64Ty(ctx());
  L::Type* i128 = L::Type::getInt128Ty(ctx());
  L::FunctionType* type = L::FunctionType::get(
      L::Type::getVoidTy(ctx()), {i64, i64, i64, i64}, false);
  L::Function* wrapper =
      L::Function::Create(type, L::GlobalValue::ExternalLinkage,
                          bundle_.wrapper_name, module());

  L::BasicBlock* entry = L::BasicBlock::Create(ctx(), "entry", wrapper);
  L::BasicBlock* loop = L::BasicBlock::Create(ctx(), "line_loop", wrapper);
  L::BasicBlock* exit = L::BasicBlock::Create(ctx(), "exit", wrapper);

  builder_.SetInsertPoint(entry);
  L::Value* base = builder_.CreateMul(
      wrapper->getArg(3), L::ConstantInt::get(i64, static_cast<std::uint64_t>(stride)));
  builder_.CreateBr(loop);

  builder_.SetInsertPoint(loop);
  L::PHINode* col = builder_.CreatePHI(i64, 2, "col");
  col->addIncoming(L::ConstantInt::get(i64, static_cast<std::uint64_t>(col_begin)), entry);
  L::Value* index = builder_.CreateAdd(base, col, "index");

  // Register-file call: rdi/rsi/rdx hold the kernel's pointer arguments,
  // rcx the element index.
  std::vector<L::Value*> args(
      static_cast<std::size_t>(kGpTransferRegs + kVecTransferRegs));
  for (int i = 0; i < kGpTransferRegs; ++i) args[i] = L::UndefValue::get(i64);
  for (int i = 0; i < kVecTransferRegs; ++i) {
    args[kGpTransferRegs + i] = L::UndefValue::get(i128);
  }
  args[1] = wrapper->getArg(0);  // rdi
  args[2] = wrapper->getArg(1);  // rsi
  args[3] = wrapper->getArg(2);  // rdx
  args[4] = index;               // rcx
  builder_.CreateCall(internal, args);

  L::Value* next = builder_.CreateAdd(col, L::ConstantInt::get(i64, 1));
  col->addIncoming(next, loop);
  L::Value* done = builder_.CreateICmpEQ(
      next, L::ConstantInt::get(i64, static_cast<std::uint64_t>(col_end)));
  L::Instruction* latch = builder_.CreateCondBr(done, exit, loop);

  // Ask the vectorizer to ignore its cost model for this loop: the lifted
  // body is typed IR, which is exactly the meta-information the paper found
  // missing at the binary level (Sec. VI-B / VIII).
  SetVectorizeLoopMetadata(ctx(), latch, config().vector_width);

  builder_.SetInsertPoint(exit);
  builder_.CreateRetVoid();
  return Status::Ok();
}

}  // namespace

Status LiftFunctionInto(ModuleBundle& bundle, std::uint64_t address) {
  ModuleLifter lifter(bundle);
  return lifter.LiftAll(address);
}

Status LiftLineLoopInto(ModuleBundle& bundle, std::uint64_t address,
                        long stride, long col_begin, long col_end) {
  if (bundle.signature.args.size() != 4 ||
      bundle.signature.ret != RetKind::kVoid) {
    return Error(ErrorKind::kBadConfig,
                 "line-loop lifting requires the 4-int-arg void signature");
  }
  ModuleLifter lifter(bundle);
  DBLL_TRY(llvm::Function * root, lifter.LiftBodies(address));
  DBLL_TRY_STATUS(lifter.BuildLineWrapper(root, stride, col_begin, col_end));
  return lifter.Verify();
}

}  // namespace dbll::lift
