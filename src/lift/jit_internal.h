// dbll -- internal JIT plumbing.
#pragma once

#include <memory>
#include <string>

#include <llvm/ExecutionEngine/Orc/LLJIT.h>

#include "lift_internal.h"

namespace dbll::lift {

struct Jit::Impl {
  std::unique_ptr<llvm::orc::LLJIT> lljit;
  std::string init_error;
};

/// One-time native target initialization.
void EnsureLlvmInit();

/// Moves the bundle's module into the JIT and resolves the public wrapper.
Expected<std::uint64_t> JitCompile(Jit& jit, ModuleBundle& bundle);

}  // namespace dbll::lift
