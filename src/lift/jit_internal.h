// dbll -- internal JIT plumbing.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include <llvm/ExecutionEngine/ObjectCache.h>
#include <llvm/ExecutionEngine/Orc/LLJIT.h>

#include "lift_internal.h"

namespace dbll::lift {

/// Module-identifier prefix marking a module whose emitted object should be
/// captured (LiftedFunction::SetCacheTag). Modules without it pass through
/// the compiler uncaptured, so plain Compile() users pay nothing.
inline constexpr char kCaptureTagPrefix[] = "dbll-obj:";

/// llvm::ObjectCache that *captures* emitted objects instead of serving
/// them: notifyObjectCompiled files the buffer of tagged modules under the
/// module identifier; getObject always misses (the warm path re-installs
/// objects via LoadCachedObject, never through IR recompilation). One
/// instance per Jit, wired into the LLJIT's compile function.
class CaptureObjectCache : public llvm::ObjectCache {
 public:
  void notifyObjectCompiled(const llvm::Module* module,
                            llvm::MemoryBufferRef object) override;
  std::unique_ptr<llvm::MemoryBuffer> getObject(
      const llvm::Module* module) override;

  /// Removes and returns the buffer filed under the full module identifier
  /// (prefix + tag); empty when absent.
  std::vector<std::uint8_t> Take(const std::string& module_id);

 private:
  std::mutex mutex_;
  std::unordered_map<std::string, std::vector<std::uint8_t>> captured_;
};

struct Jit::Impl {
  std::unique_ptr<llvm::orc::LLJIT> lljit;
  std::string init_error;
  CaptureObjectCache capture;
  /// Names the per-object JITDylibs created by LoadCachedObject (each cached
  /// object links into its own dylib: wrapper symbol names are only unique
  /// within the emitting process).
  std::uint64_t dylib_counter = 0;
  std::mutex dylib_mutex;
};

/// One-time native target initialization.
void EnsureLlvmInit();

/// Moves the bundle's module into the JIT and resolves the public wrapper.
Expected<std::uint64_t> JitCompile(Jit& jit, ModuleBundle& bundle);

}  // namespace dbll::lift
