// dbll -- internal JIT plumbing.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include <llvm/ExecutionEngine/ObjectCache.h>
#include <llvm/ExecutionEngine/Orc/LLJIT.h>

#include "lift_internal.h"

namespace llvm {
class TargetMachine;
}  // namespace llvm

namespace dbll::lift {

/// Module-identifier prefix marking a module whose emitted object should be
/// captured (LiftedFunction::SetCacheTag). Modules without it pass through
/// the compiler uncaptured, so plain Compile() users pay nothing.
inline constexpr char kCaptureTagPrefix[] = "dbll-obj:";

/// Module flag carrying the LiftConfig isa_level (an i32). RunPipeline
/// stamps it (together with per-function target-cpu/target-features
/// attributes); the ORC multi-ISA compiler reads it back to pick the
/// matching per-level TargetMachine at codegen time. A module without the
/// flag compiles at baseline.
inline constexpr char kIsaModuleFlag[] = "dbll.isa";

/// Creates a TargetMachine for one ISA ladder level: base CPU "x86-64" plus
/// the level's subtarget feature string (support/cpu_features.h, including
/// DBLL_JIT_FEATURES extras). Shared by the ORC compiler (codegen subtarget)
/// and the pass pipeline (so per-function TTI reports real vector widths to
/// the loop vectorizer). Out-of-range levels are clamped into the ladder.
llvm::Expected<std::unique_ptr<llvm::TargetMachine>> CreateIsaTargetMachine(
    int isa_level);

/// llvm::ObjectCache that *captures* emitted objects instead of serving
/// them: notifyObjectCompiled files the buffer of tagged modules under the
/// module identifier; getObject always misses (the warm path re-installs
/// objects via LoadCachedObject, never through IR recompilation). One
/// instance per Jit, wired into the LLJIT's compile function.
class CaptureObjectCache : public llvm::ObjectCache {
 public:
  void notifyObjectCompiled(const llvm::Module* module,
                            llvm::MemoryBufferRef object) override;
  std::unique_ptr<llvm::MemoryBuffer> getObject(
      const llvm::Module* module) override;

  /// Removes and returns the buffer filed under the full module identifier
  /// (prefix + tag); empty when absent.
  std::vector<std::uint8_t> Take(const std::string& module_id);

 private:
  std::mutex mutex_;
  std::unordered_map<std::string, std::vector<std::uint8_t>> captured_;
};

struct Jit::Impl {
  std::unique_ptr<llvm::orc::LLJIT> lljit;
  std::string init_error;
  CaptureObjectCache capture;
  /// Names the per-object JITDylibs created by LoadCachedObject (each cached
  /// object links into its own dylib: wrapper symbol names are only unique
  /// within the emitting process).
  std::uint64_t dylib_counter = 0;
  std::mutex dylib_mutex;
};

/// One-time native target initialization.
void EnsureLlvmInit();

/// Moves the bundle's module into the JIT and resolves the public wrapper.
Expected<std::uint64_t> JitCompile(Jit& jit, ModuleBundle& bundle);

}  // namespace dbll::lift
