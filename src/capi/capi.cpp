#include "dbll/dbrew/capi.h"

#include <string>
#include <vector>

#include "dbll/analysis/audit.h"
#include "dbll/dbrew/rewriter.h"
#include "dbll/obs/obs.h"
#include "dbll/runtime/compile_service.h"
#include "dbll/support/fault.h"

struct dbll_rewriter {
  explicit dbll_rewriter(std::uint64_t function) : impl(function) {}
  dbll::dbrew::Rewriter impl;
  std::string last_error;
};

struct dbll_cache {
  explicit dbll_cache(dbll::runtime::CompileService::Options options)
      : impl(options) {}
  dbll::runtime::CompileService impl;
  std::string last_error;  // backing store for dbll_cache_last_error
};

struct dbll_cache_req {
  dbll_cache* cache = nullptr;
  dbll::runtime::CompileRequest request;
  dbll::runtime::FunctionHandle handle;  // valid once submitted
  bool submitted = false;
  std::string last_error;

  void Submit() {
    if (!submitted) {
      handle = cache->impl.Request(request);
      submitted = true;
    }
  }
};

struct dbll_obs_snapshot {
  std::vector<dbll::obs::SnapshotEntry> entries;
};

extern "C" {

/* --- dbll_rewriter_*: canonical rewriter surface ------------------------- */

dbll_rewriter* dbll_rewriter_new(void* func) {
  return new dbll_rewriter(reinterpret_cast<std::uint64_t>(func));
}

void dbll_rewriter_setpar(dbll_rewriter* r, int index, uint64_t value) {
  r->impl.SetParam(index - 1, value);  // paper examples are 1-based
}

void dbll_rewriter_setmem(dbll_rewriter* r, const void* start,
                          const void* end) {
  r->impl.SetMemRange(reinterpret_cast<std::uint64_t>(start),
                      reinterpret_cast<std::uint64_t>(end));
}

void dbll_rewriter_set_buffer_size(dbll_rewriter* r, uint64_t bytes) {
  r->impl.config().code_buffer_size = bytes;
}

void dbll_rewriter_set_verbose(dbll_rewriter* r, int verbose) {
  r->impl.config().verbose = verbose != 0;
}

void* dbll_rewriter_rewrite(dbll_rewriter* r) {
  const std::uint64_t entry = r->impl.RewriteOrOriginal();
  r->last_error = r->impl.last_error().ok() ? std::string()
                                            : r->impl.last_error().Format();
  return reinterpret_cast<void*>(entry);
}

const char* dbll_rewriter_last_error(dbll_rewriter* r) {
  return r->last_error.c_str();
}

void dbll_rewriter_set_unroll_cap(dbll_rewriter* r, uint64_t cap) {
  r->impl.config().unroll_cap = cap;
}

void dbll_rewriter_set_inline_depth(dbll_rewriter* r, int depth) {
  r->impl.config().max_inline_depth = depth;
}

uint64_t dbll_rewriter_stat_emitted(dbll_rewriter* r) {
  return r->impl.stats().emitted_instrs;
}

uint64_t dbll_rewriter_stat_folded(dbll_rewriter* r) {
  return r->impl.stats().folded_instrs;
}

uint64_t dbll_rewriter_stat_inlined_calls(dbll_rewriter* r) {
  return r->impl.stats().inlined_calls;
}

uint64_t dbll_rewriter_stat_code_bytes(dbll_rewriter* r) {
  return r->impl.stats().code_bytes;
}

void dbll_rewriter_free(dbll_rewriter* r) { delete r; }

/* --- dbrew_*: deprecated aliases ------------------------------------------ */

dbrew_rewriter* dbrew_new(void* func) { return dbll_rewriter_new(func); }

void dbrew_setpar(dbrew_rewriter* r, int index, uint64_t value) {
  dbll_rewriter_setpar(r, index, value);
}

void dbrew_setmem(dbrew_rewriter* r, const void* start, const void* end) {
  dbll_rewriter_setmem(r, start, end);
}

void dbrew_set_buffer_size(dbrew_rewriter* r, uint64_t bytes) {
  dbll_rewriter_set_buffer_size(r, bytes);
}

void dbrew_set_verbose(dbrew_rewriter* r, int verbose) {
  dbll_rewriter_set_verbose(r, verbose);
}

void* dbrew_rewrite(dbrew_rewriter* r) { return dbll_rewriter_rewrite(r); }

const char* dbrew_last_error(dbrew_rewriter* r) {
  return dbll_rewriter_last_error(r);
}

void dbrew_set_unroll_cap(dbrew_rewriter* r, uint64_t cap) {
  dbll_rewriter_set_unroll_cap(r, cap);
}

void dbrew_set_inline_depth(dbrew_rewriter* r, int depth) {
  dbll_rewriter_set_inline_depth(r, depth);
}

uint64_t dbrew_stat_emitted(dbrew_rewriter* r) {
  return dbll_rewriter_stat_emitted(r);
}

uint64_t dbrew_stat_folded(dbrew_rewriter* r) {
  return dbll_rewriter_stat_folded(r);
}

uint64_t dbrew_stat_inlined_calls(dbrew_rewriter* r) {
  return dbll_rewriter_stat_inlined_calls(r);
}

uint64_t dbrew_stat_code_bytes(dbrew_rewriter* r) {
  return dbll_rewriter_stat_code_bytes(r);
}

void dbrew_free(dbrew_rewriter* r) { dbll_rewriter_free(r); }

/* --- dbll_cache_*: specialization cache + async compile service ----------- */

dbll_cache* dbll_cache_new(int workers, uint64_t capacity) {
  dbll::runtime::CompileService::Options options;
  options.workers = workers;
  options.capacity = static_cast<std::size_t>(capacity);
  return new dbll_cache(options);
}

void dbll_cache_free(dbll_cache* c) { delete c; }

dbll_cache_req* dbll_cache_request(dbll_cache* c, void* func, int int_args,
                                   int returns_value) {
  auto* q = new dbll_cache_req;
  q->cache = c;
  q->request.address = reinterpret_cast<std::uint64_t>(func);
  q->request.signature = dbll::lift::Signature::Ints(
      int_args, returns_value != 0 ? dbll::lift::RetKind::kInt
                                   : dbll::lift::RetKind::kVoid);
  return q;
}

void dbll_cache_req_setpar(dbll_cache_req* q, int index, uint64_t value) {
  q->request.FixParam(index - 1, value);  // paper examples are 1-based
}

void dbll_cache_req_setmem(dbll_cache_req* q, int index, const void* data,
                           uint64_t size) {
  q->request.FixConstMem(index - 1, data, static_cast<std::size_t>(size));
}

void* dbll_cache_call_target(dbll_cache_req* q) {
  q->Submit();
  return reinterpret_cast<void*>(q->handle.target());
}

void* dbll_cache_wait(dbll_cache_req* q) {
  q->Submit();
  return reinterpret_cast<void*>(q->handle.wait());
}

int dbll_cache_ready(dbll_cache_req* q) {
  q->Submit();
  return q->handle.specialized() ? 1 : 0;
}

int dbll_handle_tier(dbll_cache_req* q) {
  q->Submit();
  q->handle.wait();  // tier is meaningful once terminal
  return static_cast<int>(q->handle.tier());
}

uint64_t dbll_handle_calls(dbll_cache_req* q) {
  q->Submit();
  return q->handle.calls();
}

uint64_t dbll_handle_deopts(dbll_cache_req* q) {
  q->Submit();
  return q->handle.deopts();
}

void dbll_cache_req_set_deadline_ms(dbll_cache_req* q, uint32_t deadline_ms) {
  q->request.deadline_ms = deadline_ms;
}

const char* dbll_cache_req_last_error(dbll_cache_req* q) {
  using State = dbll::runtime::FunctionHandle::State;
  if (q->submitted && q->handle.state() == State::kFailed) {
    q->last_error = q->handle.error().Format();
  } else {
    q->last_error.clear();
  }
  return q->last_error.c_str();
}

const char* dbll_cache_req_error(dbll_cache_req* q) {
  return dbll_cache_req_last_error(q);
}

void dbll_cache_req_free(dbll_cache_req* q) { delete q; }

const char* dbll_cache_last_error(dbll_cache* c) {
  const dbll::Error error = c->impl.last_error();
  c->last_error = error.ok() ? std::string() : error.Format();
  return c->last_error.c_str();
}

uint64_t dbll_cache_stat_hits(dbll_cache* c) {
  const auto stats = c->impl.stats();
  return stats.hits + stats.coalesced;
}

uint64_t dbll_cache_stat_misses(dbll_cache* c) { return c->impl.stats().misses; }

uint64_t dbll_cache_stat_evictions(dbll_cache* c) {
  return c->impl.stats().evictions;
}

uint64_t dbll_cache_stat_compiles(dbll_cache* c) {
  return c->impl.stats().compiles;
}

uint64_t dbll_cache_stat_compile_ns(dbll_cache* c) {
  return c->impl.stats().stage_total.total_ns();
}

void dbll_cache_set_deadline_ms(dbll_cache* c, uint32_t deadline_ms) {
  c->impl.set_default_deadline_ms(deadline_ms);
}

void dbll_cache_set_tiering(dbll_cache* c, int enable, uint64_t hot_threshold) {
  dbll::runtime::TieringOptions tiering = c->impl.tiering();
  tiering.enabled = enable != 0;
  if (hot_threshold != 0) tiering.hot_threshold = hot_threshold;
  c->impl.set_tiering(tiering);
}

uint64_t dbll_cache_stat_baseline_installs(dbll_cache* c) {
  return c->impl.stats().baseline_installs;
}

uint64_t dbll_cache_stat_interim_installs(dbll_cache* c) {
  return c->impl.stats().interim_installs;
}

uint64_t dbll_cache_stat_promotions(dbll_cache* c) {
  return c->impl.stats().promotions;
}

uint64_t dbll_cache_stat_deopts(dbll_cache* c) {
  return c->impl.stats().deopts;
}

uint64_t dbll_cache_stat_tier0a_ns(dbll_cache* c) {
  return c->impl.stats().stage_total.tier0a_ns;
}

int dbll_cache_set_persist_dir(dbll_cache* c, const char* dir) {
  const dbll::Status status =
      c->impl.set_persist_dir(dir != nullptr ? dir : "");
  return status.ok() ? 0 : -1;  // cause via dbll_cache_last_error
}

int dbll_cache_persist_enabled(dbll_cache* c) {
  return c->impl.persist_enabled() ? 1 : 0;
}

void dbll_cache_wait_idle(dbll_cache* c) { c->impl.WaitIdle(); }

void dbll_cache_persist_stats(dbll_cache* c, dbll_persist_stats* out) {
  if (out == nullptr) return;
  const dbll::runtime::ObjectStoreStats stats = c->impl.persist_stats();
  out->hits = stats.hits;
  out->misses = stats.misses;
  out->stores = stats.stores;
  out->evictions = stats.evictions;
  out->corrupt_dropped = stats.corrupt_dropped;
  out->errors = stats.errors;
  out->load_ns = stats.load_ns;
  out->store_ns = stats.store_ns;
}

/* --- dbll_analyze_*: static lift-eligibility audit ------------------------- */

/// Backing store for dbll_analyze_last_error. Thread-local because the audit
/// has no object to hang the error on; the pointer stays valid until the
/// same thread audits again.
static thread_local std::string g_analyze_last_error;

int dbll_analyze_function(void* func, int* worst_severity) {
  if (worst_severity != nullptr) *worst_severity = DBLL_ANALYZE_INFO;
  if (func == nullptr) {
    g_analyze_last_error = "dbll_analyze_function: func is NULL";
    return -1;
  }
  const dbll::analysis::AuditReport report = dbll::analysis::AuditFunction(
      reinterpret_cast<std::uint64_t>(func), dbll::analysis::AuditOptions{});
  if (worst_severity != nullptr) {
    *worst_severity = static_cast<int>(report.worst());
  }
  const dbll::analysis::Diagnostic* fatal = report.first_fatal();
  g_analyze_last_error =
      fatal != nullptr
          ? std::string(dbll::analysis::ToString(fatal->kind)) + ": " +
                fatal->message
          : std::string();
  return static_cast<int>(report.diagnostics.size());
}

const char* dbll_analyze_last_error(void) {
  return g_analyze_last_error.c_str();
}

/* --- dbll_fault_*: fault injection ----------------------------------------- */

int dbll_fault_arm(const char* site, const char* kind, uint64_t after_n) {
  auto parsed = dbll::fault::ParseErrorKind(kind != nullptr ? kind : "");
  if (!parsed.has_value()) return 1;
  dbll::fault::Spec spec;
  spec.kind = *parsed;
  spec.after_n = after_n;
  dbll::fault::Arm(site != nullptr ? site : "", spec);
  return 0;
}

void dbll_fault_disarm_all(void) { dbll::fault::DisarmAll(); }

uint64_t dbll_fault_fire_count(const char* site) {
  return dbll::fault::FireCount(site != nullptr ? site : "");
}

/* --- dbll_obs_*: observability -------------------------------------------- */

void dbll_obs_trace_enable(void) { dbll::obs::Tracer::Default().Enable(); }

void dbll_obs_trace_disable(void) { dbll::obs::Tracer::Default().Disable(); }

int dbll_obs_trace_enabled(void) {
  return dbll::obs::Tracer::Default().enabled() ? 1 : 0;
}

void dbll_obs_trace_clear(void) { dbll::obs::Tracer::Default().Clear(); }

int dbll_obs_trace_write(const char* path) {
  return dbll::obs::Tracer::Default().WriteChromeTrace(path) ? 0 : 1;
}

uint64_t dbll_obs_value(const char* name) {
  return dbll::obs::Registry::Default().Value(name);
}

dbll_obs_snapshot* dbll_obs_snapshot_new(void) {
  auto* s = new dbll_obs_snapshot;
  s->entries = dbll::obs::Registry::Default().Snapshot();
  return s;
}

uint64_t dbll_obs_snapshot_size(const dbll_obs_snapshot* s) {
  return s->entries.size();
}

const char* dbll_obs_snapshot_name(const dbll_obs_snapshot* s, uint64_t i) {
  if (i >= s->entries.size()) return nullptr;
  return s->entries[static_cast<std::size_t>(i)].name.c_str();
}

uint64_t dbll_obs_snapshot_value(const dbll_obs_snapshot* s, uint64_t i) {
  if (i >= s->entries.size()) return 0;
  return s->entries[static_cast<std::size_t>(i)].value;
}

void dbll_obs_snapshot_free(dbll_obs_snapshot* s) { delete s; }

}  // extern "C"
