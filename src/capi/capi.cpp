#include "dbll/dbrew/capi.h"

#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "dbll/analysis/audit.h"
#include "dbll/dbrew/rewriter.h"
#include "dbll/obs/obs.h"
#include "dbll/runtime/compile_service.h"
#include "dbll/runtime/containment.h"
#include "dbll/support/cpu_features.h"
#include "dbll/support/crashguard.h"
#include "dbll/support/fault.h"

struct dbll_rewriter {
  explicit dbll_rewriter(std::uint64_t function) : impl(function) {}
  dbll::dbrew::Rewriter impl;
  std::string last_error;
};

struct dbll_cache {
  explicit dbll_cache(dbll::runtime::CompileService::Options options)
      : impl(options) {}
  dbll::runtime::CompileService impl;
  std::string last_error;  // backing store for dbll_cache_last_error
};

struct dbll_cache_req {
  dbll_cache* cache = nullptr;
  dbll::runtime::CompileRequest request;
  dbll::runtime::FunctionHandle handle;  // valid once submitted
  bool submitted = false;
  std::string last_error;

  void Submit() {
    if (!submitted) {
      handle = cache->impl.Request(request);
      submitted = true;
    }
  }
};

struct dbll_obs_snapshot {
  std::vector<dbll::obs::SnapshotEntry> entries;
};

extern "C" {

/* --- dbll_rewriter_*: canonical rewriter surface ------------------------- */

dbll_rewriter* dbll_rewriter_new(void* func) {
  return new dbll_rewriter(reinterpret_cast<std::uint64_t>(func));
}

void dbll_rewriter_setpar(dbll_rewriter* r, int index, uint64_t value) {
  r->impl.SetParam(index - 1, value);  // paper examples are 1-based
}

void dbll_rewriter_setmem(dbll_rewriter* r, const void* start,
                          const void* end) {
  r->impl.SetMemRange(reinterpret_cast<std::uint64_t>(start),
                      reinterpret_cast<std::uint64_t>(end));
}

void dbll_rewriter_set_buffer_size(dbll_rewriter* r, uint64_t bytes) {
  r->impl.config().code_buffer_size = bytes;
}

void dbll_rewriter_set_verbose(dbll_rewriter* r, int verbose) {
  r->impl.config().verbose = verbose != 0;
}

void* dbll_rewriter_rewrite(dbll_rewriter* r) {
  const std::uint64_t entry = r->impl.RewriteOrOriginal();
  r->last_error = r->impl.last_error().ok() ? std::string()
                                            : r->impl.last_error().Format();
  return reinterpret_cast<void*>(entry);
}

const char* dbll_rewriter_last_error(dbll_rewriter* r) {
  return r->last_error.c_str();
}

void dbll_rewriter_set_unroll_cap(dbll_rewriter* r, uint64_t cap) {
  r->impl.config().unroll_cap = cap;
}

void dbll_rewriter_set_inline_depth(dbll_rewriter* r, int depth) {
  r->impl.config().max_inline_depth = depth;
}

uint64_t dbll_rewriter_stat_emitted(dbll_rewriter* r) {
  return r->impl.stats().emitted_instrs;
}

uint64_t dbll_rewriter_stat_folded(dbll_rewriter* r) {
  return r->impl.stats().folded_instrs;
}

uint64_t dbll_rewriter_stat_inlined_calls(dbll_rewriter* r) {
  return r->impl.stats().inlined_calls;
}

uint64_t dbll_rewriter_stat_code_bytes(dbll_rewriter* r) {
  return r->impl.stats().code_bytes;
}

void dbll_rewriter_free(dbll_rewriter* r) { delete r; }

/* --- dbrew_*: deprecated aliases ------------------------------------------ */

dbrew_rewriter* dbrew_new(void* func) { return dbll_rewriter_new(func); }

void dbrew_setpar(dbrew_rewriter* r, int index, uint64_t value) {
  dbll_rewriter_setpar(r, index, value);
}

void dbrew_setmem(dbrew_rewriter* r, const void* start, const void* end) {
  dbll_rewriter_setmem(r, start, end);
}

void dbrew_set_buffer_size(dbrew_rewriter* r, uint64_t bytes) {
  dbll_rewriter_set_buffer_size(r, bytes);
}

void dbrew_set_verbose(dbrew_rewriter* r, int verbose) {
  dbll_rewriter_set_verbose(r, verbose);
}

void* dbrew_rewrite(dbrew_rewriter* r) { return dbll_rewriter_rewrite(r); }

const char* dbrew_last_error(dbrew_rewriter* r) {
  return dbll_rewriter_last_error(r);
}

void dbrew_set_unroll_cap(dbrew_rewriter* r, uint64_t cap) {
  dbll_rewriter_set_unroll_cap(r, cap);
}

void dbrew_set_inline_depth(dbrew_rewriter* r, int depth) {
  dbll_rewriter_set_inline_depth(r, depth);
}

uint64_t dbrew_stat_emitted(dbrew_rewriter* r) {
  return dbll_rewriter_stat_emitted(r);
}

uint64_t dbrew_stat_folded(dbrew_rewriter* r) {
  return dbll_rewriter_stat_folded(r);
}

uint64_t dbrew_stat_inlined_calls(dbrew_rewriter* r) {
  return dbll_rewriter_stat_inlined_calls(r);
}

uint64_t dbrew_stat_code_bytes(dbrew_rewriter* r) {
  return dbll_rewriter_stat_code_bytes(r);
}

void dbrew_free(dbrew_rewriter* r) { dbll_rewriter_free(r); }

/* --- dbll_cache_*: specialization cache + async compile service ----------- */

/// A dbll_cache_options_v1 field may only be read when the caller's binary
/// actually contains it: its apply bit is set AND it lies inside the
/// caller-declared struct_size prefix.
#define DBLL_OPT_PRESENT(opts, bit, field)                 \
  (((opts)->apply_mask & (bit)) != 0 &&                    \
   (opts)->struct_size >=                                  \
       offsetof(dbll_cache_options_v1, field) + sizeof((opts)->field))

dbll_cache* dbll_cache_new(int workers, uint64_t capacity) {
  dbll::runtime::CompileService::Options options;
  options.workers = workers;
  options.capacity = static_cast<std::size_t>(capacity);
  return new dbll_cache(options);
}

dbll_cache* dbll_cache_new_v1(const dbll_cache_options_v1* opts) {
  // Start from the library defaults; the CompileService constructor applies
  // the DBLL_* environment overrides on top (the shared ApplyEnv path), so a
  // NULL opts means "defaults + environment" with zero duplication here.
  dbll::runtime::CompileService::Options options;
  if (opts != nullptr && opts->struct_size >= sizeof(uint64_t)) {
    if (DBLL_OPT_PRESENT(opts, DBLL_CACHE_APPLY_WORKERS, workers)) {
      options.workers = opts->workers;
    }
    if (DBLL_OPT_PRESENT(opts, DBLL_CACHE_APPLY_CAPACITY, capacity)) {
      options.capacity = static_cast<std::size_t>(opts->capacity);
    }
    if (DBLL_OPT_PRESENT(opts, DBLL_CACHE_APPLY_DEADLINE, deadline_ms)) {
      options.default_deadline_ms = opts->deadline_ms;
    }
    if (DBLL_OPT_PRESENT(opts, DBLL_CACHE_APPLY_TIERING,
                         tiering_hot_threshold)) {
      options.tiering.enabled = opts->tiering_enabled != 0;
      if (opts->tiering_hot_threshold != 0) {
        options.tiering.hot_threshold = opts->tiering_hot_threshold;
      }
    }
    if (DBLL_OPT_PRESENT(opts, DBLL_CACHE_APPLY_PERSIST, persist_dir) &&
        opts->persist_dir != nullptr) {
      options.persist_dir = opts->persist_dir;
    }
    if (DBLL_OPT_PRESENT(opts, DBLL_CACHE_APPLY_SHM, shm_slot_bytes)) {
      options.shm = opts->shm_enabled != 0;
      if (opts->shm_slots != 0) options.shm_slots = opts->shm_slots;
      if (opts->shm_slot_bytes != 0) {
        options.shm_slot_bytes = opts->shm_slot_bytes;
      }
    }
    if (DBLL_OPT_PRESENT(opts, DBLL_CACHE_APPLY_CONTAIN,
                         contain_cooldown_ms)) {
      options.containment.enabled = opts->contain_enabled != 0;
      if (opts->contain_calls != 0) {
        options.containment.probation_calls = opts->contain_calls;
      }
      if (opts->contain_breaker_k != 0) {
        options.containment.breaker_threshold = opts->contain_breaker_k;
      }
      if (opts->contain_cooldown_ms != 0) {
        options.containment.breaker_cooldown_ms = opts->contain_cooldown_ms;
      }
    }
  }
  return new dbll_cache(options);
}

int dbll_cache_configure(dbll_cache* c, const dbll_cache_options_v1* opts) {
  if (c == nullptr || opts == nullptr) return -1;
  if (opts->struct_size <
      offsetof(dbll_cache_options_v1, apply_mask) + sizeof(opts->apply_mask)) {
    return -1;
  }
  // Construction-only knobs: fail before applying anything so the call is
  // all-or-nothing with respect to its own mask.
  if (opts->apply_mask &
      (DBLL_CACHE_APPLY_WORKERS | DBLL_CACHE_APPLY_CAPACITY |
       DBLL_CACHE_APPLY_CONTAIN)) {
    return -1;
  }
  if (DBLL_OPT_PRESENT(opts, DBLL_CACHE_APPLY_DEADLINE, deadline_ms)) {
    c->impl.set_default_deadline_ms(opts->deadline_ms);
  }
  if (DBLL_OPT_PRESENT(opts, DBLL_CACHE_APPLY_TIERING,
                       tiering_hot_threshold)) {
    dbll::runtime::TieringOptions tiering = c->impl.tiering();
    tiering.enabled = opts->tiering_enabled != 0;
    if (opts->tiering_hot_threshold != 0) {
      tiering.hot_threshold = opts->tiering_hot_threshold;
    }
    c->impl.set_tiering(tiering);
  }
  // Shm before persist: both re-attach the store, and a call carrying both
  // should end up with one store built from the *new* ring knobs.
  if (DBLL_OPT_PRESENT(opts, DBLL_CACHE_APPLY_SHM, shm_slot_bytes)) {
    c->impl.set_shm_options(opts->shm_enabled != 0, opts->shm_slots,
                            opts->shm_slot_bytes);
  }
  if (DBLL_OPT_PRESENT(opts, DBLL_CACHE_APPLY_PERSIST, persist_dir) &&
      opts->persist_dir != nullptr) {
    const dbll::Status status = c->impl.set_persist_dir(opts->persist_dir);
    if (!status.ok()) return -1;  // cause via dbll_cache_last_error
  }
  return 0;
}

void dbll_cache_free(dbll_cache* c) { delete c; }

dbll_cache_req* dbll_cache_request(dbll_cache* c, void* func, int int_args,
                                   int returns_value) {
  auto* q = new dbll_cache_req;
  q->cache = c;
  q->request.address = reinterpret_cast<std::uint64_t>(func);
  q->request.signature = dbll::lift::Signature::Ints(
      int_args, returns_value != 0 ? dbll::lift::RetKind::kInt
                                   : dbll::lift::RetKind::kVoid);
  return q;
}

void dbll_cache_req_setpar(dbll_cache_req* q, int index, uint64_t value) {
  q->request.FixParam(index - 1, value);  // paper examples are 1-based
}

void dbll_cache_req_setmem(dbll_cache_req* q, int index, const void* data,
                           uint64_t size) {
  q->request.FixConstMem(index - 1, data, static_cast<std::size_t>(size));
}

void* dbll_cache_call_target(dbll_cache_req* q) {
  q->Submit();
  return reinterpret_cast<void*>(q->handle.target());
}

void* dbll_cache_wait(dbll_cache_req* q) {
  q->Submit();
  return reinterpret_cast<void*>(q->handle.wait());
}

int dbll_cache_ready(dbll_cache_req* q) {
  q->Submit();
  return q->handle.specialized() ? 1 : 0;
}

int dbll_handle_tier(dbll_cache_req* q) {
  q->Submit();
  q->handle.wait();  // tier is meaningful once terminal
  return static_cast<int>(q->handle.tier());
}

uint64_t dbll_handle_calls(dbll_cache_req* q) {
  q->Submit();
  return q->handle.calls();
}

uint64_t dbll_handle_deopts(dbll_cache_req* q) {
  q->Submit();
  return q->handle.deopts();
}

void dbll_cache_req_set_deadline_ms(dbll_cache_req* q, uint32_t deadline_ms) {
  q->request.deadline_ms = deadline_ms;
}

const char* dbll_cache_req_last_error(dbll_cache_req* q) {
  using State = dbll::runtime::FunctionHandle::State;
  if (q->submitted && q->handle.state() == State::kFailed) {
    q->last_error = q->handle.error().Format();
  } else {
    q->last_error.clear();
  }
  return q->last_error.c_str();
}

const char* dbll_cache_req_error(dbll_cache_req* q) {
  return dbll_cache_req_last_error(q);
}

void dbll_cache_req_free(dbll_cache_req* q) { delete q; }

const char* dbll_cache_last_error(dbll_cache* c) {
  const dbll::Error error = c->impl.last_error();
  c->last_error = error.ok() ? std::string() : error.Format();
  return c->last_error.c_str();
}

int dbll_cache_get_stats(dbll_cache* c, dbll_cache_stats_v1* out) {
  if (c == nullptr || out == nullptr) return -1;
  const uint64_t caller_size = out->struct_size;
  if (caller_size < sizeof(uint64_t)) return -1;

  const dbll::runtime::CacheStats s = c->impl.stats();
  dbll_cache_stats_v1 full;
  std::memset(&full, 0, sizeof(full));
  full.struct_size = sizeof(full);
  full.hits = s.hits;
  full.coalesced = s.coalesced;
  full.misses = s.misses;
  full.evictions = s.evictions;
  full.failures = s.failures;
  full.compiles = s.compiles;
  full.tier0_failures = s.tier0_failures;
  full.tier1_serves = s.tier1_serves;
  full.tier2_serves = s.tier2_serves;
  full.retries = s.retries;
  full.timeouts = s.timeouts;
  full.negative_hits = s.negative_hits;
  full.queue_rejected = s.queue_rejected;
  full.lift_ns = s.stage_total.lift_ns;
  full.opt_ns = s.stage_total.opt_ns;
  full.jit_ns = s.stage_total.jit_ns;
  full.tier1_ns = s.stage_total.tier1_ns;
  full.tier0a_ns = s.stage_total.tier0a_ns;
  full.compile_ns = s.stage_total.total_ns();
  full.tier0a_compiles = s.tier0a_compiles;
  full.interim_installs = s.interim_installs;
  full.baseline_installs = s.baseline_installs;
  full.promotions = s.promotions;
  full.promote_failures = s.promote_failures;
  full.deopts = s.deopts;
  full.disk_hits = s.disk_hits;
  full.disk_misses = s.disk_misses;
  full.disk_stores = s.disk_stores;
  full.disk_evictions = s.disk_evictions;
  full.disk_load_ns = s.disk_load_ns;
  full.disk_store_ns = s.disk_store_ns;
  full.shm_attached = s.shm_attached;
  full.shm_entries = s.shm_entries;
  full.shm_hits = s.shm_hits;
  full.shm_misses = s.shm_misses;
  full.shm_inserts = s.shm_inserts;
  full.shm_evictions = s.shm_evictions;
  full.shm_errors = s.shm_errors;
  full.probation_installs = s.probation_installs;
  full.probation_clean = s.probation_clean;
  full.probation_faults = s.probation_faults;
  full.quarantined = s.quarantined;
  full.breaker_opens = s.breaker_opens;
  full.breaker_closes = s.breaker_closes;
  full.breaker_probes = s.breaker_probes;
  full.breaker_denials = s.breaker_denials;

  // Copy exactly the prefix both sides know; zero the tail the caller
  // declared but this library predates.
  const std::size_t known =
      caller_size < sizeof(full) ? static_cast<std::size_t>(caller_size)
                                 : sizeof(full);
  if (caller_size > sizeof(full)) {
    std::memset(out, 0, static_cast<std::size_t>(caller_size));
  }
  std::memcpy(out, &full, known);
  return 0;
}

/* Deprecated one-off getters/setters: thin wrappers over the struct API. */

uint64_t dbll_cache_stat_hits(dbll_cache* c) {
  dbll_cache_stats_v1 s;
  s.struct_size = sizeof(s);
  if (dbll_cache_get_stats(c, &s) != 0) return 0;
  return s.hits + s.coalesced;  // this getter always counted joins as hits
}

uint64_t dbll_cache_stat_misses(dbll_cache* c) {
  dbll_cache_stats_v1 s;
  s.struct_size = sizeof(s);
  return dbll_cache_get_stats(c, &s) == 0 ? s.misses : 0;
}

uint64_t dbll_cache_stat_evictions(dbll_cache* c) {
  dbll_cache_stats_v1 s;
  s.struct_size = sizeof(s);
  return dbll_cache_get_stats(c, &s) == 0 ? s.evictions : 0;
}

uint64_t dbll_cache_stat_compiles(dbll_cache* c) {
  dbll_cache_stats_v1 s;
  s.struct_size = sizeof(s);
  return dbll_cache_get_stats(c, &s) == 0 ? s.compiles : 0;
}

uint64_t dbll_cache_stat_compile_ns(dbll_cache* c) {
  dbll_cache_stats_v1 s;
  s.struct_size = sizeof(s);
  return dbll_cache_get_stats(c, &s) == 0 ? s.compile_ns : 0;
}

void dbll_cache_set_deadline_ms(dbll_cache* c, uint32_t deadline_ms) {
  dbll_cache_options_v1 o;
  std::memset(&o, 0, sizeof(o));
  o.struct_size = sizeof(o);
  o.apply_mask = DBLL_CACHE_APPLY_DEADLINE;
  o.deadline_ms = deadline_ms;
  dbll_cache_configure(c, &o);
}

void dbll_cache_set_tiering(dbll_cache* c, int enable, uint64_t hot_threshold) {
  dbll_cache_options_v1 o;
  std::memset(&o, 0, sizeof(o));
  o.struct_size = sizeof(o);
  o.apply_mask = DBLL_CACHE_APPLY_TIERING;
  o.tiering_enabled = enable != 0 ? 1 : 0;
  o.tiering_hot_threshold = hot_threshold;  // 0 = keep current threshold
  dbll_cache_configure(c, &o);
}

uint64_t dbll_cache_stat_baseline_installs(dbll_cache* c) {
  dbll_cache_stats_v1 s;
  s.struct_size = sizeof(s);
  return dbll_cache_get_stats(c, &s) == 0 ? s.baseline_installs : 0;
}

uint64_t dbll_cache_stat_interim_installs(dbll_cache* c) {
  dbll_cache_stats_v1 s;
  s.struct_size = sizeof(s);
  return dbll_cache_get_stats(c, &s) == 0 ? s.interim_installs : 0;
}

uint64_t dbll_cache_stat_promotions(dbll_cache* c) {
  dbll_cache_stats_v1 s;
  s.struct_size = sizeof(s);
  return dbll_cache_get_stats(c, &s) == 0 ? s.promotions : 0;
}

uint64_t dbll_cache_stat_deopts(dbll_cache* c) {
  dbll_cache_stats_v1 s;
  s.struct_size = sizeof(s);
  return dbll_cache_get_stats(c, &s) == 0 ? s.deopts : 0;
}

uint64_t dbll_cache_stat_tier0a_ns(dbll_cache* c) {
  dbll_cache_stats_v1 s;
  s.struct_size = sizeof(s);
  return dbll_cache_get_stats(c, &s) == 0 ? s.tier0a_ns : 0;
}

int dbll_cache_set_persist_dir(dbll_cache* c, const char* dir) {
  if (c == nullptr) return -1;
  dbll_cache_options_v1 o;
  std::memset(&o, 0, sizeof(o));
  o.struct_size = sizeof(o);
  o.apply_mask = DBLL_CACHE_APPLY_PERSIST;
  // This setter's documented contract rejects NULL/"" via last_error, so
  // NULL maps to "" (rejected by the service) instead of configure's
  // NULL-means-keep.
  o.persist_dir = dir != nullptr ? dir : "";
  return dbll_cache_configure(c, &o);
}

int dbll_cache_persist_enabled(dbll_cache* c) {
  return c->impl.persist_enabled() ? 1 : 0;
}

void dbll_cache_wait_idle(dbll_cache* c) { c->impl.WaitIdle(); }

void dbll_cache_persist_stats(dbll_cache* c, dbll_persist_stats* out) {
  if (out == nullptr) return;
  const dbll::runtime::ObjectStoreStats stats = c->impl.persist_stats();
  out->hits = stats.hits;
  out->misses = stats.misses;
  out->stores = stats.stores;
  out->evictions = stats.evictions;
  out->corrupt_dropped = stats.corrupt_dropped;
  out->errors = stats.errors;
  out->load_ns = stats.load_ns;
  out->store_ns = stats.store_ns;
  out->shm_attached = stats.shm_attached;
  out->shm_slots = stats.shm_slots;
  out->shm_entries = stats.shm_entries;
  out->shm_hits = stats.shm_hits;
  out->shm_misses = stats.shm_misses;
  out->shm_inserts = stats.shm_inserts;
  out->shm_evictions = stats.shm_evictions;
  out->shm_errors = stats.shm_errors;
}

int dbll_jit_isa_level(void) {
  return static_cast<int>(dbll::support::EffectiveIsaLevel());
}

uint64_t dbll_cache_stat_isa_refused(dbll_cache* c) {
  if (c == nullptr) return 0;
  return c->impl.persist_stats().isa_refused;
}

/* --- dbll_containment_*: crash containment --------------------------------- */

uint64_t dbll_containment_recovered_faults(void) {
  return dbll::support::CrashGuardRecoveredFaults();
}

int dbll_containment_quarantine(dbll_cache* c, uint64_t fingerprint,
                                const char* reason) {
  if (c == nullptr) return -1;
  const dbll::Status status = c->impl.QuarantineObject(
      fingerprint, reason != nullptr ? std::string(reason) : std::string());
  c->last_error = status.ok() ? std::string() : status.error().Format();
  return status.ok() ? 0 : 1;
}

int64_t dbll_containment_quarantine_count(const char* dir) {
  if (dir == nullptr) return -1;
  auto records = dbll::runtime::Quarantine::ReadDir(dir);
  if (!records.has_value()) return -1;
  return static_cast<int64_t>(records->size());
}

int64_t dbll_containment_quarantine_clear(const char* dir) {
  if (dir == nullptr) return -1;
  auto cleared = dbll::runtime::Quarantine::Clear(dir);
  if (!cleared.has_value()) return -1;
  return static_cast<int64_t>(*cleared);
}

/* --- dbll_analyze_*: static lift-eligibility audit ------------------------- */

/// Backing store for dbll_analyze_last_error. Thread-local because the audit
/// has no object to hang the error on; the pointer stays valid until the
/// same thread audits again.
static thread_local std::string g_analyze_last_error;

int dbll_analyze_function_ex(void* func, int flags, int* worst_severity) {
  if (worst_severity != nullptr) *worst_severity = DBLL_ANALYZE_INFO;
  if (func == nullptr) {
    g_analyze_last_error = "dbll_analyze_function: func is NULL";
    return -1;
  }
  dbll::analysis::AuditOptions options;
  if (flags & DBLL_ANALYZE_NO_RANGES) options.value_ranges = false;
  const dbll::analysis::AuditReport report = dbll::analysis::AuditFunction(
      reinterpret_cast<std::uint64_t>(func), options);
  if (worst_severity != nullptr) {
    *worst_severity = static_cast<int>(report.worst());
  }
  const dbll::analysis::Diagnostic* fatal = report.first_fatal();
  g_analyze_last_error =
      fatal != nullptr
          ? std::string(dbll::analysis::ToString(fatal->kind)) + ": " +
                fatal->message
          : std::string();
  return static_cast<int>(report.diagnostics.size());
}

int dbll_analyze_function(void* func, int* worst_severity) {
  return dbll_analyze_function_ex(func, 0, worst_severity);
}

const char* dbll_analyze_last_error(void) {
  return g_analyze_last_error.c_str();
}

/* --- dbll_fault_*: fault injection ----------------------------------------- */

int dbll_fault_arm(const char* site, const char* kind, uint64_t after_n) {
  auto parsed = dbll::fault::ParseErrorKind(kind != nullptr ? kind : "");
  if (!parsed.has_value()) return 1;
  dbll::fault::Spec spec;
  spec.kind = *parsed;
  spec.after_n = after_n;
  dbll::fault::Arm(site != nullptr ? site : "", spec);
  return 0;
}

void dbll_fault_disarm_all(void) { dbll::fault::DisarmAll(); }

uint64_t dbll_fault_fire_count(const char* site) {
  return dbll::fault::FireCount(site != nullptr ? site : "");
}

/* --- dbll_obs_*: observability -------------------------------------------- */

void dbll_obs_trace_enable(void) { dbll::obs::Tracer::Default().Enable(); }

void dbll_obs_trace_disable(void) { dbll::obs::Tracer::Default().Disable(); }

int dbll_obs_trace_enabled(void) {
  return dbll::obs::Tracer::Default().enabled() ? 1 : 0;
}

void dbll_obs_trace_clear(void) { dbll::obs::Tracer::Default().Clear(); }

int dbll_obs_trace_write(const char* path) {
  return dbll::obs::Tracer::Default().WriteChromeTrace(path) ? 0 : 1;
}

uint64_t dbll_obs_value(const char* name) {
  return dbll::obs::Registry::Default().Value(name);
}

dbll_obs_snapshot* dbll_obs_snapshot_new(void) {
  auto* s = new dbll_obs_snapshot;
  s->entries = dbll::obs::Registry::Default().Snapshot();
  return s;
}

uint64_t dbll_obs_snapshot_size(const dbll_obs_snapshot* s) {
  return s->entries.size();
}

const char* dbll_obs_snapshot_name(const dbll_obs_snapshot* s, uint64_t i) {
  if (i >= s->entries.size()) return nullptr;
  return s->entries[static_cast<std::size_t>(i)].name.c_str();
}

uint64_t dbll_obs_snapshot_value(const dbll_obs_snapshot* s, uint64_t i) {
  if (i >= s->entries.size()) return 0;
  return s->entries[static_cast<std::size_t>(i)].value;
}

void dbll_obs_snapshot_free(dbll_obs_snapshot* s) { delete s; }

}  // extern "C"
