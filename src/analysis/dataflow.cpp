#include "dbll/analysis/dataflow.h"

#include <bit>
#include <deque>

#include "dbll/x86/printer.h"

namespace dbll::analysis {

LocSet LocSet::FromReg(x86::Reg reg) {
  switch (reg.cls) {
    case x86::RegClass::kGp:
      return Gp(reg.index);
    case x86::RegClass::kVec:
      return Vec(reg.index);
    default:
      return LocSet();
  }
}

int LocSet::count() const { return std::popcount(bits_); }

std::string LocSet::ToString() const {
  static constexpr const char* kFlagNames[x86::kFlagCount] = {"ZF", "SF", "CF",
                                                              "OF", "PF", "AF"};
  std::string out;
  auto append = [&out](const std::string& name) {
    if (!out.empty()) out += ' ';
    out += name;
  };
  for (int i = 0; i < x86::kGpRegCount; ++i) {
    if (TestGp(i)) append(x86::PrintReg(x86::Gp(static_cast<std::uint8_t>(i)), 8));
  }
  for (int i = 0; i < x86::kVecRegCount; ++i) {
    if (TestVec(i)) append(x86::PrintReg(x86::Xmm(static_cast<std::uint8_t>(i)), 16));
  }
  for (int f = 0; f < x86::kFlagCount; ++f) {
    if (TestFlag(static_cast<x86::Flag>(f))) append(kFlagNames[f]);
  }
  if (out.empty()) out = "(none)";
  return out;
}

DataflowResult Solve(Direction direction, const Graph& graph,
                     const std::vector<Transfer>& transfer, LocSet boundary) {
  const int n = static_cast<int>(graph.size());
  DataflowResult result;
  result.in.assign(static_cast<std::size_t>(n), LocSet());
  result.out.assign(static_cast<std::size_t>(n), LocSet());
  if (n == 0) return result;

  const bool backward = direction == Direction::kBackward;
  // For a backward problem we propagate against the edges: a block's input
  // comes from its successors, and changing its result re-queues its
  // predecessors. Forward is the mirror image.
  const auto& sources = backward ? graph.succs : graph.preds;
  const auto& dependents = backward ? graph.preds : graph.succs;

  std::deque<int> worklist;
  std::vector<char> queued(static_cast<std::size_t>(n), 1);
  // Seed in reverse order for backward problems so exit blocks are processed
  // first; purely a convergence-speed heuristic, the fixpoint is unique.
  for (int i = 0; i < n; ++i) worklist.push_back(backward ? n - 1 - i : i);

  while (!worklist.empty()) {
    const int b = worklist.front();
    worklist.pop_front();
    queued[static_cast<std::size_t>(b)] = 0;
    ++result.iterations;

    LocSet meet = sources[static_cast<std::size_t>(b)].empty() ? boundary
                                                               : LocSet();
    for (int s : sources[static_cast<std::size_t>(b)]) {
      meet |= backward ? result.in[static_cast<std::size_t>(s)]
                       : result.out[static_cast<std::size_t>(s)];
    }
    const Transfer& t = transfer[static_cast<std::size_t>(b)];
    const LocSet applied = t.gen | (meet - t.kill);

    LocSet& meet_slot = backward ? result.out[static_cast<std::size_t>(b)]
                                 : result.in[static_cast<std::size_t>(b)];
    LocSet& applied_slot = backward ? result.in[static_cast<std::size_t>(b)]
                                    : result.out[static_cast<std::size_t>(b)];
    meet_slot = meet;
    if (applied == applied_slot) continue;
    applied_slot = applied;
    for (int d : dependents[static_cast<std::size_t>(b)]) {
      if (!queued[static_cast<std::size_t>(d)]) {
        queued[static_cast<std::size_t>(d)] = 1;
        worklist.push_back(d);
      }
    }
  }
  return result;
}

CfgIndex::CfgIndex(const x86::Cfg& cfg) {
  blocks.reserve(cfg.blocks.size());
  for (const auto& [start, block] : cfg.blocks) {
    block_of.emplace(start, static_cast<int>(blocks.size()));
    blocks.push_back(&block);
  }
  const std::size_t n = blocks.size();
  graph.succs.assign(n, {});
  graph.preds.assign(n, {});
  graph.entry = block_of.count(cfg.entry) != 0 ? block_of.at(cfg.entry) : 0;
  for (std::size_t i = 0; i < n; ++i) {
    const x86::BasicBlock& block = *blocks[i];
    if (block.branch_target != 0) {
      graph.succs[i].push_back(block_of.at(block.branch_target));
    }
    if (block.fall_through != 0 &&
        block.fall_through != block.branch_target) {
      graph.succs[i].push_back(block_of.at(block.fall_through));
    }
    for (std::uint64_t target : block.indirect_targets) {
      const int succ = block_of.at(target);
      bool present = false;
      for (int existing : graph.succs[i]) present = present || existing == succ;
      if (!present) graph.succs[i].push_back(succ);
    }
    for (std::uint64_t pred : block.predecessors) {
      graph.preds[i].push_back(block_of.at(pred));
    }
  }
}

}  // namespace dbll::analysis
