#include "dbll/analysis/ranges.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <deque>
#include <optional>
#include <set>
#include <utility>

#include "dbll/analysis/liveness.h"
#include "dbll/obs/obs.h"

namespace dbll::analysis {
namespace {

using x86::Cond;
using x86::Instr;
using x86::MemOperand;
using x86::Mnemonic;
using x86::Operand;
using x86::Reg;
using x86::RegClass;

/// Counters resolved once (same pattern as AuditMetrics): the registry
/// lookup takes a lock, the Add() is atomic.
struct RangeMetrics {
  obs::Counter& computed;
  obs::Counter& over_budget;
  obs::Counter& tables_resolved;

  static RangeMetrics& Get() {
    static RangeMetrics metrics{
        obs::Registry::Default().GetCounter("analysis.ranges"),
        obs::Registry::Default().GetCounter("analysis.ranges_over_budget"),
        obs::Registry::Default().GetCounter("analysis.jump_tables"),
    };
    return metrics;
  }
};

constexpr std::uint64_t kSignBit63 = 1ull << 63;

/// Smallest all-ones mask covering `v` (0 -> 0). Bounds or/xor results.
std::uint64_t MaskCover(std::uint64_t v) {
  if (v == 0) return 0;
  return ~0ull >> (64 - std::bit_width(v));
}

std::uint64_t WidthMask(int width) {
  return width >= 8 ? ~0ull : (1ull << (8 * width)) - 1;
}

/// Drops interval/known-bits inconsistencies conservatively: the struct
/// invariants only require each constraint to be individually sound.
ValueRange Normalize(ValueRange r) {
  r.known_val &= r.known_mask;
  if (r.known_mask == ~0ull) {
    r.lo = r.known_val;
    r.hi = r.known_val;
  }
  if (r.lo == r.hi) {
    r.known_mask = ~0ull;
    r.known_val = r.lo;
  }
  return r;
}

}  // namespace

ValueRange Join(const ValueRange& a, const ValueRange& b) {
  ValueRange r;
  r.lo = std::min(a.lo, b.lo);
  r.hi = std::max(a.hi, b.hi);
  r.known_mask = a.known_mask & b.known_mask & ~(a.known_val ^ b.known_val);
  r.known_val = a.known_val & r.known_mask;
  return Normalize(r);
}

ValueRange Widen(const ValueRange& previous, const ValueRange& next) {
  ValueRange r = next;
  if (next.lo < previous.lo) r.lo = 0;
  if (next.hi > previous.hi) r.hi = ~0ull;
  // Known bits form a finite descending chain (64 levels), so the plain join
  // already terminates; no extra widening needed.
  return Normalize(r);
}

ValueRange Meet(const ValueRange& a, const ValueRange& b) {
  ValueRange r = a;
  r.lo = std::max(a.lo, b.lo);
  r.hi = std::min(a.hi, b.hi);
  if (r.lo > r.hi) return a;  // contradictory refinement: keep the base
  if ((a.known_val ^ b.known_val) & a.known_mask & b.known_mask) return a;
  r.known_mask = a.known_mask | b.known_mask;
  r.known_val = (a.known_val | b.known_val) & r.known_mask;
  return Normalize(r);
}

ValueRange RangeAdd(const ValueRange& a, const ValueRange& b) {
  ValueRange r = ValueRange::Top();
  const std::uint64_t lo = a.lo + b.lo;
  const std::uint64_t hi = a.hi + b.hi;
  // Wrap-free iff neither bound addition overflows.
  if (lo >= a.lo && hi >= a.hi) {
    r.lo = lo;
    r.hi = hi;
  }
  // Low bits stay known as long as every lower carry is determined.
  const int low = std::countr_one(a.known_mask & b.known_mask);
  if (low > 0) {
    r.known_mask = low >= 64 ? ~0ull : (1ull << low) - 1;
    r.known_val = (a.known_val + b.known_val) & r.known_mask;
  }
  return Normalize(r);
}

ValueRange RangeSub(const ValueRange& a, const ValueRange& b) {
  ValueRange r = ValueRange::Top();
  if (a.lo >= b.hi) {  // no bound underflows
    r.lo = a.lo - b.hi;
    r.hi = a.hi - b.lo;
  }
  const int low = std::countr_one(a.known_mask & b.known_mask);
  if (low > 0) {
    r.known_mask = low >= 64 ? ~0ull : (1ull << low) - 1;
    r.known_val = (a.known_val - b.known_val) & r.known_mask;
  }
  return Normalize(r);
}

ValueRange RangeAnd(const ValueRange& a, const ValueRange& b) {
  ValueRange r;
  const std::uint64_t zero = (a.known_mask & ~a.known_val) |
                             (b.known_mask & ~b.known_val);
  const std::uint64_t one = (a.known_mask & a.known_val) &
                            (b.known_mask & b.known_val);
  r.known_mask = zero | one;
  r.known_val = one;
  r.lo = one;  // bits proven one give a floor
  r.hi = std::min(a.hi, b.hi);
  if (r.lo > r.hi) r.lo = 0;  // constraints came from different sources
  return Normalize(r);
}

ValueRange RangeOr(const ValueRange& a, const ValueRange& b) {
  ValueRange r;
  const std::uint64_t one = (a.known_mask & a.known_val) |
                            (b.known_mask & b.known_val);
  const std::uint64_t zero = (a.known_mask & ~a.known_val) &
                             (b.known_mask & ~b.known_val);
  r.known_mask = zero | one;
  r.known_val = one;
  r.lo = std::max({a.lo, b.lo, one});
  r.hi = MaskCover(std::max(a.hi, b.hi));
  if (r.lo > r.hi) r.lo = 0;
  return Normalize(r);
}

ValueRange RangeXor(const ValueRange& a, const ValueRange& b) {
  ValueRange r;
  r.known_mask = a.known_mask & b.known_mask;
  r.known_val = (a.known_val ^ b.known_val) & r.known_mask;
  r.lo = 0;
  r.hi = MaskCover(std::max(a.hi, b.hi));
  return Normalize(r);
}

ValueRange RangeMul(const ValueRange& a, const ValueRange& b) {
  if (a.IsConstant() && b.IsConstant()) {
    return ValueRange::Constant(a.ConstantValue() * b.ConstantValue());
  }
  const unsigned __int128 hi =
      static_cast<unsigned __int128>(a.hi) * b.hi;
  if (hi > ~0ull) return ValueRange::Top();
  return Normalize(ValueRange::Bounded(a.lo * b.lo, static_cast<std::uint64_t>(hi)));
}

namespace {
/// Hardware shift-count masking: 8-byte operands take the count modulo 64,
/// narrower ones modulo 32 (the decoder only clamps immediates to 0x3f, so
/// `shr eax, 33` reaches us with count 33 but shifts by 1).
std::uint64_t MaskShiftCount(std::uint64_t count, int width) {
  return count & (width == 8 ? 63u : 31u);
}
}  // namespace

ValueRange RangeShl(const ValueRange& a, const ValueRange& amount,
                    int width) {
  if (!amount.IsConstant()) return ValueRange::Top();
  const std::uint64_t c = MaskShiftCount(amount.ConstantValue(), width);
  if (c == 0) return a;
  ValueRange r = ValueRange::Top();
  if (a.hi <= (~0ull >> c)) {  // no bit shifts out
    r.lo = a.lo << c;
    r.hi = a.hi << c;
  }
  r.known_mask = (a.known_mask << c) | ((1ull << c) - 1);
  r.known_val = a.known_val << c;
  return Normalize(r);
}

ValueRange RangeShr(const ValueRange& a, const ValueRange& amount,
                    int width) {
  if (!amount.IsConstant()) return ValueRange::Top();
  const std::uint64_t c = MaskShiftCount(amount.ConstantValue(), width);
  if (c == 0) return a;
  ValueRange r;
  r.lo = a.lo >> c;
  r.hi = a.hi >> c;
  r.known_mask = (a.known_mask >> c) | ~(~0ull >> c);
  r.known_val = a.known_val >> c;
  return Normalize(r);
}

ValueRange TruncateToWidth(const ValueRange& a, int width) {
  if (width >= 8) return a;
  const std::uint64_t mask = WidthMask(width);
  ValueRange r;
  r.known_mask = a.known_mask & mask;
  r.known_val = a.known_val & mask;
  if (a.hi <= mask) {
    r.lo = a.lo;
    r.hi = a.hi;
  } else {
    r.lo = 0;
    r.hi = mask;
  }
  return Normalize(r);
}

ValueRange RefineByCondition(const ValueRange& reg, Cond cond,
                             std::uint64_t constant) {
  ValueRange r = reg;
  switch (cond) {
    case Cond::kE:
      return Meet(reg, ValueRange::Constant(constant));
    case Cond::kNe:
      if (reg.lo == constant && reg.lo < reg.hi) r.lo = reg.lo + 1;
      if (reg.hi == constant && reg.lo < reg.hi) r.hi = reg.hi - 1;
      break;
    case Cond::kB:  // unsigned <
      if (constant == 0) return reg;  // infeasible edge
      r.hi = std::min(reg.hi, constant - 1);
      break;
    case Cond::kBe:  // unsigned <=
      r.hi = std::min(reg.hi, constant);
      break;
    case Cond::kA:  // unsigned >
      if (constant == ~0ull) return reg;
      r.lo = std::max(reg.lo, constant + 1);
      break;
    case Cond::kAe:  // unsigned >=
      r.lo = std::max(reg.lo, constant);
      break;
    // Signed conditions refine only where the unsigned picture is
    // unambiguous: a non-negative comparand either pins the value into
    // [0, 2^63) (>=/>) or requires a proven-non-negative register (<,<=).
    case Cond::kGe:  // signed >=
      if (constant >= kSignBit63) return reg;
      r.lo = std::max(reg.lo, constant);
      r.hi = std::min(reg.hi, kSignBit63 - 1);
      break;
    case Cond::kG:  // signed >
      if (constant + 1 >= kSignBit63) return reg;
      r.lo = std::max(reg.lo, constant + 1);
      r.hi = std::min(reg.hi, kSignBit63 - 1);
      break;
    case Cond::kL:  // signed <
      if (constant == 0 || constant >= kSignBit63 || reg.hi >= kSignBit63) {
        return reg;
      }
      r.hi = std::min(reg.hi, constant - 1);
      break;
    case Cond::kLe:  // signed <=
      if (constant >= kSignBit63 || reg.hi >= kSignBit63) return reg;
      r.hi = std::min(reg.hi, constant);
      break;
    default:  // flag conditions with no interval meaning (kO, kS, kP, ...)
      return reg;
  }
  if (r.lo > r.hi) return reg;  // infeasible edge: keep the sound superset
  return Normalize(r);
}

namespace {

using GpState = FunctionRanges::GpState;

GpState TopState() { return GpState{}; }

bool IsGp(Reg reg) { return reg.cls == RegClass::kGp; }

/// Reads a register operand of `width` bytes as a zero-extended value.
ValueRange RegRead(const GpState& state, Reg reg, int width) {
  if (!IsGp(reg)) return ValueRange::Top();
  return TruncateToWidth(state[reg.index], width);
}

/// Abstract effective address of a memory operand. RIP-relative operands
/// were resolved by the decoder into Instr::target.
ValueRange AddrRange(const GpState& state, const Instr& instr,
                     const MemOperand& mem) {
  if (mem.segment != x86::Segment::kNone) return ValueRange::Top();
  if (mem.base == x86::kRip) return ValueRange::Constant(instr.target);
  ValueRange addr = ValueRange::Constant(
      static_cast<std::uint64_t>(static_cast<std::int64_t>(mem.disp)));
  if (mem.base.valid()) {
    if (!IsGp(mem.base)) return ValueRange::Top();
    addr = RangeAdd(addr, state[mem.base.index]);
  }
  if (mem.index.valid()) {
    if (!IsGp(mem.index)) return ValueRange::Top();
    addr = RangeAdd(addr, RangeMul(state[mem.index.index],
                                   ValueRange::Constant(mem.scale)));
  }
  return addr;
}

/// Reads `size` bytes of process memory at `addr` zero-extended to 64 bits.
std::uint64_t ReadMemory(std::uint64_t addr, int size) {
  std::uint64_t value = 0;
  std::memcpy(&value, reinterpret_cast<const void*>(addr),
              static_cast<std::size_t>(size));
  return value;
}

/// Value produced by a `size`-byte zero-extending load whose address has the
/// given abstract value. Reads through declared-constant regions when the
/// address is a proven singleton.
ValueRange LoadValue(const ValueRange& addr, int size,
                     const RangeOptions& options) {
  if (size != 1 && size != 2 && size != 4 && size != 8) {
    return ValueRange::Top();
  }
  if (addr.IsConstant()) {
    for (const ConstRegion& region : options.const_regions) {
      if (region.ContainsRange(addr.ConstantValue(),
                               static_cast<std::uint64_t>(size))) {
        return ValueRange::Constant(ReadMemory(addr.ConstantValue(), size));
      }
    }
  }
  return size < 8 ? ValueRange::Bounded(0, WidthMask(size))
                  : ValueRange::Top();
}

std::uint64_t SignExtend(std::uint64_t value, int width) {
  const int shift = 64 - 8 * width;
  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(value << shift) >> shift);
}

/// Writes `value` into the GP destination `op`, honoring the x86 width
/// rules: 8-byte writes replace, 4-byte writes zero-extend, narrower writes
/// merge with unmodeled upper bits (degraded to top).
void WriteGp(GpState& state, const Operand& op, ValueRange value) {
  if (!op.is_reg() || !IsGp(op.reg)) return;
  if (op.size == 8) {
    state[op.reg.index] = value;
  } else if (op.size == 4) {
    state[op.reg.index] = TruncateToWidth(value, 4);
  } else {
    state[op.reg.index] = ValueRange::Top();
  }
}

void ClobberGp(GpState& state, int index) {
  state[static_cast<std::size_t>(index)] = ValueRange::Top();
}

/// SysV caller-saved GP registers (no red-zone modeling: a call makes no
/// promise about them).
void ClobberCallerSaved(GpState& state) {
  for (int index : {0, 1, 2, 6, 7, 8, 9, 10, 11}) ClobberGp(state, index);
}

/// Reads an operand of its access width as a zero-extended 64-bit value.
ValueRange OperandRange(const GpState& state, const Instr& instr,
                        const Operand& op, const RangeOptions& options) {
  switch (op.kind) {
    case x86::OpKind::kImm:
      return ValueRange::Constant(static_cast<std::uint64_t>(op.imm) &
                                  WidthMask(op.size));
    case x86::OpKind::kReg:
      if (op.high8) return ValueRange::Bounded(0, 0xff);
      return RegRead(state, op.reg, op.size);
    case x86::OpKind::kMem:
      return LoadValue(AddrRange(state, instr, op.mem), op.size, options);
    default:
      return ValueRange::Top();
  }
}

/// One-instruction abstract step. `loads` (optional) records the value range
/// of tracked memory loads for the lifter's !range annotations.
void TransferInstr(GpState& state, const Instr& instr,
                   const RangeOptions& options,
                   std::map<std::uint64_t, ValueRange>* loads) {
  const Operand& dst = instr.ops[0];
  const Operand& src = instr.ops[1];
  auto record_load = [&](const ValueRange& value) {
    if (loads == nullptr || !src.is_mem() || value.IsTop()) return;
    (*loads)[instr.address] = value;
  };
  switch (instr.mnemonic) {
    case Mnemonic::kMov: {
      if (!dst.is_reg()) return;  // store: no GP effect
      ValueRange value = OperandRange(state, instr, src, options);
      record_load(value);
      WriteGp(state, dst, value);
      return;
    }
    case Mnemonic::kMovzx: {
      ValueRange value = OperandRange(state, instr, src, options);
      record_load(value);
      WriteGp(state, dst, value);
      return;
    }
    case Mnemonic::kMovsx:
    case Mnemonic::kMovsxd: {
      ValueRange value = OperandRange(state, instr, src, options);
      if (value.IsConstant()) {
        value = ValueRange::Constant(
            SignExtend(value.ConstantValue(), src.size));
      } else if (value.hi < (1ull << (8 * src.size - 1))) {
        // Sign bit provably clear: sign- and zero-extension agree.
      } else {
        value = ValueRange::Top();
      }
      record_load(value);
      WriteGp(state, dst, value);
      return;
    }
    case Mnemonic::kLea:
      WriteGp(state, dst, AddrRange(state, instr, src.mem));
      return;
    case Mnemonic::kAdd:
      WriteGp(state, dst,
              RangeAdd(OperandRange(state, instr, dst, options),
                       OperandRange(state, instr, src, options)));
      return;
    case Mnemonic::kSub:
      WriteGp(state, dst,
              RangeSub(OperandRange(state, instr, dst, options),
                       OperandRange(state, instr, src, options)));
      return;
    case Mnemonic::kInc:
      WriteGp(state, dst, RangeAdd(OperandRange(state, instr, dst, options),
                                   ValueRange::Constant(1)));
      return;
    case Mnemonic::kDec:
      WriteGp(state, dst, RangeSub(OperandRange(state, instr, dst, options),
                                   ValueRange::Constant(1)));
      return;
    case Mnemonic::kAnd:
      WriteGp(state, dst,
              RangeAnd(OperandRange(state, instr, dst, options),
                       OperandRange(state, instr, src, options)));
      return;
    case Mnemonic::kOr:
      WriteGp(state, dst,
              RangeOr(OperandRange(state, instr, dst, options),
                      OperandRange(state, instr, src, options)));
      return;
    case Mnemonic::kXor:
      if (dst.is_reg() && src.is_reg() && dst.reg == src.reg &&
          dst.size >= 4 && !dst.high8) {
        WriteGp(state, dst, ValueRange::Constant(0));
        return;
      }
      WriteGp(state, dst,
              RangeXor(OperandRange(state, instr, dst, options),
                       OperandRange(state, instr, src, options)));
      return;
    case Mnemonic::kShl:
      WriteGp(state, dst,
              TruncateToWidth(
                  RangeShl(OperandRange(state, instr, dst, options),
                           OperandRange(state, instr, src, options), dst.size),
                  dst.size));
      return;
    case Mnemonic::kShr:
      WriteGp(state, dst,
              RangeShr(OperandRange(state, instr, dst, options),
                       OperandRange(state, instr, src, options), dst.size));
      return;
    case Mnemonic::kSar: {
      const ValueRange value = OperandRange(state, instr, dst, options);
      if (value.hi < (1ull << (8 * dst.size - 1))) {
        // Non-negative within the operand width: sar behaves like shr.
        WriteGp(state, dst,
                RangeShr(value, OperandRange(state, instr, src, options),
                         dst.size));
      } else {
        WriteGp(state, dst, ValueRange::Top());
      }
      return;
    }
    case Mnemonic::kImul: {
      // 2-op: dst *= src; 3-op: dst = src * imm.
      const Operand& lhs = instr.op_count == 3 ? src : dst;
      const Operand& rhs = instr.op_count == 3 ? instr.ops[2] : src;
      WriteGp(state, dst,
              TruncateToWidth(
                  RangeMul(OperandRange(state, instr, lhs, options),
                           OperandRange(state, instr, rhs, options)),
                  dst.size));
      return;
    }
    case Mnemonic::kNeg:
      WriteGp(state, dst,
              RangeSub(ValueRange::Constant(0),
                       OperandRange(state, instr, dst, options)));
      return;
    case Mnemonic::kNot: {
      const ValueRange value = OperandRange(state, instr, dst, options);
      ValueRange inverted = ValueRange::Top();
      inverted.known_mask = value.known_mask;
      inverted.known_val = ~value.known_val & value.known_mask;
      WriteGp(state, dst, TruncateToWidth(inverted, dst.size));
      return;
    }
    case Mnemonic::kXchg:
      if (dst.is_reg() && src.is_reg() && IsGp(dst.reg) && IsGp(src.reg) &&
          dst.size == 8) {
        std::swap(state[dst.reg.index], state[src.reg.index]);
      } else {
        if (dst.is_reg() && IsGp(dst.reg)) ClobberGp(state, dst.reg.index);
        if (src.is_reg() && IsGp(src.reg)) ClobberGp(state, src.reg.index);
      }
      return;
    case Mnemonic::kCmovcc:
      WriteGp(state, dst,
              Join(OperandRange(state, instr, dst, options),
                   OperandRange(state, instr, src, options)));
      return;
    case Mnemonic::kCdqe: {
      const ValueRange rax = state[0];
      if (rax.hi <= 0x7fffffffull) return;  // eax non-negative: no change
      ClobberGp(state, 0);
      return;
    }
    case Mnemonic::kCall:
      ClobberCallerSaved(state);
      return;
    case Mnemonic::kCmp:
    case Mnemonic::kTest:
    case Mnemonic::kNop:
    case Mnemonic::kEndbr64:
    case Mnemonic::kJmp:
    case Mnemonic::kJcc:
    case Mnemonic::kRet:
    case Mnemonic::kUd2:
    case Mnemonic::kStc:
    case Mnemonic::kClc:
    case Mnemonic::kLfence:
    case Mnemonic::kMfence:
    case Mnemonic::kSfence:
      return;  // flags only / no GP effect
    default: {
      // Fall back to the liveness effect summary: everything written (or
      // everything, when the summary itself is conservative) goes to top.
      const InstrEffects effects = EffectsOf(instr);
      if (!effects.known) {
        state = TopState();
        return;
      }
      const LocSet written = effects.defs | effects.kills;
      for (int i = 0; i < x86::kGpRegCount; ++i) {
        if (written.TestGp(i)) ClobberGp(state, i);
      }
      return;
    }
  }
}

/// The cmp/test instruction whose flags the block terminator consumes, i.e.
/// the last flag-writing instruction of the block -- or null when that
/// instruction is not a usable comparison.
const Instr* EdgeComparison(const x86::BasicBlock& block) {
  if (block.instrs.empty()) return nullptr;
  for (auto it = block.instrs.rbegin(); it != block.instrs.rend(); ++it) {
    if (it->IsBlockTerminator()) continue;
    const x86::FlagEffects effects = x86::FlagEffectsOf(it->mnemonic);
    if (effects.written == x86::kFlagNone &&
        effects.undefined == x86::kFlagNone) {
      continue;
    }
    if (it->mnemonic == Mnemonic::kCmp || it->mnemonic == Mnemonic::kTest) {
      return &*it;
    }
    return nullptr;  // flags come from something we do not model
  }
  return nullptr;
}

/// True when any instruction strictly between `cmp` and the block terminator
/// (all of which are non-flag-writers, or EdgeComparison would have rejected
/// the block) writes GP register `reg`. The comparison then constrained a
/// value the end-of-block state no longer holds, so edge refinement must not
/// touch it: for `cmp rax, 5; mov rax, rbx; jb L` the [0,4] bound belongs to
/// the old rax, not to rbx's value.
bool ClobberedAfterComparison(const x86::BasicBlock& block, const Instr* cmp,
                              Reg reg) {
  const LocSet loc = LocSet::FromReg(reg);
  bool after = false;
  for (const Instr& instr : block.instrs) {
    if (&instr == cmp) {
      after = true;
      continue;
    }
    if (!after || instr.IsBlockTerminator()) continue;
    const InstrEffects effects = EffectsOf(instr);
    if (!effects.known || (effects.defs | effects.kills).Intersects(loc)) {
      return true;
    }
  }
  return false;
}

/// Refines `state` along the CFG edge `block` -> `successor` using the
/// comparison feeding the terminating jcc.
GpState RefineEdge(GpState state, const x86::BasicBlock& block,
                   std::uint64_t successor) {
  if (block.instrs.empty()) return state;
  const Instr& term = block.instrs.back();
  if (term.mnemonic != Mnemonic::kJcc) return state;
  if (block.branch_target == block.fall_through) return state;
  const Instr* cmp = EdgeComparison(block);
  if (cmp == nullptr) return state;

  Cond cond = term.cond;
  if (successor == block.fall_through) {
    cond = x86::Invert(cond);
  } else if (successor != block.branch_target) {
    return state;
  }

  const Operand& lhs = cmp->ops[0];
  if (!lhs.is_reg() || !IsGp(lhs.reg) || lhs.high8) return state;
  if (ClobberedAfterComparison(block, cmp, lhs.reg)) return state;
  const int width = lhs.size;
  ValueRange& reg = state[lhs.reg.index];

  if (cmp->mnemonic == Mnemonic::kTest) {
    // test reg,reg: ZF <=> reg's low width bytes are zero.
    if (!cmp->ops[1].is_reg() || cmp->ops[1].reg != lhs.reg) return state;
    if (width != 8 && reg.hi > WidthMask(width)) return state;
    if (cond == Cond::kE) {
      reg = Meet(reg, ValueRange::Constant(0));
    } else if (cond == Cond::kNe && reg.lo == 0 && reg.hi > 0) {
      reg.lo = 1;
      reg = Normalize(reg);
    }
    return state;
  }

  // cmp reg, constant (immediate, or register proven constant).
  std::uint64_t constant = 0;
  const Operand& rhs = cmp->ops[1];
  if (rhs.is_imm()) {
    constant = static_cast<std::uint64_t>(rhs.imm);
    if (width < 8) constant &= WidthMask(width);
  } else if (rhs.is_reg() && IsGp(rhs.reg) && !rhs.high8) {
    // The comparand register is read from the end-of-block state too, so it
    // must be equally unclobbered since the comparison.
    if (ClobberedAfterComparison(block, cmp, rhs.reg)) return state;
    const ValueRange rv = RegRead(state, rhs.reg, width);
    if (!rv.IsConstant()) return state;
    constant = rv.ConstantValue();
  } else {
    return state;
  }
  // Sub-64-bit comparisons only refine when the tracked 64-bit value fits
  // the compared width, so the narrow and wide comparisons agree.
  if (width < 8 && reg.hi > WidthMask(width)) return state;
  if (width < 8 && constant > WidthMask(width)) return state;
  reg = RefineByCondition(reg, cond, constant);
  return state;
}

GpState JoinStates(const GpState& a, const GpState& b) {
  GpState r;
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = Join(a[i], b[i]);
  return r;
}

}  // namespace

const GpState& FunctionRanges::Before(std::uint64_t address) const {
  static const GpState kTop{};
  auto it = before_.find(address);
  return it != before_.end() ? it->second : kTop;
}

const ValueRange& FunctionRanges::LoadRange(std::uint64_t address) const {
  static const ValueRange kTop{};
  auto it = loads_.find(address);
  return it != loads_.end() ? it->second : kTop;
}

FunctionRanges ComputeRanges(const x86::Cfg& cfg,
                             const RangeOptions& options) {
  DBLL_TRACE_SPAN("analysis.ranges");
  FunctionRanges result;
  RangeMetrics::Get().computed.Add(1);

  CfgIndex index(cfg);
  const std::size_t n = index.blocks.size();
  if (n == 0) return result;

  GpState entry_state = TopState();
  for (const auto& [reg, value] : options.entry_values) {
    if (reg >= 0 && reg < x86::kGpRegCount) {
      entry_state[static_cast<std::size_t>(reg)] = value;
    }
  }

  constexpr int kWidenThreshold = 4;
  std::vector<GpState> out(n);
  std::vector<GpState> in(n);
  std::vector<char> visited(n, 0);
  std::vector<int> visits(n, 0);
  std::size_t steps = 0;
  bool over_budget = false;

  // Optimistic reachability: only predecessors that have produced an
  // out-state participate in the join, so loop bodies see the narrow
  // entry-seeded state on the first pass instead of top.
  auto JoinPreds = [&](int b) -> GpState {
    const x86::BasicBlock& block = *index.blocks[static_cast<std::size_t>(b)];
    bool seeded = b == index.graph.entry;
    GpState state = seeded ? entry_state : TopState();
    for (int p : index.graph.preds[static_cast<std::size_t>(b)]) {
      if (!visited[static_cast<std::size_t>(p)]) continue;
      GpState refined =
          RefineEdge(out[static_cast<std::size_t>(p)],
                     *index.blocks[static_cast<std::size_t>(p)], block.start);
      state = seeded ? JoinStates(state, refined) : std::move(refined);
      seeded = true;
    }
    return state;
  };

  std::deque<int> worklist{index.graph.entry};
  std::vector<char> queued(n, 0);
  queued[static_cast<std::size_t>(index.graph.entry)] = 1;
  while (!worklist.empty()) {
    const int b = worklist.front();
    worklist.pop_front();
    queued[static_cast<std::size_t>(b)] = 0;

    GpState block_in = JoinPreds(b);
    if (++visits[static_cast<std::size_t>(b)] > kWidenThreshold &&
        visited[static_cast<std::size_t>(b)]) {
      for (std::size_t i = 0; i < block_in.size(); ++i) {
        block_in[i] = Widen(in[static_cast<std::size_t>(b)][i], block_in[i]);
      }
    }

    const x86::BasicBlock& block = *index.blocks[static_cast<std::size_t>(b)];
    steps += block.instrs.size();
    if (steps > options.budget) {
      over_budget = true;
      break;
    }
    GpState state = block_in;
    for (const Instr& instr : block.instrs) {
      TransferInstr(state, instr, options, nullptr);
    }

    const bool first = !visited[static_cast<std::size_t>(b)];
    visited[static_cast<std::size_t>(b)] = 1;
    in[static_cast<std::size_t>(b)] = block_in;
    if (first || state != out[static_cast<std::size_t>(b)]) {
      out[static_cast<std::size_t>(b)] = state;
      for (int s : index.graph.succs[static_cast<std::size_t>(b)]) {
        if (!queued[static_cast<std::size_t>(s)]) {
          queued[static_cast<std::size_t>(s)] = 1;
          worklist.push_back(s);
        }
      }
    }
  }

  result.steps_ = steps;
  if (over_budget) {
    RangeMetrics::Get().over_budget.Add(1);
    return result;  // converged_ stays false: every query reports top
  }

  // Recording pass: replay each reachable block once, storing the state
  // before every instruction and the value ranges of tracked loads.
  for (std::size_t b = 0; b < n; ++b) {
    if (!visited[b]) continue;
    GpState state = in[b];
    for (const Instr& instr : index.blocks[b]->instrs) {
      result.before_.emplace(instr.address, state);
      TransferInstr(state, instr, options, &result.loads_);
    }
  }
  result.converged_ = true;
  return result;
}

namespace {

/// Finds the last instruction writing GP register `reg` strictly before
/// index `before` in the block; -1 when none.
int LastWriteTo(const x86::BasicBlock& block, int before, Reg reg) {
  for (int i = before - 1; i >= 0; --i) {
    const Instr& instr = block.instrs[static_cast<std::size_t>(i)];
    const InstrEffects effects = EffectsOf(instr);
    if (!effects.known || (effects.defs | effects.kills)
                              .ContainsAll(LocSet::FromReg(reg))) {
      return i;
    }
  }
  return -1;
}

struct TableShape {
  std::uint64_t entry_base = 0;  ///< address of entry 0 (index scaled from 0)
  ValueRange index;              ///< proven index interval
  int entry_size = 0;
  bool relative = false;
  std::uint64_t relative_base = 0;  ///< added to i32 entries
};

/// Readable, non-writable address ranges of this process, snapshotted from
/// /proc/self/maps. Contiguous mappings are merged so a table spanning two
/// adjacent read-only segments still qualifies. Used to prove that jump-table
/// bytes are both mapped (reading them cannot fault the compiler thread) and
/// immutable (the resolved target set cannot go stale behind the lifted
/// switch). An unreadable maps file yields an empty set: only declared
/// ConstRegions resolve then.
class ReadOnlyMappings {
 public:
  ReadOnlyMappings() {
    std::FILE* maps = std::fopen("/proc/self/maps", "re");
    if (maps == nullptr) return;
    char line[512];
    while (std::fgets(line, sizeof(line), maps) != nullptr) {
      unsigned long long start = 0;
      unsigned long long end = 0;
      char perms[8] = {};
      if (std::sscanf(line, "%llx-%llx %7s", &start, &end, perms) != 3) {
        continue;
      }
      if (perms[0] != 'r' || perms[1] == 'w') continue;
      if (!ranges_.empty() && ranges_.back().second == start) {
        ranges_.back().second = end;
      } else {
        ranges_.emplace_back(start, end);
      }
    }
    std::fclose(maps);
  }

  bool Contains(std::uint64_t addr, std::uint64_t len) const {
    for (const auto& [start, end] : ranges_) {
      if (addr >= start && addr < end && len <= end - addr) return true;
    }
    return false;
  }

 private:
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges_;
};

/// Extracts a singleton base + bounded index from a table memory operand.
bool MatchTableOperand(const GpState& state, const Instr& instr,
                       const MemOperand& mem, int entry_size,
                       TableShape& shape) {
  if (mem.segment != x86::Segment::kNone) return false;
  if (!mem.index.valid() || !IsGp(mem.index) || mem.scale != entry_size) {
    return false;
  }
  ValueRange base = ValueRange::Constant(
      static_cast<std::uint64_t>(static_cast<std::int64_t>(mem.disp)));
  if (mem.base.valid()) {
    if (mem.base == x86::kRip) {
      base = ValueRange::Constant(instr.target);
    } else if (IsGp(mem.base)) {
      base = RangeAdd(base, state[mem.base.index]);
    } else {
      return false;
    }
  }
  if (!base.IsConstant()) return false;
  const ValueRange idx = state[mem.index.index];
  if (idx.IsTop() || idx.hi == ~0ull) return false;
  shape.entry_base = base.ConstantValue();
  shape.index = idx;
  shape.entry_size = entry_size;
  return true;
}

/// Matches the jump-table dispatch feeding `jmp` (the terminator of
/// `block`). Returns true and fills `shape` when the ranges prove both the
/// table base and the index bound.
bool MatchDispatch(const x86::BasicBlock& block, const FunctionRanges& ranges,
                   TableShape& shape) {
  const Instr& jmp = block.instrs.back();
  const int jmp_index = static_cast<int>(block.instrs.size()) - 1;

  // Form 1: jmp [base + idx*8] -- absolute table addressed directly.
  if (jmp.ops[0].is_mem()) {
    return MatchTableOperand(ranges.Before(jmp.address), jmp, jmp.ops[0].mem,
                             8, shape);
  }
  if (!jmp.ops[0].is_reg() || !IsGp(jmp.ops[0].reg)) return false;
  const Reg rt = jmp.ops[0].reg;

  const int w1 = LastWriteTo(block, jmp_index, rt);
  if (w1 < 0) return false;
  const Instr& def = block.instrs[static_cast<std::size_t>(w1)];

  // Form 2: mov rt, [base + idx*8]; jmp rt -- absolute table.
  if (def.mnemonic == Mnemonic::kMov && def.ops[0].is_reg() &&
      def.ops[0].reg == rt && def.ops[0].size == 8 && def.ops[1].is_mem() &&
      def.ops[1].size == 8) {
    return MatchTableOperand(ranges.Before(def.address), def, def.ops[1].mem,
                             8, shape);
  }

  // Form 3 (GCC/clang PIC): lea rbase,[rip+tbl]; movsxd rt,[rbase+idx*4];
  // add rt,rbase; jmp rt -- i32 entries relative to the table base.
  if (def.mnemonic != Mnemonic::kAdd || !def.ops[0].is_reg() ||
      def.ops[0].reg != rt || def.ops[0].size != 8 || !def.ops[1].is_reg() ||
      !IsGp(def.ops[1].reg)) {
    return false;
  }
  const ValueRange rbase = ranges.Before(def.address)[def.ops[1].reg.index];
  if (!rbase.IsConstant()) return false;

  const int w2 = LastWriteTo(block, w1, rt);
  if (w2 < 0) return false;
  const Instr& load = block.instrs[static_cast<std::size_t>(w2)];
  if (load.mnemonic != Mnemonic::kMovsxd || !load.ops[0].is_reg() ||
      load.ops[0].reg != rt || !load.ops[1].is_mem() ||
      load.ops[1].size != 4) {
    return false;
  }
  if (!MatchTableOperand(ranges.Before(load.address), load, load.ops[1].mem,
                         4, shape)) {
    return false;
  }
  shape.relative = true;
  shape.relative_base = rbase.ConstantValue();
  return true;
}

}  // namespace

std::vector<JumpTable> ResolveJumpTables(const x86::Cfg& cfg,
                                         const FunctionRanges& ranges,
                                         const RangeOptions& options,
                                         std::size_t max_entries) {
  std::vector<JumpTable> tables;
  if (!ranges.converged()) return tables;
  // Parsed lazily, at most once per call: most CFGs have no dispatch site.
  std::optional<ReadOnlyMappings> ro_mappings;
  auto provably_constant = [&](std::uint64_t addr, std::uint64_t len) {
    for (const ConstRegion& region : options.const_regions) {
      if (region.ContainsRange(addr, len)) return true;
    }
    if (!ro_mappings) ro_mappings.emplace();
    return ro_mappings->Contains(addr, len);
  };
  for (const auto& [start, block] : cfg.blocks) {
    if (!block.HasIndirectJump() || !block.indirect_targets.empty()) continue;
    TableShape shape;
    if (!MatchDispatch(block, ranges, shape)) continue;
    if (shape.index.IntervalSize() > max_entries) continue;

    // The scan below reads table memory, and LiftIndirectJump treats the
    // resolved target set as exhaustive: only accept a table whose full
    // scanned byte range provably cannot change -- a declared ConstRegion or
    // a read-only mapping. A writable (or unmapped) table stays unresolved
    // and the site keeps its fatal classification.
    const auto size = static_cast<std::uint64_t>(shape.entry_size);
    const std::uint64_t first_slot = shape.entry_base + shape.index.lo * size;
    const std::uint64_t scan_len = shape.index.IntervalSize() * size;
    if (first_slot + scan_len < first_slot) continue;  // wrapped range
    if (!provably_constant(first_slot, scan_len)) continue;

    JumpTable table;
    table.site = block.instrs.back().address;
    table.entry_size = shape.entry_size;
    table.relative = shape.relative;
    table.table_base = shape.entry_base +
                       shape.index.lo * static_cast<std::uint64_t>(shape.entry_size);
    std::set<std::uint64_t> targets;
    bool ok = true;
    for (std::uint64_t i = shape.index.lo; i <= shape.index.hi; ++i) {
      if (!shape.index.Contains(i)) continue;  // known-bits may punch holes
      const std::uint64_t slot =
          shape.entry_base + i * static_cast<std::uint64_t>(shape.entry_size);
      std::uint64_t target;
      if (shape.relative) {
        target = shape.relative_base +
                 SignExtend(ReadMemory(slot, 4), 4);
      } else {
        target = ReadMemory(slot, 8);
      }
      if (target == 0) {
        ok = false;
        break;
      }
      targets.insert(target);
    }
    if (!ok || targets.empty()) continue;
    table.targets.assign(targets.begin(), targets.end());
    tables.push_back(std::move(table));
  }
  RangeMetrics::Get().tables_resolved.Add(tables.size());
  return tables;
}

Expected<RangeResolvedCfg> BuildRangeResolvedCfg(
    std::uint64_t entry, const x86::CfgOptions& cfg_options,
    const RangeOptions& range_options) {
  DBLL_TRACE_SPAN("analysis.ranges_cfg");
  x86::CfgOptions tolerant = cfg_options;
  tolerant.allow_indirect_jumps = true;
  std::map<std::uint64_t, std::vector<std::uint64_t>> resolved;
  tolerant.resolved_jumps = &resolved;

  RangeResolvedCfg result;
  DBLL_TRY(result.cfg, x86::BuildCfg(entry, tolerant));

  // Resolve-and-rebuild rounds: a resolved table can expose more code which
  // can contain further tables. Bounded; real functions need one round.
  for (int round = 0; round < 4; ++round) {
    result.ranges = ComputeRanges(result.cfg, range_options);
    std::vector<JumpTable> found =
        ResolveJumpTables(result.cfg, result.ranges, range_options);
    if (found.empty()) break;
    for (const JumpTable& table : found) {
      resolved[table.site] = table.targets;
    }
    Expected<x86::Cfg> rebuilt = x86::BuildCfg(entry, tolerant);
    if (!rebuilt) {
      // A proven target failed to decode: drop this round's resolutions and
      // keep the last good CFG (the site stays unresolved and fatal).
      for (const JumpTable& table : found) resolved.erase(table.site);
      break;
    }
    result.cfg = std::move(*rebuilt);
    result.ranges = ComputeRanges(result.cfg, range_options);
    for (JumpTable& table : found) result.tables.push_back(std::move(table));
  }

  for (const auto& [start, block] : result.cfg.blocks) {
    if (block.HasIndirectJump() && block.indirect_targets.empty()) {
      result.unresolved_indirect = true;
    }
  }
  return result;
}

std::vector<PointerLink> FindPointerLinks(
    std::span<const FixedRegion> regions) {
  std::vector<PointerLink> links;
  for (std::size_t src = 0; src < regions.size(); ++src) {
    const FixedRegion& region = regions[src];
    if (region.bytes.size() < 8) continue;
    for (std::uint64_t offset = 0; offset + 8 <= region.bytes.size();
         offset += 8) {
      std::uint64_t value = 0;
      std::memcpy(&value, region.bytes.data() + offset, 8);
      if (value == 0) continue;
      for (std::size_t dst = 0; dst < regions.size(); ++dst) {
        const FixedRegion& target = regions[dst];
        if (target.bytes.empty()) continue;
        if (value < target.address ||
            value >= target.address + target.bytes.size()) {
          continue;
        }
        links.push_back(PointerLink{static_cast<int>(src), offset,
                                    static_cast<int>(dst),
                                    value - target.address});
        break;
      }
    }
  }
  return links;
}

}  // namespace dbll::analysis
